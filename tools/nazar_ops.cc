/**
 * @file
 * nazar_ops — the ML-ops command-line companion.
 *
 * Lets an operator work with drift logs outside the deployed system:
 *
 *   nazar_ops gen-log <out.csv> [rows] [seed]
 *       Generate a synthetic drift log with planted weather causes.
 *
 *   nazar_ops analyze <log.csv> [fim|sr|full]
 *       Run root-cause analysis on a drift-log CSV and print the
 *       ranked FIM table plus the final causes (default: the full
 *       pipeline, §3.3 / Algorithm 1).
 *
 *   nazar_ops sql <log.csv> "<query>"
 *       Run a SQL query against the log (table name: drift_log),
 *       e.g. "SELECT weather, COUNT(*) FROM drift_log WHERE drift =
 *       true GROUP BY weather ORDER BY COUNT(*) DESC". Prefix the
 *       query with EXPLAIN to print the bound plan instead of
 *       executing it: the pruned column read set and every WHERE
 *       predicate's resolved dictionary-id range (a literal absent
 *       from the column's dictionary shows as a 0-row short-circuit).
 *
 *   nazar_ops stats <log.csv> [fim|sr|full] [--metrics-out=<path>]
 *       Run root-cause analysis with self-monitoring on and print the
 *       recorded span/counter table (per-stage latencies, rows
 *       scanned); optionally write the full snapshot to a file (JSON,
 *       or Prometheus text for .prom/.txt).
 *
 *   nazar_ops sim [windows] [--metrics-out=<path>] [fault flags]
 *       Run a tiny end-to-end fleet simulation (animals app, Nazar
 *       strategy) and report per-window accuracy plus the obs
 *       snapshot covering every instrumented layer. Fault flags
 *       (--drop= --dup= --delay= --reorder= --offline= --crash=
 *       --push-drop= --queue-cap= --fault-seed=) inject seeded
 *       device↔cloud transport faults (src/net) into the run.
 *
 *   nazar_ops faults <metrics.json>
 *       Print the net.* / fleet.* fault-channel counters and gauges
 *       (plus the cloud ingest/archive counters) from a JSON metrics
 *       snapshot written by --metrics-out.
 *
 *   nazar_ops wal <wal.log>
 *       Dump a cloud write-ahead log: one line per record (seq, type,
 *       payload bytes; every listed record passed its CRC) plus any
 *       torn tail the scanner would truncate.
 *
 *   nazar_ops recover <state-dir>
 *       Run standalone recovery over a cloud state directory
 *       (snapshot chain + wal.log) and print what came back: pending
 *       drift-log rows, uploads, registry versions, dedup windows,
 *       counters.
 *
 *   nazar_ops scrub <state-dir>
 *       Offline, read-only integrity walk: WAL record CRCs and seq
 *       monotonicity, every snapshot chain file's header + payload
 *       CRC, each delta's link to its base, and that the recovery
 *       chain decodes. Prints `SCRUB ok` (exit 0) or `SCRUB CORRUPT`
 *       (exit 1) plus the issues found; benign observations (torn
 *       tail, stale superseded files awaiting GC) are notes, not
 *       failures.
 *
 *   nazar_ops trace <trace.json>
 *       Summarize a Chrome trace_event file written by --trace-out
 *       (obs::writeChromeTrace): a per-span-name latency table, and —
 *       for traces rooted at `net.client.ingest` — the ingest critical
 *       path: end-to-end ack latency decomposed into the recorded
 *       stages (decode, queue wait, encode, WAL sync, ack) with the
 *       unattributed remainder (socket + wire time) called out.
 *
 * The sim subcommand also takes durability flags
 * (--persist-dir=<dir> --snapshot-every=N --crash-at=N
 * --fsync=flush|fdatasync|fsync): with a persist dir the cloud WALs
 * its state there, --crash-at=N kills it at the Nth write-boundary
 * crash site, exercising the recover-and-resume path end to end, and
 * --fsync selects the WAL durability mode (flush matches the
 * process-kill fault model; fdatasync/fsync survive power loss).
 */
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "net/fault.h"
#include "data/apps.h"
#include "data/stream.h"
#include "driftlog/csv.h"
#include "driftlog/drift_log.h"
#include "driftlog/sql.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "persist/cloud_persist.h"
#include "persist/wal.h"
#include "rca/analyzer.h"
#include "sim/runner.h"

using namespace nazar;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  nazar_ops gen-log <out.csv> [rows] [seed]\n"
        "  nazar_ops analyze <log.csv> [fim|sr|full]\n"
        "  nazar_ops sql <log.csv> \"[EXPLAIN] <query>\"\n"
        "  nazar_ops stats <log.csv> [fim|sr|full] "
        "[--metrics-out=<path>]\n"
        "  nazar_ops sim [windows] [--metrics-out=<path>] "
        "[--drop=P --dup=P --delay=P --reorder=P --offline=P "
        "--crash=P --push-drop=P --queue-cap=N --fault-seed=S] "
        "[--persist-dir=<dir> --snapshot-every=N --crash-at=N "
        "--fsync=flush|fdatasync|fsync] [--fault-site=<env site> "
        "--fault-kind=enospc|eio|sync_fail|... --fault-hit=N] "
        "[--registry-gc=0|1]\n"
        "  nazar_ops faults <metrics.json>\n"
        "  nazar_ops wal <wal.log>\n"
        "  nazar_ops recover <state-dir>\n"
        "  nazar_ops scrub <state-dir>\n"
        "  nazar_ops trace <trace.json>\n"
        "  (sim also takes --trace-out=<file>: enable causal tracing "
        "and write a Perfetto-loadable Chrome trace)\n");
    return 2;
}

driftlog::Table
loadLog(const std::string &path)
{
    std::ifstream in(path);
    NAZAR_CHECK(in.good(), "cannot open: " + path);
    driftlog::DriftLog schema_holder;
    return driftlog::readCsv(schema_holder.table().schema(), in);
}

int
cmdGenLog(const std::string &path, size_t rows, uint64_t seed)
{
    Rng rng(seed);
    const char *weathers[] = {"clear-day", "rain", "snow", "fog"};
    const char *locations[] = {"new_york", "tibet", "beijing",
                               "new_south_wales", "united_kingdom",
                               "quebec", "sao_paulo"};
    driftlog::DriftLog log;
    for (size_t i = 0; i < rows; ++i) {
        driftlog::DriftLogEntry e;
        e.time = SimDate(static_cast<int>(i % 112),
                         static_cast<int>(rng.uniformInt(0, 86399)));
        int device = static_cast<int>(rng.index(112));
        e.deviceId = "android_" + std::to_string(device);
        e.deviceModel = "model_" + std::to_string(device % 4);
        e.location = locations[rng.index(7)];
        size_t w = rng.index(4);
        e.weather = weathers[w];
        e.drift = w != 0 ? rng.bernoulli(0.7) : rng.bernoulli(0.2);
        log.add(e);
    }
    std::ofstream out(path);
    NAZAR_CHECK(out.good(), "cannot write: " + path);
    driftlog::writeCsv(log.table(), out);
    std::printf("wrote %zu rows to %s (planted causes: rain, snow, "
                "fog)\n",
                rows, path.c_str());
    return 0;
}

int
cmdAnalyze(const std::string &path, const std::string &mode_name)
{
    rca::AnalysisMode mode = rca::AnalysisMode::kFull;
    if (mode_name == "fim")
        mode = rca::AnalysisMode::kFimOnly;
    else if (mode_name == "sr")
        mode = rca::AnalysisMode::kFimSetReduction;
    else if (mode_name != "full")
        throw NazarError("unknown analysis mode: " + mode_name);

    driftlog::Table table = loadLog(path);
    std::printf("%zu entries, %zu flagged as drift\n\n",
                table.rowCount(),
                driftlog::Query(table)
                    .where(driftlog::columns::kDrift,
                           driftlog::Value(true))
                    .count());

    rca::RcaConfig config;
    config.attributeColumns =
        driftlog::DriftLog::defaultAttributeColumns();
    rca::Analyzer analyzer(config);
    rca::AnalysisResult result = analyzer.analyze(table, mode);

    TablePrinter fim({"rank", "occurrence", "support", "risk ratio",
                      "confidence", "attributes"});
    int rank = 0;
    for (const auto &cause : result.fimTable) {
        if (!rca::passesThresholds(cause.metrics, config))
            continue;
        fim.addRow({std::to_string(rank++),
                    TablePrinter::num(cause.metrics.occurrence),
                    TablePrinter::num(cause.metrics.support),
                    TablePrinter::num(cause.metrics.riskRatio, 2),
                    TablePrinter::num(cause.metrics.confidence, 2),
                    cause.attrs.toString()});
        if (rank >= 20)
            break;
    }
    std::printf("thresholded FIM table (top %d):\n%s\n", rank,
                fim.toString().c_str());

    std::printf("root causes (%s):\n", toString(mode).c_str());
    if (result.rootCauses.empty())
        std::printf("  (none)\n");
    for (const auto &cause : result.rootCauses)
        std::printf("  %s  conf %.2f  rr %.2f  (%zu drifted entries)\n",
                    cause.attrs.toString().c_str(),
                    cause.metrics.confidence, cause.metrics.riskRatio,
                    cause.metrics.setDriftCount);
    return 0;
}

int
cmdSql(const std::string &path, const std::string &query)
{
    driftlog::Table table = loadLog(path);
    driftlog::SqlResult result =
        driftlog::executeSql(table, "drift_log", query);
    std::printf("%s(%zu rows)\n", result.toString().c_str(),
                result.rowCount());
    return 0;
}

/** Print the registry snapshot as span + counter tables. */
void
printSnapshot(const obs::Snapshot &snap)
{
    TablePrinter spans(
        {"span", "count", "mean ms", "total s"});
    for (const auto &[name, h] : snap.histograms) {
        if (h.count == 0)
            continue;
        spans.addRow({name, TablePrinter::num(h.count),
                      TablePrinter::num(h.mean() * 1e3, 3),
                      TablePrinter::num(h.sum, 3)});
    }
    std::printf("spans:\n%s\n", spans.toString().c_str());

    TablePrinter counters({"counter", "value"});
    for (const auto &[name, value] : snap.counters)
        counters.addRow({name, TablePrinter::num(value)});
    std::printf("counters:\n%s\n", counters.toString().c_str());
}

/** Write the snapshot to --metrics-out if given (empty = skip). */
void
maybeWriteMetrics(const std::string &path)
{
    if (path.empty())
        return;
    obs::writeMetricsFile(path);
    std::printf("metrics snapshot: %s\n", path.c_str());
}

int
cmdStats(const std::string &path, const std::string &mode_name,
         const std::string &metrics_out)
{
    rca::AnalysisMode mode = rca::AnalysisMode::kFull;
    if (mode_name == "fim")
        mode = rca::AnalysisMode::kFimOnly;
    else if (mode_name == "sr")
        mode = rca::AnalysisMode::kFimSetReduction;
    else if (mode_name != "full")
        throw NazarError("unknown analysis mode: " + mode_name);

    driftlog::Table table = loadLog(path);
    rca::RcaConfig config;
    config.attributeColumns =
        driftlog::DriftLog::defaultAttributeColumns();
    rca::Analyzer analyzer(config);
    rca::AnalysisResult result = analyzer.analyze(table, mode);

    std::printf("%zu entries analyzed (%s), %zu root causes\n\n",
                table.rowCount(), toString(mode).c_str(),
                result.rootCauses.size());
    printSnapshot(obs::Registry::global().snapshot());
    maybeWriteMetrics(metrics_out);
    return 0;
}

/**
 * Scan a flat JSON object (e.g. the "counters" map of a metrics
 * snapshot) for its scalar members. Good enough for the exporter's
 * own output; not a general JSON parser.
 */
std::vector<std::pair<std::string, std::string>>
scalarMembers(const std::string &text, const std::string &section)
{
    std::vector<std::pair<std::string, std::string>> out;
    std::string key = "\"" + section + "\"";
    size_t pos = text.find(key);
    if (pos == std::string::npos)
        return out;
    pos = text.find('{', pos);
    if (pos == std::string::npos)
        return out;
    size_t end = text.find('}', pos);
    if (end == std::string::npos)
        return out;
    size_t cursor = pos + 1;
    while (cursor < end) {
        size_t name_begin = text.find('"', cursor);
        if (name_begin == std::string::npos || name_begin >= end)
            break;
        size_t name_end = text.find('"', name_begin + 1);
        size_t colon = text.find(':', name_end);
        if (name_end == std::string::npos || colon == std::string::npos ||
            colon >= end)
            break;
        size_t value_begin = colon + 1;
        while (value_begin < end && std::isspace(static_cast<unsigned char>(
                                        text[value_begin])))
            ++value_begin;
        size_t value_end = value_begin;
        while (value_end < end && text[value_end] != ',' &&
               text[value_end] != '\n')
            ++value_end;
        std::string value =
            text.substr(value_begin, value_end - value_begin);
        while (!value.empty() &&
               std::isspace(static_cast<unsigned char>(value.back())))
            value.pop_back();
        out.emplace_back(
            text.substr(name_begin + 1, name_end - name_begin - 1),
            std::move(value));
        cursor = value_end + 1;
    }
    return out;
}

bool
hasAnyPrefix(const std::string &name,
             const std::vector<std::string> &prefixes)
{
    for (const auto &p : prefixes)
        if (name.rfind(p, 0) == 0)
            return true;
    return false;
}

int
cmdFaults(const std::string &path)
{
    std::ifstream in(path);
    NAZAR_CHECK(in.good(), "cannot open: " + path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::vector<std::string> prefixes = {
        "net.", "fleet.", "sim.ingest", "sim.uploads", "sim.cloud."};

    TablePrinter counters({"counter", "value"});
    size_t matched = 0;
    for (const auto &[name, value] : scalarMembers(text, "counters")) {
        if (!hasAnyPrefix(name, prefixes))
            continue;
        counters.addRow({name, value});
        ++matched;
    }
    std::printf("fault-channel counters (%s):\n%s\n", path.c_str(),
                counters.toString().c_str());

    TablePrinter gauges({"gauge", "value"});
    for (const auto &[name, value] : scalarMembers(text, "gauges")) {
        if (!hasAnyPrefix(name, prefixes))
            continue;
        gauges.addRow({name, value});
    }
    std::printf("fault-channel gauges:\n%s\n", gauges.toString().c_str());

    if (matched == 0)
        std::printf("(no net.* counters — run with faults enabled, or "
                    "the snapshot predates the net layer)\n");
    return 0;
}

const char *
walTypeName(persist::WalRecordType type)
{
    switch (type) {
      case persist::WalRecordType::kIngest:      return "ingest";
      case persist::WalRecordType::kCycleCommit: return "cycle-commit";
      case persist::WalRecordType::kFlush:       return "flush";
      case persist::WalRecordType::kRegistryGc:  return "registry-gc";
    }
    return "?";
}

int
cmdWal(const std::string &path)
{
    persist::WalScan scan = persist::Wal::scan(path);
    if (!scan.validHeader) {
        std::printf("%s: no valid WAL header (absent or empty file)\n",
                    path.c_str());
        return 1;
    }
    TablePrinter records({"seq", "type", "payload bytes", "crc"});
    size_t by_type[5] = {0, 0, 0, 0, 0};
    for (const auto &rec : scan.records) {
        records.addRow({TablePrinter::num(rec.seq),
                        walTypeName(rec.type),
                        TablePrinter::num(rec.payload.size()),
                        "ok"}); // scan() only yields CRC-valid records
        ++by_type[std::min<size_t>(
            static_cast<size_t>(rec.type), 4)];
    }
    std::printf("%s: %zu records (%zu ingest, %zu cycle-commit, "
                "%zu flush, %zu registry-gc)\n%s\n",
                path.c_str(), scan.records.size(), by_type[1],
                by_type[2], by_type[3], by_type[4],
                records.toString().c_str());
    if (scan.truncatedBytes > 0)
        std::printf("torn tail: %llu bytes after the last valid record "
                    "(a reopen would truncate them)\n",
                    static_cast<unsigned long long>(scan.truncatedBytes));
    else
        std::printf("clean tail: no torn bytes\n");
    return 0;
}

int
cmdRecover(const std::string &dir)
{
    persist::RecoveredState st = persist::recoverDir(dir);
    std::printf("%s: snapshot %s, %llu WAL records replayed",
                dir.c_str(), st.snapshotLoaded ? "loaded" : "absent",
                static_cast<unsigned long long>(st.replayedRecords));
    if (st.truncatedBytes > 0)
        std::printf(", torn tail %llu bytes",
                    static_cast<unsigned long long>(st.truncatedBytes));
    std::printf("\n");

    size_t versions = 0;
    for (const auto &[key, bytes] : st.blobs)
        if (key.size() > 5 &&
            key.compare(key.size() - 5, 5, "/meta") == 0)
            ++versions;
    TablePrinter state({"recovered state", "value"});
    state.addRow({"pending drift-log rows",
                  TablePrinter::num(st.log.size())});
    state.addRow({"pending uploads", TablePrinter::num(st.uploads.size())});
    state.addRow({"registry versions", TablePrinter::num(versions)});
    state.addRow({"registry blobs", TablePrinter::num(st.blobs.size())});
    state.addRow({"dedup windows", TablePrinter::num(st.dedup.size())});
    state.addRow({"dedup hits", TablePrinter::num(st.dedupHits)});
    state.addRow({"total ingested", TablePrinter::num(st.totalIngested)});
    state.addRow({"logical time", TablePrinter::num(st.logicalTime)});
    state.addRow({"next version id", TablePrinter::num(st.nextVersionId)});
    state.addRow({"clean patch",
                  st.cleanPatchText.has_value()
                      ? "present (cycle " +
                            std::to_string(st.cleanPatchTime) + ")"
                      : "none"});
    state.addRow({"last WAL seq", TablePrinter::num(st.lastWalSeq)});
    std::printf("%s\n", state.toString().c_str());
    return 0;
}

int
cmdScrub(const std::string &dir)
{
    persist::ScrubReport report = persist::scrubStateDir(dir);
    TablePrinter summary({"scrub", "value"});
    summary.addRow({"wal records", TablePrinter::num(report.walRecords)});
    summary.addRow(
        {"wal torn bytes", TablePrinter::num(report.walTornBytes)});
    summary.addRow({"chain files", TablePrinter::num(report.chainFiles)});
    summary.addRow(
        {"chain length", TablePrinter::num(report.chainLength)});
    summary.addRow({"chain bytes", TablePrinter::num(report.chainBytes)});
    summary.addRow(
        {"legacy snapshot", report.legacySnapshot ? "present" : "absent"});
    std::printf("%s: integrity walk\n%s\n", dir.c_str(),
                summary.toString().c_str());
    for (const auto &note : report.notes)
        std::printf("note: %s\n", note.c_str());
    for (const auto &issue : report.issues)
        std::printf("ISSUE: %s\n", issue.c_str());
    std::printf(report.ok ? "SCRUB ok\n" : "SCRUB CORRUPT\n");
    return report.ok ? 0 : 1;
}

/** One "X" event parsed back out of a writeChromeTrace() file. */
struct ParsedEvent
{
    std::string name;
    uint64_t tid = 0;
    double tsUs = 0.0;
    double durUs = 0.0;
    uint64_t trace = 0;
    uint64_t span = 0;
    uint64_t parent = 0;
};

/** The raw token after `key` up to the next `,`/`}`/`"` (exporter
 *  lines are one event each, so line-local search is enough). */
std::string
fieldAfter(const std::string &line, const std::string &key)
{
    size_t pos = line.find(key);
    if (pos == std::string::npos)
        return "";
    pos += key.size();
    size_t end = pos;
    while (end < line.size() && line[end] != ',' &&
           line[end] != '}' && line[end] != '"')
        ++end;
    return line.substr(pos, end - pos);
}

bool
parseTraceLine(const std::string &line, ParsedEvent &ev)
{
    if (line.find("\"ph\": \"X\"") == std::string::npos)
        return false;
    size_t name_begin = line.find("\"name\": \"");
    if (name_begin == std::string::npos)
        return false;
    name_begin += 9;
    size_t name_end = line.find('"', name_begin);
    if (name_end == std::string::npos)
        return false;
    ev.name = line.substr(name_begin, name_end - name_begin);
    ev.tid = std::stoull("0" + fieldAfter(line, "\"tid\": "));
    ev.tsUs = std::stod("0" + fieldAfter(line, "\"ts\": "));
    ev.durUs = std::stod("0" + fieldAfter(line, "\"dur\": "));
    ev.trace = std::stoull("0" + fieldAfter(line, "\"trace\": \""));
    ev.span = std::stoull("0" + fieldAfter(line, "\"span\": \""));
    ev.parent = std::stoull("0" + fieldAfter(line, "\"parent\": \""));
    return true;
}

/** Exact percentile over a sorted sample (nearest-rank style). */
double
pctOf(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    size_t i = static_cast<size_t>(p * (sorted.size() - 1));
    return sorted[i];
}

int
cmdTrace(const std::string &path)
{
    std::ifstream in(path);
    NAZAR_CHECK(in.good(), "cannot open: " + path);
    std::vector<ParsedEvent> events;
    std::string line;
    while (std::getline(in, line)) {
        ParsedEvent ev;
        if (parseTraceLine(line, ev))
            events.push_back(std::move(ev));
    }
    std::printf("%s: %zu span events\n\n", path.c_str(),
                events.size());
    if (events.empty())
        return 0;

    // Per-name latency table (exact durations, not bucketed).
    std::map<std::string, std::vector<double>> byName;
    for (const auto &ev : events)
        byName[ev.name].push_back(ev.durUs / 1e3);
    TablePrinter names(
        {"span", "count", "mean ms", "p50 ms", "p99 ms", "total ms"});
    for (auto &[name, durs] : byName) {
        std::sort(durs.begin(), durs.end());
        double total = 0.0;
        for (double d : durs)
            total += d;
        names.addRow({name, TablePrinter::num(durs.size()),
                      TablePrinter::num(total / durs.size(), 3),
                      TablePrinter::num(pctOf(durs, 0.50), 3),
                      TablePrinter::num(pctOf(durs, 0.99), 3),
                      TablePrinter::num(total, 3)});
    }
    std::printf("spans:\n%s\n", names.toString().c_str());

    // Ingest critical path: traces rooted at net.client.ingest. The
    // root covers send -> ack; every other span in the trace is a
    // stage of it (client encode, server decode/queue/commit/ack), so
    // root minus the stage sum is the unattributed socket/wire time.
    std::map<uint64_t, std::vector<const ParsedEvent *>> byTrace;
    for (const auto &ev : events)
        byTrace[ev.trace].push_back(&ev);
    std::vector<double> e2e;
    std::vector<double> remainder;
    std::map<std::string, std::vector<double>> stages;
    for (const auto &[trace, evs] : byTrace) {
        const ParsedEvent *root = nullptr;
        for (const ParsedEvent *ev : evs)
            if (ev->parent == 0 && ev->name == "net.client.ingest")
                root = ev;
        if (root == nullptr)
            continue;
        double staged = 0.0;
        for (const ParsedEvent *ev : evs) {
            if (ev == root)
                continue;
            stages[ev->name].push_back(ev->durUs / 1e3);
            staged += ev->durUs;
        }
        e2e.push_back(root->durUs / 1e3);
        remainder.push_back((root->durUs - staged) / 1e3);
    }
    if (e2e.empty()) {
        std::printf("no net.client.ingest-rooted traces (not a "
                    "served-run trace, or tracing was off at the "
                    "client)\n");
        return 0;
    }
    std::sort(e2e.begin(), e2e.end());
    std::sort(remainder.begin(), remainder.end());
    double e2e_total = 0.0;
    for (double d : e2e)
        e2e_total += d;
    TablePrinter path_table(
        {"ingest stage", "count", "mean ms", "p50 ms", "p99 ms",
         "share"});
    auto addRow = [&](const std::string &name,
                      std::vector<double> &durs) {
        std::sort(durs.begin(), durs.end());
        double total = 0.0;
        for (double d : durs)
            total += d;
        path_table.addRow(
            {name, TablePrinter::num(durs.size()),
             TablePrinter::num(total / durs.size(), 3),
             TablePrinter::num(pctOf(durs, 0.50), 3),
             TablePrinter::num(pctOf(durs, 0.99), 3),
             TablePrinter::num(
                 e2e_total > 0.0 ? 100.0 * total / e2e_total : 0.0,
                 1) +
                 "%"});
    };
    for (auto &[name, durs] : stages)
        addRow(name, durs);
    addRow("(socket/wire remainder)", remainder);
    std::printf("ingest critical path (%zu traced uploads, e2e "
                "mean %.3f ms, p50 %.3f ms, p99 %.3f ms):\n%s\n",
                e2e.size(), e2e_total / e2e.size(),
                pctOf(e2e, 0.50), pctOf(e2e, 0.99),
                path_table.toString().c_str());
    return 0;
}

int
cmdSim(size_t windows, const net::FaultConfig &faults,
       const persist::PersistConfig &persist_config, bool registry_gc,
       const std::string &metrics_out, const std::string &trace_out)
{
    if (!trace_out.empty()) {
        obs::setTracing(true);
        obs::setThreadName("main");
    }
    // Tiny animals-app fleet (the test workload): big enough to light
    // up every instrumented layer, small enough for a CI smoke run.
    data::AppSpec app = data::makeAnimalsApp(13, 8);
    data::WeatherModel weather(app.locations, 21, 2020);
    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = windows;
    config.workload.days = 21;
    config.workload.devicesPerLocation = 3;
    config.workload.imagesPerDevicePerDay = 3.0;
    config.train.epochs = 20;
    config.cloud.minAdaptSamples = 16;
    config.uploadSampleRate = 0.5;
    config.seed = 17;
    config.faults = faults;
    config.persist = persist_config;
    config.registryGc = registry_gc;

    sim::Runner runner(app, weather, config);
    sim::RunResult result = runner.run();

    std::printf("\n%zu windows, base clean accuracy %.3f\n",
                result.windows.size(), result.baseCleanAccuracy);
    for (const auto &w : result.windows)
        std::printf("  window %d: events %zu acc %.3f drifted %.3f "
                    "flagged %zu causes %zu versions %zu stale %zu "
                    "skipped %zu\n",
                    w.window, w.events, w.accuracyAll(),
                    w.accuracyDrifted(), w.flagged, w.rootCauses,
                    w.newVersions, w.staleDevices, w.skippedCauses);
    std::printf("rca %.3fs, adapt %.3fs\n", result.totalRcaSeconds,
                result.totalAdaptSeconds);
    if (persist_config.enabled()) {
        std::printf("cloudCrashes %zu\n", result.cloudCrashes);
        std::printf("cloudDiskFaults %zu registryGcEvicted %zu\n",
                    result.cloudDiskFaults, result.registryGcEvicted);
    }
    // Machine-greppable summary lines (the CI chaos smoke asserts an
    // accuracy floor on the drifted number).
    std::printf("avgAccuracyAll %.4f\n", result.avgAccuracyAll());
    std::printf("avgAccuracyDrifted %.4f\n\n",
                result.avgAccuracyDrifted());
    printSnapshot(obs::Registry::global().snapshot());
    maybeWriteMetrics(metrics_out);
    if (!trace_out.empty()) {
        obs::writeTraceFile(trace_out);
        std::printf("trace: %zu events (%zu dropped) -> %s\n",
                    obs::traceEvents().size(), obs::traceDropped(),
                    trace_out.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            return usage();
        std::string cmd = argv[1];

        // Pull out --metrics-out=<path> and the fault-injection flags
        // wherever they appear.
        std::string metrics_out;
        std::string trace_out;
        net::FaultConfig faults;
        persist::PersistConfig persist_config;
        bool registry_gc = false;
        std::vector<std::string> args;
        auto probFlag = [](const std::string &arg,
                           const std::string &flag, double &out) {
            if (arg.rfind(flag, 0) != 0)
                return false;
            out = std::stod(arg.substr(flag.size()));
            return true;
        };
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            const std::string flag = "--metrics-out=";
            if (arg.rfind(flag, 0) == 0)
                metrics_out = arg.substr(flag.size());
            else if (arg.rfind("--trace-out=", 0) == 0)
                trace_out = arg.substr(12);
            else if (probFlag(arg, "--drop=", faults.dropProb) ||
                     probFlag(arg, "--dup=", faults.dupProb) ||
                     probFlag(arg, "--delay=", faults.delayProb) ||
                     probFlag(arg, "--reorder=", faults.reorderProb) ||
                     probFlag(arg, "--offline=", faults.offlineProb) ||
                     probFlag(arg, "--crash=", faults.crashProb) ||
                     probFlag(arg, "--push-drop=", faults.pushDropProb))
                continue;
            else if (arg.rfind("--queue-cap=", 0) == 0)
                faults.queueCapacity = std::stoul(arg.substr(12));
            else if (arg.rfind("--fault-seed=", 0) == 0)
                faults.seed = std::stoull(arg.substr(13));
            else if (arg.rfind("--persist-dir=", 0) == 0)
                persist_config.dir = arg.substr(14);
            else if (arg.rfind("--snapshot-every=", 0) == 0)
                persist_config.snapshotEvery = std::stoull(arg.substr(17));
            else if (arg.rfind("--crash-at=", 0) == 0)
                persist_config.crashAtHit = std::stoull(arg.substr(11));
            else if (arg.rfind("--fsync=", 0) == 0)
                persist_config.sync =
                    persist::syncModeFromString(arg.substr(8));
            else if (arg.rfind("--fault-site=", 0) == 0)
                persist_config.fault.site = arg.substr(13);
            else if (arg.rfind("--fault-kind=", 0) == 0)
                persist_config.fault.kind =
                    persist::faultKindFromString(arg.substr(13));
            else if (arg.rfind("--fault-hit=", 0) == 0)
                persist_config.fault.hit = std::stoull(arg.substr(12));
            else if (arg.rfind("--registry-gc=", 0) == 0)
                registry_gc = std::stoi(arg.substr(14)) != 0;
            else
                args.push_back(std::move(arg));
        }

        if (cmd == "gen-log" && !args.empty()) {
            size_t rows =
                args.size() > 1 ? std::stoul(args[1]) : 20000;
            uint64_t seed =
                args.size() > 2 ? std::stoull(args[2]) : 42;
            return cmdGenLog(args[0], rows, seed);
        }
        if (cmd == "analyze" && !args.empty())
            return cmdAnalyze(args[0],
                              args.size() > 1 ? args[1] : "full");
        if (cmd == "sql" && args.size() >= 2)
            return cmdSql(args[0], args[1]);
        if (cmd == "stats" && !args.empty())
            return cmdStats(args[0],
                            args.size() > 1 ? args[1] : "full",
                            metrics_out);
        if (cmd == "sim") {
            size_t windows =
                args.empty() ? 3 : std::stoul(args[0]);
            return cmdSim(windows, faults, persist_config, registry_gc,
                          metrics_out, trace_out);
        }
        if (cmd == "faults" && !args.empty())
            return cmdFaults(args[0]);
        if (cmd == "wal" && !args.empty())
            return cmdWal(args[0]);
        if (cmd == "recover" && !args.empty())
            return cmdRecover(args[0]);
        if (cmd == "scrub" && !args.empty())
            return cmdScrub(args[0]);
        if (cmd == "trace" && !args.empty())
            return cmdTrace(args[0]);
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
