/**
 * @file
 * nazar_ops — the ML-ops command-line companion.
 *
 * Lets an operator work with drift logs outside the deployed system:
 *
 *   nazar_ops gen-log <out.csv> [rows] [seed]
 *       Generate a synthetic drift log with planted weather causes.
 *
 *   nazar_ops analyze <log.csv> [fim|sr|full]
 *       Run root-cause analysis on a drift-log CSV and print the
 *       ranked FIM table plus the final causes (default: the full
 *       pipeline, §3.3 / Algorithm 1).
 *
 *   nazar_ops sql <log.csv> "<query>"
 *       Run a SQL query against the log (table name: drift_log),
 *       e.g. "SELECT weather, COUNT(*) FROM drift_log WHERE drift =
 *       true GROUP BY weather ORDER BY COUNT(*) DESC".
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "driftlog/csv.h"
#include "driftlog/drift_log.h"
#include "driftlog/sql.h"
#include "rca/analyzer.h"

using namespace nazar;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  nazar_ops gen-log <out.csv> [rows] [seed]\n"
                 "  nazar_ops analyze <log.csv> [fim|sr|full]\n"
                 "  nazar_ops sql <log.csv> \"<query>\"\n");
    return 2;
}

driftlog::Table
loadLog(const std::string &path)
{
    std::ifstream in(path);
    NAZAR_CHECK(in.good(), "cannot open: " + path);
    driftlog::DriftLog schema_holder;
    return driftlog::readCsv(schema_holder.table().schema(), in);
}

int
cmdGenLog(const std::string &path, size_t rows, uint64_t seed)
{
    Rng rng(seed);
    const char *weathers[] = {"clear-day", "rain", "snow", "fog"};
    const char *locations[] = {"new_york", "tibet", "beijing",
                               "new_south_wales", "united_kingdom",
                               "quebec", "sao_paulo"};
    driftlog::DriftLog log;
    for (size_t i = 0; i < rows; ++i) {
        driftlog::DriftLogEntry e;
        e.time = SimDate(static_cast<int>(i % 112),
                         static_cast<int>(rng.uniformInt(0, 86399)));
        int device = static_cast<int>(rng.index(112));
        e.deviceId = "android_" + std::to_string(device);
        e.deviceModel = "model_" + std::to_string(device % 4);
        e.location = locations[rng.index(7)];
        size_t w = rng.index(4);
        e.weather = weathers[w];
        e.drift = w != 0 ? rng.bernoulli(0.7) : rng.bernoulli(0.2);
        log.add(e);
    }
    std::ofstream out(path);
    NAZAR_CHECK(out.good(), "cannot write: " + path);
    driftlog::writeCsv(log.table(), out);
    std::printf("wrote %zu rows to %s (planted causes: rain, snow, "
                "fog)\n",
                rows, path.c_str());
    return 0;
}

int
cmdAnalyze(const std::string &path, const std::string &mode_name)
{
    rca::AnalysisMode mode = rca::AnalysisMode::kFull;
    if (mode_name == "fim")
        mode = rca::AnalysisMode::kFimOnly;
    else if (mode_name == "sr")
        mode = rca::AnalysisMode::kFimSetReduction;
    else if (mode_name != "full")
        throw NazarError("unknown analysis mode: " + mode_name);

    driftlog::Table table = loadLog(path);
    std::printf("%zu entries, %zu flagged as drift\n\n",
                table.rowCount(),
                driftlog::Query(table)
                    .where(driftlog::columns::kDrift,
                           driftlog::Value(true))
                    .count());

    rca::RcaConfig config;
    config.attributeColumns =
        driftlog::DriftLog::defaultAttributeColumns();
    rca::Analyzer analyzer(config);
    rca::AnalysisResult result = analyzer.analyze(table, mode);

    TablePrinter fim({"rank", "occurrence", "support", "risk ratio",
                      "confidence", "attributes"});
    int rank = 0;
    for (const auto &cause : result.fimTable) {
        if (!rca::passesThresholds(cause.metrics, config))
            continue;
        fim.addRow({std::to_string(rank++),
                    TablePrinter::num(cause.metrics.occurrence),
                    TablePrinter::num(cause.metrics.support),
                    TablePrinter::num(cause.metrics.riskRatio, 2),
                    TablePrinter::num(cause.metrics.confidence, 2),
                    cause.attrs.toString()});
        if (rank >= 20)
            break;
    }
    std::printf("thresholded FIM table (top %d):\n%s\n", rank,
                fim.toString().c_str());

    std::printf("root causes (%s):\n", toString(mode).c_str());
    if (result.rootCauses.empty())
        std::printf("  (none)\n");
    for (const auto &cause : result.rootCauses)
        std::printf("  %s  conf %.2f  rr %.2f  (%zu drifted entries)\n",
                    cause.attrs.toString().c_str(),
                    cause.metrics.confidence, cause.metrics.riskRatio,
                    cause.metrics.setDriftCount);
    return 0;
}

int
cmdSql(const std::string &path, const std::string &query)
{
    driftlog::Table table = loadLog(path);
    driftlog::SqlResult result =
        driftlog::executeSql(table, "drift_log", query);
    std::printf("%s(%zu rows)\n", result.toString().c_str(),
                result.rowCount());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 3)
            return usage();
        std::string cmd = argv[1];
        if (cmd == "gen-log") {
            size_t rows = argc > 3 ? std::stoul(argv[3]) : 20000;
            uint64_t seed = argc > 4 ? std::stoull(argv[4]) : 42;
            return cmdGenLog(argv[2], rows, seed);
        }
        if (cmd == "analyze")
            return cmdAnalyze(argv[2], argc > 3 ? argv[3] : "full");
        if (cmd == "sql") {
            if (argc < 4)
                return usage();
            return cmdSql(argv[2], argv[3]);
        }
        return usage();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
