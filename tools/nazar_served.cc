/**
 * @file
 * nazar_served: the networked cloud as a process.
 *
 * Three modes:
 *
 *   serve  — stand up a Cloud plus a TCP IngestServer and run until
 *            SIGTERM/SIGINT. `--port-file=<path>` writes the bound
 *            port (the OS picks one when --port=0) so a driver script
 *            can find it without racing. On shutdown it prints a
 *            greppable `SERVED ... clean shutdown` line.
 *
 *   load   — drive a running server with the multi-client load
 *            generator, optionally through the socket-level chaos
 *            layer (--drop= --dup=). Prints per-run tallies and
 *            `RECONCILED ok` when every unique (device, seq) was
 *            accepted exactly once and every duplicate rejected;
 *            exits 1 on a mismatch.
 *
 *   smoke  — serve + load in one process (no fork, no port file),
 *            for sanitizer legs in CI where a single binary is
 *            easiest to wrap.
 *
 *   supervise — the chaos harness: fork a serve child on a fixed
 *            port + state dir, drive it with reconnect-enabled load
 *            clients, SIGKILL and respawn the child --kills times
 *            mid-load, then reconcile exactly — every client must
 *            end with acksAccepted == sent, and the state dir must
 *            recover to exactly acksAccepted ingests. Prints
 *            `SUPERVISE ...` and the final `RECONCILED ok` line;
 *            exits 1 on any mismatch.
 *
 * Durability flags mirror nazar_ops sim: --persist-dir= puts a WAL
 * and snapshots under the dir, --fsync= picks the sync mode, and
 * --group-commit=0 forces per-record flushing for comparison runs.
 */
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "net/fault.h"
#include "net/tcp.h"
#include "nn/classifier.h"
#include "obs/export.h"
#include "obs/span.h"
#include "persist/cloud_persist.h"
#include "server/ingest_server.h"
#include "server/load_gen.h"
#include "sim/cloud.h"

using namespace nazar;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  nazar_served serve [--port=N] [--port-file=<path>] "
        "[--persist-dir=<dir> --snapshot-every=N "
        "--fsync=flush|fdatasync|fsync] "
        "[--group-commit=0|1 --max-batch=N --max-queue=N "
        "--read-timeout-ms=N]\n"
        "  nazar_served load --port=N [--clients=N --events=N "
        "--drop=P --dup=P --fault-seed=S --reconnect=0|1]\n"
        "  nazar_served smoke [--clients=N --events=N --drop=P "
        "--dup=P --fault-seed=S] [--persist-dir=<dir> ...]\n"
        "  nazar_served supervise --persist-dir=<dir> [--kills=N "
        "--kill-after-ms=M | --disk-faults=N] [--clients=N --events=N "
        "--drop=P --dup=P --fault-seed=S] [serve flags]\n"
        "  serve only: [--disk-fault-site=<env site> "
        "--disk-fault-kind=enospc|eio|sync_fail|short_write "
        "--disk-fault-hit=N] arms one injected disk fault; when it "
        "latches, the server degrades (no acks) and the process "
        "self-exits with a greppable line\n"
        "  any mode: [--trace-out=<file>] enables causal tracing and "
        "writes a Chrome trace_event JSON (Perfetto-loadable) on "
        "exit\n");
    return 2;
}

/** The small fixed base every serve-mode cloud adapts around. */
nn::Classifier
serveBase()
{
    return nn::Classifier(nn::Architecture::kResNet18, 8, 4, 1);
}

/** Everything both serve and smoke need to bring a server up. */
struct ServeOptions
{
    uint16_t port = 0;
    std::string portFile;
    server::ServerConfig server;
    persist::PersistConfig persist;
};

struct LoadOptions
{
    uint16_t port = 0;
    server::LoadConfig load;
};

struct SuperviseOptions
{
    int kills = 2;
    int killAfterMs = 300;
    /**
     * When > 0, run disk-fault episodes instead of SIGKILLs: each
     * episode spawns a child with one armed Env fault; the child
     * latches, degrades, and self-exits; the respawn over the same
     * state dir (fresh environment = cleared fault) is the recovery.
     * The final child runs fault-free so the load can finish.
     */
    int diskFaults = 0;
    /** Serve-side flags forwarded verbatim to the forked child. */
    std::vector<std::string> serveArgs;
};

void
printLoadStats(const server::LoadStats &stats,
               bool print_reconciled = true)
{
    std::printf("LOADGEN sent=%zu accepted=%zu rejected=%zu "
                "gaveUp=%zu duplicates=%zu retries=%zu "
                "dictStrings=%zu dictHits=%zu\n",
                stats.sent, stats.acksAccepted, stats.acksRejected,
                stats.gaveUp, stats.duplicates, stats.retries,
                stats.dictStrings, stats.dictHits);
    std::printf("LOADGEN eventsPerSec=%.0f p50Ms=%.3f p99Ms=%.3f\n",
                stats.eventsPerSec, stats.p50Ms, stats.p99Ms);
    std::printf("LOADGEN reconnects=%zu resent=%zu resumedLanded=%zu "
                "busySeen=%zu\n",
                stats.reconnects, stats.resent, stats.resumedLanded,
                stats.busySeen);
    for (const auto &stage : stats.stages)
        std::printf("LOADGEN stage %s count=%zu p50Ms=%.3f "
                    "p99Ms=%.3f meanMs=%.3f\n",
                    stage.name.c_str(), stage.count, stage.p50Ms,
                    stage.p99Ms, stage.meanMs);
    if (print_reconciled)
        std::printf(stats.reconciled ? "RECONCILED ok\n"
                                     : "RECONCILED MISMATCH\n");
}

int
cmdServe(const ServeOptions &opts)
{
    nn::Classifier base = serveBase();
    sim::CloudConfig config;
    config.persist = opts.persist;
    sim::Cloud cloud(config, base);

    server::IngestServer server(cloud, opts.server);
    server.start();
    std::printf("SERVED listening port=%u groupCommit=%d\n",
                static_cast<unsigned>(server.port()),
                opts.server.groupCommit ? 1 : 0);
    std::fflush(stdout);
    if (!opts.portFile.empty()) {
        // Write-then-rename so a polling driver never reads a
        // half-written port number.
        std::string tmp = opts.portFile + ".tmp";
        {
            std::ofstream out(tmp);
            NAZAR_CHECK(out.good(),
                        "cannot write port file: " + tmp);
            out << server.port() << "\n";
        }
        NAZAR_CHECK(std::rename(tmp.c_str(),
                                opts.portFile.c_str()) == 0,
                    "cannot move port file into place: " +
                        opts.portFile);
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    while (!g_stop && !server.diskFaulted())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    if (server.diskFaulted()) {
        // The disk under the state dir "failed": the server is
        // degraded (draining without acks) and no further write can
        // succeed, so play a dying server process — the supervisor's
        // respawn over the same state dir, with a fresh environment,
        // is the recovery.
        std::string site = server.diskFaultSite();
        server.stop();
        std::printf("SERVED disk fault latched site=%s ingested=%zu "
                    "exiting\n",
                    site.c_str(), cloud.totalIngested());
        std::fflush(stdout);
        return 0;
    }

    server.stop();
    server::ServerStats stats = server.stats();
    std::printf("SERVED connections=%zu ingested=%zu dedup=%zu "
                "batches=%zu cycles=%zu flushes=%zu "
                "protocolErrors=%zu clean shutdown\n",
                stats.connections, cloud.totalIngested(),
                cloud.dedupHits(), stats.batches, stats.cycles,
                stats.flushes, stats.protocolErrors);
    return 0;
}

int
cmdLoad(const LoadOptions &opts)
{
    server::LoadConfig load = opts.load;
    load.port = opts.port;
    NAZAR_CHECK(load.port != 0, "load mode needs --port=N");
    server::LoadStats stats = server::runLoad(load);
    printLoadStats(stats);
    return stats.reconciled ? 0 : 1;
}

int
cmdSmoke(const ServeOptions &serve_opts, const LoadOptions &load_opts)
{
    nn::Classifier base = serveBase();
    sim::CloudConfig config;
    config.persist = serve_opts.persist;
    sim::Cloud cloud(config, base);
    server::IngestServer server(cloud, serve_opts.server);
    server.start();

    server::LoadConfig load = load_opts.load;
    load.port = server.port();
    server::LoadStats stats = server::runLoad(load);
    printLoadStats(stats);

    server.stop();
    server::ServerStats ss = server.stats();
    bool tallies_match = cloud.totalIngested() == stats.acksAccepted &&
                         cloud.dedupHits() == stats.acksRejected &&
                         ss.protocolErrors == 0;
    std::printf("SERVED connections=%zu ingested=%zu dedup=%zu "
                "batches=%zu protocolErrors=%zu clean shutdown\n",
                ss.connections, cloud.totalIngested(),
                cloud.dedupHits(), ss.batches, ss.protocolErrors);
    return stats.reconciled && tallies_match ? 0 : 1;
}

/** A currently-free loopback port, released before the child binds
 *  it (SO_REUSEADDR makes the tiny handoff window benign). */
uint16_t
pickFreePort()
{
    net::TcpListener probe;
    probe.listen(0);
    uint16_t port = probe.port();
    probe.close();
    return port;
}

/** Fork + exec a `nazar_served serve` child; returns its pid. */
pid_t
spawnServe(const std::vector<std::string> &args)
{
    pid_t pid = ::fork();
    NAZAR_CHECK(pid >= 0, "supervise: fork failed");
    if (pid == 0) {
        std::vector<char *> argvp;
        static const char *exe = "/proc/self/exe";
        argvp.push_back(const_cast<char *>(exe));
        for (const auto &a : args)
            argvp.push_back(const_cast<char *>(a.c_str()));
        argvp.push_back(nullptr);
        ::execv(exe, argvp.data());
        std::fprintf(stderr, "supervise: execv failed\n");
        ::_exit(127);
    }
    return pid;
}

int
cmdSupervise(const ServeOptions &serve_opts,
             const LoadOptions &load_opts,
             const SuperviseOptions &sup)
{
    NAZAR_CHECK(!serve_opts.persist.dir.empty(),
                "supervise needs --persist-dir=<dir>");
    uint16_t port = pickFreePort();
    std::vector<std::string> childArgs;
    childArgs.push_back("serve");
    childArgs.push_back("--port=" + std::to_string(port));
    for (const auto &a : sup.serveArgs)
        childArgs.push_back(a);

    // Disk-fault episodes arm one deterministic Env fault per child,
    // alternating between the per-record WAL write path (hundreds of
    // hits per run, so a mid-load hit count) and the per-batch sync
    // path (few hits, so a small count). sync_fail exercises the
    // worst case: buffered-but-unsynced bytes are dropped on the
    // floor, and recovery must come from the last durable state.
    auto faultArgsFor = [&childArgs](int episode) {
        std::vector<std::string> args = childArgs;
        if (episode % 2 == 0) {
            args.push_back("--disk-fault-site=env.wal.write");
            args.push_back("--disk-fault-kind=enospc");
            args.push_back("--disk-fault-hit=" +
                           std::to_string(40 + 25 * episode));
        } else {
            args.push_back("--disk-fault-site=env.wal.sync");
            args.push_back("--disk-fault-kind=sync_fail");
            args.push_back("--disk-fault-hit=" +
                           std::to_string(2 + episode));
        }
        return args;
    };

    pid_t child = sup.diskFaults > 0 ? spawnServe(faultArgsFor(0))
                                     : spawnServe(childArgs);

    // The load clients ride through the kills: reconnect enabled,
    // with enough attempts to outlast a child respawn (the respawned
    // server replays its WAL before it listens).
    server::LoadConfig load = load_opts.load;
    load.port = port;
    load.reconnect.enabled = true;
    if (load.reconnect.recvTimeoutMs == 0)
        load.reconnect.recvTimeoutMs = 5000;

    std::atomic<bool> loadDone{false};
    server::LoadStats stats;
    std::string loadError;
    std::thread loadThread([&] {
        try {
            stats = server::runLoad(load);
        } catch (const NazarError &e) {
            loadError = e.what();
        }
        loadDone = true;
    });

    int killsDone = 0;
    int faultsDone = 0;
    if (sup.diskFaults > 0) {
        for (int k = 0; k < sup.diskFaults; ++k) {
            // Wait for the faulted child to latch and self-exit. If
            // the load finishes first (the armed hit was never
            // reached), stop injecting — the SIGTERM below still
            // shuts the child down cleanly.
            bool exited = false;
            while (!loadDone) {
                if (::waitpid(child, nullptr, WNOHANG) == child) {
                    exited = true;
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
            if (!exited)
                break;
            ++faultsDone;
            // Respawn over the same state dir: recovery from the
            // last durable state, the next episode's fault armed in
            // a fresh environment (= the fault was cleared). The
            // final child runs fault-free so the load can finish.
            child = (k + 1 < sup.diskFaults)
                        ? spawnServe(faultArgsFor(k + 1))
                        : spawnServe(childArgs);
        }
    } else {
        for (int k = 0; k < sup.kills && !loadDone; ++k) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sup.killAfterMs));
            if (loadDone)
                break;
            ::kill(child, SIGKILL);
            ::waitpid(child, nullptr, 0);
            ++killsDone;
            // Same port, same state dir: the respawn IS the recovery —
            // WAL replay + snapshot rebuild the dedup windows the
            // resuming clients reconcile against.
            child = spawnServe(childArgs);
        }
    }
    loadThread.join();

    ::kill(child, SIGTERM);
    ::waitpid(child, nullptr, 0);

    if (!loadError.empty()) {
        std::fprintf(stderr, "supervise: load failed: %s\n",
                     loadError.c_str());
        std::printf("RECONCILED MISMATCH\n");
        return 1;
    }
    printLoadStats(stats, /*print_reconciled=*/false);

    // The durable state must account for exactly the accepted
    // ingests — nothing lost across the kills, nothing applied twice.
    persist::RecoveredState recovered =
        persist::recoverDir(serve_opts.persist.dir);
    bool stateOk = recovered.totalIngested == stats.acksAccepted;
    std::printf("SUPERVISE kills=%d diskFaults=%d ingested=%zu "
                "accepted=%zu reconnects=%zu resent=%zu stateOk=%d\n",
                killsDone, faultsDone, recovered.totalIngested,
                stats.acksAccepted, stats.reconnects, stats.resent,
                stateOk ? 1 : 0);
    bool ok = stats.reconciled && stateOk;
    std::printf(ok ? "RECONCILED ok\n" : "RECONCILED MISMATCH\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc < 2)
            return usage();
        std::string cmd = argv[1];

        ServeOptions serve;
        LoadOptions load;
        SuperviseOptions sup;
        std::string traceOut;
        auto probFlag = [](const std::string &arg,
                           const std::string &flag, double &out) {
            if (arg.rfind(flag, 0) != 0)
                return false;
            out = std::stod(arg.substr(flag.size()));
            return true;
        };
        // Serve-side flags a supervise parent forwards verbatim to
        // its forked serve children.
        const char *const kServeFlags[] = {
            "--persist-dir=",  "--snapshot-every=", "--fsync=",
            "--group-commit=", "--max-batch=",      "--max-queue=",
            "--read-timeout-ms="};
        for (int i = 2; i < argc; ++i) {
            std::string arg = argv[i];
            for (const char *flag : kServeFlags) {
                if (arg.rfind(flag, 0) == 0) {
                    sup.serveArgs.push_back(arg);
                    break;
                }
            }
            if (arg.rfind("--port=", 0) == 0) {
                int port = std::stoi(arg.substr(7));
                NAZAR_CHECK(port >= 0 && port <= 65535,
                            "port out of range: " + arg);
                serve.port = static_cast<uint16_t>(port);
                load.port = static_cast<uint16_t>(port);
                serve.server.port = serve.port;
            } else if (arg.rfind("--port-file=", 0) == 0)
                serve.portFile = arg.substr(12);
            else if (arg.rfind("--group-commit=", 0) == 0)
                serve.server.groupCommit =
                    std::stoi(arg.substr(15)) != 0;
            else if (arg.rfind("--max-batch=", 0) == 0)
                serve.server.maxBatch = std::stoul(arg.substr(12));
            else if (arg.rfind("--max-queue=", 0) == 0)
                serve.server.maxQueue = std::stoul(arg.substr(12));
            else if (arg.rfind("--read-timeout-ms=", 0) == 0)
                serve.server.readTimeoutMs = std::stoi(arg.substr(18));
            else if (arg.rfind("--persist-dir=", 0) == 0)
                serve.persist.dir = arg.substr(14);
            else if (arg.rfind("--snapshot-every=", 0) == 0)
                serve.persist.snapshotEvery =
                    std::stoull(arg.substr(17));
            else if (arg.rfind("--fsync=", 0) == 0)
                serve.persist.sync =
                    persist::syncModeFromString(arg.substr(8));
            else if (arg.rfind("--disk-fault-site=", 0) == 0)
                serve.persist.fault.site = arg.substr(18);
            else if (arg.rfind("--disk-fault-kind=", 0) == 0)
                serve.persist.fault.kind =
                    persist::faultKindFromString(arg.substr(18));
            else if (arg.rfind("--disk-fault-hit=", 0) == 0)
                serve.persist.fault.hit = std::stoull(arg.substr(17));
            else if (arg.rfind("--disk-faults=", 0) == 0)
                sup.diskFaults = std::stoi(arg.substr(14));
            else if (arg.rfind("--clients=", 0) == 0)
                load.load.clients = std::stoul(arg.substr(10));
            else if (arg.rfind("--events=", 0) == 0)
                load.load.eventsPerClient = std::stoul(arg.substr(9));
            else if (probFlag(arg, "--drop=", load.load.chaos.dropProb) ||
                     probFlag(arg, "--dup=", load.load.chaos.dupProb))
                continue;
            else if (arg.rfind("--fault-seed=", 0) == 0)
                load.load.chaos.seed = std::stoull(arg.substr(13));
            else if (arg.rfind("--reconnect=", 0) == 0)
                load.load.reconnect.enabled =
                    std::stoi(arg.substr(12)) != 0;
            else if (arg.rfind("--kills=", 0) == 0)
                sup.kills = std::stoi(arg.substr(8));
            else if (arg.rfind("--kill-after-ms=", 0) == 0)
                sup.killAfterMs = std::stoi(arg.substr(16));
            else if (arg.rfind("--trace-out=", 0) == 0)
                traceOut = arg.substr(12);
            else
                return usage();
        }

        setLogLevel(LogLevel::kWarn);
        if (!traceOut.empty()) {
            obs::setTracing(true);
            obs::setThreadName("main");
        }
        int rc;
        if (cmd == "serve")
            rc = cmdServe(serve);
        else if (cmd == "load")
            rc = cmdLoad(load);
        else if (cmd == "smoke")
            rc = cmdSmoke(serve, load);
        else if (cmd == "supervise")
            rc = cmdSupervise(serve, load, sup);
        else
            return usage();
        if (!traceOut.empty()) {
            obs::writeTraceFile(traceOut);
            std::printf("TRACE events=%zu dropped=%zu file=%s\n",
                        obs::traceEvents().size(), obs::traceDropped(),
                        traceOut.c_str());
        }
        return rc;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
