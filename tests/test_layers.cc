/**
 * @file
 * Tests for the NN layers, including finite-difference gradient checks
 * of every backward pass.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "nn/sequential.h"

namespace nazar::nn {
namespace {

/** Scalar probe loss: L = sum(output .* weights). */
double
probeLoss(Layer &layer, const Matrix &x, const Matrix &probe, Mode mode)
{
    Matrix y = layer.forward(x, mode);
    return y.cwiseProduct(probe).sum();
}

/** Finite-difference gradient of the probe loss w.r.t. one matrix. */
Matrix
numericalGrad(Layer &layer, Matrix &target, const Matrix &x,
              const Matrix &probe, Mode mode, double eps = 1e-6)
{
    Matrix grad(target.rows(), target.cols());
    for (size_t r = 0; r < target.rows(); ++r) {
        for (size_t c = 0; c < target.cols(); ++c) {
            double saved = target(r, c);
            target(r, c) = saved + eps;
            double up = probeLoss(layer, x, probe, mode);
            target(r, c) = saved - eps;
            double down = probeLoss(layer, x, probe, mode);
            target(r, c) = saved;
            grad(r, c) = (up - down) / (2.0 * eps);
        }
    }
    return grad;
}

TEST(Linear, ForwardMatchesManualComputation)
{
    Rng rng(1);
    Linear lin(2, 2, rng);
    lin.weight().value = Matrix::fromRows({{1, 2}, {3, 4}});
    lin.bias().value = Matrix::rowVector({10, 20});
    Matrix y = lin.forward(Matrix::fromRows({{1, 1}}), Mode::kEval);
    EXPECT_TRUE(y.approxEquals(Matrix::fromRows({{14, 26}})));
}

TEST(Linear, GradientCheckWeights)
{
    Rng rng(2);
    Linear lin(4, 3, rng);
    Matrix x = Matrix::randomNormal(5, 4, 1.0, rng);
    Matrix probe = Matrix::randomNormal(5, 3, 1.0, rng);

    lin.forward(x, Mode::kTrain);
    lin.weight().zeroGrad();
    lin.bias().zeroGrad();
    Matrix grad_in = lin.backward(probe, Mode::kTrain);

    Matrix num_w =
        numericalGrad(lin, lin.weight().value, x, probe, Mode::kTrain);
    Matrix num_b =
        numericalGrad(lin, lin.bias().value, x, probe, Mode::kTrain);
    EXPECT_TRUE(lin.weight().grad.approxEquals(num_w, 1e-5));
    EXPECT_TRUE(lin.bias().grad.approxEquals(num_b, 1e-5));

    // Input gradient via finite differences.
    Matrix num_x(5, 4);
    for (size_t r = 0; r < 5; ++r) {
        for (size_t c = 0; c < 4; ++c) {
            Matrix xp = x, xm = x;
            xp(r, c) += 1e-6;
            xm(r, c) -= 1e-6;
            num_x(r, c) = (probeLoss(lin, xp, probe, Mode::kTrain) -
                           probeLoss(lin, xm, probe, Mode::kTrain)) /
                          2e-6;
        }
    }
    EXPECT_TRUE(grad_in.approxEquals(num_x, 1e-5));
}

TEST(Linear, AdaptModeFreezesParameters)
{
    Rng rng(3);
    Linear lin(3, 2, rng);
    EXPECT_TRUE(lin.params(Mode::kAdapt).empty());
    EXPECT_EQ(lin.params(Mode::kTrain).size(), 2u);

    Matrix x = Matrix::randomNormal(4, 3, 1.0, rng);
    Matrix g = Matrix::randomNormal(4, 2, 1.0, rng);
    lin.forward(x, Mode::kAdapt);
    lin.weight().zeroGrad();
    lin.backward(g, Mode::kAdapt);
    EXPECT_EQ(lin.weight().grad.maxAbs(), 0.0); // no grads accumulated
}

TEST(Linear, RejectsBadShapes)
{
    Rng rng(4);
    Linear lin(3, 2, rng);
    EXPECT_THROW(lin.forward(Matrix(1, 4), Mode::kEval), NazarError);
    EXPECT_THROW(Linear(0, 2, rng), NazarError);
}

TEST(BatchNorm, TrainForwardNormalizes)
{
    BatchNorm1d bn(2);
    Matrix x = Matrix::fromRows({{1, 10}, {3, 20}, {5, 30}});
    Matrix y = bn.forward(x, Mode::kTrain);
    // Each column of the output has mean ~0 and (biased) variance ~1.
    Matrix m = y.colMean();
    EXPECT_NEAR(m(0, 0), 0.0, 1e-9);
    EXPECT_NEAR(m(0, 1), 0.0, 1e-9);
    double var0 = 0.0;
    for (size_t r = 0; r < 3; ++r)
        var0 += y(r, 0) * y(r, 0);
    EXPECT_NEAR(var0 / 3.0, 1.0, 1e-4);
}

TEST(BatchNorm, RunningStatsConvergeToDataStats)
{
    BatchNorm1d bn(1, /*momentum=*/0.3);
    Rng rng(5);
    for (int i = 0; i < 400; ++i) {
        Matrix x(16, 1);
        for (size_t r = 0; r < 16; ++r)
            x(r, 0) = rng.normal(7.0, 2.0);
        bn.forward(x, Mode::kTrain);
    }
    EXPECT_NEAR(bn.runningMean()(0, 0), 7.0, 0.5);
    EXPECT_NEAR(bn.runningVar()(0, 0), 4.0, 1.0);
}

TEST(BatchNorm, EvalUsesRunningStats)
{
    BatchNorm1d bn(1);
    BnState s = bn.state();
    s.runningMean(0, 0) = 4.0;
    s.runningVar(0, 0) = 9.0;
    s.gamma(0, 0) = 2.0;
    s.beta(0, 0) = 1.0;
    bn.setState(s);
    Matrix y = bn.forward(Matrix::fromRows({{7.0}}), Mode::kEval);
    // (7-4)/3 * 2 + 1 = 3.
    EXPECT_NEAR(y(0, 0), 3.0, 1e-4);
}

TEST(BatchNorm, EvalModeDoesNotMutateState)
{
    BatchNorm1d bn(3);
    BnState before = bn.state();
    Rng rng(6);
    bn.forward(Matrix::randomNormal(8, 3, 2.0, rng), Mode::kEval);
    BnState after = bn.state();
    EXPECT_TRUE(before.runningMean.approxEquals(after.runningMean));
    EXPECT_TRUE(before.runningVar.approxEquals(after.runningVar));
}

TEST(BatchNorm, AdaptModeUpdatesRunningStats)
{
    BatchNorm1d bn(2);
    Matrix before = bn.runningMean();
    Rng rng(7);
    Matrix x = Matrix::randomNormal(8, 2, 1.0, rng);
    x.addRowBroadcast(Matrix::rowVector({5.0, -5.0}));
    bn.forward(x, Mode::kAdapt);
    EXPECT_FALSE(bn.runningMean().approxEquals(before, 1e-6));
}

TEST(BatchNorm, GradientCheckGammaBetaInput)
{
    BatchNorm1d bn(3);
    Rng rng(8);
    // Non-trivial gamma/beta so the test exercises the general case.
    BnState s = bn.state();
    s.gamma = Matrix::rowVector({1.5, 0.5, 2.0});
    s.beta = Matrix::rowVector({0.3, -0.2, 0.1});
    bn.setState(s);

    Matrix x = Matrix::randomNormal(6, 3, 1.5, rng);
    Matrix probe = Matrix::randomNormal(6, 3, 1.0, rng);

    bn.forward(x, Mode::kTrain);
    bn.gamma().zeroGrad();
    bn.beta().zeroGrad();
    Matrix grad_in = bn.backward(probe, Mode::kTrain);

    Matrix num_g =
        numericalGrad(bn, bn.gamma().value, x, probe, Mode::kTrain);
    Matrix num_b =
        numericalGrad(bn, bn.beta().value, x, probe, Mode::kTrain);
    EXPECT_TRUE(bn.gamma().grad.approxEquals(num_g, 1e-4));
    EXPECT_TRUE(bn.beta().grad.approxEquals(num_b, 1e-4));

    Matrix num_x(6, 3);
    for (size_t r = 0; r < 6; ++r) {
        for (size_t c = 0; c < 3; ++c) {
            Matrix xp = x, xm = x;
            xp(r, c) += 1e-5;
            xm(r, c) -= 1e-5;
            num_x(r, c) = (probeLoss(bn, xp, probe, Mode::kTrain) -
                           probeLoss(bn, xm, probe, Mode::kTrain)) /
                          2e-5;
        }
    }
    EXPECT_TRUE(grad_in.approxEquals(num_x, 1e-3));
}

TEST(BatchNorm, ParamsExposedInAdaptMode)
{
    BatchNorm1d bn(4);
    EXPECT_EQ(bn.params(Mode::kAdapt).size(), 2u); // gamma + beta
    EXPECT_EQ(bn.params(Mode::kTrain).size(), 2u);
}

TEST(BatchNorm, RequiresBatchOfTwoForBatchStats)
{
    BatchNorm1d bn(2);
    EXPECT_THROW(bn.forward(Matrix(1, 2), Mode::kTrain), NazarError);
    EXPECT_NO_THROW(bn.forward(Matrix(1, 2), Mode::kEval));
}

TEST(BatchNorm, StateRoundTrip)
{
    BatchNorm1d a(3), b(3);
    Rng rng(9);
    a.forward(Matrix::randomNormal(8, 3, 2.0, rng), Mode::kTrain);
    b.setState(a.state());
    Matrix x = Matrix::randomNormal(4, 3, 1.0, rng);
    EXPECT_TRUE(a.forward(x, Mode::kEval)
                    .approxEquals(b.forward(x, Mode::kEval), 1e-12));
}

TEST(Relu, ForwardAndBackward)
{
    Relu relu(3);
    Matrix x = Matrix::fromRows({{-1, 0, 2}});
    Matrix y = relu.forward(x, Mode::kTrain);
    EXPECT_TRUE(y.approxEquals(Matrix::fromRows({{0, 0, 2}})));
    Matrix g = relu.backward(Matrix::fromRows({{5, 5, 5}}), Mode::kTrain);
    EXPECT_TRUE(g.approxEquals(Matrix::fromRows({{0, 0, 5}})));
}

TEST(Tanh, GradientCheck)
{
    Tanh tanh_layer(2);
    Rng rng(10);
    Matrix x = Matrix::randomNormal(4, 2, 1.0, rng);
    Matrix probe = Matrix::randomNormal(4, 2, 1.0, rng);
    tanh_layer.forward(x, Mode::kTrain);
    Matrix grad_in = tanh_layer.backward(probe, Mode::kTrain);
    Matrix num_x(4, 2);
    for (size_t r = 0; r < 4; ++r) {
        for (size_t c = 0; c < 2; ++c) {
            Matrix xp = x, xm = x;
            xp(r, c) += 1e-6;
            xm(r, c) -= 1e-6;
            num_x(r, c) =
                (probeLoss(tanh_layer, xp, probe, Mode::kTrain) -
                 probeLoss(tanh_layer, xm, probe, Mode::kTrain)) /
                2e-6;
        }
    }
    EXPECT_TRUE(grad_in.approxEquals(num_x, 1e-5));
}

TEST(Sequential, ChainsLayersAndCollectsParams)
{
    Rng rng(11);
    Sequential net;
    net.add(std::make_unique<Linear>(4, 8, rng));
    net.add(std::make_unique<BatchNorm1d>(8));
    net.add(std::make_unique<Relu>(8));
    net.add(std::make_unique<Linear>(8, 3, rng));

    EXPECT_EQ(net.layerCount(), 4u);
    EXPECT_EQ(net.batchNormLayers().size(), 1u);
    // Train: 2 linears x 2 params + 1 bn x 2 params.
    EXPECT_EQ(net.params(Mode::kTrain).size(), 6u);
    // Adapt: only the BN affines.
    EXPECT_EQ(net.params(Mode::kAdapt).size(), 2u);

    Matrix x = Matrix::randomNormal(5, 4, 1.0, rng);
    Matrix y = net.forward(x, Mode::kTrain);
    EXPECT_EQ(y.rows(), 5u);
    EXPECT_EQ(y.cols(), 3u);

    net.zeroGrads();
    Matrix g = net.backward(Matrix::randomNormal(5, 3, 1.0, rng),
                            Mode::kTrain);
    EXPECT_EQ(g.rows(), 5u);
    EXPECT_EQ(g.cols(), 4u);
    EXPECT_GT(net.parameterCount(), 0u);
}

TEST(Sequential, RejectsNullLayer)
{
    Sequential net;
    EXPECT_THROW(net.add(nullptr), NazarError);
}

} // namespace
} // namespace nazar::nn
