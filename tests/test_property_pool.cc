/**
 * @file
 * Property tests for the model pool and version matcher under random
 * operation sequences.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "deploy/matcher.h"
#include "deploy/model_pool.h"

namespace nazar::deploy {
namespace {

using driftlog::Value;
using rca::Attribute;
using rca::AttributeSet;

/** Random non-empty attribute set over small attribute cardinalities. */
AttributeSet
randomCause(Rng &rng)
{
    const char *columns[] = {"weather", "location", "device_id"};
    std::vector<Attribute> attrs;
    // 1..3 attributes over distinct columns.
    size_t count = 1 + rng.index(3);
    std::vector<size_t> cols = {0, 1, 2};
    rng.shuffle(cols);
    for (size_t i = 0; i < count; ++i) {
        attrs.push_back(
            {columns[cols[i]],
             Value("v" + std::to_string(rng.index(3)))});
    }
    return AttributeSet(std::move(attrs));
}

ModelVersion
randomVersion(Rng &rng, int64_t id, int64_t time)
{
    ModelVersion v;
    v.id = id;
    v.cause = randomCause(rng);
    v.riskRatio = rng.uniform(1.0, 5.0);
    v.updatedAt = time;
    return v;
}

class PoolPropertyTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(PoolPropertyTest, InvariantsHoldUnderRandomInstalls)
{
    size_t capacity = GetParam();
    Rng rng(1000 + capacity);
    ModelPool pool(capacity);

    for (int step = 0; step < 300; ++step) {
        ModelVersion v = randomVersion(rng, step + 1, step + 1);
        AttributeSet installed_cause = v.cause;
        pool.install(std::move(v));

        // Capacity respected.
        if (capacity > 0)
            EXPECT_LE(pool.size(), capacity);

        // Causes are unique.
        std::set<AttributeSet> seen;
        for (const auto &stored : pool.versions())
            EXPECT_TRUE(seen.insert(stored.cause).second);

        // The just-installed cause has no surviving attribute-superset
        // version (rule 2 evicted them).
        for (const auto &stored : pool.versions())
            EXPECT_FALSE(
                installed_cause.isProperSubsetOf(stored.cause))
                << "superset " << stored.cause.toString()
                << " survived install of "
                << installed_cause.toString();

        // Recency order: updatedAt non-increasing front to back.
        int64_t prev = std::numeric_limits<int64_t>::max();
        for (const auto &stored : pool.versions()) {
            EXPECT_LE(stored.updatedAt, prev);
            prev = stored.updatedAt;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, PoolPropertyTest,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u));

/** Brute-force reference for selectVersion's documented ordering. */
const ModelVersion *
bruteForceSelect(const ModelPool &pool, const AttributeSet &context)
{
    const ModelVersion *best = nullptr;
    for (const auto &v : pool.versions()) {
        if (!causeMatchesContext(v.cause, context))
            continue;
        if (best == nullptr) {
            best = &v;
            continue;
        }
        auto key = [](const ModelVersion &m) {
            return std::tuple<size_t, int64_t, double>(
                m.cause.size(), m.updatedAt, m.riskRatio);
        };
        if (key(v) > key(*best))
            best = &v;
    }
    return best;
}

TEST(MatcherProperty, AgreesWithBruteForce)
{
    Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        ModelPool pool(0);
        int installs = 1 + static_cast<int>(rng.index(12));
        for (int i = 0; i < installs; ++i)
            pool.install(randomVersion(
                rng, i + 1,
                static_cast<int64_t>(rng.uniformInt(1, 5))));

        // Random full context (one value per column).
        AttributeSet context(
            {{"weather", Value("v" + std::to_string(rng.index(3)))},
             {"location", Value("v" + std::to_string(rng.index(3)))},
             {"device_id",
              Value("v" + std::to_string(rng.index(3)))}});

        const ModelVersion *fast = selectVersion(pool, context);
        const ModelVersion *slow = bruteForceSelect(pool, context);
        if (slow == nullptr) {
            EXPECT_EQ(fast, nullptr);
        } else {
            ASSERT_NE(fast, nullptr);
            // Equal by the ordering key (ties may pick either).
            EXPECT_EQ(fast->cause.size(), slow->cause.size());
            EXPECT_EQ(fast->updatedAt, slow->updatedAt);
            EXPECT_EQ(fast->riskRatio, slow->riskRatio);
        }
    }
}

TEST(MatcherProperty, SelectedVersionAlwaysMatchesContext)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        ModelPool pool(0);
        for (int i = 0; i < 8; ++i)
            pool.install(randomVersion(rng, i + 1, i + 1));
        AttributeSet context(
            {{"weather", Value("v" + std::to_string(rng.index(3)))},
             {"location", Value("v" + std::to_string(rng.index(3)))},
             {"device_id",
              Value("v" + std::to_string(rng.index(3)))}});
        const ModelVersion *picked = selectVersion(pool, context);
        if (picked != nullptr)
            EXPECT_TRUE(causeMatchesContext(picked->cause, context));
    }
}

} // namespace
} // namespace nazar::deploy
