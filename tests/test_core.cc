/**
 * @file
 * Tests for the Nazar public facade.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/logging.h"
#include "core/nazar.h"
#include "core/version.h"
#include "data/apps.h"

namespace nazar::core {
namespace {

struct CoreFixture : ::testing::Test
{
    CoreFixture()
    {
        setLogLevel(LogLevel::kSilent);
        app = data::makeAnimalsApp(13, 8);
        Rng rng(1);
        auto train = app.domain.makeBalancedDataset(60, rng);
        nn::Classifier base(nn::Architecture::kResNet18,
                            app.domain.featureDim(),
                            app.domain.numClasses(), 5);
        nn::TrainConfig tc;
        tc.epochs = 20;
        base.trainSupervised(train.x, train.labels, tc);
        trained = std::make_unique<nn::Classifier>(std::move(base));
    }

    ~CoreFixture() override { setLogLevel(LogLevel::kInfo); }

    data::StreamEvent
    makeEvent(int device, data::Weather weather, uint64_t seed)
    {
        Rng rng(seed);
        data::StreamEvent ev;
        ev.when = SimDate(1, 600);
        ev.deviceId = device;
        ev.locationId = 0;
        ev.weather = weather;
        ev.label =
            static_cast<int>(rng.index(app.domain.numClasses()));
        ev.features = app.domain.sample(ev.label, rng);
        if (weather != data::Weather::kClear) {
            data::Corruptor corr(app.domain.featureDim());
            ev.features =
                corr.apply(ev.features,
                           data::weatherCorruption(weather), 3, rng);
            ev.trueDrift = true;
            ev.corruption = data::weatherCorruption(weather);
            ev.severity = 3;
        }
        return ev;
    }

    data::AppSpec app = data::makeAnimalsApp(13, 8);
    std::unique_ptr<nn::Classifier> trained;
};

TEST_F(CoreFixture, RegisterAndAccessDevices)
{
    NazarConfig config;
    Nazar nazar(config, trained->clone());
    sim::Device &d0 = nazar.registerDevice(0, "tibet");
    EXPECT_EQ(d0.id(), 0);
    EXPECT_EQ(nazar.deviceCount(), 1u);
    // Idempotent registration.
    sim::Device &again = nazar.registerDevice(0, "tibet");
    EXPECT_EQ(&d0, &again);
    EXPECT_EQ(nazar.deviceCount(), 1u);
    EXPECT_THROW(nazar.device(3), NazarError);
}

TEST_F(CoreFixture, InferReportsTelemetry)
{
    NazarConfig config;
    config.uploadSampleRate = 1.0;
    Nazar nazar(config, trained->clone());
    nazar.registerDevice(0, "tibet");
    auto out = nazar.infer(0, makeEvent(0, data::Weather::kClear, 3));
    EXPECT_GE(out.predicted, 0);
    EXPECT_EQ(nazar.cloud().driftLog().size(), 1u);
    EXPECT_EQ(nazar.cloud().uploadCount(), 1u);
}

TEST_F(CoreFixture, ManualCycleDeploysVersionsAndAlerts)
{
    NazarConfig config;
    config.uploadSampleRate = 1.0;
    config.cloud.minAdaptSamples = 16;
    Nazar nazar(config, trained->clone());
    for (int d = 0; d < 4; ++d)
        nazar.registerDevice(d, "tibet");

    std::vector<Alert> alerts;
    nazar.onAlert([&](const Alert &a) { alerts.push_back(a); });

    // Feed a snowy drift burst plus clean traffic.
    uint64_t seed = 100;
    for (int i = 0; i < 120; ++i)
        nazar.infer(i % 4, makeEvent(i % 4, data::Weather::kSnow,
                                     seed++));
    for (int i = 0; i < 120; ++i)
        nazar.infer(i % 4, makeEvent(i % 4, data::Weather::kClear,
                                     seed++));

    sim::CycleResult cycle = nazar.analyzeNow();
    EXPECT_EQ(nazar.cycleCount(), 1u);
    ASSERT_FALSE(cycle.analysis.rootCauses.empty());
    ASSERT_FALSE(cycle.newVersions.empty());

    // Versions were pushed to every device.
    for (int d = 0; d < 4; ++d)
        EXPECT_EQ(nazar.device(d).pool().size(),
                  cycle.newVersions.size());

    // Alerts cover causes and deployments.
    bool cause_alert = false, deploy_alert = false;
    for (const auto &a : alerts) {
        if (a.kind == Alert::Kind::kRootCauseFound)
            cause_alert = true;
        if (a.kind == Alert::Kind::kModelAdapted)
            deploy_alert = true;
    }
    EXPECT_TRUE(cause_alert);
    EXPECT_TRUE(deploy_alert);
}

TEST_F(CoreFixture, AutopilotTriggersCycles)
{
    NazarConfig config;
    config.uploadSampleRate = 1.0;
    config.autopilotEveryEntries = 50;
    config.cloud.minAdaptSamples = 1000000; // avoid slow adaptation
    Nazar nazar(config, trained->clone());
    nazar.registerDevice(0, "tibet");
    uint64_t seed = 1;
    for (int i = 0; i < 120; ++i)
        nazar.infer(0, makeEvent(0, data::Weather::kClear, seed++));
    EXPECT_EQ(nazar.cycleCount(), 2u); // at entries 50 and 100
}

TEST_F(CoreFixture, CleanPatchEvolvesWhenRecalibrated)
{
    NazarConfig config;
    config.uploadSampleRate = 1.0;
    config.cloud.minAdaptSamples = 16;
    // A conservative threshold so clean traffic from this small,
    // soft-confidence model is not mass-flagged as drift (which would
    // legitimately turn into a fleet-wide cause instead of a clean
    // recalibration).
    config.mspThreshold = 0.4;
    Nazar nazar(config, trained->clone());
    nazar.registerDevice(0, "tibet");
    nn::BnPatch before = nazar.cleanPatch();
    uint64_t seed = 1;
    for (int i = 0; i < 100; ++i)
        nazar.infer(0, makeEvent(0, data::Weather::kClear, seed++));
    nazar.analyzeNow();
    // Plenty of clean uploads: the clean model recalibrates.
    EXPECT_FALSE(nazar.cleanPatch().approxEquals(before, 1e-12));
}

TEST(CoreVersion, Constants)
{
    EXPECT_STREQ(kVersionString, "1.0.0");
    EXPECT_EQ(kVersionMajor, 1);
}

} // namespace
} // namespace nazar::core
