/**
 * @file
 * Tests for the weather emulation.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "data/weather.h"

namespace nazar::data {
namespace {

TEST(Weather, NamesRoundTrip)
{
    for (Weather w : {Weather::kClear, Weather::kRain, Weather::kSnow,
                      Weather::kFog})
        EXPECT_EQ(weatherFromString(toString(w)), w);
    EXPECT_EQ(toString(Weather::kClear), "clear-day"); // paper Table 2
    EXPECT_THROW(weatherFromString("hail"), NazarError);
}

TEST(Weather, CorruptionMapping)
{
    EXPECT_EQ(weatherCorruption(Weather::kClear), CorruptionType::kNone);
    EXPECT_EQ(weatherCorruption(Weather::kRain), CorruptionType::kRain);
    EXPECT_EQ(weatherCorruption(Weather::kSnow), CorruptionType::kSnow);
    EXPECT_EQ(weatherCorruption(Weather::kFog), CorruptionType::kFog);
}

TEST(WeatherModel, DeterministicFromSeed)
{
    auto locs = animalsLocations();
    WeatherModel a(locs, 112, 2020), b(locs, 112, 2020);
    for (int li = 0; li < static_cast<int>(locs.size()); ++li)
        for (int day = 0; day < 112; ++day)
            EXPECT_EQ(a.weatherAt(li, day), b.weatherAt(li, day));
}

TEST(WeatherModel, DifferentSeedsDiffer)
{
    auto locs = animalsLocations();
    WeatherModel a(locs, 112, 1), b(locs, 112, 2);
    int diff = 0;
    for (int day = 0; day < 112; ++day)
        diff += a.weatherAt(0, day) != b.weatherAt(0, day) ? 1 : 0;
    EXPECT_GT(diff, 0);
}

TEST(WeatherModel, DriftFractionInPaperBallpark)
{
    // Paper §5.2: 29%-36% of days experience weather drift. Allow a
    // generous band around it.
    WeatherModel animals(animalsLocations(), 112, 2020);
    EXPECT_GT(animals.driftDayFraction(), 0.15);
    EXPECT_LT(animals.driftDayFraction(), 0.55);

    WeatherModel city(cityscapesLocations(), 112, 2020);
    EXPECT_GT(city.driftDayFraction(), 0.15);
    EXPECT_LT(city.driftDayFraction(), 0.55);
}

TEST(WeatherModel, ClimateShapesDistribution)
{
    // Quebec (index 5) is configured far snowier than New South Wales
    // (index 3, snow prior 0).
    auto locs = animalsLocations();
    WeatherModel model(locs, 112, 2020);
    int quebec_snow = 0, nsw_snow = 0;
    for (int day = 0; day < 112; ++day) {
        quebec_snow += model.weatherAt(5, day) == Weather::kSnow ? 1 : 0;
        nsw_snow += model.weatherAt(3, day) == Weather::kSnow ? 1 : 0;
    }
    EXPECT_GT(quebec_snow, nsw_snow);
    EXPECT_EQ(nsw_snow, 0); // snow prior is exactly zero there
}

TEST(WeatherModel, SeasonalityReducesLateSnow)
{
    // Snow should concentrate early in the Jan-Apr period for
    // strongly seasonal locations (aggregate over locations).
    auto locs = animalsLocations();
    WeatherModel model(locs, 112, 2020);
    int early = 0, late = 0;
    for (size_t li = 0; li < locs.size(); ++li) {
        for (int day = 0; day < 56; ++day)
            early += model.weatherAt(static_cast<int>(li), day) ==
                             Weather::kSnow
                         ? 1
                         : 0;
        for (int day = 56; day < 112; ++day)
            late += model.weatherAt(static_cast<int>(li), day) ==
                            Weather::kSnow
                        ? 1
                        : 0;
    }
    EXPECT_GT(early, late);
}

TEST(WeatherModel, AnyDriftFractionAtLeastPerCell)
{
    WeatherModel model(animalsLocations(), 112, 2020);
    EXPECT_GE(model.anyDriftDayFraction(), model.driftDayFraction());
}

TEST(WeatherModel, BoundsChecked)
{
    WeatherModel model(animalsLocations(), 10, 1);
    EXPECT_THROW(model.weatherAt(-1, 0), NazarError);
    EXPECT_THROW(model.weatherAt(0, 10), NazarError);
    EXPECT_THROW(model.weatherAt(99, 0), NazarError);
    EXPECT_THROW(WeatherModel({}, 10), NazarError);
    EXPECT_THROW(WeatherModel(animalsLocations(), 0), NazarError);
}

} // namespace
} // namespace nazar::data
