/**
 * @file
 * Tests for the fault-injecting I/O environment and fail-safe
 * durability: Env fault semantics (short writes, ENOSPC, EIO, failed
 * fsync with dropped dirty pages, lost renames, lost file contents),
 * the fsync gate, incremental snapshot chains, snapshot / registry
 * GC, the offline scrubber, decoder fuzzing, and the headline
 * property — an exhaustive per-site disk-fault sweep over a scripted
 * cloud scenario whose recovered state must match a never-faulted
 * oracle.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "data/apps.h"
#include "driftlog/csv.h"
#include "persist/cloud_persist.h"
#include "persist/env.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "sim/cloud.h"

namespace nazar::persist {
namespace {

namespace fs = std::filesystem;

/** Unique scratch directory under the test's CWD, removed on exit. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        static int counter = 0;
        path = fs::current_path() / ("diskfault_test_" + tag + "_" +
                                     std::to_string(counter++));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

struct QuietLogs : ::testing::Test
{
    QuietLogs() { setLogLevel(LogLevel::kSilent); }
    ~QuietLogs() override { setLogLevel(LogLevel::kInfo); }
};

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const fs::path &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

// ---- Env fault semantics --------------------------------------------

TEST(EnvTest, FaultKindNamesRoundTrip)
{
    for (FaultKind kind :
         {FaultKind::kNone, FaultKind::kShortWrite, FaultKind::kEnospc,
          FaultKind::kEio, FaultKind::kSyncFail, FaultKind::kLostRename,
          FaultKind::kLostFile})
        EXPECT_EQ(faultKindFromString(faultKindName(kind)), kind);
    EXPECT_THROW(faultKindFromString("bogus"), NazarError);
}

TEST(EnvTest, DisarmedCountsWithoutFiring)
{
    TempDir dir("env_count");
    Env env;
    EXPECT_FALSE(env.plan().armed());
    Env::File *f = env.open("site.open", dir.path / "f", "wb");
    env.write("site.write", f, "abcd", 4);
    env.write("site.write", f, "efgh", 4);
    env.sync("site.sync", f, /*deep=*/0);
    env.close(f);
    EXPECT_FALSE(env.faulted());
    EXPECT_EQ(env.hitCount("site.open"), 1u);
    EXPECT_EQ(env.hitCount("site.write"), 2u);
    EXPECT_EQ(env.hitCount("site.sync"), 1u);
    EXPECT_EQ(env.hitCount("site.never"), 0u);
    EXPECT_EQ(env.totalHits(), 4u);
    EXPECT_EQ(readFile(dir.path / "f"), "abcdefgh");
}

TEST(EnvTest, FsyncGateLatchesEverything)
{
    // The first failure poisons the Env: every later operation — even
    // at a different site, even a plain open — throws DiskFault.
    TempDir dir("env_gate");
    Env env(DiskFaultPlan{"site.write", 2, FaultKind::kEnospc});
    Env::File *f = env.open("site.open", dir.path / "f", "wb");
    env.write("site.write", f, "aaaa", 4);
    EXPECT_THROW(env.write("site.write", f, "bbbb", 4), DiskFault);
    EXPECT_TRUE(env.faulted());
    EXPECT_EQ(env.faultSite(), "site.write");
    EXPECT_THROW(env.sync("site.sync", f, 0), DiskFault);
    EXPECT_THROW(env.open("site.open", dir.path / "g", "wb"),
                 DiskFault);
    EXPECT_THROW(env.syncDir("site.dirsync", dir.path), DiskFault);
    env.close(f); // close never throws, even latched
    // ENOSPC left no partial bytes behind.
    EXPECT_EQ(readFile(dir.path / "f"), "aaaa");
}

TEST(EnvTest, ShortWriteLeavesPrefixThenLatches)
{
    TempDir dir("env_short");
    Env env(DiskFaultPlan{"site.write", 1, FaultKind::kShortWrite});
    Env::File *f = env.open("site.open", dir.path / "f", "wb");
    EXPECT_THROW(env.write("site.write", f, "abcdefgh", 8), DiskFault);
    env.close(f);
    // Half the bytes reached the file: exactly a torn write.
    EXPECT_EQ(readFile(dir.path / "f"), "abcd");
}

TEST(EnvTest, SyncFailDropsDirtyBytes)
{
    // The injected equivalent of the kernel discarding dirty pages on
    // a failed fsync: everything since the last successful sync is
    // gone, and retrying the sync cannot bring it back.
    TempDir dir("env_syncfail");
    Env env(DiskFaultPlan{"site.sync", 2, FaultKind::kSyncFail});
    Env::File *f = env.open("site.open", dir.path / "f", "wb");
    env.write("site.write", f, "durable!", 8);
    env.sync("site.sync", f, 0); // hit 1: succeeds, syncedLen = 8
    env.write("site.write", f, "doomed", 6);
    EXPECT_THROW(env.sync("site.sync", f, 0), DiskFault);
    env.close(f);
    EXPECT_TRUE(env.faulted());
    EXPECT_EQ(readFile(dir.path / "f"), "durable!");
}

TEST(EnvTest, LostRenameIsDetectedByDirsync)
{
    // A lost rename reports success; the directory fsync that a
    // correct commit sequence issues right after is what detects it.
    TempDir dir("env_lostrename");
    Env env(DiskFaultPlan{"site.rename", 1, FaultKind::kLostRename});
    Env::File *f = env.open("site.open", dir.path / "tmp", "wb");
    env.write("site.write", f, "payload", 7);
    env.sync("site.sync", f, 2);
    env.close(f);
    env.rename("site.rename", dir.path / "tmp", dir.path / "final");
    // The directory entry never reached the platter: source gone,
    // target absent.
    EXPECT_FALSE(fs::exists(dir.path / "tmp"));
    EXPECT_FALSE(fs::exists(dir.path / "final"));
    EXPECT_THROW(env.syncDir("site.dirsync", dir.path), DiskFault);
    EXPECT_TRUE(env.faulted());
}

TEST(EnvTest, LostFileSparesASyncedTmp)
{
    // The "fsync the tmp before rename" rule, regression-tested by
    // construction: a synced tmp survives kLostFile untouched...
    TempDir dir("env_lostfile");
    {
        Env env(DiskFaultPlan{"site.rename", 1, FaultKind::kLostFile});
        Env::File *f = env.open("site.open", dir.path / "tmp", "wb");
        env.write("site.write", f, "precious", 8);
        env.sync("site.sync", f, 2); // the fix under test
        env.close(f);
        env.rename("site.rename", dir.path / "tmp", dir.path / "safe");
        EXPECT_EQ(readFile(dir.path / "safe"), "precious");
    }
    // ...while an unsynced tmp is zeroed, the way a real crash after
    // a fsync-less rename can leave an empty committed file.
    {
        Env env(DiskFaultPlan{"site.rename", 1, FaultKind::kLostFile});
        Env::File *f = env.open("site.open", dir.path / "tmp2", "wb");
        env.write("site.write", f, "precious", 8);
        env.close(f); // no sync!
        env.rename("site.rename", dir.path / "tmp2",
                   dir.path / "gone");
        EXPECT_TRUE(fs::exists(dir.path / "gone"));
        EXPECT_EQ(readFile(dir.path / "gone"), "");
    }
}

TEST(EnvTest, RemoveIsBestEffortAndNeverLatches)
{
    TempDir dir("env_remove");
    writeFile(dir.path / "victim", "x");
    Env env(DiskFaultPlan{"site.unlink", 1, FaultKind::kEio});
    EXPECT_FALSE(env.remove("site.unlink", dir.path / "victim"));
    EXPECT_FALSE(env.faulted()); // GC must not poison the log
    EXPECT_TRUE(fs::exists(dir.path / "victim"));
    EXPECT_TRUE(env.remove("site.unlink", dir.path / "victim"));
    EXPECT_FALSE(fs::exists(dir.path / "victim"));
    // Removing a nonexistent path is a no-op failure, not a latch.
    EXPECT_FALSE(env.remove("site.unlink", dir.path / "victim"));
    EXPECT_FALSE(env.faulted());
}

// ---- scripted cloud scenario ----------------------------------------
//
// The same deterministic script as test_persist.cc's crash sweep: two
// analysis cycles over planted-cause telemetry with duplicate seqs
// sprinkled in, a baseline flush, and a tail of pending rows left
// unanalyzed. Config differences: the snapshot chain is exercised
// (fullEvery = 4, so fulls AND deltas occur inside the script) and
// faults come from the Env, not the CrashInjector.

data::AppSpec &
scriptApp()
{
    static data::AppSpec app = data::makeAnimalsApp(13, 8);
    return app;
}

nn::Classifier &
scriptBase()
{
    static nn::Classifier base(nn::Architecture::kResNet18,
                               scriptApp().domain.featureDim(),
                               scriptApp().domain.numClasses(), 5);
    return base;
}

sim::CloudConfig
scriptConfig(const std::string &dir, const DiskFaultPlan &plan,
             uint64_t full_every = 4)
{
    sim::CloudConfig config;
    config.minAdaptSamples = 4;
    config.ingestDedupWindow = 8;
    config.persist.dir = dir;
    config.persist.snapshotEvery = 8;
    config.persist.fullEvery = full_every;
    config.persist.fault = plan;
    return config;
}

driftlog::DriftLogEntry
scriptEntry(int i)
{
    driftlog::DriftLogEntry e;
    e.time = SimDate(i % 14, (i * 37) % 86400);
    int device = i % 3;
    e.deviceId = data::deviceName(device);
    e.deviceModel = data::deviceModel(device);
    e.location = "tibet";
    e.weather = i % 3 == 0 ? "snow" : "clear-day";
    e.drift = i % 3 == 0;
    return e;
}

std::optional<sim::Upload>
scriptUpload(int i)
{
    if (i % 4 == 3)
        return std::nullopt;
    driftlog::DriftLogEntry e = scriptEntry(i);
    sim::Upload up;
    Rng rng(static_cast<uint64_t>(1000 + i));
    int label =
        static_cast<int>(rng.index(scriptApp().domain.numClasses()));
    up.features = scriptApp().domain.sample(label, rng);
    up.context = rca::AttributeSet({
        {driftlog::columns::kWeather, driftlog::Value(e.weather)},
        {driftlog::columns::kLocation, driftlog::Value(e.location)},
        {driftlog::columns::kDeviceId, driftlog::Value(e.deviceId)},
        {driftlog::columns::kDeviceModel,
         driftlog::Value(e.deviceModel)},
    });
    up.driftFlag = e.drift;
    return up;
}

/** Everything the sweep compares between a faulted run and the oracle. */
struct CloudState
{
    std::string driftCsv;
    size_t uploadCount = 0;
    size_t totalIngested = 0;
    size_t dedupHits = 0;
    int64_t nextVersionId = 1;
    int64_t logicalTime = 0;
    std::vector<int64_t> versionIds;
    std::vector<std::pair<std::string, std::string>> blobs;
    std::map<int64_t, DedupWindow> dedup;
};

CloudState
captureState(sim::Cloud &cloud)
{
    CloudState st;
    std::ostringstream csv;
    driftlog::writeCsv(cloud.driftLog().table(), csv);
    st.driftCsv = csv.str();
    st.uploadCount = cloud.uploadCount();
    st.totalIngested = cloud.totalIngested();
    st.dedupHits = cloud.dedupHits();
    st.nextVersionId = cloud.nextVersionId();
    st.logicalTime = cloud.logicalTime();
    st.versionIds = cloud.registry().versionIds();
    for (const auto &key : cloud.blobStore().list())
        st.blobs.emplace_back(key, cloud.blobStore().get(key));
    st.dedup = cloud.dedupSnapshot();
    return st;
}

void
expectStateEq(const CloudState &got, const CloudState &want,
              const std::string &label, size_t fault_slack = 0)
{
    EXPECT_EQ(got.driftCsv, want.driftCsv) << label;
    EXPECT_EQ(got.uploadCount, want.uploadCount) << label;
    EXPECT_EQ(got.totalIngested, want.totalIngested) << label;
    EXPECT_EQ(got.nextVersionId, want.nextVersionId) << label;
    EXPECT_EQ(got.logicalTime, want.logicalTime) << label;
    EXPECT_EQ(got.versionIds, want.versionIds) << label;
    EXPECT_EQ(got.blobs, want.blobs) << label;
    EXPECT_EQ(got.dedup, want.dedup) << label;
    // A fault after the WAL append but before the in-memory apply
    // makes the retry a retransmission the dedup window absorbs, at
    // the cost of at most one extra dedup hit per fault.
    EXPECT_GE(got.dedupHits, want.dedupHits) << label;
    EXPECT_LE(got.dedupHits, want.dedupHits + fault_slack) << label;
}

/**
 * Run the scripted scenario, surviving injected disk faults with the
 * production discipline: a DiskFault latches the durability layer, so
 * the owner rebuilds from the last durable state (a fresh Cloud over
 * the same directory with a fresh, unfaulted Env) and retries exactly
 * like the crash path — ingests re-sent (dedup absorbs the
 * retransmission), a cycle whose commit landed not re-run, flushes
 * retried. Cloud construction itself is inside the retry loop: the
 * WAL-open sites fire in the constructor.
 */
std::unique_ptr<sim::Cloud>
driveFaultScript(const std::string &dir, const DiskFaultPlan &plan,
                 size_t *faults, std::vector<std::string> *sites,
                 uint64_t full_every = 4)
{
    sim::CloudConfig config = scriptConfig(dir, plan, full_every);
    auto onFault = [&](const DiskFault &e) {
        if (sites != nullptr)
            sites->push_back(e.site());
        if (faults != nullptr)
            ++*faults;
        // Clearing the fault = rebuilding the persistence layer with
        // a fresh Env; the armed plan fired once and must not re-arm.
        config.persist.fault = {};
    };
    std::unique_ptr<sim::Cloud> cloud;
    auto rebuild = [&]() {
        cloud.reset();
        for (;;) {
            try {
                cloud = std::make_unique<sim::Cloud>(config,
                                                     scriptBase());
                return;
            } catch (const DiskFault &e) {
                onFault(e);
            }
        }
    };
    rebuild();
    nn::BnPatch clean = cloud->recoveredCleanPatch().has_value()
                            ? *cloud->recoveredCleanPatch()
                            : scriptBase().bnPatch();
    auto recover = [&]() {
        rebuild();
        clean = cloud->recoveredCleanPatch().has_value()
                    ? *cloud->recoveredCleanPatch()
                    : scriptBase().bnPatch();
    };
    auto ingest = [&](int device, uint64_t seq, int i) {
        for (;;) {
            try {
                cloud->ingestFrom(device, seq, scriptEntry(i),
                                  scriptUpload(i));
                return;
            } catch (const DiskFault &e) {
                onFault(e);
                recover();
            }
        }
    };
    auto cycle = [&]() {
        int64_t before = cloud->logicalTime();
        for (;;) {
            try {
                sim::CycleResult result = cloud->runCycle(clean);
                if (result.newCleanPatch.has_value())
                    clean = *result.newCleanPatch;
                return;
            } catch (const DiskFault &e) {
                onFault(e);
                recover();
                if (cloud->logicalTime() > before)
                    return; // commit record landed before the fault
            }
        }
    };
    auto flush = [&]() {
        for (;;) {
            try {
                cloud->flush();
                return;
            } catch (const DiskFault &e) {
                onFault(e);
                recover();
            }
        }
    };

    for (int i = 0; i < 24; ++i) {
        ingest(i % 3, static_cast<uint64_t>(i / 3), i);
        if (i % 5 == 0 && i > 0) // retransmission: must dedup
            ingest(i % 3, static_cast<uint64_t>(i / 3), i);
    }
    cycle();
    for (int i = 24; i < 44; ++i)
        ingest(i % 3, static_cast<uint64_t>(i / 3), i);
    cycle();
    for (int i = 44; i < 50; ++i)
        ingest(i % 3, static_cast<uint64_t>(i / 3), i);
    flush();
    for (int i = 50; i < 56; ++i)
        ingest(i % 3, static_cast<uint64_t>(i / 3), i);
    return cloud;
}

class DiskFaultCloudTest : public QuietLogs
{
};

// ---- the headline sweep ---------------------------------------------

TEST_F(DiskFaultCloudTest, ExhaustiveDiskFaultSweepMatchesOracle)
{
    // The oracle: the same script against an in-memory cloud.
    CloudState oracle =
        captureState(*driveFaultScript("", {}, nullptr, nullptr));

    // Probe run: count how often the scenario reaches each Env site,
    // to bound the per-site sweep.
    std::map<std::string, uint64_t> reached;
    {
        TempDir dir("probe");
        auto cloud =
            driveFaultScript(dir.path.string(), {}, nullptr, nullptr);
        Env &env = cloud->persistence()->env();
        for (const char *site :
             {"env.wal.open", "env.wal.write", "env.wal.sync",
              "env.wal.truncate", "env.wal.dirsync", "env.snap.create",
              "env.snap.write", "env.snap.sync", "env.snap.rename",
              "env.snap.dirsync", "env.snap.unlink"})
            reached[site] = env.hitCount(site);
        EXPECT_GT(env.totalHits(), 0u);
        // Persistence on with a disarmed Env is behaviour-neutral.
        expectStateEq(captureState(*cloud), oracle, "disarmed");
    }

    // Every failure mode a site can exhibit, at its first and second
    // hit. Each faulted run must either recover to the oracle's exact
    // state (the fault latched, the harness rebuilt from the last
    // durable state, the retry completed the script) — there is no
    // "or": a latched fault may cost retries but never state.
    struct MatrixEntry
    {
        const char *site;
        FaultKind kind;
    };
    const MatrixEntry matrix[] = {
        {"env.wal.open", FaultKind::kEio},
        {"env.wal.write", FaultKind::kShortWrite},
        {"env.wal.write", FaultKind::kEnospc},
        {"env.wal.sync", FaultKind::kSyncFail},
        {"env.wal.sync", FaultKind::kEio},
        {"env.wal.truncate", FaultKind::kEio},
        {"env.wal.dirsync", FaultKind::kEio},
        {"env.snap.create", FaultKind::kEio},
        {"env.snap.write", FaultKind::kEnospc},
        {"env.snap.write", FaultKind::kShortWrite},
        {"env.snap.sync", FaultKind::kSyncFail},
        {"env.snap.rename", FaultKind::kLostRename},
        {"env.snap.rename", FaultKind::kEio},
        {"env.snap.dirsync", FaultKind::kEio},
    };
    for (const MatrixEntry &entry : matrix)
        ASSERT_GE(reached[entry.site], 1u)
            << entry.site << " never reached by the scenario";

    for (const MatrixEntry &entry : matrix) {
        for (uint64_t hit = 1; hit <= 2; ++hit) {
            if (reached[entry.site] < hit)
                continue; // scenario never reaches this hit
            std::string label = std::string(entry.site) + "/" +
                                faultKindName(entry.kind) + "/hit" +
                                std::to_string(hit);
            TempDir dir("sweep");
            size_t faults = 0;
            std::vector<std::string> sites;
            auto cloud = driveFaultScript(
                dir.path.string(),
                DiskFaultPlan{entry.site, hit, entry.kind}, &faults,
                &sites);
            ASSERT_EQ(faults, 1u) << label;
            expectStateEq(captureState(*cloud), oracle, label, faults);
            // The fault left no lasting corruption behind: the state
            // directory passes the offline scrub...
            cloud.reset();
            ScrubReport report = scrubStateDir(dir.path);
            EXPECT_TRUE(report.ok)
                << label << ": "
                << (report.issues.empty() ? "" : report.issues[0]);
            // ...and a cold reopen recovers the same state again.
            sim::Cloud reopened(scriptConfig(dir.path.string(), {}),
                                scriptBase());
            expectStateEq(captureState(reopened), oracle,
                          label + "/reopen", faults);
        }
    }
}

TEST_F(DiskFaultCloudTest, GcUnlinkFaultIsNonFatal)
{
    // Snapshot GC unlinks through Env::remove, which is best-effort:
    // an EIO there must not latch the log or perturb state — the
    // superseded file simply survives until the next GC pass.
    CloudState oracle =
        captureState(*driveFaultScript("", {}, nullptr, nullptr));
    TempDir dir("gc_eio");
    size_t faults = 0;
    auto cloud = driveFaultScript(
        dir.path.string(),
        DiskFaultPlan{"env.snap.unlink", 1, FaultKind::kEio}, &faults,
        nullptr, /*full_every=*/1);
    EXPECT_EQ(faults, 0u);
    EXPECT_FALSE(cloud->persistence()->diskFaulted());
    expectStateEq(captureState(*cloud), oracle, "gc_eio");
    cloud.reset();
    // The survivor is at worst a scrub *note*, never an issue.
    ScrubReport report = scrubStateDir(dir.path);
    EXPECT_TRUE(report.ok);
}

TEST_F(DiskFaultCloudTest, FsyncGateStopsTheCloudUntilRebuilt)
{
    TempDir dir("gate");
    sim::CloudConfig config = scriptConfig(
        dir.path.string(),
        DiskFaultPlan{"env.wal.sync", 4, FaultKind::kSyncFail});
    auto cloud = std::make_unique<sim::Cloud>(config, scriptBase());
    int i = 0;
    for (; i < 24; ++i) {
        try {
            cloud->ingestFrom(i % 3, static_cast<uint64_t>(i / 3),
                              scriptEntry(i), scriptUpload(i));
        } catch (const DiskFault &e) {
            EXPECT_EQ(e.site(), "env.wal.sync");
            break;
        }
    }
    ASSERT_LT(i, 24) << "armed sync fault never fired";
    ASSERT_TRUE(cloud->persistence()->diskFaulted());
    EXPECT_EQ(cloud->persistence()->diskFaultSite(), "env.wal.sync");
    // Latched means latched: every further durable operation fails
    // fast without touching the poisoned log — a failed fsync is
    // never retried.
    EXPECT_THROW(cloud->ingestFrom(0, 99, scriptEntry(0),
                                   scriptUpload(0)),
                 DiskFault);
    EXPECT_THROW(cloud->flush(), DiskFault);
    EXPECT_TRUE(cloud->persistence()->diskFaulted());
    size_t durable = 0;
    {
        // Clearing the fault = a fresh Cloud + Env over the same dir;
        // it recovers exactly the records that were durable before
        // the latch (the faulted ingest's bytes were dropped with the
        // dirty tail, so it is NOT half-applied).
        cloud.reset();
        sim::Cloud recovered(scriptConfig(dir.path.string(), {}),
                             scriptBase());
        durable = recovered.totalIngested();
        EXPECT_FALSE(recovered.persistence()->diskFaulted());
        EXPECT_EQ(durable, static_cast<size_t>(i));
    }
    ScrubReport report = scrubStateDir(dir.path);
    EXPECT_TRUE(report.ok) << (report.issues.empty()
                                   ? ""
                                   : report.issues[0]);
}

// ---- incremental snapshot chain + GC --------------------------------

TEST_F(DiskFaultCloudTest, DeltaChainRecoversSameStateAsFullChain)
{
    // fullEvery = 1 (every snapshot full, the pre-chain behaviour)
    // and fullEvery = 8 (mostly deltas) must recover identical state.
    TempDir full_dir("chain_full");
    TempDir delta_dir("chain_delta");
    auto full_cloud = driveFaultScript(full_dir.path.string(), {},
                                       nullptr, nullptr,
                                       /*full_every=*/1);
    auto delta_cloud = driveFaultScript(delta_dir.path.string(), {},
                                        nullptr, nullptr,
                                        /*full_every=*/8);
    CloudState want = captureState(*full_cloud);
    expectStateEq(captureState(*delta_cloud), want, "live");

    // The delta run actually produced deltas; the full run none.
    size_t full_deltas = 0, delta_deltas = 0;
    for (const auto &ent : fs::directory_iterator(full_dir.path))
        if (ent.path().extension() == ".delta")
            ++full_deltas;
    for (const auto &ent : fs::directory_iterator(delta_dir.path))
        if (ent.path().extension() == ".delta")
            ++delta_deltas;
    EXPECT_EQ(full_deltas, 0u);
    EXPECT_GT(delta_deltas, 0u);

    full_cloud.reset();
    delta_cloud.reset();
    sim::Cloud full_re(scriptConfig(full_dir.path.string(), {}, 1),
                       scriptBase());
    sim::Cloud delta_re(scriptConfig(delta_dir.path.string(), {}, 8),
                        scriptBase());
    expectStateEq(captureState(full_re), want, "full/reopen");
    expectStateEq(captureState(delta_re), want, "delta/reopen");
}

TEST_F(DiskFaultCloudTest, SnapshotGcKeepsOnlyTheRecoveryChain)
{
    // With every snapshot full, each commit supersedes the previous
    // chain entirely: GC must fire, and what survives must still be a
    // complete recovery chain.
    TempDir dir("gc");
    auto cloud = driveFaultScript(dir.path.string(), {}, nullptr,
                                  nullptr, /*full_every=*/1);
    ASSERT_GT(cloud->persistence()->snapshotGcRemoved(), 0u);
    uint64_t head = cloud->persistence()->chainHeadId();
    ASSERT_GT(head, 0u);
    CloudState live = captureState(*cloud);
    cloud.reset();

    // Safety invariant: nothing the recovery chain needs was removed.
    size_t chain_files = 0;
    for (const auto &ent : fs::directory_iterator(dir.path)) {
        auto parsed = parseChainFileName(ent.path().filename().string());
        if (!parsed.has_value())
            continue;
        ++chain_files;
        EXPECT_GE(parsed->first, head); // only the head survives GC
    }
    EXPECT_EQ(chain_files, 1u);
    ScrubReport report = scrubStateDir(dir.path);
    EXPECT_TRUE(report.ok) << (report.issues.empty()
                                   ? ""
                                   : report.issues[0]);
    sim::Cloud reopened(scriptConfig(dir.path.string(), {}, 1),
                        scriptBase());
    expectStateEq(captureState(reopened), live, "gc/reopen");
}

// ---- scrubber -------------------------------------------------------

TEST_F(DiskFaultCloudTest, ScrubFlagsCorruptionCleanDirPasses)
{
    TempDir dir("scrub");
    auto cloud = driveFaultScript(dir.path.string(), {}, nullptr,
                                  nullptr, /*full_every=*/8);
    cloud.reset();
    ScrubReport healthy = scrubStateDir(dir.path);
    EXPECT_TRUE(healthy.ok);
    EXPECT_TRUE(healthy.issues.empty());
    EXPECT_GT(healthy.chainFiles, 0u);
    EXPECT_GT(healthy.chainLength, 0u);

    // Flip one byte inside a chain file's payload: the scrub must
    // turn it into a hard issue, not a note.
    fs::path victim;
    for (const auto &ent : fs::directory_iterator(dir.path))
        if (parseChainFileName(ent.path().filename().string())
                .has_value())
            victim = ent.path();
    ASSERT_FALSE(victim.empty());
    std::string bytes = readFile(victim);
    ASSERT_GT(bytes.size(), 40u);
    bytes[bytes.size() - 1] ^= 0x40;
    writeFile(victim, bytes);
    ScrubReport corrupt = scrubStateDir(dir.path);
    EXPECT_FALSE(corrupt.ok);
    EXPECT_FALSE(corrupt.issues.empty());
}

// ---- registry GC ----------------------------------------------------

TEST_F(DiskFaultCloudTest, RegistryGcSurvivesRecovery)
{
    TempDir dir("reggc");
    auto cloud =
        driveFaultScript(dir.path.string(), {}, nullptr, nullptr);
    std::vector<int64_t> versions = cloud->registry().versionIds();
    ASSERT_GE(versions.size(), 2u)
        << "script must publish enough versions to GC";
    int64_t keep = versions.back();
    size_t evicted = cloud->gcRegistryBelow(keep);
    EXPECT_EQ(evicted, versions.size() - 1);
    EXPECT_EQ(cloud->registry().versionIds(),
              std::vector<int64_t>{keep});
    EXPECT_EQ(cloud->gcRegistryBelow(keep), 0u); // idempotent
    CloudState live = captureState(*cloud);
    cloud.reset();

    // The eviction is WAL-logged: a cold reopen replays it and does
    // not resurrect the evicted blobs.
    sim::Cloud reopened(scriptConfig(dir.path.string(), {}),
                        scriptBase());
    expectStateEq(captureState(reopened), live, "reggc/reopen");
    EXPECT_EQ(reopened.registry().versionIds(),
              std::vector<int64_t>{keep});
    ScrubReport report = scrubStateDir(dir.path);
    EXPECT_TRUE(report.ok);
}

// ---- decoder fuzz ---------------------------------------------------

TEST_F(DiskFaultCloudTest, DecodersSurviveBitFlipsAndTruncations)
{
    // Corrupted durable bytes must decode to NazarError or a clean
    // truncation — never a crash, hang, or wild allocation. The Env's
    // fault kinds produce exactly these shapes (torn prefixes,
    // flipped sectors), so this is the decoder half of the sweep.
    TempDir dir("fuzz");
    {
        auto cloud = driveFaultScript(dir.path.string(), {}, nullptr,
                                      nullptr, /*full_every=*/2);
    }
    std::vector<fs::path> targets;
    targets.push_back(dir.path / "wal.log");
    for (const auto &ent : fs::directory_iterator(dir.path))
        if (parseChainFileName(ent.path().filename().string())
                .has_value())
            targets.push_back(ent.path());
    ASSERT_GE(targets.size(), 2u);

    TempDir mutdir("fuzz_mut");
    Rng rng(20250807);
    for (int iter = 0; iter < 200; ++iter) {
        const fs::path &src = targets[rng.index(targets.size())];
        std::string bytes = readFile(src);
        ASSERT_FALSE(bytes.empty());
        if (rng.bernoulli(0.5)) {
            // Truncate to a random prefix (torn write / lost tail).
            bytes.resize(rng.index(bytes.size()));
        } else {
            // Flip 1-4 bits anywhere (flipped sector / bad cable).
            int flips = 1 + static_cast<int>(rng.index(4));
            for (int b = 0; b < flips; ++b)
                bytes[rng.index(bytes.size())] ^=
                    static_cast<char>(1u << rng.index(8));
        }
        fs::path mutated = mutdir.path / src.filename();
        writeFile(mutated, bytes);
        // Every decoder that could meet these bytes in production:
        try {
            WalScan scan = Wal::scan(mutated);
            (void)scan;
        } catch (const NazarError &) {
        }
        try {
            auto chain = loadChainFile(mutated);
            if (chain.has_value()) {
                if (chain->header.kind == ChainKind::kFull)
                    decodeSnapshot(chain->payload);
                else
                    decodeDeltaRecords(chain->payload);
            }
        } catch (const NazarError &) {
        }
        try {
            (void)loadSnapshotFile(mutated);
        } catch (const NazarError &) {
        }
        // And the full recovery pipeline over a dir containing the
        // mutated file in place of the healthy one.
        for (const fs::path &t : targets) {
            if (t.filename() == src.filename())
                continue;
            fs::copy_file(t, mutdir.path / t.filename(),
                          fs::copy_options::overwrite_existing);
        }
        try {
            (void)recoverDir(mutdir.path, /*dedup_window=*/8);
        } catch (const NazarError &) {
            // A broken chain link or corrupt record is a legitimate
            // hard error; crashing is not.
        }
        for (const auto &ent : fs::directory_iterator(mutdir.path))
            fs::remove(ent.path());
    }
}

TEST_F(DiskFaultCloudTest, DeltaRecordCodecRejectsMalformedPayloads)
{
    std::vector<WalRecord> records;
    WalRecord r;
    r.seq = 5;
    r.type = WalRecordType::kIngest;
    r.payload = "payload-a";
    records.push_back(r);
    r.seq = 9;
    r.type = WalRecordType::kFlush;
    r.payload = "";
    records.push_back(r);
    std::string enc = encodeDeltaRecords(records);
    std::vector<WalRecord> back = decodeDeltaRecords(enc);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].seq, 5u);
    EXPECT_EQ(back[0].payload, "payload-a");
    EXPECT_EQ(back[1].seq, 9u);
    EXPECT_EQ(back[1].type, WalRecordType::kFlush);

    // Truncation, non-increasing seqs, unknown types: all rejected.
    std::string torn = enc.substr(0, enc.size() / 2);
    EXPECT_THROW(decodeDeltaRecords(torn), NazarError);
    std::vector<WalRecord> bad_seq = records;
    bad_seq[1].seq = 5;
    EXPECT_THROW(decodeDeltaRecords(encodeDeltaRecords(bad_seq)),
                 NazarError);
}

} // namespace
} // namespace nazar::persist
