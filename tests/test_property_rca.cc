/**
 * @file
 * Property tests for root-cause analysis over randomized drift logs:
 * structural invariants that must hold for any input.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/rng.h"
#include "rca/analyzer.h"
#include "runtime/thread_pool.h"

namespace nazar::rca {
namespace {

using driftlog::Schema;
using driftlog::Table;
using driftlog::Value;
using driftlog::ValueType;

/** Random drift log over 3 attribute columns. */
Table
randomLog(size_t rows, uint64_t seed, int weather_card = 4,
          int location_card = 5, int device_card = 8)
{
    Rng rng(seed);
    Table t(Schema({{"weather", ValueType::kString},
                    {"location", ValueType::kString},
                    {"device_id", ValueType::kString},
                    {"drift", ValueType::kBool}}));
    for (size_t i = 0; i < rows; ++i) {
        std::string weather =
            "w" + std::to_string(rng.index(
                      static_cast<size_t>(weather_card)));
        std::string location =
            "l" + std::to_string(rng.index(
                      static_cast<size_t>(location_card)));
        std::string device =
            "d" + std::to_string(rng.index(
                      static_cast<size_t>(device_card)));
        // Drift correlates with w1 and d3 plus noise. d3's signal is
        // strong enough to stay significant after the counterfactual
        // pass absorbs the overlapping w1 evidence (Algorithm 1 marks
        // accepted causes' entries non-drifted, which dilutes weaker
        // overlapping causes — a property of the paper's design).
        double p = 0.15;
        if (weather == "w1")
            p += 0.5;
        if (device == "d3")
            p += 0.65;
        t.append({Value(weather), Value(location), Value(device),
                  Value(rng.bernoulli(std::min(0.95, p)))});
    }
    return t;
}

RcaConfig
defaultConfig()
{
    RcaConfig config;
    config.attributeColumns = {"weather", "location", "device_id"};
    return config;
}

class RandomLogTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomLogTest, OccurrenceIsAntitoneInAttributeSets)
{
    Table t = randomLog(600, GetParam());
    auto causes = Fim(t, defaultConfig()).mine();
    // Indexed lookup of every mined set's occurrence.
    std::map<AttributeSet, double> occurrence;
    for (const auto &c : causes)
        occurrence[c.attrs] = c.metrics.occurrence;
    // For every mined pair where a is a proper attribute-subset of b,
    // occurrence(a) >= occurrence(b) (downward closure).
    for (const auto &a : causes) {
        for (const auto &b : causes) {
            if (a.attrs.isProperSubsetOf(b.attrs))
                EXPECT_GE(a.metrics.occurrence + 1e-12,
                          b.metrics.occurrence)
                    << a.attrs.toString() << " vs "
                    << b.attrs.toString();
        }
    }
}

TEST_P(RandomLogTest, CountsAreInternallyConsistent)
{
    Table t = randomLog(500, GetParam() + 100);
    size_t total_drift = 0;
    for (size_t r = 0; r < t.rowCount(); ++r)
        total_drift += t.at(r, "drift").asBool() ? 1 : 0;
    auto causes = Fim(t, defaultConfig()).mine();
    for (const auto &c : causes) {
        EXPECT_LE(c.metrics.setDriftCount, c.metrics.setCount);
        EXPECT_LE(c.metrics.setCount, t.rowCount());
        // occurrence == setCount / rows.
        EXPECT_NEAR(c.metrics.occurrence,
                    static_cast<double>(c.metrics.setCount) /
                        static_cast<double>(t.rowCount()),
                    1e-12);
        // support == setDrift / totalDrift.
        if (total_drift > 0)
            EXPECT_NEAR(c.metrics.support,
                        static_cast<double>(c.metrics.setDriftCount) /
                            static_cast<double>(total_drift),
                        1e-12);
        // confidence == setDrift / setCount.
        if (c.metrics.setCount > 0)
            EXPECT_NEAR(c.metrics.confidence,
                        static_cast<double>(c.metrics.setDriftCount) /
                            static_cast<double>(c.metrics.setCount),
                        1e-12);
    }
}

TEST_P(RandomLogTest, MinedMetricsMatchIndependentComputation)
{
    Table t = randomLog(400, GetParam() + 200);
    auto flags = Fim::driftFlags(t, "drift");
    auto causes = Fim(t, defaultConfig()).mine();
    // Spot-check a handful of mined sets against computeMetrics.
    size_t step = std::max<size_t>(1, causes.size() / 7);
    for (size_t i = 0; i < causes.size(); i += step) {
        CauseMetrics direct = computeMetrics(t, flags, causes[i].attrs);
        EXPECT_EQ(direct.setCount, causes[i].metrics.setCount);
        EXPECT_EQ(direct.setDriftCount,
                  causes[i].metrics.setDriftCount);
        EXPECT_NEAR(direct.riskRatio, causes[i].metrics.riskRatio,
                    1e-9);
    }
}

TEST_P(RandomLogTest, SetReductionPartitionsThePassingCauses)
{
    Table t = randomLog(600, GetParam() + 300);
    RcaConfig config = defaultConfig();
    auto all = Fim(t, config).mine();
    std::vector<RankedCause> passing;
    for (const auto &c : all)
        if (passesThresholds(c.metrics, config))
            passing.push_back(c);
    auto groups = reduceCauses(passing);

    std::set<AttributeSet> seen;
    size_t total = 0;
    for (const auto &g : groups) {
        EXPECT_TRUE(seen.insert(g.key.attrs).second);
        ++total;
        for (const auto &fine : g.merged) {
            EXPECT_TRUE(seen.insert(fine.attrs).second);
            ++total;
            // Every merged cause is an attribute-superset of *some*
            // passing cause that leads its group transitively; at
            // minimum it must be a proper superset of its group key
            // or of another member (the key is the coarsest).
            EXPECT_TRUE(g.key.attrs.isProperSubsetOf(fine.attrs) ||
                        std::any_of(
                            g.merged.begin(), g.merged.end(),
                            [&](const RankedCause &other) {
                                return other.attrs.isProperSubsetOf(
                                    fine.attrs);
                            }));
        }
    }
    EXPECT_EQ(total, passing.size());
}

TEST_P(RandomLogTest, FullPipelineCausesPassThresholdsAndAreUnique)
{
    Table t = randomLog(800, GetParam() + 400);
    RcaConfig config = defaultConfig();
    Analyzer analyzer(config);
    auto result = analyzer.analyze(t);
    std::set<AttributeSet> seen;
    for (const auto &cause : result.rootCauses) {
        EXPECT_TRUE(seen.insert(cause.attrs).second)
            << "duplicate cause " << cause.attrs.toString();
        // The metrics attached to an accepted cause were evaluated
        // against the flag state at acceptance time and passed.
        EXPECT_TRUE(passesThresholds(cause.metrics, config));
    }
}

TEST_P(RandomLogTest, PlantedCausesAreRecovered)
{
    Table t = randomLog(2000, GetParam() + 500);
    Analyzer analyzer(defaultConfig());
    auto result = analyzer.analyze(t);
    bool found_w1 = false, found_d3 = false;
    for (const auto &cause : result.rootCauses) {
        if (cause.attrs ==
            AttributeSet({{"weather", Value("w1")}}))
            found_w1 = true;
        if (cause.attrs ==
            AttributeSet({{"device_id", Value("d3")}}))
            found_d3 = true;
    }
    EXPECT_TRUE(found_w1);
    EXPECT_TRUE(found_d3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLogTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- Sharded-scan determinism contract ------------------------------

/**
 * Drift log big enough to engage the pool (past the parallel row
 * cutoff), with a NaN-bearing double attribute column and drift
 * probabilities tuned so several causes sit right at the confidence /
 * risk-ratio thresholds — any cross-thread divergence in the merged
 * counts flips an acceptance decision and shows up as a structural
 * diff, not just a bit wiggle.
 */
Table
nanThresholdLog(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    Table t(Schema({{"weather", ValueType::kString},
                    {"severity", ValueType::kDouble},
                    {"device_id", ValueType::kString},
                    {"drift", ValueType::kBool}}));
    for (size_t i = 0; i < rows; ++i) {
        size_t w = rng.index(4);
        size_t s = rng.index(3);
        size_t d = rng.index(8);
        // severity: two finite bands plus NaN (sensor dropout) — the
        // NaN cells must aggregate as one attribute value.
        Value severity =
            s == 2 ? Value(nan) : Value(0.5 + static_cast<double>(s));
        // Near-threshold causes: w1's confidence hovers at the 0.51
        // threshold; NaN severity carries a mild genuine signal.
        double p = 0.18;
        if (w == 1)
            p += 0.33;
        if (s == 2)
            p += 0.4;
        if (d == 3)
            p += 0.55;
        t.append({Value("w" + std::to_string(w)), severity,
                  Value("d" + std::to_string(d)),
                  Value(rng.bernoulli(std::min(0.95, p)))});
    }
    return t;
}

void
expectBitIdentical(const RankedCause &a, const RankedCause &b)
{
    EXPECT_TRUE(a.attrs == b.attrs)
        << a.attrs.toString() << " vs " << b.attrs.toString();
    EXPECT_EQ(a.metrics.setCount, b.metrics.setCount);
    EXPECT_EQ(a.metrics.setDriftCount, b.metrics.setDriftCount);
    // Exact double equality on purpose: the contract is bit-identity.
    EXPECT_EQ(a.metrics.occurrence, b.metrics.occurrence);
    EXPECT_EQ(a.metrics.support, b.metrics.support);
    EXPECT_EQ(a.metrics.confidence, b.metrics.confidence);
    EXPECT_EQ(a.metrics.riskRatio, b.metrics.riskRatio);
}

void
expectBitIdentical(const AnalysisResult &a, const AnalysisResult &b)
{
    ASSERT_EQ(a.rootCauses.size(), b.rootCauses.size());
    for (size_t i = 0; i < a.rootCauses.size(); ++i)
        expectBitIdentical(a.rootCauses[i], b.rootCauses[i]);
    ASSERT_EQ(a.fimTable.size(), b.fimTable.size());
    for (size_t i = 0; i < a.fimTable.size(); ++i)
        expectBitIdentical(a.fimTable[i], b.fimTable[i]);
    ASSERT_EQ(a.associations.size(), b.associations.size());
    for (size_t i = 0; i < a.associations.size(); ++i) {
        expectBitIdentical(a.associations[i].key, b.associations[i].key);
        ASSERT_EQ(a.associations[i].merged.size(),
                  b.associations[i].merged.size());
        for (size_t j = 0; j < a.associations[i].merged.size(); ++j)
            expectBitIdentical(a.associations[i].merged[j],
                               b.associations[i].merged[j]);
    }
}

struct RcaDeterminism : ::testing::Test
{
    ~RcaDeterminism() override
    {
        runtime::setThreads(0); // restore the configured default
    }
};

TEST_F(RcaDeterminism, AnalyzeBitIdenticalAcross1And4And8Threads)
{
    // 12k rows crosses the parallel row cutoff, so at >1 thread every
    // stage's scans really run sharded.
    Table t = nanThresholdLog(12000, 99);
    RcaConfig config;
    config.attributeColumns = {"weather", "severity", "device_id"};
    Analyzer analyzer(config);

    for (AnalysisMode mode :
         {AnalysisMode::kFimOnly, AnalysisMode::kFimSetReduction,
          AnalysisMode::kFull}) {
        runtime::setThreads(1);
        AnalysisResult sequential = analyzer.analyze(t, mode);
        EXPECT_FALSE(sequential.fimTable.empty());
        for (size_t threads : {4u, 8u}) {
            runtime::setThreads(threads);
            AnalysisResult parallel = analyzer.analyze(t, mode);
            expectBitIdentical(sequential, parallel);
        }
    }
}

TEST_F(RcaDeterminism, NanCellsFormASingleAttributeGroup)
{
    Table t = nanThresholdLog(12000, 7);
    RcaConfig config;
    config.attributeColumns = {"weather", "severity", "device_id"};
    for (size_t threads : {1u, 4u}) {
        runtime::setThreads(threads);
        auto causes = Fim(t, config).mine();
        // Exactly one level-1 severity cause has a NaN value, and its
        // count matches a direct scan of the column.
        size_t nan_causes = 0, nan_rows = 0;
        const auto &col = t.column("severity");
        for (size_t r = 0; r < t.rowCount(); ++r)
            nan_rows += std::isnan(col.at(r).asDouble()) ? 1 : 0;
        for (const auto &c : causes) {
            if (c.attrs.size() != 1)
                continue;
            const auto &attr = c.attrs.attributes()[0];
            if (attr.column == "severity" &&
                std::isnan(attr.value.asDouble())) {
                ++nan_causes;
                EXPECT_EQ(c.metrics.setCount, nan_rows);
            }
        }
        EXPECT_EQ(nan_causes, 1u) << "threads=" << threads;
    }
}

} // namespace
} // namespace nazar::rca
