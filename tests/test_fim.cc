/**
 * @file
 * Tests for frequent itemset mining, validated against the paper's
 * worked example (Tables 2 and 3) and its explicitly stated metric
 * values.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "paper_example.h"
#include "rca/fim.h"

namespace nazar::rca {
namespace {

using testing::findCause;
using testing::locationIs;
using testing::paperConfig;
using testing::paperTable2;
using testing::weatherAndLocation;
using testing::weatherIs;

TEST(Fim, SnowMetricsMatchPaperText)
{
    driftlog::Table t = paperTable2();
    RcaConfig config = paperConfig();
    Fim fim(t, config);
    auto causes = fim.mine();

    // Paper: {snow} has occurrence 0.4, support 0.67 (2 of 3 drift
    // entries), confidence 1, risk ratio 3.
    const RankedCause *snow = findCause(causes, weatherIs("snow"));
    ASSERT_NE(snow, nullptr);
    EXPECT_NEAR(snow->metrics.occurrence, 0.4, 1e-9);
    EXPECT_NEAR(snow->metrics.support, 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(snow->metrics.confidence, 1.0, 1e-9);
    EXPECT_NEAR(snow->metrics.riskRatio, 3.0, 1e-9);
    EXPECT_EQ(snow->metrics.setCount, 2u);
    EXPECT_EQ(snow->metrics.setDriftCount, 2u);
}

TEST(Fim, SnowHelsinkiRiskRatioMatchesPaperText)
{
    // Paper: "for {snow, Helsinki}, the risk ratio is 2".
    driftlog::Table t = paperTable2();
    RcaConfig config = paperConfig();
    auto causes = Fim(t, config).mine();
    const RankedCause *sh =
        findCause(causes, weatherAndLocation("snow", "helsinki"));
    ASSERT_NE(sh, nullptr);
    EXPECT_NEAR(sh->metrics.riskRatio, 2.0, 1e-9);
    EXPECT_NEAR(sh->metrics.confidence, 1.0, 1e-9);
    EXPECT_NEAR(sh->metrics.occurrence, 0.2, 1e-9);
    EXPECT_NEAR(sh->metrics.support, 1.0 / 3.0, 1e-9);
}

TEST(Fim, NewYorkMetricsMatchTable3)
{
    // Table 3: {New York} has occ 0.4? — the worked table lists conf
    // 0.67 and RR 1.3 for the New-York row; verify those here:
    // P(drift | NY) = 2/3, P(drift | !NY) = 1/2 -> RR = 4/3.
    driftlog::Table t = paperTable2();
    auto causes = Fim(t, paperConfig()).mine();
    const RankedCause *ny = findCause(causes, locationIs("new_york"));
    ASSERT_NE(ny, nullptr);
    EXPECT_NEAR(ny->metrics.confidence, 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(ny->metrics.riskRatio, 4.0 / 3.0, 1e-9);
}

TEST(Fim, ClearDayFailsConfidenceThreshold)
{
    // {clear-day} covers the two clean entries plus the false
    // positive: confidence 1/3 < 0.51, so it is not a cause.
    driftlog::Table t = paperTable2();
    RcaConfig config = paperConfig();
    auto causes = Fim(t, config).mine();
    const RankedCause *clear = findCause(causes, weatherIs("clear-day"));
    ASSERT_NE(clear, nullptr);
    EXPECT_NEAR(clear->metrics.confidence, 1.0 / 3.0, 1e-9);
    EXPECT_FALSE(passesThresholds(clear->metrics, config));
}

TEST(Fim, SnowIsTopRanked)
{
    driftlog::Table t = paperTable2();
    auto causes = Fim(t, paperConfig()).mine();
    ASSERT_FALSE(causes.empty());
    EXPECT_EQ(causes.front().attrs, weatherIs("snow"));
}

TEST(Fim, RespectsMaxAttributes)
{
    driftlog::Table t = paperTable2();
    RcaConfig config = paperConfig();
    config.maxAttributes = 1;
    auto causes = Fim(t, config).mine();
    for (const auto &c : causes)
        EXPECT_EQ(c.attrs.size(), 1u);

    config.maxAttributes = 2;
    causes = Fim(t, config).mine();
    size_t pairs = 0;
    for (const auto &c : causes) {
        EXPECT_LE(c.attrs.size(), 2u);
        pairs += c.attrs.size() == 2 ? 1 : 0;
    }
    EXPECT_GT(pairs, 0u);
}

TEST(Fim, TripleAttributeSetsAreMined)
{
    driftlog::Table t = paperTable2();
    auto causes = Fim(t, paperConfig()).mine();
    const RankedCause *triple = findCause(
        causes, AttributeSet({{"weather", driftlog::Value("snow")},
                              {"location", driftlog::Value("helsinki")},
                              {"device_id",
                               driftlog::Value("android_42")}}));
    ASSERT_NE(triple, nullptr);
    EXPECT_NEAR(triple->metrics.confidence, 1.0, 1e-9);
}

TEST(Fim, NonOccurringCombinationsAreAbsent)
{
    // {snow, android_21, helsinki} never occurs: must not be listed.
    driftlog::Table t = paperTable2();
    auto causes = Fim(t, paperConfig()).mine();
    const RankedCause *ghost = findCause(
        causes, AttributeSet({{"weather", driftlog::Value("snow")},
                              {"location", driftlog::Value("helsinki")},
                              {"device_id",
                               driftlog::Value("android_21")}}));
    EXPECT_EQ(ghost, nullptr);
}

TEST(Fim, RankingIsMonotoneInRiskRatio)
{
    driftlog::Table t = paperTable2();
    auto causes = Fim(t, paperConfig()).mine();
    for (size_t i = 1; i < causes.size(); ++i)
        EXPECT_GE(causes[i - 1].metrics.riskRatio,
                  causes[i].metrics.riskRatio);
}

TEST(Fim, OccurrencePruningDropsRareSingletons)
{
    driftlog::Table t = paperTable2();
    RcaConfig config = paperConfig();
    config.minOccurrence = 0.5; // only attributes on >= 3 of 5 rows
    auto causes = Fim(t, config).mine();
    // Level-1 results are always reported, but no pairs can form from
    // infrequent singletons (clear-day occ 0.6 and new_york 0.6 and
    // android_21 0.6 survive; snow 0.4 does not).
    for (const auto &c : causes) {
        if (c.attrs.size() >= 2)
            for (const auto &a : c.attrs.attributes())
                EXPECT_NE(a.value.toString(), "snow");
    }
}

TEST(Fim, DriftFlagsExtraction)
{
    driftlog::Table t = paperTable2();
    auto flags = Fim::driftFlags(t, "drift");
    EXPECT_EQ(flags, (std::vector<bool>{false, false, true, true, true}));
}

TEST(Fim, ExternallySuppliedFlagsOverrideColumn)
{
    driftlog::Table t = paperTable2();
    RcaConfig config = paperConfig();
    Fim fim(t, config);
    // All-false flags: every confidence is zero.
    auto causes = fim.mine(std::vector<bool>(5, false));
    for (const auto &c : causes) {
        EXPECT_EQ(c.metrics.confidence, 0.0);
        EXPECT_EQ(c.metrics.support, 0.0);
    }
}

TEST(Fim, ComputeMetricsMatchesMinerForSameSet)
{
    driftlog::Table t = paperTable2();
    auto flags = Fim::driftFlags(t, "drift");
    CauseMetrics m = computeMetrics(t, flags, weatherIs("snow"));
    EXPECT_NEAR(m.riskRatio, 3.0, 1e-9);
    EXPECT_NEAR(m.occurrence, 0.4, 1e-9);
}

TEST(Fim, UniversalSetHasZeroRiskRatio)
{
    // A set covering every row is a constant of the table: it has no
    // contrast group, so it must not pass as a cause (its risk ratio
    // is defined as zero).
    driftlog::Table t = paperTable2();
    std::vector<bool> flags(5, true);
    CauseMetrics m = computeMetrics(t, flags, AttributeSet());
    EXPECT_EQ(m.riskRatio, 0.0);
    EXPECT_EQ(m.confidence, 1.0);
    EXPECT_FALSE(passesThresholds(m, paperConfig()));
}

TEST(Fim, AllDriftOutsideSetGivesInfiniteRiskRatio)
{
    // Full contrast the other way: drift happens only inside the set.
    driftlog::Table t = paperTable2();
    std::vector<bool> flags = {false, false, false, true, true};
    CauseMetrics m = computeMetrics(t, flags, weatherIs("snow"));
    EXPECT_TRUE(std::isinf(m.riskRatio));
}

TEST(Fim, ValidatesConfiguration)
{
    driftlog::Table t = paperTable2();
    RcaConfig bad;
    EXPECT_THROW(Fim(t, bad), NazarError); // no attribute columns
    bad.attributeColumns = {"nope"};
    EXPECT_THROW(Fim(t, bad), NazarError);
    bad.attributeColumns = {"weather"};
    bad.driftColumn = "nope";
    EXPECT_THROW(Fim(t, bad), NazarError);
}

TEST(Fim, PassesThresholdsChecksAllFour)
{
    RcaConfig config = paperConfig();
    CauseMetrics good{0.5, 0.5, 0.9, 2.0, 10, 9};
    EXPECT_TRUE(passesThresholds(good, config));
    CauseMetrics low_conf = good;
    low_conf.confidence = 0.5;
    EXPECT_FALSE(passesThresholds(low_conf, config));
    CauseMetrics low_rr = good;
    low_rr.riskRatio = 1.0;
    EXPECT_FALSE(passesThresholds(low_rr, config));
    CauseMetrics low_occ = good;
    low_occ.occurrence = 0.001;
    EXPECT_FALSE(passesThresholds(low_occ, config));
    CauseMetrics low_sup = good;
    low_sup.support = 0.001;
    EXPECT_FALSE(passesThresholds(low_sup, config));
}

} // namespace
} // namespace nazar::rca
