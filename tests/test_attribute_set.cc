/**
 * @file
 * Tests for attribute sets.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "paper_example.h"
#include "rca/attribute_set.h"

namespace nazar::rca {
namespace {

using driftlog::Value;

TEST(AttributeSet, CanonicalOrdering)
{
    // Construction order must not matter.
    AttributeSet a({{"weather", Value("snow")},
                    {"location", Value("oslo")}});
    AttributeSet b({{"location", Value("oslo")},
                    {"weather", Value("snow")}});
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.toString(), b.toString());
}

TEST(AttributeSet, RejectsDuplicateColumns)
{
    EXPECT_THROW(AttributeSet({{"weather", Value("snow")},
                               {"weather", Value("rain")}}),
                 NazarError);
}

TEST(AttributeSet, HasColumnAndExtend)
{
    AttributeSet s({{"weather", Value("snow")}});
    EXPECT_TRUE(s.hasColumn("weather"));
    EXPECT_FALSE(s.hasColumn("location"));

    AttributeSet bigger = s.extended({"location", Value("oslo")});
    EXPECT_EQ(bigger.size(), 2u);
    EXPECT_TRUE(bigger.hasColumn("location"));
    EXPECT_THROW(s.extended({"weather", Value("rain")}), NazarError);
    // extended() does not mutate the source.
    EXPECT_EQ(s.size(), 1u);
}

TEST(AttributeSet, SubsetSemantics)
{
    AttributeSet snow({{"weather", Value("snow")}});
    AttributeSet snow_ny({{"weather", Value("snow")},
                          {"location", Value("new_york")}});
    AttributeSet rain({{"weather", Value("rain")}});
    AttributeSet empty;

    EXPECT_TRUE(snow.isSubsetOf(snow_ny));
    EXPECT_TRUE(snow.isProperSubsetOf(snow_ny));
    EXPECT_FALSE(snow_ny.isSubsetOf(snow));
    EXPECT_TRUE(snow.isSubsetOf(snow));
    EXPECT_FALSE(snow.isProperSubsetOf(snow));
    EXPECT_FALSE(rain.isSubsetOf(snow_ny)); // same column, other value
    EXPECT_TRUE(empty.isSubsetOf(snow));
    EXPECT_TRUE(empty.isProperSubsetOf(snow));
}

TEST(AttributeSet, MatchesRow)
{
    driftlog::Table t = testing::paperTable2();
    AttributeSet snow = testing::weatherIs("snow");
    // Rows 3 and 4 are the snowy entries.
    EXPECT_FALSE(snow.matchesRow(t, 0));
    EXPECT_FALSE(snow.matchesRow(t, 2));
    EXPECT_TRUE(snow.matchesRow(t, 3));
    EXPECT_TRUE(snow.matchesRow(t, 4));

    AttributeSet snow_hel =
        testing::weatherAndLocation("snow", "helsinki");
    EXPECT_FALSE(snow_hel.matchesRow(t, 3));
    EXPECT_TRUE(snow_hel.matchesRow(t, 4));

    AttributeSet empty;
    for (size_t r = 0; r < t.rowCount(); ++r)
        EXPECT_TRUE(empty.matchesRow(t, r));
}

TEST(AttributeSet, ToStringIsReadable)
{
    AttributeSet s({{"weather", Value("snow")},
                    {"location", Value("oslo")}});
    EXPECT_EQ(s.toString(), "{location=oslo, weather=snow}");
    EXPECT_EQ(AttributeSet().toString(), "{}");
}

TEST(AttributeSet, TotalOrderIsStrict)
{
    AttributeSet a({{"weather", Value("rain")}});
    AttributeSet b({{"weather", Value("snow")}});
    EXPECT_TRUE(a < b || b < a);
    EXPECT_FALSE(a < a);
}

} // namespace
} // namespace nazar::rca
