/**
 * @file
 * Tests for the SQL dialect over drift-log tables.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "driftlog/drift_log.h"
#include "driftlog/sql.h"

namespace nazar::driftlog {
namespace {

Table
weatherTable()
{
    Table t(Schema({{"weather", ValueType::kString},
                    {"location", ValueType::kString},
                    {"temp", ValueType::kInt},
                    {"drift", ValueType::kBool}}));
    t.append({Value("snow"), Value("oslo"), Value(-3), Value(true)});
    t.append({Value("clear-day"), Value("rome"), Value(18),
              Value(false)});
    t.append({Value("snow"), Value("oslo"), Value(-5), Value(true)});
    t.append({Value("rain"), Value("rome"), Value(12), Value(true)});
    t.append({Value("clear-day"), Value("oslo"), Value(2),
              Value(false)});
    return t;
}

TEST(Sql, CountStar)
{
    Table t = weatherTable();
    SqlResult r = executeSql(t, "log", "SELECT COUNT(*) FROM log");
    ASSERT_EQ(r.rowCount(), 1u);
    EXPECT_EQ(r.at(0, "count").asInt(), 5);
}

TEST(Sql, CountWithWhere)
{
    Table t = weatherTable();
    SqlResult r = executeSql(
        t, "log",
        "SELECT COUNT(*) FROM log WHERE weather = 'snow' AND "
        "drift = true");
    EXPECT_EQ(r.at(0, "count").asInt(), 2);
}

TEST(Sql, WhereComparisonOperators)
{
    Table t = weatherTable();
    EXPECT_EQ(executeSql(t, "log",
                         "SELECT COUNT(*) FROM log WHERE temp > 0")
                  .at(0, "count")
                  .asInt(),
              3);
    EXPECT_EQ(executeSql(t, "log",
                         "SELECT COUNT(*) FROM log WHERE temp <= -3")
                  .at(0, "count")
                  .asInt(),
              2);
    EXPECT_EQ(executeSql(t, "log",
                         "SELECT COUNT(*) FROM log WHERE weather != "
                         "'snow'")
                  .at(0, "count")
                  .asInt(),
              3);
    EXPECT_EQ(executeSql(t, "log",
                         "SELECT COUNT(*) FROM log WHERE weather <> "
                         "'snow'")
                  .at(0, "count")
                  .asInt(),
              3);
}

TEST(Sql, Projection)
{
    Table t = weatherTable();
    SqlResult r = executeSql(
        t, "log",
        "SELECT weather, temp FROM log WHERE location = 'oslo'");
    ASSERT_EQ(r.rowCount(), 3u);
    EXPECT_EQ(r.columns, (std::vector<std::string>{"weather", "temp"}));
    EXPECT_EQ(r.at(0, "weather").asString(), "snow");
    EXPECT_EQ(r.at(0, "temp").asInt(), -3);
}

TEST(Sql, SelectStar)
{
    Table t = weatherTable();
    SqlResult r = executeSql(t, "log", "SELECT * FROM log LIMIT 2");
    EXPECT_EQ(r.rowCount(), 2u);
    EXPECT_EQ(r.columns.size(), 4u);
}

TEST(Sql, GroupByCount)
{
    Table t = weatherTable();
    SqlResult r = executeSql(
        t, "log",
        "SELECT weather, COUNT(*) FROM log GROUP BY weather "
        "ORDER BY COUNT(*) DESC");
    ASSERT_EQ(r.rowCount(), 3u);
    // clear-day: 2, snow: 2, rain: 1 (stable sort: ties keep map
    // order, clear-day < snow alphabetically).
    EXPECT_EQ(r.rows[0][1].asInt(), 2);
    EXPECT_EQ(r.rows[1][1].asInt(), 2);
    EXPECT_EQ(r.rows[2][1].asInt(), 1);
    EXPECT_EQ(r.rows[2][0].asString(), "rain");
}

TEST(Sql, GroupByMultipleColumnsWithWhere)
{
    Table t = weatherTable();
    SqlResult r = executeSql(
        t, "log",
        "SELECT weather, location, COUNT(*) FROM log WHERE drift = "
        "true GROUP BY weather, location");
    ASSERT_EQ(r.rowCount(), 2u); // {snow,oslo} x2, {rain,rome} x1
    size_t count_col = r.columnIndex("count");
    int64_t total = 0;
    for (const auto &row : r.rows)
        total += row[count_col].asInt();
    EXPECT_EQ(total, 3);
}

TEST(Sql, GroupByDefaultSelectList)
{
    Table t = weatherTable();
    SqlResult r =
        executeSql(t, "log", "SELECT * FROM log GROUP BY weather");
    EXPECT_EQ(r.columns,
              (std::vector<std::string>{"weather", "count"}));
    EXPECT_EQ(r.rowCount(), 3u);
}

TEST(Sql, OrderByColumnAscendingAndLimit)
{
    Table t = weatherTable();
    SqlResult r = executeSql(
        t, "log", "SELECT temp FROM log ORDER BY temp ASC LIMIT 2");
    ASSERT_EQ(r.rowCount(), 2u);
    EXPECT_EQ(r.rows[0][0].asInt(), -5);
    EXPECT_EQ(r.rows[1][0].asInt(), -3);
}

TEST(Sql, KeywordsAreCaseInsensitive)
{
    Table t = weatherTable();
    SqlResult r = executeSql(
        t, "log", "select count(*) from log where drift = TRUE");
    EXPECT_EQ(r.at(0, "count").asInt(), 3);
}

TEST(Sql, FimStyleQuery)
{
    // The exact query shape the paper's FIM stage issues: how often is
    // each attribute value associated with drift?
    DriftLog log;
    for (int i = 0; i < 20; ++i) {
        DriftLogEntry e;
        e.time = SimDate(i % 5);
        e.deviceId = "android_1";
        e.deviceModel = "pixel_6";
        e.location = i % 2 ? "oslo" : "rome";
        e.weather = i % 4 == 0 ? "snow" : "clear-day";
        e.drift = i % 4 == 0;
        log.add(e);
    }
    SqlResult r = executeSql(
        log.table(), "drift_log",
        "SELECT weather, COUNT(*) FROM drift_log WHERE drift = true "
        "GROUP BY weather ORDER BY COUNT(*) DESC LIMIT 3");
    ASSERT_EQ(r.rowCount(), 1u);
    EXPECT_EQ(r.rows[0][0].asString(), "snow");
    EXPECT_EQ(r.rows[0][1].asInt(), 5);
}

TEST(Sql, DoubleAndNegativeLiterals)
{
    Table t(Schema({{"x", ValueType::kDouble}}));
    t.append({Value(1.5)});
    t.append({Value(-2.5)});
    EXPECT_EQ(executeSql(t, "t",
                         "SELECT COUNT(*) FROM t WHERE x > 1.25")
                  .at(0, "count")
                  .asInt(),
              1);
    EXPECT_EQ(executeSql(t, "t",
                         "SELECT COUNT(*) FROM t WHERE x = -2.5")
                  .at(0, "count")
                  .asInt(),
              1);
}

TEST(Sql, SyntaxAndSemanticErrors)
{
    Table t = weatherTable();
    EXPECT_THROW(executeSql(t, "log", "SELEKT * FROM log"), NazarError);
    EXPECT_THROW(executeSql(t, "log", "SELECT * FROM other"),
                 NazarError);
    EXPECT_THROW(executeSql(t, "log", "SELECT bogus FROM log"),
                 NazarError);
    EXPECT_THROW(
        executeSql(t, "log", "SELECT * FROM log WHERE weather ="),
        NazarError);
    EXPECT_THROW(
        executeSql(t, "log",
                   "SELECT * FROM log WHERE weather = 'unterminated"),
        NazarError);
    EXPECT_THROW(executeSql(t, "log", "SELECT * FROM log LIMIT -1"),
                 NazarError);
    EXPECT_THROW(
        executeSql(t, "log", "SELECT temp, COUNT(*) FROM log"),
        NazarError); // COUNT(*) with columns requires GROUP BY
    EXPECT_THROW(executeSql(t, "log",
                            "SELECT temp FROM log GROUP BY weather"),
                 NazarError); // selected col not in GROUP BY
    EXPECT_THROW(executeSql(t, "log", "SELECT * FROM log extra"),
                 NazarError); // trailing garbage
}

TEST(Sql, ResultRendering)
{
    Table t = weatherTable();
    SqlResult r = executeSql(t, "log",
                             "SELECT weather, COUNT(*) FROM log GROUP "
                             "BY weather");
    std::string s = r.toString();
    EXPECT_NE(s.find("weather"), std::string::npos);
    EXPECT_NE(s.find("snow"), std::string::npos);
    EXPECT_THROW(r.columnIndex("bogus"), NazarError);
    EXPECT_THROW(r.at(99, "count"), NazarError);
}

TEST(Sql, TrailingSemicolonAccepted)
{
    Table t = weatherTable();
    EXPECT_NO_THROW(executeSql(t, "log", "SELECT COUNT(*) FROM log;"));
}

} // namespace
} // namespace nazar::driftlog
