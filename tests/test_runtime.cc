/**
 * @file
 * Tests for the parallel-execution runtime: pool lifecycle, chunking,
 * exception propagation, nested-call safety, the deterministic
 * reduce, and the end-to-end determinism contract — a full sim run
 * must be bit-identical at NAZAR_THREADS=1 and 4.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "common/logging.h"
#include "data/apps.h"
#include "runtime/thread_pool.h"
#include "sim/runner.h"

namespace nazar::runtime {
namespace {

TEST(ChunkCount, EdgeCases)
{
    EXPECT_EQ(chunkCount(0, 0, 4), 0u);
    EXPECT_EQ(chunkCount(5, 5, 4), 0u);
    EXPECT_EQ(chunkCount(7, 5, 4), 0u); // begin past end
    EXPECT_EQ(chunkCount(0, 1, 4), 1u);
    EXPECT_EQ(chunkCount(0, 8, 4), 2u);
    EXPECT_EQ(chunkCount(0, 9, 4), 3u);
    EXPECT_EQ(chunkCount(0, 9, 0), 9u);   // grain clamps to 1
    EXPECT_EQ(chunkCount(0, 3, 100), 1u); // grain > range
    EXPECT_EQ(chunkCount(2, 9, 3), 3u);   // non-zero begin
}

TEST(ThreadPool, StartStopRepeatedly)
{
    for (size_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        std::atomic<size_t> count{0};
        pool.parallelFor(0, 100, 7, [&](size_t b, size_t e) {
            count.fetch_add(e - b);
        });
        EXPECT_EQ(count.load(), 100u);
    }
    // Zero clamps to one (no workers, inline execution).
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    for (size_t grain : {0u, 1u, 3u, 16u, 1000u}) {
        std::vector<std::atomic<int>> hits(257);
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(0, hits.size(), grain, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i
                                         << " grain " << grain;
    }
}

TEST(ThreadPool, EmptyRangeIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(5, 5, 1, [&](size_t, size_t) { ran = true; });
    pool.parallelFor(9, 2, 1, [&](size_t, size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 64, 1,
                         [&](size_t b, size_t) {
                             if (b == 13)
                                 throw std::runtime_error("chunk 13");
                         }),
        std::runtime_error);
    // The pool must stay usable after a failed batch.
    std::atomic<size_t> count{0};
    pool.parallelFor(0, 64, 1, [&](size_t b, size_t e) {
        count.fetch_add(e - b);
    });
    EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPool, ExceptionPropagatesInline)
{
    ThreadPool pool(1); // no workers: inline path
    EXPECT_THROW(pool.parallelFor(0, 4, 1,
                                  [](size_t, size_t) {
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedCallsRunInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(0, 8, 1, [&](size_t ob, size_t oe) {
        for (size_t o = ob; o < oe; ++o) {
            // Nested parallelFor from a pool thread must not deadlock.
            pool.parallelFor(0, 8, 2, [&](size_t ib, size_t ie) {
                for (size_t i = ib; i < ie; ++i)
                    hits[o * 8 + i].fetch_add(1);
            });
        }
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, BackToBackShortBatchesStress)
{
    // Regression stress for the stale-worker race: publish thousands
    // of tiny batches back to back. A worker that sleeps through one
    // batch must never wake into the next batch's publish; every
    // index still runs exactly once per batch.
    ThreadPool pool(4);
    std::atomic<size_t> total{0};
    size_t expected = 0;
    for (int round = 0; round < 2000; ++round) {
        size_t n = 2 + static_cast<size_t>(round % 13);
        expected += n;
        pool.parallelFor(0, n, 1, [&](size_t b, size_t e) {
            total.fetch_add(e - b);
        });
    }
    EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, RetiredPoolRunsInline)
{
    ThreadPool pool(4);
    pool.retire();
    std::atomic<size_t> count{0};
    pool.parallelFor(0, 40, 4, [&](size_t b, size_t e) {
        count.fetch_add(e - b);
    });
    EXPECT_EQ(count.load(), 40u);
}

TEST(ThreadPool, ReduceIsDeterministicAcrossThreadCounts)
{
    // Sum of doubles whose magnitudes differ wildly: any change in
    // combination order changes the rounded result, so equality below
    // checks the chunk-ordered combine contract, not luck.
    std::vector<double> xs(1000);
    for (size_t i = 0; i < xs.size(); ++i)
        xs[i] = std::pow(-1.0, static_cast<double>(i % 3)) /
                (1.0 + static_cast<double>(i * i));

    auto sum_with = [&](size_t threads) {
        ThreadPool pool(threads);
        return pool.parallelReduce<double>(
            0, xs.size(), 17, 0.0,
            [&](size_t b, size_t e) {
                double s = 0.0;
                for (size_t i = b; i < e; ++i)
                    s += xs[i];
                return s;
            },
            [](double a, double b) { return a + b; });
    };

    double serial = sum_with(1);
    EXPECT_EQ(serial, sum_with(2));
    EXPECT_EQ(serial, sum_with(4));
    EXPECT_EQ(serial, sum_with(8));
}

TEST(ThreadPool, ReduceEmptyRangeReturnsIdentity)
{
    ThreadPool pool(4);
    double r = pool.parallelReduce<double>(
        3, 3, 1, 42.0, [](size_t, size_t) { return 0.0; },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(r, 42.0);
}

TEST(GlobalPool, ConfiguredThreadsReadsEnv)
{
    ASSERT_EQ(setenv("NAZAR_THREADS", "3", 1), 0);
    EXPECT_EQ(configuredThreads(), 3u);
    ASSERT_EQ(setenv("NAZAR_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(configuredThreads(), 1u); // falls back to hardware
    ASSERT_EQ(unsetenv("NAZAR_THREADS"), 0);
    EXPECT_GE(configuredThreads(), 1u);
}

TEST(GlobalPool, SetThreadsRebuildsPool)
{
    setThreads(3);
    EXPECT_EQ(threadCount(), 3u);
    std::atomic<size_t> count{0};
    parallelFor(0, 50, 4, [&](size_t b, size_t e) {
        count.fetch_add(e - b);
    });
    EXPECT_EQ(count.load(), 50u);
    setThreads(1);
    EXPECT_EQ(threadCount(), 1u);
    setThreads(0);
}

TEST(GlobalPool, StaleReferenceAfterSetThreadsRunsInline)
{
    setThreads(4);
    ThreadPool &stale = globalPool();
    setThreads(2);
    // The replaced pool is retired, not freed: a stale reference must
    // still execute work (inline), not crash or deadlock.
    std::atomic<size_t> count{0};
    stale.parallelFor(0, 40, 4, [&](size_t b, size_t e) {
        count.fetch_add(e - b);
    });
    EXPECT_EQ(count.load(), 40u);
    EXPECT_EQ(threadCount(), 2u);
    setThreads(0);
}

// ---- End-to-end determinism contract --------------------------------

/** Tiny but non-trivial fleet run exercising the full Nazar loop. */
sim::RunResult
runTinyFleet(sim::Strategy strategy,
             const net::FaultConfig &faults = net::FaultConfig{})
{
    data::AppSpec app = data::makeAnimalsApp(13, 8);
    data::WeatherModel weather(app.locations, 21, 2020);
    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = strategy;
    config.windows = 3;
    config.workload.days = 21;
    config.workload.devicesPerLocation = 3;
    config.workload.imagesPerDevicePerDay = 3.0;
    config.train.epochs = 20;
    config.cloud.minAdaptSamples = 16;
    config.uploadSampleRate = 0.5;
    config.seed = 17;
    config.faults = faults;
    sim::Runner runner(app, weather, config);
    return runner.run();
}

/** Bit-exact comparison of everything except wall-clock timings. */
void
expectIdenticalResults(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.baseCleanAccuracy, b.baseCleanAccuracy);
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (size_t i = 0; i < a.windows.size(); ++i) {
        const auto &wa = a.windows[i];
        const auto &wb = b.windows[i];
        EXPECT_EQ(wa.window, wb.window) << "window " << i;
        EXPECT_EQ(wa.events, wb.events) << "window " << i;
        EXPECT_EQ(wa.driftedEvents, wb.driftedEvents) << "window " << i;
        EXPECT_EQ(wa.correctAll, wb.correctAll) << "window " << i;
        EXPECT_EQ(wa.correctDrifted, wb.correctDrifted)
            << "window " << i;
        EXPECT_EQ(wa.correctClean, wb.correctClean) << "window " << i;
        EXPECT_EQ(wa.flagged, wb.flagged) << "window " << i;
        EXPECT_EQ(wa.rootCauses, wb.rootCauses) << "window " << i;
        EXPECT_EQ(wa.newVersions, wb.newVersions) << "window " << i;
        EXPECT_EQ(wa.poolSize, wb.poolSize) << "window " << i;
        EXPECT_EQ(wa.staleDevices, wb.staleDevices) << "window " << i;
    }
    ASSERT_EQ(a.perCorruption.size(), b.perCorruption.size());
    auto ita = a.perCorruption.begin();
    auto itb = b.perCorruption.begin();
    for (; ita != a.perCorruption.end(); ++ita, ++itb) {
        EXPECT_EQ(ita->first, itb->first);
        EXPECT_EQ(ita->second.correct, itb->second.correct);
        EXPECT_EQ(ita->second.total, itb->second.total);
    }
}

struct RuntimeDeterminism : ::testing::Test
{
    RuntimeDeterminism() { setLogLevel(LogLevel::kSilent); }
    ~RuntimeDeterminism() override
    {
        setThreads(0); // restore the configured default
        setLogLevel(LogLevel::kInfo);
    }
};

TEST_F(RuntimeDeterminism, NazarRunIdenticalAt1And4Threads)
{
    setThreads(1);
    sim::RunResult sequential = runTinyFleet(sim::Strategy::kNazar);
    setThreads(4);
    sim::RunResult parallel = runTinyFleet(sim::Strategy::kNazar);
    expectIdenticalResults(sequential, parallel);
}

TEST_F(RuntimeDeterminism, AdaptAllRunIdenticalAt1And4Threads)
{
    setThreads(1);
    sim::RunResult sequential = runTinyFleet(sim::Strategy::kAdaptAll);
    setThreads(4);
    sim::RunResult parallel = runTinyFleet(sim::Strategy::kAdaptAll);
    expectIdenticalResults(sequential, parallel);
}

TEST_F(RuntimeDeterminism, FaultedNazarRunIdenticalAt1And4Threads)
{
    // The fault channel draws its RNG on the emitting thread in event
    // order, so even heavily faulted runs must not depend on the
    // runtime pool width.
    net::FaultConfig faults;
    faults.dropProb = 0.25;
    faults.dupProb = 0.15;
    faults.delayProb = 0.1;
    faults.reorderProb = 0.2;
    faults.offlineProb = 0.05;
    faults.pushDropProb = 0.2;
    faults.queueCapacity = 64;
    faults.seed = 424242;
    setThreads(1);
    sim::RunResult sequential =
        runTinyFleet(sim::Strategy::kNazar, faults);
    setThreads(4);
    sim::RunResult parallel =
        runTinyFleet(sim::Strategy::kNazar, faults);
    expectIdenticalResults(sequential, parallel);
}

} // namespace
} // namespace nazar::runtime
