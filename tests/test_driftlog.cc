/**
 * @file
 * Tests for the drift-log column store, query layer and facade.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>

#include "common/error.h"
#include "driftlog/drift_log.h"

namespace nazar::driftlog {
namespace {

TEST(Value, TypesAndAccessors)
{
    EXPECT_EQ(Value().type(), ValueType::kNull);
    EXPECT_TRUE(Value().isNull());
    EXPECT_EQ(Value(3).asInt(), 3);
    EXPECT_EQ(Value(int64_t{1} << 40).asInt(), int64_t{1} << 40);
    EXPECT_EQ(Value(2.5).asDouble(), 2.5);
    EXPECT_EQ(Value(7).asDouble(), 7.0); // int promotes to double
    EXPECT_TRUE(Value(true).asBool());
    EXPECT_EQ(Value("hi").asString(), "hi");
    EXPECT_THROW(Value("hi").asInt(), NazarError);
    EXPECT_THROW(Value(1).asString(), NazarError);
}

TEST(Value, ToStringForms)
{
    EXPECT_EQ(Value().toString(), "NULL");
    EXPECT_EQ(Value(42).toString(), "42");
    EXPECT_EQ(Value(true).toString(), "true");
    EXPECT_EQ(Value("snow").toString(), "snow");
}

TEST(Value, OrderingWithinAndAcrossTypes)
{
    EXPECT_LT(Value(1), Value(2));
    EXPECT_LT(Value("apple"), Value("banana"));
    EXPECT_LT(Value(1.0), Value(2.0));
    EXPECT_EQ(Value("x"), Value("x"));
    EXPECT_NE(Value(1), Value("1")); // different types never equal
}

TEST(Value, NanHasATotalOrder)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();

    // == and <=> agree on NaN (the defaulted variant == used to say
    // NaN != NaN while <=> said equal).
    EXPECT_EQ(Value(nan), Value(nan));
    EXPECT_TRUE((Value(nan) <=> Value(nan)) == 0);
    EXPECT_EQ(Value(nan) == Value(nan),
              (Value(nan) <=> Value(nan)) == 0);

    // NaN orders consistently against every finite double: exactly one
    // of <, ==, > holds (IEEE totalOrder puts quiet NaN above +inf).
    for (double x : {-1.0, 0.0, 1.0, inf, -inf}) {
        EXPECT_NE(Value(nan), Value(x));
        EXPECT_GT(Value(nan), Value(x));
        EXPECT_LT(Value(x), Value(nan));
    }
    EXPECT_LT(Value(-nan), Value(-inf)); // negative NaN below -inf

    // Signed zeros are distinct bit classes under the total order.
    EXPECT_NE(Value(-0.0), Value(0.0));
    EXPECT_LT(Value(-0.0), Value(0.0));
}

TEST(Value, NanKeysDoNotCorruptValueKeyedMaps)
{
    // Regression for the FIM level-1 aggregation: with the old
    // ordering (NaN "equal" to everything) a NaN key swallowed every
    // later double key, so three distinct values collapsed into one
    // map entry.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::map<Value, int> m;
    m[Value(nan)] = 1;
    m[Value(1.0)] = 2;
    m[Value(2.0)] = 3;
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m[Value(1.0)], 2);
    EXPECT_EQ(m[Value(2.0)], 3);
    EXPECT_EQ(m[Value(nan)], 1);
}

TEST(Table, IntCellsWidenInDoubleColumns)
{
    // Value(3) and Value(3.0) differ by variant index; ingest must
    // land them as one cell value or a numeric drift-log column splits
    // a single FIM attribute group into two ranked causes.
    Table t(Schema({{"score", ValueType::kDouble}}));
    t.append({Value(3)});
    t.append({Value(3.0)});
    EXPECT_EQ(t.at(0, 0).type(), ValueType::kDouble);
    EXPECT_EQ(t.at(0, 0), t.at(1, 0));
    EXPECT_EQ(t.distinct("score").size(), 1u);

    // Query conditions widen the same way.
    EXPECT_EQ(Query(t).where("score", Value(3)).count(), 2u);
    EXPECT_EQ(Query(t).where("score", CompareOp::kGe, Value(3)).count(),
              2u);

    // Narrowing is still a type error: doubles don't fit int columns.
    Table ti(Schema({{"n", ValueType::kInt}}));
    EXPECT_THROW(ti.append({Value(3.0)}), NazarError);
}

Schema
testSchema()
{
    return Schema({{"city", ValueType::kString},
                   {"temp", ValueType::kInt},
                   {"drift", ValueType::kBool}});
}

TEST(Schema, LookupAndValidation)
{
    Schema s = testSchema();
    EXPECT_EQ(s.columnCount(), 3u);
    EXPECT_EQ(s.indexOf("temp"), 1u);
    EXPECT_TRUE(s.has("drift"));
    EXPECT_FALSE(s.has("humidity"));
    EXPECT_THROW(s.indexOf("humidity"), NazarError);
    EXPECT_THROW(Schema({{"a", ValueType::kInt},
                         {"a", ValueType::kInt}}),
                 NazarError);
    EXPECT_THROW(Schema(std::vector<ColumnDef>{}), NazarError);
}

TEST(Table, AppendAndAccess)
{
    Table t(testSchema());
    t.append({Value("oslo"), Value(-3), Value(true)});
    t.append({Value("rome"), Value(18), Value(false)});
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.at(0, "city").asString(), "oslo");
    EXPECT_EQ(t.at(1, 1).asInt(), 18);
    Row r = t.row(0);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r[2].asBool(), true);
}

TEST(Table, TypeChecking)
{
    Table t(testSchema());
    EXPECT_THROW(t.append({Value("oslo"), Value("cold"), Value(true)}),
                 NazarError);
    EXPECT_THROW(t.append({Value("oslo"), Value(1)}), NazarError);
    // Nulls are allowed in any column.
    EXPECT_NO_THROW(t.append({Value(), Value(), Value()}));
}

TEST(Table, DistinctSorted)
{
    Table t(testSchema());
    t.append({Value("b"), Value(1), Value(false)});
    t.append({Value("a"), Value(2), Value(false)});
    t.append({Value("b"), Value(3), Value(false)});
    auto d = t.distinct("city");
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0].asString(), "a");
    EXPECT_EQ(d[1].asString(), "b");
}

TEST(Table, ClearKeepsSchema)
{
    Table t(testSchema());
    t.append({Value("x"), Value(0), Value(false)});
    t.clear();
    EXPECT_EQ(t.rowCount(), 0u);
    EXPECT_NO_THROW(t.append({Value("y"), Value(1), Value(true)}));
}

TEST(Query, WhereAndCount)
{
    Table t(testSchema());
    t.append({Value("oslo"), Value(-3), Value(true)});
    t.append({Value("rome"), Value(18), Value(false)});
    t.append({Value("oslo"), Value(2), Value(false)});

    EXPECT_EQ(Query(t).count(), 3u);
    EXPECT_EQ(Query(t).where("city", Value("oslo")).count(), 2u);
    EXPECT_EQ(Query(t)
                  .where("city", Value("oslo"))
                  .where("drift", Value(true))
                  .count(),
              1u);
    EXPECT_EQ(Query(t)
                  .where("temp", CompareOp::kGt, Value(0))
                  .count(),
              2u);
    EXPECT_EQ(Query(t)
                  .where("temp", CompareOp::kLe, Value(2))
                  .count(),
              2u);
    EXPECT_EQ(Query(t)
                  .where("city", CompareOp::kNe, Value("oslo"))
                  .count(),
              1u);
    EXPECT_THROW(Query(t).where("bogus", Value(1)), NazarError);
}

TEST(Query, SelectReturnsRowIds)
{
    Table t(testSchema());
    t.append({Value("a"), Value(1), Value(true)});
    t.append({Value("b"), Value(2), Value(false)});
    t.append({Value("a"), Value(3), Value(true)});
    auto rows = Query(t).where("city", Value("a")).select();
    EXPECT_EQ(rows, (std::vector<size_t>{0, 2}));
}

TEST(Query, GroupByCount)
{
    Table t(testSchema());
    t.append({Value("a"), Value(1), Value(true)});
    t.append({Value("b"), Value(2), Value(false)});
    t.append({Value("a"), Value(3), Value(true)});
    auto groups = Query(t).groupByCount("city");
    EXPECT_EQ(groups[Value("a")], 2u);
    EXPECT_EQ(groups[Value("b")], 1u);

    auto filtered =
        Query(t).where("drift", Value(true)).groupByCount("city");
    EXPECT_EQ(filtered.size(), 1u);
    EXPECT_EQ(filtered[Value("a")], 2u);
}

TEST(Query, MultiColumnGroupBy)
{
    Table t(testSchema());
    t.append({Value("a"), Value(1), Value(true)});
    t.append({Value("a"), Value(1), Value(false)});
    t.append({Value("a"), Value(2), Value(true)});
    auto groups = Query(t).groupByCount(
        std::vector<std::string>{"city", "temp"});
    EXPECT_EQ(groups.size(), 2u);
    EXPECT_EQ((groups[{Value("a"), Value(1)}]), 2u);
    EXPECT_THROW(Query(t).groupByCount(std::vector<std::string>{}),
                 NazarError);
}

TEST(DriftLog, IngestAndReadBack)
{
    DriftLog log;
    DriftLogEntry e;
    e.time = SimDate(17, 3661);
    e.deviceId = "android_42";
    e.deviceModel = "pixel_6";
    e.location = "helsinki";
    e.weather = "snow";
    e.modelVersion = 3;
    e.drift = true;
    log.add(e);

    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.driftCount(), 1u);
    DriftLogEntry back = log.entry(0);
    EXPECT_EQ(back.deviceId, "android_42");
    EXPECT_EQ(back.location, "helsinki");
    EXPECT_EQ(back.weather, "snow");
    EXPECT_EQ(back.modelVersion, 3);
    EXPECT_TRUE(back.drift);
    EXPECT_EQ(back.time.dayIndex(), 17);
}

TEST(DriftLog, DefaultAttributeColumnsExist)
{
    DriftLog log;
    for (const auto &col : DriftLog::defaultAttributeColumns())
        EXPECT_TRUE(log.table().schema().has(col)) << col;
    // Bookkeeping columns are not candidate causes.
    auto attrs = DriftLog::defaultAttributeColumns();
    for (const auto &col : attrs) {
        EXPECT_NE(col, columns::kTime);
        EXPECT_NE(col, columns::kModelVersion);
        EXPECT_NE(col, columns::kDrift);
    }
}

TEST(DriftLog, QueryIntegration)
{
    DriftLog log;
    for (int i = 0; i < 10; ++i) {
        DriftLogEntry e;
        e.time = SimDate(i);
        e.deviceId = "android_1";
        e.deviceModel = "pixel_6";
        e.location = i % 2 ? "oslo" : "rome";
        e.weather = "clear-day";
        e.drift = i % 2 == 1;
        log.add(e);
    }
    EXPECT_EQ(log.driftCount(), 5u);
    EXPECT_EQ(log.query()
                  .where(columns::kLocation, Value("oslo"))
                  .where(columns::kDrift, Value(true))
                  .count(),
              5u);
    log.clear();
    EXPECT_EQ(log.size(), 0u);
}

} // namespace
} // namespace nazar::driftlog
