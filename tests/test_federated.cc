/**
 * @file
 * Tests for the federated by-cause adaptation extension.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "data/corruption.h"
#include "data/domain.h"
#include "fed/federated.h"
#include "nn/linear.h"

namespace nazar::fed {
namespace {

struct FedFixture : ::testing::Test
{
    FedFixture()
    {
        data::DomainConfig dc;
        dc.numClasses = 8;
        dc.featureDim = 16;
        dc.prototypeScale = 0.8;
        dc.noiseMin = 0.5;
        dc.noiseMax = 1.0;
        dc.seed = 3;
        domain = std::make_unique<data::Domain>(dc);
        Rng rng(1);
        auto train = domain->makeBalancedDataset(80, rng);
        base = std::make_unique<nn::Classifier>(
            nn::Architecture::kResNet18, 16, 8, 5);
        nn::TrainConfig tc;
        tc.epochs = 25;
        base->trainSupervised(train.x, train.labels, tc);
    }

    /** Split drifted samples across n devices. */
    std::vector<DeviceShard>
    makeShards(int n, size_t per_device, uint64_t seed)
    {
        Rng rng(seed);
        data::Corruptor corr(16);
        std::vector<DeviceShard> shards;
        for (int d = 0; d < n; ++d) {
            data::DatasetBuilder builder;
            for (size_t i = 0; i < per_device; ++i) {
                int cls = static_cast<int>(rng.index(8));
                builder.add(corr.apply(domain->sample(cls, rng),
                                       data::CorruptionType::kFog, 3,
                                       rng),
                            cls);
            }
            shards.push_back({d, builder.build()});
        }
        return shards;
    }

    data::Dataset
    makeTestSet(size_t per_class, uint64_t seed)
    {
        Rng rng(seed);
        data::Corruptor corr(16);
        auto src = domain->makeBalancedDataset(per_class, rng);
        data::DatasetBuilder builder;
        for (size_t r = 0; r < src.x.rows(); ++r)
            builder.add(corr.apply(src.x.rowVec(r),
                                   data::CorruptionType::kFog, 3, rng),
                        src.labels[r]);
        return builder.build();
    }

    std::unique_ptr<data::Domain> domain;
    std::unique_ptr<nn::Classifier> base;
};

TEST(Aggregate, IdenticalPatchesAverageToThemselves)
{
    Rng rng(2);
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>(4, 6, rng));
    net.add(std::make_unique<nn::BatchNorm1d>(6));
    net.forward(nn::Matrix::randomNormal(8, 4, 1.0, rng),
                nn::Mode::kAdapt);
    nn::BnPatch p = nn::BnPatch::extract(net);
    nn::BnPatch avg = aggregatePatches({p, p, p}, {1.0, 2.0, 3.0});
    EXPECT_TRUE(avg.approxEquals(p, 1e-12));
}

TEST(Aggregate, WeightsAreRespected)
{
    // Two patches with gamma 0 and gamma 2: weight 3:1 gives 0.5.
    nn::BatchNorm1d bn_a(2), bn_b(2);
    nn::BnState sa = bn_a.state(), sb = bn_b.state();
    sa.gamma.fill(0.0);
    sb.gamma.fill(2.0);
    nn::BnPatch a = nn::BnPatch::fromStates({sa});
    nn::BnPatch b = nn::BnPatch::fromStates({sb});
    nn::BnPatch avg = aggregatePatches({a, b}, {3.0, 1.0});
    EXPECT_NEAR(avg.state(0).gamma(0, 0), 0.5, 1e-12);
    EXPECT_NEAR(avg.state(0).gamma(0, 1), 0.5, 1e-12);
}

TEST(Aggregate, ValidatesInput)
{
    nn::BatchNorm1d bn(2);
    nn::BnPatch p = nn::BnPatch::fromStates({bn.state()});
    EXPECT_THROW(aggregatePatches({}, {}), NazarError);
    EXPECT_THROW(aggregatePatches({p}, {1.0, 2.0}), NazarError);
    EXPECT_THROW(aggregatePatches({p}, {-1.0}), NazarError);
    EXPECT_THROW(aggregatePatches({p, p}, {0.0, 0.0}), NazarError);
    nn::BnPatch two_layers =
        nn::BnPatch::fromStates({bn.state(), bn.state()});
    EXPECT_THROW(aggregatePatches({p, two_layers}, {1.0, 1.0}),
                 NazarError);
}

TEST_F(FedFixture, FederatedAdaptationImprovesDriftAccuracy)
{
    auto shards = makeShards(6, 32, 7);
    auto test = makeTestSet(20, 8);

    nn::Classifier before = base->clone();
    double no_adapt = before.accuracy(test.x, test.labels);

    FederatedConfig config;
    config.rounds = 3;
    config.local.steps = 3;
    FederatedResult result =
        federatedAdapt(config, *base, base->bnPatch(), shards);
    EXPECT_EQ(result.participatingDevices, 6u);
    EXPECT_EQ(result.totalSamples, 6u * 32u);
    EXPECT_EQ(result.roundObjectives.size(), 3u);

    nn::Classifier after = base->clone();
    after.applyBnPatch(result.patch);
    double fed = after.accuracy(test.x, test.labels);
    EXPECT_GT(fed, no_adapt + 0.05);
}

TEST_F(FedFixture, ApproachesCentralizedAdaptation)
{
    auto shards = makeShards(6, 32, 9);
    auto test = makeTestSet(20, 10);

    // Centralized: TENT on the pooled data (what the cloud path does).
    data::Dataset pooled;
    for (const auto &shard : shards)
        pooled.append(shard.samples);
    nn::Classifier central = base->clone();
    adapt::TentAdapter tent{adapt::AdaptConfig{}};
    tent.adapt(central, pooled.x);
    double central_acc = central.accuracy(test.x, test.labels);

    FederatedConfig config;
    config.rounds = 8;
    config.local.steps = 3;
    FederatedResult result =
        federatedAdapt(config, *base, base->bnPatch(), shards);
    nn::Classifier fed = base->clone();
    fed.applyBnPatch(result.patch);
    double fed_acc = fed.accuracy(test.x, test.labels);

    // Federated must recover most of the centralized gain.
    nn::Classifier frozen = base->clone();
    double no_adapt = frozen.accuracy(test.x, test.labels);
    EXPECT_GT(fed_acc - no_adapt, 0.5 * (central_acc - no_adapt));
}

TEST_F(FedFixture, TinyShardsSitOut)
{
    auto shards = makeShards(3, 32, 11);
    shards.push_back({99, data::Dataset{}}); // empty device
    FederatedConfig config;
    config.rounds = 1;
    config.local.steps = 2;
    FederatedResult result =
        federatedAdapt(config, *base, base->bnPatch(), shards);
    EXPECT_EQ(result.participatingDevices, 3u);
}

TEST_F(FedFixture, NoParticipantsLeavesInitUnchanged)
{
    std::vector<DeviceShard> shards = {{0, data::Dataset{}}};
    FederatedConfig config;
    nn::BnPatch init = base->bnPatch();
    FederatedResult result = federatedAdapt(config, *base, init, shards);
    EXPECT_TRUE(result.patch.approxEquals(init, 1e-12));
    EXPECT_EQ(result.participatingDevices, 0u);
    EXPECT_TRUE(result.roundObjectives.empty());
}

} // namespace
} // namespace nazar::fed
