/**
 * @file
 * End-to-end tests for the TCP ingest server: multi-client chaos
 * reconciliation, group commit vs per-record durability equivalence,
 * flush and protocol-error edges, and a full remote-mode Runner
 * matching the in-process run window for window.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "data/apps.h"
#include "driftlog/csv.h"
#include "net/ingest_client.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "server/ingest_server.h"
#include "server/load_gen.h"
#include "sim/runner.h"

namespace nazar::server {
namespace {

struct QuietLogs : ::testing::Test
{
    QuietLogs() { setLogLevel(LogLevel::kSilent); }
    ~QuietLogs() override { setLogLevel(LogLevel::kInfo); }
};

struct TempDir
{
    std::filesystem::path path;

    explicit TempDir(const std::string &tag)
        : path(std::filesystem::temp_directory_path() /
               ("nazar_server_" + tag + "_" +
                std::to_string(::getpid())))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }
};

nn::Classifier
tinyBase()
{
    return nn::Classifier(nn::Architecture::kResNet18, 8, 4, 1);
}

using ServerTest = QuietLogs;

TEST_F(ServerTest, ChaoticClientsReconcileExactly)
{
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud, ServerConfig{});
    server.start();

    LoadConfig load;
    load.port = server.port();
    load.clients = 4;
    load.eventsPerClient = 150;
    // Give-up needs maxAttempts consecutive drop draws; 0.5^4 over
    // 600 messages makes a zero-give-up run astronomically unlikely.
    load.chaos.dropProb = 0.5;
    load.chaos.dupProb = 0.2;
    load.chaos.seed = 7;
    LoadStats stats = runLoad(load);

    // Unique (device, seq) pairs: everything sent is accepted exactly
    // once, every chaos duplicate is dedup-rejected, nothing leaks.
    EXPECT_TRUE(stats.reconciled);
    EXPECT_GT(stats.sent, 0u);
    EXPECT_GT(stats.gaveUp, 0u); // chaos actually fired
    EXPECT_GT(stats.duplicates, 0u);
    EXPECT_EQ(stats.acksAccepted, stats.sent);
    EXPECT_EQ(stats.acksRejected, stats.duplicates);
    EXPECT_EQ(cloud.totalIngested(), stats.acksAccepted);
    EXPECT_EQ(cloud.dedupHits(), stats.acksRejected);
    // The dictionary earned its keep: most strings went as bare ids.
    EXPECT_GT(stats.dictHits, stats.dictStrings);

    server.stop();
    ServerStats ss = server.stats();
    EXPECT_EQ(ss.connections, 4u);
    EXPECT_EQ(ss.ingestMessages, stats.sent + stats.duplicates);
    EXPECT_EQ(ss.acksSent, ss.ingestMessages);
    EXPECT_EQ(ss.protocolErrors, 0u);
    EXPECT_GE(ss.batches, 1u);
    // Group commit did group: fewer batches than messages.
    EXPECT_LT(ss.batches, ss.ingestMessages);
}

TEST_F(ServerTest, GroupCommitRecoversTheSameStateAsPerRecord)
{
    // Same single-client stream into two persisted clouds, one group
    // committed and one flushed per record: a fresh cloud recovered
    // from either directory must be identical.
    auto runOne = [](const std::string &dir, bool group) {
        nn::Classifier base = tinyBase();
        sim::CloudConfig config;
        config.persist.dir = dir;
        config.persist.snapshotEvery = 64;
        sim::Cloud cloud(config, base);
        ServerConfig sc;
        sc.groupCommit = group;
        IngestServer server(cloud, sc);
        server.start();
        LoadConfig load;
        load.port = server.port();
        load.clients = 1; // deterministic arrival order
        load.eventsPerClient = 200;
        LoadStats stats = runLoad(load);
        EXPECT_TRUE(stats.reconciled);
        server.stop();
    };
    TempDir group_dir("group");
    TempDir record_dir("record");
    runOne(group_dir.path.string(), true);
    runOne(record_dir.path.string(), false);

    auto recover = [](const std::string &dir) {
        nn::Classifier base = tinyBase();
        sim::CloudConfig config;
        config.persist.dir = dir;
        sim::Cloud cloud(config, base);
        std::ostringstream csv;
        driftlog::writeCsv(cloud.driftLog().table(), csv);
        return std::tuple(csv.str(), cloud.totalIngested(),
                          cloud.uploadCount(), cloud.dedupHits());
    };
    EXPECT_EQ(recover(group_dir.path.string()),
              recover(record_dir.path.string()));
}

TEST_F(ServerTest, FlushArchivesBuffersAndByeReportsTallies)
{
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud);
    server.start();
    {
        net::IngestClient client(server.port());
        for (int i = 0; i < 10; ++i) {
            net::WireIngest m;
            m.device = 5;
            m.seq = static_cast<uint64_t>(i) + 1;
            m.entry.time = SimDate(i, 0);
            m.entry.deviceId = "dev-5";
            m.entry.location = "park";
            EXPECT_TRUE(client.sendIngest(m));
        }
        client.requestFlush();
        EXPECT_EQ(client.stats().acksAccepted, 10u);
        net::WireByeAck bye = client.bye();
        EXPECT_EQ(bye.totalIngested, 10u);
        EXPECT_EQ(bye.dedupHits, 0u);
    }
    EXPECT_EQ(cloud.driftLogSize(), 0u); // flush archived the buffer
    EXPECT_EQ(cloud.totalIngested(), 10u);
    server.stop();
    EXPECT_EQ(server.stats().flushes, 1u);
}

TEST_F(ServerTest, GarbageBytesDropTheConnectionNotTheServer)
{
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud);
    server.start();
    {
        net::TcpStream bad = net::TcpStream::connect(server.port());
        std::string garbage(64, '\xff');
        EXPECT_TRUE(bad.sendBytes(garbage));
        // The server rejects the frame and shuts the socket; the
        // stream eventually reads EOF rather than hanging.
        while (bad.recvFrame().has_value()) {
        }
        EXPECT_TRUE(bad.eofSeen());
    }
    // A well-behaved client on the same server still works.
    {
        net::IngestClient client(server.port());
        net::WireIngest m;
        m.device = 1;
        m.seq = 1;
        m.entry.deviceId = "dev-1";
        EXPECT_TRUE(client.sendIngest(m));
        client.bye();
    }
    server.stop();
    EXPECT_EQ(server.stats().protocolErrors, 1u);
    EXPECT_EQ(cloud.totalIngested(), 1u);
}

TEST_F(ServerTest, StageHistogramsDecomposeIngestLatency)
{
    // With the server in-process, runLoad() reads the per-stage
    // latency histograms the reader/committer recorded into. Tracing
    // stays OFF here: stage attribution must not require the rings.
    obs::Registry::global().reset();
    obs::setEnabled(true);
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud, ServerConfig{});
    server.start();

    LoadConfig load;
    load.port = server.port();
    load.clients = 2;
    load.eventsPerClient = 100;
    LoadStats stats = runLoad(load);
    server.stop();
    ASSERT_TRUE(stats.reconciled);

    ServerStats ss = server.stats();
    ASSERT_FALSE(stats.stages.empty());
    bool saw_queue_wait = false;
    bool saw_wal_sync = false;
    for (const StageStat &stage : stats.stages) {
        EXPECT_GT(stage.count, 0u) << stage.name;
        EXPECT_GE(stage.p99Ms, stage.p50Ms) << stage.name;
        EXPECT_GE(stage.p50Ms, 0.0) << stage.name;
        if (stage.name == "server.queue_wait") {
            saw_queue_wait = true;
            // Every accepted message waited in the queue exactly once.
            EXPECT_EQ(stage.count, ss.ingestMessages);
        }
        if (stage.name == "persist.wal.sync")
            saw_wal_sync = true;
    }
    EXPECT_TRUE(saw_queue_wait);
    EXPECT_TRUE(saw_wal_sync);
    obs::Registry::global().reset();
}

TEST_F(ServerTest, TraceContextLinksClientToCommitterAcrossThreads)
{
    // One chaotic in-process run with tracing on: a device upload must
    // be followable as a single trace from the client's root span
    // through the server's reader and committer threads.
    obs::Registry::global().reset();
    obs::setEnabled(true);
    obs::setTracing(true);
    obs::clearTrace();

    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud, ServerConfig{});
    server.start();
    LoadConfig load;
    load.port = server.port();
    load.clients = 2;
    load.eventsPerClient = 60;
    load.chaos.dropProb = 0.2;
    load.chaos.dupProb = 0.1;
    load.chaos.seed = 7;
    LoadStats stats = runLoad(load);
    server.stop();
    ASSERT_TRUE(stats.reconciled);

    std::vector<obs::TraceEvent> events = obs::traceEvents();
    obs::setTracing(false);
    obs::clearTrace();
    ASSERT_FALSE(events.empty());

    // Pick any client root span and collect its trace.
    size_t linked_roots = 0;
    for (const obs::TraceEvent &root : events) {
        if (std::string(root.name) != "net.client.ingest")
            continue;
        ASSERT_EQ(root.parentId, 0u);
        std::set<std::string> names;
        std::set<size_t> tids;
        for (const obs::TraceEvent &e : events) {
            if (e.traceId != root.traceId)
                continue;
            names.insert(e.name);
            tids.insert(e.threadId);
        }
        if (names.count("server.queue_wait") &&
            names.count("persist.wal.sync") &&
            names.count("server.ack") && tids.size() >= 2)
            ++linked_roots;
    }
    // Every acked upload produced a root; all of them should have
    // linked server-side children, but a ring overflow can drop
    // events, so require only that cross-thread linkage happened at
    // scale rather than exactly universally.
    EXPECT_GT(linked_roots, 0u);
    obs::Registry::global().reset();
}

TEST_F(ServerTest, RemoteRunMatchesInProcessWindowForWindow)
{
    data::AppSpec app = data::makeAnimalsApp(13, 8);
    data::WeatherModel weather(app.locations, 21, 2020);
    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = 2;
    config.workload.days = 21;
    config.workload.devicesPerLocation = 3;
    config.workload.imagesPerDevicePerDay = 3.0;
    config.train.epochs = 20;
    config.cloud.minAdaptSamples = 16;
    config.uploadSampleRate = 0.5;
    config.seed = 17;

    // One shared pretrained base so both runs (and the server's
    // cloud) hold identical weights.
    nn::Classifier base(config.arch, app.domain.featureDim(),
                        app.domain.numClasses(), config.seed);
    {
        Rng rng(config.seed);
        Rng data_rng = rng.fork();
        data::Dataset train = app.domain.makeBalancedDataset(
            app.trainPerClass, data_rng);
        base.trainSupervised(train.x, train.labels, config.train);
    }

    sim::RunResult local =
        sim::Runner(app, weather, config, &base).run();

    // The server's cloud gets the exact configuration the in-process
    // runner would have built.
    sim::CloudConfig cloud_config = config.cloud;
    cloud_config.ingestDedupWindow = config.faults.dedupWindow;
    sim::Cloud cloud(cloud_config, base);
    IngestServer server(cloud);
    server.start();
    sim::RunnerConfig remote_config = config;
    remote_config.remotePort = server.port();
    sim::RunResult remote =
        sim::Runner(app, weather, remote_config, &base).run();
    server.stop();

    ASSERT_EQ(remote.windows.size(), local.windows.size());
    for (size_t i = 0; i < local.windows.size(); ++i) {
        SCOPED_TRACE("window " + std::to_string(i));
        EXPECT_EQ(remote.windows[i].events, local.windows[i].events);
        EXPECT_EQ(remote.windows[i].correctAll,
                  local.windows[i].correctAll);
        EXPECT_EQ(remote.windows[i].correctDrifted,
                  local.windows[i].correctDrifted);
        EXPECT_EQ(remote.windows[i].flagged, local.windows[i].flagged);
        EXPECT_EQ(remote.windows[i].rootCauses,
                  local.windows[i].rootCauses);
        EXPECT_EQ(remote.windows[i].skippedCauses,
                  local.windows[i].skippedCauses);
        EXPECT_EQ(remote.windows[i].newVersions,
                  local.windows[i].newVersions);
        EXPECT_EQ(remote.windows[i].poolSize,
                  local.windows[i].poolSize);
    }
    // The telemetry really went over the wire into the server's cloud.
    EXPECT_GT(cloud.totalIngested(), 0u);
}

} // namespace
} // namespace nazar::server
