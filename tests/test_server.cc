/**
 * @file
 * End-to-end tests for the TCP ingest server: multi-client chaos
 * reconciliation, group commit vs per-record durability equivalence,
 * flush and protocol-error edges, and a full remote-mode Runner
 * matching the in-process run window for window.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "data/apps.h"
#include "driftlog/csv.h"
#include "net/ingest_client.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "persist/cloud_persist.h"
#include "server/ingest_server.h"
#include "server/load_gen.h"
#include "sim/runner.h"

namespace nazar::server {
namespace {

struct QuietLogs : ::testing::Test
{
    QuietLogs() { setLogLevel(LogLevel::kSilent); }
    ~QuietLogs() override { setLogLevel(LogLevel::kInfo); }
};

struct TempDir
{
    std::filesystem::path path;

    explicit TempDir(const std::string &tag)
        : path(std::filesystem::temp_directory_path() /
               ("nazar_server_" + tag + "_" +
                std::to_string(::getpid())))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }
};

nn::Classifier
tinyBase()
{
    return nn::Classifier(nn::Architecture::kResNet18, 8, 4, 1);
}

/**
 * The cloud's drift-log rows as sorted CSV lines: content-equal
 * clouds compare equal regardless of the (thread-dependent) arrival
 * interleaving of multi-client loads.
 */
std::vector<std::string>
sortedCsvLines(sim::Cloud &cloud)
{
    std::ostringstream os;
    driftlog::writeCsv(cloud.driftLog().table(), os);
    std::vector<std::string> lines;
    std::istringstream is(os.str());
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
}

using ServerTest = QuietLogs;

TEST_F(ServerTest, ChaoticClientsReconcileExactly)
{
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud, ServerConfig{});
    server.start();

    LoadConfig load;
    load.port = server.port();
    load.clients = 4;
    load.eventsPerClient = 150;
    // Give-up needs maxAttempts consecutive drop draws; 0.5^4 over
    // 600 messages makes a zero-give-up run astronomically unlikely.
    load.chaos.dropProb = 0.5;
    load.chaos.dupProb = 0.2;
    load.chaos.seed = 7;
    LoadStats stats = runLoad(load);

    // Unique (device, seq) pairs: everything sent is accepted exactly
    // once, every chaos duplicate is dedup-rejected, nothing leaks.
    EXPECT_TRUE(stats.reconciled);
    EXPECT_GT(stats.sent, 0u);
    EXPECT_GT(stats.gaveUp, 0u); // chaos actually fired
    EXPECT_GT(stats.duplicates, 0u);
    EXPECT_EQ(stats.acksAccepted, stats.sent);
    EXPECT_EQ(stats.acksRejected, stats.duplicates);
    EXPECT_EQ(cloud.totalIngested(), stats.acksAccepted);
    EXPECT_EQ(cloud.dedupHits(), stats.acksRejected);
    // The dictionary earned its keep: most strings went as bare ids.
    EXPECT_GT(stats.dictHits, stats.dictStrings);

    server.stop();
    ServerStats ss = server.stats();
    EXPECT_EQ(ss.connections, 4u);
    EXPECT_EQ(ss.ingestMessages, stats.sent + stats.duplicates);
    EXPECT_EQ(ss.acksSent, ss.ingestMessages);
    EXPECT_EQ(ss.protocolErrors, 0u);
    EXPECT_GE(ss.batches, 1u);
    // Group commit did group: fewer batches than messages.
    EXPECT_LT(ss.batches, ss.ingestMessages);
}

TEST_F(ServerTest, GroupCommitRecoversTheSameStateAsPerRecord)
{
    // Same single-client stream into two persisted clouds, one group
    // committed and one flushed per record: a fresh cloud recovered
    // from either directory must be identical.
    auto runOne = [](const std::string &dir, bool group) {
        nn::Classifier base = tinyBase();
        sim::CloudConfig config;
        config.persist.dir = dir;
        config.persist.snapshotEvery = 64;
        sim::Cloud cloud(config, base);
        ServerConfig sc;
        sc.groupCommit = group;
        IngestServer server(cloud, sc);
        server.start();
        LoadConfig load;
        load.port = server.port();
        load.clients = 1; // deterministic arrival order
        load.eventsPerClient = 200;
        LoadStats stats = runLoad(load);
        EXPECT_TRUE(stats.reconciled);
        server.stop();
    };
    TempDir group_dir("group");
    TempDir record_dir("record");
    runOne(group_dir.path.string(), true);
    runOne(record_dir.path.string(), false);

    auto recover = [](const std::string &dir) {
        nn::Classifier base = tinyBase();
        sim::CloudConfig config;
        config.persist.dir = dir;
        sim::Cloud cloud(config, base);
        std::ostringstream csv;
        driftlog::writeCsv(cloud.driftLog().table(), csv);
        return std::tuple(csv.str(), cloud.totalIngested(),
                          cloud.uploadCount(), cloud.dedupHits());
    };
    EXPECT_EQ(recover(group_dir.path.string()),
              recover(record_dir.path.string()));
}

TEST_F(ServerTest, FlushArchivesBuffersAndByeReportsTallies)
{
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud);
    server.start();
    {
        net::IngestClient client(server.port());
        for (int i = 0; i < 10; ++i) {
            net::WireIngest m;
            m.device = 5;
            m.seq = static_cast<uint64_t>(i) + 1;
            m.entry.time = SimDate(i, 0);
            m.entry.deviceId = "dev-5";
            m.entry.location = "park";
            EXPECT_TRUE(client.sendIngest(m));
        }
        client.requestFlush();
        EXPECT_EQ(client.stats().acksAccepted, 10u);
        net::WireByeAck bye = client.bye();
        EXPECT_EQ(bye.totalIngested, 10u);
        EXPECT_EQ(bye.dedupHits, 0u);
    }
    EXPECT_EQ(cloud.driftLogSize(), 0u); // flush archived the buffer
    EXPECT_EQ(cloud.totalIngested(), 10u);
    server.stop();
    EXPECT_EQ(server.stats().flushes, 1u);
}

TEST_F(ServerTest, GarbageBytesDropTheConnectionNotTheServer)
{
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud);
    server.start();
    {
        net::TcpStream bad = net::TcpStream::connect(server.port());
        std::string garbage(64, '\xff');
        EXPECT_TRUE(bad.sendBytes(garbage));
        // The server rejects the frame and shuts the socket; the
        // stream eventually reads EOF rather than hanging.
        while (bad.recvFrame().has_value()) {
        }
        EXPECT_TRUE(bad.eofSeen());
    }
    // A well-behaved client on the same server still works.
    {
        net::IngestClient client(server.port());
        net::WireIngest m;
        m.device = 1;
        m.seq = 1;
        m.entry.deviceId = "dev-1";
        EXPECT_TRUE(client.sendIngest(m));
        client.bye();
    }
    server.stop();
    EXPECT_EQ(server.stats().protocolErrors, 1u);
    EXPECT_EQ(cloud.totalIngested(), 1u);
}

TEST_F(ServerTest, StageHistogramsDecomposeIngestLatency)
{
    // With the server in-process, runLoad() reads the per-stage
    // latency histograms the reader/committer recorded into. Tracing
    // stays OFF here: stage attribution must not require the rings.
    obs::Registry::global().reset();
    obs::setEnabled(true);
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud, ServerConfig{});
    server.start();

    LoadConfig load;
    load.port = server.port();
    load.clients = 2;
    load.eventsPerClient = 100;
    LoadStats stats = runLoad(load);
    server.stop();
    ASSERT_TRUE(stats.reconciled);

    ServerStats ss = server.stats();
    ASSERT_FALSE(stats.stages.empty());
    bool saw_queue_wait = false;
    bool saw_wal_sync = false;
    for (const StageStat &stage : stats.stages) {
        EXPECT_GT(stage.count, 0u) << stage.name;
        EXPECT_GE(stage.p99Ms, stage.p50Ms) << stage.name;
        EXPECT_GE(stage.p50Ms, 0.0) << stage.name;
        if (stage.name == "server.queue_wait") {
            saw_queue_wait = true;
            // Every accepted message waited in the queue exactly once.
            EXPECT_EQ(stage.count, ss.ingestMessages);
        }
        if (stage.name == "persist.wal.sync")
            saw_wal_sync = true;
    }
    EXPECT_TRUE(saw_queue_wait);
    EXPECT_TRUE(saw_wal_sync);
    obs::Registry::global().reset();
}

TEST_F(ServerTest, TraceContextLinksClientToCommitterAcrossThreads)
{
    // One chaotic in-process run with tracing on: a device upload must
    // be followable as a single trace from the client's root span
    // through the server's reader and committer threads.
    obs::Registry::global().reset();
    obs::setEnabled(true);
    obs::setTracing(true);
    obs::clearTrace();

    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    IngestServer server(cloud, ServerConfig{});
    server.start();
    LoadConfig load;
    load.port = server.port();
    load.clients = 2;
    load.eventsPerClient = 60;
    load.chaos.dropProb = 0.2;
    load.chaos.dupProb = 0.1;
    load.chaos.seed = 7;
    LoadStats stats = runLoad(load);
    server.stop();
    ASSERT_TRUE(stats.reconciled);

    std::vector<obs::TraceEvent> events = obs::traceEvents();
    obs::setTracing(false);
    obs::clearTrace();
    ASSERT_FALSE(events.empty());

    // Pick any client root span and collect its trace.
    size_t linked_roots = 0;
    for (const obs::TraceEvent &root : events) {
        if (std::string(root.name) != "net.client.ingest")
            continue;
        ASSERT_EQ(root.parentId, 0u);
        std::set<std::string> names;
        std::set<size_t> tids;
        for (const obs::TraceEvent &e : events) {
            if (e.traceId != root.traceId)
                continue;
            names.insert(e.name);
            tids.insert(e.threadId);
        }
        if (names.count("server.queue_wait") &&
            names.count("persist.wal.sync") &&
            names.count("server.ack") && tids.size() >= 2)
            ++linked_roots;
    }
    // Every acked upload produced a root; all of them should have
    // linked server-side children, but a ring overflow can drop
    // events, so require only that cross-thread linkage happened at
    // scale rather than exactly universally.
    EXPECT_GT(linked_roots, 0u);
    obs::Registry::global().reset();
}

TEST_F(ServerTest, RemoteRunMatchesInProcessWindowForWindow)
{
    data::AppSpec app = data::makeAnimalsApp(13, 8);
    data::WeatherModel weather(app.locations, 21, 2020);
    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = 2;
    config.workload.days = 21;
    config.workload.devicesPerLocation = 3;
    config.workload.imagesPerDevicePerDay = 3.0;
    config.train.epochs = 20;
    config.cloud.minAdaptSamples = 16;
    config.uploadSampleRate = 0.5;
    config.seed = 17;

    // One shared pretrained base so both runs (and the server's
    // cloud) hold identical weights.
    nn::Classifier base(config.arch, app.domain.featureDim(),
                        app.domain.numClasses(), config.seed);
    {
        Rng rng(config.seed);
        Rng data_rng = rng.fork();
        data::Dataset train = app.domain.makeBalancedDataset(
            app.trainPerClass, data_rng);
        base.trainSupervised(train.x, train.labels, config.train);
    }

    sim::RunResult local =
        sim::Runner(app, weather, config, &base).run();

    // The server's cloud gets the exact configuration the in-process
    // runner would have built.
    sim::CloudConfig cloud_config = config.cloud;
    cloud_config.ingestDedupWindow = config.faults.dedupWindow;
    sim::Cloud cloud(cloud_config, base);
    IngestServer server(cloud);
    server.start();
    sim::RunnerConfig remote_config = config;
    remote_config.remotePort = server.port();
    sim::RunResult remote =
        sim::Runner(app, weather, remote_config, &base).run();
    server.stop();

    ASSERT_EQ(remote.windows.size(), local.windows.size());
    for (size_t i = 0; i < local.windows.size(); ++i) {
        SCOPED_TRACE("window " + std::to_string(i));
        EXPECT_EQ(remote.windows[i].events, local.windows[i].events);
        EXPECT_EQ(remote.windows[i].correctAll,
                  local.windows[i].correctAll);
        EXPECT_EQ(remote.windows[i].correctDrifted,
                  local.windows[i].correctDrifted);
        EXPECT_EQ(remote.windows[i].flagged, local.windows[i].flagged);
        EXPECT_EQ(remote.windows[i].rootCauses,
                  local.windows[i].rootCauses);
        EXPECT_EQ(remote.windows[i].skippedCauses,
                  local.windows[i].skippedCauses);
        EXPECT_EQ(remote.windows[i].newVersions,
                  local.windows[i].newVersions);
        EXPECT_EQ(remote.windows[i].poolSize,
                  local.windows[i].poolSize);
    }
    // The telemetry really went over the wire into the server's cloud.
    EXPECT_GT(cloud.totalIngested(), 0u);
}

TEST_F(ServerTest, CrashRestartSweepMatchesUncrashedOracleExactly)
{
    nn::Classifier base = tinyBase();

    auto makeLoad = [](uint16_t port) {
        LoadConfig load;
        load.port = port;
        load.clients = 3;
        load.eventsPerClient = 120;
        load.chaos.dropProb = 0.3;
        load.chaos.dupProb = 0.1;
        load.chaos.seed = 21;
        load.reconnect.enabled = true;
        load.reconnect.backoffBaseMs = 2.0;
        load.reconnect.backoffCapMs = 50.0;
        load.reconnect.maxAttempts = 200;
        return load;
    };

    // The oracle: the same chaotic load against an uncrashed,
    // in-memory cloud. The chaos RNG consumes identical draws whether
    // or not a send throws (the dup draw happens before any send), so
    // the crash runs below must give up and duplicate the exact same
    // messages — the accepted set, and therefore the drift-log
    // content, must match the oracle's bit for bit.
    std::vector<std::string> oracle_lines;
    LoadStats oracle;
    {
        sim::Cloud cloud(sim::CloudConfig{}, base);
        ServerConfig sc;
        sc.groupCommit = false;
        IngestServer server(cloud, sc);
        server.start();
        oracle = runLoad(makeLoad(server.port()));
        server.stop();
        ASSERT_TRUE(oracle.reconciled);
        oracle_lines = sortedCsvLines(cloud);
    }

    // Hit arithmetic with per-record commits: every WAL append fires
    // wal.append.partial then wal.append.post (2 hits per record),
    // and the 64th append (snapshotEvery) walks the snapshot path's
    // four sites at hits 129..132 — so this k sample sweeps every
    // PR 5 injector site.
    const uint64_t ks[] = {1, 2, 129, 130, 131, 132};
    std::set<std::string> sites;
    for (uint64_t k : ks) {
        SCOPED_TRACE("crashAtHit=" + std::to_string(k));
        TempDir dir("sweep" + std::to_string(k));
        auto cloudConfig = [&dir](uint64_t crash_at) {
            sim::CloudConfig cc;
            cc.persist.dir = dir.path.string();
            cc.persist.snapshotEvery = 64;
            cc.persist.crashAtHit = crash_at;
            return cc;
        };
        auto cloud =
            std::make_unique<sim::Cloud>(cloudConfig(k), base);
        ServerConfig sc;
        sc.groupCommit = false;
        auto server = std::make_unique<IngestServer>(*cloud, sc);
        server->start();
        const uint16_t port = server->port();

        LoadStats stats;
        std::string load_error;
        std::atomic<bool> load_done{false};
        std::thread loader([&] {
            try {
                stats = runLoad(makeLoad(port));
            } catch (const NazarError &e) {
                load_error = e.what();
            }
            load_done = true;
        });
        bool restarted = false;
        while (!load_done.load()) {
            if (!restarted &&
                server->waitCrashed(std::chrono::milliseconds(10))) {
                sites.insert(server->crashSite());
                server->stop();
                server.reset();
                cloud.reset(); // release the WAL before recovery
                cloud = std::make_unique<sim::Cloud>(cloudConfig(0),
                                                     base);
                ServerConfig rc;
                rc.groupCommit = false;
                rc.port = port; // clients reconnect to the same port
                server = std::make_unique<IngestServer>(*cloud, rc);
                server->start();
                restarted = true;
            } else if (restarted) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
            }
        }
        loader.join();
        ASSERT_TRUE(load_error.empty()) << load_error;
        ASSERT_TRUE(restarted) << "crash never fired";
        EXPECT_TRUE(stats.reconciled);
        EXPECT_EQ(stats.acksAccepted, stats.sent);
        EXPECT_EQ(stats.acksRejected, stats.duplicates);
        EXPECT_GE(stats.reconnects, 3u); // every client rode through
        // The chaos RNG stayed aligned with the oracle run.
        EXPECT_EQ(stats.sent, oracle.sent);
        EXPECT_EQ(stats.gaveUp, oracle.gaveUp);
        EXPECT_EQ(stats.duplicates, oracle.duplicates);

        server->stop();
        // Exactly-once through the crash: accepted acks equal durable
        // rows. (No relation is asserted between the cloud's dedup
        // hits and acksRejected: a duplicate copy that died in the
        // crashed server's queue after its original landed is credited
        // its rejection during resume without a resend, so the server
        // never sees it — while crash retransmits of landed messages
        // add hits the client absorbs as resentRejected.)
        EXPECT_EQ(cloud->totalIngested(), stats.acksAccepted);
        EXPECT_EQ(sortedCsvLines(*cloud), oracle_lines);

        // Cold recovery of the directory agrees with what the clients
        // believe was accepted.
        server.reset();
        cloud.reset();
        persist::RecoveredState rec = persist::recoverDir(dir.path);
        EXPECT_EQ(rec.totalIngested, stats.acksAccepted);
    }
    EXPECT_TRUE(sites.count("wal.append.partial"));
    EXPECT_TRUE(sites.count("wal.append.post"));
    EXPECT_GE(sites.size(), 4u);
}

TEST_F(ServerTest, DiskFaultDegradesServerThenRestartReconciles)
{
    // An injected WAL-sync failure latches the committer's durability
    // layer. The server must NOT die: it stops acking, advises
    // clients kBusy, and reports diskFaulted() so a supervisor can
    // restart it over the recovered state — after which resuming
    // clients reconcile exactly-once, same as a crash restart.
    nn::Classifier base = tinyBase();
    TempDir dir("diskfault");
    auto cloudConfig = [&dir](persist::DiskFaultPlan fault) {
        sim::CloudConfig cc;
        cc.persist.dir = dir.path.string();
        cc.persist.snapshotEvery = 64;
        cc.persist.fault = std::move(fault);
        return cc;
    };
    // The sync path runs once per group-commit batch: hit 3 latches a
    // few batches into the load.
    auto cloud = std::make_unique<sim::Cloud>(
        cloudConfig({"env.wal.sync", 3, persist::FaultKind::kSyncFail}),
        base);
    auto server = std::make_unique<IngestServer>(*cloud, ServerConfig{});
    server->start();
    const uint16_t port = server->port();

    LoadConfig load;
    load.port = port;
    load.clients = 3;
    load.eventsPerClient = 120;
    load.chaos.seed = 33;
    load.reconnect.enabled = true;
    load.reconnect.backoffBaseMs = 2.0;
    load.reconnect.backoffCapMs = 50.0;
    load.reconnect.maxAttempts = 200;
    load.reconnect.recvTimeoutMs = 1000;

    LoadStats stats;
    std::string load_error;
    std::atomic<bool> load_done{false};
    std::thread loader([&] {
        try {
            stats = runLoad(load);
        } catch (const NazarError &e) {
            load_error = e.what();
        }
        load_done = true;
    });

    bool restarted = false;
    uint64_t faults_seen = 0;
    while (!load_done.load()) {
        if (!restarted &&
            server->waitDiskFaulted(std::chrono::milliseconds(10))) {
            // Latched, not dead: the server object is still running
            // and still reports its own demise coherently.
            EXPECT_TRUE(server->diskFaulted());
            EXPECT_EQ(server->diskFaultSite(), "env.wal.sync");
            server->stop();
            faults_seen = server->stats().diskFaults;
            server.reset();
            cloud.reset(); // release the WAL before recovery
            // The restart IS the fault-clear: fresh Env, recovery
            // from the last durable state (the dropped dirty tail is
            // simply unacknowledged work the clients resend).
            cloud = std::make_unique<sim::Cloud>(cloudConfig({}), base);
            ServerConfig rc;
            rc.port = port; // clients reconnect to the same port
            server = std::make_unique<IngestServer>(*cloud, rc);
            server->start();
            restarted = true;
        } else if (restarted) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    loader.join();
    ASSERT_TRUE(load_error.empty()) << load_error;
    ASSERT_TRUE(restarted) << "disk fault never latched";
    EXPECT_GE(faults_seen, 1u);
    EXPECT_TRUE(stats.reconciled);
    EXPECT_EQ(stats.acksAccepted, stats.sent);
    // At least one client was mid-stream at the latch and rode
    // through the restart (a client that drained all its events
    // before the fault never needs to reconnect).
    EXPECT_GE(stats.reconnects, 1u);

    server->stop();
    EXPECT_EQ(cloud->totalIngested(), stats.acksAccepted);
    server.reset();
    cloud.reset();
    // The poisoned-then-recovered directory is intact: the offline
    // scrub finds no integrity issues and cold recovery agrees with
    // the clients' view of what was accepted.
    persist::ScrubReport report = persist::scrubStateDir(dir.path);
    EXPECT_TRUE(report.ok)
        << (report.issues.empty() ? "" : report.issues[0]);
    persist::RecoveredState rec = persist::recoverDir(dir.path);
    EXPECT_EQ(rec.totalIngested, stats.acksAccepted);
}

TEST_F(ServerTest, BoundedQueueBackpressureHoldsUnderSlowCommitter)
{
    obs::Registry::global().reset();
    obs::setEnabled(true);
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    ServerConfig sc;
    sc.maxQueue = 4;
    sc.commitDelayUs = 1500; // deliberately slow committer
    IngestServer server(cloud, sc);
    server.start();

    LoadConfig load;
    load.port = server.port();
    load.clients = 4;
    load.eventsPerClient = 150;
    LoadStats stats;
    std::string load_error;
    std::atomic<bool> done{false};
    std::thread loader([&] {
        try {
            stats = runLoad(load);
        } catch (const NazarError &e) {
            load_error = e.what();
        }
        done = true;
    });
    // Sample the queue-depth gauge while the load runs: the bound
    // must hold at every instant, not just at the end.
    obs::Gauge &depth =
        obs::Registry::global().gauge("server.queue_depth");
    double max_depth = 0.0;
    while (!done.load()) {
        max_depth = std::max(max_depth, depth.value());
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    loader.join();
    server.stop();
    ASSERT_TRUE(load_error.empty()) << load_error;

    // Backpressure throttles; it never loses or duplicates.
    EXPECT_TRUE(stats.reconciled);
    EXPECT_EQ(stats.sent, 600u);
    EXPECT_EQ(stats.acksAccepted, 600u);
    EXPECT_EQ(cloud.totalIngested(), 600u);
    EXPECT_LE(max_depth, static_cast<double>(sc.maxQueue));
    EXPECT_GE(max_depth, 1.0); // the queue really did fill
    ServerStats ss = server.stats();
    EXPECT_EQ(ss.ingestMessages, 600u);
    EXPECT_EQ(ss.protocolErrors, 0u);
    EXPECT_GE(ss.busySent, 1u);    // advisories went out...
    EXPECT_GE(stats.busySeen, 1u); // ...and the clients saw them
    obs::Registry::global().reset();
}

TEST_F(ServerTest, RemoteRunSurvivesMidRunRestartWindowForWindow)
{
    data::AppSpec app = data::makeAnimalsApp(13, 8);
    data::WeatherModel weather(app.locations, 21, 2020);
    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = 2;
    config.workload.days = 21;
    config.workload.devicesPerLocation = 3;
    config.workload.imagesPerDevicePerDay = 3.0;
    config.train.epochs = 20;
    config.cloud.minAdaptSamples = 16;
    config.uploadSampleRate = 0.5;
    config.seed = 17;

    nn::Classifier base(config.arch, app.domain.featureDim(),
                        app.domain.numClasses(), config.seed);
    {
        Rng rng(config.seed);
        Rng data_rng = rng.fork();
        data::Dataset train = app.domain.makeBalancedDataset(
            app.trainPerClass, data_rng);
        base.trainSupervised(train.x, train.labels, config.train);
    }

    sim::RunResult local =
        sim::Runner(app, weather, config, &base).run();

    // The server's cloud persists to disk with the crash injector
    // armed low: it fires on the committer's second WAL batch, well
    // inside window 1's stream and far from any cycle commit.
    TempDir dir("remote_restart");
    sim::CloudConfig cloud_config = config.cloud;
    cloud_config.ingestDedupWindow = config.faults.dedupWindow;
    cloud_config.persist.dir = dir.path.string();
    cloud_config.persist.snapshotEvery = 128;
    cloud_config.persist.crashAtHit = 3;
    auto cloud = std::make_unique<sim::Cloud>(cloud_config, base);
    auto server = std::make_unique<IngestServer>(*cloud);
    server->start();
    const uint16_t port = server->port();

    sim::RunnerConfig remote_config = config;
    remote_config.remotePort = port;
    remote_config.remoteReconnect.enabled = true;
    remote_config.remoteReconnect.backoffBaseMs = 2.0;
    remote_config.remoteReconnect.backoffCapMs = 50.0;
    remote_config.remoteReconnect.maxAttempts = 400;

    std::atomic<bool> run_done{false};
    std::atomic<bool> restarted{false};
    std::thread harness([&] {
        while (!run_done.load()) {
            if (server->waitCrashed(std::chrono::milliseconds(10))) {
                server->stop();
                server.reset();
                cloud.reset(); // release the WAL before recovery
                sim::CloudConfig recovered = cloud_config;
                recovered.persist.crashAtHit = 0;
                cloud = std::make_unique<sim::Cloud>(recovered, base);
                ServerConfig rc;
                rc.port = port;
                server = std::make_unique<IngestServer>(*cloud, rc);
                server->start();
                restarted = true;
                return;
            }
        }
    });
    sim::RunResult remote =
        sim::Runner(app, weather, remote_config, &base).run();
    run_done = true;
    harness.join();
    server->stop();
    ASSERT_TRUE(restarted.load()) << "crash never fired mid-run";

    // Crash, reconnect, resume, retransmit — and the run is still
    // indistinguishable from the in-process one, window for window.
    ASSERT_EQ(remote.windows.size(), local.windows.size());
    for (size_t i = 0; i < local.windows.size(); ++i) {
        SCOPED_TRACE("window " + std::to_string(i));
        EXPECT_EQ(remote.windows[i].events, local.windows[i].events);
        EXPECT_EQ(remote.windows[i].correctAll,
                  local.windows[i].correctAll);
        EXPECT_EQ(remote.windows[i].correctDrifted,
                  local.windows[i].correctDrifted);
        EXPECT_EQ(remote.windows[i].flagged, local.windows[i].flagged);
        EXPECT_EQ(remote.windows[i].rootCauses,
                  local.windows[i].rootCauses);
        EXPECT_EQ(remote.windows[i].skippedCauses,
                  local.windows[i].skippedCauses);
        EXPECT_EQ(remote.windows[i].newVersions,
                  local.windows[i].newVersions);
        EXPECT_EQ(remote.windows[i].poolSize,
                  local.windows[i].poolSize);
    }
    EXPECT_GT(cloud->totalIngested(), 0u);
}

TEST_F(ServerTest, MidFrameServerDeathSurfacesCleanlyThenResumes)
{
    // A "server" that dies mid-ack: handshake, read three ingests,
    // write HALF of a valid ack frame, sever. The client must surface
    // a clean error (no hang, no crash) — and with a reconnect policy
    // it must ride into a real server and deliver exactly once.
    auto fakeServeOnce = [](net::TcpListener &listener) {
        net::TcpStream peer = listener.accept();
        auto hello = peer.recvFrame(); // kHello
        if (!hello.has_value())
            return;
        peer.sendFrame(net::MsgType::kHelloAck,
                       net::encodeHelloAck(net::WireHelloAck{}));
        for (int i = 0; i < 3; ++i)
            peer.recvFrame();
        net::WireAck ack;
        ack.device = 7;
        ack.seq = 1;
        ack.accepted = true;
        std::string frame =
            net::encodeFrame(net::MsgType::kAck, net::encodeAck(ack));
        peer.sendBytes(frame.substr(0, frame.size() / 2));
        peer.close();
        listener.close();
    };
    auto sendThree = [](net::IngestClient &client) {
        for (int i = 0; i < 3; ++i) {
            net::WireIngest m;
            m.device = 7;
            m.seq = static_cast<uint64_t>(i) + 1;
            m.entry.time = SimDate(i, 0);
            m.entry.deviceId = "dev-7";
            m.entry.location = "park";
            EXPECT_TRUE(client.sendIngest(m));
        }
    };

    // Without a policy: a clean NazarError, not a hang.
    {
        net::TcpListener fake;
        fake.listen(0);
        std::thread fake_thread([&] { fakeServeOnce(fake); });
        net::IngestClient client(fake.port());
        sendThree(client);
        EXPECT_THROW(client.bye(), NazarError);
        fake_thread.join();
    }

    // With a policy: the torn ack triggers a resume; a real server
    // comes up on the same port and the retransmits land exactly once.
    {
        net::TcpListener fake;
        fake.listen(0);
        const uint16_t port = fake.port();
        std::thread fake_thread([&] { fakeServeOnce(fake); });
        net::ReconnectPolicy policy;
        policy.enabled = true;
        policy.backoffBaseMs = 2.0;
        policy.backoffCapMs = 20.0;
        policy.maxAttempts = 500;
        net::IngestClient client(port, {}, "resume-client", policy);
        sendThree(client);
        net::WireByeAck bye_ack;
        std::thread driver([&] { bye_ack = client.bye(); });
        fake_thread.join(); // the fake is dead, port is free
        nn::Classifier base = tinyBase();
        sim::Cloud cloud(sim::CloudConfig{}, base);
        ServerConfig sc;
        sc.port = port;
        IngestServer server(cloud, sc);
        server.start();
        driver.join();
        server.stop();
        EXPECT_EQ(bye_ack.totalIngested, 3u);
        EXPECT_EQ(cloud.totalIngested(), 3u);
        EXPECT_EQ(client.stats().sent, 3u);
        EXPECT_EQ(client.stats().acksAccepted, 3u);
        EXPECT_GE(client.stats().reconnects, 1u);
        EXPECT_EQ(client.stats().resent, 3u);
    }
}

TEST_F(ServerTest, SilentConnectionIsReapedByTheReceiveDeadline)
{
    nn::Classifier base = tinyBase();
    sim::Cloud cloud(sim::CloudConfig{}, base);
    ServerConfig sc;
    sc.readTimeoutMs = 100;
    IngestServer server(cloud, sc);
    server.start();
    {
        // Connect and say nothing: the reader's receive deadline must
        // reap the connection instead of pinning the thread forever.
        net::TcpStream silent = net::TcpStream::connect(server.port());
        auto frame = silent.recvFrame(); // blocks until the reap
        EXPECT_FALSE(frame.has_value());
        EXPECT_TRUE(silent.eofSeen());
    }
    // A live client on the same server is unaffected by the reap.
    {
        net::IngestClient client(server.port());
        net::WireIngest m;
        m.device = 1;
        m.seq = 1;
        m.entry.deviceId = "dev-1";
        EXPECT_TRUE(client.sendIngest(m));
        client.bye();
    }
    server.stop();
    ServerStats ss = server.stats();
    EXPECT_EQ(ss.readTimeouts, 1u);
    EXPECT_EQ(ss.protocolErrors, 0u); // a slow peer is not a bad peer
    EXPECT_EQ(cloud.totalIngested(), 1u);
}

} // namespace
} // namespace nazar::server
