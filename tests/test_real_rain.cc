/**
 * @file
 * Tests for the real-rain (RID) domain emulation.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/real_rain.h"

namespace nazar::data {
namespace {

TEST(RealRain, HalfCleanHalfRid)
{
    AppSpec app = makeCityscapesApp();
    RealRainSet set = makeRealRainSet(app, 200);
    EXPECT_EQ(set.data.size(), 400u);
    size_t rid = 0;
    for (bool b : set.isRid)
        rid += b ? 1 : 0;
    EXPECT_EQ(rid, 200u);
    // Clean first, RID second.
    EXPECT_FALSE(set.isRid.front());
    EXPECT_TRUE(set.isRid.back());
}

TEST(RealRain, OnlySharedClasses)
{
    AppSpec app = makeCityscapesApp();
    RealRainSet set = makeRealRainSet(app, 200);
    std::set<int> labels(set.data.labels.begin(),
                         set.data.labels.end());
    // Exactly the five classes shared between the two datasets.
    EXPECT_EQ(labels.size(), 5u);
    for (int label : labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label,
                  static_cast<int>(app.domain.numClasses()));
    }
}

TEST(RealRain, DeterministicFromSeed)
{
    AppSpec app = makeCityscapesApp();
    RealRainSet a = makeRealRainSet(app, 50, 7);
    RealRainSet b = makeRealRainSet(app, 50, 7);
    EXPECT_TRUE(a.data.x.approxEquals(b.data.x));
    EXPECT_EQ(a.data.labels, b.data.labels);
}

TEST(RealRain, RidDomainShiftsDistribution)
{
    // The RID half must be visibly displaced from the clean half:
    // compare the mean feature vectors.
    AppSpec app = makeCityscapesApp();
    RealRainSet set = makeRealRainSet(app, 500);
    std::vector<double> clean_mean(32, 0.0), rid_mean(32, 0.0);
    for (size_t r = 0; r < set.data.size(); ++r) {
        for (size_t c = 0; c < 32; ++c) {
            if (set.isRid[r])
                rid_mean[c] += set.data.x(r, c) / 500.0;
            else
                clean_mean[c] += set.data.x(r, c) / 500.0;
        }
    }
    double dist = 0.0;
    for (size_t c = 0; c < 32; ++c)
        dist += (rid_mean[c] - clean_mean[c]) *
                (rid_mean[c] - clean_mean[c]);
    EXPECT_GT(std::sqrt(dist), 0.5);
}

TEST(RealRain, DomainTransformIsStochasticButCentered)
{
    Rng rng(3);
    std::vector<double> x(32, 1.0);
    auto a = ridDomainTransform(x, rng);
    auto b = ridDomainTransform(x, rng);
    EXPECT_NE(a, b); // sensor noise differs per call
    EXPECT_EQ(a.size(), 32u);
}

} // namespace
} // namespace nazar::data
