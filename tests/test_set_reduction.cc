/**
 * @file
 * Tests for set reduction, including the paper's example merge of
 * {snow, new_york} into {snow}.
 */
#include <gtest/gtest.h>

#include "paper_example.h"
#include "rca/set_reduction.h"

namespace nazar::rca {
namespace {

using testing::paperConfig;
using testing::paperTable2;
using testing::weatherAndLocation;
using testing::weatherIs;

/** Causes passing the paper's default thresholds, in rank order. */
std::vector<RankedCause>
passingCauses()
{
    driftlog::Table t = paperTable2();
    RcaConfig config = paperConfig();
    auto all = Fim(t, config).mine();
    std::vector<RankedCause> passing;
    for (const auto &c : all)
        if (passesThresholds(c.metrics, config))
            passing.push_back(c);
    return passing;
}

TEST(SetReduction, PaperExampleMergesFineCausesIntoSnow)
{
    auto groups = reduceCauses(passingCauses());
    ASSERT_FALSE(groups.empty());
    // {snow} is top-ranked and has no proper subset: it is a key.
    EXPECT_EQ(groups.front().key.attrs, weatherIs("snow"));
    // Every snow-refinement must be merged into the {snow} group.
    bool found_snow_ny = false;
    for (const auto &fine : groups.front().merged) {
        EXPECT_TRUE(
            weatherIs("snow").isProperSubsetOf(fine.attrs));
        if (fine.attrs == weatherAndLocation("snow", "new_york"))
            found_snow_ny = true;
    }
    EXPECT_TRUE(found_snow_ny);
}

TEST(SetReduction, KeysHaveNoProperSubsetInList)
{
    auto causes = passingCauses();
    auto groups = reduceCauses(causes);
    for (const auto &g : groups)
        for (const auto &c : causes)
            EXPECT_FALSE(c.attrs.isProperSubsetOf(g.key.attrs))
                << c.attrs.toString() << " subsumes key "
                << g.key.attrs.toString();
}

TEST(SetReduction, EveryCauseAppearsExactlyOnce)
{
    auto causes = passingCauses();
    auto groups = reduceCauses(causes);
    size_t total = 0;
    for (const auto &g : groups)
        total += 1 + g.merged.size();
    EXPECT_EQ(total, causes.size());
}

TEST(SetReduction, MergesIntoHighestRankedSubset)
{
    // Construct a synthetic ranked list: fine cause {a=1, b=2} with
    // two possible parents {a=1} (rank 0) and {b=2} (rank 2, worse).
    using driftlog::Value;
    auto mk = [](std::vector<Attribute> attrs, double rr) {
        RankedCause c;
        c.attrs = AttributeSet(std::move(attrs));
        c.metrics.riskRatio = rr;
        c.metrics.confidence = 1.0;
        return c;
    };
    std::vector<RankedCause> ranked = {
        mk({{"a", Value(1)}}, 5.0),
        mk({{"a", Value(1)}, {"b", Value(2)}}, 4.0),
        mk({{"b", Value(2)}}, 3.0),
    };
    auto groups = reduceCauses(ranked);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].key.attrs, ranked[0].attrs);
    ASSERT_EQ(groups[0].merged.size(), 1u);
    EXPECT_EQ(groups[0].merged[0].attrs, ranked[1].attrs);
    EXPECT_TRUE(groups[1].merged.empty());
}

TEST(SetReduction, TransitiveChainsResolveToUltimateKey)
{
    using driftlog::Value;
    auto mk = [](std::vector<Attribute> attrs, double rr) {
        RankedCause c;
        c.attrs = AttributeSet(std::move(attrs));
        c.metrics.riskRatio = rr;
        return c;
    };
    // {a} > {a,b} > {a,b,c}: all collapse into the {a} group.
    std::vector<RankedCause> ranked = {
        mk({{"a", Value(1)}}, 9.0),
        mk({{"a", Value(1)}, {"b", Value(2)}}, 8.0),
        mk({{"a", Value(1)}, {"b", Value(2)}, {"c", Value(3)}}, 7.0),
    };
    auto groups = reduceCauses(ranked);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].merged.size(), 2u);
}

TEST(SetReduction, DisjointCausesStaySeparate)
{
    using driftlog::Value;
    auto mk = [](std::vector<Attribute> attrs, double rr) {
        RankedCause c;
        c.attrs = AttributeSet(std::move(attrs));
        c.metrics.riskRatio = rr;
        return c;
    };
    std::vector<RankedCause> ranked = {
        mk({{"weather", Value("snow")}}, 5.0),
        mk({{"weather", Value("rain")}}, 4.0),
    };
    auto groups = reduceCauses(ranked);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_TRUE(groups[0].merged.empty());
    EXPECT_TRUE(groups[1].merged.empty());
}

TEST(SetReduction, OutputOrderedByKeyRank)
{
    auto groups = reduceCauses(passingCauses());
    for (size_t i = 1; i < groups.size(); ++i)
        EXPECT_GE(groups[i - 1].key.metrics.riskRatio,
                  groups[i].key.metrics.riskRatio);
}

TEST(SetReduction, EmptyInputEmptyOutput)
{
    EXPECT_TRUE(reduceCauses({}).empty());
}

} // namespace
} // namespace nazar::rca
