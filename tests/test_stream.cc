/**
 * @file
 * Tests for streaming-workload generation.
 */
#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "data/stream.h"

namespace nazar::data {
namespace {

struct Fixture
{
    AppSpec app = makeAnimalsApp(13, 10); // 10 classes: fast
    WeatherModel weather{app.locations, kSimPeriodDays, 2020};
};

WorkloadConfig
smallConfig()
{
    WorkloadConfig c;
    c.days = 28;
    c.devicesPerLocation = 4;
    c.imagesPerDevicePerDay = 2.0;
    c.seed = 5;
    return c;
}

TEST(Workload, DeterministicFromSeed)
{
    Fixture f;
    WorkloadGenerator g1(f.app, f.weather, smallConfig());
    WorkloadGenerator g2(f.app, f.weather, smallConfig());
    auto a = g1.generate();
    auto b = g2.generate();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].when, b[i].when);
        EXPECT_EQ(a[i].deviceId, b[i].deviceId);
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].features, b[i].features);
    }
}

TEST(Workload, EventsAreChronological)
{
    Fixture f;
    WorkloadGenerator gen(f.app, f.weather, smallConfig());
    auto events = gen.generate();
    ASSERT_GT(events.size(), 100u);
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].when, events[i].when);
}

TEST(Workload, DeviceLocationMappingConsistent)
{
    Fixture f;
    WorkloadGenerator gen(f.app, f.weather, smallConfig());
    EXPECT_EQ(gen.deviceCount(),
              4 * static_cast<int>(f.app.locations.size()));
    for (const auto &ev : gen.generate()) {
        EXPECT_EQ(ev.locationId, gen.locationOfDevice(ev.deviceId));
        EXPECT_GE(ev.deviceId, 0);
        EXPECT_LT(ev.deviceId, gen.deviceCount());
    }
    EXPECT_THROW(gen.locationOfDevice(-1), NazarError);
}

TEST(Workload, EventCountNearExpectation)
{
    Fixture f;
    WorkloadConfig c = smallConfig();
    WorkloadGenerator gen(f.app, f.weather, c);
    double expected = c.days * gen.deviceCount() *
                      c.imagesPerDevicePerDay;
    double actual = static_cast<double>(gen.generate().size());
    EXPECT_NEAR(actual / expected, 1.0, 0.1);
}

TEST(Workload, DriftOnlyOnNonClearWeather)
{
    Fixture f;
    WorkloadGenerator gen(f.app, f.weather, smallConfig());
    for (const auto &ev : gen.generate()) {
        EXPECT_EQ(ev.weather,
                  f.weather.weatherAt(ev.locationId,
                                      ev.when.dayIndex()));
        if (ev.trueDrift) {
            EXPECT_NE(ev.weather, Weather::kClear);
            EXPECT_EQ(ev.corruption, weatherCorruption(ev.weather));
            EXPECT_GT(ev.severity, 0);
        } else {
            EXPECT_EQ(ev.corruption, CorruptionType::kNone);
        }
    }
}

TEST(Workload, FixedSeverityPolicy)
{
    Fixture f;
    WorkloadConfig c = smallConfig();
    c.severity = 4;
    WorkloadGenerator gen(f.app, f.weather, c);
    for (const auto &ev : gen.generate())
        if (ev.trueDrift)
            EXPECT_EQ(ev.severity, 4);
}

TEST(Workload, NormalSeverityPolicyVaries)
{
    Fixture f;
    WorkloadConfig c = smallConfig();
    c.severityPolicy = SeverityPolicy::kNormal;
    WorkloadGenerator gen(f.app, f.weather, c);
    std::map<int, int> histogram;
    for (const auto &ev : gen.generate())
        if (ev.trueDrift)
            ++histogram[ev.severity];
    // Severities are drawn from round(clip(N(3,1),0,5)): expect more
    // than one distinct level, all within [1,5] for drifted events.
    EXPECT_GT(histogram.size(), 1u);
    for (const auto &[severity, count] : histogram) {
        EXPECT_GE(severity, 1);
        EXPECT_LE(severity, 5);
    }
}

TEST(Workload, ZeroWeatherDriftProbMeansNoDrift)
{
    Fixture f;
    WorkloadConfig c = smallConfig();
    c.weatherDriftProb = 0.0;
    WorkloadGenerator gen(f.app, f.weather, c);
    for (const auto &ev : gen.generate())
        EXPECT_FALSE(ev.trueDrift);
}

TEST(Workload, ZipfSkewConcentratesClasses)
{
    Fixture f;
    WorkloadConfig uniform = smallConfig();
    WorkloadConfig skewed = smallConfig();
    skewed.zipfAlpha = 2.0;

    auto count_top_class = [&](const WorkloadConfig &c) {
        WorkloadGenerator gen(f.app, f.weather, c);
        // Location 0's class histogram.
        std::map<int, int> hist;
        int total = 0;
        for (const auto &ev : gen.generate()) {
            if (ev.locationId != 0)
                continue;
            ++hist[ev.label];
            ++total;
        }
        int top = 0;
        for (const auto &[cls, n] : hist)
            top = std::max(top, n);
        return static_cast<double>(top) / total;
    };
    EXPECT_GT(count_top_class(skewed), count_top_class(uniform) + 0.2);
}

TEST(Workload, LocationsHaveDifferentClassMixUnderSkew)
{
    Fixture f;
    WorkloadConfig c = smallConfig();
    c.zipfAlpha = 1.5;
    WorkloadGenerator gen(f.app, f.weather, c);
    // The most frequent class must differ across at least one pair of
    // locations (location-specific permutations).
    std::map<int, std::map<int, int>> hist;
    for (const auto &ev : gen.generate())
        ++hist[ev.locationId][ev.label];
    std::vector<int> top;
    for (auto &[loc, h] : hist) {
        int best = -1, best_n = -1;
        for (auto &[cls, n] : h)
            if (n > best_n) {
                best = cls;
                best_n = n;
            }
        top.push_back(best);
    }
    bool all_same = std::all_of(top.begin(), top.end(),
                                [&](int t) { return t == top[0]; });
    EXPECT_FALSE(all_same);
}

TEST(Workload, FeaturesHaveDomainWidth)
{
    Fixture f;
    WorkloadGenerator gen(f.app, f.weather, smallConfig());
    auto events = gen.generate();
    ASSERT_FALSE(events.empty());
    for (const auto &ev : events)
        EXPECT_EQ(ev.features.size(), f.app.domain.featureDim());
}

TEST(Workload, RejectsBadConfig)
{
    Fixture f;
    WorkloadConfig c = smallConfig();
    c.days = kSimPeriodDays + 1; // exceeds the weather model
    EXPECT_THROW(WorkloadGenerator(f.app, f.weather, c), NazarError);
}

} // namespace
} // namespace nazar::data
