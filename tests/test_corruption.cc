/**
 * @file
 * Tests for the 16 drift corruptions.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "data/corruption.h"

namespace nazar::data {
namespace {

std::vector<double>
sampleVector(size_t dim, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> x(dim);
    for (auto &e : x)
        e = rng.normal(0.0, 1.0);
    return x;
}

TEST(Corruption, CatalogHas16Types)
{
    EXPECT_EQ(allCorruptionTypes().size(),
              static_cast<size_t>(kNumCorruptionTypes));
}

TEST(Corruption, NamesRoundTrip)
{
    for (CorruptionType t : allCorruptionTypes())
        EXPECT_EQ(corruptionFromString(toString(t)), t);
    EXPECT_EQ(corruptionFromString("none"), CorruptionType::kNone);
    EXPECT_THROW(corruptionFromString("sharknado"), NazarError);
}

TEST(Corruption, WeatherSubset)
{
    EXPECT_TRUE(isWeatherCorruption(CorruptionType::kSnow));
    EXPECT_TRUE(isWeatherCorruption(CorruptionType::kRain));
    EXPECT_TRUE(isWeatherCorruption(CorruptionType::kFog));
    EXPECT_TRUE(isWeatherCorruption(CorruptionType::kFrost));
    EXPECT_FALSE(isWeatherCorruption(CorruptionType::kGaussianNoise));
    EXPECT_FALSE(isWeatherCorruption(CorruptionType::kNone));
}

TEST(Corruptor, IdentityAtSeverityZeroAndNone)
{
    Corruptor corr(32);
    Rng rng(1);
    auto x = sampleVector(32, 2);
    EXPECT_EQ(corr.apply(x, CorruptionType::kSnow, 0, rng), x);
    EXPECT_EQ(corr.apply(x, CorruptionType::kNone, 3, rng), x);
}

TEST(Corruptor, RejectsBadArguments)
{
    Corruptor corr(32);
    Rng rng(1);
    auto x = sampleVector(32, 2);
    EXPECT_THROW(corr.apply(x, CorruptionType::kSnow, 6, rng),
                 NazarError);
    EXPECT_THROW(corr.apply(x, CorruptionType::kSnow, -1, rng),
                 NazarError);
    EXPECT_THROW(corr.apply(sampleVector(16, 2),
                            CorruptionType::kSnow, 3, rng),
                 NazarError);
    EXPECT_THROW(Corruptor(4), NazarError);
}

class CorruptionTypeTest
    : public ::testing::TestWithParam<CorruptionType>
{
};

TEST_P(CorruptionTypeTest, ChangesTheInput)
{
    Corruptor corr(32);
    Rng rng(3);
    auto x = sampleVector(32, 4);
    auto y = corr.apply(x, GetParam(), 3, rng);
    ASSERT_EQ(y.size(), x.size());
    double diff = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        diff += std::fabs(y[i] - x[i]);
    EXPECT_GT(diff, 0.01);
}

TEST_P(CorruptionTypeTest, OutputIsFinite)
{
    Corruptor corr(32);
    Rng rng(5);
    for (int severity = 1; severity <= 5; ++severity) {
        auto y = corr.apply(sampleVector(32, 6), GetParam(), severity,
                            rng);
        for (double e : y)
            EXPECT_TRUE(std::isfinite(e));
    }
}

TEST_P(CorruptionTypeTest, SeverityIncreasesDistortion)
{
    Corruptor corr(32);
    // Average distortion over many samples must grow from severity 1
    // to severity 5 (per-sample monotonicity is not required — the
    // transforms are stochastic).
    double d1 = 0.0, d5 = 0.0;
    for (int s = 0; s < 50; ++s) {
        auto x = sampleVector(32, 100 + static_cast<uint64_t>(s));
        Rng r1(7), r5(7);
        auto y1 = corr.apply(x, GetParam(), 1, r1);
        auto y5 = corr.apply(x, GetParam(), 5, r5);
        for (size_t i = 0; i < x.size(); ++i) {
            d1 += (y1[i] - x[i]) * (y1[i] - x[i]);
            d5 += (y5[i] - x[i]) * (y5[i] - x[i]);
        }
    }
    EXPECT_GT(d5, d1 * 1.5) << toString(GetParam());
}

TEST_P(CorruptionTypeTest, DeterministicGivenSameRngStream)
{
    Corruptor corr(32);
    auto x = sampleVector(32, 8);
    Rng a(11), b(11);
    EXPECT_EQ(corr.apply(x, GetParam(), 3, a),
              corr.apply(x, GetParam(), 3, b));
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, CorruptionTypeTest,
    ::testing::ValuesIn(allCorruptionTypes()),
    [](const ::testing::TestParamInfo<CorruptionType> &info) {
        return toString(info.param);
    });

TEST(Corruptor, TypesProduceDistinctDistortions)
{
    // Two different structured types must not produce identical
    // outputs for the same input (they are distinct root causes).
    Corruptor corr(32);
    auto x = sampleVector(32, 9);
    Rng r1(13), r2(13);
    auto snow = corr.apply(x, CorruptionType::kSnow, 3, r1);
    auto fog = corr.apply(x, CorruptionType::kFog, 3, r2);
    double diff = 0.0;
    for (size_t i = 0; i < x.size(); ++i)
        diff += std::fabs(snow[i] - fog[i]);
    EXPECT_GT(diff, 0.1);
}

TEST(Corruptor, StructureIsStableAcrossInstances)
{
    // Two corruptors with the same seed and dimension define the same
    // transform (same fixed masks/directions).
    Corruptor a(32, 777), b(32, 777);
    auto x = sampleVector(32, 10);
    Rng r1(17), r2(17);
    EXPECT_EQ(a.apply(x, CorruptionType::kFrost, 4, r1),
              b.apply(x, CorruptionType::kFrost, 4, r2));
}

TEST(Corruptor, DifferentSeedsDifferentStructure)
{
    Corruptor a(32, 1), b(32, 2);
    auto x = sampleVector(32, 10);
    Rng r1(17), r2(17);
    EXPECT_NE(a.apply(x, CorruptionType::kSnow, 3, r1),
              b.apply(x, CorruptionType::kSnow, 3, r2));
}

TEST(Corruptor, FadeShrinksFeatureNorm)
{
    // The universal feature fade means corrupted vectors of a
    // deterministic type (no stochastic component dominating) have a
    // smaller norm than the input on average.
    Corruptor corr(32);
    Rng rng(19);
    double in_norm = 0.0, out_norm = 0.0;
    for (int i = 0; i < 100; ++i) {
        auto x = sampleVector(32, 200 + static_cast<uint64_t>(i));
        auto y = corr.apply(x, CorruptionType::kJpegCompression, 3, rng);
        for (size_t k = 0; k < x.size(); ++k) {
            in_norm += x[k] * x[k];
            out_norm += y[k] * y[k];
        }
    }
    EXPECT_LT(out_norm, in_norm);
}

} // namespace
} // namespace nazar::data
