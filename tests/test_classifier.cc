/**
 * @file
 * Tests for the Classifier facade: training, cloning, serialization,
 * BN patching and the architecture tiers.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "data/domain.h"
#include "nn/classifier.h"

namespace nazar::nn {
namespace {

/** A small, well-separated domain that trains in milliseconds. */
data::Domain
easyDomain()
{
    data::DomainConfig config;
    config.numClasses = 4;
    config.featureDim = 8;
    config.prototypeScale = 3.0;
    config.noiseMin = 0.4;
    config.noiseMax = 0.6;
    config.seed = 99;
    return data::Domain(config);
}

TrainConfig
fastTrain()
{
    TrainConfig tc;
    tc.epochs = 15;
    tc.batchSize = 32;
    return tc;
}

TEST(Classifier, TrainsToHighAccuracyOnSeparableData)
{
    data::Domain domain = easyDomain();
    Rng rng(1);
    auto train = domain.makeBalancedDataset(60, rng);
    auto test = domain.makeBalancedDataset(30, rng);
    Classifier model(Architecture::kResNet18, 8, 4, 7);
    double pre = model.accuracy(test.x, test.labels);
    model.trainSupervised(train.x, train.labels, fastTrain());
    double post = model.accuracy(test.x, test.labels);
    EXPECT_GT(post, 0.95);
    EXPECT_GT(post, pre);
}

TEST(Classifier, PredictMatchesArgmaxOfLogits)
{
    data::Domain domain = easyDomain();
    Rng rng(2);
    auto d = domain.makeBalancedDataset(5, rng);
    Classifier model(Architecture::kResNet18, 8, 4, 7);
    Matrix z = model.logits(d.x);
    auto pred = model.predict(d.x);
    for (size_t r = 0; r < z.rows(); ++r)
        EXPECT_EQ(pred[r], static_cast<int>(z.argmaxRow(r)));
    EXPECT_EQ(model.predictOne(d.x.rowVec(0)), pred[0]);
}

TEST(Classifier, MspScoresAreProbabilities)
{
    data::Domain domain = easyDomain();
    Rng rng(3);
    auto d = domain.makeBalancedDataset(5, rng);
    Classifier model(Architecture::kResNet34, 8, 4, 7);
    for (double s : model.mspScores(d.x)) {
        EXPECT_GT(s, 1.0 / 4.0 - 1e-9); // at least uniform
        EXPECT_LE(s, 1.0);
    }
}

TEST(Classifier, CloneIsDeepAndExact)
{
    data::Domain domain = easyDomain();
    Rng rng(4);
    auto train = domain.makeBalancedDataset(40, rng);
    Classifier model(Architecture::kResNet18, 8, 4, 7);
    model.trainSupervised(train.x, train.labels, fastTrain());

    Classifier copy = model.clone();
    auto d = domain.makeBalancedDataset(10, rng);
    EXPECT_TRUE(model.logits(d.x).approxEquals(copy.logits(d.x), 1e-12));

    // Mutating the copy must not affect the original.
    copy.scaleLogits(3.0);
    EXPECT_FALSE(
        model.logits(d.x).approxEquals(copy.logits(d.x), 1e-6));
}

TEST(Classifier, SaveLoadRoundTrip)
{
    data::Domain domain = easyDomain();
    Rng rng(5);
    auto train = domain.makeBalancedDataset(40, rng);
    Classifier model(Architecture::kResNet34, 8, 4, 7);
    model.trainSupervised(train.x, train.labels, fastTrain());

    std::stringstream ss;
    model.save(ss);
    Classifier loaded = Classifier::load(ss);
    EXPECT_EQ(loaded.architecture(), Architecture::kResNet34);
    EXPECT_EQ(loaded.inputDim(), 8u);
    EXPECT_EQ(loaded.numClasses(), 4u);

    auto d = domain.makeBalancedDataset(10, rng);
    EXPECT_TRUE(
        model.logits(d.x).approxEquals(loaded.logits(d.x), 1e-9));
}

TEST(Classifier, LoadRejectsGarbage)
{
    std::stringstream ss("not-a-model 1\n");
    EXPECT_THROW(Classifier::load(ss), NazarError);
}

TEST(Classifier, ScaleLogitsPreservesPredictions)
{
    data::Domain domain = easyDomain();
    Rng rng(6);
    auto d = domain.makeBalancedDataset(20, rng);
    Classifier model(Architecture::kResNet18, 8, 4, 7);
    auto before = model.predict(d.x);
    auto msp_before = model.mspScores(d.x);
    model.scaleLogits(4.0);
    auto after = model.predict(d.x);
    auto msp_after = model.mspScores(d.x);
    EXPECT_EQ(before, after);
    // Sharper softmax: confidence must not decrease.
    for (size_t i = 0; i < msp_before.size(); ++i)
        EXPECT_GE(msp_after[i] + 1e-9, msp_before[i]);
    EXPECT_THROW(model.scaleLogits(0.0), NazarError);
}

TEST(Classifier, BnPatchRoundTripRestoresBehaviour)
{
    data::Domain domain = easyDomain();
    Rng rng(7);
    auto train = domain.makeBalancedDataset(40, rng);
    Classifier model(Architecture::kResNet18, 8, 4, 7);
    model.trainSupervised(train.x, train.labels, fastTrain());

    auto d = domain.makeBalancedDataset(10, rng);
    BnPatch original = model.bnPatch();
    Matrix logits_before = model.logits(d.x);

    // Disturb the BN state via an adapt-mode forward pass.
    model.logits(d.x, Mode::kAdapt);
    EXPECT_FALSE(model.bnPatch().approxEquals(original, 1e-9));

    model.applyBnPatch(original);
    EXPECT_TRUE(model.logits(d.x).approxEquals(logits_before, 1e-9));
}

class ArchitectureTest : public ::testing::TestWithParam<Architecture>
{
};

TEST_P(ArchitectureTest, BnPatchMuchSmallerThanModel)
{
    Classifier model(GetParam(), 32, 40, 7);
    // The BN-only deployment unit is far smaller than the full model
    // (the paper's 217x argument; exact ratio depends on depth/width).
    EXPECT_GT(model.parameterCount(),
              6 * model.bnParameterCount() / 4);
    EXPECT_LT(model.bnParameterCount() * 4,
              model.parameterCount());
}

TEST_P(ArchitectureTest, OutputShapeMatches)
{
    Classifier model(GetParam(), 16, 5, 7);
    Rng rng(8);
    Matrix x = Matrix::randomNormal(3, 16, 1.0, rng);
    Matrix z = model.logits(x);
    EXPECT_EQ(z.rows(), 3u);
    EXPECT_EQ(z.cols(), 5u);
}

INSTANTIATE_TEST_SUITE_P(AllTiers, ArchitectureTest,
                         ::testing::Values(Architecture::kResNet18,
                                           Architecture::kResNet34,
                                           Architecture::kResNet50));

TEST(Classifier, CapacityOrderingOfParameterCounts)
{
    Classifier small(Architecture::kResNet18, 32, 10, 1);
    Classifier medium(Architecture::kResNet34, 32, 10, 1);
    Classifier large(Architecture::kResNet50, 32, 10, 1);
    EXPECT_LT(small.parameterCount(), medium.parameterCount());
    EXPECT_LT(medium.parameterCount(), large.parameterCount());
}

TEST(Classifier, RejectsBadConstruction)
{
    EXPECT_THROW(Classifier(Architecture::kResNet18, 0, 4, 1),
                 NazarError);
    EXPECT_THROW(Classifier(Architecture::kResNet18, 8, 1, 1),
                 NazarError);
}

TEST(Classifier, AccuracyValidatesLabelCount)
{
    Classifier model(Architecture::kResNet18, 8, 4, 1);
    Matrix x(3, 8);
    EXPECT_THROW(model.accuracy(x, {0, 1}), NazarError);
}

} // namespace
} // namespace nazar::nn
