/**
 * @file
 * Tests for the GOdin-style input-perturbation detector.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "data/corruption.h"
#include "data/domain.h"
#include "detect/godin.h"
#include "detect/scores.h"

namespace nazar::detect {
namespace {

struct GOdinFixture : ::testing::Test
{
    GOdinFixture()
    {
        data::DomainConfig dc;
        dc.numClasses = 8;
        dc.featureDim = 16;
        dc.prototypeScale = 0.8;
        dc.noiseMin = 0.5;
        dc.noiseMax = 1.0;
        dc.seed = 3;
        domain = std::make_unique<data::Domain>(dc);
        Rng rng(1);
        auto train = domain->makeBalancedDataset(80, rng);
        model = std::make_unique<nn::Classifier>(
            nn::Architecture::kResNet18, 16, 8, 5);
        nn::TrainConfig tc;
        tc.epochs = 25;
        model->trainSupervised(train.x, train.labels, tc);
    }

    std::unique_ptr<data::Domain> domain;
    std::unique_ptr<nn::Classifier> model;
};

TEST_F(GOdinFixture, ScoresAreProbabilities)
{
    GOdinDetector det(*model, 0.7);
    Rng rng(2);
    for (int i = 0; i < 20; ++i) {
        double s = det.score(domain->sample(i % 8, rng));
        EXPECT_GT(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST_F(GOdinFixture, DriftedScoresLowerOnAverage)
{
    GOdinDetector det(*model, 0.7);
    Rng rng(3);
    data::Corruptor corr(16);
    double clean_sum = 0.0, drift_sum = 0.0;
    const int n = 60;
    for (int i = 0; i < n; ++i) {
        auto x = domain->sample(i % 8, rng);
        clean_sum += det.score(x);
        drift_sum += det.score(
            corr.apply(x, data::CorruptionType::kFog, 3, rng));
    }
    EXPECT_GT(clean_sum / n, drift_sum / n + 0.05);
}

TEST_F(GOdinFixture, DetectorDoesNotModifyTheModel)
{
    GOdinDetector det(*model, 0.7);
    nn::BnPatch before = model->bnPatch();
    Rng rng(4);
    for (int i = 0; i < 10; ++i)
        det.isDrift(domain->sample(i % 8, rng));
    EXPECT_TRUE(model->bnPatch().approxEquals(before, 1e-12));
}

TEST_F(GOdinFixture, PerturbationRaisesInDistributionConfidence)
{
    // The defining GOdin property: the epsilon-step against the
    // gradient increases confidence more for in-distribution inputs
    // than the raw MSP.
    GOdinDetector det(*model, 0.7, /*epsilon=*/0.05,
                      /*temperature=*/1.0);
    MspDetector msp(0.9);
    Rng rng(5);
    double raised = 0.0;
    const int n = 40;
    for (int i = 0; i < n; ++i) {
        auto x = domain->sample(i % 8, rng);
        nn::Matrix logits =
            model->logits(nn::Matrix::rowVector(x));
        double base = msp.score(logits.rowVec(0));
        raised += det.score(x) - base;
    }
    EXPECT_GT(raised / n, 0.0);
}

TEST_F(GOdinFixture, ValidatesArguments)
{
    EXPECT_THROW(GOdinDetector(*model, 1.5), NazarError);
    EXPECT_THROW(GOdinDetector(*model, 0.5, -0.1), NazarError);
    EXPECT_THROW(GOdinDetector(*model, 0.5, 0.1, 0.0), NazarError);
    GOdinDetector det(*model, 0.5);
    EXPECT_THROW(det.score(std::vector<double>(3, 0.0)), NazarError);
}

TEST_F(GOdinFixture, ThreePassesPerInference)
{
    EXPECT_EQ(GOdinDetector::kPassesPerInference, 3);
}

} // namespace
} // namespace nazar::detect
