/**
 * @file
 * Tests for the blob store and the model registry.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "deploy/registry.h"
#include "nn/activation.h"
#include "nn/linear.h"

namespace nazar::deploy {
namespace {

using driftlog::Value;
using rca::AttributeSet;

TEST(BlobStore, PutGetRemove)
{
    BlobStore store;
    store.put("a/b", "hello");
    EXPECT_TRUE(store.contains("a/b"));
    EXPECT_EQ(store.get("a/b"), "hello");
    EXPECT_EQ(store.blobCount(), 1u);
    EXPECT_EQ(store.totalBytes(), 5u);

    store.put("a/b", "hi"); // overwrite
    EXPECT_EQ(store.get("a/b"), "hi");
    EXPECT_EQ(store.totalBytes(), 2u);

    EXPECT_TRUE(store.remove("a/b"));
    EXPECT_FALSE(store.remove("a/b"));
    EXPECT_THROW(store.get("a/b"), NazarError);
    EXPECT_THROW(store.put("", "x"), NazarError);
}

TEST(BlobStore, ListByPrefix)
{
    BlobStore store;
    store.put("versions/1/meta", "m");
    store.put("versions/1/patch", "p");
    store.put("versions/2/meta", "m");
    store.put("logs/day0", "l");
    EXPECT_EQ(store.list("versions/").size(), 3u);
    EXPECT_EQ(store.list("logs/").size(), 1u);
    EXPECT_EQ(store.list().size(), 4u);
    EXPECT_TRUE(store.list("nothing/").empty());
}

/** A BN patch with distinctive values for round-trip checks. */
nn::BnPatch
samplePatch(uint64_t seed)
{
    Rng rng(seed);
    nn::Sequential net;
    net.add(std::make_unique<nn::Linear>(4, 6, rng));
    net.add(std::make_unique<nn::BatchNorm1d>(6));
    net.forward(nn::Matrix::randomNormal(8, 4, 2.0, rng),
                nn::Mode::kAdapt);
    return nn::BnPatch::extract(net);
}

ModelVersion
sampleVersion(int64_t id, uint64_t seed)
{
    ModelVersion v;
    v.id = id;
    v.cause = AttributeSet({{"weather", Value("snow")},
                            {"location", Value("oslo")}});
    v.riskRatio = 2.75;
    v.updatedAt = 4;
    v.patch = samplePatch(seed);
    return v;
}

TEST(ModelRegistry, PublishAssignsIds)
{
    BlobStore store;
    ModelRegistry registry(store);
    ModelVersion v = sampleVersion(0, 1);
    int64_t id = registry.publish(v);
    EXPECT_EQ(id, 1);
    EXPECT_EQ(registry.publish(sampleVersion(0, 2)), 2);
    // Explicit ids are respected and advance the counter.
    EXPECT_EQ(registry.publish(sampleVersion(10, 3)), 10);
    EXPECT_EQ(registry.publish(sampleVersion(0, 4)), 11);
}

TEST(ModelRegistry, FetchRoundTrip)
{
    BlobStore store;
    ModelRegistry registry(store);
    ModelVersion original = sampleVersion(7, 5);
    registry.publish(original);

    ASSERT_TRUE(registry.contains(7));
    ModelVersion back = registry.fetch(7);
    EXPECT_EQ(back.id, 7);
    EXPECT_EQ(back.cause, original.cause);
    EXPECT_NEAR(back.riskRatio, 2.75, 1e-12);
    EXPECT_EQ(back.updatedAt, 4);
    EXPECT_TRUE(back.patch.approxEquals(original.patch, 1e-12));
}

TEST(ModelRegistry, FetchUnknownThrows)
{
    BlobStore store;
    ModelRegistry registry(store);
    EXPECT_FALSE(registry.contains(3));
    EXPECT_THROW(registry.fetch(3), NazarError);
}

TEST(ModelRegistry, VersionIdsSorted)
{
    BlobStore store;
    ModelRegistry registry(store);
    registry.publish(sampleVersion(5, 1));
    registry.publish(sampleVersion(2, 2));
    registry.publish(sampleVersion(9, 3));
    EXPECT_EQ(registry.versionIds(), (std::vector<int64_t>{2, 5, 9}));
    EXPECT_EQ(registry.size(), 3u);
}

TEST(ModelRegistry, LatestForCause)
{
    BlobStore store;
    ModelRegistry registry(store);
    ModelVersion old_version = sampleVersion(1, 1);
    old_version.updatedAt = 1;
    ModelVersion new_version = sampleVersion(2, 2);
    new_version.updatedAt = 9;
    registry.publish(old_version);
    registry.publish(new_version);

    auto latest = registry.latestForCause(old_version.cause);
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->id, 2);

    AttributeSet other({{"weather", Value("fog")}});
    EXPECT_FALSE(registry.latestForCause(other).has_value());
}

TEST(ModelRegistry, CleanCauseRoundTrip)
{
    // A version with an empty cause (clean-model recalibration).
    BlobStore store;
    ModelRegistry registry(store);
    ModelVersion v;
    v.patch = samplePatch(11);
    int64_t id = registry.publish(v);
    ModelVersion back = registry.fetch(id);
    EXPECT_TRUE(back.isClean());
    EXPECT_TRUE(back.cause.empty());
}

TEST(ModelRegistry, BlobFootprintMatchesPatchScale)
{
    // The deployment-size argument: stored blobs are KB-scale.
    BlobStore store;
    ModelRegistry registry(store);
    registry.publish(sampleVersion(0, 1));
    EXPECT_GT(store.totalBytes(), 100u);
    EXPECT_LT(store.totalBytes(), 100000u);
}

} // namespace
} // namespace nazar::deploy
