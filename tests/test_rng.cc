/**
 * @file
 * Tests for the deterministic RNG.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace nazar {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(3);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(7, 7), 7);
}

TEST(Rng, UniformIntRejectsInvertedRange)
{
    Rng rng(3);
    EXPECT_THROW(rng.uniformInt(5, 2), NazarError);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale)
{
    Rng rng(13);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

class RngPoissonTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RngPoissonTest, MeanMatches)
{
    double mean = GetParam();
    Rng rng(17);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.poisson(mean);
    EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.1, 0.5, 2.0, 8.0, 50.0));

TEST(Rng, PoissonZeroMean)
{
    Rng rng(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, PoissonRejectsNegativeMean)
{
    Rng rng(5);
    EXPECT_THROW(rng.poisson(-1.0), NazarError);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, IndexBounds)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.index(17), 17u);
    EXPECT_THROW(rng.index(0), NazarError);
}

TEST(Rng, WeightedIndexFollowsWeights)
{
    Rng rng(29);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadWeights)
{
    Rng rng(29);
    std::vector<double> zero = {0.0, 0.0};
    EXPECT_THROW(rng.weightedIndex(zero), NazarError);
    std::vector<double> negative = {1.0, -0.5};
    EXPECT_THROW(rng.weightedIndex(negative), NazarError);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[static_cast<size_t>(i)] = i;
    auto original = v;
    rng.shuffle(v);
    EXPECT_NE(v, original); // astronomically unlikely to be identity
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(37);
    Rng child = a.fork();
    // The child must differ from the parent's continued stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == child() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator)
{
    static_assert(std::uniform_random_bit_generator<Rng>);
    SUCCEED();
}

} // namespace
} // namespace nazar
