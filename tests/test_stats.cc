/**
 * @file
 * Tests for statistics helpers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace nazar {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MatchesDirectComputation)
{
    RunningStat s;
    std::vector<double> xs = {1.0, 4.0, 4.0, 9.0, -2.0, 0.5};
    for (double x : xs)
        s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
    EXPECT_EQ(s.min(), -2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEquivalentToCombinedStream)
{
    RunningStat a, b, whole;
    for (int i = 0; i < 100; ++i) {
        double x = std::sin(i * 0.7) * i;
        (i % 2 ? a : b).add(x);
        whole.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(a.min(), whole.min());
    EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_EQ(empty.mean(), 3.0);
}

TEST(VectorStats, MeanAndStddev)
{
    EXPECT_EQ(mean({}), 0.0);
    EXPECT_NEAR(mean({2.0, 4.0}), 3.0, 1e-12);
    EXPECT_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0}), std::sqrt(2.0), 1e-12);
}

TEST(Percentile, KnownValues)
{
    std::vector<double> xs = {3.0, 1.0, 2.0, 4.0};
    EXPECT_NEAR(percentile(xs, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(percentile(xs, 100.0), 4.0, 1e-12);
    EXPECT_NEAR(percentile(xs, 50.0), 2.5, 1e-12);
    EXPECT_NEAR(percentile({7.0}, 30.0), 7.0, 1e-12);
}

TEST(Percentile, RejectsBadInput)
{
    EXPECT_THROW(percentile({}, 50.0), NazarError);
    EXPECT_THROW(percentile({1.0}, -1.0), NazarError);
    EXPECT_THROW(percentile({1.0}, 101.0), NazarError);
}

TEST(ConfusionCounts, CountsRouteCorrectly)
{
    ConfusionCounts c;
    c.add(true, true);   // TP
    c.add(true, false);  // FP
    c.add(false, true);  // FN
    c.add(false, false); // TN
    EXPECT_EQ(c.tp(), 1u);
    EXPECT_EQ(c.fp(), 1u);
    EXPECT_EQ(c.fn(), 1u);
    EXPECT_EQ(c.tn(), 1u);
    EXPECT_EQ(c.total(), 4u);
    EXPECT_NEAR(c.precision(), 0.5, 1e-12);
    EXPECT_NEAR(c.recall(), 0.5, 1e-12);
    EXPECT_NEAR(c.f1(), 0.5, 1e-12);
    EXPECT_NEAR(c.accuracy(), 0.5, 1e-12);
    EXPECT_NEAR(c.positiveRate(), 0.5, 1e-12);
}

TEST(ConfusionCounts, F1MatchesPaperEquation)
{
    // F1 = 2 TP / (2 TP + FP + FN), paper Eq. 1.
    ConfusionCounts c;
    for (int i = 0; i < 8; ++i)
        c.add(true, true);
    for (int i = 0; i < 2; ++i)
        c.add(true, false);
    for (int i = 0; i < 4; ++i)
        c.add(false, true);
    EXPECT_NEAR(c.f1(), 2.0 * 8 / (2.0 * 8 + 2 + 4), 1e-12);
    // Cross-check against the precision/recall form.
    double p = c.precision(), r = c.recall();
    EXPECT_NEAR(c.f1(), 2.0 * p * r / (p + r), 1e-12);
}

TEST(ConfusionCounts, DegenerateCasesAreZero)
{
    ConfusionCounts empty;
    EXPECT_EQ(empty.precision(), 0.0);
    EXPECT_EQ(empty.recall(), 0.0);
    EXPECT_EQ(empty.f1(), 0.0);
    EXPECT_EQ(empty.accuracy(), 0.0);

    ConfusionCounts all_negative;
    all_negative.add(false, false);
    EXPECT_EQ(all_negative.precision(), 0.0);
    EXPECT_EQ(all_negative.f1(), 0.0);
    EXPECT_EQ(all_negative.positiveRate(), 0.0);
}

} // namespace
} // namespace nazar
