/**
 * @file
 * Tests for the full root-cause analysis pipeline (Algorithm 1),
 * including the paper's worked example and synthetic multi-cause logs.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "paper_example.h"
#include "rca/analyzer.h"

namespace nazar::rca {
namespace {

using driftlog::Schema;
using driftlog::Table;
using driftlog::Value;
using driftlog::ValueType;
using testing::paperConfig;
using testing::paperTable2;
using testing::weatherIs;

TEST(Analyzer, PaperExampleYieldsSnowOnly)
{
    // The full pipeline must conclude: the single root cause is
    // {weather=snow}. {new_york}/{android_21} pass FIM thresholds but
    // are explained away by counterfactual analysis (their remaining
    // drift evidence is one false positive).
    Analyzer analyzer(paperConfig());
    AnalysisResult result = analyzer.analyze(paperTable2());
    ASSERT_EQ(result.rootCauses.size(), 1u);
    EXPECT_EQ(result.rootCauses[0].attrs, weatherIs("snow"));
}

TEST(Analyzer, FimOnlyModeKeepsRedundantCauses)
{
    Analyzer analyzer(paperConfig());
    auto fim_only =
        analyzer.analyze(paperTable2(), AnalysisMode::kFimOnly);
    auto full = analyzer.analyze(paperTable2(), AnalysisMode::kFull);
    // FIM alone reports many overlapping causes (paper: "the top seven
    // rows are all possible root causes").
    EXPECT_GT(fim_only.rootCauses.size(), full.rootCauses.size());
    EXPECT_GE(fim_only.rootCauses.size(), 5u);
}

TEST(Analyzer, SetReductionModeKeepsCoarseKeys)
{
    Analyzer analyzer(paperConfig());
    auto sr = analyzer.analyze(paperTable2(),
                               AnalysisMode::kFimSetReduction);
    // Keys are {snow}, {new_york}, {android_21}-ish coarse causes: more
    // than the full pipeline (no counterfactual pruning), fewer than
    // raw FIM.
    auto fim_only =
        analyzer.analyze(paperTable2(), AnalysisMode::kFimOnly);
    EXPECT_LT(sr.rootCauses.size(), fim_only.rootCauses.size());
    EXPECT_GE(sr.rootCauses.size(), 2u);
    EXPECT_EQ(sr.rootCauses[0].attrs, weatherIs("snow"));
    // No key may be a proper superset of another key.
    for (const auto &a : sr.rootCauses)
        for (const auto &b : sr.rootCauses)
            EXPECT_FALSE(a.attrs.isProperSubsetOf(b.attrs));
}

TEST(Analyzer, EmptyTableNoCauses)
{
    Analyzer analyzer(paperConfig());
    Table t(Schema({{"weather", ValueType::kString},
                    {"location", ValueType::kString},
                    {"device_id", ValueType::kString},
                    {"drift", ValueType::kBool}}));
    AnalysisResult result = analyzer.analyze(t);
    EXPECT_TRUE(result.rootCauses.empty());
    EXPECT_TRUE(result.fimTable.empty());
}

TEST(Analyzer, NoDriftNoCauses)
{
    Analyzer analyzer(paperConfig());
    Table t(Schema({{"weather", ValueType::kString},
                    {"location", ValueType::kString},
                    {"device_id", ValueType::kString},
                    {"drift", ValueType::kBool}}));
    for (int i = 0; i < 50; ++i)
        t.append({Value("clear-day"), Value("oslo"), Value("android_1"),
                  Value(false)});
    EXPECT_TRUE(analyzer.analyze(t).rootCauses.empty());
}

/**
 * Synthetic two-cause log: drift concentrates on weather=snow and,
 * independently, on device_id=android_7 (a broken camera), with a
 * noisy false-positive floor everywhere.
 */
Table
twoCauseLog(double fp_rate, size_t rows, uint64_t seed)
{
    Rng rng(seed);
    Table t(Schema({{"weather", ValueType::kString},
                    {"location", ValueType::kString},
                    {"device_id", ValueType::kString},
                    {"drift", ValueType::kBool}}));
    const char *weathers[] = {"clear-day", "snow", "rain"};
    const char *locations[] = {"oslo", "new_york", "tibet"};
    for (size_t i = 0; i < rows; ++i) {
        std::string weather = weathers[rng.index(3)];
        std::string location = locations[rng.index(3)];
        std::string device = "android_" + std::to_string(rng.index(10));
        bool drift = rng.bernoulli(fp_rate);
        if (weather == "snow" && rng.bernoulli(0.85))
            drift = true;
        if (device == "android_7" && rng.bernoulli(0.85))
            drift = true;
        t.append({Value(weather), Value(location), Value(device),
                  Value(drift)});
    }
    return t;
}

TEST(Analyzer, RecoversTwoIndependentCauses)
{
    Analyzer analyzer(paperConfig());
    RcaConfig config = paperConfig();
    config.attributeColumns = {"weather", "location", "device_id"};
    Analyzer a2(config);
    Table t = twoCauseLog(0.2, 4000, 11);
    AnalysisResult result = a2.analyze(t);

    bool found_snow = false, found_device = false;
    for (const auto &c : result.rootCauses) {
        if (c.attrs == weatherIs("snow"))
            found_snow = true;
        if (c.attrs ==
            AttributeSet({{"device_id", Value("android_7")}}))
            found_device = true;
    }
    EXPECT_TRUE(found_snow);
    EXPECT_TRUE(found_device);
    // Counterfactual analysis must not keep spurious location causes.
    for (const auto &c : result.rootCauses)
        for (const auto &a : c.attrs.attributes())
            EXPECT_NE(a.column, "location") << c.attrs.toString();
}

TEST(Analyzer, CounterfactualRemovesOverlappingCause)
{
    // Drift ONLY on snow days, but snow happens mostly in oslo, so
    // {oslo} passes the naive FIM thresholds; the counterfactual pass
    // must reject it once {snow} absorbed its evidence.
    Rng rng(13);
    Table t(Schema({{"weather", ValueType::kString},
                    {"location", ValueType::kString},
                    {"device_id", ValueType::kString},
                    {"drift", ValueType::kBool}}));
    for (int i = 0; i < 3000; ++i) {
        bool in_oslo = rng.bernoulli(0.5);
        // Snow is much likelier in oslo.
        bool snowing = rng.bernoulli(in_oslo ? 0.7 : 0.05);
        bool drift = snowing ? rng.bernoulli(0.9) : rng.bernoulli(0.15);
        t.append({Value(snowing ? "snow" : "clear-day"),
                  Value(in_oslo ? "oslo" : "tibet"),
                  Value("android_" + std::to_string(rng.index(5))),
                  Value(drift)});
    }
    Analyzer analyzer(paperConfig());
    auto full = analyzer.analyze(t, AnalysisMode::kFull);
    ASSERT_FALSE(full.rootCauses.empty());
    EXPECT_EQ(full.rootCauses[0].attrs, weatherIs("snow"));
    for (const auto &c : full.rootCauses)
        EXPECT_FALSE(
            c.attrs == AttributeSet({{"location", Value("oslo")}}))
            << "counterfactual pass should prune {oslo}";
}

TEST(Analyzer, AcceptedCausesCarryRecomputedMetrics)
{
    Analyzer analyzer(paperConfig());
    AnalysisResult result = analyzer.analyze(paperTable2());
    ASSERT_EQ(result.rootCauses.size(), 1u);
    // First accepted cause is evaluated against unmodified flags, so
    // its metrics equal the FIM metrics.
    EXPECT_NEAR(result.rootCauses[0].metrics.riskRatio, 3.0, 1e-9);
}

TEST(Analyzer, DiagnosticsExposed)
{
    Analyzer analyzer(paperConfig());
    AnalysisResult result = analyzer.analyze(paperTable2());
    EXPECT_FALSE(result.fimTable.empty());
    EXPECT_FALSE(result.associations.empty());
    EXPECT_EQ(result.associations[0].key.attrs, weatherIs("snow"));
}

TEST(Analyzer, ModeNames)
{
    EXPECT_EQ(toString(AnalysisMode::kFimOnly), "fim");
    EXPECT_EQ(toString(AnalysisMode::kFimSetReduction),
              "fim+set-reduction");
    EXPECT_EQ(toString(AnalysisMode::kFull), "fim+set-reduction+cf");
}

} // namespace
} // namespace nazar::rca
