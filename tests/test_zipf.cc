/**
 * @file
 * Tests for the Zipf sampler.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/zipf.h"

namespace nazar {
namespace {

TEST(Zipf, AlphaZeroIsUniform)
{
    ZipfSampler z(10, 0.0);
    for (size_t k = 0; k < 10; ++k)
        EXPECT_NEAR(z.probability(k), 0.1, 1e-12);
}

TEST(Zipf, ProbabilitiesSumToOne)
{
    ZipfSampler z(37, 1.3);
    double total = 0.0;
    for (size_t k = 0; k < z.size(); ++k)
        total += z.probability(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ProbabilitiesDecreaseWithRank)
{
    ZipfSampler z(20, 1.0);
    for (size_t k = 1; k < z.size(); ++k)
        EXPECT_LE(z.probability(k), z.probability(k - 1));
}

TEST(Zipf, ClassicRatios)
{
    // With alpha = 1, P(rank 0) / P(rank 1) == 2.
    ZipfSampler z(100, 1.0);
    EXPECT_NEAR(z.probability(0) / z.probability(1), 2.0, 1e-9);
    EXPECT_NEAR(z.probability(0) / z.probability(3), 4.0, 1e-9);
}

TEST(Zipf, HigherAlphaMoreSkew)
{
    ZipfSampler mild(50, 0.5), harsh(50, 2.0);
    EXPECT_GT(harsh.probability(0), mild.probability(0));
    EXPECT_LT(harsh.probability(49), mild.probability(49));
}

TEST(Zipf, SamplingMatchesProbabilities)
{
    ZipfSampler z(5, 1.0);
    Rng rng(101);
    std::vector<int> counts(5, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (size_t k = 0; k < 5; ++k)
        EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.probability(k),
                    0.01)
            << "rank " << k;
}

TEST(Zipf, SingleRank)
{
    ZipfSampler z(1, 1.7);
    Rng rng(5);
    EXPECT_EQ(z.sample(rng), 0u);
    EXPECT_NEAR(z.probability(0), 1.0, 1e-12);
}

TEST(Zipf, RejectsBadArguments)
{
    EXPECT_THROW(ZipfSampler(0, 1.0), NazarError);
    EXPECT_THROW(ZipfSampler(5, -0.1), NazarError);
    ZipfSampler z(3, 1.0);
    EXPECT_THROW(z.probability(3), NazarError);
}

} // namespace
} // namespace nazar
