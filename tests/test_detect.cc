/**
 * @file
 * Tests for the drift detectors and their evaluation harness.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "detect/ks_test.h"
#include "detect/metrics.h"
#include "detect/scores.h"

namespace nazar::detect {
namespace {

TEST(MspDetector, FlagsLowConfidence)
{
    MspDetector det(0.9);
    // Uniform over 3 classes: MSP = 1/3 -> drift.
    EXPECT_TRUE(det.isDrift({0.0, 0.0, 0.0}));
    // Strongly peaked: MSP ~ 1 -> no drift.
    EXPECT_FALSE(det.isDrift({20.0, 0.0, 0.0}));
    EXPECT_NEAR(det.score({0.0, 0.0, 0.0}), 1.0 / 3.0, 1e-9);
    EXPECT_EQ(det.threshold(), 0.9);
}

TEST(MspDetector, ThresholdBoundary)
{
    // MSP exactly at the threshold is NOT drift (strict less-than).
    MspDetector det(1.0 / 3.0);
    EXPECT_FALSE(det.isDrift({0.0, 0.0, 0.0}));
    EXPECT_THROW(MspDetector(1.5), NazarError);
    EXPECT_THROW(MspDetector(-0.1), NazarError);
}

TEST(MspDetector, DefaultThresholdIsPaper)
{
    EXPECT_EQ(kDefaultMspThreshold, 0.9);
}

TEST(EntropyDetector, FlagsHighEntropy)
{
    EntropyDetector det(0.5);
    EXPECT_TRUE(det.isDrift({0.0, 0.0, 0.0}));
    EXPECT_FALSE(det.isDrift({20.0, 0.0, 0.0}));
    EXPECT_THROW(EntropyDetector(-1.0), NazarError);
}

TEST(EnergyDetector, FlagsHighEnergy)
{
    // Energy = -logsumexp: high when all logits are very negative.
    EnergyDetector det(0.0);
    EXPECT_TRUE(det.isDrift({-10.0, -10.0}));
    EXPECT_FALSE(det.isDrift({5.0, 0.0}));
}

TEST(Detectors, ScoresOrderConsistently)
{
    // All three scores must rank a confident sample above an
    // uncertain one (the paper found them nearly interchangeable).
    std::vector<double> confident = {8.0, 0.0, 0.0};
    std::vector<double> uncertain = {0.3, 0.2, 0.1};
    MspDetector msp(0.9);
    EntropyDetector ent(0.5);
    EnergyDetector ene(0.0);
    EXPECT_GT(msp.score(confident), msp.score(uncertain));
    EXPECT_GT(ent.score(confident), ent.score(uncertain));
    EXPECT_GT(ene.score(confident), ene.score(uncertain));
}

TEST(Detector, DetectBatchMatchesPerRow)
{
    MspDetector det(0.9);
    nn::Matrix logits =
        nn::Matrix::fromRows({{0.0, 0.0}, {10.0, 0.0}});
    auto flags = det.detectBatch(logits);
    ASSERT_EQ(flags.size(), 2u);
    EXPECT_TRUE(flags[0]);
    EXPECT_FALSE(flags[1]);
}

TEST(KsStatistic, IdenticalSamplesGiveZero)
{
    std::vector<double> a = {1, 2, 3, 4, 5};
    EXPECT_NEAR(ksStatistic(a, a), 0.0, 1e-12);
}

TEST(KsStatistic, DisjointSamplesGiveOne)
{
    EXPECT_NEAR(ksStatistic({1, 2, 3}, {10, 11, 12}), 1.0, 1e-12);
}

TEST(KsStatistic, KnownValue)
{
    // F1 jumps at {1,3}, F2 at {2,4}: max gap is 0.5.
    EXPECT_NEAR(ksStatistic({1, 3}, {2, 4}), 0.5, 1e-12);
    EXPECT_THROW(ksStatistic({}, {1.0}), NazarError);
}

TEST(KsPValue, LargeStatisticSmallP)
{
    EXPECT_LT(ksPValue(0.9, 50, 50), 1e-6);
    EXPECT_GT(ksPValue(0.05, 50, 50), 0.5);
    EXPECT_NEAR(ksPValue(0.0, 50, 50), 1.0, 1e-9);
}

TEST(KsTestDetector, DetectsShiftedBatch)
{
    Rng rng(1);
    std::vector<double> reference(500);
    for (auto &v : reference)
        v = rng.normal(0.9, 0.05);
    KsTestDetector det(reference, 0.05);

    std::vector<double> same(64), shifted(64);
    for (auto &v : same)
        v = rng.normal(0.9, 0.05);
    for (auto &v : shifted)
        v = rng.normal(0.6, 0.05);
    EXPECT_FALSE(det.isDriftBatch(same));
    EXPECT_TRUE(det.isDriftBatch(shifted));
    EXPECT_GT(det.statistic(shifted), det.statistic(same));
    EXPECT_LT(det.pValue(shifted), det.pValue(same));
}

TEST(KsTestDetector, RejectsBadConstruction)
{
    EXPECT_THROW(KsTestDetector({}, 0.05), NazarError);
    EXPECT_THROW(KsTestDetector({1.0}, 0.0), NazarError);
    EXPECT_THROW(KsTestDetector({1.0}, 1.0), NazarError);
}

TEST(Metrics, EvaluateDetectorCountsCorrectly)
{
    MspDetector det(0.9);
    nn::Matrix logits = nn::Matrix::fromRows({
        {0.0, 0.0},  // drift-flagged
        {10.0, 0.0}, // clean-flagged
        {0.0, 0.1},  // drift-flagged
        {9.0, 0.0},  // clean-flagged
    });
    std::vector<bool> truth = {true, false, false, true};
    ConfusionCounts c = evaluateDetector(det, logits, truth);
    EXPECT_EQ(c.tp(), 1u);
    EXPECT_EQ(c.tn(), 1u);
    EXPECT_EQ(c.fp(), 1u);
    EXPECT_EQ(c.fn(), 1u);
    EXPECT_THROW(evaluateDetector(det, logits, {true}), NazarError);
}

TEST(Metrics, KsEvaluationAssignsVerdictToWholeBatch)
{
    Rng rng(2);
    std::vector<double> reference(400);
    for (auto &v : reference)
        v = rng.normal(0.9, 0.05);
    KsTestDetector det(reference, 0.05);

    // First batch clean, second shifted; batch size 32.
    std::vector<double> scores;
    std::vector<bool> truth;
    for (int i = 0; i < 32; ++i) {
        scores.push_back(rng.normal(0.9, 0.05));
        truth.push_back(false);
    }
    for (int i = 0; i < 32; ++i) {
        scores.push_back(rng.normal(0.5, 0.05));
        truth.push_back(true);
    }
    ConfusionCounts c = evaluateKsDetector(det, scores, truth, 32);
    EXPECT_EQ(c.tp(), 32u);
    EXPECT_EQ(c.tn(), 32u);
    EXPECT_EQ(c.fp(), 0u);
    EXPECT_EQ(c.fn(), 0u);
    EXPECT_THROW(evaluateKsDetector(det, scores, truth, 0), NazarError);
}

TEST(Metrics, DetectionRate)
{
    MspDetector det(0.9);
    nn::Matrix logits =
        nn::Matrix::fromRows({{0.0, 0.0}, {10.0, 0.0}, {0.0, 0.0}});
    EXPECT_NEAR(detectionRate(det, logits), 2.0 / 3.0, 1e-12);
    EXPECT_EQ(detectionRate(det, nn::Matrix(0, 2)), 0.0);
}

} // namespace
} // namespace nazar::detect
