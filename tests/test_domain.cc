/**
 * @file
 * Tests for the synthetic data domain.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "data/apps.h"
#include "data/domain.h"

namespace nazar::data {
namespace {

DomainConfig
smallConfig()
{
    DomainConfig c;
    c.numClasses = 6;
    c.featureDim = 16;
    c.seed = 42;
    return c;
}

TEST(Domain, ReproducibleFromSeed)
{
    Domain a(smallConfig()), b(smallConfig());
    for (int c = 0; c < 6; ++c) {
        EXPECT_EQ(a.prototype(c), b.prototype(c));
        EXPECT_EQ(a.classNoise(c), b.classNoise(c));
    }
}

TEST(Domain, DifferentSeedsDifferentPrototypes)
{
    DomainConfig c2 = smallConfig();
    c2.seed = 43;
    Domain a(smallConfig()), b(c2);
    EXPECT_NE(a.prototype(0), b.prototype(0));
}

TEST(Domain, NoiseWithinConfiguredRange)
{
    Domain d(smallConfig());
    for (int c = 0; c < 6; ++c) {
        EXPECT_GE(d.classNoise(c), smallConfig().noiseMin);
        EXPECT_LE(d.classNoise(c), smallConfig().noiseMax);
    }
}

TEST(Domain, SamplesCenterOnPrototype)
{
    Domain d(smallConfig());
    Rng rng(1);
    std::vector<double> mean(16, 0.0);
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        auto x = d.sample(2, rng);
        for (size_t k = 0; k < x.size(); ++k)
            mean[k] += x[k] / n;
    }
    const auto &proto = d.prototype(2);
    for (size_t k = 0; k < mean.size(); ++k)
        EXPECT_NEAR(mean[k], proto[k], 0.1);
}

TEST(Domain, BalancedDatasetHasEqualCounts)
{
    Domain d(smallConfig());
    Rng rng(2);
    Dataset data = d.makeBalancedDataset(25, rng);
    EXPECT_EQ(data.size(), 6u * 25u);
    for (int c = 0; c < 6; ++c)
        EXPECT_EQ(data.indicesOfClass(c).size(), 25u);
}

TEST(Domain, DatasetWithCustomCounts)
{
    Domain d(smallConfig());
    Rng rng(3);
    Dataset data = d.makeDataset({1, 0, 2, 0, 0, 3}, rng);
    EXPECT_EQ(data.size(), 6u);
    EXPECT_EQ(data.indicesOfClass(0).size(), 1u);
    EXPECT_EQ(data.indicesOfClass(1).size(), 0u);
    EXPECT_EQ(data.indicesOfClass(5).size(), 3u);
    EXPECT_THROW(d.makeDataset({1, 2}, rng), NazarError);
}

TEST(Domain, DatasetRowsAreShuffled)
{
    Domain d(smallConfig());
    Rng rng(4);
    Dataset data = d.makeBalancedDataset(20, rng);
    // Labels must not be sorted (the builder emits class-by-class,
    // so a sorted output would mean no shuffle happened).
    bool sorted = std::is_sorted(data.labels.begin(), data.labels.end());
    EXPECT_FALSE(sorted);
}

TEST(Domain, RejectsBadConfigs)
{
    DomainConfig c = smallConfig();
    c.numClasses = 1;
    EXPECT_THROW(Domain{c}, NazarError);
    c = smallConfig();
    c.featureDim = 4;
    EXPECT_THROW(Domain{c}, NazarError);
    c = smallConfig();
    c.noiseMin = -1.0;
    EXPECT_THROW(Domain{c}, NazarError);
    Domain ok(smallConfig());
    EXPECT_THROW(ok.prototype(6), NazarError);
    EXPECT_THROW(ok.classNoise(-1), NazarError);
}

TEST(Apps, CityscapesSpecMatchesPaper)
{
    AppSpec app = makeCityscapesApp();
    EXPECT_EQ(app.name, "cityscapes");
    EXPECT_EQ(app.domain.numClasses(), 10u);
    EXPECT_EQ(app.classNames.size(), 10u);
    EXPECT_GE(app.locations.size(), 10u); // European cities
}

TEST(Apps, AnimalsSpecMatchesPaper)
{
    AppSpec app = makeAnimalsApp();
    EXPECT_EQ(app.name, "animals");
    EXPECT_EQ(app.locations.size(), 7u); // 7 world locations
    EXPECT_EQ(app.devicesPerLocation, 16); // paper default
    EXPECT_NEAR(app.imagesPerDevicePerDay, 2.0, 1e-9); // paper default
    EXPECT_EQ(app.classNames.size(), app.domain.numClasses());
}

TEST(Apps, AnimalsClassCountConfigurable)
{
    AppSpec app = makeAnimalsApp(13, 60);
    EXPECT_EQ(app.domain.numClasses(), 60u);
    EXPECT_EQ(app.classNames.size(), 60u);
}

TEST(Apps, DeviceNaming)
{
    EXPECT_EQ(deviceName(42), "android_42");
    // Four brands cycling by id.
    EXPECT_EQ(deviceModel(0), deviceModel(4));
    EXPECT_NE(deviceModel(0), deviceModel(1));
}

} // namespace
} // namespace nazar::data
