/**
 * @file
 * Tests for the dataset container and builder.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "data/dataset.h"

namespace nazar::data {
namespace {

TEST(Dataset, AppendSingleSamples)
{
    Dataset d;
    EXPECT_TRUE(d.empty());
    d.append({1.0, 2.0}, 0);
    d.append({3.0, 4.0}, 1);
    EXPECT_EQ(d.size(), 2u);
    EXPECT_EQ(d.x(1, 0), 3.0);
    EXPECT_EQ(d.labels[1], 1);
    EXPECT_THROW(d.append({1.0}, 2), NazarError);
}

TEST(Dataset, AppendDataset)
{
    Dataset a, b;
    a.append({1.0}, 0);
    b.append({2.0}, 1);
    b.append({3.0}, 2);
    a.append(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.x(2, 0), 3.0);
    EXPECT_EQ(a.labels[2], 2);

    Dataset empty;
    a.append(empty);
    EXPECT_EQ(a.size(), 3u);
    empty.append(a);
    EXPECT_EQ(empty.size(), 3u);
}

TEST(Dataset, Subset)
{
    Dataset d;
    for (int i = 0; i < 5; ++i)
        d.append({static_cast<double>(i)}, i);
    Dataset s = d.subset({4, 0, 2});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.labels, (std::vector<int>{4, 0, 2}));
    EXPECT_EQ(s.x(0, 0), 4.0);
    EXPECT_THROW(d.subset({9}), NazarError);
}

TEST(Dataset, IndicesOfClass)
{
    Dataset d;
    d.append({0.0}, 1);
    d.append({0.0}, 2);
    d.append({0.0}, 1);
    EXPECT_EQ(d.indicesOfClass(1), (std::vector<size_t>{0, 2}));
    EXPECT_TRUE(d.indicesOfClass(7).empty());
}

TEST(Dataset, SplitFractions)
{
    Dataset d;
    for (int i = 0; i < 10; ++i)
        d.append({static_cast<double>(i)}, i);
    auto [a, b] = splitDataset(d, 0.3);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(b.size(), 7u);
    EXPECT_EQ(a.labels[0], 0);
    EXPECT_EQ(b.labels[0], 3);
    EXPECT_THROW(splitDataset(d, 1.5), NazarError);

    auto [none, all] = splitDataset(d, 0.0);
    EXPECT_TRUE(none.empty());
    EXPECT_EQ(all.size(), 10u);
}

TEST(DatasetBuilder, BuildsAndResets)
{
    DatasetBuilder b;
    for (int i = 0; i < 100; ++i)
        b.add({static_cast<double>(i), 1.0}, i % 3);
    EXPECT_EQ(b.size(), 100u);
    Dataset d = b.build();
    EXPECT_EQ(d.size(), 100u);
    EXPECT_EQ(d.x.cols(), 2u);
    EXPECT_EQ(d.x(50, 0), 50.0);
    EXPECT_EQ(d.labels[50], 50 % 3);
    // Builder resets after build().
    EXPECT_EQ(b.size(), 0u);
    EXPECT_TRUE(b.build().empty());
}

TEST(DatasetBuilder, RejectsRaggedRows)
{
    DatasetBuilder b;
    b.add({1.0, 2.0}, 0);
    EXPECT_THROW(b.add({1.0}, 0), NazarError);
}

TEST(DatasetBuilder, MatchesAppendSemantics)
{
    Dataset via_append;
    DatasetBuilder builder;
    for (int i = 0; i < 20; ++i) {
        std::vector<double> row = {i * 1.0, i * 2.0};
        via_append.append(row, i);
        builder.add(row, i);
    }
    Dataset via_builder = builder.build();
    EXPECT_TRUE(via_append.x.approxEquals(via_builder.x));
    EXPECT_EQ(via_append.labels, via_builder.labels);
}

} // namespace
} // namespace nazar::data
