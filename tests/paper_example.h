/**
 * @file
 * The worked example of the paper's §3.3 (Tables 2 and 3): a 5-entry
 * drift log from two devices in Helsinki and New York where the true
 * root cause is snowy weather and entry 3 is a detector false
 * positive. Shared by the RCA tests.
 */
#ifndef NAZAR_TESTS_PAPER_EXAMPLE_H
#define NAZAR_TESTS_PAPER_EXAMPLE_H

#include "driftlog/table.h"
#include "rca/fim.h"

namespace nazar::rca::testing {

/** Build the paper's Table 2 as a drift-log-shaped table. */
inline driftlog::Table
paperTable2()
{
    using driftlog::Schema;
    using driftlog::Table;
    using driftlog::Value;
    using driftlog::ValueType;

    Table t(Schema({{"time", ValueType::kString},
                    {"device_id", ValueType::kString},
                    {"weather", ValueType::kString},
                    {"location", ValueType::kString},
                    {"drift", ValueType::kBool}}));
    t.append({Value("06:02:01"), Value("android_42"), Value("clear-day"),
              Value("helsinki"), Value(false)});
    t.append({Value("06:02:23"), Value("android_21"), Value("clear-day"),
              Value("new_york"), Value(false)});
    t.append({Value("06:04:55"), Value("android_21"), Value("clear-day"),
              Value("new_york"), Value(true)}); // false positive
    t.append({Value("08:03:32"), Value("android_21"), Value("snow"),
              Value("new_york"), Value(true)});
    t.append({Value("11:05:01"), Value("android_42"), Value("snow"),
              Value("helsinki"), Value(true)});
    return t;
}

/** RCA config matching the paper's example (3 metadata attributes). */
inline RcaConfig
paperConfig()
{
    RcaConfig config;
    config.attributeColumns = {"weather", "location", "device_id"};
    return config;
}

/** Find a cause by attribute set in a ranked list; nullptr if absent. */
inline const RankedCause *
findCause(const std::vector<RankedCause> &causes, const AttributeSet &attrs)
{
    for (const auto &c : causes)
        if (c.attrs == attrs)
            return &c;
    return nullptr;
}

/** Shorthand attribute-set constructors for the example's values. */
inline AttributeSet
weatherIs(const std::string &value)
{
    return AttributeSet({{"weather", driftlog::Value(value)}});
}

inline AttributeSet
locationIs(const std::string &value)
{
    return AttributeSet({{"location", driftlog::Value(value)}});
}

inline AttributeSet
weatherAndLocation(const std::string &weather, const std::string &loc)
{
    return AttributeSet({{"weather", driftlog::Value(weather)},
                         {"location", driftlog::Value(loc)}});
}

} // namespace nazar::rca::testing

#endif // NAZAR_TESTS_PAPER_EXAMPLE_H
