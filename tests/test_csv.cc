/**
 * @file
 * Tests for CSV import/export of drift-log tables.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "driftlog/csv.h"
#include "driftlog/drift_log.h"

namespace nazar::driftlog {
namespace {

Schema
testSchema()
{
    return Schema({{"name", ValueType::kString},
                   {"count", ValueType::kInt},
                   {"ratio", ValueType::kDouble},
                   {"drift", ValueType::kBool}});
}

TEST(Csv, EscapeRules)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, SplitHandlesQuoting)
{
    EXPECT_EQ(csvSplit("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(csvSplit("\"a,b\",c"),
              (std::vector<std::string>{"a,b", "c"}));
    EXPECT_EQ(csvSplit("\"say \"\"hi\"\"\",x"),
              (std::vector<std::string>{"say \"hi\"", "x"}));
    EXPECT_EQ(csvSplit(""), (std::vector<std::string>{""}));
    EXPECT_EQ(csvSplit("a,,c"),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_THROW(csvSplit("\"unterminated"), NazarError);
}

TEST(Csv, ParseCellTypes)
{
    EXPECT_EQ(parseCell("42", ValueType::kInt).asInt(), 42);
    EXPECT_EQ(parseCell("-7", ValueType::kInt).asInt(), -7);
    EXPECT_EQ(parseCell("2.5", ValueType::kDouble).asDouble(), 2.5);
    EXPECT_TRUE(parseCell("true", ValueType::kBool).asBool());
    EXPECT_FALSE(parseCell("0", ValueType::kBool).asBool());
    EXPECT_EQ(parseCell("hello", ValueType::kString).asString(),
              "hello");
    EXPECT_TRUE(parseCell("", ValueType::kInt).isNull());
    EXPECT_THROW(parseCell("abc", ValueType::kInt), NazarError);
    EXPECT_THROW(parseCell("maybe", ValueType::kBool), NazarError);
}

TEST(Csv, RoundTripPreservesEverything)
{
    Table t(testSchema());
    t.append({Value("alpha"), Value(1), Value(0.5), Value(true)});
    t.append({Value("with,comma"), Value(-2), Value(1.25),
              Value(false)});
    t.append({Value("quote\"inside"), Value(3), Value(2.0),
              Value(true)});
    t.append({Value(), Value(), Value(), Value()}); // null row

    std::stringstream ss;
    writeCsv(t, ss);
    Table back = readCsv(testSchema(), ss);

    ASSERT_EQ(back.rowCount(), t.rowCount());
    for (size_t r = 0; r < t.rowCount(); ++r) {
        for (size_t c = 0; c < 3; ++c) {
            if (t.at(r, c).isNull())
                EXPECT_TRUE(back.at(r, c).isNull());
            else
                EXPECT_EQ(back.at(r, c), t.at(r, c))
                    << "row " << r << " col " << c;
        }
    }
}

TEST(Csv, HeaderValidation)
{
    std::stringstream wrong_width("name,count\n");
    EXPECT_THROW(readCsv(testSchema(), wrong_width), NazarError);
    std::stringstream wrong_name("name,count,ratio,flag\n");
    EXPECT_THROW(readCsv(testSchema(), wrong_name), NazarError);
    std::stringstream empty("");
    EXPECT_THROW(readCsv(testSchema(), empty), NazarError);
}

TEST(Csv, SkipsBlankLinesAndHandlesCrLf)
{
    std::stringstream ss(
        "name,count,ratio,drift\r\nfoo,1,0.5,true\r\n\r\n");
    Table t = readCsv(testSchema(), ss);
    ASSERT_EQ(t.rowCount(), 1u);
    EXPECT_EQ(t.at(0, "name").asString(), "foo");
    EXPECT_TRUE(t.at(0, "drift").asBool());
}

TEST(Csv, DriftLogRoundTrip)
{
    DriftLog log;
    for (int i = 0; i < 25; ++i) {
        DriftLogEntry e;
        e.time = SimDate(i % 7, i * 137 % 86400);
        e.deviceId = "android_" + std::to_string(i % 4);
        e.deviceModel = "pixel_6";
        e.location = i % 2 ? "oslo" : "new_york";
        e.weather = i % 3 ? "clear-day" : "snow";
        e.modelVersion = i % 5;
        e.drift = i % 3 == 0;
        log.add(e);
    }
    std::stringstream ss;
    writeCsv(log.table(), ss);
    Table back = readCsv(log.table().schema(), ss);
    ASSERT_EQ(back.rowCount(), 25u);
    for (size_t r = 0; r < 25; ++r) {
        EXPECT_EQ(back.at(r, columns::kDeviceId),
                  log.table().at(r, columns::kDeviceId));
        EXPECT_EQ(back.at(r, columns::kDrift),
                  log.table().at(r, columns::kDrift));
    }
}

} // namespace
} // namespace nazar::driftlog
