/**
 * @file
 * Tests for CSV import/export of drift-log tables.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "driftlog/csv.h"
#include "driftlog/drift_log.h"

namespace nazar::driftlog {
namespace {

Schema
testSchema()
{
    return Schema({{"name", ValueType::kString},
                   {"count", ValueType::kInt},
                   {"ratio", ValueType::kDouble},
                   {"drift", ValueType::kBool}});
}

TEST(Csv, EscapeRules)
{
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, SplitHandlesQuoting)
{
    EXPECT_EQ(csvSplit("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(csvSplit("\"a,b\",c"),
              (std::vector<std::string>{"a,b", "c"}));
    EXPECT_EQ(csvSplit("\"say \"\"hi\"\"\",x"),
              (std::vector<std::string>{"say \"hi\"", "x"}));
    EXPECT_EQ(csvSplit(""), (std::vector<std::string>{""}));
    EXPECT_EQ(csvSplit("a,,c"),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_THROW(csvSplit("\"unterminated"), NazarError);
}

TEST(Csv, ParseCellTypes)
{
    EXPECT_EQ(parseCell("42", ValueType::kInt).asInt(), 42);
    EXPECT_EQ(parseCell("-7", ValueType::kInt).asInt(), -7);
    EXPECT_EQ(parseCell("2.5", ValueType::kDouble).asDouble(), 2.5);
    EXPECT_TRUE(parseCell("true", ValueType::kBool).asBool());
    EXPECT_FALSE(parseCell("0", ValueType::kBool).asBool());
    EXPECT_EQ(parseCell("hello", ValueType::kString).asString(),
              "hello");
    EXPECT_TRUE(parseCell("", ValueType::kInt).isNull());
    EXPECT_THROW(parseCell("abc", ValueType::kInt), NazarError);
    EXPECT_THROW(parseCell("maybe", ValueType::kBool), NazarError);
}

TEST(Csv, RoundTripPreservesEverything)
{
    Table t(testSchema());
    t.append({Value("alpha"), Value(1), Value(0.5), Value(true)});
    t.append({Value("with,comma"), Value(-2), Value(1.25),
              Value(false)});
    t.append({Value("quote\"inside"), Value(3), Value(2.0),
              Value(true)});
    t.append({Value(), Value(), Value(), Value()}); // null row

    std::stringstream ss;
    writeCsv(t, ss);
    Table back = readCsv(testSchema(), ss);

    ASSERT_EQ(back.rowCount(), t.rowCount());
    for (size_t r = 0; r < t.rowCount(); ++r) {
        for (size_t c = 0; c < 3; ++c) {
            if (t.at(r, c).isNull())
                EXPECT_TRUE(back.at(r, c).isNull());
            else
                EXPECT_EQ(back.at(r, c), t.at(r, c))
                    << "row " << r << " col " << c;
        }
    }
}

TEST(Csv, HeaderValidation)
{
    std::stringstream wrong_width("name,count\n");
    EXPECT_THROW(readCsv(testSchema(), wrong_width), NazarError);
    std::stringstream wrong_name("name,count,ratio,flag\n");
    EXPECT_THROW(readCsv(testSchema(), wrong_name), NazarError);
    std::stringstream empty("");
    EXPECT_THROW(readCsv(testSchema(), empty), NazarError);
}

TEST(Csv, SkipsBlankLinesAndHandlesCrLf)
{
    std::stringstream ss(
        "name,count,ratio,drift\r\nfoo,1,0.5,true\r\n\r\n");
    Table t = readCsv(testSchema(), ss);
    ASSERT_EQ(t.rowCount(), 1u);
    EXPECT_EQ(t.at(0, "name").asString(), "foo");
    EXPECT_TRUE(t.at(0, "drift").asBool());
}

TEST(Csv, NullVersusEmptyString)
{
    // Two columns: a one-column all-NULL row would serialize as a
    // blank line, which the reader (by documented design) skips.
    Table t(Schema({{"s", ValueType::kString},
                    {"u", ValueType::kString}}));
    t.append({Value(), Value()});
    t.append({Value(std::string()), Value(std::string())});
    std::stringstream ss;
    writeCsv(t, ss);
    // NULL exports as a bare empty cell, the empty string as "".
    EXPECT_EQ(ss.str(), "s,u\n,\n\"\",\"\"\n");
    Table back = readCsv(t.schema(), ss);
    ASSERT_EQ(back.rowCount(), 2u);
    EXPECT_TRUE(back.at(0, 0).isNull());
    EXPECT_TRUE(back.at(0, 1).isNull());
    EXPECT_FALSE(back.at(1, 0).isNull());
    EXPECT_EQ(back.at(1, 0).asString(), "");
    EXPECT_EQ(back.at(1, 1).asString(), "");
}

TEST(Csv, NonFiniteDoublesRoundTrip)
{
    Table t(Schema({{"x", ValueType::kDouble}}));
    const double values[] = {
        std::numeric_limits<double>::quiet_NaN(),
        -std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        -0.0,
        1.0 / 3.0,
    };
    for (double v : values)
        t.append({Value(v)});
    std::stringstream ss;
    writeCsv(t, ss);
    Table back = readCsv(t.schema(), ss);
    ASSERT_EQ(back.rowCount(), std::size(values));
    for (size_t r = 0; r < std::size(values); ++r) {
        double got = back.at(r, 0).asDouble();
        if (std::isnan(values[r])) {
            EXPECT_TRUE(std::isnan(got)) << "row " << r;
            EXPECT_EQ(std::signbit(got), std::signbit(values[r]))
                << "row " << r;
        } else {
            EXPECT_EQ(got, values[r]) << "row " << r;
            EXPECT_EQ(std::signbit(got), std::signbit(values[r]))
                << "row " << r;
        }
    }
}

TEST(Csv, QuotedCellsMaySpanLines)
{
    Table t(Schema({{"a", ValueType::kString},
                    {"b", ValueType::kString}}));
    t.append({Value("first\nsecond,third"), Value("tail")});
    t.append({Value("\"quoted\"\nline"), Value("x,y")});
    std::stringstream ss;
    writeCsv(t, ss);
    Table back = readCsv(t.schema(), ss);
    ASSERT_EQ(back.rowCount(), 2u);
    EXPECT_EQ(back.at(0, 0).asString(), "first\nsecond,third");
    EXPECT_EQ(back.at(0, 1).asString(), "tail");
    EXPECT_EQ(back.at(1, 0).asString(), "\"quoted\"\nline");
    EXPECT_EQ(back.at(1, 1).asString(), "x,y");
}

TEST(Csv, PropertyRandomTablesRoundTrip)
{
    // Generative check over the codec's hard cases: random strings
    // over a hostile alphabet (commas, quotes, CR/LF, empty), random
    // doubles including non-finite bit patterns, NULLs in every
    // column, int extremes. A round trip must reproduce every cell's
    // type, nullness, and value.
    const char alphabet[] = {',', '"', '\n', '\r', 'a', 'Z', '0',
                             ' ', '\t', ';', '\\', '\''};
    Rng rng(20260805);
    for (int iter = 0; iter < 40; ++iter) {
        Table t(testSchema());
        size_t rows = rng.index(12);
        for (size_t r = 0; r < rows; ++r) {
            Value name;
            if (rng.index(8) != 0) { // 1-in-8 NULL
                std::string s;
                size_t len = rng.index(10);
                for (size_t i = 0; i < len; ++i)
                    s.push_back(
                        alphabet[rng.index(std::size(alphabet))]);
                name = Value(s);
            }
            Value count;
            switch (rng.index(4)) {
            case 0: break; // NULL
            case 1:
                count = Value(std::numeric_limits<int64_t>::min());
                break;
            case 2:
                count = Value(std::numeric_limits<int64_t>::max());
                break;
            default:
                count = Value(rng.uniformInt(-1000, 1000));
            }
            Value ratio;
            switch (rng.index(6)) {
            case 0: break; // NULL
            case 1:
                ratio = Value(std::numeric_limits<double>::quiet_NaN());
                break;
            case 2:
                ratio = Value(std::numeric_limits<double>::infinity());
                break;
            case 3:
                ratio = Value(-std::numeric_limits<double>::infinity());
                break;
            default:
                ratio = Value(rng.uniform(-1e12, 1e12));
            }
            Value drift;
            if (rng.index(5) != 0)
                drift = Value(rng.index(2) == 1);
            t.append({name, count, ratio, drift});
        }
        std::stringstream ss;
        writeCsv(t, ss);
        Table back = readCsv(testSchema(), ss);
        ASSERT_EQ(back.rowCount(), t.rowCount()) << "iter " << iter;
        for (size_t r = 0; r < t.rowCount(); ++r) {
            for (size_t c = 0; c < 4; ++c) {
                const Value &want = t.at(r, c);
                const Value &got = back.at(r, c);
                ASSERT_EQ(got.isNull(), want.isNull())
                    << "iter " << iter << " row " << r << " col " << c;
                if (want.isNull())
                    continue;
                if (c == 2 && std::isnan(want.asDouble()))
                    EXPECT_TRUE(std::isnan(got.asDouble()))
                        << "iter " << iter << " row " << r;
                else
                    EXPECT_EQ(got, want) << "iter " << iter << " row "
                                         << r << " col " << c;
            }
        }
    }
}

TEST(Csv, DriftLogRoundTrip)
{
    DriftLog log;
    for (int i = 0; i < 25; ++i) {
        DriftLogEntry e;
        e.time = SimDate(i % 7, i * 137 % 86400);
        e.deviceId = "android_" + std::to_string(i % 4);
        e.deviceModel = "pixel_6";
        e.location = i % 2 ? "oslo" : "new_york";
        e.weather = i % 3 ? "clear-day" : "snow";
        e.modelVersion = i % 5;
        e.drift = i % 3 == 0;
        log.add(e);
    }
    std::stringstream ss;
    writeCsv(log.table(), ss);
    Table back = readCsv(log.table().schema(), ss);
    ASSERT_EQ(back.rowCount(), 25u);
    for (size_t r = 0; r < 25; ++r) {
        EXPECT_EQ(back.at(r, columns::kDeviceId),
                  log.table().at(r, columns::kDeviceId));
        EXPECT_EQ(back.at(r, columns::kDrift),
                  log.table().at(r, columns::kDrift));
    }
}

} // namespace
} // namespace nazar::driftlog
