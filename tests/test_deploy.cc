/**
 * @file
 * Tests for model versioning: the consolidating pool and the
 * on-device version matcher.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "deploy/matcher.h"
#include "deploy/model_pool.h"

namespace nazar::deploy {
namespace {

using driftlog::Value;
using rca::AttributeSet;

ModelVersion
makeVersion(int64_t id, AttributeSet cause, double rr, int64_t t)
{
    ModelVersion v;
    v.id = id;
    v.cause = std::move(cause);
    v.riskRatio = rr;
    v.updatedAt = t;
    return v;
}

AttributeSet
weather(const std::string &w)
{
    return AttributeSet({{"weather", Value(w)}});
}

AttributeSet
weatherLoc(const std::string &w, const std::string &l)
{
    return AttributeSet({{"weather", Value(w)},
                         {"location", Value(l)}});
}

TEST(ModelPool, InstallAndLookup)
{
    ModelPool pool;
    pool.install(makeVersion(1, weather("snow"), 3.0, 1));
    pool.install(makeVersion(2, weather("rain"), 2.0, 2));
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_NE(pool.findByCause(weather("snow")), nullptr);
    EXPECT_EQ(pool.findByCause(weather("fog")), nullptr);
    EXPECT_EQ(pool.findById(2)->cause, weather("rain"));
    EXPECT_EQ(pool.findById(99), nullptr);
}

TEST(ModelPool, SameCauseReplacesOldVersion)
{
    ModelPool pool;
    pool.install(makeVersion(1, weather("snow"), 3.0, 1));
    size_t evicted = pool.install(makeVersion(2, weather("snow"), 3.5, 2));
    EXPECT_EQ(evicted, 1u);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.findByCause(weather("snow"))->id, 2);
}

TEST(ModelPool, CoarserCauseEvictsFinerOne)
{
    // Paper: "if an incoming model version has a root cause that is a
    // superset of an older model version, the older version gets
    // evicted" — a new {snow} version covers an old {snow, new_york}.
    ModelPool pool;
    pool.install(makeVersion(1, weatherLoc("snow", "new_york"), 2.0, 1));
    size_t evicted = pool.install(makeVersion(2, weather("snow"), 3.0, 2));
    EXPECT_EQ(evicted, 1u);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.findById(2)->cause, weather("snow"));
}

TEST(ModelPool, FinerCauseDoesNotEvictCoarserOne)
{
    ModelPool pool;
    pool.install(makeVersion(1, weather("snow"), 3.0, 1));
    size_t evicted =
        pool.install(makeVersion(2, weatherLoc("snow", "new_york"),
                                 2.0, 2));
    EXPECT_EQ(evicted, 0u);
    EXPECT_EQ(pool.size(), 2u);
}

TEST(ModelPool, LruEvictionBeyondCapacity)
{
    ModelPool pool(2);
    pool.install(makeVersion(1, weather("snow"), 1.0, 1));
    pool.install(makeVersion(2, weather("rain"), 1.0, 2));
    size_t evicted = pool.install(makeVersion(3, weather("fog"), 1.0, 3));
    EXPECT_EQ(evicted, 1u);
    EXPECT_EQ(pool.size(), 2u);
    // The least-recently-updated (snow, t=1) is gone.
    EXPECT_EQ(pool.findByCause(weather("snow")), nullptr);
    EXPECT_NE(pool.findByCause(weather("rain")), nullptr);
    EXPECT_NE(pool.findByCause(weather("fog")), nullptr);
}

TEST(ModelPool, SameCauseRefreshResetsRecency)
{
    ModelPool pool(2);
    pool.install(makeVersion(1, weather("snow"), 1.0, 1));
    pool.install(makeVersion(2, weather("rain"), 1.0, 2));
    // Refresh snow: it becomes most-recent; next install evicts rain.
    pool.install(makeVersion(3, weather("snow"), 1.0, 3));
    pool.install(makeVersion(4, weather("fog"), 1.0, 4));
    EXPECT_NE(pool.findByCause(weather("snow")), nullptr);
    EXPECT_EQ(pool.findByCause(weather("rain")), nullptr);
}

TEST(ModelPool, ZeroCapacityMeansUnbounded)
{
    ModelPool pool(0);
    for (int i = 0; i < 50; ++i)
        pool.install(makeVersion(i, weather("w" + std::to_string(i)),
                                 1.0, i));
    EXPECT_EQ(pool.size(), 50u);
}

TEST(ModelPool, RejectsCleanVersion)
{
    ModelPool pool;
    EXPECT_THROW(pool.install(makeVersion(1, AttributeSet(), 0.0, 1)),
                 NazarError);
}

TEST(ModelPool, VersionsOrderedMostRecentFirst)
{
    ModelPool pool;
    pool.install(makeVersion(1, weather("snow"), 1.0, 1));
    pool.install(makeVersion(2, weather("rain"), 1.0, 2));
    EXPECT_EQ(pool.versions().front().id, 2);
    EXPECT_EQ(pool.versions().back().id, 1);
}

TEST(ModelPool, LruEvictionIsByInstallRecencyNotVersionId)
{
    // Under an unreliable downlink, pushes can land out of id order
    // (a delayed older push arrives after a newer one). Eviction must
    // follow install recency, never the numeric version id.
    ModelPool pool(2);
    pool.install(makeVersion(30, weather("snow"), 1.0, 1));
    pool.install(makeVersion(10, weather("rain"), 1.0, 2));
    size_t evicted = pool.install(makeVersion(20, weather("fog"), 1.0, 3));
    EXPECT_EQ(evicted, 1u);
    // id 30 was installed first, so it is the LRU victim even though
    // it has the highest id.
    EXPECT_EQ(pool.findById(30), nullptr);
    EXPECT_NE(pool.findById(10), nullptr);
    EXPECT_NE(pool.findById(20), nullptr);
    EXPECT_EQ(pool.versions().front().id, 20);
    EXPECT_EQ(pool.versions().back().id, 10);
}

TEST(ModelPool, SameCauseReinstallRefreshesRecencyWithLowerId)
{
    // A late retransmission of an older same-cause version still
    // counts as the freshest install for that cause.
    ModelPool pool(2);
    pool.install(makeVersion(50, weather("snow"), 1.0, 5));
    pool.install(makeVersion(60, weather("rain"), 1.0, 6));
    pool.install(makeVersion(40, weather("snow"), 1.0, 7));
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.findByCause(weather("snow"))->id, 40);
    // snow is now most-recent, so the next capacity eviction takes rain.
    pool.install(makeVersion(70, weather("fog"), 1.0, 8));
    EXPECT_NE(pool.findByCause(weather("snow")), nullptr);
    EXPECT_EQ(pool.findByCause(weather("rain")), nullptr);
}

TEST(ModelPool, CapacityOneKeepsOnlyTheNewestInstall)
{
    ModelPool pool(1);
    size_t evictions = 0;
    evictions += pool.install(makeVersion(9, weather("snow"), 1.0, 1));
    evictions += pool.install(makeVersion(3, weather("rain"), 1.0, 2));
    evictions += pool.install(makeVersion(6, weather("fog"), 1.0, 3));
    EXPECT_EQ(evictions, 2u);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.versions().front().id, 6);
}

// ---- matcher ----------------------------------------------------------

AttributeSet
context(const std::string &w, const std::string &loc,
        const std::string &dev)
{
    return AttributeSet({{"weather", Value(w)},
                         {"location", Value(loc)},
                         {"device_id", Value(dev)}});
}

TEST(Matcher, CauseMatchingIsSubsetOfContext)
{
    EXPECT_TRUE(causeMatchesContext(
        weather("rain"), context("rain", "oslo", "android_1")));
    EXPECT_FALSE(causeMatchesContext(
        weather("snow"), context("rain", "oslo", "android_1")));
    EXPECT_TRUE(causeMatchesContext(
        weatherLoc("rain", "oslo"),
        context("rain", "oslo", "android_1")));
    EXPECT_FALSE(causeMatchesContext(
        weatherLoc("rain", "tibet"),
        context("rain", "oslo", "android_1")));
}

TEST(Matcher, NoMatchReturnsNull)
{
    ModelPool pool;
    pool.install(makeVersion(1, weather("snow"), 3.0, 1));
    EXPECT_EQ(selectVersion(pool,
                            context("rain", "oslo", "android_1")),
              nullptr);
    ModelPool empty;
    EXPECT_EQ(selectVersion(empty,
                            context("rain", "oslo", "android_1")),
              nullptr);
}

TEST(Matcher, MoreSpecificCauseWins)
{
    // Paper: "{rain, New York} has more attributes matching than
    // {rain}" for an input associated with both.
    ModelPool pool;
    pool.install(makeVersion(1, weather("rain"), 5.0, 5));
    pool.install(makeVersion(2, weatherLoc("rain", "new_york"), 2.0, 1));
    const ModelVersion *picked =
        selectVersion(pool, context("rain", "new_york", "android_1"));
    ASSERT_NE(picked, nullptr);
    EXPECT_EQ(picked->id, 2); // specificity beats recency and rank
}

TEST(Matcher, RecencyBreaksSpecificityTies)
{
    ModelPool pool;
    pool.install(makeVersion(1, weather("rain"), 9.0, 1));
    pool.install(
        makeVersion(2, AttributeSet({{"location", Value("oslo")}}),
                    1.0, 7));
    const ModelVersion *picked =
        selectVersion(pool, context("rain", "oslo", "android_1"));
    ASSERT_NE(picked, nullptr);
    EXPECT_EQ(picked->id, 2); // same size (1 attr), newer update wins
}

TEST(Matcher, RiskRatioBreaksFullTies)
{
    ModelPool pool;
    pool.install(makeVersion(1, weather("rain"), 2.0, 3));
    pool.install(
        makeVersion(2, AttributeSet({{"location", Value("oslo")}}),
                    6.0, 3));
    const ModelVersion *picked =
        selectVersion(pool, context("rain", "oslo", "android_1"));
    ASSERT_NE(picked, nullptr);
    EXPECT_EQ(picked->id, 2); // same size, same time: higher risk ratio
}

TEST(ModelVersion, DisplayString)
{
    ModelVersion v = makeVersion(7, weather("snow"), 3.25, 4);
    std::string s = v.toString();
    EXPECT_NE(s.find("v7"), std::string::npos);
    EXPECT_NE(s.find("snow"), std::string::npos);
    EXPECT_TRUE(makeVersion(1, AttributeSet(), 0, 0).isClean());
    EXPECT_FALSE(v.isClean());
}

} // namespace
} // namespace nazar::deploy
