/**
 * @file
 * Tests for the self-supervised adaptation methods (TENT, MEMO) and
 * the augmentation library.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "adapt/augment.h"
#include "adapt/memo.h"
#include "adapt/tent.h"
#include "common/error.h"
#include "data/corruption.h"
#include "data/domain.h"
#include "nn/loss.h"

namespace nazar::adapt {
namespace {

/** Shared fixture: a trained model plus clean and drifted data. */
struct AdaptFixture
{
    AdaptFixture()
    {
        data::DomainConfig dc;
        dc.numClasses = 8;
        dc.featureDim = 16;
        dc.prototypeScale = 0.8;
        dc.noiseMin = 0.5;
        dc.noiseMax = 1.0;
        dc.seed = 3;
        domain = std::make_unique<data::Domain>(dc);
        Rng rng(1);
        auto train = domain->makeBalancedDataset(80, rng);
        model = std::make_unique<nn::Classifier>(
            nn::Architecture::kResNet18, 16, 8, 5);
        nn::TrainConfig tc;
        tc.epochs = 25;
        model->trainSupervised(train.x, train.labels, tc);

        clean = domain->makeBalancedDataset(25, rng);
        data::Corruptor corr(16);
        data::DatasetBuilder b;
        for (size_t r = 0; r < clean.x.rows(); ++r)
            b.add(corr.apply(clean.x.rowVec(r),
                             data::CorruptionType::kFog, 3, rng),
                  clean.labels[r]);
        drifted = b.build();
    }

    std::unique_ptr<data::Domain> domain;
    std::unique_ptr<nn::Classifier> model;
    data::Dataset clean;
    data::Dataset drifted;
};

TEST(Tent, ReducesEntropyObjective)
{
    // TENT minimizes entropy under batch-statistics normalization
    // (Mode::kAdapt) — compare the objective in that mode before and
    // after adaptation, each measured on a throwaway clone so the
    // measurement forwards don't perturb the models under comparison.
    AdaptFixture f;
    auto adapt_mode_entropy = [&](const nn::Classifier &model) {
        nn::Classifier probe = model.clone();
        return nn::meanEntropy(
                   probe.net().forward(f.drifted.x, nn::Mode::kAdapt))
            .loss;
    };
    double before = adapt_mode_entropy(*f.model);
    nn::Classifier adapted = f.model->clone();
    AdaptConfig config;
    config.steps = 6;
    TentAdapter tent(config);
    tent.adapt(adapted, f.drifted.x);
    double after = adapt_mode_entropy(adapted);
    EXPECT_LT(after, before);
}

TEST(Tent, ImprovesAccuracyOnDriftedData)
{
    AdaptFixture f;
    nn::Classifier adapted = f.model->clone();
    double before = adapted.accuracy(f.drifted.x, f.drifted.labels);
    TentAdapter tent{AdaptConfig{}};
    tent.adapt(adapted, f.drifted.x);
    double after = adapted.accuracy(f.drifted.x, f.drifted.labels);
    EXPECT_GT(after, before + 0.05);
}

TEST(Tent, OnlyBatchNormStateChanges)
{
    AdaptFixture f;
    nn::Classifier adapted = f.model->clone();
    TentAdapter tent{AdaptConfig{}};
    tent.adapt(adapted, f.drifted.x);

    // BN patches differ...
    EXPECT_FALSE(
        adapted.bnPatch().approxEquals(f.model->bnPatch(), 1e-9));
    // ...but non-BN parameters are untouched: re-installing the
    // original BN patch restores the original function exactly.
    adapted.applyBnPatch(f.model->bnPatch());
    EXPECT_TRUE(adapted.logits(f.clean.x)
                    .approxEquals(f.model->logits(f.clean.x), 1e-9));
}

TEST(Tent, DeterministicGivenSeed)
{
    AdaptFixture f;
    nn::Classifier a = f.model->clone();
    nn::Classifier b = f.model->clone();
    TentAdapter tent{AdaptConfig{}};
    tent.adapt(a, f.drifted.x);
    tent.adapt(b, f.drifted.x);
    EXPECT_TRUE(a.bnPatch().approxEquals(b.bnPatch(), 1e-12));
}

TEST(Tent, RejectsTinyBatch)
{
    AdaptFixture f;
    nn::Classifier adapted = f.model->clone();
    TentAdapter tent{AdaptConfig{}};
    EXPECT_THROW(tent.adapt(adapted, nn::Matrix(1, 16)), NazarError);
}

TEST(Tent, ByCauseBeatsMixedAdaptation)
{
    // Core claim of §3.4: a model adapted on one cause outperforms a
    // model adapted on a mixture of causes when evaluated on that
    // cause's data.
    AdaptFixture f;
    Rng rng(7);
    data::Corruptor corr(16);

    // Mixture: fog + gaussian noise + impulse noise.
    data::DatasetBuilder b;
    auto src = f.domain->makeBalancedDataset(25, rng);
    const data::CorruptionType types[] = {
        data::CorruptionType::kFog,
        data::CorruptionType::kGaussianNoise,
        data::CorruptionType::kImpulseNoise};
    for (size_t r = 0; r < src.x.rows(); ++r)
        b.add(corr.apply(src.x.rowVec(r), types[r % 3], 3, rng),
              src.labels[r]);
    data::Dataset mixture = b.build();

    TentAdapter tent{AdaptConfig{}};
    nn::Classifier by_cause = f.model->clone();
    tent.adapt(by_cause, f.drifted.x); // fog only
    nn::Classifier adapt_all = f.model->clone();
    tent.adapt(adapt_all, mixture.x);

    double by_cause_acc =
        by_cause.accuracy(f.drifted.x, f.drifted.labels);
    double adapt_all_acc =
        adapt_all.accuracy(f.drifted.x, f.drifted.labels);
    EXPECT_GT(by_cause_acc, adapt_all_acc);
}

TEST(Memo, ReducesMarginalEntropy)
{
    AdaptFixture f;
    nn::Classifier adapted = f.model->clone();
    AdaptConfig config;
    config.steps = 2;
    config.maxInputs = 40;
    MemoAdapter memo(config);
    double final_loss = memo.adapt(adapted, f.drifted.x);
    EXPECT_GE(final_loss, 0.0);
    // The BN state must have moved.
    EXPECT_FALSE(
        adapted.bnPatch().approxEquals(f.model->bnPatch(), 1e-9));
}

TEST(Memo, RespectsMaxInputsCap)
{
    AdaptFixture f;
    AdaptConfig config;
    config.steps = 1;
    config.maxInputs = 1;
    MemoAdapter memo(config);
    nn::Classifier adapted = f.model->clone();
    // Must not throw and must finish quickly with a single input.
    EXPECT_NO_THROW(memo.adapt(adapted, f.drifted.x));
}

TEST(Memo, NamesAndConfig)
{
    MemoAdapter memo{AdaptConfig{}};
    TentAdapter tent{AdaptConfig{}};
    EXPECT_EQ(memo.name(), "memo");
    EXPECT_EQ(tent.name(), "tent");
    EXPECT_EQ(tent.config().batchSize, AdaptConfig{}.batchSize);
}

TEST(Augment, PreservesDimension)
{
    Rng rng(9);
    std::vector<double> x(16, 1.0);
    auto y = augmentOnce(x, rng);
    EXPECT_EQ(y.size(), x.size());
}

TEST(Augment, CopiesDiffer)
{
    Rng rng(10);
    std::vector<double> x(16, 1.0);
    nn::Matrix batch = augmentBatch(x, 6, rng);
    EXPECT_EQ(batch.rows(), 6u);
    EXPECT_EQ(batch.cols(), 16u);
    bool any_diff = false;
    for (size_t r = 1; r < batch.rows(); ++r)
        if (!(batch.rowVec(r) == batch.rowVec(0)))
            any_diff = true;
    EXPECT_TRUE(any_diff);
    EXPECT_THROW(augmentBatch(x, 1, rng), NazarError);
}

TEST(Augment, StaysCloseToSource)
{
    // Augmentations must be label-preserving perturbations, not
    // rewrites: the augmented copy stays within a bounded distance.
    Rng rng(11);
    std::vector<double> x(16);
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<double>(i % 5) - 2.0;
    for (int trial = 0; trial < 50; ++trial) {
        auto y = augmentOnce(x, rng);
        double dist = 0.0, norm = 0.0;
        for (size_t i = 0; i < x.size(); ++i) {
            dist += (y[i] - x[i]) * (y[i] - x[i]);
            norm += x[i] * x[i];
        }
        EXPECT_LT(std::sqrt(dist), 0.8 * std::sqrt(norm));
    }
}

} // namespace
} // namespace nazar::adapt
