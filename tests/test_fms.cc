/**
 * @file
 * Tests for the Fowlkes-Mallows score.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "rca/fms.h"

namespace nazar::rca {
namespace {

TEST(Fms, IdenticalClusteringsScoreOne)
{
    std::vector<int> labels = {0, 0, 1, 1, 2, 2, 2};
    EXPECT_NEAR(fowlkesMallows(labels, labels), 1.0, 1e-12);
}

TEST(Fms, LabelPermutationInvariant)
{
    std::vector<int> truth = {0, 0, 1, 1};
    std::vector<int> renamed = {1, 1, 0, 0};
    EXPECT_NEAR(fowlkesMallows(truth, renamed), 1.0, 1e-12);
}

TEST(Fms, CompletelyCrossedClusteringsScoreZero)
{
    std::vector<int> truth = {0, 0, 1, 1};
    std::vector<int> pred = {0, 1, 0, 1};
    EXPECT_NEAR(fowlkesMallows(truth, pred), 0.0, 1e-12);
}

TEST(Fms, KnownPartialValue)
{
    // Matches sklearn: FMS([0,0,1,1], [0,0,1,2]) = sqrt(1/1 * 1/2).
    std::vector<int> truth = {0, 0, 1, 1};
    std::vector<int> pred = {0, 0, 1, 2};
    EXPECT_NEAR(fowlkesMallows(truth, pred), std::sqrt(0.5), 1e-12);
}

TEST(Fms, SingleClusterVsSingletons)
{
    std::vector<int> one_cluster = {0, 0, 0, 0};
    std::vector<int> singletons = {0, 1, 2, 3};
    // No predicted pairs at all: score 0 by convention.
    EXPECT_NEAR(fowlkesMallows(one_cluster, singletons), 0.0, 1e-12);
    // Both all-singletons: identical clusterings.
    EXPECT_NEAR(fowlkesMallows(singletons, singletons), 1.0, 1e-12);
}

TEST(Fms, EmptyClusteringsScoreOne)
{
    EXPECT_NEAR(fowlkesMallows({}, {}), 1.0, 1e-12);
}

TEST(Fms, MismatchedLengthsRejected)
{
    EXPECT_THROW(fowlkesMallows({0, 1}, {0}), NazarError);
}

TEST(Fms, SymmetricInArguments)
{
    Rng rng(5);
    std::vector<int> a(200), b(200);
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<int>(rng.index(4));
        b[i] = static_cast<int>(rng.index(3));
    }
    EXPECT_NEAR(fowlkesMallows(a, b), fowlkesMallows(b, a), 1e-12);
}

TEST(Fms, ScoreWithinUnitInterval)
{
    Rng rng(6);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<int> a(100), b(100);
        for (size_t i = 0; i < a.size(); ++i) {
            a[i] = static_cast<int>(rng.index(5));
            b[i] = static_cast<int>(rng.index(5));
        }
        double s = fowlkesMallows(a, b);
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST(Fms, DegradesWithNoiseMonotonically)
{
    // Flipping a growing fraction of labels must lower the score.
    Rng rng(7);
    std::vector<int> truth(600);
    for (size_t i = 0; i < truth.size(); ++i)
        truth[i] = static_cast<int>(i % 4);
    double prev = 1.1;
    for (double flip : {0.0, 0.1, 0.3, 0.6}) {
        std::vector<int> pred = truth;
        for (auto &p : pred)
            if (rng.bernoulli(flip))
                p = static_cast<int>(rng.index(4));
        double s = fowlkesMallows(truth, pred);
        EXPECT_LT(s, prev + 1e-9);
        prev = s;
    }
}

} // namespace
} // namespace nazar::rca
