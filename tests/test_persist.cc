/**
 * @file
 * Tests for the durability layer: serialization, WAL torn-tail
 * handling, snapshot atomicity, crash-point injection, and the
 * headline property — an exhaustive sweep that crashes the cloud at
 * every write boundary of a scripted scenario, reopens the state
 * directory, and asserts recovery matches a never-crashed oracle.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/logging.h"
#include "data/apps.h"
#include "driftlog/csv.h"
#include "persist/cloud_persist.h"
#include "persist/crash_point.h"
#include "persist/serial.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "sim/cloud.h"

namespace nazar::persist {
namespace {

namespace fs = std::filesystem;

/** Unique scratch directory under the test's CWD, removed on exit. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        static int counter = 0;
        path = fs::current_path() /
               ("persist_test_" + tag + "_" + std::to_string(counter++));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

struct QuietLogs : ::testing::Test
{
    QuietLogs() { setLogLevel(LogLevel::kSilent); }
    ~QuietLogs() override { setLogLevel(LogLevel::kInfo); }
};

// ---- serial ---------------------------------------------------------

TEST(Serial, Crc32KnownVector)
{
    // The standard check value for reflected 0xEDB88320.
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
    uint32_t inc = crc32Update(0, "1234", 4);
    inc = crc32Update(inc, "56789", 5);
    EXPECT_EQ(inc, 0xCBF43926u);
}

TEST(Serial, ScalarRoundTrip)
{
    Writer w;
    w.putU8(200);
    w.putBool(true);
    w.putU32(0xDEADBEEFu);
    w.putU64(0x0123456789ABCDEFull);
    w.putI64(-42);
    w.putF64(-0.1);
    w.putString(std::string("hello\0world", 11)); // embedded NUL survives
    Reader r(w.bytes());
    EXPECT_EQ(r.getU8(), 200);
    EXPECT_TRUE(r.getBool());
    EXPECT_EQ(r.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.getI64(), -42);
    EXPECT_EQ(r.getF64(), -0.1);
    EXPECT_EQ(r.getString(), std::string("hello\0world", 11));
    EXPECT_TRUE(r.atEnd());
}

TEST(Serial, DoubleBitPatternsSurvive)
{
    const double values[] = {
        0.0, -0.0, 1.0 / 3.0,
        std::numeric_limits<double>::quiet_NaN(),
        -std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::denorm_min(),
    };
    Writer w;
    for (double v : values)
        w.putF64(v);
    Reader r(w.bytes());
    for (double v : values) {
        double got = r.getF64();
        uint64_t a, b;
        std::memcpy(&a, &v, 8);
        std::memcpy(&b, &got, 8);
        EXPECT_EQ(a, b);
    }
}

TEST(Serial, ReaderThrowsOnUnderrun)
{
    Writer w;
    w.putU32(7);
    Reader r(w.bytes());
    EXPECT_EQ(r.getU32(), 7u);
    EXPECT_THROW(r.getU32(), NazarError);
    // A declared string length past the end must not allocate blindly.
    Writer w2;
    w2.putU64(1ull << 40);
    Reader r2(w2.bytes());
    EXPECT_THROW(r2.getString(), NazarError);
}

TEST(Serial, ValueAndAttributeSetRoundTrip)
{
    Writer w;
    putValue(w, driftlog::Value());
    putValue(w, driftlog::Value(static_cast<int64_t>(-5)));
    putValue(w, driftlog::Value(2.5));
    putValue(w, driftlog::Value(true));
    putValue(w, driftlog::Value(std::string("snow")));
    rca::AttributeSet attrs({
        {"weather", driftlog::Value(std::string("snow"))},
        {"device_id", driftlog::Value(std::string("android_3"))},
    });
    putAttributeSet(w, attrs);

    Reader r(w.bytes());
    EXPECT_TRUE(getValue(r).isNull());
    EXPECT_EQ(getValue(r).asInt(), -5);
    EXPECT_EQ(getValue(r).asDouble(), 2.5);
    EXPECT_EQ(getValue(r).asBool(), true);
    EXPECT_EQ(getValue(r).asString(), "snow");
    EXPECT_EQ(getAttributeSet(r), attrs);
    EXPECT_TRUE(r.atEnd());
}

TEST(Serial, EntryAndUploadRoundTrip)
{
    driftlog::DriftLogEntry e;
    e.time = SimDate(5, 12345);
    e.deviceId = "android_7";
    e.deviceModel = "pixel_6";
    e.location = "tibet";
    e.weather = "snow";
    e.modelVersion = 42;
    e.drift = true;
    UploadRecord u;
    u.features = {1.0, -2.5, 0.0};
    u.context = rca::AttributeSet(
        {{"weather", driftlog::Value(std::string("snow"))}});
    u.driftFlag = true;

    Writer w;
    putEntry(w, e);
    putUpload(w, u);
    Reader r(w.bytes());
    driftlog::DriftLogEntry e2 = getEntry(r);
    EXPECT_EQ(e2.time.dayIndex(), e.time.dayIndex());
    EXPECT_EQ(e2.time.toDateTimeString(), e.time.toDateTimeString());
    EXPECT_EQ(e2.deviceId, e.deviceId);
    EXPECT_EQ(e2.deviceModel, e.deviceModel);
    EXPECT_EQ(e2.location, e.location);
    EXPECT_EQ(e2.weather, e.weather);
    EXPECT_EQ(e2.modelVersion, e.modelVersion);
    EXPECT_EQ(e2.drift, e.drift);
    UploadRecord u2 = getUpload(r);
    EXPECT_EQ(u2.features, u.features);
    EXPECT_EQ(u2.context, u.context);
    EXPECT_EQ(u2.driftFlag, u.driftFlag);
    EXPECT_TRUE(r.atEnd());
}

// ---- WAL ------------------------------------------------------------

TEST(WalTest, AppendScanRoundTrip)
{
    TempDir dir("wal_rt");
    fs::path log = dir.path / "wal.log";
    CrashInjector injector;
    {
        Wal wal(log, &injector);
        EXPECT_EQ(wal.append(WalRecordType::kIngest, "alpha"), 1u);
        EXPECT_EQ(wal.append(WalRecordType::kCycleCommit, "beta"), 2u);
        EXPECT_EQ(wal.append(WalRecordType::kFlush, ""), 3u);
        EXPECT_EQ(wal.lastSeq(), 3u);
    }
    WalScan scan = Wal::scan(log);
    EXPECT_TRUE(scan.validHeader);
    EXPECT_EQ(scan.truncatedBytes, 0u);
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[0].type, WalRecordType::kIngest);
    EXPECT_EQ(scan.records[0].payload, "alpha");
    EXPECT_EQ(scan.records[2].seq, 3u);

    // Reopening resumes the sequence counter after the existing tail.
    Wal wal(log, &injector);
    EXPECT_EQ(wal.records().size(), 3u);
    EXPECT_EQ(wal.append(WalRecordType::kIngest, "gamma"), 4u);
}

TEST(WalTest, TornTailIsTruncatedOnOpen)
{
    TempDir dir("wal_torn");
    fs::path log = dir.path / "wal.log";
    CrashInjector injector;
    {
        Wal wal(log, &injector);
        wal.append(WalRecordType::kIngest, "good record");
    }
    uintmax_t good_size = fs::file_size(log);
    {
        // Simulate a crash mid-append: a frame header promising more
        // bytes than the file holds.
        std::ofstream torn(log, std::ios::binary | std::ios::app);
        const char garbage[] = "\xFF\xFF\x00\x00partial";
        torn.write(garbage, sizeof(garbage) - 1);
    }
    Wal wal(log, &injector);
    EXPECT_GT(wal.truncatedBytes(), 0u);
    ASSERT_EQ(wal.records().size(), 1u);
    EXPECT_EQ(wal.records()[0].payload, "good record");
    EXPECT_EQ(fs::file_size(log), good_size);
    // The log stays appendable after truncation.
    EXPECT_EQ(wal.append(WalRecordType::kFlush, ""), 2u);
}

TEST(WalTest, CorruptRecordMarksTear)
{
    TempDir dir("wal_corrupt");
    fs::path log = dir.path / "wal.log";
    CrashInjector injector;
    {
        Wal wal(log, &injector);
        wal.append(WalRecordType::kIngest, "first");
        wal.append(WalRecordType::kIngest, "second");
    }
    // Flip one byte in the last record's payload: its CRC fails, so
    // the scan keeps only the records before it.
    uintmax_t size = fs::file_size(log);
    {
        std::fstream f(log,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(static_cast<std::streamoff>(size) - 1);
        f.put('X');
    }
    WalScan scan = Wal::scan(log);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].payload, "first");
    EXPECT_GT(scan.truncatedBytes, 0u);
}

TEST(WalTest, TruncateAllKeepsSeqCounting)
{
    TempDir dir("wal_trunc");
    fs::path log = dir.path / "wal.log";
    CrashInjector injector;
    Wal wal(log, &injector);
    wal.append(WalRecordType::kIngest, "a");
    wal.append(WalRecordType::kIngest, "b");
    wal.truncateAll();
    EXPECT_EQ(Wal::scan(log).records.size(), 0u);
    // Seqs keep counting: snapshots rely on uniqueness across history.
    EXPECT_EQ(wal.append(WalRecordType::kIngest, "c"), 3u);
}

TEST(WalTest, ScanOfMissingFileIsInvalid)
{
    TempDir dir("wal_missing");
    WalScan scan = Wal::scan(dir.path / "absent.log");
    EXPECT_FALSE(scan.validHeader);
    EXPECT_TRUE(scan.records.empty());
    EXPECT_FALSE(scan.unreadable); // not-exists is a fresh start
}

TEST(WalTest, RefusesToClobberAnUnreadablePath)
{
    // A WAL path that exists but cannot be read (here: it is a
    // directory, which fopen()s but fails the first fread) must never
    // be silently overwritten — that would destroy the only copy of
    // the state it cannot parse.
    TempDir dir("wal_unreadable");
    fs::path log = dir.path / "wal.log";
    fs::create_directories(log);
    WalScan scan = Wal::scan(log);
    EXPECT_TRUE(scan.unreadable);
    CrashInjector injector;
    EXPECT_THROW(Wal(log, &injector), NazarError);
    EXPECT_TRUE(fs::exists(log)); // still there, untouched
}

TEST(WalTest, AppendBufferedPlusSyncEqualsPerRecordAppends)
{
    TempDir dir("wal_group");
    fs::path grouped_log = dir.path / "grouped.log";
    fs::path single_log = dir.path / "single.log";
    CrashInjector injector;
    {
        Wal grouped(grouped_log, &injector);
        EXPECT_EQ(grouped.appendBuffered(WalRecordType::kIngest, "a"),
                  1u);
        EXPECT_EQ(grouped.appendBuffered(WalRecordType::kIngest, "b"),
                  2u);
        EXPECT_EQ(grouped.appendBuffered(WalRecordType::kIngest, "c"),
                  3u);
        grouped.sync(); // one flush for the whole batch
    }
    {
        Wal single(single_log, &injector);
        single.append(WalRecordType::kIngest, "a");
        single.append(WalRecordType::kIngest, "b");
        single.append(WalRecordType::kIngest, "c");
    }
    // Same bytes on disk: group commit changes durability timing, not
    // the log's contents.
    std::ifstream g(grouped_log, std::ios::binary);
    std::ifstream s(single_log, std::ios::binary);
    std::string gb((std::istreambuf_iterator<char>(g)),
                   std::istreambuf_iterator<char>());
    std::string sb((std::istreambuf_iterator<char>(s)),
                   std::istreambuf_iterator<char>());
    EXPECT_EQ(gb, sb);
    WalScan scan = Wal::scan(grouped_log);
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[2].payload, "c");
}

TEST(WalTest, FdatasyncModeAppendsAndReplays)
{
    TempDir dir("wal_fsync");
    fs::path log = dir.path / "wal.log";
    CrashInjector injector;
    {
        Wal wal(log, &injector, SyncMode::kFdatasync);
        EXPECT_EQ(wal.syncMode(), SyncMode::kFdatasync);
        wal.append(WalRecordType::kIngest, "durable");
        wal.appendBuffered(WalRecordType::kIngest, "batched");
        wal.sync();
    }
    WalScan scan = Wal::scan(log);
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.records[0].payload, "durable");
    EXPECT_EQ(scan.records[1].payload, "batched");
}

TEST(WalTest, SyncModeNamesRoundTrip)
{
    for (SyncMode mode :
         {SyncMode::kFlush, SyncMode::kFdatasync, SyncMode::kFsync})
        EXPECT_EQ(syncModeFromString(syncModeName(mode)), mode);
    EXPECT_THROW(syncModeFromString("bogus"), NazarError);
}

// ---- snapshots ------------------------------------------------------

SnapshotData
sampleSnapshot()
{
    SnapshotData data;
    data.lastWalSeq = 17;
    data.logicalTime = 3;
    data.nextVersionId = 9;
    data.totalIngested = 123;
    data.dedupHits = 4;
    driftlog::DriftLog log;
    driftlog::DriftLogEntry e;
    e.time = SimDate(2, 777);
    e.deviceId = "android_1";
    e.deviceModel = "pixel_6";
    e.location = "tibet";
    e.weather = "snow";
    e.drift = true;
    log.add(e);
    std::ostringstream csv;
    driftlog::writeCsv(log.table(), csv);
    data.driftLogCsv = csv.str();
    UploadRecord u;
    u.features = {0.5, -1.0};
    u.context = rca::AttributeSet(
        {{"weather", driftlog::Value(std::string("snow"))}});
    u.driftFlag = true;
    data.uploads.push_back(u);
    data.dedup[3] = DedupWindow{2, {5, 6, 9}};
    data.blobs.emplace_back("versions/1/meta", "meta-bytes");
    data.blobs.emplace_back("versions/1/patch", "patch-bytes");
    data.cleanPatchText = "fake patch text";
    data.cleanPatchTime = 2;
    return data;
}

void
expectSnapshotEq(const SnapshotData &a, const SnapshotData &b)
{
    EXPECT_EQ(a.lastWalSeq, b.lastWalSeq);
    EXPECT_EQ(a.logicalTime, b.logicalTime);
    EXPECT_EQ(a.nextVersionId, b.nextVersionId);
    EXPECT_EQ(a.totalIngested, b.totalIngested);
    EXPECT_EQ(a.dedupHits, b.dedupHits);
    EXPECT_EQ(a.driftLogCsv, b.driftLogCsv);
    ASSERT_EQ(a.uploads.size(), b.uploads.size());
    for (size_t i = 0; i < a.uploads.size(); ++i) {
        EXPECT_EQ(a.uploads[i].features, b.uploads[i].features);
        EXPECT_EQ(a.uploads[i].context, b.uploads[i].context);
        EXPECT_EQ(a.uploads[i].driftFlag, b.uploads[i].driftFlag);
    }
    EXPECT_EQ(a.dedup, b.dedup);
    EXPECT_EQ(a.blobs, b.blobs);
    EXPECT_EQ(a.cleanPatchText, b.cleanPatchText);
    EXPECT_EQ(a.cleanPatchTime, b.cleanPatchTime);
}

TEST(SnapshotTest, EncodeDecodeRoundTrip)
{
    SnapshotData data = sampleSnapshot();
    SnapshotData back = decodeSnapshot(encodeSnapshot(data));
    expectSnapshotEq(data, back);
}

TEST(SnapshotTest, FileRoundTripAndCorruptionFallback)
{
    TempDir dir("snap");
    fs::path tmp = dir.path / "snapshot.tmp";
    fs::path final = dir.path / "snapshot.bin";
    CrashInjector injector;
    Env env;
    SnapshotData data = sampleSnapshot();
    writeSnapshotFile(tmp, final, data, injector, env);
    EXPECT_FALSE(fs::exists(tmp)); // renamed over the final name
    auto loaded = loadSnapshotFile(final);
    ASSERT_TRUE(loaded.has_value());
    expectSnapshotEq(data, *loaded);

    // A flipped payload byte fails the checksum: treated as absent.
    uintmax_t size = fs::file_size(final);
    {
        std::fstream f(final,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(static_cast<std::streamoff>(size) - 1);
        f.put('X');
    }
    EXPECT_FALSE(loadSnapshotFile(final).has_value());
    EXPECT_FALSE(loadSnapshotFile(dir.path / "nope.bin").has_value());
}

TEST(SnapshotTest, DecodeRejectsTruncatedPayload)
{
    std::string payload = encodeSnapshot(sampleSnapshot());
    payload.resize(payload.size() / 2);
    EXPECT_THROW(decodeSnapshot(payload), NazarError);
}

// ---- crash injector -------------------------------------------------

TEST(CrashInjectorTest, DisarmedCountsWithoutFiring)
{
    CrashInjector injector;
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(injector.fires("site.a"));
    EXPECT_EQ(injector.hitCount(), 10u);
    EXPECT_EQ(injector.siteLog().size(), 10u);
}

TEST(CrashInjectorTest, FiresExactlyAtArmedHit)
{
    CrashInjector injector;
    injector.armAtHit(3);
    EXPECT_FALSE(injector.fires("a"));
    EXPECT_FALSE(injector.fires("b"));
    EXPECT_THROW(injector.check("c"), CrashInjected);
    // Past the armed hit it never fires again.
    EXPECT_FALSE(injector.fires("d"));
    try {
        CrashInjector again;
        again.armAtHit(1);
        again.check("the.site");
        FAIL() << "expected CrashInjected";
    } catch (const CrashInjected &e) {
        EXPECT_EQ(e.site(), "the.site");
        EXPECT_EQ(e.hit(), 1u);
    }
}

TEST(CrashInjectorTest, SeededHitIsInRangeAndDeterministic)
{
    for (uint64_t seed = 0; seed < 50; ++seed) {
        uint64_t hit = CrashInjector::seededHit(seed, 97);
        EXPECT_GE(hit, 1u);
        EXPECT_LE(hit, 97u);
        EXPECT_EQ(hit, CrashInjector::seededHit(seed, 97));
    }
    EXPECT_EQ(CrashInjector::seededHit(1, 0), 0u);
}

// ---- scripted cloud scenario + crash sweep --------------------------

data::AppSpec &
scriptApp()
{
    static data::AppSpec app = data::makeAnimalsApp(13, 8);
    return app;
}

nn::Classifier &
scriptBase()
{
    static nn::Classifier base(nn::Architecture::kResNet18,
                               scriptApp().domain.featureDim(),
                               scriptApp().domain.numClasses(), 5);
    return base;
}

sim::CloudConfig
scriptConfig(const std::string &dir, uint64_t crash_at)
{
    sim::CloudConfig config;
    config.minAdaptSamples = 4;
    config.ingestDedupWindow = 8; // small: exercises floor advancement
    config.persist.dir = dir;
    config.persist.snapshotEvery = 8; // snapshot often inside the script
    config.persist.crashAtHit = crash_at;
    return config;
}

driftlog::DriftLogEntry
scriptEntry(int i)
{
    driftlog::DriftLogEntry e;
    e.time = SimDate(i % 14, (i * 37) % 86400);
    int device = i % 3;
    e.deviceId = data::deviceName(device);
    e.deviceModel = data::deviceModel(device);
    e.location = "tibet";
    e.weather = i % 3 == 0 ? "snow" : "clear-day";
    e.drift = i % 3 == 0; // deterministic planted cause {weather=snow}
    return e;
}

std::optional<sim::Upload>
scriptUpload(int i)
{
    if (i % 4 == 3)
        return std::nullopt; // some entries arrive without a sample
    driftlog::DriftLogEntry e = scriptEntry(i);
    sim::Upload up;
    Rng rng(static_cast<uint64_t>(1000 + i));
    int label =
        static_cast<int>(rng.index(scriptApp().domain.numClasses()));
    up.features = scriptApp().domain.sample(label, rng);
    up.context = rca::AttributeSet({
        {driftlog::columns::kWeather, driftlog::Value(e.weather)},
        {driftlog::columns::kLocation, driftlog::Value(e.location)},
        {driftlog::columns::kDeviceId, driftlog::Value(e.deviceId)},
        {driftlog::columns::kDeviceModel,
         driftlog::Value(e.deviceModel)},
    });
    up.driftFlag = e.drift;
    return up;
}

/** Everything the sweep compares between a crashed run and the oracle. */
struct CloudState
{
    std::string driftCsv;
    size_t uploadCount = 0;
    size_t totalIngested = 0;
    size_t dedupHits = 0;
    int64_t nextVersionId = 1;
    int64_t logicalTime = 0;
    std::vector<int64_t> versionIds;
    std::vector<std::pair<std::string, std::string>> blobs;
    std::map<int64_t, DedupWindow> dedup;
};

CloudState
captureState(sim::Cloud &cloud)
{
    CloudState st;
    std::ostringstream csv;
    driftlog::writeCsv(cloud.driftLog().table(), csv);
    st.driftCsv = csv.str();
    st.uploadCount = cloud.uploadCount();
    st.totalIngested = cloud.totalIngested();
    st.dedupHits = cloud.dedupHits();
    st.nextVersionId = cloud.nextVersionId();
    st.logicalTime = cloud.logicalTime();
    st.versionIds = cloud.registry().versionIds();
    for (const auto &key : cloud.blobStore().list())
        st.blobs.emplace_back(key, cloud.blobStore().get(key));
    st.dedup = cloud.dedupSnapshot();
    return st;
}

/**
 * Run the scripted scenario against a cloud, surviving injected
 * crashes with the same retry discipline the runner uses: ingests
 * are retried (at-least-once; the dedup window absorbs the
 * retransmission), a cycle whose commit landed is not re-run, and
 * flushes are always retried (idempotent).
 */
std::unique_ptr<sim::Cloud>
driveScript(const std::string &dir, uint64_t crash_at, size_t *crashes,
            std::vector<std::string> *sites)
{
    sim::CloudConfig config = scriptConfig(dir, crash_at);
    auto cloud = std::make_unique<sim::Cloud>(config, scriptBase());
    nn::BnPatch clean = scriptBase().bnPatch();
    if (cloud->recoveredCleanPatch().has_value())
        clean = *cloud->recoveredCleanPatch();

    auto rebuild = [&](const CrashInjected &e) {
        if (sites != nullptr)
            sites->push_back(e.site());
        if (crashes != nullptr)
            ++*crashes;
        sim::CloudConfig recover = config;
        recover.persist.crashAtHit = 0;
        cloud.reset();
        cloud = std::make_unique<sim::Cloud>(recover, scriptBase());
        clean = cloud->recoveredCleanPatch().has_value()
                    ? *cloud->recoveredCleanPatch()
                    : scriptBase().bnPatch();
    };
    auto ingest = [&](int device, uint64_t seq, int i) {
        for (;;) {
            try {
                cloud->ingestFrom(device, seq, scriptEntry(i),
                                  scriptUpload(i));
                return;
            } catch (const CrashInjected &e) {
                rebuild(e);
            }
        }
    };
    auto cycle = [&]() {
        int64_t before = cloud->logicalTime();
        for (;;) {
            try {
                sim::CycleResult result = cloud->runCycle(clean);
                if (result.newCleanPatch.has_value())
                    clean = *result.newCleanPatch;
                return;
            } catch (const CrashInjected &e) {
                rebuild(e);
                if (cloud->logicalTime() > before)
                    return; // the commit record landed before the crash
            }
        }
    };
    auto flush = [&]() {
        for (;;) {
            try {
                cloud->flush();
                return;
            } catch (const CrashInjected &e) {
                rebuild(e);
            }
        }
    };

    // The script: two analysis cycles over planted-cause telemetry
    // with duplicate seqs sprinkled in, a baseline flush, and a tail
    // of pending rows left unanalyzed (so recovery has live buffers
    // to reconstruct).
    for (int i = 0; i < 24; ++i) {
        ingest(i % 3, static_cast<uint64_t>(i / 3), i);
        if (i % 5 == 0 && i > 0) // retransmission: must dedup
            ingest(i % 3, static_cast<uint64_t>(i / 3), i);
    }
    cycle();
    for (int i = 24; i < 44; ++i)
        ingest(i % 3, static_cast<uint64_t>(i / 3), i);
    cycle();
    for (int i = 44; i < 50; ++i)
        ingest(i % 3, static_cast<uint64_t>(i / 3), i);
    flush();
    for (int i = 50; i < 56; ++i)
        ingest(i % 3, static_cast<uint64_t>(i / 3), i);
    return cloud;
}

class PersistCloudTest : public QuietLogs
{
};

TEST_F(PersistCloudTest, PersistedRunMatchesInMemoryRun)
{
    // Persistence on (no crash) must not change a single observable
    // output relative to a cloud without the persist layer.
    TempDir dir("equiv");
    CloudState oracle =
        captureState(*driveScript("", 0, nullptr, nullptr));
    auto persisted =
        driveScript(dir.path.string(), 0, nullptr, nullptr);
    CloudState on = captureState(*persisted);
    EXPECT_EQ(on.driftCsv, oracle.driftCsv);
    EXPECT_EQ(on.uploadCount, oracle.uploadCount);
    EXPECT_EQ(on.totalIngested, oracle.totalIngested);
    EXPECT_EQ(on.dedupHits, oracle.dedupHits);
    EXPECT_EQ(on.nextVersionId, oracle.nextVersionId);
    EXPECT_EQ(on.logicalTime, oracle.logicalTime);
    EXPECT_EQ(on.versionIds, oracle.versionIds);
    EXPECT_EQ(on.blobs, oracle.blobs);
    EXPECT_EQ(on.dedup, oracle.dedup);
    // A disarmed injector draws no randomness; it only counts.
    EXPECT_GT(persisted->persistence()->injector().hitCount(), 0u);
}

TEST_F(PersistCloudTest, ReopenRestoresFullState)
{
    TempDir dir("reopen");
    CloudState before =
        captureState(*driveScript(dir.path.string(), 0, nullptr, nullptr));
    // A brand-new cloud over the same directory recovers everything.
    sim::Cloud reopened(scriptConfig(dir.path.string(), 0), scriptBase());
    CloudState after = captureState(reopened);
    EXPECT_EQ(after.driftCsv, before.driftCsv);
    EXPECT_EQ(after.uploadCount, before.uploadCount);
    EXPECT_EQ(after.totalIngested, before.totalIngested);
    EXPECT_EQ(after.dedupHits, before.dedupHits);
    EXPECT_EQ(after.nextVersionId, before.nextVersionId);
    EXPECT_EQ(after.logicalTime, before.logicalTime);
    EXPECT_EQ(after.versionIds, before.versionIds);
    EXPECT_EQ(after.blobs, before.blobs);
    EXPECT_EQ(after.dedup, before.dedup);
}

TEST_F(PersistCloudTest, NonDedupIngestIsReplayedToo)
{
    TempDir dir("plain_ingest");
    {
        sim::Cloud cloud(scriptConfig(dir.path.string(), 0),
                         scriptBase());
        for (int i = 0; i < 5; ++i)
            cloud.ingest(scriptEntry(i), scriptUpload(i));
    }
    sim::Cloud reopened(scriptConfig(dir.path.string(), 0),
                        scriptBase());
    EXPECT_EQ(reopened.driftLogSize(), 5u);
    EXPECT_EQ(reopened.totalIngested(), 5u);
    EXPECT_EQ(reopened.uploadCount(), 4u); // i=3 had no upload
}

TEST_F(PersistCloudTest, ExhaustiveCrashSweepMatchesOracle)
{
    // The oracle: the same script against an in-memory cloud.
    CloudState oracle =
        captureState(*driveScript("", 0, nullptr, nullptr));

    // Probe run: count every crash site the scenario reaches.
    uint64_t total_hits = 0;
    {
        TempDir dir("probe");
        auto cloud =
            driveScript(dir.path.string(), 0, nullptr, nullptr);
        total_hits = cloud->persistence()->injector().hitCount();
    }
    ASSERT_GT(total_hits, 0u);

    // Crash at every single write boundary, recover, finish the
    // script, and require the final state to match the oracle.
    std::set<std::string> fired_sites;
    for (uint64_t hit = 1; hit <= total_hits; ++hit) {
        TempDir dir("sweep_" + std::to_string(hit));
        size_t crashes = 0;
        std::vector<std::string> sites;
        auto cloud =
            driveScript(dir.path.string(), hit, &crashes, &sites);
        ASSERT_EQ(crashes, 1u) << "hit " << hit;
        fired_sites.insert(sites[0]);
        CloudState got = captureState(*cloud);
        EXPECT_EQ(got.driftCsv, oracle.driftCsv) << "hit " << hit;
        EXPECT_EQ(got.uploadCount, oracle.uploadCount) << "hit " << hit;
        EXPECT_EQ(got.totalIngested, oracle.totalIngested)
            << "hit " << hit;
        EXPECT_EQ(got.nextVersionId, oracle.nextVersionId)
            << "hit " << hit;
        EXPECT_EQ(got.logicalTime, oracle.logicalTime) << "hit " << hit;
        EXPECT_EQ(got.versionIds, oracle.versionIds) << "hit " << hit;
        EXPECT_EQ(got.blobs, oracle.blobs) << "hit " << hit;
        EXPECT_EQ(got.dedup, oracle.dedup) << "hit " << hit;
        // A crash after the WAL append but before the in-memory apply
        // makes the client's retry a retransmission; the dedup window
        // absorbs it, at the cost of at most one extra dedup hit.
        EXPECT_GE(got.dedupHits, oracle.dedupHits) << "hit " << hit;
        EXPECT_LE(got.dedupHits, oracle.dedupHits + crashes)
            << "hit " << hit;
    }
    // Every distinct crash site fired at least once in the sweep.
    const std::set<std::string> expected = {
        "wal.append.partial",  "wal.append.post",
        "wal.truncate.post",   "snapshot.tmp.partial",
        "snapshot.tmp.done",   "snapshot.rename.post",
    };
    EXPECT_EQ(fired_sites, expected);
}

TEST_F(PersistCloudTest, RecoverDirMatchesLiveState)
{
    TempDir dir("recover_dir");
    auto cloud =
        driveScript(dir.path.string(), 0, nullptr, nullptr);
    CloudState live = captureState(*cloud);
    // recoverDir() is read-only: it must see exactly what a reopened
    // cloud would adopt, and leave the files untouched.
    RecoveredState st =
        recoverDir(dir.path, /*dedup_window=*/8);
    std::ostringstream csv;
    driftlog::writeCsv(st.log.table(), csv);
    EXPECT_EQ(csv.str(), live.driftCsv);
    EXPECT_EQ(st.uploads.size(), live.uploadCount);
    EXPECT_EQ(st.totalIngested, live.totalIngested);
    EXPECT_EQ(st.nextVersionId, live.nextVersionId);
    EXPECT_EQ(st.logicalTime, live.logicalTime);
    EXPECT_EQ(st.dedup, live.dedup);
    RecoveredState again = recoverDir(dir.path, 8);
    EXPECT_EQ(again.totalIngested, st.totalIngested);
}

} // namespace
} // namespace nazar::persist
