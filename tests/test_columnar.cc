/**
 * @file
 * Property and differential tests for the dictionary-encoded column
 * store and the vectorized query path.
 *
 * The vectorized engine (dictionary-id predicates, dense group-by,
 * id-probing FIM) must be observationally identical — bit-for-bit —
 * to the retained row-at-a-time oracles (Condition::matches over
 * decoded Values, executeSqlNaive, Fim::mineReference). Randomized
 * workloads here drive both sides over the hostile corners of the
 * Value total order: NaN, ±inf, negative zero, NULL cells, empty
 * strings, int literals against double columns, and literals absent
 * from a column's dictionary.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "driftlog/csv.h"
#include "driftlog/plan.h"
#include "driftlog/query.h"
#include "driftlog/sql.h"
#include "rca/fim.h"
#include "runtime/thread_pool.h"

namespace nazar::driftlog {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---- column unit/property tests -----------------------------------------

TEST(Column, DictionarySortedAndDense)
{
    Column col(ValueType::kString);
    for (const char *s : {"pear", "apple", "pear", "fig", "apple"})
        col.append(Value(std::string(s)));
    ASSERT_EQ(col.size(), 5u);
    ASSERT_EQ(col.dictSize(), 3u);
    // Sorted dictionary, dense ids, id order == Value order.
    EXPECT_EQ(col.dictValue(0), Value(std::string("apple")));
    EXPECT_EQ(col.dictValue(1), Value(std::string("fig")));
    EXPECT_EQ(col.dictValue(2), Value(std::string("pear")));
    // Row decode survives the normalization pass.
    EXPECT_EQ(col.at(0), Value(std::string("pear")));
    EXPECT_EQ(col.at(3), Value(std::string("fig")));
    EXPECT_EQ(col.idAt(0), col.idAt(2));
}

TEST(Column, NullIsAnOrdinaryEntrySortingFirst)
{
    Column col(ValueType::kInt);
    col.append(Value(int64_t{7}));
    col.append(Value()); // NULL
    col.append(Value(int64_t{-2}));
    col.append(Value());
    EXPECT_EQ(col.nullCount(), 2u);
    ASSERT_EQ(col.dictSize(), 3u);
    EXPECT_TRUE(col.dictValue(0).isNull());
    EXPECT_EQ(col.dictValue(1), Value(int64_t{-2}));
    EXPECT_EQ(col.dictValue(2), Value(int64_t{7}));
    EXPECT_EQ(col.idAt(1), 0u);
}

TEST(Column, TotalOrderOverDoubles)
{
    Column col(ValueType::kDouble);
    for (double d : {1.5, kNaN, -kInf, 0.0, -0.0, kInf})
        col.append(Value(d));
    // totalOrder: -inf < -0.0 < 0.0 < 1.5 < +inf < NaN, six distinct
    // entries (negative zero is its own dictionary value).
    ASSERT_EQ(col.dictSize(), 6u);
    EXPECT_EQ(col.dictValue(0), Value(-kInf));
    EXPECT_EQ(col.dictValue(1), Value(-0.0));
    EXPECT_EQ(col.dictValue(2), Value(0.0));
    EXPECT_EQ(col.dictValue(3), Value(1.5));
    EXPECT_EQ(col.dictValue(4), Value(kInf));
    EXPECT_TRUE(std::isnan(col.dictValue(5).asDouble()));
    EXPECT_NE(col.idAt(3), col.idAt(4)); // 0.0 vs -0.0
}

TEST(Column, IdOfAndBoundsMatchBruteForce)
{
    Rng rng(2024);
    Column col(ValueType::kInt);
    std::vector<Value> cells;
    for (size_t i = 0; i < 500; ++i) {
        Value v = rng.bernoulli(0.1)
                      ? Value()
                      : Value(rng.uniformInt(-20, 20));
        col.append(v);
        cells.push_back(v);
    }
    // Probe present and absent values plus NULL.
    std::vector<Value> probes;
    for (int64_t x = -25; x <= 25; ++x)
        probes.push_back(Value(x));
    probes.push_back(Value());
    for (const Value &probe : probes) {
        bool present = false;
        size_t lt = 0, le = 0;
        for (const Value &dv : col.dictionary()) {
            if (dv == probe)
                present = true;
            if (dv < probe)
                ++lt;
            if (dv <= probe)
                ++le;
        }
        EXPECT_EQ(col.idOf(probe).has_value(), present);
        if (present)
            EXPECT_EQ(col.dictValue(*col.idOf(probe)), probe);
        EXPECT_EQ(col.lowerBound(probe), lt);
        EXPECT_EQ(col.upperBound(probe), le);
    }
    // materialize() is the exact decode of the appended cells.
    EXPECT_EQ(col.materialize(), cells);
}

TEST(Column, ClearRetainsTypeAndEmptiesDictionary)
{
    Column col(ValueType::kString);
    col.append(Value(std::string("x")));
    col.append(Value());
    col.clear();
    EXPECT_EQ(col.size(), 0u);
    EXPECT_EQ(col.dictSize(), 0u);
    EXPECT_EQ(col.nullCount(), 0u);
    col.append(Value(std::string("y")));
    EXPECT_EQ(col.at(0), Value(std::string("y")));
}

// ---- randomized workload generators -------------------------------------

/** Random table over the four cell types with hostile values. */
Table
randomTable(Rng &rng, size_t rows)
{
    Table t(Schema({{"tag", ValueType::kString},
                    {"num", ValueType::kDouble},
                    {"cnt", ValueType::kInt},
                    {"flag", ValueType::kBool}}));
    const double specials[] = {kNaN, kInf, -kInf, 0.0, -0.0,
                               std::numeric_limits<double>::denorm_min()};
    for (size_t i = 0; i < rows; ++i) {
        Value tag, num, cnt, flag;
        if (!rng.bernoulli(0.08)) {
            tag = rng.bernoulli(0.05)
                      ? Value(std::string())
                      : Value("s" + std::to_string(rng.index(6)));
        }
        if (!rng.bernoulli(0.08)) {
            num = rng.bernoulli(0.2)
                      ? Value(specials[rng.index(6)])
                      : Value(static_cast<double>(
                            rng.uniformInt(-4, 4)) /
                          2.0);
        }
        if (!rng.bernoulli(0.08))
            cnt = Value(rng.uniformInt(-5, 5));
        if (!rng.bernoulli(0.08))
            flag = Value(rng.bernoulli(0.5));
        t.append({tag, num, cnt, flag});
    }
    return t;
}

/** Random condition mixing present, absent and NULL literals. */
Condition
randomCondition(Rng &rng, const Table &t)
{
    static const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe,
                                    CompareOp::kLt, CompareOp::kLe,
                                    CompareOp::kGt, CompareOp::kGe};
    const char *names[] = {"tag", "num", "cnt", "flag"};
    std::string col = names[rng.index(4)];
    CompareOp op = ops[rng.index(6)];
    Value lit;
    double pick = rng.uniform();
    if (pick < 0.15) {
        lit = Value(); // NULL literal
    } else if (pick < 0.45) {
        // A value actually present in the column.
        const auto &dict = t.column(col).dictionary();
        lit = dict[rng.index(dict.size())];
    } else if (col == "tag") {
        lit = rng.bernoulli(0.5)
                  ? Value("s" + std::to_string(rng.index(8)))
                  : Value(std::string("absent"));
    } else if (col == "num") {
        // Half the time an int literal against the double column —
        // must widen identically on both paths.
        lit = rng.bernoulli(0.5)
                  ? Value(rng.uniformInt(-3, 3))
                  : Value(static_cast<double>(rng.uniformInt(-9, 9)) /
                          4.0);
    } else if (col == "cnt") {
        lit = Value(rng.uniformInt(-8, 8));
    } else {
        lit = Value(rng.bernoulli(0.5));
    }
    return Condition{col, op, lit};
}

// ---- fluent Query vs row-at-a-time oracle --------------------------------

TEST(ColumnarDifferential, QueryMatchesConditionOracle)
{
    Rng rng(7);
    for (size_t round = 0; round < 40; ++round) {
        Table t = randomTable(rng, 80 + rng.index(200));
        size_t n_conds = rng.index(3);
        Query q(t);
        std::vector<Condition> conds;
        for (size_t i = 0; i < n_conds; ++i) {
            Condition c = randomCondition(rng, t);
            q = q.where(c.column, c.op, c.value);
            conds.push_back(c);
        }
        // The oracle: Condition::matches per cell, after the same
        // widening Query::where applies (read back via conditions()).
        const std::vector<Condition> &bound = q.conditions();
        auto row_matches = [&](size_t r) {
            for (const auto &c : bound)
                if (!c.matches(t.at(r, c.column)))
                    return false;
            return true;
        };
        std::vector<size_t> expect_rows;
        for (size_t r = 0; r < t.rowCount(); ++r)
            if (row_matches(r))
                expect_rows.push_back(r);

        EXPECT_EQ(q.count(), expect_rows.size());
        EXPECT_EQ(q.select(), expect_rows);

        // Single-column group-by.
        std::map<Value, size_t> expect_single;
        for (size_t r : expect_rows)
            ++expect_single[t.at(r, "tag")];
        EXPECT_EQ(q.groupByCount("tag"), expect_single);

        // Multi-column group-by over hostile doubles.
        std::map<std::vector<Value>, size_t> expect_multi;
        for (size_t r : expect_rows)
            ++expect_multi[{t.at(r, "tag"), t.at(r, "num")}];
        EXPECT_EQ(q.groupByCount(
                      std::vector<std::string>{"tag", "num"}),
                  expect_multi);
    }
}

TEST(ColumnarDifferential, AbsentLiteralShortCircuits)
{
    Rng rng(11);
    Table t = randomTable(rng, 100);
    Query q = Query(t).where("tag", Value(std::string("never-there")));
    EXPECT_EQ(q.count(), 0u);
    EXPECT_TRUE(q.select().empty());
    EXPECT_TRUE(q.groupByCount("cnt").empty());
    // The binder reports it as impossible — no scan happens.
    auto preds = bindConditions(t, q.conditions());
    EXPECT_TRUE(anyImpossible(preds));
}

TEST(ColumnarDifferential, DistinctIsTheSortedDictionary)
{
    Rng rng(13);
    Table t = randomTable(rng, 150);
    for (const char *col : {"tag", "num", "cnt", "flag"}) {
        std::set<Value> brute;
        for (size_t r = 0; r < t.rowCount(); ++r)
            brute.insert(t.at(r, col));
        std::vector<Value> expect(brute.begin(), brute.end());
        EXPECT_EQ(t.distinct(col), expect) << col;
    }
}

// ---- SQL: vectorized engine vs executeSqlNaive ---------------------------

/** Render a literal as SQL text (strings here are quote-free). */
std::string
sqlLiteral(const Value &v)
{
    if (v.type() == ValueType::kString)
        return "'" + v.asString() + "'";
    return v.toString();
}

std::string
sqlOp(CompareOp op)
{
    switch (op) {
      case CompareOp::kEq: return "=";
      case CompareOp::kNe: return "!=";
      case CompareOp::kLt: return "<";
      case CompareOp::kLe: return "<=";
      case CompareOp::kGt: return ">";
      case CompareOp::kGe: return ">=";
    }
    return "=";
}

/** Random WHERE clause whose literals are expressible as SQL text
 *  (no NULL / NaN / inf literals — cells still contain them). */
std::string
randomWhereSql(Rng &rng, const Table &t, size_t n_conds)
{
    std::string sql;
    size_t emitted = 0;
    for (size_t i = 0; i < n_conds; ++i) {
        Condition c = randomCondition(rng, t);
        if (c.value.isNull())
            continue;
        if (c.value.type() == ValueType::kDouble) {
            // nan/inf/exponent renderings don't lex as SQL numbers.
            std::string text = c.value.toString();
            if (text.find_first_not_of("-0123456789.") !=
                std::string::npos)
                continue;
        }
        sql += emitted++ ? " AND " : " WHERE ";
        sql += c.column + " " + sqlOp(c.op) + " " + sqlLiteral(c.value);
    }
    return sql;
}

void
expectSameResult(const SqlResult &a, const SqlResult &b,
                 const std::string &sql)
{
    ASSERT_EQ(a.columns, b.columns) << sql;
    ASSERT_EQ(a.rows.size(), b.rows.size()) << sql;
    for (size_t r = 0; r < a.rows.size(); ++r)
        EXPECT_EQ(a.rows[r], b.rows[r]) << sql << " row " << r;
}

TEST(ColumnarDifferential, SqlMatchesNaiveOracle)
{
    Rng rng(23);
    for (size_t round = 0; round < 60; ++round) {
        Table t = randomTable(rng, 60 + rng.index(150));
        std::string where = randomWhereSql(rng, t, rng.index(3));
        std::string sql;
        switch (rng.index(5)) {
          case 0:
            sql = "SELECT COUNT(*) FROM t" + where;
            break;
          case 1:
            sql = "SELECT tag, num FROM t" + where +
                  " ORDER BY num LIMIT 17";
            break;
          case 2:
            sql = "SELECT * FROM t" + where;
            break;
          case 3:
            sql = "SELECT tag, COUNT(*) FROM t" + where +
                  " GROUP BY tag ORDER BY COUNT(*) DESC";
            break;
          default:
            sql = "SELECT tag, num, COUNT(*) FROM t" + where +
                  " GROUP BY tag, num ORDER BY COUNT(*) DESC LIMIT 9";
            break;
        }
        SqlResult fast = executeSql(t, "t", sql);
        SqlResult naive = executeSqlNaive(t, "t", sql);
        expectSameResult(fast, naive, sql);
    }
}

TEST(Sql, ExplainRendersPruningAndShortCircuit)
{
    Rng rng(31);
    Table t = randomTable(rng, 50);
    SqlResult plan = executeSql(
        t, "t",
        "EXPLAIN SELECT tag, COUNT(*) FROM t WHERE cnt >= 0 "
        "GROUP BY tag");
    ASSERT_EQ(plan.columns, std::vector<std::string>{"plan"});
    std::string text;
    for (const auto &row : plan.rows)
        text += row[0].asString() + "\n";
    EXPECT_NE(text.find("read 2/4 columns (tag, cnt)"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("pruned 2 (num, flag)"), std::string::npos)
        << text;
    EXPECT_NE(text.find("dense per-id counts"), std::string::npos);

    SqlResult none = executeSql(
        t, "t",
        "EXPLAIN SELECT COUNT(*) FROM t WHERE tag = 'never-there'");
    std::string none_text;
    for (const auto &row : none.rows)
        none_text += row[0].asString() + "\n";
    EXPECT_NE(none_text.find("0 rows"), std::string::npos) << none_text;

    // The naive oracle has no planner to render.
    EXPECT_THROW(executeSqlNaive(t, "t", "EXPLAIN SELECT * FROM t"),
                 NazarError);
}

// ---- FIM: id probes vs Value-comparing reference -------------------------

TEST(ColumnarDifferential, FimMatchesReferenceMiner)
{
    Rng rng(43);
    for (size_t round = 0; round < 8; ++round) {
        // Drift log shaped like the RCA workload, with NULL-free bool
        // drift column but NULLs allowed in the attributes.
        Table t(Schema({{"weather", ValueType::kString},
                        {"location", ValueType::kString},
                        {"severity", ValueType::kDouble},
                        {"drift", ValueType::kBool}}));
        size_t rows = 200 + rng.index(400);
        const double sev[] = {0.0, 1.0, 2.0, kNaN};
        for (size_t i = 0; i < rows; ++i) {
            Value w = rng.bernoulli(0.05)
                          ? Value()
                          : Value("w" + std::to_string(rng.index(4)));
            Value l = Value("l" + std::to_string(rng.index(3)));
            Value s = Value(sev[rng.index(4)]);
            bool drift =
                rng.bernoulli(w == Value(std::string("w1")) ? 0.7 : 0.2);
            t.append({w, l, s, Value(drift)});
        }
        rca::RcaConfig config;
        config.attributeColumns = {"weather", "location", "severity"};
        rca::Fim fim(t, config);
        for (size_t threads : {1u, 4u}) {
            runtime::setThreads(threads);
            auto fast = fim.mine();
            auto ref = fim.mineReference();
            ASSERT_EQ(fast.size(), ref.size());
            for (size_t i = 0; i < fast.size(); ++i) {
                EXPECT_EQ(fast[i].attrs.toString(),
                          ref[i].attrs.toString());
                EXPECT_EQ(fast[i].metrics.setCount,
                          ref[i].metrics.setCount);
                EXPECT_EQ(fast[i].metrics.setDriftCount,
                          ref[i].metrics.setDriftCount);
                // Metrics derive from identical integer counts via
                // identical arithmetic: exact double equality.
                EXPECT_EQ(fast[i].metrics.riskRatio,
                          ref[i].metrics.riskRatio);
                EXPECT_EQ(fast[i].metrics.confidence,
                          ref[i].metrics.confidence);
            }
        }
        runtime::setThreads(1);
    }
}

// ---- round-trips ---------------------------------------------------------

TEST(ColumnarRoundTrip, CsvPreservesDictionaryAndCells)
{
    Rng rng(57);
    for (size_t round = 0; round < 10; ++round) {
        Table t = randomTable(rng, 120);
        std::ostringstream first;
        writeCsv(t, first);
        std::istringstream in(first.str());
        Table back = readCsv(t.schema(), in);
        ASSERT_EQ(back.rowCount(), t.rowCount());
        for (size_t r = 0; r < t.rowCount(); ++r)
            for (size_t c = 0; c < t.schema().columnCount(); ++c)
                EXPECT_EQ(back.at(r, c), t.at(r, c));
        // Dictionaries rebuild identically from the decoded stream...
        for (size_t c = 0; c < t.schema().columnCount(); ++c) {
            EXPECT_EQ(back.column(c).dictionary(),
                      t.column(c).dictionary());
            EXPECT_EQ(back.column(c).nullCount(),
                      t.column(c).nullCount());
        }
        // ...and a second encode is byte-identical.
        std::ostringstream second;
        writeCsv(back, second);
        EXPECT_EQ(second.str(), first.str());
    }
}

TEST(ColumnarRoundTrip, QuotedCellsSurviveDictionaryEncode)
{
    // Two columns: a row whose string cell is NULL must not collapse
    // into an all-empty record (readCsv skips blank lines).
    Table t(Schema({{"s", ValueType::kString}, {"i", ValueType::kInt}}));
    int64_t i = 0;
    for (const char *s :
         {"plain", "comma,inside", "quote\"inside", "line\nbreak", "",
          "trailing\r"})
        t.append({Value(std::string(s)), Value(i++)});
    t.append({Value(), Value(i)}); // NULL vs "" must stay distinct
    std::ostringstream os;
    writeCsv(t, os);
    std::istringstream in(os.str());
    Table back = readCsv(t.schema(), in);
    ASSERT_EQ(back.rowCount(), t.rowCount());
    for (size_t r = 0; r < t.rowCount(); ++r)
        EXPECT_EQ(back.at(r, 0), t.at(r, 0)) << r;
    EXPECT_TRUE(back.at(6, 0).isNull());
    EXPECT_EQ(back.at(4, 0), Value(std::string()));
}

} // namespace
} // namespace nazar::driftlog
