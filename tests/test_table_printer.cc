/**
 * @file
 * Tests for the ASCII table renderer.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/table_printer.h"

namespace nazar {
namespace {

TEST(TablePrinter, RendersHeaderAndRows)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TablePrinter, ColumnsAreAligned)
{
    TablePrinter t({"a", "b"});
    t.addRow({"short", "x"});
    t.addRow({"a-much-longer-cell", "y"});
    std::string s = t.toString();
    // Every line must have the same width.
    std::istringstream is(s);
    std::string line;
    size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TablePrinter, RejectsMismatchedRow)
{
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), NazarError);
    EXPECT_THROW(TablePrinter({}), NazarError);
}

TEST(TablePrinter, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::pct(0.1234, 1), "12.3%");
    EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
}

TEST(TablePrinter, PrintStreams)
{
    TablePrinter t({"x"});
    t.addRow({"1"});
    std::ostringstream os;
    t.print(os);
    EXPECT_EQ(os.str(), t.toString());
}

} // namespace
} // namespace nazar
