/**
 * @file
 * Tests for the unreliable-transport layer: fault configuration,
 * pass-through bit-identity mode, retry/backoff/give-up, duplication,
 * delay carry-over, reorder, bounded-queue shedding, offline/crash
 * epochs, downlink push drops, and seed reproducibility.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "net/channel.h"
#include "net/fault.h"

namespace nazar::net {
namespace {

struct Delivery
{
    size_t device;
    uint64_t seq;
    int payload;

    bool
    operator==(const Delivery &o) const
    {
        return device == o.device && seq == o.seq && payload == o.payload;
    }
};

std::vector<Delivery>
drain(Channel<int> &channel)
{
    std::vector<Delivery> out;
    channel.deliver([&](size_t device, uint64_t seq, int &&payload) {
        out.push_back({device, seq, payload});
    });
    return out;
}

TEST(FaultConfig, AnyFaultsDetectsEveryKnob)
{
    EXPECT_FALSE(FaultConfig{}.anyFaults());
    auto one = [](auto set) {
        FaultConfig c;
        set(c);
        return c.anyFaults();
    };
    EXPECT_TRUE(one([](FaultConfig &c) { c.dropProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.dupProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.delayProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.reorderProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.offlineProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.crashProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.pushDropProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.queueCapacity = 4; }));
}

TEST(FaultConfig, BackoffIsCappedExponential)
{
    FaultConfig c;
    c.backoffBase = 1.0;
    c.backoffCap = 8.0;
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(1), 1.0);
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(2), 2.0);
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(3), 4.0);
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(4), 8.0);
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(5), 8.0); // capped
}

TEST(Channel, PassThroughPreservesSendOrderAndSeqs)
{
    Channel<int> channel(FaultConfig{}, 2);
    channel.beginEpoch(); // no-op in pass-through mode
    channel.send(0, 10);
    channel.send(1, 11);
    channel.send(0, 12);
    channel.send(1, 13);
    std::vector<Delivery> got = drain(channel);
    std::vector<Delivery> want = {
        {0, 0, 10}, {1, 0, 11}, {0, 1, 12}, {1, 1, 13}};
    EXPECT_EQ(got, want);
    EXPECT_EQ(channel.stats().sent, 4u);
    EXPECT_EQ(channel.stats().delivered, 4u);
    EXPECT_EQ(channel.stats().dropped, 0u);
    EXPECT_TRUE(channel.deliverPush(0)); // pushes always land
    EXPECT_TRUE(drain(channel).empty()); // nothing left
}

TEST(Channel, DropRetriesThenGivesUpAtAttemptCap)
{
    FaultConfig config;
    config.dropProb = 1.0;
    config.maxAttempts = 3;
    config.timeoutTicks = 1000.0;
    Channel<int> channel(config, 1);
    for (int i = 0; i < 5; ++i)
        channel.send(0, i);
    EXPECT_TRUE(drain(channel).empty());
    EXPECT_EQ(channel.stats().gaveUp, 5u);
    EXPECT_EQ(channel.stats().dropped, 15u); // 3 attempts per message
    EXPECT_EQ(channel.stats().retries, 10u); // 2 retries per message
    EXPECT_EQ(channel.stats().delivered, 0u);
}

TEST(Channel, TimeoutGivesUpBeforeAttemptCap)
{
    FaultConfig config;
    config.dropProb = 1.0;
    config.maxAttempts = 100;
    config.backoffBase = 1.0;
    config.timeoutTicks = 2.0; // 1 + 2 > 2 after the second failure
    Channel<int> channel(config, 1);
    channel.send(0, 7);
    EXPECT_TRUE(drain(channel).empty());
    EXPECT_EQ(channel.stats().gaveUp, 1u);
    EXPECT_EQ(channel.stats().dropped, 2u);
    EXPECT_EQ(channel.stats().retries, 1u);
}

TEST(Channel, DuplicateDeliversTheSameSeqTwice)
{
    FaultConfig config;
    config.dupProb = 1.0;
    Channel<int> channel(config, 1);
    for (int i = 0; i < 3; ++i)
        channel.send(0, i);
    std::vector<Delivery> got = drain(channel);
    ASSERT_EQ(got.size(), 6u);
    std::map<uint64_t, int> per_seq;
    for (const auto &d : got)
        ++per_seq[d.seq];
    for (const auto &[seq, count] : per_seq)
        EXPECT_EQ(count, 2) << "seq " << seq;
    EXPECT_EQ(channel.stats().duplicates, 3u);
}

TEST(Channel, DelayedMessagesArriveNextRound)
{
    FaultConfig config;
    config.delayProb = 1.0;
    Channel<int> channel(config, 1);
    channel.send(0, 1);
    channel.send(0, 2);
    EXPECT_TRUE(drain(channel).empty());
    EXPECT_EQ(channel.stats().delayed, 2u);
    std::vector<Delivery> second = drain(channel);
    EXPECT_EQ(second.size(), 2u);
    EXPECT_EQ(channel.stats().delivered, 2u);
}

TEST(Channel, BoundedQueueShedsOldestFirst)
{
    FaultConfig config;
    config.queueCapacity = 2;
    Channel<int> channel(config, 1);
    for (int i = 0; i < 5; ++i)
        channel.send(0, i);
    std::vector<Delivery> got = drain(channel);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].seq, 3u); // oldest (0,1,2) were shed
    EXPECT_EQ(got[1].seq, 4u);
    EXPECT_EQ(channel.stats().shed, 3u);
}

TEST(Channel, OfflineEpochHoldsQueueAndMissesPushes)
{
    FaultConfig config;
    config.offlineProb = 1.0;
    Channel<int> channel(config, 1);
    channel.beginEpoch();
    EXPECT_TRUE(channel.offline(0));
    channel.send(0, 5);
    EXPECT_TRUE(drain(channel).empty());
    EXPECT_FALSE(channel.deliverPush(0));
    EXPECT_GE(channel.stats().offlineEpochs, 1u);
    EXPECT_GE(channel.stats().pushDropped, 1u);
    EXPECT_EQ(channel.pendingCount(), 1u);
    channel.shutdown();
    EXPECT_EQ(channel.stats().undelivered, 1u);
}

TEST(Channel, CrashRestartLosesTheQueue)
{
    FaultConfig config;
    config.crashProb = 1.0;
    Channel<int> channel(config, 1);
    channel.send(0, 1);
    channel.send(0, 2);
    channel.beginEpoch(); // crash fires here
    EXPECT_GE(channel.stats().crashRestarts, 1u);
    EXPECT_EQ(channel.stats().shed, 2u);
    EXPECT_TRUE(drain(channel).empty());
}

TEST(Channel, ReorderStillDeliversEverythingExactlyOnce)
{
    FaultConfig config;
    config.reorderProb = 1.0;
    Channel<int> channel(config, 2);
    for (int i = 0; i < 25; ++i) {
        channel.send(0, i);
        channel.send(1, i);
    }
    std::vector<Delivery> got = drain(channel);
    ASSERT_EQ(got.size(), 50u);
    std::set<std::pair<size_t, uint64_t>> seen;
    for (const auto &d : got)
        seen.insert({d.device, d.seq});
    EXPECT_EQ(seen.size(), 50u); // every (device, seq) exactly once
    EXPECT_EQ(channel.stats().gaveUp, 0u);
}

/** Run a fully faulted two-epoch exchange and record what arrived. */
std::vector<Delivery>
faultedExchange(uint64_t seed)
{
    FaultConfig config;
    config.dropProb = 0.3;
    config.dupProb = 0.2;
    config.delayProb = 0.2;
    config.reorderProb = 0.5;
    config.offlineProb = 0.1;
    config.crashProb = 0.05;
    config.pushDropProb = 0.2;
    config.queueCapacity = 8;
    config.seed = seed;
    Channel<int> channel(config, 4);
    std::vector<Delivery> all;
    int payload = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
        channel.beginEpoch();
        for (int i = 0; i < 20; ++i)
            channel.send(static_cast<size_t>(i % 4), payload++);
        channel.deliver([&](size_t device, uint64_t seq, int &&p) {
            all.push_back({device, seq, p});
        });
        for (size_t d = 0; d < 4; ++d)
            all.push_back(
                {d, channel.deliverPush(d) ? 1u : 0u, -1});
    }
    return all;
}

TEST(Channel, ReproducibleFromTheFaultSeed)
{
    std::vector<Delivery> a = faultedExchange(41);
    std::vector<Delivery> b = faultedExchange(41);
    EXPECT_EQ(a, b);
    std::vector<Delivery> c = faultedExchange(42);
    EXPECT_NE(a, c); // 60 messages: a collision is astronomically rare
}

} // namespace
} // namespace nazar::net
