/**
 * @file
 * Tests for the unreliable-transport layer: fault configuration,
 * pass-through bit-identity mode, retry/backoff/give-up, duplication,
 * delay carry-over, reorder, bounded-queue shedding, offline/crash
 * epochs, downlink push drops, and seed reproducibility.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "net/channel.h"
#include "net/fault.h"
#include "sim/cloud.h"

namespace nazar::net {
namespace {

struct Delivery
{
    size_t device;
    uint64_t seq;
    int payload;

    bool
    operator==(const Delivery &o) const
    {
        return device == o.device && seq == o.seq && payload == o.payload;
    }
};

std::vector<Delivery>
drain(Channel<int> &channel)
{
    std::vector<Delivery> out;
    channel.deliver([&](size_t device, uint64_t seq, int &&payload) {
        out.push_back({device, seq, payload});
    });
    return out;
}

TEST(FaultConfig, AnyFaultsDetectsEveryKnob)
{
    EXPECT_FALSE(FaultConfig{}.anyFaults());
    auto one = [](auto set) {
        FaultConfig c;
        set(c);
        return c.anyFaults();
    };
    EXPECT_TRUE(one([](FaultConfig &c) { c.dropProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.dupProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.delayProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.reorderProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.offlineProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.crashProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.pushDropProb = 0.1; }));
    EXPECT_TRUE(one([](FaultConfig &c) { c.queueCapacity = 4; }));
}

TEST(FaultConfig, BackoffIsCappedExponential)
{
    FaultConfig c;
    c.backoffBase = 1.0;
    c.backoffCap = 8.0;
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(1), 1.0);
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(2), 2.0);
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(3), 4.0);
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(4), 8.0);
    EXPECT_DOUBLE_EQ(c.backoffBeforeRetry(5), 8.0); // capped
}

TEST(Channel, PassThroughPreservesSendOrderAndSeqs)
{
    Channel<int> channel(FaultConfig{}, 2);
    channel.beginEpoch(); // no-op in pass-through mode
    channel.send(0, 10);
    channel.send(1, 11);
    channel.send(0, 12);
    channel.send(1, 13);
    std::vector<Delivery> got = drain(channel);
    std::vector<Delivery> want = {
        {0, 0, 10}, {1, 0, 11}, {0, 1, 12}, {1, 1, 13}};
    EXPECT_EQ(got, want);
    EXPECT_EQ(channel.stats().sent, 4u);
    EXPECT_EQ(channel.stats().delivered, 4u);
    EXPECT_EQ(channel.stats().dropped, 0u);
    EXPECT_TRUE(channel.deliverPush(0)); // pushes always land
    EXPECT_TRUE(drain(channel).empty()); // nothing left
}

TEST(Channel, DropRetriesThenGivesUpAtAttemptCap)
{
    FaultConfig config;
    config.dropProb = 1.0;
    config.maxAttempts = 3;
    config.timeoutTicks = 1000.0;
    Channel<int> channel(config, 1);
    for (int i = 0; i < 5; ++i)
        channel.send(0, i);
    EXPECT_TRUE(drain(channel).empty());
    EXPECT_EQ(channel.stats().gaveUp, 5u);
    EXPECT_EQ(channel.stats().dropped, 15u); // 3 attempts per message
    EXPECT_EQ(channel.stats().retries, 10u); // 2 retries per message
    EXPECT_EQ(channel.stats().delivered, 0u);
}

TEST(Channel, TimeoutGivesUpBeforeAttemptCap)
{
    FaultConfig config;
    config.dropProb = 1.0;
    config.maxAttempts = 100;
    config.backoffBase = 1.0;
    config.timeoutTicks = 2.0; // 1 + 2 > 2 after the second failure
    Channel<int> channel(config, 1);
    channel.send(0, 7);
    EXPECT_TRUE(drain(channel).empty());
    EXPECT_EQ(channel.stats().gaveUp, 1u);
    EXPECT_EQ(channel.stats().dropped, 2u);
    EXPECT_EQ(channel.stats().retries, 1u);
}

TEST(Channel, DuplicateDeliversTheSameSeqTwice)
{
    FaultConfig config;
    config.dupProb = 1.0;
    Channel<int> channel(config, 1);
    for (int i = 0; i < 3; ++i)
        channel.send(0, i);
    std::vector<Delivery> got = drain(channel);
    ASSERT_EQ(got.size(), 6u);
    std::map<uint64_t, int> per_seq;
    for (const auto &d : got)
        ++per_seq[d.seq];
    for (const auto &[seq, count] : per_seq)
        EXPECT_EQ(count, 2) << "seq " << seq;
    EXPECT_EQ(channel.stats().duplicates, 3u);
}

TEST(Channel, DelayedMessagesArriveNextRound)
{
    FaultConfig config;
    config.delayProb = 1.0;
    Channel<int> channel(config, 1);
    channel.send(0, 1);
    channel.send(0, 2);
    EXPECT_TRUE(drain(channel).empty());
    EXPECT_EQ(channel.stats().delayed, 2u);
    std::vector<Delivery> second = drain(channel);
    EXPECT_EQ(second.size(), 2u);
    EXPECT_EQ(channel.stats().delivered, 2u);
}

TEST(Channel, BoundedQueueShedsOldestFirst)
{
    FaultConfig config;
    config.queueCapacity = 2;
    Channel<int> channel(config, 1);
    for (int i = 0; i < 5; ++i)
        channel.send(0, i);
    std::vector<Delivery> got = drain(channel);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].seq, 3u); // oldest (0,1,2) were shed
    EXPECT_EQ(got[1].seq, 4u);
    EXPECT_EQ(channel.stats().shed, 3u);
}

TEST(Channel, OfflineEpochHoldsQueueAndMissesPushes)
{
    FaultConfig config;
    config.offlineProb = 1.0;
    Channel<int> channel(config, 1);
    channel.beginEpoch();
    EXPECT_TRUE(channel.offline(0));
    channel.send(0, 5);
    EXPECT_TRUE(drain(channel).empty());
    EXPECT_FALSE(channel.deliverPush(0));
    EXPECT_GE(channel.stats().offlineEpochs, 1u);
    EXPECT_GE(channel.stats().pushDropped, 1u);
    EXPECT_EQ(channel.pendingCount(), 1u);
    channel.shutdown();
    EXPECT_EQ(channel.stats().undelivered, 1u);
}

TEST(Channel, CrashRestartLosesTheQueue)
{
    FaultConfig config;
    config.crashProb = 1.0;
    Channel<int> channel(config, 1);
    channel.send(0, 1);
    channel.send(0, 2);
    channel.beginEpoch(); // crash fires here
    EXPECT_GE(channel.stats().crashRestarts, 1u);
    // Crash-wiped messages are their own failure mode, not queue
    // pressure: they count as crashLost, never as shed.
    EXPECT_EQ(channel.stats().crashLost, 2u);
    EXPECT_EQ(channel.stats().shed, 0u);
    EXPECT_TRUE(drain(channel).empty());
}

TEST(Channel, OriginalPrecedesItsDuplicateOnATieKey)
{
    // A duplicated message and its copy share an identical
    // (latency, sendIndex) sort key; the original must win the tie so
    // a receiver's dedup window rejects the copy, not the original.
    FaultConfig config;
    config.dupProb = 1.0;
    config.reorderProb = 1.0; // jitter everything; ties must still hold
    Channel<int> channel(config, 1);
    for (int i = 0; i < 16; ++i)
        channel.send(0, i);
    struct Arrival
    {
        uint64_t seq;
        bool isDup;
    };
    std::vector<Arrival> got;
    channel.deliver(
        [&](size_t, uint64_t seq, int &&, bool is_dup) {
            got.push_back({seq, is_dup});
        });
    ASSERT_EQ(got.size(), 32u);
    std::set<uint64_t> seen;
    for (const auto &a : got) {
        if (seen.insert(a.seq).second)
            EXPECT_FALSE(a.isDup) << "first arrival of seq " << a.seq
                                  << " was the duplicate";
        else
            EXPECT_TRUE(a.isDup) << "second arrival of seq " << a.seq
                                 << " was not the duplicate";
    }
    EXPECT_EQ(seen.size(), 16u);
}

TEST(Channel, CloudIngestAcceptsTheOriginalOnADupDraw)
{
    // End-to-end form of the tie-break regression: drive a real
    // Cloud's idempotent ingest off the faulted channel and check the
    // dedup window always admits the original and rejects the copy.
    FaultConfig config;
    config.dupProb = 1.0;
    Channel<driftlog::DriftLogEntry> channel(config, 1);
    nn::Classifier base(nn::Architecture::kResNet18, 8, 4, 1);
    sim::Cloud cloud(sim::CloudConfig{}, base);
    for (int i = 0; i < 6; ++i) {
        driftlog::DriftLogEntry entry;
        entry.time = SimDate(i, 0);
        entry.deviceId = "dev-0";
        entry.location = "park";
        channel.send(0, std::move(entry));
    }
    channel.deliver([&](size_t device, uint64_t seq,
                        driftlog::DriftLogEntry &&entry, bool is_dup) {
        bool accepted = cloud.ingestFrom(static_cast<int>(device), seq,
                                         entry, std::nullopt);
        EXPECT_EQ(accepted, !is_dup)
            << "seq " << seq << ": dedup admitted the duplicate";
    });
    EXPECT_EQ(cloud.totalIngested(), 6u);
    EXPECT_EQ(cloud.dedupHits(), 6u);
}

TEST(Channel, ShutdownCountsQueuedDelayedAndReadyAsUndelivered)
{
    // Pass-through: sends sit in the ready list until delivered.
    Channel<int> ready_only(FaultConfig{}, 1);
    ready_only.send(0, 1);
    ready_only.send(0, 2);
    ready_only.send(0, 3);
    EXPECT_EQ(ready_only.pendingCount(), 3u);
    ready_only.shutdown();
    EXPECT_EQ(ready_only.stats().undelivered, 3u);
    EXPECT_EQ(ready_only.pendingCount(), 0u);

    // Delayed: held arrivals past the last round are undelivered too.
    FaultConfig delay;
    delay.delayProb = 1.0;
    Channel<int> delayed(delay, 1);
    delayed.send(0, 1);
    delayed.send(0, 2);
    EXPECT_TRUE(drain(delayed).empty());
    EXPECT_EQ(delayed.pendingCount(), 2u);
    delayed.shutdown();
    EXPECT_EQ(delayed.stats().undelivered, 2u);

    // Offline device queue: never flushed before the run ends.
    FaultConfig off;
    off.offlineProb = 1.0;
    Channel<int> queued(off, 1);
    queued.beginEpoch();
    queued.send(0, 9);
    EXPECT_TRUE(drain(queued).empty());
    EXPECT_EQ(queued.pendingCount(), 1u);
    queued.shutdown();
    EXPECT_EQ(queued.stats().undelivered, 1u);
    // Shutdown is terminal for the queues, not cumulative.
    queued.shutdown();
    EXPECT_EQ(queued.stats().undelivered, 1u);
}

TEST(Channel, ReorderStillDeliversEverythingExactlyOnce)
{
    FaultConfig config;
    config.reorderProb = 1.0;
    Channel<int> channel(config, 2);
    for (int i = 0; i < 25; ++i) {
        channel.send(0, i);
        channel.send(1, i);
    }
    std::vector<Delivery> got = drain(channel);
    ASSERT_EQ(got.size(), 50u);
    std::set<std::pair<size_t, uint64_t>> seen;
    for (const auto &d : got)
        seen.insert({d.device, d.seq});
    EXPECT_EQ(seen.size(), 50u); // every (device, seq) exactly once
    EXPECT_EQ(channel.stats().gaveUp, 0u);
}

/** Run a fully faulted two-epoch exchange and record what arrived. */
std::vector<Delivery>
faultedExchange(uint64_t seed)
{
    FaultConfig config;
    config.dropProb = 0.3;
    config.dupProb = 0.2;
    config.delayProb = 0.2;
    config.reorderProb = 0.5;
    config.offlineProb = 0.1;
    config.crashProb = 0.05;
    config.pushDropProb = 0.2;
    config.queueCapacity = 8;
    config.seed = seed;
    Channel<int> channel(config, 4);
    std::vector<Delivery> all;
    int payload = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
        channel.beginEpoch();
        for (int i = 0; i < 20; ++i)
            channel.send(static_cast<size_t>(i % 4), payload++);
        channel.deliver([&](size_t device, uint64_t seq, int &&p) {
            all.push_back({device, seq, p});
        });
        for (size_t d = 0; d < 4; ++d)
            all.push_back(
                {d, channel.deliverPush(d) ? 1u : 0u, -1});
    }
    return all;
}

TEST(Channel, ReproducibleFromTheFaultSeed)
{
    std::vector<Delivery> a = faultedExchange(41);
    std::vector<Delivery> b = faultedExchange(41);
    EXPECT_EQ(a, b);
    std::vector<Delivery> c = faultedExchange(42);
    EXPECT_NE(a, c); // 60 messages: a collision is astronomically rare
}

} // namespace
} // namespace nazar::net
