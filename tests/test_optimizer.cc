/**
 * @file
 * Tests for SGD and Adam.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "nn/optimizer.h"

namespace nazar::nn {
namespace {

/** dL/dp for L = 0.5 * sum((p - target)^2). */
void
quadraticGrad(Param &p, const Matrix &target)
{
    p.zeroGrad();
    for (size_t r = 0; r < p.value.rows(); ++r)
        for (size_t c = 0; c < p.value.cols(); ++c)
            p.grad(r, c) = p.value(r, c) - target(r, c);
}

TEST(Sgd, ConvergesOnQuadratic)
{
    Param p(Matrix::fromRows({{10.0, -8.0}}));
    Matrix target = Matrix::fromRows({{1.0, 2.0}});
    Sgd opt({&p}, /*lr=*/0.1, /*momentum=*/0.0);
    for (int i = 0; i < 200; ++i) {
        quadraticGrad(p, target);
        opt.step();
    }
    EXPECT_TRUE(p.value.approxEquals(target, 1e-4));
}

TEST(Sgd, MomentumAcceleratesDescent)
{
    Param plain(Matrix::fromRows({{10.0}}));
    Param heavy(Matrix::fromRows({{10.0}}));
    Matrix target = Matrix::fromRows({{0.0}});
    Sgd slow({&plain}, 0.01, 0.0);
    Sgd fast({&heavy}, 0.01, 0.9);
    for (int i = 0; i < 50; ++i) {
        quadraticGrad(plain, target);
        slow.step();
        quadraticGrad(heavy, target);
        fast.step();
    }
    EXPECT_LT(std::abs(heavy.value(0, 0)), std::abs(plain.value(0, 0)));
}

TEST(Sgd, WeightDecayShrinksParameters)
{
    Param p(Matrix::fromRows({{4.0}}));
    Sgd opt({&p}, 0.1, 0.0, /*weight_decay=*/0.5);
    p.zeroGrad(); // pure decay, no loss gradient
    opt.step();
    EXPECT_NEAR(p.value(0, 0), 4.0 - 0.1 * 0.5 * 4.0, 1e-12);
}

TEST(Sgd, RejectsNonPositiveLearningRate)
{
    Param p(Matrix(1, 1));
    EXPECT_THROW(Sgd({&p}, 0.0), NazarError);
}

TEST(Adam, ConvergesOnQuadratic)
{
    Param p(Matrix::fromRows({{10.0, -8.0, 3.0}}));
    Matrix target = Matrix::fromRows({{1.0, 2.0, -1.0}});
    Adam opt({&p}, /*lr=*/0.3);
    for (int i = 0; i < 500; ++i) {
        quadraticGrad(p, target);
        opt.step();
    }
    EXPECT_TRUE(p.value.approxEquals(target, 1e-3));
}

TEST(Adam, FirstStepIsLearningRateSized)
{
    // With bias correction, the first Adam step is ~lr in magnitude
    // regardless of gradient scale.
    Param big(Matrix::fromRows({{0.0}}));
    Param small(Matrix::fromRows({{0.0}}));
    Adam opt_big({&big}, 0.1);
    Adam opt_small({&small}, 0.1);
    big.grad(0, 0) = 1000.0;
    small.grad(0, 0) = 0.001;
    opt_big.step();
    opt_small.step();
    EXPECT_NEAR(big.value(0, 0), -0.1, 1e-3);
    EXPECT_NEAR(small.value(0, 0), -0.1, 1e-3);
}

TEST(Optimizer, ZeroGradsClearsAll)
{
    Param a(Matrix::fromRows({{1.0}}));
    Param b(Matrix::fromRows({{2.0, 3.0}}));
    a.grad.fill(5.0);
    b.grad.fill(7.0);
    Sgd opt({&a, &b}, 0.1);
    opt.zeroGrads();
    EXPECT_EQ(a.grad.maxAbs(), 0.0);
    EXPECT_EQ(b.grad.maxAbs(), 0.0);
}

TEST(Optimizer, MultipleParamsUpdatedIndependently)
{
    Param a(Matrix::fromRows({{5.0}}));
    Param b(Matrix::fromRows({{-5.0}}));
    Matrix ta = Matrix::fromRows({{0.0}});
    Matrix tb = Matrix::fromRows({{0.0}});
    Sgd opt({&a, &b}, 0.5, 0.0);
    for (int i = 0; i < 100; ++i) {
        quadraticGrad(a, ta);
        quadraticGrad(b, tb);
        opt.step();
    }
    EXPECT_NEAR(a.value(0, 0), 0.0, 1e-6);
    EXPECT_NEAR(b.value(0, 0), 0.0, 1e-6);
}

} // namespace
} // namespace nazar::nn
