/**
 * @file
 * Tests for the ingest wire protocol: frame encode/parse round-trips
 * under arbitrary chunking, corrupt-frame rejection (truncation, CRC,
 * oversize, unknown type), string-dictionary lockstep and idempotent
 * re-defines, and the interned kIngest payload codec.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "net/wire.h"

namespace nazar::net {
namespace {

/** Feed @p bytes to a parser in chunks of @p chunk and collect. */
std::vector<Frame>
parseChunked(const std::string &bytes, size_t chunk)
{
    FrameParser parser;
    std::vector<Frame> frames;
    for (size_t i = 0; i < bytes.size(); i += chunk) {
        parser.feed(bytes.data() + i,
                    std::min(chunk, bytes.size() - i));
        while (auto frame = parser.next())
            frames.push_back(std::move(*frame));
    }
    return frames;
}

TEST(FrameParser, RoundTripsAtEveryChunking)
{
    std::string stream = encodeFrame(MsgType::kHello, "alpha") +
                         encodeFrame(MsgType::kAck, std::string()) +
                         encodeFrame(MsgType::kIngest,
                                     std::string("\x00\x01\x02", 3));
    for (size_t chunk : {size_t(1), size_t(3), size_t(7), stream.size()}) {
        std::vector<Frame> frames = parseChunked(stream, chunk);
        ASSERT_EQ(frames.size(), 3u) << "chunk " << chunk;
        EXPECT_EQ(frames[0].type, MsgType::kHello);
        EXPECT_EQ(frames[0].payload, "alpha");
        EXPECT_EQ(frames[1].type, MsgType::kAck);
        EXPECT_TRUE(frames[1].payload.empty());
        EXPECT_EQ(frames[2].type, MsgType::kIngest);
        EXPECT_EQ(frames[2].payload.size(), 3u);
    }
}

TEST(FrameParser, TruncatedFrameWaitsForMoreBytes)
{
    std::string frame = encodeFrame(MsgType::kHello, "payload");
    FrameParser parser;
    parser.feed(frame.data(), frame.size() - 1);
    EXPECT_FALSE(parser.next().has_value());
    EXPECT_EQ(parser.buffered(), frame.size() - 1);
    parser.feed(frame.data() + frame.size() - 1, 1);
    auto out = parser.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->payload, "payload");
    EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, CorruptBodyFailsTheCrc)
{
    std::string frame = encodeFrame(MsgType::kHello, "payload");
    frame[frame.size() - 1] ^= 0x40; // flip a bit in the body
    FrameParser parser;
    parser.feed(frame.data(), frame.size());
    EXPECT_THROW(parser.next(), NazarError);
}

TEST(FrameParser, OversizedLengthIsRejectedBeforeBuffering)
{
    // A corrupt length field must throw immediately, not make the
    // parser wait for 2^31 bytes that will never come.
    persist::Writer w;
    w.putU32(kMaxFrameBytes + 1);
    w.putU32(0);
    std::string head = w.take();
    FrameParser parser;
    parser.feed(head.data(), head.size());
    EXPECT_THROW(parser.next(), NazarError);

    persist::Writer zero;
    zero.putU32(0); // length 0 cannot even hold the type byte
    zero.putU32(0);
    std::string zhead = zero.take();
    FrameParser zparser;
    zparser.feed(zhead.data(), zhead.size());
    EXPECT_THROW(zparser.next(), NazarError);
}

TEST(FrameParser, UnknownMessageTypeIsRejected)
{
    persist::Writer body;
    body.putU8(99); // no such MsgType
    persist::Writer frame;
    frame.putU32(1);
    frame.putU32(persist::crc32(body.bytes().data(), body.size()));
    frame.putBytes(body.bytes().data(), body.size());
    std::string bytes = frame.take();
    FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    EXPECT_THROW(parser.next(), NazarError);
}

TEST(StringDict, EncoderAndDecoderStayInLockstep)
{
    StringDict enc, dec;
    std::vector<std::string> sends = {"park", "rain", "park", "fog",
                                      "rain", "park"};
    for (const auto &s : sends) {
        persist::Writer w;
        enc.encode(w, s);
        std::string bytes = w.take();
        persist::Reader r(bytes);
        EXPECT_EQ(dec.decode(r), s);
    }
    EXPECT_EQ(enc.size(), 3u);
    EXPECT_EQ(dec.size(), 3u);
    EXPECT_EQ(enc.hits(), 3u); // the three repeats went as bare ids
}

TEST(StringDict, RedefineIsIdempotentSoDuplicatedFramesCannotDesync)
{
    // A chaos-duplicated frame replays its kNewString definition
    // bytes. The decoder must not intern the string twice, or every
    // id assigned afterwards would be off by one from the encoder's.
    StringDict enc, dec;
    persist::Writer w1;
    enc.encode(w1, "park"); // defines id 0
    std::string define = w1.take();
    for (int replay = 0; replay < 2; ++replay) {
        persist::Reader r(define);
        EXPECT_EQ(dec.decode(r), "park");
    }
    EXPECT_EQ(dec.size(), 1u);
    // The next definition must land on the same id on both sides.
    persist::Writer w2;
    enc.encode(w2, "fog"); // defines id 1
    std::string define_fog = w2.take();
    persist::Reader r2(define_fog);
    EXPECT_EQ(dec.decode(r2), "fog");
    persist::Writer w3;
    enc.encode(w3, "fog"); // bare id 1
    std::string bare = w3.take();
    persist::Reader r3(bare);
    EXPECT_EQ(dec.decode(r3), "fog");
    EXPECT_EQ(bare.size(), 4u); // just the u32 id
}

TEST(StringDict, OutOfRangeIdIsRejected)
{
    StringDict dec;
    persist::Writer w;
    w.putU32(5); // no strings interned yet
    std::string bytes = w.take();
    persist::Reader r(bytes);
    EXPECT_THROW(dec.decode(r), NazarError);
}

WireIngest
sampleIngest(bool with_upload)
{
    WireIngest m;
    m.device = 42;
    m.seq = 7;
    m.entry.time = SimDate(33, 4521);
    m.entry.deviceId = "android_42";
    m.entry.deviceModel = "pixel-4";
    m.entry.location = "harbor";
    m.entry.weather = "snow";
    m.entry.modelVersion = 3;
    m.entry.drift = true;
    if (with_upload) {
        persist::UploadRecord up;
        up.features = {0.25, -1.5, std::nan(""), 3.25};
        up.context = rca::AttributeSet(
            {{"location", driftlog::Value(std::string("harbor"))},
             {"weather", driftlog::Value(std::string("snow"))}});
        up.driftFlag = true;
        m.upload = std::move(up);
    }
    return m;
}

TEST(WireIngest, RoundTripsThroughTheDictIncludingNaN)
{
    StringDict enc, dec;
    for (bool with_upload : {true, false}) {
        WireIngest in = sampleIngest(with_upload);
        std::string bytes = encodeIngest(in, enc);
        WireIngest out = decodeIngest(bytes, dec);
        EXPECT_EQ(out.device, in.device);
        EXPECT_EQ(out.seq, in.seq);
        EXPECT_EQ(out.entry.time.dayIndex(), 33);
        EXPECT_EQ(out.entry.time.secondOfDay(), 4521);
        EXPECT_EQ(out.entry.deviceId, "android_42");
        EXPECT_EQ(out.entry.weather, "snow");
        EXPECT_EQ(out.entry.modelVersion, 3);
        EXPECT_TRUE(out.entry.drift);
        ASSERT_EQ(out.upload.has_value(), with_upload);
        if (with_upload) {
            ASSERT_EQ(out.upload->features.size(), 4u);
            EXPECT_DOUBLE_EQ(out.upload->features[0], 0.25);
            EXPECT_TRUE(std::isnan(out.upload->features[2]));
            EXPECT_EQ(out.upload->context.size(), 2u);
            EXPECT_TRUE(out.upload->driftFlag);
        }
    }
    // Second encode of the same strings is all bare ids: smaller.
    StringDict enc2;
    std::string first = encodeIngest(sampleIngest(true), enc2);
    std::string second = encodeIngest(sampleIngest(true), enc2);
    EXPECT_LT(second.size(), first.size());
}

TEST(WireIngest, TraceContextRoundTripsAndZeroIdsStayByteIdentical)
{
    // With a trace context, the ids survive the round trip.
    StringDict enc, dec;
    WireIngest in = sampleIngest(true);
    in.traceId = 0xDEADBEEFCAFEF00DULL;
    in.spanId = 42;
    std::string bytes = encodeIngest(in, enc);
    WireIngest out = decodeIngest(bytes, dec);
    EXPECT_EQ(out.traceId, in.traceId);
    EXPECT_EQ(out.spanId, in.spanId);
    EXPECT_EQ(out.device, in.device);
    EXPECT_EQ(out.seq, in.seq);

    // With no context (traceId == 0) the encoding is byte-identical
    // to the pre-extension format — tracing off cannot change what
    // goes on the wire — and decodes with zero ids.
    StringDict enc2, enc3, dec2;
    std::string plain = encodeIngest(sampleIngest(true), enc2);
    WireIngest zero = sampleIngest(true);
    zero.traceId = 0;
    zero.spanId = 99; // ignored without a trace id
    EXPECT_EQ(encodeIngest(zero, enc3), plain);
    WireIngest plain_out = decodeIngest(plain, dec2);
    EXPECT_EQ(plain_out.traceId, 0u);
    EXPECT_EQ(plain_out.spanId, 0u);
}

TEST(WireIngest, UnknownExtensionTagsAreSkippedForwardCompatibly)
{
    // A newer peer may append extension tags this build has never
    // heard of; the decoder must skip them by length and still pick
    // out the trace context.
    StringDict enc, dec;
    std::string base = encodeIngest(sampleIngest(false), enc);
    persist::Writer w;
    w.putBytes(base.data(), base.size());
    w.putU8(2); // two extensions
    w.putU8(7); // unknown tag
    w.putU32(3);
    w.putBytes("abc", 3);
    w.putU8(kExtTraceContext);
    w.putU32(16);
    w.putU64(1234);
    w.putU64(5678);
    WireIngest out = decodeIngest(w.take(), dec);
    EXPECT_EQ(out.device, 42);
    EXPECT_EQ(out.traceId, 1234u);
    EXPECT_EQ(out.spanId, 5678u);

    // An extension length pointing past the frame end must throw, not
    // read out of bounds.
    StringDict enc2, dec2;
    std::string base2 = encodeIngest(sampleIngest(false), enc2);
    persist::Writer bad;
    bad.putBytes(base2.data(), base2.size());
    bad.putU8(1);
    bad.putU8(7);
    bad.putU32(1000); // but no bytes follow
    EXPECT_THROW(decodeIngest(bad.take(), dec2), NazarError);
}

TEST(WireIngest, TrailingBytesAndTruncationAreRejected)
{
    StringDict enc;
    std::string bytes = encodeIngest(sampleIngest(true), enc);
    {
        StringDict dec;
        std::string trailing = bytes + "x";
        EXPECT_THROW(decodeIngest(trailing, dec), NazarError);
    }
    {
        // Truncating mid-upload leaves a feature count larger than the
        // remaining bytes; the guard must catch it before allocating.
        StringDict dec;
        std::string cut = bytes.substr(0, bytes.size() - 9);
        EXPECT_THROW(decodeIngest(cut, dec), NazarError);
    }
}

TEST(WireMessages, ControlPayloadsRoundTrip)
{
    WireHello hello;
    hello.clientName = "runner";
    WireHello hello2 = decodeHello(encodeHello(hello));
    EXPECT_EQ(hello2.protoVersion, kProtocolVersion);
    EXPECT_EQ(hello2.clientName, "runner");

    WireHelloAck hack;
    hack.cleanPatchText = "patch-blob";
    hack.cleanPatchTime = 5;
    WireHelloAck hack2 = decodeHelloAck(encodeHelloAck(hack));
    ASSERT_TRUE(hack2.cleanPatchText.has_value());
    EXPECT_EQ(*hack2.cleanPatchText, "patch-blob");
    EXPECT_EQ(hack2.cleanPatchTime, 5);
    WireHelloAck none = decodeHelloAck(encodeHelloAck(WireHelloAck{}));
    EXPECT_FALSE(none.cleanPatchText.has_value());

    WireAck ack{42, 7, true};
    WireAck ack2 = decodeAck(encodeAck(ack));
    EXPECT_EQ(ack2.device, 42);
    EXPECT_EQ(ack2.seq, 7u);
    EXPECT_TRUE(ack2.accepted);

    WireCycleDone done;
    done.versionCount = 2;
    done.rootCauses = 3;
    done.skippedCauses = 1;
    done.adaptedSampleCount = 640;
    done.cleanPatchText = "clean";
    WireCycleDone done2 = decodeCycleDone(encodeCycleDone(done));
    EXPECT_EQ(done2.versionCount, 2u);
    EXPECT_EQ(done2.rootCauses, 3u);
    EXPECT_EQ(done2.skippedCauses, 1u);
    EXPECT_EQ(done2.adaptedSampleCount, 640u);
    ASSERT_TRUE(done2.cleanPatchText.has_value());
    EXPECT_EQ(*done2.cleanPatchText, "clean");

    WireByeAck bye{100, 4};
    WireByeAck bye2 = decodeByeAck(encodeByeAck(bye));
    EXPECT_EQ(bye2.totalIngested, 100u);
    EXPECT_EQ(bye2.dedupHits, 4u);
}

TEST(WireMessages, ResumeFieldsRoundTripAndAddNoBytesWhenAbsent)
{
    // wantResume survives the round trip; absent it costs zero bytes
    // (trailing optional: a fresh session's kHello is byte-identical
    // to the pre-resume protocol).
    WireHello plain;
    plain.clientName = "runner";
    WireHello resume = plain;
    resume.wantResume = true;
    std::string plain_bytes = encodeHello(plain);
    std::string resume_bytes = encodeHello(resume);
    EXPECT_EQ(plain_bytes.size() + 1, resume_bytes.size());
    EXPECT_EQ(resume_bytes.substr(0, plain_bytes.size()), plain_bytes);
    EXPECT_FALSE(decodeHello(plain_bytes).wantResume);
    EXPECT_TRUE(decodeHello(resume_bytes).wantResume);

    // The kHelloAck resume block: round trip, and empty == absent.
    WireHelloAck ack;
    ack.cleanPatchText = "patch";
    WireHelloAck with = ack;
    with.resumeHighWater = {{1000, 57}, {-3, 9}};
    std::string ack_bytes = encodeHelloAck(ack);
    std::string with_bytes = encodeHelloAck(with);
    EXPECT_EQ(with_bytes.substr(0, ack_bytes.size()), ack_bytes);
    WireHelloAck out = decodeHelloAck(with_bytes);
    ASSERT_EQ(out.resumeHighWater.size(), 2u);
    EXPECT_EQ(out.resumeHighWater[0],
              (std::pair<int64_t, uint64_t>(1000, 57)));
    EXPECT_EQ(out.resumeHighWater[1],
              (std::pair<int64_t, uint64_t>(-3, 9)));
    EXPECT_TRUE(decodeHelloAck(ack_bytes).resumeHighWater.empty());

    // A resume-block count larger than the frame must throw, not
    // reserve gigabytes.
    persist::Writer bad;
    bad.putBytes(ack_bytes.data(), ack_bytes.size());
    bad.putU32(0x00FFFFFFu); // claims ~16M entries, no bytes follow
    EXPECT_THROW(decodeHelloAck(bad.take()), NazarError);

    // kBusy round trip.
    WireBusy busy{17};
    EXPECT_EQ(decodeBusy(encodeBusy(busy)).queueDepth, 17u);
}

TEST(FrameParser, FuzzRegressionThrowsButNeverCrashesOrHangs)
{
    // Seed-deterministic fuzz corpus. Under the ASAN ctest leg this
    // is the memory-safety regression net for the frame parser and
    // the typed payload decoders: every input either parses or throws
    // NazarError — never a crash, an out-of-bounds read, or an
    // unbounded wait (all feeds are finite, so "waiting for more
    // bytes" terminates the drive loop).
    Rng rng(0xF0221u);
    auto randomBytes = [&rng](size_t n) {
        std::string s(n, '\0');
        for (char &c : s)
            c = static_cast<char>(rng.uniformInt(0, 255));
        return s;
    };
    // Feed bytes at one chunking; count frames until a throw or the
    // end of input. Only NazarError is an acceptable exit — anything
    // else propagates and fails the test.
    auto drive = [](const std::string &bytes, size_t chunk) {
        FrameParser parser;
        size_t frames = 0;
        try {
            for (size_t i = 0; i < bytes.size(); i += chunk) {
                parser.feed(bytes.data() + i,
                            std::min(chunk, bytes.size() - i));
                while (parser.next().has_value())
                    ++frames;
            }
        } catch (const NazarError &) {
        }
        return frames;
    };

    // 1. Pure random garbage at random chunkings.
    for (int round = 0; round < 64; ++round) {
        std::string junk = randomBytes(
            static_cast<size_t>(rng.uniformInt(1, 512)));
        drive(junk, static_cast<size_t>(rng.uniformInt(1, 64)));
    }

    // 2. A valid three-frame stream with one random bit flipped —
    // corruption in the length, the CRC, the type, or the body.
    StringDict enc;
    WireHello hello;
    hello.clientName = "fuzz";
    std::string stream =
        encodeFrame(MsgType::kHello, encodeHello(hello)) +
        encodeFrame(MsgType::kIngest,
                    encodeIngest(sampleIngest(true), enc)) +
        encodeFrame(MsgType::kAck, encodeAck(WireAck{1, 2, true}));
    for (int round = 0; round < 256; ++round) {
        std::string flipped = stream;
        size_t bit = static_cast<size_t>(
            rng.uniformInt(0,
                           static_cast<int64_t>(flipped.size()) * 8 -
                               1));
        flipped[bit / 8] ^=
            static_cast<char>(1u << (bit % 8));
        drive(flipped,
              static_cast<size_t>(rng.uniformInt(1, 32)));
    }

    // 3. Every truncation point of the valid stream: a cut stream is
    // an incomplete frame, never a corrupt one — whole frames before
    // the cut still parse.
    for (size_t cut = 0; cut <= stream.size(); ++cut) {
        FrameParser parser;
        parser.feed(stream.data(), cut);
        size_t frames = 0;
        while (parser.next().has_value())
            ++frames;
        EXPECT_LE(frames, 3u);
        if (cut == stream.size()) {
            EXPECT_EQ(frames, 3u);
        }
    }

    // 4. Random garbage straight into the typed decoders (what a
    // CRC-colliding or malicious body would hit).
    for (int round = 0; round < 128; ++round) {
        std::string payload = randomBytes(
            static_cast<size_t>(rng.uniformInt(0, 200)));
        StringDict dict;
        try {
            decodeIngest(payload, dict);
        } catch (const NazarError &) {
        }
        try {
            decodeHello(payload);
        } catch (const NazarError &) {
        }
        try {
            decodeHelloAck(payload);
        } catch (const NazarError &) {
        }
        try {
            decodeAck(payload);
        } catch (const NazarError &) {
        }
        try {
            decodeCycleDone(payload);
        } catch (const NazarError &) {
        }
        try {
            decodeByeAck(payload);
        } catch (const NazarError &) {
        }
        try {
            decodeBusy(payload);
        } catch (const NazarError &) {
        }
    }
}

} // namespace
} // namespace nazar::net
