/**
 * @file
 * Tests for nazar::obs — the metrics registry, spans, exporters, and
 * the inertness contract: recording must never change computation
 * results, at any thread count.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "data/apps.h"
#include "data/stream.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"
#include "sim/runner.h"

namespace nazar::obs {
namespace {

/** Fresh registry state per test (handles stay valid). */
struct ObsTest : ::testing::Test
{
    ObsTest()
    {
        setEnabled(true);
        setTracing(false);
        clearTrace();
        Registry::global().reset();
    }
    ~ObsTest() override
    {
        setEnabled(true);
        setTracing(false);
        clearTrace();
        Registry::global().reset();
    }
};

TEST_F(ObsTest, CounterAddsAndRegistrationIsIdempotent)
{
    Counter &c = Registry::global().counter("test.counter");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(&Registry::global().counter("test.counter"), &c);
}

TEST_F(ObsTest, GaugeSetAndAdd)
{
    Gauge &g = Registry::global().gauge("test.gauge");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST_F(ObsTest, HistogramBucketsAndSum)
{
    Histogram &h = Registry::global().histogram(
        "test.hist", std::vector<double>{1.0, 10.0});
    h.observe(0.5);  // bucket 0 (<= 1)
    h.observe(5.0);  // bucket 1 (<= 10)
    h.observe(50.0); // bucket 2 (+Inf)
    HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.buckets.size(), 3u);
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[2], 1u);
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.sum, 55.5);
    EXPECT_DOUBLE_EQ(s.mean(), 18.5);
}

TEST_F(ObsTest, HistogramQuantileInterpolatesBuckets)
{
    Histogram &h = Registry::global().histogram(
        "test.quantile", std::vector<double>{1.0, 10.0});
    EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0); // empty
    for (int i = 0; i < 8; ++i)
        h.observe(0.5); // all in bucket (0, 1]
    HistogramSnapshot s = h.snapshot();
    // Every sample in one bucket: quantiles interpolate inside it.
    EXPECT_GT(s.quantile(0.5), 0.0);
    EXPECT_LE(s.quantile(0.5), 1.0);
    EXPECT_LE(s.quantile(0.5), s.quantile(0.99));
    h.observe(50.0); // +Inf bucket: quantile clamps to its lower edge
    EXPECT_DOUBLE_EQ(h.snapshot().quantile(1.0), 10.0);
}

TEST_F(ObsTest, DisabledRecordingIsDropped)
{
    Counter &c = Registry::global().counter("test.disabled");
    Histogram &h = Registry::global().histogram("test.disabled.h");
    setEnabled(false);
    c.add(7);
    h.observe(1.0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.snapshot().count, 0u);
    setEnabled(true);
    c.add(7);
    EXPECT_EQ(c.value(), 7u);
}

TEST_F(ObsTest, ResetZeroesButKeepsHandles)
{
    Counter &c = Registry::global().counter("test.reset");
    c.add(9);
    Registry::global().reset();
    EXPECT_EQ(c.value(), 0u);
    c.add(1);
    EXPECT_EQ(Registry::global().counter("test.reset").value(), 1u);
}

// ---- Concurrency: the registry must be exact and TSAN-clean ---------

TEST_F(ObsTest, ConcurrentRegistryStress)
{
    constexpr size_t kThreads = 8;
    constexpr size_t kIters = 20000;
    Counter &c = Registry::global().counter("stress.counter");
    Gauge &g = Registry::global().gauge("stress.gauge");
    Histogram &h = Registry::global().histogram(
        "stress.hist", std::vector<double>{0.25, 0.5, 0.75});

    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (size_t i = 0; i < kIters; ++i) {
                c.add(1);
                g.add(1.0);
                h.observe(static_cast<double>((t + i) % 4) * 0.25);
                // Concurrent same-name registration must be safe too.
                Registry::global().counter("stress.shared").add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(c.value(), kThreads * kIters);
    EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kIters));
    EXPECT_EQ(Registry::global().counter("stress.shared").value(),
              kThreads * kIters);
    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, kThreads * kIters);
    uint64_t bucket_total = 0;
    for (uint64_t b : s.buckets)
        bucket_total += b;
    EXPECT_EQ(bucket_total, s.count);
}

// ---- Spans ----------------------------------------------------------

TEST_F(ObsTest, SpanFeedsItsHistogram)
{
    {
        NAZAR_SPAN("test.span");
    }
    EXPECT_EQ(Registry::global()
                  .histogram("test.span")
                  .snapshot()
                  .count,
              1u);
}

TEST_F(ObsTest, SpanStopReturnsSecondsAndIsIdempotent)
{
    static SpanSite site("test.span.stop");
    ScopedSpan span(site);
    double seconds = span.stop();
    EXPECT_GE(seconds, 0.0);
    EXPECT_EQ(span.stop(), 0.0); // second stop: no-op
    EXPECT_EQ(site.histogram().snapshot().count, 1u);
}

TEST_F(ObsTest, SpanMeasuresEvenWhenDisabled)
{
    setEnabled(false);
    static SpanSite site("test.span.disabled");
    ScopedSpan span(site);
    // stop() must still report wall time (CycleResult::rcaSeconds
    // depends on it) while recording nothing.
    EXPECT_GE(span.stop(), 0.0);
    EXPECT_EQ(site.histogram().snapshot().count, 0u);
}

TEST_F(ObsTest, TraceBufferCapturesSpans)
{
    setTracing(true);
    {
        NAZAR_SPAN("test.trace");
    }
    std::vector<TraceEvent> events = traceEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "test.trace");
    EXPECT_GE(events[0].durationSeconds, 0.0);
    clearTrace();
    EXPECT_TRUE(traceEvents().empty());
}

// ---- Causal tracing -------------------------------------------------

TEST_F(ObsTest, TraceEventsCarrySpanAndParentIds)
{
    setTracing(true);
    {
        NAZAR_SPAN("test.parent");
        NAZAR_SPAN("test.child");
    }
    std::vector<TraceEvent> events = traceEvents();
    ASSERT_EQ(events.size(), 2u);
    const TraceEvent *parent = nullptr;
    const TraceEvent *child = nullptr;
    for (const TraceEvent &e : events) {
        if (std::string(e.name) == "test.parent")
            parent = &e;
        else if (std::string(e.name) == "test.child")
            child = &e;
    }
    ASSERT_NE(parent, nullptr);
    ASSERT_NE(child, nullptr);
    EXPECT_NE(parent->spanId, 0u);
    EXPECT_NE(child->spanId, 0u);
    EXPECT_EQ(parent->parentId, 0u); // trace root
    EXPECT_EQ(parent->traceId, parent->spanId);
    EXPECT_EQ(child->parentId, parent->spanId);
    EXPECT_EQ(child->traceId, parent->traceId);
}

TEST_F(ObsTest, ScopedTraceContextAdoptsForeignParent)
{
    setTracing(true);
    TraceContext foreign = newTraceContext();
    ASSERT_TRUE(foreign.valid());
    {
        ScopedTraceContext adopt(foreign);
        EXPECT_EQ(currentTraceContext().traceId, foreign.traceId);
        EXPECT_EQ(currentTraceContext().spanId, foreign.spanId);
        NAZAR_SPAN("test.adopted");
    }
    // Adoption is parent-stack only — no event of its own.
    EXPECT_FALSE(currentTraceContext().valid());
    std::vector<TraceEvent> events = traceEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].traceId, foreign.traceId);
    EXPECT_EQ(events[0].parentId, foreign.spanId);
    EXPECT_NE(events[0].spanId, foreign.spanId);
}

TEST_F(ObsTest, RecordSpanLinksExplicitContextAndFeedsHistogram)
{
    setTracing(true);
    static SpanSite site("test.record_span");
    TraceContext parent = newTraceContext();
    TraceContext self = newTraceContext();
    auto t0 = std::chrono::steady_clock::now();
    recordSpan(site, t0, std::chrono::steady_clock::now(), parent,
               self.spanId);
    // Invalid parent: the recorded span becomes its own root.
    recordSpan(site, t0, std::chrono::steady_clock::now(),
               TraceContext{});
    EXPECT_EQ(site.histogram().snapshot().count, 2u);
    std::vector<TraceEvent> events = traceEvents();
    ASSERT_EQ(events.size(), 2u);
    const TraceEvent *linked = nullptr;
    const TraceEvent *root = nullptr;
    for (const TraceEvent &e : events)
        (e.spanId == self.spanId ? linked : root) = &e;
    ASSERT_NE(linked, nullptr);
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(linked->traceId, parent.traceId);
    EXPECT_EQ(linked->parentId, parent.spanId);
    EXPECT_EQ(root->parentId, 0u);
    EXPECT_EQ(root->traceId, root->spanId);
}

TEST_F(ObsTest, TraceCapacityConfigurableAndDropsCounted)
{
    setTracing(true);
    setTraceCapacity(4);
    EXPECT_EQ(traceCapacity(), 4u);
    for (int i = 0; i < 10; ++i) {
        NAZAR_SPAN("test.cap");
    }
    // Single thread ⇒ one stripe ⇒ at most 4 kept, 6 dropped.
    EXPECT_LE(traceEvents().size(), 4u);
    EXPECT_GE(traceDropped(), 6u);
    std::ostringstream os;
    writeJson(Registry::global().snapshot(), os);
    EXPECT_NE(os.str().find("\"trace_dropped\""), std::string::npos);
    setTraceCapacity(kDefaultTraceCapacity);
}

TEST_F(ObsTest, TraceRingsConcurrentStress)
{
    constexpr size_t kThreads = 8;
    constexpr size_t kSpansPerThread = 500;
    setTracing(true);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (size_t i = 0; i < kSpansPerThread; ++i) {
                NAZAR_SPAN("test.trace.stress");
            }
        });
    }
    for (auto &t : threads)
        t.join();
    std::vector<TraceEvent> events = traceEvents();
    EXPECT_EQ(events.size() + traceDropped(),
              kThreads * kSpansPerThread);
    for (const TraceEvent &e : events) {
        EXPECT_NE(e.spanId, 0u);
        EXPECT_EQ(e.traceId, e.spanId); // all roots: no nesting here
    }
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormed)
{
    setTracing(true);
    setThreadName("test.main");
    {
        NAZAR_SPAN("test.chrome.outer");
        NAZAR_SPAN("test.chrome.inner");
    }
    std::ostringstream os;
    writeChromeTrace(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(out.find("test.main"), std::string::npos);
    EXPECT_NE(out.find("test.chrome.inner"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
}

TEST_F(ObsTest, SlowOpThresholdParsesAndClamps)
{
    // Off by default.
    EXPECT_TRUE(std::isinf(slowOpThresholdSeconds()));
    setSlowOpThresholdSeconds(0.25);
    EXPECT_DOUBLE_EQ(slowOpThresholdSeconds(), 0.25);
    // Invalid values disable the log rather than arming it at 0.
    setSlowOpThresholdSeconds(-1.0);
    EXPECT_TRUE(std::isinf(slowOpThresholdSeconds()));
    setSlowOpThresholdSeconds(0.0);
    {
        NAZAR_SPAN("test.slow"); // emits (rate-limited) warn, no crash
    }
    setSlowOpThresholdSeconds(
        std::numeric_limits<double>::infinity());
}

// ---- Exporters ------------------------------------------------------

TEST_F(ObsTest, JsonExportContainsRegisteredMetrics)
{
    Registry::global().counter("json.counter").add(3);
    Registry::global().gauge("json.gauge").set(1.5);
    Registry::global().histogram("json.hist").observe(0.01);
    std::ostringstream os;
    writeJson(Registry::global().snapshot(), os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"json.counter\": 3"), std::string::npos);
    EXPECT_NE(out.find("\"json.gauge\": 1.5"), std::string::npos);
    EXPECT_NE(out.find("\"json.hist\""), std::string::npos);
    EXPECT_NE(out.find("\"+Inf\""), std::string::npos);
    // Structurally balanced (cheap well-formedness check).
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
}

TEST_F(ObsTest, PrometheusExportUsesExpositionFormat)
{
    Registry::global().counter("prom.counter").add(2);
    Registry::global()
        .histogram("prom.hist", std::vector<double>{1.0})
        .observe(0.5);
    std::ostringstream os;
    writePrometheus(Registry::global().snapshot(), os);
    std::string out = os.str();
    EXPECT_NE(out.find("nazar_prom_counter_total 2"), std::string::npos);
    EXPECT_NE(out.find("# TYPE nazar_prom_hist histogram"),
              std::string::npos);
    EXPECT_NE(out.find("nazar_prom_hist_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(out.find("nazar_prom_hist_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(out.find("nazar_prom_hist_count 1"), std::string::npos);
}

// ---- Inertness: e2e results identical with metrics on/off × threads -

/** Tiny but non-trivial fleet run exercising the full Nazar loop. */
sim::RunResult
runTinyFleet()
{
    data::AppSpec app = data::makeAnimalsApp(13, 8);
    data::WeatherModel weather(app.locations, 21, 2020);
    sim::RunnerConfig config;
    config.arch = nn::Architecture::kResNet18;
    config.strategy = sim::Strategy::kNazar;
    config.windows = 3;
    config.workload.days = 21;
    config.workload.devicesPerLocation = 3;
    config.workload.imagesPerDevicePerDay = 3.0;
    config.train.epochs = 20;
    config.cloud.minAdaptSamples = 16;
    config.uploadSampleRate = 0.5;
    config.seed = 17;
    sim::Runner runner(app, weather, config);
    return runner.run();
}

/** Bit-exact comparison of everything except wall-clock timings. */
void
expectIdenticalResults(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.baseCleanAccuracy, b.baseCleanAccuracy);
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (size_t i = 0; i < a.windows.size(); ++i) {
        const auto &wa = a.windows[i];
        const auto &wb = b.windows[i];
        EXPECT_EQ(wa.events, wb.events) << "window " << i;
        EXPECT_EQ(wa.correctAll, wb.correctAll) << "window " << i;
        EXPECT_EQ(wa.correctDrifted, wb.correctDrifted)
            << "window " << i;
        EXPECT_EQ(wa.flagged, wb.flagged) << "window " << i;
        EXPECT_EQ(wa.rootCauses, wb.rootCauses) << "window " << i;
        EXPECT_EQ(wa.newVersions, wb.newVersions) << "window " << i;
        EXPECT_EQ(wa.poolSize, wb.poolSize) << "window " << i;
    }
}

struct ObsDeterminism : ObsTest
{
    ObsDeterminism() { setLogLevel(LogLevel::kSilent); }
    ~ObsDeterminism() override
    {
        runtime::setThreads(0);
        setLogLevel(LogLevel::kInfo);
    }
};

TEST_F(ObsDeterminism, MetricsOnOffBitIdenticalAcrossThreadCounts)
{
    runtime::setThreads(1);
    setEnabled(true);
    sim::RunResult on1 = runTinyFleet();
    setEnabled(false);
    sim::RunResult off1 = runTinyFleet();
    runtime::setThreads(4);
    setEnabled(true);
    sim::RunResult on4 = runTinyFleet();
    setEnabled(false);
    sim::RunResult off4 = runTinyFleet();
    setEnabled(true);

    expectIdenticalResults(on1, off1);
    expectIdenticalResults(on1, on4);
    expectIdenticalResults(on1, off4);
}

TEST_F(ObsDeterminism, TracingOnOffBitIdenticalAcrossThreadCounts)
{
    // The tracing layer must be as inert as the metrics layer: span
    // ids come from a counter (no RNG) and the rings never feed back
    // into the data path.
    runtime::setThreads(1);
    setTracing(true);
    sim::RunResult on1 = runTinyFleet();
    setTracing(false);
    clearTrace();
    sim::RunResult off1 = runTinyFleet();
    runtime::setThreads(4);
    setTracing(true);
    sim::RunResult on4 = runTinyFleet();
    setTracing(false);
    clearTrace();
    sim::RunResult off4 = runTinyFleet();

    expectIdenticalResults(on1, off1);
    expectIdenticalResults(on1, on4);
    expectIdenticalResults(on1, off4);
}

TEST_F(ObsDeterminism, E2eSnapshotCoversEveryInstrumentedLayer)
{
    runtime::setThreads(2);
    setEnabled(true);
    Registry::global().reset();
    runTinyFleet();
    Snapshot snap = Registry::global().snapshot();

    // Spans from every layer of the loop. (The driftlog layer shows
    // up as its ingest counter below: the cloud cycle hands the raw
    // table to RCA without going through Query.)
    for (const char *span : {"nn.forward", "nn.matmul",
                             "detect.msp.is_drift", "rca.fim.mine",
                             "rca.analyze", "sim.cloud.rca",
                             "sim.cloud.adapt", "sim.window"}) {
        auto it = snap.histograms.find(span);
        ASSERT_NE(it, snap.histograms.end()) << span;
        EXPECT_GT(it->second.count, 0u) << span;
    }
    // Counters, including the runtime pool's.
    for (const char *counter :
         {"runtime.batches", "nn.forward.rows", "detect.msp.samples",
          "driftlog.rows_ingested", "rca.causes_accepted",
          "sim.inferences", "sim.ingest.rows", "sim.uploads"}) {
        auto it = snap.counters.find(counter);
        ASSERT_NE(it, snap.counters.end()) << counter;
    }
    // With 2 threads the pool ran real batches.
    EXPECT_GT(snap.counters.at("runtime.batches"), 0u);
    EXPECT_GT(snap.counters.at("sim.inferences"), 0u);
}

} // namespace
} // namespace nazar::obs
