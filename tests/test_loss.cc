/**
 * @file
 * Tests for losses and probability utilities, including numerical
 * gradient checks of every loss gradient.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "nn/loss.h"

namespace nazar::nn {
namespace {

TEST(Softmax, RowsSumToOne)
{
    Rng rng(1);
    Matrix z = Matrix::randomNormal(6, 9, 3.0, rng);
    Matrix p = softmax(z);
    for (size_t r = 0; r < p.rows(); ++r) {
        double s = 0.0;
        for (size_t c = 0; c < p.cols(); ++c) {
            EXPECT_GT(p(r, c), 0.0);
            s += p(r, c);
        }
        EXPECT_NEAR(s, 1.0, 1e-9);
    }
}

TEST(Softmax, StableUnderLargeLogits)
{
    Matrix z = Matrix::fromRows({{1000.0, 1000.0, 900.0}});
    Matrix p = softmax(z);
    EXPECT_NEAR(p(0, 0), 0.5, 1e-9);
    EXPECT_NEAR(p(0, 1), 0.5, 1e-9);
    EXPECT_NEAR(p(0, 2), 0.0, 1e-9);
}

TEST(LogSoftmax, MatchesLogOfSoftmax)
{
    Rng rng(2);
    Matrix z = Matrix::randomNormal(4, 5, 2.0, rng);
    Matrix lp = logSoftmax(z);
    Matrix p = softmax(z);
    for (size_t r = 0; r < z.rows(); ++r)
        for (size_t c = 0; c < z.cols(); ++c)
            EXPECT_NEAR(lp(r, c), std::log(p(r, c)), 1e-9);
}

TEST(MaxSoftmax, PicksRowMaxima)
{
    Matrix z = Matrix::fromRows({{0.0, 0.0}, {10.0, 0.0}});
    auto msp = maxSoftmax(z);
    EXPECT_NEAR(msp[0], 0.5, 1e-9);
    EXPECT_GT(msp[1], 0.99);
}

TEST(SoftmaxEntropy, UniformIsMaximal)
{
    Matrix uniform = Matrix::fromRows({{1.0, 1.0, 1.0, 1.0}});
    Matrix peaked = Matrix::fromRows({{20.0, 0.0, 0.0, 0.0}});
    auto hu = softmaxEntropy(uniform);
    auto hp = softmaxEntropy(peaked);
    EXPECT_NEAR(hu[0], std::log(4.0), 1e-9);
    EXPECT_LT(hp[0], 0.01);
}

TEST(EnergyScore, MatchesNegLogSumExp)
{
    Matrix z = Matrix::fromRows({{1.0, 2.0, 3.0}});
    double lse = std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
    EXPECT_NEAR(energyScore(z)[0], -lse, 1e-9);
}

TEST(CrossEntropy, PerfectPredictionHasLowLoss)
{
    Matrix z = Matrix::fromRows({{30.0, 0.0}, {0.0, 30.0}});
    LossResult res = crossEntropy(z, {0, 1});
    EXPECT_LT(res.loss, 1e-6);
}

TEST(CrossEntropy, UniformLossIsLogK)
{
    Matrix z(3, 5); // all-zero logits -> uniform softmax
    LossResult res = crossEntropy(z, {0, 2, 4});
    EXPECT_NEAR(res.loss, std::log(5.0), 1e-9);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHot)
{
    Matrix z = Matrix::fromRows({{1.0, -2.0, 0.5}});
    LossResult res = crossEntropy(z, {2});
    Matrix p = softmax(z);
    EXPECT_NEAR(res.grad(0, 0), p(0, 0), 1e-9);
    EXPECT_NEAR(res.grad(0, 2), p(0, 2) - 1.0, 1e-9);
}

TEST(CrossEntropy, RejectsBadLabels)
{
    Matrix z(2, 3);
    EXPECT_THROW(crossEntropy(z, {0}), NazarError);
    EXPECT_THROW(crossEntropy(z, {0, 3}), NazarError);
    EXPECT_THROW(crossEntropy(z, {0, -1}), NazarError);
}

/** Finite-difference check helper for logit-space gradients. */
template <typename LossFn>
void
checkLogitGradient(LossFn loss_fn, const Matrix &z, double tol = 1e-5)
{
    LossResult res = loss_fn(z);
    for (size_t r = 0; r < z.rows(); ++r) {
        for (size_t c = 0; c < z.cols(); ++c) {
            Matrix zp = z, zm = z;
            zp(r, c) += 1e-6;
            zm(r, c) -= 1e-6;
            double num =
                (loss_fn(zp).loss - loss_fn(zm).loss) / 2e-6;
            EXPECT_NEAR(res.grad(r, c), num, tol)
                << "at (" << r << "," << c << ")";
        }
    }
}

TEST(CrossEntropy, GradientCheck)
{
    Rng rng(3);
    Matrix z = Matrix::randomNormal(4, 6, 2.0, rng);
    std::vector<int> labels = {1, 0, 5, 3};
    checkLogitGradient(
        [&](const Matrix &zz) { return crossEntropy(zz, labels); }, z);
}

TEST(MeanEntropy, GradientCheck)
{
    Rng rng(4);
    Matrix z = Matrix::randomNormal(5, 7, 1.5, rng);
    checkLogitGradient(
        [](const Matrix &zz) { return meanEntropy(zz); }, z);
}

TEST(MeanEntropy, ValueMatchesDirectEntropy)
{
    Rng rng(5);
    Matrix z = Matrix::randomNormal(6, 4, 2.0, rng);
    auto per_row = softmaxEntropy(z);
    double expect = 0.0;
    for (double h : per_row)
        expect += h;
    expect /= per_row.size();
    EXPECT_NEAR(meanEntropy(z).loss, expect, 1e-9);
}

TEST(MarginalEntropy, GradientCheck)
{
    Rng rng(6);
    Matrix z = Matrix::randomNormal(4, 5, 1.5, rng);
    checkLogitGradient(
        [](const Matrix &zz) { return marginalEntropy(zz); }, z);
}

TEST(MarginalEntropy, AgreesWithMeanEntropyForIdenticalCopies)
{
    // When every augmented copy yields identical logits, the marginal
    // entropy equals the per-copy entropy.
    Matrix row = Matrix::fromRows({{1.0, 0.2, -0.5}});
    Matrix copies(4, 3);
    for (size_t r = 0; r < 4; ++r)
        copies.setRow(r, row.rowVec(0));
    EXPECT_NEAR(marginalEntropy(copies).loss,
                softmaxEntropy(row)[0], 1e-9);
}

TEST(MarginalEntropy, ExceedsMeanEntropyForDisagreeingCopies)
{
    // Entropy of an average distribution >= average of entropies
    // (concavity of H).
    Matrix copies = Matrix::fromRows({{5.0, 0.0}, {0.0, 5.0}});
    EXPECT_GT(marginalEntropy(copies).loss, meanEntropy(copies).loss);
}

} // namespace
} // namespace nazar::nn
