/**
 * @file
 * Tests for the "ruled-out" detector families implemented for the
 * measured Table 1 comparison: Mahalanobis distance, SSL auxiliary
 * task, and Outlier-Exposure training.
 */
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "data/corruption.h"
#include "data/domain.h"
#include "detect/mahalanobis.h"
#include "detect/scores.h"
#include "detect/ssl.h"

namespace nazar::detect {
namespace {

struct FamilyFixture : ::testing::Test
{
    FamilyFixture()
    {
        data::DomainConfig dc;
        dc.numClasses = 6;
        dc.featureDim = 12;
        dc.prototypeScale = 1.0;
        dc.noiseMin = 0.4;
        dc.noiseMax = 0.8;
        dc.seed = 17;
        domain = std::make_unique<data::Domain>(dc);
        Rng rng(1);
        train = domain->makeBalancedDataset(60, rng);
        clean = domain->makeBalancedDataset(20, rng);
        data::Corruptor corr(12);
        data::DatasetBuilder builder;
        for (size_t r = 0; r < clean.x.rows(); ++r)
            builder.add(corr.apply(clean.x.rowVec(r),
                                   data::CorruptionType::kSnow, 4,
                                   rng),
                        clean.labels[r]);
        drifted = builder.build();
    }

    double
    meanScore(auto &&score_fn, const data::Dataset &d)
    {
        double total = 0.0;
        for (size_t r = 0; r < d.x.rows(); ++r)
            total += score_fn(d.x.rowVec(r));
        return total / static_cast<double>(d.x.rows());
    }

    std::unique_ptr<data::Domain> domain;
    data::Dataset train, clean, drifted;
};

TEST_F(FamilyFixture, MahalanobisSeparatesCleanFromDrift)
{
    MahalanobisDetector det(train.x, train.labels,
                            /*max_distance2=*/40.0);
    EXPECT_EQ(det.classCount(), 6u);
    double clean_score = meanScore(
        [&](const std::vector<double> &x) { return det.score(x); },
        clean);
    double drift_score = meanScore(
        [&](const std::vector<double> &x) { return det.score(x); },
        drifted);
    EXPECT_GT(clean_score, drift_score);
}

TEST_F(FamilyFixture, MahalanobisDistanceIsSmallNearClassMeans)
{
    MahalanobisDetector det(train.x, train.labels, 40.0);
    // A training sample itself should be close to its class.
    double d2 = det.minDistance2(train.x.rowVec(0));
    // Chi-squared with 12 dof has mean 12; allow generous slack.
    EXPECT_LT(d2, 40.0);
    EXPECT_FALSE(det.isDrift(train.x.rowVec(0)));
}

TEST_F(FamilyFixture, MahalanobisValidatesInput)
{
    EXPECT_THROW(MahalanobisDetector(train.x, {0}, 40.0), NazarError);
    EXPECT_THROW(MahalanobisDetector(train.x, train.labels, 0.0),
                 NazarError);
    MahalanobisDetector det(train.x, train.labels, 40.0);
    EXPECT_THROW(det.score(std::vector<double>(3, 0.0)), NazarError);
}

TEST(SslTransforms, AreDistinctAndDimensionPreserving)
{
    std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
    std::set<std::vector<double>> outputs;
    for (int k = 0; k < kSslTransforms; ++k) {
        auto y = sslTransform(x, k);
        EXPECT_EQ(y.size(), x.size());
        outputs.insert(y);
    }
    EXPECT_EQ(outputs.size(), static_cast<size_t>(kSslTransforms));
    EXPECT_EQ(sslTransform(x, 0), x); // identity first
    EXPECT_THROW(sslTransform(x, kSslTransforms), NazarError);
}

TEST_F(FamilyFixture, SslAuxiliaryTaskIsLearnable)
{
    SslDetector det(train.x, 0.5, 7, 15);
    EXPECT_GT(det.auxiliaryAccuracy(clean.x), 0.7);
}

TEST_F(FamilyFixture, SslSeparatesCleanFromDrift)
{
    SslDetector det(train.x, 0.5, 7, 15);
    double clean_score = meanScore(
        [&](const std::vector<double> &x) { return det.score(x); },
        clean);
    double drift_score = meanScore(
        [&](const std::vector<double> &x) { return det.score(x); },
        drifted);
    EXPECT_GT(clean_score, drift_score + 0.03);
}

TEST_F(FamilyFixture, OutlierExposureLowersOutlierConfidence)
{
    // Train two models: plain and OE (exposed to a *different*
    // corruption than the one tested, as OE prescribes).
    // A *diverse* exposure set (OE works best with varied outliers),
    // deliberately excluding the snow corruption used at test time.
    Rng rng(3);
    data::Corruptor corr(12);
    const data::CorruptionType exposure_types[] = {
        data::CorruptionType::kGaussianNoise,
        data::CorruptionType::kFog,
        data::CorruptionType::kContrast,
        data::CorruptionType::kImpulseNoise};
    data::DatasetBuilder exposure_builder;
    auto exposure_src = domain->makeBalancedDataset(20, rng);
    for (size_t r = 0; r < exposure_src.x.rows(); ++r)
        exposure_builder.add(
            corr.apply(exposure_src.x.rowVec(r), exposure_types[r % 4],
                       4, rng),
            -1);
    data::Dataset exposure = exposure_builder.build();

    nn::TrainConfig tc;
    tc.epochs = 20;
    nn::Classifier plain(nn::Architecture::kResNet18, 12, 6, 9);
    plain.trainSupervised(train.x, train.labels, tc);
    nn::Classifier oe(nn::Architecture::kResNet18, 12, 6, 9);
    oe.trainWithOutlierExposure(train.x, train.labels, exposure.x, tc,
                                /*lambda=*/1.0);

    // OE keeps clean accuracy reasonable...
    double plain_acc = plain.accuracy(clean.x, clean.labels);
    double oe_acc = oe.accuracy(clean.x, clean.labels);
    EXPECT_GT(oe_acc, plain_acc - 0.15);

    // ...and improves confidence *separability*: under OE, drifted
    // inputs keep a smaller fraction of the clean confidence (OE
    // lowers confidence everywhere, but much more on outliers — the
    // right comparison is relative, not the absolute gap).
    auto mean_msp = [](nn::Classifier &m, const data::Dataset &d) {
        double s = 0.0;
        for (double v : m.mspScores(d.x))
            s += v;
        return s / static_cast<double>(d.size());
    };
    double plain_ratio =
        mean_msp(plain, drifted) / mean_msp(plain, clean);
    double oe_ratio = mean_msp(oe, drifted) / mean_msp(oe, clean);
    EXPECT_LT(oe_ratio, plain_ratio - 0.02);

    // And the exposure distribution itself is pushed hard toward
    // uniform confidence.
    data::Dataset exposure_copy = exposure;
    EXPECT_LT(mean_msp(oe, exposure_copy),
              mean_msp(plain, exposure_copy) - 0.1);
}

TEST_F(FamilyFixture, OutlierExposureValidatesInput)
{
    nn::Classifier model(nn::Architecture::kResNet18, 12, 6, 9);
    nn::TrainConfig tc;
    tc.epochs = 1;
    EXPECT_THROW(model.trainWithOutlierExposure(
                     train.x, train.labels, nn::Matrix(1, 12), tc),
                 NazarError);
    EXPECT_THROW(model.trainWithOutlierExposure(
                     train.x, train.labels, nn::Matrix(8, 5), tc),
                 NazarError);
    EXPECT_THROW(model.trainWithOutlierExposure(train.x, train.labels,
                                                train.x, tc, -0.5),
                 NazarError);
}

} // namespace
} // namespace nazar::detect
