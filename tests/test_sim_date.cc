/**
 * @file
 * Tests for simulated calendar time and analysis windows.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/sim_date.h"

namespace nazar {
namespace {

TEST(SimDate, EpochIsJanuaryFirst)
{
    SimDate d(0);
    EXPECT_EQ(d.month(), 1);
    EXPECT_EQ(d.dayOfMonth(), 1);
    EXPECT_EQ(d.toString(), "2020-01-01");
}

TEST(SimDate, LeapFebruary)
{
    // 2020 is a leap year: day 59 is Feb 29.
    SimDate d(31 + 28);
    EXPECT_EQ(d.month(), 2);
    EXPECT_EQ(d.dayOfMonth(), 29);
    EXPECT_EQ(d.toString(), "2020-02-29");
}

TEST(SimDate, MarchFirstAfterLeapDay)
{
    SimDate d(31 + 29);
    EXPECT_EQ(d.toString(), "2020-03-01");
}

TEST(SimDate, EndOfDefaultPeriodIsApril21)
{
    SimDate d(kSimPeriodDays - 1);
    EXPECT_EQ(d.toString(), "2020-04-21");
}

TEST(SimDate, DateTimeStringFormatting)
{
    SimDate d(17, 6 * 3600 + 2 * 60 + 1);
    EXPECT_EQ(d.toDateTimeString(), "2020-01-18 06:02:01");
}

TEST(SimDate, RejectsBadConstruction)
{
    EXPECT_THROW(SimDate(-1), NazarError);
    EXPECT_THROW(SimDate(0, -5), NazarError);
    EXPECT_THROW(SimDate(0, 86400), NazarError);
}

TEST(SimDate, Ordering)
{
    EXPECT_LT(SimDate(1, 100), SimDate(1, 200));
    EXPECT_LT(SimDate(1, 86399), SimDate(2, 0));
    EXPECT_EQ(SimDate(3, 7), SimDate(3, 7));
}

TEST(TimeWindows, EvenSplit)
{
    auto windows = makeTimeWindows(112, 8);
    ASSERT_EQ(windows.size(), 8u);
    for (const auto &w : windows)
        EXPECT_EQ(w.endDay - w.beginDay, 14);
    EXPECT_EQ(windows.front().beginDay, 0);
    EXPECT_EQ(windows.back().endDay, 112);
}

TEST(TimeWindows, UnevenSplitCoversEverything)
{
    auto windows = makeTimeWindows(10, 3);
    ASSERT_EQ(windows.size(), 3u);
    int covered = 0;
    int prev_end = 0;
    for (const auto &w : windows) {
        EXPECT_EQ(w.beginDay, prev_end);
        covered += w.endDay - w.beginDay;
        prev_end = w.endDay;
    }
    EXPECT_EQ(covered, 10);
}

TEST(TimeWindows, ContainsIsHalfOpen)
{
    auto windows = makeTimeWindows(20, 2);
    EXPECT_TRUE(windows[0].contains(0));
    EXPECT_TRUE(windows[0].contains(9));
    EXPECT_FALSE(windows[0].contains(10));
    EXPECT_TRUE(windows[1].contains(10));
    EXPECT_FALSE(windows[1].contains(20));
}

TEST(TimeWindows, RejectsBadArguments)
{
    EXPECT_THROW(makeTimeWindows(0, 1), NazarError);
    EXPECT_THROW(makeTimeWindows(5, 0), NazarError);
    EXPECT_THROW(makeTimeWindows(5, 6), NazarError);
}

class WindowSplitTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(WindowSplitTest, PartitionProperty)
{
    auto [days, count] = GetParam();
    auto windows = makeTimeWindows(days, count);
    ASSERT_EQ(windows.size(), static_cast<size_t>(count));
    // Every day belongs to exactly one window.
    for (int day = 0; day < days; ++day) {
        int owners = 0;
        for (const auto &w : windows)
            owners += w.contains(day) ? 1 : 0;
        EXPECT_EQ(owners, 1) << "day " << day;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowSplitTest,
    ::testing::Values(std::pair{112, 8}, std::pair{112, 4},
                      std::pair{7, 7}, std::pair{13, 5},
                      std::pair{100, 3}, std::pair{1, 1}));

} // namespace
} // namespace nazar
