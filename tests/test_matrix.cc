/**
 * @file
 * Tests for the dense matrix type.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "nn/matrix.h"

namespace nazar::nn {
namespace {

TEST(Matrix, ConstructionAndFill)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.sum(), 0.0);
    m.fill(1.5);
    EXPECT_NEAR(m.sum(), 9.0, 1e-12);
    m.setZero();
    EXPECT_EQ(m.sum(), 0.0);
}

TEST(Matrix, FromRowsAndAccess)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_EQ(m(0, 0), 1.0);
    EXPECT_EQ(m(1, 1), 4.0);
    EXPECT_THROW(Matrix::fromRows({{1, 2}, {3}}), NazarError);
}

TEST(Matrix, RowVector)
{
    Matrix r = Matrix::rowVector({5, 6, 7});
    EXPECT_EQ(r.rows(), 1u);
    EXPECT_EQ(r.cols(), 3u);
    EXPECT_EQ(r(0, 2), 7.0);
    EXPECT_EQ(r.rowVec(0), (std::vector<double>{5, 6, 7}));
}

TEST(Matrix, SetRow)
{
    Matrix m(2, 2);
    m.setRow(1, {8, 9});
    EXPECT_EQ(m(1, 0), 8.0);
    EXPECT_THROW(m.setRow(2, {1, 2}), NazarError);
    EXPECT_THROW(m.setRow(0, {1}), NazarError);
}

TEST(Matrix, Arithmetic)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{10, 20}, {30, 40}});
    Matrix c = a + b;
    EXPECT_EQ(c(1, 1), 44.0);
    c -= a;
    EXPECT_TRUE(c.approxEquals(b));
    Matrix d = a * 2.0;
    EXPECT_EQ(d(0, 1), 4.0);
    Matrix h = a.cwiseProduct(b);
    EXPECT_EQ(h(1, 0), 90.0);
    EXPECT_THROW(a + Matrix(1, 2), NazarError);
}

TEST(Matrix, Matmul)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    Matrix c = a.matmul(b);
    EXPECT_TRUE(c.approxEquals(Matrix::fromRows({{19, 22}, {43, 50}})));
    EXPECT_THROW(a.matmul(Matrix(3, 2)), NazarError);
}

TEST(Matrix, TransposeMatmulAgainstExplicit)
{
    Rng rng(1);
    Matrix a = Matrix::randomNormal(4, 3, 1.0, rng);
    Matrix b = Matrix::randomNormal(4, 5, 1.0, rng);
    Matrix expected = a.transposed().matmul(b);
    EXPECT_TRUE(a.transposeMatmul(b).approxEquals(expected, 1e-9));
}

TEST(Matrix, MatmulTransposeAgainstExplicit)
{
    Rng rng(2);
    Matrix a = Matrix::randomNormal(4, 3, 1.0, rng);
    Matrix b = Matrix::randomNormal(6, 3, 1.0, rng);
    Matrix expected = a.matmul(b.transposed());
    EXPECT_TRUE(a.matmulTranspose(b).approxEquals(expected, 1e-9));
}

TEST(Matrix, TransposedTwiceIsIdentity)
{
    Rng rng(3);
    Matrix a = Matrix::randomNormal(5, 7, 1.0, rng);
    EXPECT_TRUE(a.transposed().transposed().approxEquals(a));
}

TEST(Matrix, RowBroadcasts)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    m.addRowBroadcast(Matrix::rowVector({10, 20}));
    EXPECT_TRUE(m.approxEquals(Matrix::fromRows({{11, 22}, {13, 24}})));
    m.mulRowBroadcast(Matrix::rowVector({2, 0.5}));
    EXPECT_TRUE(m.approxEquals(Matrix::fromRows({{22, 11}, {26, 12}})));
    EXPECT_THROW(m.addRowBroadcast(Matrix(2, 2)), NazarError);
}

TEST(Matrix, ColumnAggregates)
{
    Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_TRUE(m.colSum().approxEquals(Matrix::rowVector({4, 6})));
    EXPECT_TRUE(m.colMean().approxEquals(Matrix::rowVector({2, 3})));
}

TEST(Matrix, NormAndMaxAbs)
{
    Matrix m = Matrix::fromRows({{3, -4}});
    EXPECT_NEAR(m.norm(), 5.0, 1e-12);
    EXPECT_EQ(m.maxAbs(), 4.0);
    EXPECT_EQ(Matrix().maxAbs(), 0.0);
}

TEST(Matrix, ArgmaxRow)
{
    Matrix m = Matrix::fromRows({{1, 9, 3}, {7, 2, 5}});
    EXPECT_EQ(m.argmaxRow(0), 1u);
    EXPECT_EQ(m.argmaxRow(1), 0u);
    EXPECT_THROW(m.argmaxRow(2), NazarError);
}

TEST(Matrix, SelectRows)
{
    Matrix m = Matrix::fromRows({{1, 1}, {2, 2}, {3, 3}});
    Matrix s = m.selectRows({2, 0});
    EXPECT_TRUE(s.approxEquals(Matrix::fromRows({{3, 3}, {1, 1}})));
    EXPECT_THROW(m.selectRows({5}), NazarError);
}

TEST(Matrix, UnaryOp)
{
    Matrix m = Matrix::fromRows({{-1, 2}});
    Matrix a = m.unaryOp([](double v) { return v * v; });
    EXPECT_TRUE(a.approxEquals(Matrix::fromRows({{1, 4}})));
}

TEST(Matrix, RandomNormalMoments)
{
    Rng rng(7);
    Matrix m = Matrix::randomNormal(100, 100, 2.0, rng);
    double mean = m.sum() / m.size();
    EXPECT_NEAR(mean, 0.0, 0.05);
    double sq = 0.0;
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            sq += m(r, c) * m(r, c);
    EXPECT_NEAR(sq / m.size(), 4.0, 0.2);
}

TEST(Matrix, CholeskyFactorOfKnownMatrix)
{
    // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]].
    Matrix a = Matrix::fromRows({{4, 2}, {2, 3}});
    Matrix l = a.choleskyFactor();
    EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
    EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
    EXPECT_NEAR(l(0, 1), 0.0, 1e-12);
    EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
    // L L^T reconstructs A.
    EXPECT_TRUE(l.matmulTranspose(l).approxEquals(a, 1e-12));
}

TEST(Matrix, CholeskyRejectsNonSpd)
{
    EXPECT_THROW(Matrix::fromRows({{1, 2}, {2, 1}}).choleskyFactor(),
                 NazarError); // indefinite
    EXPECT_THROW(Matrix(2, 3).choleskyFactor(), NazarError);
}

TEST(Matrix, CholeskySolveRecoversSolution)
{
    Rng rng(21);
    // Build SPD A = B B^T + I and a known x; solve A y = A x.
    Matrix b = Matrix::randomNormal(5, 5, 1.0, rng);
    Matrix a = b.matmulTranspose(b);
    for (size_t i = 0; i < 5; ++i)
        a(i, i) += 1.0;
    std::vector<double> x = {1.0, -2.0, 0.5, 3.0, -0.25};
    // rhs = A x.
    std::vector<double> rhs(5, 0.0);
    for (size_t i = 0; i < 5; ++i)
        for (size_t j = 0; j < 5; ++j)
            rhs[i] += a(i, j) * x[j];
    Matrix l = a.choleskyFactor();
    std::vector<double> solved = l.choleskySolve(rhs);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_NEAR(solved[i], x[i], 1e-9);
    EXPECT_THROW(l.choleskySolve({1.0}), NazarError);
}

TEST(Matrix, ApproxEqualsRespectsEps)
{
    Matrix a = Matrix::fromRows({{1.0}});
    Matrix b = Matrix::fromRows({{1.0 + 1e-6}});
    EXPECT_FALSE(a.approxEquals(b, 1e-9));
    EXPECT_TRUE(a.approxEquals(b, 1e-5));
    EXPECT_FALSE(a.approxEquals(Matrix(1, 2)));
}

} // namespace
} // namespace nazar::nn
