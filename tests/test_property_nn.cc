/**
 * @file
 * Property tests for the NN substrate: whole-network gradient checks
 * in both train and eval modes, and algebraic invariances.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "data/domain.h"
#include "nn/classifier.h"
#include "nn/loss.h"

namespace nazar::nn {
namespace {

/** Probe loss over the whole network: L = sum(logits .* R). */
double
probeLoss(Classifier &model, const Matrix &x, const Matrix &probe,
          Mode mode)
{
    return model.net().forward(x, mode).cwiseProduct(probe).sum();
}

class WholeNetGradTest : public ::testing::TestWithParam<Architecture>
{
};

TEST_P(WholeNetGradTest, InputGradientMatchesFiniteDifferences)
{
    Classifier model(GetParam(), 8, 4, 21);
    Rng rng(5);
    Matrix x = Matrix::randomNormal(4, 8, 1.0, rng);
    Matrix probe = Matrix::randomNormal(4, 4, 1.0, rng);

    for (Mode mode : {Mode::kTrain, Mode::kEval}) {
        model.net().forward(x, mode);
        model.net().zeroGrads();
        Matrix analytic = model.net().backward(probe, mode);

        Matrix numeric(x.rows(), x.cols());
        for (size_t r = 0; r < x.rows(); ++r) {
            for (size_t c = 0; c < x.cols(); ++c) {
                Matrix xp = x, xm = x;
                xp(r, c) += 1e-6;
                xm(r, c) -= 1e-6;
                numeric(r, c) = (probeLoss(model, xp, probe, mode) -
                                 probeLoss(model, xm, probe, mode)) /
                                2e-6;
            }
        }
        // Train mode re-estimates batch statistics each forward, so
        // the finite-difference probes see slightly different
        // normalizations; eval mode is exact.
        double tol = mode == Mode::kEval ? 1e-5 : 1e-4;
        EXPECT_TRUE(analytic.approxEquals(numeric, tol))
            << "mode " << static_cast<int>(mode) << " arch "
            << toString(GetParam());
    }
}

TEST_P(WholeNetGradTest, AdaptModeGradientReachesOnlyBnParams)
{
    Classifier model(GetParam(), 8, 4, 23);
    Rng rng(7);
    Matrix x = Matrix::randomNormal(6, 8, 1.0, rng);
    Matrix probe = Matrix::randomNormal(6, 4, 1.0, rng);

    model.net().zeroGrads();
    model.net().forward(x, Mode::kAdapt);
    model.net().backward(probe, Mode::kAdapt);

    // All kAdapt-exposed params (BN affines) have gradients...
    double bn_grad = 0.0;
    for (Param *p : model.net().params(Mode::kAdapt))
        bn_grad += p->grad.maxAbs();
    EXPECT_GT(bn_grad, 0.0);

    // ...and nothing else accumulated any.
    auto all = model.net().params(Mode::kTrain);
    auto bn = model.net().params(Mode::kAdapt);
    for (Param *p : all) {
        bool is_bn = std::find(bn.begin(), bn.end(), p) != bn.end();
        if (!is_bn)
            EXPECT_EQ(p->grad.maxAbs(), 0.0) << p->name;
    }
}

INSTANTIATE_TEST_SUITE_P(Tiers, WholeNetGradTest,
                         ::testing::Values(Architecture::kResNet18,
                                           Architecture::kResNet34,
                                           Architecture::kResNet50));

TEST(NnInvariants, SoftmaxShiftInvariance)
{
    Rng rng(11);
    Matrix z = Matrix::randomNormal(5, 6, 2.0, rng);
    Matrix shifted = z;
    shifted.addRowBroadcast(Matrix(1, 6, 7.5));
    EXPECT_TRUE(softmax(z).approxEquals(softmax(shifted), 1e-9));
}

TEST(NnInvariants, EntropyBoundedByLogK)
{
    Rng rng(13);
    for (int trial = 0; trial < 30; ++trial) {
        Matrix z = Matrix::randomNormal(3, 7, rng.uniform(0.1, 4.0),
                                        rng);
        for (double h : softmaxEntropy(z)) {
            EXPECT_GE(h, 0.0);
            EXPECT_LE(h, std::log(7.0) + 1e-9);
        }
    }
}

TEST(NnInvariants, MspBoundedByUniformAndOne)
{
    Rng rng(17);
    for (int trial = 0; trial < 30; ++trial) {
        Matrix z = Matrix::randomNormal(3, 5, rng.uniform(0.1, 4.0),
                                        rng);
        for (double s : maxSoftmax(z)) {
            EXPECT_GE(s, 1.0 / 5.0 - 1e-9);
            EXPECT_LE(s, 1.0);
        }
    }
}

TEST(NnInvariants, TrainingIsDeterministicGivenSeeds)
{
    data::DomainConfig dc;
    dc.numClasses = 5;
    dc.featureDim = 8;
    dc.seed = 31;
    data::Domain domain(dc);
    Rng rng_a(1), rng_b(1);
    auto train_a = domain.makeBalancedDataset(30, rng_a);
    auto train_b = domain.makeBalancedDataset(30, rng_b);

    Classifier a(Architecture::kResNet18, 8, 5, 9);
    Classifier b(Architecture::kResNet18, 8, 5, 9);
    TrainConfig tc;
    tc.epochs = 5;
    a.trainSupervised(train_a.x, train_a.labels, tc);
    b.trainSupervised(train_b.x, train_b.labels, tc);

    Rng rng_test(2);
    Matrix x = Matrix::randomNormal(10, 8, 1.0, rng_test);
    EXPECT_TRUE(a.logits(x).approxEquals(b.logits(x), 1e-12));
}

TEST(NnInvariants, EvalForwardIsStateless)
{
    Classifier model(Architecture::kResNet34, 8, 4, 3);
    Rng rng(19);
    Matrix x = Matrix::randomNormal(6, 8, 1.5, rng);
    Matrix first = model.logits(x);
    for (int i = 0; i < 5; ++i)
        model.logits(Matrix::randomNormal(4, 8, 2.0, rng));
    EXPECT_TRUE(model.logits(x).approxEquals(first, 1e-12));
}

TEST(NnInvariants, AdaptForwardMovesTowardBatchDistribution)
{
    // After enough adapt-mode forwards on shifted data, running stats
    // reflect that data, and eval confidence on it increases.
    Classifier model(Architecture::kResNet18, 8, 4, 29);
    Rng rng(23);
    data::DomainConfig dc;
    dc.numClasses = 4;
    dc.featureDim = 8;
    dc.prototypeScale = 2.0;
    dc.seed = 5;
    data::Domain domain(dc);
    auto train = domain.makeBalancedDataset(50, rng);
    TrainConfig tc;
    tc.epochs = 10;
    model.trainSupervised(train.x, train.labels, tc);

    // Shift all inputs strongly.
    auto data = domain.makeBalancedDataset(30, rng);
    Matrix shifted = data.x;
    shifted.addRowBroadcast(Matrix(1, 8, 2.0));

    double before = model.accuracy(shifted, data.labels);
    for (int i = 0; i < 30; ++i)
        model.logits(shifted, Mode::kAdapt); // stat refresh only
    double after = model.accuracy(shifted, data.labels);
    EXPECT_GE(after + 1e-9, before);
}

} // namespace
} // namespace nazar::nn
