/**
 * @file
 * Tests for the fleet simulation: device, cloud, and the end-to-end
 * runner on a miniature workload.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "common/logging.h"
#include "data/apps.h"
#include "obs/metrics.h"
#include "sim/runner.h"

namespace nazar::sim {
namespace {

/** Silence library logging for the tests. */
struct QuietLogs : ::testing::Test
{
    QuietLogs() { setLogLevel(LogLevel::kSilent); }
    ~QuietLogs() override { setLogLevel(LogLevel::kInfo); }
};

data::AppSpec
tinyApp()
{
    return data::makeAnimalsApp(13, 8);
}

nn::Classifier
trainTinyModel(const data::AppSpec &app)
{
    Rng rng(1);
    auto train = app.domain.makeBalancedDataset(60, rng);
    nn::Classifier model(nn::Architecture::kResNet18,
                         app.domain.featureDim(),
                         app.domain.numClasses(), 5);
    nn::TrainConfig tc;
    tc.epochs = 20;
    model.trainSupervised(train.x, train.labels, tc);
    return model;
}

data::StreamEvent
makeEvent(const data::AppSpec &app, int device, int location,
          data::Weather weather, uint64_t seed)
{
    Rng rng(seed);
    data::StreamEvent ev;
    ev.when = SimDate(3, 1000);
    ev.deviceId = device;
    ev.locationId = location;
    ev.weather = weather;
    ev.label = static_cast<int>(rng.index(app.domain.numClasses()));
    ev.features = app.domain.sample(ev.label, rng);
    if (weather != data::Weather::kClear) {
        data::Corruptor corr(app.domain.featureDim());
        ev.features = corr.apply(ev.features,
                                 data::weatherCorruption(weather), 3,
                                 rng);
        ev.corruption = data::weatherCorruption(weather);
        ev.severity = 3;
        ev.trueDrift = true;
    }
    return ev;
}

TEST(Device, ContextMatchesDriftLogColumns)
{
    data::AppSpec app = tinyApp();
    Device dev(5, "tibet", 0);
    auto ev = makeEvent(app, 5, 1, data::Weather::kSnow, 2);
    rca::AttributeSet context = dev.contextFor(ev);
    EXPECT_EQ(context.size(), 4u);
    EXPECT_TRUE(context.hasColumn(driftlog::columns::kWeather));
    EXPECT_TRUE(context.hasColumn(driftlog::columns::kLocation));
    EXPECT_TRUE(context.hasColumn(driftlog::columns::kDeviceId));
    EXPECT_TRUE(context.hasColumn(driftlog::columns::kDeviceModel));
}

TEST(Device, InferProducesConsistentOutcomeAndEntry)
{
    data::AppSpec app = tinyApp();
    nn::Classifier base = trainTinyModel(app);
    nn::Classifier scratch = base.clone();
    nn::BnPatch clean = base.bnPatch();
    detect::MspDetector detector(0.9);

    Device dev(3, "beijing", 0);
    auto ev = makeEvent(app, 3, 2, data::Weather::kClear, 3);
    InferenceOutcome out = dev.infer(ev, scratch, clean, detector);
    EXPECT_GE(out.predicted, 0);
    EXPECT_LT(out.predicted,
              static_cast<int>(app.domain.numClasses()));
    EXPECT_GT(out.msp, 0.0);
    EXPECT_EQ(out.versionId, 0); // empty pool: clean model

    driftlog::DriftLogEntry entry = dev.makeLogEntry(ev, out);
    EXPECT_EQ(entry.deviceId, "android_3");
    EXPECT_EQ(entry.location, "beijing");
    EXPECT_EQ(entry.weather, "clear-day");
    EXPECT_EQ(entry.drift, out.driftFlag);
    EXPECT_EQ(entry.modelVersion, 0);
}

TEST(Device, UsesInstalledVersionWhenContextMatches)
{
    data::AppSpec app = tinyApp();
    nn::Classifier base = trainTinyModel(app);
    nn::Classifier scratch = base.clone();
    nn::BnPatch clean = base.bnPatch();
    detect::MspDetector detector(0.9);

    Device dev(3, "beijing", 0);
    deploy::ModelVersion v;
    v.id = 42;
    v.cause = rca::AttributeSet(
        {{driftlog::columns::kWeather, driftlog::Value("snow")}});
    v.patch = clean;
    v.updatedAt = 1;
    dev.pool().install(v);

    auto snowy = makeEvent(app, 3, 2, data::Weather::kSnow, 4);
    EXPECT_EQ(dev.infer(snowy, scratch, clean, detector).versionId, 42);
    auto clear = makeEvent(app, 3, 2, data::Weather::kClear, 5);
    EXPECT_EQ(dev.infer(clear, scratch, clean, detector).versionId, 0);
}

class CloudTest : public QuietLogs
{
};

TEST_F(CloudTest, CycleFindsPlantedCauseAndAdapts)
{
    data::AppSpec app = tinyApp();
    nn::Classifier base = trainTinyModel(app);
    CloudConfig config;
    config.minAdaptSamples = 16;
    Cloud cloud(config, base);

    Rng rng(9);
    data::Corruptor corr(app.domain.featureDim());
    // 300 entries: half snowy (truly drifted, detector-flagged with
    // high probability emulated as flag=true 80%), half clear
    // (flag=true 15%).
    for (int i = 0; i < 300; ++i) {
        bool snowy = i % 2 == 0;
        driftlog::DriftLogEntry e;
        e.time = SimDate(i % 14);
        int device = static_cast<int>(rng.index(8));
        e.deviceId = data::deviceName(device);
        e.deviceModel = data::deviceModel(device);
        e.location = app.locations[rng.index(7)].name;
        e.weather = snowy ? "snow" : "clear-day";
        e.drift = rng.bernoulli(snowy ? 0.8 : 0.15);

        int label = static_cast<int>(rng.index(app.domain.numClasses()));
        std::vector<double> x = app.domain.sample(label, rng);
        if (snowy)
            x = corr.apply(x, data::CorruptionType::kSnow, 3, rng);
        rca::AttributeSet context({
            {driftlog::columns::kWeather, driftlog::Value(e.weather)},
            {driftlog::columns::kLocation, driftlog::Value(e.location)},
            {driftlog::columns::kDeviceId, driftlog::Value(e.deviceId)},
            {driftlog::columns::kDeviceModel,
             driftlog::Value(e.deviceModel)},
        });
        cloud.ingest(e, Upload{x, context, e.drift});
    }
    EXPECT_EQ(cloud.driftLog().size(), 300u);
    EXPECT_EQ(cloud.uploadCount(), 300u);

    CycleResult cycle = cloud.runCycle(base.bnPatch());
    // The planted cause {weather=snow} must be found and adapted.
    bool found = false;
    for (const auto &c : cycle.analysis.rootCauses)
        if (c.attrs ==
            rca::AttributeSet({{driftlog::columns::kWeather,
                                driftlog::Value("snow")}}))
            found = true;
    EXPECT_TRUE(found);
    ASSERT_FALSE(cycle.newVersions.empty());
    EXPECT_EQ(cycle.newVersions[0].cause.toString(),
              "{weather=snow}");
    EXPECT_GT(cycle.adaptedSampleCount, 0u);
    // Every new version was published to the registry (blob store)
    // before deployment, and can be reconstructed from it.
    for (const auto &version : cycle.newVersions) {
        ASSERT_TRUE(cloud.registry().contains(version.id));
        deploy::ModelVersion fetched =
            cloud.registry().fetch(version.id);
        EXPECT_EQ(fetched.cause, version.cause);
        EXPECT_TRUE(fetched.patch.approxEquals(version.patch, 1e-12));
    }
    EXPECT_GT(cloud.blobStore().totalBytes(), 0u);
    // Clean recalibration happened too (plenty of clean uploads).
    EXPECT_TRUE(cycle.newCleanPatch.has_value());
    // Buffers archived after the cycle.
    EXPECT_EQ(cloud.driftLog().size(), 0u);
    EXPECT_EQ(cloud.uploadCount(), 0u);
    EXPECT_EQ(cloud.totalIngested(), 300u);
}

TEST_F(CloudTest, NoDriftNoVersions)
{
    data::AppSpec app = tinyApp();
    nn::Classifier base = trainTinyModel(app);
    Cloud cloud(CloudConfig{}, base);
    Rng rng(10);
    for (int i = 0; i < 100; ++i) {
        driftlog::DriftLogEntry e;
        e.time = SimDate(0);
        e.deviceId = "android_0";
        e.deviceModel = "pixel_6";
        e.location = "tibet";
        e.weather = "clear-day";
        e.drift = false;
        cloud.ingest(e, std::nullopt);
    }
    CycleResult cycle = cloud.runCycle(base.bnPatch());
    EXPECT_TRUE(cycle.analysis.rootCauses.empty());
    EXPECT_TRUE(cycle.newVersions.empty());
}

TEST_F(CloudTest, FlushArchivesWithoutAnalysis)
{
    data::AppSpec app = tinyApp();
    nn::Classifier base = trainTinyModel(app);
    Cloud cloud(CloudConfig{}, base);
    driftlog::DriftLogEntry e;
    e.time = SimDate(0);
    e.deviceId = "android_0";
    e.deviceModel = "pixel_6";
    e.location = "tibet";
    e.weather = "clear-day";
    cloud.ingest(e, Upload{{1.0, 2.0}, {}, false});
    EXPECT_EQ(cloud.allUploads().size(), 1u);
    cloud.flush();
    EXPECT_EQ(cloud.uploadCount(), 0u);
    EXPECT_EQ(cloud.driftLog().size(), 0u);
}

/** An untrained base model — enough for ingest-path tests. */
nn::Classifier
untrainedModel(const data::AppSpec &app)
{
    return nn::Classifier(nn::Architecture::kResNet18,
                          app.domain.featureDim(),
                          app.domain.numClasses(), 5);
}

driftlog::DriftLogEntry
plainEntry(int i)
{
    driftlog::DriftLogEntry e;
    e.time = SimDate(i % 14);
    e.deviceId = "android_0";
    e.deviceModel = "pixel_6";
    e.location = "tibet";
    e.weather = "clear-day";
    e.drift = false;
    return e;
}

TEST_F(CloudTest, IngestFromDedupsRetransmissions)
{
    data::AppSpec app = tinyApp();
    nn::Classifier base = untrainedModel(app);
    Cloud cloud(CloudConfig{}, base);
    EXPECT_TRUE(cloud.ingestFrom(0, 0, plainEntry(0), std::nullopt));
    EXPECT_TRUE(cloud.ingestFrom(0, 1, plainEntry(1), std::nullopt));
    // At-least-once delivery retransmits seq 0 and 1; both rejected.
    EXPECT_FALSE(cloud.ingestFrom(0, 0, plainEntry(0), std::nullopt));
    EXPECT_FALSE(cloud.ingestFrom(0, 1, plainEntry(1), std::nullopt));
    // Another device's seq 0 is a different stream.
    EXPECT_TRUE(cloud.ingestFrom(1, 0, plainEntry(2), std::nullopt));
    EXPECT_EQ(cloud.driftLogSize(), 3u);
    EXPECT_EQ(cloud.dedupHits(), 2u);
    EXPECT_EQ(cloud.totalIngested(), 3u);
}

TEST_F(CloudTest, DedupWindowRejectsBelowFloor)
{
    data::AppSpec app = tinyApp();
    nn::Classifier base = untrainedModel(app);
    CloudConfig config;
    config.ingestDedupWindow = 4;
    Cloud cloud(config, base);
    for (uint64_t seq = 0; seq < 8; ++seq)
        EXPECT_TRUE(cloud.ingestFrom(0, seq, plainEntry(0),
                                     std::nullopt));
    // seq 2 slid out of the 4-wide window; the floor still rejects it
    // rather than double-counting a late retransmission.
    EXPECT_FALSE(cloud.ingestFrom(0, 2, plainEntry(0), std::nullopt));
    EXPECT_EQ(cloud.dedupHits(), 1u);
    EXPECT_EQ(cloud.driftLogSize(), 8u);
}

TEST_F(CloudTest, ConcurrentIngestAndReadersAreSafe)
{
    // TSAN regression for the cloud buffer race: before the fix,
    // allUploads()/uploadCount()/driftLog() read the buffers without
    // taking ingestMutex_.
    data::AppSpec app = tinyApp();
    nn::Classifier base = untrainedModel(app);
    Cloud cloud(CloudConfig{}, base);
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 200;
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&, w] {
            for (int i = 0; i < kPerWriter; ++i)
                cloud.ingestFrom(w, static_cast<uint64_t>(i),
                                 plainEntry(i),
                                 Upload{{1.0, 2.0}, {}, false});
        });
    std::thread reader([&] {
        size_t sink = 0;
        while (!done.load()) {
            sink += cloud.allUploads().size();
            sink += cloud.uploadCount();
            sink += cloud.driftLogSize();
            sink += cloud.dedupHits();
        }
        EXPECT_GE(sink, 0u);
    });
    for (auto &t : writers)
        t.join();
    done = true;
    reader.join();
    EXPECT_EQ(cloud.totalIngested(),
              static_cast<size_t>(kWriters * kPerWriter));
    EXPECT_EQ(cloud.uploadCount(),
              static_cast<size_t>(kWriters * kPerWriter));
    EXPECT_EQ(cloud.dedupHits(), 0u);
}

TEST_F(CloudTest, RunCycleOnEmptyLogIsGraceful)
{
    data::AppSpec app = tinyApp();
    nn::Classifier base = untrainedModel(app);
    Cloud cloud(CloudConfig{}, base);
    CycleResult cycle = cloud.runCycle(base.bnPatch());
    EXPECT_TRUE(cycle.analysis.rootCauses.empty());
    EXPECT_TRUE(cycle.newVersions.empty());
    EXPECT_FALSE(cycle.newCleanPatch.has_value());
    EXPECT_EQ(cycle.adaptedSampleCount, 0u);
}

TEST_F(CloudTest, FlushRecordsArchivedCountsInObs)
{
    data::AppSpec app = tinyApp();
    nn::Classifier base = untrainedModel(app);
    Cloud cloud(CloudConfig{}, base);
    auto &rows = obs::Registry::global().counter("sim.cloud.flushed.rows");
    auto &ups =
        obs::Registry::global().counter("sim.cloud.flushed.uploads");
    uint64_t rows0 = rows.value();
    uint64_t ups0 = ups.value();
    for (int i = 0; i < 5; ++i)
        cloud.ingest(plainEntry(i),
                     i < 2 ? std::optional<Upload>(
                                 Upload{{1.0, 2.0}, {}, false})
                           : std::nullopt);
    cloud.flush();
    EXPECT_EQ(rows.value() - rows0, 5u);
    EXPECT_EQ(ups.value() - ups0, 2u);
}

class RunnerTest : public QuietLogs
{
  protected:
    RunnerConfig
    smallRun(Strategy strategy)
    {
        RunnerConfig config;
        config.arch = nn::Architecture::kResNet18;
        config.strategy = strategy;
        config.windows = 3;
        config.workload.days = 21;
        config.workload.devicesPerLocation = 3;
        config.workload.imagesPerDevicePerDay = 3.0;
        config.train.epochs = 20;
        config.cloud.minAdaptSamples = 16;
        config.uploadSampleRate = 0.5;
        config.seed = 17;
        return config;
    }
};

TEST_F(RunnerTest, ProducesWindowMetricsForAllStrategies)
{
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    for (Strategy s : {Strategy::kNazar, Strategy::kAdaptAll,
                       Strategy::kNoAdapt}) {
        Runner runner(app, weather, smallRun(s));
        RunResult result = runner.run();
        ASSERT_EQ(result.windows.size(), 3u) << toString(s);
        size_t total = 0;
        for (const auto &w : result.windows) {
            total += w.events;
            EXPECT_GE(w.accuracyAll(), 0.0);
            EXPECT_LE(w.accuracyAll(), 1.0);
        }
        EXPECT_GT(total, 100u);
        EXPECT_GT(result.baseCleanAccuracy, 0.5);
    }
}

TEST_F(RunnerTest, NoAdaptNeverCreatesVersions)
{
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    Runner runner(app, weather, smallRun(Strategy::kNoAdapt));
    RunResult result = runner.run();
    for (const auto &w : result.windows) {
        EXPECT_EQ(w.newVersions, 0u);
        EXPECT_EQ(w.poolSize, 0u);
    }
    EXPECT_EQ(result.totalAdaptSeconds, 0.0);
}

TEST_F(RunnerTest, NazarCreatesVersionsUnderDrift)
{
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    Runner runner(app, weather, smallRun(Strategy::kNazar));
    RunResult result = runner.run();
    size_t versions = 0, causes = 0;
    for (const auto &w : result.windows) {
        versions += w.newVersions;
        causes += w.rootCauses;
    }
    EXPECT_GT(causes, 0u);
    EXPECT_GT(versions, 0u);
    EXPECT_GT(result.totalRcaSeconds, 0.0);
}

TEST_F(RunnerTest, DeterministicAcrossRuns)
{
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    RunResult a = Runner(app, weather, smallRun(Strategy::kNazar)).run();
    RunResult b = Runner(app, weather, smallRun(Strategy::kNazar)).run();
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (size_t i = 0; i < a.windows.size(); ++i) {
        EXPECT_EQ(a.windows[i].events, b.windows[i].events);
        EXPECT_EQ(a.windows[i].correctAll, b.windows[i].correctAll);
        EXPECT_EQ(a.windows[i].flagged, b.windows[i].flagged);
    }
}

TEST_F(RunnerTest, FaultedRunIsReproducibleFromFaultSeed)
{
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    RunnerConfig config = smallRun(Strategy::kNazar);
    config.faults.dropProb = 0.2;
    config.faults.dupProb = 0.1;
    config.faults.pushDropProb = 0.2;
    config.faults.seed = 99;
    RunResult a = Runner(app, weather, config).run();
    RunResult b = Runner(app, weather, config).run();
    ASSERT_EQ(a.windows.size(), b.windows.size());
    for (size_t i = 0; i < a.windows.size(); ++i) {
        EXPECT_EQ(a.windows[i].events, b.windows[i].events);
        EXPECT_EQ(a.windows[i].correctAll, b.windows[i].correctAll);
        EXPECT_EQ(a.windows[i].flagged, b.windows[i].flagged);
        EXPECT_EQ(a.windows[i].staleDevices, b.windows[i].staleDevices);
    }
    // A different fault seed reshapes what the cloud sees.
    config.faults.seed = 100;
    RunResult c = Runner(app, weather, config).run();
    bool differs = false;
    for (size_t i = 0; i < a.windows.size(); ++i)
        differs = differs ||
                  a.windows[i].correctAll != c.windows[i].correctAll ||
                  a.windows[i].staleDevices != c.windows[i].staleDevices;
    EXPECT_TRUE(differs);
}

TEST_F(RunnerTest, HeavyLossDegradesGracefully)
{
    // Half the uplink traffic is lost and pushes frequently miss:
    // the run must still complete every window over the same event
    // stream, adapting on whatever arrives.
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    RunResult clean =
        Runner(app, weather, smallRun(Strategy::kNazar)).run();
    RunnerConfig config = smallRun(Strategy::kNazar);
    config.faults.dropProb = 0.5;
    config.faults.dupProb = 0.2;
    config.faults.delayProb = 0.1;
    config.faults.pushDropProb = 0.3;
    config.faults.offlineProb = 0.1;
    config.faults.queueCapacity = 64;
    RunResult faulted = Runner(app, weather, config).run();
    ASSERT_EQ(faulted.windows.size(), clean.windows.size());
    for (size_t i = 0; i < faulted.windows.size(); ++i) {
        // Faults hit the channel, never the device-side event stream.
        EXPECT_EQ(faulted.windows[i].events, clean.windows[i].events);
        EXPECT_GT(faulted.windows[i].events, 0u);
    }
    EXPECT_GT(faulted.avgAccuracyAll(0), 0.0);
}

TEST_F(RunnerTest, ResultAggregatesAreConsistent)
{
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    RunResult r = Runner(app, weather, smallRun(Strategy::kNazar)).run();
    // Cumulative traces have one point per window and end at the
    // overall average (skip = 0).
    auto trace = r.cumulativeAccuracyAll();
    ASSERT_EQ(trace.size(), r.windows.size());
    EXPECT_NEAR(trace.back(), r.avgAccuracyAll(0), 1e-9);
    // Per-corruption totals equal the drifted-event total.
    size_t drifted = 0;
    for (const auto &w : r.windows)
        drifted += w.driftedEvents;
    size_t per_type = 0;
    for (const auto &[type, acc] : r.perCorruption)
        per_type += acc.total;
    EXPECT_EQ(per_type, drifted);
}

/** Scratch state directory under the test's CWD, removed on exit. */
struct StateDir
{
    std::filesystem::path path;

    explicit StateDir(const std::string &tag)
        : path(std::filesystem::current_path() / ("sim_state_" + tag))
    {
        std::filesystem::remove_all(path);
    }

    ~StateDir() { std::filesystem::remove_all(path); }
};

TEST_F(RunnerTest, PersistenceOnMatchesPersistenceOff)
{
    // Durability with a disarmed injector must not perturb a single
    // deterministic output — only write files.
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    RunResult off =
        Runner(app, weather, smallRun(Strategy::kNazar)).run();
    StateDir dir("equiv");
    RunnerConfig config = smallRun(Strategy::kNazar);
    config.persist.dir = dir.path.string();
    RunResult on = Runner(app, weather, config).run();
    ASSERT_EQ(on.windows.size(), off.windows.size());
    for (size_t i = 0; i < on.windows.size(); ++i) {
        EXPECT_EQ(on.windows[i].events, off.windows[i].events);
        EXPECT_EQ(on.windows[i].correctAll, off.windows[i].correctAll);
        EXPECT_EQ(on.windows[i].flagged, off.windows[i].flagged);
        EXPECT_EQ(on.windows[i].newVersions,
                  off.windows[i].newVersions);
        EXPECT_EQ(on.windows[i].rootCauses, off.windows[i].rootCauses);
        EXPECT_EQ(on.windows[i].skippedCauses,
                  off.windows[i].skippedCauses);
    }
    EXPECT_EQ(on.cloudCrashes, 0u);
    // The final checkpoint leaves a loadable state directory with an
    // empty (truncated) WAL. Snapshots live in the chain format now
    // (snap-NNNNNN.full / .delta), not the legacy snapshot.bin.
    bool has_chain_file = false;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("snap-", 0) == 0)
            has_chain_file = true;
    }
    EXPECT_TRUE(has_chain_file);
    persist::RecoveredState st = persist::recoverDir(dir.path);
    EXPECT_TRUE(st.snapshotLoaded);
    EXPECT_EQ(st.replayedRecords, 0u);
    EXPECT_EQ(st.logicalTime, 3);
}

TEST_F(RunnerTest, SeededCrashRunSurvivesAndRecovers)
{
    // Crash the cloud mid-run at an arbitrary persist-site hit: the
    // runner rebuilds it from the state directory and finishes every
    // window over the same device-side event stream.
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    RunResult clean =
        Runner(app, weather, smallRun(Strategy::kNazar)).run();
    StateDir dir("crash");
    RunnerConfig config = smallRun(Strategy::kNazar);
    config.persist.dir = dir.path.string();
    config.persist.crashAtHit = 500;
    RunResult crashed = Runner(app, weather, config).run();
    EXPECT_GE(crashed.cloudCrashes, 1u);
    ASSERT_EQ(crashed.windows.size(), clean.windows.size());
    for (size_t i = 0; i < crashed.windows.size(); ++i)
        EXPECT_EQ(crashed.windows[i].events, clean.windows[i].events);
    EXPECT_GT(crashed.avgAccuracyAll(0), 0.0);
}

TEST_F(RunnerTest, SkippedCausesAreCountedPerWindow)
{
    // With an absurdly high adaptation threshold every root cause is
    // found but skipped; the per-window counter must surface that.
    data::AppSpec app = tinyApp();
    data::WeatherModel weather(app.locations, 21, 2020);
    RunnerConfig config = smallRun(Strategy::kNazar);
    config.cloud.minAdaptSamples = 100000;
    RunResult r = Runner(app, weather, config).run();
    size_t causes = 0, skipped = 0, versions = 0;
    for (const auto &w : r.windows) {
        EXPECT_LE(w.skippedCauses, w.rootCauses);
        causes += w.rootCauses;
        skipped += w.skippedCauses;
        versions += w.newVersions;
    }
    EXPECT_GT(causes, 0u);
    EXPECT_EQ(skipped, causes);
    EXPECT_EQ(versions, 0u);
}

TEST(WindowMetrics, DerivedRatios)
{
    WindowMetrics w;
    w.events = 10;
    w.driftedEvents = 4;
    w.correctAll = 7;
    w.correctDrifted = 2;
    w.correctClean = 5;
    w.flagged = 3;
    EXPECT_NEAR(w.accuracyAll(), 0.7, 1e-12);
    EXPECT_NEAR(w.accuracyDrifted(), 0.5, 1e-12);
    EXPECT_NEAR(w.accuracyClean(), 5.0 / 6.0, 1e-12);
    EXPECT_NEAR(w.detectionRate(), 0.3, 1e-12);
    WindowMetrics empty;
    EXPECT_EQ(empty.accuracyAll(), 0.0);
    EXPECT_EQ(empty.accuracyDrifted(), 0.0);
}

TEST(Strategy, Names)
{
    EXPECT_EQ(toString(Strategy::kNazar), "nazar");
    EXPECT_EQ(toString(Strategy::kAdaptAll), "adapt-all");
    EXPECT_EQ(toString(Strategy::kNoAdapt), "no-adapt");
}

} // namespace
} // namespace nazar::sim
