/**
 * @file
 * Tests for BnPatch extraction, application and serialization.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "nn/activation.h"
#include "nn/bn_patch.h"
#include "nn/linear.h"

namespace nazar::nn {
namespace {

Sequential
makeNet(uint64_t seed)
{
    Rng rng(seed);
    Sequential net;
    net.add(std::make_unique<Linear>(4, 6, rng));
    net.add(std::make_unique<BatchNorm1d>(6));
    net.add(std::make_unique<Relu>(6));
    net.add(std::make_unique<Linear>(6, 6, rng));
    net.add(std::make_unique<BatchNorm1d>(6));
    net.add(std::make_unique<Linear>(6, 3, rng));
    return net;
}

TEST(BnPatch, ExtractCapturesAllBnLayers)
{
    Sequential net = makeNet(1);
    BnPatch patch = BnPatch::extract(net);
    EXPECT_EQ(patch.layerCount(), 2u);
    EXPECT_EQ(patch.scalarCount(), 2u * 4u * 6u);
    EXPECT_EQ(patch.sizeBytes(), patch.scalarCount() * sizeof(float));
}

TEST(BnPatch, ApplyTransfersState)
{
    Sequential a = makeNet(1);
    Sequential b = makeNet(1);
    // Perturb a's BN state via adapt-mode forwards.
    Rng rng(2);
    for (int i = 0; i < 5; ++i)
        a.forward(Matrix::randomNormal(8, 4, 2.0, rng), Mode::kAdapt);
    EXPECT_FALSE(
        BnPatch::extract(a).approxEquals(BnPatch::extract(b), 1e-9));

    BnPatch::extract(a).apply(b);
    EXPECT_TRUE(
        BnPatch::extract(a).approxEquals(BnPatch::extract(b), 1e-12));
    Matrix x = Matrix::randomNormal(4, 4, 1.0, rng);
    EXPECT_TRUE(a.forward(x, Mode::kEval)
                    .approxEquals(b.forward(x, Mode::kEval), 1e-12));
}

TEST(BnPatch, ApplyRejectsMismatchedLayout)
{
    Sequential net = makeNet(1);
    Rng rng(3);
    Sequential other;
    other.add(std::make_unique<Linear>(4, 6, rng));
    other.add(std::make_unique<BatchNorm1d>(6));
    BnPatch patch = BnPatch::extract(net); // two BN layers
    EXPECT_THROW(patch.apply(other), NazarError);
}

TEST(BnPatch, SaveLoadRoundTrip)
{
    Sequential net = makeNet(4);
    Rng rng(5);
    net.forward(Matrix::randomNormal(8, 4, 1.5, rng), Mode::kAdapt);
    BnPatch patch = BnPatch::extract(net);

    std::stringstream ss;
    patch.save(ss);
    BnPatch loaded = BnPatch::load(ss);
    EXPECT_TRUE(patch.approxEquals(loaded, 1e-12));
}

TEST(BnPatch, LoadRejectsGarbage)
{
    std::stringstream ss("bogus 9 1\n");
    EXPECT_THROW(BnPatch::load(ss), NazarError);
}

TEST(BnPatch, MaxAbsDiffMeasuresDistance)
{
    Sequential a = makeNet(6);
    BnPatch p1 = BnPatch::extract(a);
    EXPECT_EQ(p1.maxAbsDiff(p1), 0.0);

    Rng rng(7);
    a.forward(Matrix::randomNormal(8, 4, 3.0, rng), Mode::kAdapt);
    BnPatch p2 = BnPatch::extract(a);
    EXPECT_GT(p2.maxAbsDiff(p1), 0.0);
}

TEST(BnPatch, EmptyPatchOnBnFreeNetwork)
{
    Rng rng(8);
    Sequential net;
    net.add(std::make_unique<Linear>(4, 3, rng));
    BnPatch patch = BnPatch::extract(net);
    EXPECT_EQ(patch.layerCount(), 0u);
    EXPECT_EQ(patch.scalarCount(), 0u);
    EXPECT_NO_THROW(patch.apply(net));
}

} // namespace
} // namespace nazar::nn
