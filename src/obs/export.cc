/**
 * @file
 * Implementation of the JSON and Prometheus exporters.
 */
#include "export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "obs/span.h"

namespace nazar::obs {

namespace {

/** JSON string escaping (names are ASCII identifiers, but be safe). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Doubles as JSON numbers (JSON has no Infinity/NaN literals). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/** `nazar_` prefix + [a-zA-Z0-9_] sanitization for Prometheus. */
std::string
promName(const std::string &name)
{
    std::string out = "nazar_";
    for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c))
                   ? c
                   : '_';
    return out;
}

std::string
promNumber(double v)
{
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // namespace

void
writeJson(const Snapshot &snap, std::ostream &os)
{
    os << "{\n";
    os << "  \"uptime_seconds\": " << jsonNumber(snap.uptimeSeconds)
       << ",\n";

    os << "  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << jsonNumber(value);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n";

    os << "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"count\": " << h.count
           << ", \"sum\": " << jsonNumber(h.sum)
           << ", \"mean\": " << jsonNumber(h.mean())
           << ", \"buckets\": [";
        for (size_t b = 0; b < h.buckets.size(); ++b) {
            if (b > 0)
                os << ", ";
            os << "{\"le\": ";
            if (b < h.bounds.size())
                os << jsonNumber(h.bounds[b]);
            else
                os << "\"+Inf\"";
            os << ", \"count\": " << h.buckets[b] << "}";
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}";

    std::vector<TraceEvent> trace = traceEvents();
    os << ",\n  \"trace_dropped\": " << traceDropped();
    if (!trace.empty()) {
        os << ",\n  \"trace\": [";
        for (size_t i = 0; i < trace.size(); ++i) {
            os << (i ? ",\n    " : "\n    ") << "{\"name\": \""
               << jsonEscape(trace[i].name)
               << "\", \"tid\": " << trace[i].threadId
               << ", \"start\": " << jsonNumber(trace[i].startSeconds)
               << ", \"dur\": " << jsonNumber(trace[i].durationSeconds)
               << ", \"trace\": " << trace[i].traceId
               << ", \"span\": " << trace[i].spanId
               << ", \"parent\": " << trace[i].parentId << "}";
        }
        os << "\n  ]";
    }
    os << "\n}\n";
}

void
writePrometheus(const Snapshot &snap, std::ostream &os)
{
    os << "# nazar self-monitoring snapshot (uptime "
       << promNumber(snap.uptimeSeconds) << "s)\n";
    for (const auto &[name, value] : snap.counters) {
        std::string p = promName(name);
        os << "# TYPE " << p << "_total counter\n";
        os << p << "_total " << value << "\n";
    }
    for (const auto &[name, value] : snap.gauges) {
        std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n";
        os << p << " " << promNumber(value) << "\n";
    }
    os << "# TYPE nazar_obs_trace_dropped gauge\n";
    os << "nazar_obs_trace_dropped " << traceDropped() << "\n";
    for (const auto &[name, h] : snap.histograms) {
        std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t b = 0; b < h.buckets.size(); ++b) {
            cumulative += h.buckets[b];
            double le = b < h.bounds.size()
                            ? h.bounds[b]
                            : std::numeric_limits<double>::infinity();
            os << p << "_bucket{le=\"" << promNumber(le) << "\"} "
               << cumulative << "\n";
        }
        os << p << "_sum " << promNumber(h.sum) << "\n";
        os << p << "_count " << h.count << "\n";
    }
}

void
writeMetricsFile(const std::string &path)
{
    std::ofstream out(path);
    NAZAR_CHECK(out.good(), "cannot write metrics file: " + path);
    Snapshot snap = Registry::global().snapshot();
    bool prom = path.size() >= 5 &&
                (path.rfind(".prom") == path.size() - 5 ||
                 path.rfind(".txt") == path.size() - 4);
    if (prom)
        writePrometheus(snap, out);
    else
        writeJson(snap, out);
    NAZAR_CHECK(out.good(), "error writing metrics file: " + path);
}

void
writeChromeTrace(std::ostream &os)
{
    std::vector<TraceEvent> trace = traceEvents();
    os << "{\"displayTimeUnit\": \"ms\",\n";
    os << " \"otherData\": {\"trace_dropped\": \"" << traceDropped()
       << "\"},\n";
    os << " \"traceEvents\": [\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    sep();
    os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
          "\"args\": {\"name\": \"nazar\"}}";
    for (const auto &[tid, name] : threadNames()) {
        sep();
        os << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
              "\"tid\": "
           << tid << ", \"args\": {\"name\": \"" << jsonEscape(name)
           << "\"}}";
    }
    for (const TraceEvent &ev : trace) {
        sep();
        os << "{\"ph\": \"X\", \"name\": \"" << jsonEscape(ev.name)
           << "\", \"cat\": \"nazar\", \"pid\": 1, \"tid\": "
           << ev.threadId
           << ", \"ts\": " << jsonNumber(ev.startSeconds * 1e6)
           << ", \"dur\": " << jsonNumber(ev.durationSeconds * 1e6)
           << ", \"args\": {\"trace\": \"" << ev.traceId
           << "\", \"span\": \"" << ev.spanId << "\", \"parent\": \""
           << ev.parentId << "\"}}";
    }
    os << "\n]}\n";
}

void
writeTraceFile(const std::string &path)
{
    std::ofstream out(path);
    NAZAR_CHECK(out.good(), "cannot write trace file: " + path);
    writeChromeTrace(out);
    NAZAR_CHECK(out.good(), "error writing trace file: " + path);
}

} // namespace nazar::obs
