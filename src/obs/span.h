/**
 * @file
 * Scoped spans: RAII timers that feed a histogram named after the
 * span plus an optional in-memory trace buffer.
 *
 * Usage at an instrumentation site:
 *
 *     void Analyzer::analyze(...) {
 *         NAZAR_SPAN("rca.analyze");      // times the whole function
 *         ...
 *     }
 *
 * or, when the measured duration must also flow into a result field
 * (e.g. CycleResult::rcaSeconds):
 *
 *     static obs::SpanSite site("sim.cloud.rca");
 *     obs::ScopedSpan span(site);
 *     ... work ...
 *     result.rcaSeconds = span.stop();   // records AND returns seconds
 *
 * Span naming scheme: `<layer>.<operation>[.<stage>]` with the layer
 * matching the source directory — runtime.*, nn.*, detect.*,
 * driftlog.*, rca.*, sim.*. The span's histogram appears under that
 * exact name in the JSON snapshot.
 *
 * Spans always measure (two steady_clock reads) so stop() can report
 * wall time even with metrics disabled; recording into the histogram
 * and the trace buffer is gated on obs::enabled() / obs::tracing().
 * Like all of obs, spans are inert: no RNG, no data-path effect.
 */
#ifndef NAZAR_OBS_SPAN_H
#define NAZAR_OBS_SPAN_H

#include <chrono>
#include <vector>

#include "obs/metrics.h"

namespace nazar::obs {

/**
 * One span name's registered identity: the histogram durations feed.
 * Construct once per site (function-local static) — construction does
 * the registry lookup, so steady-state spans never touch the map.
 */
class SpanSite
{
  public:
    explicit SpanSite(const char *name)
        : name_(name), hist_(Registry::global().histogram(name))
    {
    }

    const char *name() const { return name_; }
    Histogram &histogram() { return hist_; }

  private:
    const char *name_;
    Histogram &hist_;
};

/**
 * RAII timer for one execution of a span. Records on destruction
 * unless stop() was called first.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(SpanSite &site)
        : site_(&site), start_(std::chrono::steady_clock::now())
    {
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (site_ != nullptr)
            stop();
    }

    /** End the span now: record the duration, return elapsed seconds.
     *  Idempotent (later calls return 0 without recording). */
    double stop();

  private:
    SpanSite *site_; ///< Null once stopped.
    std::chrono::steady_clock::time_point start_;
};

/** Time the rest of the enclosing scope under the given span name. */
#define NAZAR_SPAN(name)                                                \
    static ::nazar::obs::SpanSite NAZAR_SPAN_PASTE_(                    \
        nazar_span_site_, __LINE__)(name);                              \
    ::nazar::obs::ScopedSpan NAZAR_SPAN_PASTE_(nazar_span_,             \
                                               __LINE__)(              \
        NAZAR_SPAN_PASTE_(nazar_span_site_, __LINE__))

/**
 * Like NAZAR_SPAN but names the ScopedSpan `var` so a mid-scope
 * `var.stop()` can end the span (and read its seconds) early.
 */
#define NAZAR_SPAN_BEGIN(var, name)                                     \
    static ::nazar::obs::SpanSite NAZAR_SPAN_PASTE_(                    \
        nazar_span_site_, __LINE__)(name);                              \
    ::nazar::obs::ScopedSpan var(                                       \
        NAZAR_SPAN_PASTE_(nazar_span_site_, __LINE__))

#define NAZAR_SPAN_PASTE_(a, b) NAZAR_SPAN_PASTE2_(a, b)
#define NAZAR_SPAN_PASTE2_(a, b) a##b

// ---- Trace buffer ---------------------------------------------------

/** One completed span occurrence in the trace buffer. */
struct TraceEvent
{
    const char *name;    ///< Span name (static storage at the site).
    size_t threadId;     ///< obs::detail::threadId() of the recorder.
    double startSeconds; ///< Start, relative to the registry epoch.
    double durationSeconds;
};

/**
 * Toggle the in-memory trace buffer (default: off). When on, every
 * finished span appends one TraceEvent; the buffer is bounded
 * (kTraceCapacity) and drops new events once full, counting drops.
 */
void setTracing(bool on);
bool tracing();

/** Bounded trace capacity. */
inline constexpr size_t kTraceCapacity = 8192;

/** Copy of the buffered events, in completion order. */
std::vector<TraceEvent> traceEvents();

/** Events dropped since the last clearTrace(). */
size_t traceDropped();

/** Empty the buffer and zero the drop counter. */
void clearTrace();

} // namespace nazar::obs

#endif // NAZAR_OBS_SPAN_H
