/**
 * @file
 * Scoped spans: RAII timers that feed a histogram named after the
 * span plus an optional in-memory causal trace.
 *
 * Usage at an instrumentation site:
 *
 *     void Analyzer::analyze(...) {
 *         NAZAR_SPAN("rca.analyze");      // times the whole function
 *         ...
 *     }
 *
 * or, when the measured duration must also flow into a result field
 * (e.g. CycleResult::rcaSeconds):
 *
 *     static obs::SpanSite site("sim.cloud.rca");
 *     obs::ScopedSpan span(site);
 *     ... work ...
 *     result.rcaSeconds = span.stop();   // records AND returns seconds
 *
 * Span naming scheme: `<layer>.<operation>[.<stage>]` with the layer
 * matching the source directory — runtime.*, nn.*, detect.*,
 * driftlog.*, rca.*, sim.*, net.*, server.*, persist.*. The span's
 * histogram appears under that exact name in the JSON snapshot.
 *
 * Causal tracing: with tracing on, every finished span becomes one
 * TraceEvent carrying a traceId / spanId / parentId triple. A span's
 * parent is the innermost span still open on the same thread (a
 * thread-local stack NAZAR_SPAN maintains automatically), or a
 * foreign context adopted with ScopedTraceContext — e.g. one decoded
 * off the wire — so one device upload is followable as a single trace
 * across client, reader and committer threads. recordSpan() covers
 * the cross-thread stages (queue wait, group commit) whose start and
 * end are observed on different threads.
 *
 * Spans always measure (two steady_clock reads) so stop() can report
 * wall time even with metrics disabled; recording into the histogram
 * and the trace rings is gated on obs::enabled() / obs::tracing().
 * Like all of obs, spans are inert: no RNG, no data-path effect;
 * tracing-off runs are bit-identical to pre-tracing builds.
 */
#ifndef NAZAR_OBS_SPAN_H
#define NAZAR_OBS_SPAN_H

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace nazar::obs {

/**
 * One span name's registered identity: the histogram durations feed.
 * Construct once per site (function-local static) — construction does
 * the registry lookup, so steady-state spans never touch the map.
 */
class SpanSite
{
  public:
    explicit SpanSite(const char *name)
        : name_(name), hist_(Registry::global().histogram(name))
    {
    }

    const char *name() const { return name_; }
    Histogram &histogram() { return hist_; }

  private:
    const char *name_;
    Histogram &hist_;
};

// ---- Trace context --------------------------------------------------

bool tracing(); // Defined below with the trace buffer API.

/**
 * The causal coordinates a span hands its children: the trace it
 * belongs to and its own span id (the children's parentId). A zero
 * traceId means "no context" — spans started under it become roots.
 */
struct TraceContext
{
    uint64_t traceId = 0;
    uint64_t spanId = 0;

    bool valid() const { return traceId != 0; }
};

/** Mint a fresh root context (traceId == spanId, both nonzero). Ids
 *  come from a process-wide relaxed counter — no RNG. */
TraceContext newTraceContext();

/** The calling thread's innermost active context: the top of its span
 *  stack (open ScopedSpan or adopted ScopedTraceContext), or an
 *  invalid context when the stack is empty. */
TraceContext currentTraceContext();

/**
 * Adopt a foreign trace context as the parent for spans opened on
 * this thread while in scope. Used where causality crosses a thread
 * or process boundary: the server's committer adopts the context
 * decoded from a device's kIngest frame so the WAL-sync span it opens
 * links into that device's trace. Purely a parent-stack push — emits
 * no event itself.
 */
class ScopedTraceContext
{
  public:
    explicit ScopedTraceContext(TraceContext ctx);
    ~ScopedTraceContext();

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

  private:
    bool pushed_;
};

/**
 * RAII timer for one execution of a span. Records on destruction
 * unless stop() was called first. With tracing on, the constructor
 * assigns span ids and pushes the span onto the thread's parent
 * stack; stop() pops it and appends the TraceEvent.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(SpanSite &site)
        : site_(&site), start_(std::chrono::steady_clock::now())
    {
        if (enabled() && tracing())
            beginTrace();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (site_ != nullptr)
            stop();
    }

    /** End the span now: record the duration, return elapsed seconds.
     *  Idempotent (later calls return 0 without recording). */
    double stop();

    /** This span's context (valid only while tracing was on at
     *  construction) — hand it to children on other threads. */
    TraceContext context() const { return {traceId_, spanId_}; }

  private:
    void beginTrace();

    SpanSite *site_; ///< Null once stopped.
    std::chrono::steady_clock::time_point start_;
    uint64_t traceId_ = 0; ///< Nonzero only when traced from the start.
    uint64_t spanId_ = 0;
    uint64_t parentId_ = 0;
};

/** Time the rest of the enclosing scope under the given span name. */
#define NAZAR_SPAN(name)                                                \
    static ::nazar::obs::SpanSite NAZAR_SPAN_PASTE_(                    \
        nazar_span_site_, __LINE__)(name);                              \
    ::nazar::obs::ScopedSpan NAZAR_SPAN_PASTE_(nazar_span_,             \
                                               __LINE__)(              \
        NAZAR_SPAN_PASTE_(nazar_span_site_, __LINE__))

/**
 * Like NAZAR_SPAN but names the ScopedSpan `var` so a mid-scope
 * `var.stop()` can end the span (and read its seconds) early.
 */
#define NAZAR_SPAN_BEGIN(var, name)                                     \
    static ::nazar::obs::SpanSite NAZAR_SPAN_PASTE_(                    \
        nazar_span_site_, __LINE__)(name);                              \
    ::nazar::obs::ScopedSpan var(                                       \
        NAZAR_SPAN_PASTE_(nazar_span_site_, __LINE__))

#define NAZAR_SPAN_PASTE_(a, b) NAZAR_SPAN_PASTE2_(a, b)
#define NAZAR_SPAN_PASTE2_(a, b) a##b

// ---- Trace buffer ---------------------------------------------------

/** One completed span occurrence in the trace rings. */
struct TraceEvent
{
    const char *name;    ///< Span name (static storage at the site).
    size_t threadId;     ///< obs::detail::threadId() of the recorder.
    double startSeconds; ///< Start, relative to the registry epoch.
    double durationSeconds;
    uint64_t traceId = 0; ///< Trace this span belongs to.
    uint64_t spanId = 0;  ///< This span's id (unique per process run).
    uint64_t parentId = 0; ///< Parent span id; 0 = trace root.
};

/**
 * Toggle the in-memory trace rings (default: off). When on, every
 * finished span appends one TraceEvent into the calling thread's
 * stripe; each stripe is bounded (traceCapacity()) and drops new
 * events once full, counting drops.
 */
void setTracing(bool on);
bool tracing();

/** Default per-stripe trace capacity (see traceCapacity()). */
inline constexpr size_t kDefaultTraceCapacity = 8192;

/**
 * Per-stripe event capacity. Initialized from the NAZAR_TRACE_CAP
 * environment variable (falling back to kDefaultTraceCapacity);
 * setTraceCapacity() overrides at runtime (clamped to >= 1, applies
 * to subsequent appends). The total buffered bound is
 * capacity × kTraceStripes.
 */
size_t traceCapacity();
void setTraceCapacity(size_t cap);

/** Trace ring stripes (threads hash onto them by obs thread id). */
inline constexpr size_t kTraceStripes = detail::kStripes;

/**
 * Record a completed span occurrence whose start and end were
 * observed by the caller — the cross-thread stages (queue wait,
 * group commit, ack write) where RAII scoping can't work. Feeds the
 * site's histogram like a ScopedSpan and, when tracing, appends a
 * TraceEvent parented to @p parent (invalid parent ⇒ a new root).
 * @p selfId, when nonzero, becomes the event's span id — mint it
 * earlier with newTraceContext() when children must link to this
 * span before it is recorded.
 */
void recordSpan(SpanSite &site,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end,
                const TraceContext &parent, uint64_t selfId = 0);

/** Merged copy of every stripe's events, ordered by start time. */
std::vector<TraceEvent> traceEvents();

/** Events dropped (rings full) since the last clearTrace(). */
size_t traceDropped();

/** Empty every stripe and zero the drop counter. */
void clearTrace();

// ---- Thread names ---------------------------------------------------

/** Name the calling thread for trace exports (Perfetto lanes). */
void setThreadName(const std::string &name);

/** Copy of the obs-thread-id → name map. */
std::map<size_t, std::string> threadNames();

// ---- Slow-op log ----------------------------------------------------

/**
 * Threshold above which a finished span emits one NAZAR_LOG warn line
 * (name, duration, trace id), rate-limited to at most one line per
 * second process-wide. Off by default (infinity); also settable via
 * the NAZAR_SLOW_OP_MS environment variable (milliseconds).
 */
void setSlowOpThresholdSeconds(double seconds);
double slowOpThresholdSeconds();

} // namespace nazar::obs

#endif // NAZAR_OBS_SPAN_H
