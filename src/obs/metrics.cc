/**
 * @file
 * Implementation of the metrics registry.
 */
#include "metrics.h"

#include <algorithm>
#include <cmath>

namespace nazar::obs {

namespace {

std::atomic<bool> g_enabled{true};

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail {

size_t
threadId()
{
    static std::atomic<size_t> next{0};
    thread_local size_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
atomicAddDouble(std::atomic<double> &a, double x)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + x,
                                    std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
    }
}

} // namespace detail

// ---- Counter --------------------------------------------------------

uint64_t
Counter::value() const
{
    uint64_t total = 0;
    for (const auto &cell : cells_)
        total += cell.v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (auto &cell : cells_)
        cell.v.store(0, std::memory_order_relaxed);
}

// ---- Histogram ------------------------------------------------------

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    uint64_t target = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (target < 1)
        target = 1;
    uint64_t cumulative = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
        uint64_t prev = cumulative;
        cumulative += buckets[b];
        if (cumulative < target)
            continue;
        double lo = b == 0 ? 0.0 : bounds[b - 1];
        if (b >= bounds.size())
            return lo; // Open +Inf bucket: report its lower edge.
        double frac =
            buckets[b] ? static_cast<double>(target - prev) /
                             static_cast<double>(buckets[b])
                       : 1.0;
        return lo + (bounds[b] - lo) * frac;
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)),
      stripes_(detail::kStripes)
{
    std::sort(bounds_.begin(), bounds_.end());
    for (auto &stripe : stripes_)
        stripe.buckets =
            std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

size_t
Histogram::bucketOf(double v) const
{
    // First bound >= v; the final bucket is the +Inf overflow.
    return static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.bounds = bounds_;
    snap.buckets.assign(bounds_.size() + 1, 0);
    for (const auto &stripe : stripes_) {
        for (size_t b = 0; b < stripe.buckets.size(); ++b)
            snap.buckets[b] +=
                stripe.buckets[b].load(std::memory_order_relaxed);
        snap.sum += stripe.sum.load(std::memory_order_relaxed);
    }
    for (uint64_t c : snap.buckets)
        snap.count += c;
    return snap;
}

void
Histogram::reset()
{
    for (auto &stripe : stripes_) {
        for (auto &b : stripe.buckets)
            b.store(0, std::memory_order_relaxed);
        stripe.sum.store(0.0, std::memory_order_relaxed);
    }
}

const std::vector<double> &
latencyBounds()
{
    static const std::vector<double> bounds = [] {
        std::vector<double> b;
        for (double decade = 1e-6; decade < 30.0; decade *= 10.0)
            for (double step : {1.0, 2.5, 5.0})
                b.push_back(decade * step);
        b.push_back(30.0);
        b.push_back(60.0);
        return b;
    }();
    return bounds;
}

// ---- Registry -------------------------------------------------------

Registry::Registry()
    : epoch_(std::chrono::steady_clock::now().time_since_epoch().count())
{
}

Registry &
Registry::global()
{
    static Registry *registry = new Registry();
    return *registry;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(name,
                          std::unique_ptr<Counter>(new Counter(name)))
                 .first;
    return *it->second;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(name, std::unique_ptr<Gauge>(new Gauge(name)))
                 .first;
    return *it->second;
}

Histogram &
Registry::histogram(const std::string &name,
                    const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(name, std::unique_ptr<Histogram>(
                                    new Histogram(name, bounds)))
                 .first;
    return *it->second;
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Snapshot snap;
    snap.uptimeSeconds = uptimeSeconds();
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : gauges_)
        snap.gauges[name] = g->value();
    for (const auto &[name, h] : histograms_)
        snap.histograms[name] = h->snapshot();
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
    epoch_.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_relaxed);
}

double
Registry::uptimeSeconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch())
        .count();
}

std::chrono::steady_clock::time_point
Registry::epoch() const
{
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            epoch_.load(std::memory_order_relaxed)));
}

} // namespace nazar::obs
