/**
 * @file
 * Implementation of scoped spans, the thread-local trace-context
 * stack, and the striped trace ring buffers.
 */
#include "span.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <utility>

#include "common/logging.h"

namespace nazar::obs {

namespace {

std::atomic<bool> g_tracing{false};

/** Span-id allocator; 0 is reserved for "no span". */
std::atomic<uint64_t> g_next_span_id{1};

uint64_t
nextSpanId()
{
    return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

/**
 * Per-thread stack of active contexts (ScopedSpan frames and adopted
 * ScopedTraceContexts). The top is the parent of the next span opened
 * on this thread. Spans usually pop LIFO; an early stop() while a
 * child is still open is handled by erasing the span's own frame
 * wherever it sits.
 */
thread_local std::vector<TraceContext> t_span_stack;

/**
 * One trace ring stripe. Threads hash onto stripes by their obs
 * thread id, so with <= kTraceStripes recording threads each has a
 * private stripe and the mutex is uncontended; the bound applies per
 * stripe (a single-threaded run sees exactly traceCapacity() events,
 * like the old single-buffer design).
 */
struct alignas(64) TraceStripe
{
    std::mutex mu;
    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
};

TraceStripe g_trace_stripes[kTraceStripes];

size_t
initialTraceCapacity()
{
    if (const char *env = std::getenv("NAZAR_TRACE_CAP")) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && v > 0)
            return static_cast<size_t>(v);
    }
    return kDefaultTraceCapacity;
}

std::atomic<size_t> &
traceCapacityCell()
{
    static std::atomic<size_t> cap{initialTraceCapacity()};
    return cap;
}

void
appendTrace(const TraceEvent &ev)
{
    TraceStripe &s =
        g_trace_stripes[detail::threadId() & (kTraceStripes - 1)];
    const size_t cap = traceCapacity();
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.events.size() >= cap) {
        ++s.dropped;
        return;
    }
    s.events.push_back(ev);
}

std::mutex g_thread_names_mu;
std::map<size_t, std::string> g_thread_names;

double
initialSlowOpThreshold()
{
    if (const char *env = std::getenv("NAZAR_SLOW_OP_MS")) {
        char *end = nullptr;
        double ms = std::strtod(env, &end);
        if (end != env && ms >= 0.0 && std::isfinite(ms))
            return ms / 1000.0;
    }
    return std::numeric_limits<double>::infinity();
}

std::atomic<double> &
slowOpThresholdCell()
{
    static std::atomic<double> t{initialSlowOpThreshold()};
    return t;
}

/**
 * Emit at most one slow-op warn line per wall second process-wide: a
 * slow span first claims the current second via CAS, so a stall that
 * slows thousands of spans produces a trickle of lines, not a flood.
 */
void
maybeLogSlowOp(const char *name, double seconds, uint64_t traceId)
{
    const double threshold =
        slowOpThresholdCell().load(std::memory_order_relaxed);
    if (!(seconds >= threshold))
        return;
    static std::atomic<int64_t> lastEmitSecond{
        std::numeric_limits<int64_t>::min()};
    const int64_t nowSecond =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    int64_t last = lastEmitSecond.load(std::memory_order_relaxed);
    if (last == nowSecond ||
        !lastEmitSecond.compare_exchange_strong(
            last, nowSecond, std::memory_order_relaxed))
        return;
    logWarn() << "slow op: " << name << " took "
              << seconds * 1e3 << " ms (threshold "
              << threshold * 1e3 << " ms) trace=" << traceId;
}

double
sinceEpochSeconds(std::chrono::steady_clock::time_point t)
{
    return std::chrono::duration<double>(
               t - Registry::global().epoch())
        .count();
}

} // namespace

TraceContext
newTraceContext()
{
    uint64_t id = nextSpanId();
    return {id, id};
}

TraceContext
currentTraceContext()
{
    if (t_span_stack.empty())
        return {};
    return t_span_stack.back();
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : pushed_(false)
{
    if (ctx.valid() && enabled() && tracing()) {
        t_span_stack.push_back(ctx);
        pushed_ = true;
    }
}

ScopedTraceContext::~ScopedTraceContext()
{
    if (pushed_)
        t_span_stack.pop_back();
}

void
ScopedSpan::beginTrace()
{
    spanId_ = nextSpanId();
    TraceContext parent = currentTraceContext();
    traceId_ = parent.valid() ? parent.traceId : spanId_;
    parentId_ = parent.spanId;
    t_span_stack.push_back({traceId_, spanId_});
}

double
ScopedSpan::stop()
{
    if (site_ == nullptr)
        return 0.0;
    SpanSite *site = site_;
    site_ = nullptr;
    auto end = std::chrono::steady_clock::now();
    double seconds =
        std::chrono::duration<double>(end - start_).count();
    if (spanId_ != 0) {
        // Pop this span's frame. Usually the top; an early stop()
        // with a child still open finds it lower down.
        for (size_t i = t_span_stack.size(); i-- > 0;) {
            if (t_span_stack[i].spanId == spanId_) {
                t_span_stack.erase(t_span_stack.begin() +
                                   static_cast<ptrdiff_t>(i));
                break;
            }
        }
    }
    if (enabled()) {
        site->histogram().observe(seconds);
        if (tracing()) {
            TraceEvent ev;
            ev.name = site->name();
            ev.threadId = detail::threadId();
            ev.startSeconds = sinceEpochSeconds(start_);
            ev.durationSeconds = seconds;
            if (spanId_ == 0) {
                // Tracing flipped on mid-span: mint ids now so the
                // event is still well-formed (no stack frame to pop).
                spanId_ = nextSpanId();
                TraceContext parent = currentTraceContext();
                traceId_ =
                    parent.valid() ? parent.traceId : spanId_;
                parentId_ = parent.spanId;
            }
            ev.traceId = traceId_;
            ev.spanId = spanId_;
            ev.parentId = parentId_;
            appendTrace(ev);
        }
    }
    maybeLogSlowOp(site->name(), seconds, traceId_);
    return seconds;
}

void
recordSpan(SpanSite &site,
           std::chrono::steady_clock::time_point start,
           std::chrono::steady_clock::time_point end,
           const TraceContext &parent, uint64_t selfId)
{
    double seconds = std::chrono::duration<double>(end - start).count();
    uint64_t traceId = parent.traceId;
    if (enabled()) {
        site.histogram().observe(seconds);
        if (tracing()) {
            TraceEvent ev;
            ev.name = site.name();
            ev.threadId = detail::threadId();
            ev.startSeconds = sinceEpochSeconds(start);
            ev.durationSeconds = seconds;
            ev.spanId = selfId != 0 ? selfId : nextSpanId();
            ev.traceId = parent.valid() ? parent.traceId : ev.spanId;
            ev.parentId = parent.spanId;
            traceId = ev.traceId;
            appendTrace(ev);
        }
    }
    maybeLogSlowOp(site.name(), seconds, traceId);
}

void
setTracing(bool on)
{
    g_tracing.store(on, std::memory_order_relaxed);
}

bool
tracing()
{
    return g_tracing.load(std::memory_order_relaxed);
}

size_t
traceCapacity()
{
    return traceCapacityCell().load(std::memory_order_relaxed);
}

void
setTraceCapacity(size_t cap)
{
    traceCapacityCell().store(cap > 0 ? cap : 1,
                              std::memory_order_relaxed);
}

std::vector<TraceEvent>
traceEvents()
{
    std::vector<TraceEvent> merged;
    for (TraceStripe &s : g_trace_stripes) {
        std::lock_guard<std::mutex> lk(s.mu);
        merged.insert(merged.end(), s.events.begin(), s.events.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.startSeconds != b.startSeconds)
                             return a.startSeconds < b.startSeconds;
                         return a.spanId < b.spanId;
                     });
    return merged;
}

size_t
traceDropped()
{
    size_t total = 0;
    for (TraceStripe &s : g_trace_stripes) {
        std::lock_guard<std::mutex> lk(s.mu);
        total += s.dropped;
    }
    return total;
}

void
clearTrace()
{
    for (TraceStripe &s : g_trace_stripes) {
        std::lock_guard<std::mutex> lk(s.mu);
        s.events.clear();
        s.dropped = 0;
    }
}

void
setThreadName(const std::string &name)
{
    std::lock_guard<std::mutex> lk(g_thread_names_mu);
    g_thread_names[detail::threadId()] = name;
}

std::map<size_t, std::string>
threadNames()
{
    std::lock_guard<std::mutex> lk(g_thread_names_mu);
    return g_thread_names;
}

void
setSlowOpThresholdSeconds(double seconds)
{
    slowOpThresholdCell().store(
        seconds >= 0.0 && std::isfinite(seconds)
            ? seconds
            : std::numeric_limits<double>::infinity(),
        std::memory_order_relaxed);
}

double
slowOpThresholdSeconds()
{
    return slowOpThresholdCell().load(std::memory_order_relaxed);
}

} // namespace nazar::obs
