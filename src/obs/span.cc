/**
 * @file
 * Implementation of scoped spans and the trace buffer.
 */
#include "span.h"

#include <mutex>

namespace nazar::obs {

namespace {

std::atomic<bool> g_tracing{false};

std::mutex g_trace_mu;
std::vector<TraceEvent> g_trace;
size_t g_trace_dropped = 0;

void
appendTrace(const TraceEvent &ev)
{
    std::lock_guard<std::mutex> lk(g_trace_mu);
    if (g_trace.size() >= kTraceCapacity) {
        ++g_trace_dropped;
        return;
    }
    g_trace.push_back(ev);
}

} // namespace

double
ScopedSpan::stop()
{
    if (site_ == nullptr)
        return 0.0;
    SpanSite *site = site_;
    site_ = nullptr;
    auto end = std::chrono::steady_clock::now();
    double seconds =
        std::chrono::duration<double>(end - start_).count();
    if (enabled()) {
        site->histogram().observe(seconds);
        if (tracing()) {
            TraceEvent ev;
            ev.name = site->name();
            ev.threadId = detail::threadId();
            ev.startSeconds =
                std::chrono::duration<double>(
                    start_ - Registry::global().epoch())
                    .count();
            ev.durationSeconds = seconds;
            appendTrace(ev);
        }
    }
    return seconds;
}

void
setTracing(bool on)
{
    g_tracing.store(on, std::memory_order_relaxed);
}

bool
tracing()
{
    return g_tracing.load(std::memory_order_relaxed);
}

std::vector<TraceEvent>
traceEvents()
{
    std::lock_guard<std::mutex> lk(g_trace_mu);
    return g_trace;
}

size_t
traceDropped()
{
    std::lock_guard<std::mutex> lk(g_trace_mu);
    return g_trace_dropped;
}

void
clearTrace()
{
    std::lock_guard<std::mutex> lk(g_trace_mu);
    g_trace.clear();
    g_trace_dropped = 0;
}

} // namespace nazar::obs
