/**
 * @file
 * Metric exporters: a JSON snapshot writer (machine-readable dump for
 * benches, CI validation, and `nazar_ops stats`) and a Prometheus
 * text-format dump (scrape-compatible for production monitoring).
 */
#ifndef NAZAR_OBS_EXPORT_H
#define NAZAR_OBS_EXPORT_H

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace nazar::obs {

/**
 * Write the snapshot as a JSON object:
 *
 *   {
 *     "uptime_seconds": 1.23,
 *     "counters":   {"runtime.chunks.worker": 42, ...},
 *     "gauges":     {"runtime.worker.0.busy_seconds": 0.8, ...},
 *     "histograms": {
 *       "rca.fim.mine": {"count": 3, "sum": 0.01, "mean": ...,
 *                        "buckets": [{"le": 1e-06, "count": 0}, ...,
 *                                    {"le": "+Inf", "count": 3}]},
 *       ...
 *     },
 *     "trace_dropped": 0,
 *     "trace": [{"name": ..., "tid": 0, "start": ..., "dur": ...,
 *                "trace": ..., "span": ..., "parent": ...}]
 *   }
 *
 * "trace_dropped" is always present (silent ring-buffer drops must be
 * visible); the "trace" array only when the trace rings hold events.
 * Span histograms appear under their exact span name.
 */
void writeJson(const Snapshot &snap, std::ostream &os);

/**
 * Write the snapshot in Prometheus text exposition format. Metric
 * names are prefixed with `nazar_` and sanitized (`.` and other
 * non-identifier characters become `_`); counters get the `_total`
 * suffix, histograms expand to `_bucket{le=...}` / `_sum` / `_count`.
 */
void writePrometheus(const Snapshot &snap, std::ostream &os);

/**
 * Snapshot the global registry and write it to @p path. The format is
 * chosen by extension: `.prom` / `.txt` get Prometheus text, anything
 * else JSON. Throws NazarError when the file cannot be written.
 */
void writeMetricsFile(const std::string &path);

/**
 * Write the trace rings as Chrome `trace_event` JSON, loadable in
 * Perfetto (ui.perfetto.dev) or chrome://tracing:
 *
 *   {"displayTimeUnit": "ms",
 *    "otherData": {"trace_dropped": "0"},
 *    "traceEvents": [
 *      {"ph": "M", "name": "thread_name", "pid": 1, "tid": 3,
 *       "args": {"name": "server.committer"}},
 *      {"ph": "X", "name": "persist.wal.sync", "cat": "nazar",
 *       "pid": 1, "tid": 3, "ts": 1234.5, "dur": 88.0,
 *       "args": {"trace": "17", "span": "42", "parent": "17"}},
 *      ...]}
 *
 * Complete duration events ("X", ts/dur in microseconds since the
 * registry epoch); span/trace/parent ids ride in `args` as decimal
 * strings (Chrome JSON has no 64-bit integers). Threads named via
 * obs::setThreadName get a `thread_name` metadata event so Perfetto
 * labels their lanes. One event per line, so `nazar_ops trace` can
 * read the file back without a full JSON parser.
 */
void writeChromeTrace(std::ostream &os);

/** writeChromeTrace to @p path. Throws NazarError on I/O failure. */
void writeTraceFile(const std::string &path);

} // namespace nazar::obs

#endif // NAZAR_OBS_EXPORT_H
