/**
 * @file
 * nazar::obs — the self-monitoring metrics layer.
 *
 * Nazar is a monitoring system; this registry lets it monitor itself:
 * monotonic counters, gauges, and fixed-bucket histograms, collected
 * from every hot layer (runtime, nn, detect, driftlog, rca, sim) and
 * exported as JSON or Prometheus text (see obs/export.h).
 *
 * Design contract — observability is inert:
 *
 *  - Recording touches no RNG and no data path. Metrics-on and
 *    metrics-off runs are bit-identical in every result, at every
 *    NAZAR_THREADS setting (tests/test_obs.cc enforces this on a full
 *    e2e run).
 *  - The hot path is one relaxed atomic add into a per-thread stripe
 *    (merge-on-read): counters and histogram buckets are sharded
 *    across cache-line-padded slots indexed by a thread-local id, so
 *    concurrent recorders never contend on a cache line in the common
 *    case and never take a lock.
 *  - Counter/histogram aggregation is order-independent (integer adds
 *    commute), so the merged snapshot is the same no matter which
 *    thread recorded what, or when the snapshot is taken relative to
 *    in-flight adds.
 *
 * Metric handles are registered once (a mutex-guarded name lookup) and
 * cached at the instrumentation site — typically in a function-local
 * static — so steady-state recording never touches the registry map.
 */
#ifndef NAZAR_OBS_METRICS_H
#define NAZAR_OBS_METRICS_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nazar::obs {

/**
 * Global recording switch (default: on). When off, every record call
 * is a single relaxed load and an early return; registration, handle
 * lookup and snapshotting still work. Flipping the switch never
 * changes any computation result — only whether telemetry is kept.
 */
bool enabled();
void setEnabled(bool on);

namespace detail {

/** Stripes per metric; power of two, sized for typical pool widths. */
inline constexpr size_t kStripes = 16;

/** Compact per-thread id (assigned on first use, monotonically). */
size_t threadId();

/** The stripe the calling thread records into. */
inline size_t
stripeIndex()
{
    return threadId() & (kStripes - 1);
}

/** One cache-line-padded counter slot. */
struct alignas(64) CounterCell
{
    std::atomic<uint64_t> v{0};
};

/** Relaxed add for atomic doubles (CAS loop; sums commute). */
void atomicAddDouble(std::atomic<double> &a, double x);

} // namespace detail

/** Monotonic counter: per-thread-striped relaxed adds, summed on read. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        if (!enabled())
            return;
        cells_[detail::stripeIndex()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Merge-on-read: sum of all stripes. */
    uint64_t value() const;

    const std::string &name() const { return name_; }

  private:
    friend class Registry;
    explicit Counter(std::string name) : name_(std::move(name)) {}
    void reset();

    std::string name_;
    std::array<detail::CounterCell, detail::kStripes> cells_;
};

/**
 * Gauge: a last-write-wins double (set) that also supports relaxed
 * accumulation (add) for "busy seconds" style meters. Gauges are
 * low-frequency (per batch, not per row), so a single atomic cell is
 * enough.
 */
class Gauge
{
  public:
    void
    set(double v)
    {
        if (!enabled())
            return;
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(double v)
    {
        if (!enabled())
            return;
        detail::atomicAddDouble(v_, v);
    }

    double value() const { return v_.load(std::memory_order_relaxed); }

    const std::string &name() const { return name_; }

  private:
    friend class Registry;
    explicit Gauge(std::string name) : name_(std::move(name)) {}
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

    std::string name_;
    std::atomic<double> v_{0.0};
};

/** Merged view of one histogram (see Histogram::snapshot). */
struct HistogramSnapshot
{
    std::vector<double> bounds; ///< Upper bucket bounds (+Inf implicit).
    std::vector<uint64_t> buckets; ///< bounds.size()+1 counts.
    uint64_t count = 0;            ///< Total observations.
    double sum = 0.0;              ///< Sum of observed values.

    /** Mean observation (0 when empty). */
    double
    mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    /**
     * Estimate the q-quantile (q in [0,1]) by linear interpolation
     * within the bucket holding the target rank. Returns 0 when
     * empty; the open +Inf bucket reports its lower edge (a
     * conservative underestimate).
     */
    double quantile(double q) const;
};

/**
 * Fixed-bucket histogram: bucket bounds are set at registration and
 * never change; each observation is one relaxed add into the calling
 * thread's stripe. Spans (obs/span.h) feed their durations here.
 */
class Histogram
{
  public:
    void
    observe(double v)
    {
        if (!enabled())
            return;
        Stripe &s = stripes_[detail::stripeIndex()];
        s.buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        detail::atomicAddDouble(s.sum, v);
    }

    /** Merge-on-read across stripes. */
    HistogramSnapshot snapshot() const;

    const std::string &name() const { return name_; }
    const std::vector<double> &bounds() const { return bounds_; }

  private:
    friend class Registry;
    Histogram(std::string name, std::vector<double> bounds);
    void reset();

    size_t bucketOf(double v) const;

    struct alignas(64) Stripe
    {
        std::vector<std::atomic<uint64_t>> buckets;
        std::atomic<double> sum{0.0};
    };

    std::string name_;
    std::vector<double> bounds_; ///< Sorted ascending; +Inf implicit.
    std::vector<Stripe> stripes_;
};

/**
 * Default span-latency bounds: 1-2.5-5 decades from 1 µs to 60 s —
 * wide enough for a single matmul and a full cloud cycle alike.
 */
const std::vector<double> &latencyBounds();

/** Point-in-time merged view of every registered metric. */
struct Snapshot
{
    double uptimeSeconds = 0.0; ///< Since registry creation (or reset).
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
};

/**
 * The metric registry. Registration is mutex-guarded and idempotent
 * (same name returns the same handle); handles have stable addresses
 * for the registry's lifetime, so instrumentation sites cache them in
 * function-local statics.
 */
class Registry
{
  public:
    Registry();

    /** The process-wide registry every NAZAR_SPAN / layer records to. */
    static Registry &global();

    /** Get-or-create. A histogram's bounds are fixed by the first
     *  registration; later calls with different bounds get the
     *  existing instance. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &bounds =
                             latencyBounds());

    /** Merge every metric into a consistent-enough point-in-time view
     *  (concurrent relaxed adds may or may not be included; totals are
     *  exact once recorders are quiescent). */
    Snapshot snapshot() const;

    /**
     * Zero every registered metric and restart the uptime clock.
     * Handles stay valid. Meant for test isolation and for tools that
     * run several measured phases in one process — not for use while
     * recorders are concurrently active.
     */
    void reset();

    /** Seconds since construction or the last reset(). */
    double uptimeSeconds() const;

    /** Epoch the trace buffer timestamps are relative to. */
    std::chrono::steady_clock::time_point epoch() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::atomic<std::chrono::steady_clock::time_point::rep> epoch_;
};

} // namespace nazar::obs

#endif // NAZAR_OBS_METRICS_H
