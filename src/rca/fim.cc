/**
 * @file
 * Implementation of the apriori frequent-itemset miner.
 */
#include "fim.h"

#include <algorithm>
#include <limits>
#include <map>

#include "common/error.h"

namespace nazar::rca {

namespace {

/** Derive the four metrics from raw counts. */
CauseMetrics
metricsFromCounts(size_t set_count, size_t set_drift, size_t total_rows,
                  size_t total_drift)
{
    CauseMetrics m;
    m.setCount = set_count;
    m.setDriftCount = set_drift;
    if (total_rows == 0)
        return m;
    m.occurrence =
        static_cast<double>(set_count) / static_cast<double>(total_rows);
    m.support = total_drift
                    ? static_cast<double>(set_drift) /
                          static_cast<double>(total_drift)
                    : 0.0;
    m.confidence = set_count
                       ? static_cast<double>(set_drift) /
                             static_cast<double>(set_count)
                       : 0.0;
    size_t not_set = total_rows - set_count;
    size_t drift_not_set = total_drift - set_drift;
    if (not_set == 0) {
        // The set covers every entry (a constant of the table), so
        // there is no contrast group: it cannot demonstrate elevated
        // risk and must not outrank genuine causes.
        m.riskRatio = 0.0;
    } else {
        double p_not = static_cast<double>(drift_not_set) /
                       static_cast<double>(not_set);
        if (p_not == 0.0) {
            m.riskRatio = m.confidence > 0.0
                              ? std::numeric_limits<double>::infinity()
                              : 0.0;
        } else {
            m.riskRatio = m.confidence / p_not;
        }
    }
    return m;
}

} // namespace

CauseMetrics
computeMetrics(const driftlog::Table &table,
               const std::vector<bool> &drift_flags,
               const AttributeSet &attrs)
{
    NAZAR_CHECK(drift_flags.size() == table.rowCount(),
                "drift-flag vector must cover the table");
    size_t total_drift = 0;
    for (bool f : drift_flags)
        total_drift += f ? 1 : 0;

    // Resolve columns once.
    std::vector<const std::vector<driftlog::Value> *> cols;
    std::vector<const driftlog::Value *> wanted;
    for (const auto &a : attrs.attributes()) {
        cols.push_back(&table.column(a.column));
        wanted.push_back(&a.value);
    }

    size_t set_count = 0, set_drift = 0;
    for (size_t r = 0; r < table.rowCount(); ++r) {
        bool match = true;
        for (size_t i = 0; i < cols.size(); ++i) {
            if (!((*cols[i])[r] == *wanted[i])) {
                match = false;
                break;
            }
        }
        if (match) {
            ++set_count;
            if (drift_flags[r])
                ++set_drift;
        }
    }
    return metricsFromCounts(set_count, set_drift, table.rowCount(),
                             total_drift);
}

bool
passesThresholds(const CauseMetrics &metrics, const RcaConfig &config)
{
    return metrics.occurrence >= config.minOccurrence &&
           metrics.support >= config.minSupport &&
           metrics.confidence >= config.minConfidence &&
           metrics.riskRatio >= config.minRiskRatio;
}

bool
rankBefore(const RankedCause &a, const RankedCause &b)
{
    if (a.metrics.riskRatio != b.metrics.riskRatio)
        return a.metrics.riskRatio > b.metrics.riskRatio;
    if (a.metrics.confidence != b.metrics.confidence)
        return a.metrics.confidence > b.metrics.confidence;
    if (a.metrics.occurrence != b.metrics.occurrence)
        return a.metrics.occurrence > b.metrics.occurrence;
    if (a.attrs.size() != b.attrs.size())
        return a.attrs.size() < b.attrs.size(); // coarser first
    return a.attrs < b.attrs;
}

Fim::Fim(const driftlog::Table &table, const RcaConfig &config)
    : table_(table), config_(config)
{
    NAZAR_CHECK(!config.attributeColumns.empty(),
                "RcaConfig.attributeColumns must be set");
    for (const auto &col : config.attributeColumns)
        NAZAR_CHECK(table.schema().has(col), "no such column: " + col);
    NAZAR_CHECK(table.schema().has(config.driftColumn),
                "no such drift column: " + config.driftColumn);
}

std::vector<bool>
Fim::driftFlags(const driftlog::Table &table,
                const std::string &drift_column)
{
    const auto &col = table.column(drift_column);
    std::vector<bool> flags(col.size());
    for (size_t r = 0; r < col.size(); ++r)
        flags[r] = col[r].asBool();
    return flags;
}

std::vector<RankedCause>
Fim::mine() const
{
    return mine(driftFlags(table_, config_.driftColumn));
}

std::vector<RankedCause>
Fim::mine(const std::vector<bool> &drift_flags) const
{
    NAZAR_CHECK(drift_flags.size() == table_.rowCount(),
                "drift-flag vector must cover the table");
    const size_t n = table_.rowCount();
    size_t total_drift = 0;
    for (bool f : drift_flags)
        total_drift += f ? 1 : 0;

    std::vector<RankedCause> results;

    // ---- Level 1: one aggregation pass per attribute column --------
    std::vector<Attribute> frequent_singles;
    std::vector<AttributeSet> frequent_prev;
    for (const auto &col_name : config_.attributeColumns) {
        const auto &col = table_.column(col_name);
        std::map<driftlog::Value, std::pair<size_t, size_t>> counts;
        for (size_t r = 0; r < n; ++r) {
            auto &entry = counts[col[r]];
            ++entry.first;
            if (drift_flags[r])
                ++entry.second;
        }
        for (const auto &[value, cnt] : counts) {
            CauseMetrics m = metricsFromCounts(cnt.first, cnt.second, n,
                                               total_drift);
            AttributeSet set({Attribute{col_name, value}});
            results.push_back(RankedCause{set, m});
            if (m.occurrence >= config_.minOccurrence) {
                frequent_singles.push_back(Attribute{col_name, value});
                frequent_prev.push_back(std::move(set));
            }
        }
    }
    std::sort(frequent_singles.begin(), frequent_singles.end());

    // ---- Levels 2..maxAttributes ------------------------------------
    for (size_t level = 2;
         level <= config_.maxAttributes && !frequent_prev.empty();
         ++level) {
        // Candidate generation: extend each frequent (k-1)-set with a
        // frequent single strictly greater than its last attribute and
        // over a column the set does not constrain yet.
        std::vector<AttributeSet> candidates;
        for (const auto &set : frequent_prev) {
            const Attribute &last = set.attributes().back();
            for (const auto &single : frequent_singles) {
                if (!(last < single))
                    continue;
                if (set.hasColumn(single.column))
                    continue;
                candidates.push_back(set.extended(single));
            }
        }
        if (candidates.empty())
            break;

        // Counting pass: resolve candidate columns once, then a single
        // scan over the table.
        struct CandidateProbe
        {
            std::vector<const std::vector<driftlog::Value> *> cols;
            std::vector<const driftlog::Value *> wanted;
            size_t count = 0;
            size_t drift = 0;
        };
        std::vector<CandidateProbe> probes(candidates.size());
        for (size_t i = 0; i < candidates.size(); ++i) {
            for (const auto &a : candidates[i].attributes()) {
                probes[i].cols.push_back(&table_.column(a.column));
                probes[i].wanted.push_back(&a.value);
            }
        }
        for (size_t r = 0; r < n; ++r) {
            for (auto &probe : probes) {
                bool match = true;
                for (size_t i = 0; i < probe.cols.size(); ++i) {
                    if (!((*probe.cols[i])[r] == *probe.wanted[i])) {
                        match = false;
                        break;
                    }
                }
                if (match) {
                    ++probe.count;
                    if (drift_flags[r])
                        ++probe.drift;
                }
            }
        }

        std::vector<AttributeSet> frequent_now;
        for (size_t i = 0; i < candidates.size(); ++i) {
            CauseMetrics m = metricsFromCounts(
                probes[i].count, probes[i].drift, n, total_drift);
            if (m.setCount == 0)
                continue; // combination never occurs; not a real set
            results.push_back(RankedCause{candidates[i], m});
            if (m.occurrence >= config_.minOccurrence)
                frequent_now.push_back(candidates[i]);
        }
        frequent_prev = std::move(frequent_now);
    }

    std::sort(results.begin(), results.end(), rankBefore);
    return results;
}

} // namespace nazar::rca
