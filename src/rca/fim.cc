/**
 * @file
 * Implementation of the apriori frequent-itemset miner.
 *
 * Two executions of the same algorithm live here:
 *
 *  - mine(): the production path. Attribute values are resolved to
 *    dictionary ids up front (on the dispatching thread — that
 *    resolution is the read barrier the Column thread contract
 *    requires), and all row probes are uint32 compares over the dense
 *    id vectors. Level-1 histograms count into per-id arrays instead
 *    of Value-keyed maps.
 *
 *  - mineReference(): the retained pre-dictionary path, comparing
 *    whole Values over materialized column vectors with Value-keyed
 *    level-1 maps. Same chunking, same merge order, same candidate
 *    generation — the only delta is the cell representation, which is
 *    what makes it both a bit-for-bit oracle and a fair dict-off
 *    baseline for the scaling benchmark.
 */
#include "fim.h"

#include <algorithm>
#include <array>
#include <limits>
#include <map>

#include "common/error.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"

namespace nazar::rca {

namespace {

/**
 * Rows per chunk for the sharded table scans. Fixed (never derived
 * from the thread count), so the chunk layout — and therefore every
 * per-chunk partial and the chunk-ordered merge — is identical at any
 * NAZAR_THREADS setting.
 */
constexpr size_t kRowGrain = 4096;

/**
 * Minimum row count before a scan engages the thread pool. Below this
 * the batch dispatch overhead dominates (the counterfactual pass calls
 * computeMetrics once per candidate cause, often on small logs). The
 * cutoff only selects between running the identical per-chunk kernel
 * inline or on the pool, so results are bit-identical either way.
 */
constexpr size_t kParallelRowCutoff = 2 * kRowGrain;

/**
 * Chunk-ordered reduce over table rows: below the cutoff the map
 * kernel runs once over [0, n) on the caller (the exact sequential
 * path); above it, per-chunk partials are combined in ascending chunk
 * order by runtime::parallelReduce.
 */
template <typename T, typename Map, typename Combine>
T
rowReduce(size_t n, T identity, Map &&map, Combine &&combine)
{
    if (n < kParallelRowCutoff)
        return map(size_t{0}, n);
    return runtime::parallelReduce<T>(0, n, kRowGrain,
                                      std::move(identity), map, combine);
}

/** Derive the four metrics from raw counts. */
CauseMetrics
metricsFromCounts(size_t set_count, size_t set_drift, size_t total_rows,
                  size_t total_drift)
{
    CauseMetrics m;
    m.setCount = set_count;
    m.setDriftCount = set_drift;
    if (total_rows == 0)
        return m;
    m.occurrence =
        static_cast<double>(set_count) / static_cast<double>(total_rows);
    m.support = total_drift
                    ? static_cast<double>(set_drift) /
                          static_cast<double>(total_drift)
                    : 0.0;
    m.confidence = set_count
                       ? static_cast<double>(set_drift) /
                             static_cast<double>(set_count)
                       : 0.0;
    size_t not_set = total_rows - set_count;
    size_t drift_not_set = total_drift - set_drift;
    if (not_set == 0) {
        // The set covers every entry (a constant of the table), so
        // there is no contrast group: it cannot demonstrate elevated
        // risk and must not outrank genuine causes.
        m.riskRatio = 0.0;
    } else {
        double p_not = static_cast<double>(drift_not_set) /
                       static_cast<double>(not_set);
        if (p_not == 0.0) {
            m.riskRatio = m.confidence > 0.0
                              ? std::numeric_limits<double>::infinity()
                              : 0.0;
        } else {
            m.riskRatio = m.confidence / p_not;
        }
    }
    return m;
}

/**
 * Resolve one attribute value into its column's id space. An absent
 * value (possible for caller-supplied sets in computeMetrics; mined
 * sets always resolve) maps to dictSize(), an id no row carries, so
 * the probe keeps its single compare-per-row form.
 */
driftlog::Column::Id
wantedId(const driftlog::Column &col, const driftlog::Value &v)
{
    auto id = col.idOf(v);
    return id ? *id : static_cast<driftlog::Column::Id>(col.dictSize());
}

} // namespace

CauseMetrics
computeMetrics(const driftlog::Table &table,
               const std::vector<bool> &drift_flags,
               const AttributeSet &attrs)
{
    NAZAR_SPAN("rca.metrics");
    NAZAR_CHECK(drift_flags.size() == table.rowCount(),
                "drift-flag vector must cover the table");

    // Resolve columns and wanted ids once, on this thread (the read
    // barrier the Column thread contract requires before fanning out).
    std::vector<const driftlog::Column::Id *> cols;
    std::vector<driftlog::Column::Id> wanted;
    for (const auto &a : attrs.attributes()) {
        const driftlog::Column &col = table.column(a.column);
        cols.push_back(col.ids().data());
        wanted.push_back(wantedId(col, a.value));
    }

    // One sharded scan accumulates all three counts; size_t sums are
    // order-independent, and the chunk-ordered merge makes the path
    // bit-identical across thread counts anyway.
    using Counts = std::array<size_t, 3>; // set, set-and-drift, drift
    Counts totals = rowReduce<Counts>(
        table.rowCount(), Counts{0, 0, 0},
        [&](size_t chunk_begin, size_t chunk_end) {
            Counts part{0, 0, 0};
            for (size_t r = chunk_begin; r < chunk_end; ++r) {
                part[2] += drift_flags[r] ? 1 : 0;
                bool match = true;
                for (size_t i = 0; i < cols.size(); ++i) {
                    if (cols[i][r] != wanted[i]) {
                        match = false;
                        break;
                    }
                }
                if (match) {
                    ++part[0];
                    if (drift_flags[r])
                        ++part[1];
                }
            }
            return part;
        },
        [](Counts acc, Counts part) {
            for (size_t i = 0; i < acc.size(); ++i)
                acc[i] += part[i];
            return acc;
        });
    return metricsFromCounts(totals[0], totals[1], table.rowCount(),
                             totals[2]);
}

bool
passesThresholds(const CauseMetrics &metrics, const RcaConfig &config)
{
    return metrics.occurrence >= config.minOccurrence &&
           metrics.support >= config.minSupport &&
           metrics.confidence >= config.minConfidence &&
           metrics.riskRatio >= config.minRiskRatio;
}

bool
rankBefore(const RankedCause &a, const RankedCause &b)
{
    if (a.metrics.riskRatio != b.metrics.riskRatio)
        return a.metrics.riskRatio > b.metrics.riskRatio;
    if (a.metrics.confidence != b.metrics.confidence)
        return a.metrics.confidence > b.metrics.confidence;
    if (a.metrics.occurrence != b.metrics.occurrence)
        return a.metrics.occurrence > b.metrics.occurrence;
    if (a.attrs.size() != b.attrs.size())
        return a.attrs.size() < b.attrs.size(); // coarser first
    return a.attrs < b.attrs;
}

Fim::Fim(const driftlog::Table &table, const RcaConfig &config)
    : table_(table), config_(config)
{
    NAZAR_CHECK(!config.attributeColumns.empty(),
                "RcaConfig.attributeColumns must be set");
    for (const auto &col : config.attributeColumns)
        NAZAR_CHECK(table.schema().has(col), "no such column: " + col);
    NAZAR_CHECK(table.schema().has(config.driftColumn),
                "no such drift column: " + config.driftColumn);
}

std::vector<bool>
Fim::driftFlags(const driftlog::Table &table,
                const std::string &drift_column)
{
    const driftlog::Column &col = table.column(drift_column);
    std::vector<bool> flags(col.size());
    for (size_t r = 0; r < col.size(); ++r)
        flags[r] = col.at(r).asBool();
    return flags;
}

std::vector<RankedCause>
Fim::mine() const
{
    return mine(driftFlags(table_, config_.driftColumn));
}

std::vector<RankedCause>
Fim::mine(const std::vector<bool> &drift_flags) const
{
    NAZAR_SPAN("rca.fim.mine");
    NAZAR_CHECK(drift_flags.size() == table_.rowCount(),
                "drift-flag vector must cover the table");
    const size_t n = table_.rowCount();
    size_t total_drift = 0;
    for (bool f : drift_flags)
        total_drift += f ? 1 : 0;

    std::vector<RankedCause> results;

    // ---- Level 1: one aggregation pass per attribute column --------
    // Each column's histogram is a dense per-id count array: chunks
    // accumulate into fixed-size vectors indexed by dictionary id and
    // the partials sum element-wise in ascending chunk order. Emission
    // walks the array in id order, which — by the Column invariant
    // (id order == Value total order) — is exactly the order the old
    // Value-keyed map produced.
    using IdCounts = std::vector<std::pair<size_t, size_t>>;
    std::vector<Attribute> frequent_singles;
    std::vector<AttributeSet> frequent_prev;
    NAZAR_SPAN_BEGIN(level1_span, "rca.fim.level1");
    for (const auto &col_name : config_.attributeColumns) {
        const driftlog::Column &col = table_.column(col_name);
        const driftlog::Column::Id *ids = col.ids().data();
        const size_t dict_size = col.dictSize();
        IdCounts counts = rowReduce<IdCounts>(
            n, IdCounts(dict_size, {0, 0}),
            [&](size_t chunk_begin, size_t chunk_end) {
                IdCounts part(dict_size, {0, 0});
                for (size_t r = chunk_begin; r < chunk_end; ++r) {
                    auto &entry = part[ids[r]];
                    ++entry.first;
                    if (drift_flags[r])
                        ++entry.second;
                }
                return part;
            },
            [](IdCounts acc, IdCounts part) {
                for (size_t i = 0; i < acc.size(); ++i) {
                    acc[i].first += part[i].first;
                    acc[i].second += part[i].second;
                }
                return acc;
            });
        for (size_t id = 0; id < counts.size(); ++id) {
            const auto &cnt = counts[id];
            if (cnt.first == 0)
                continue; // only possible on an empty table
            CauseMetrics m = metricsFromCounts(cnt.first, cnt.second, n,
                                               total_drift);
            AttributeSet set({Attribute{
                col_name,
                col.dictValue(static_cast<driftlog::Column::Id>(id))}});
            results.push_back(RankedCause{set, m});
            if (m.occurrence >= config_.minOccurrence) {
                frequent_singles.push_back(set.attributes().front());
                frequent_prev.push_back(std::move(set));
            }
        }
    }
    std::sort(frequent_singles.begin(), frequent_singles.end());
    level1_span.stop();

    // ---- Levels 2..maxAttributes ------------------------------------
    NAZAR_SPAN_BEGIN(levelk_span, "rca.fim.levelk");
    for (size_t level = 2;
         level <= config_.maxAttributes && !frequent_prev.empty();
         ++level) {
        // Candidate generation: extend each frequent (k-1)-set with a
        // frequent single strictly greater than its last attribute and
        // over a column the set does not constrain yet. (Value-level,
        // so generation order is independent of the encoding.)
        std::vector<AttributeSet> candidates;
        for (const auto &set : frequent_prev) {
            const Attribute &last = set.attributes().back();
            for (const auto &single : frequent_singles) {
                if (!(last < single))
                    continue;
                if (set.hasColumn(single.column))
                    continue;
                candidates.push_back(set.extended(single));
            }
        }
        if (candidates.empty())
            break;

        // Counting pass: each candidate's attribute values resolve to
        // dictionary ids once, so the row probe is two or three uint32
        // compares against the dense id vectors. Within a chunk the
        // candidate is the OUTER loop, so the inner row loop walks
        // each candidate's id arrays contiguously. Per-chunk count
        // arrays sum in chunk order.
        struct CandidateProbe
        {
            std::vector<const driftlog::Column::Id *> cols;
            std::vector<driftlog::Column::Id> wanted;
        };
        std::vector<CandidateProbe> probes(candidates.size());
        for (size_t i = 0; i < candidates.size(); ++i) {
            for (const auto &a : candidates[i].attributes()) {
                const driftlog::Column &col = table_.column(a.column);
                probes[i].cols.push_back(col.ids().data());
                probes[i].wanted.push_back(wantedId(col, a.value));
            }
        }
        using CountVec = std::vector<std::pair<size_t, size_t>>;
        CountVec totals = rowReduce<CountVec>(
            n, CountVec(probes.size(), {0, 0}),
            [&](size_t chunk_begin, size_t chunk_end) {
                CountVec part(probes.size(), {0, 0});
                for (size_t c = 0; c < probes.size(); ++c) {
                    const CandidateProbe &probe = probes[c];
                    size_t count = 0, drift = 0;
                    for (size_t r = chunk_begin; r < chunk_end; ++r) {
                        bool match = true;
                        for (size_t i = 0; i < probe.cols.size(); ++i) {
                            if (probe.cols[i][r] != probe.wanted[i]) {
                                match = false;
                                break;
                            }
                        }
                        if (match) {
                            ++count;
                            if (drift_flags[r])
                                ++drift;
                        }
                    }
                    part[c] = {count, drift};
                }
                return part;
            },
            [](CountVec acc, CountVec part) {
                for (size_t i = 0; i < acc.size(); ++i) {
                    acc[i].first += part[i].first;
                    acc[i].second += part[i].second;
                }
                return acc;
            });

        std::vector<AttributeSet> frequent_now;
        for (size_t i = 0; i < candidates.size(); ++i) {
            CauseMetrics m = metricsFromCounts(
                totals[i].first, totals[i].second, n, total_drift);
            if (m.setCount == 0)
                continue; // combination never occurs; not a real set
            results.push_back(RankedCause{candidates[i], m});
            if (m.occurrence >= config_.minOccurrence)
                frequent_now.push_back(candidates[i]);
        }
        frequent_prev = std::move(frequent_now);
    }
    levelk_span.stop();

    std::sort(results.begin(), results.end(), rankBefore);
    return results;
}

std::vector<RankedCause>
Fim::mineReference() const
{
    return mineReference(driftFlags(table_, config_.driftColumn));
}

std::vector<RankedCause>
Fim::mineReference(const std::vector<bool> &drift_flags) const
{
    NAZAR_SPAN("rca.fim.mine_reference");
    NAZAR_CHECK(drift_flags.size() == table_.rowCount(),
                "drift-flag vector must cover the table");
    const size_t n = table_.rowCount();
    size_t total_drift = 0;
    for (bool f : drift_flags)
        total_drift += f ? 1 : 0;

    // Decode every attribute column up front. The scans below then see
    // what the pre-dictionary implementation saw: contiguous Value
    // vectors. (Benchmarks exclude this step from timed regions.)
    std::map<std::string, std::vector<driftlog::Value>> decoded;
    for (const auto &col_name : config_.attributeColumns)
        decoded.emplace(col_name, table_.column(col_name).materialize());

    std::vector<RankedCause> results;

    // ---- Level 1: Value-keyed histogram per column ------------------
    // (The *_ref spans start after materialization, so span-based
    // dict-off timings exclude the one-off decode above.)
    using ValueCounts =
        std::map<driftlog::Value, std::pair<size_t, size_t>>;
    std::vector<Attribute> frequent_singles;
    std::vector<AttributeSet> frequent_prev;
    NAZAR_SPAN_BEGIN(level1_span, "rca.fim.level1_ref");
    for (const auto &col_name : config_.attributeColumns) {
        const std::vector<driftlog::Value> &col = decoded.at(col_name);
        ValueCounts counts = rowReduce<ValueCounts>(
            n, ValueCounts{},
            [&](size_t chunk_begin, size_t chunk_end) {
                ValueCounts part;
                for (size_t r = chunk_begin; r < chunk_end; ++r) {
                    auto &entry = part[col[r]];
                    ++entry.first;
                    if (drift_flags[r])
                        ++entry.second;
                }
                return part;
            },
            [](ValueCounts acc, ValueCounts part) {
                for (auto &[value, cnt] : part) {
                    auto &entry = acc[value];
                    entry.first += cnt.first;
                    entry.second += cnt.second;
                }
                return acc;
            });
        for (const auto &[value, cnt] : counts) {
            CauseMetrics m = metricsFromCounts(cnt.first, cnt.second, n,
                                               total_drift);
            AttributeSet set({Attribute{col_name, value}});
            results.push_back(RankedCause{set, m});
            if (m.occurrence >= config_.minOccurrence) {
                frequent_singles.push_back(Attribute{col_name, value});
                frequent_prev.push_back(std::move(set));
            }
        }
    }
    std::sort(frequent_singles.begin(), frequent_singles.end());
    level1_span.stop();

    // ---- Levels 2..maxAttributes: Value-comparing probes ------------
    NAZAR_SPAN_BEGIN(levelk_span, "rca.fim.levelk_ref");
    for (size_t level = 2;
         level <= config_.maxAttributes && !frequent_prev.empty();
         ++level) {
        std::vector<AttributeSet> candidates;
        for (const auto &set : frequent_prev) {
            const Attribute &last = set.attributes().back();
            for (const auto &single : frequent_singles) {
                if (!(last < single))
                    continue;
                if (set.hasColumn(single.column))
                    continue;
                candidates.push_back(set.extended(single));
            }
        }
        if (candidates.empty())
            break;

        struct CandidateProbe
        {
            std::vector<const std::vector<driftlog::Value> *> cols;
            std::vector<const driftlog::Value *> wanted;
        };
        std::vector<CandidateProbe> probes(candidates.size());
        for (size_t i = 0; i < candidates.size(); ++i) {
            for (const auto &a : candidates[i].attributes()) {
                probes[i].cols.push_back(&decoded.at(a.column));
                probes[i].wanted.push_back(&a.value);
            }
        }
        using CountVec = std::vector<std::pair<size_t, size_t>>;
        CountVec totals = rowReduce<CountVec>(
            n, CountVec(probes.size(), {0, 0}),
            [&](size_t chunk_begin, size_t chunk_end) {
                CountVec part(probes.size(), {0, 0});
                for (size_t c = 0; c < probes.size(); ++c) {
                    const CandidateProbe &probe = probes[c];
                    size_t count = 0, drift = 0;
                    for (size_t r = chunk_begin; r < chunk_end; ++r) {
                        bool match = true;
                        for (size_t i = 0; i < probe.cols.size(); ++i) {
                            if (!((*probe.cols[i])[r] ==
                                  *probe.wanted[i])) {
                                match = false;
                                break;
                            }
                        }
                        if (match) {
                            ++count;
                            if (drift_flags[r])
                                ++drift;
                        }
                    }
                    part[c] = {count, drift};
                }
                return part;
            },
            [](CountVec acc, CountVec part) {
                for (size_t i = 0; i < acc.size(); ++i) {
                    acc[i].first += part[i].first;
                    acc[i].second += part[i].second;
                }
                return acc;
            });

        std::vector<AttributeSet> frequent_now;
        for (size_t i = 0; i < candidates.size(); ++i) {
            CauseMetrics m = metricsFromCounts(
                totals[i].first, totals[i].second, n, total_drift);
            if (m.setCount == 0)
                continue;
            results.push_back(RankedCause{candidates[i], m});
            if (m.occurrence >= config_.minOccurrence)
                frequent_now.push_back(candidates[i]);
        }
        frequent_prev = std::move(frequent_now);
    }
    levelk_span.stop();

    std::sort(results.begin(), results.end(), rankBefore);
    return results;
}

} // namespace nazar::rca
