/**
 * @file
 * Implementation of set reduction.
 */
#include "set_reduction.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/error.h"

namespace nazar::rca {

std::vector<CoarseAssociation>
reduceCauses(const std::vector<RankedCause> &ranked)
{
    // Process coarsest-first so that, when a cause picks its parent,
    // the parent's own group is already resolved (a proper subset is
    // always strictly smaller).
    std::vector<size_t> order(ranked.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return ranked[a].attrs.size() <
                                ranked[b].attrs.size();
                     });

    std::vector<CoarseAssociation> groups;
    std::map<AttributeSet, size_t> group_of;

    for (size_t idx : order) {
        const RankedCause &cause = ranked[idx];
        // Best-ranked proper attribute-subset present in the list.
        // `ranked` is rank-sorted, so the smallest index wins.
        size_t best = ranked.size();
        for (size_t j = 0; j < ranked.size(); ++j) {
            if (ranked[j].attrs.isProperSubsetOf(cause.attrs)) {
                best = j;
                break;
            }
        }
        if (best == ranked.size()) {
            group_of[cause.attrs] = groups.size();
            groups.push_back(CoarseAssociation{cause, {}});
        } else {
            auto it = group_of.find(ranked[best].attrs);
            NAZAR_ASSERT(it != group_of.end(),
                         "parent cause must already have a group");
            groups[it->second].merged.push_back(cause);
            group_of[cause.attrs] = it->second;
        }
    }

    // Report groups in rank order of their keys; merged lists keep
    // rank order too.
    std::sort(groups.begin(), groups.end(),
              [](const CoarseAssociation &a, const CoarseAssociation &b) {
                  return rankBefore(a.key, b.key);
              });
    for (auto &g : groups)
        std::sort(g.merged.begin(), g.merged.end(), rankBefore);
    return groups;
}

} // namespace nazar::rca
