/**
 * @file
 * Set reduction (paper §3.3, Figure 3b).
 *
 * FIM emits overlapping causes that are attribute-supersets of each
 * other — e.g. {snow, new_york} alongside {snow}. The finer cause
 * covers a strict subset of the rows, so adapting to it separately is
 * redundant. Set reduction merges every cause into its best-ranked
 * coarser cause (fewest attributes, ties broken by FIM rank), yielding
 * a list of coarse "association" groups that the counterfactual pass
 * walks.
 */
#ifndef NAZAR_RCA_SET_REDUCTION_H
#define NAZAR_RCA_SET_REDUCTION_H

#include <vector>

#include "rca/fim.h"

namespace nazar::rca {

/** A coarse cause with the finer causes merged into it. */
struct CoarseAssociation
{
    RankedCause key;                  ///< The coarse cause.
    std::vector<RankedCause> merged;  ///< Finer causes it subsumes.
};

/**
 * Reduce a rank-sorted cause list into coarse associations.
 *
 * Every cause that has a proper attribute-subset in the list is merged
 * into the *highest-ranked* such subset's group (transitively resolved
 * to a group key that has no proper subset itself). Causes with no
 * proper subset become group keys. Output preserves rank order of the
 * keys.
 */
std::vector<CoarseAssociation>
reduceCauses(const std::vector<RankedCause> &ranked);

} // namespace nazar::rca

#endif // NAZAR_RCA_SET_REDUCTION_H
