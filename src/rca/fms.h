/**
 * @file
 * Fowlkes-Mallows score between two clusterings (paper §5.4, Eq. 4).
 *
 * Used to compare the grouping of drifted samples induced by the
 * discovered root causes against the ground-truth drift causes.
 */
#ifndef NAZAR_RCA_FMS_H
#define NAZAR_RCA_FMS_H

#include <cstddef>
#include <vector>

namespace nazar::rca {

/**
 * Fowlkes-Mallows score of two label assignments over the same items:
 * sqrt( TP/(TP+FP) * TP/(TP+FN) ), where TP counts item pairs placed
 * together by both clusterings. Computed from the contingency table in
 * O(n + distinct-label-pairs). Returns 1.0 for two empty clusterings.
 *
 * @param truth     Ground-truth cluster id per item.
 * @param predicted Predicted cluster id per item (same length).
 */
double fowlkesMallows(const std::vector<int> &truth,
                      const std::vector<int> &predicted);

} // namespace nazar::rca

#endif // NAZAR_RCA_FMS_H
