/**
 * @file
 * Implementation of attribute sets.
 */
#include "attribute_set.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace nazar::rca {

AttributeSet::AttributeSet(std::vector<Attribute> attrs)
    : attrs_(std::move(attrs))
{
    std::sort(attrs_.begin(), attrs_.end());
    for (size_t i = 0; i + 1 < attrs_.size(); ++i) {
        NAZAR_CHECK(attrs_[i].column != attrs_[i + 1].column,
                    "at most one value per column in an attribute set");
    }
}

bool
AttributeSet::hasColumn(const std::string &column) const
{
    for (const auto &a : attrs_)
        if (a.column == column)
            return true;
    return false;
}

AttributeSet
AttributeSet::extended(const Attribute &attr) const
{
    NAZAR_CHECK(!hasColumn(attr.column),
                "column already constrained: " + attr.column);
    std::vector<Attribute> next = attrs_;
    next.push_back(attr);
    return AttributeSet(std::move(next));
}

bool
AttributeSet::isSubsetOf(const AttributeSet &other) const
{
    // Both sorted: subset check by merge walk.
    size_t j = 0;
    for (const auto &a : attrs_) {
        while (j < other.attrs_.size() && other.attrs_[j] < a)
            ++j;
        if (j == other.attrs_.size() || !(other.attrs_[j] == a))
            return false;
    }
    return true;
}

bool
AttributeSet::isProperSubsetOf(const AttributeSet &other) const
{
    return size() < other.size() && isSubsetOf(other);
}

bool
AttributeSet::matchesRow(const driftlog::Table &table, size_t row) const
{
    for (const auto &a : attrs_)
        if (!(table.at(row, a.column) == a.value))
            return false;
    return true;
}

std::string
AttributeSet::toString() const
{
    std::ostringstream os;
    os << "{";
    for (size_t i = 0; i < attrs_.size(); ++i) {
        os << (i ? ", " : "") << attrs_[i].column << "="
           << attrs_[i].value.toString();
    }
    os << "}";
    return os.str();
}

} // namespace nazar::rca
