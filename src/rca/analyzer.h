/**
 * @file
 * The full root-cause analysis pipeline (paper §3.3, Algorithm 1):
 * FIM -> set reduction -> counterfactual analysis.
 *
 * The counterfactual pass walks the coarse associations in rank order.
 * For each, it re-evaluates the cause's metrics against a *modified*
 * drift-flag vector in which entries explained by already-accepted
 * causes have been marked non-drifted. A cause that is still
 * statistically significant after the higher-ranked causes "took" its
 * overlapping evidence is a genuine independent root cause; otherwise
 * its merged finer causes get the same chance.
 *
 * The row scans of every stage run sharded over the runtime pool (see
 * fim.h); the counterfactual walk itself — acceptance decisions and
 * drift-flag absorption — is sequential in rank order by design.
 */
#ifndef NAZAR_RCA_ANALYZER_H
#define NAZAR_RCA_ANALYZER_H

#include "rca/fim.h"
#include "rca/set_reduction.h"

namespace nazar::rca {

/** Which pipeline stages run — the ablation axis of Table 5/Fig 8c. */
enum class AnalysisMode {
    kFimOnly,             ///< Every thresholded FIM cause is a result.
    kFimSetReduction,     ///< FIM + set reduction, no counterfactual.
    kFull,                ///< FIM + set reduction + counterfactual.
};

/** Printable mode name. */
std::string toString(AnalysisMode mode);

/** Outcome of one analysis run. */
struct AnalysisResult
{
    /** Final root causes, in acceptance (rank) order. */
    std::vector<RankedCause> rootCauses;
    /** The full ranked FIM table (diagnostics / Table 3 display). */
    std::vector<RankedCause> fimTable;
    /** Coarse associations after set reduction (diagnostics). */
    std::vector<CoarseAssociation> associations;
};

/** Root-cause analyzer over a drift-log table. */
class Analyzer
{
  public:
    explicit Analyzer(RcaConfig config);

    /**
     * Run the pipeline over a drift-log table.
     * @param table Drift log (must contain the configured columns).
     * @param mode  Which stages run (default: the full pipeline).
     */
    AnalysisResult analyze(const driftlog::Table &table,
                           AnalysisMode mode = AnalysisMode::kFull) const;

    const RcaConfig &config() const { return config_; }

  private:
    RcaConfig config_;
};

} // namespace nazar::rca

#endif // NAZAR_RCA_ANALYZER_H
