/**
 * @file
 * Implementation of the root-cause analysis pipeline (Algorithm 1).
 */
#include "analyzer.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::rca {

std::string
toString(AnalysisMode mode)
{
    switch (mode) {
      case AnalysisMode::kFimOnly:         return "fim";
      case AnalysisMode::kFimSetReduction: return "fim+set-reduction";
      case AnalysisMode::kFull:            return "fim+set-reduction+cf";
    }
    return "?";
}

Analyzer::Analyzer(RcaConfig config) : config_(std::move(config))
{
    NAZAR_CHECK(!config_.attributeColumns.empty(),
                "RcaConfig.attributeColumns must be set");
}

AnalysisResult
Analyzer::analyze(const driftlog::Table &table, AnalysisMode mode) const
{
    NAZAR_SPAN("rca.analyze");
    static obs::Counter &accepted =
        obs::Registry::global().counter("rca.causes_accepted");
    AnalysisResult result;
    if (table.rowCount() == 0)
        return result;

    Fim fim(table, config_);
    result.fimTable = fim.mine();

    // Causes that pass all four thresholds, in rank order.
    std::vector<RankedCause> passing;
    for (const auto &cause : result.fimTable)
        if (passesThresholds(cause.metrics, config_))
            passing.push_back(cause);

    if (mode == AnalysisMode::kFimOnly) {
        result.rootCauses = std::move(passing);
        accepted.add(result.rootCauses.size());
        return result;
    }

    result.associations = reduceCauses(passing);

    if (mode == AnalysisMode::kFimSetReduction) {
        for (const auto &assoc : result.associations)
            result.rootCauses.push_back(assoc.key);
        accepted.add(result.rootCauses.size());
        return result;
    }

    // Counterfactual analysis (Algorithm 1): walk associations in rank
    // order; re-check significance against flags with already-accepted
    // causes marked non-drift. The per-cause count scans inside
    // computeMetrics are sharded over the runtime pool; acceptance and
    // flag mutation stay strictly sequential in rank order — each
    // re-check must observe every higher-ranked cause's absorption, so
    // this stage's dependency chain is inherent to the algorithm.
    // (mark_no_drift also writes std::vector<bool>, whose packed bits
    // must not be flipped concurrently.)
    std::vector<bool> flags = Fim::driftFlags(table, config_.driftColumn);
    auto mark_no_drift = [&](const AttributeSet &attrs) {
        // Resolve the constrained columns to id vectors and the wanted
        // values to dictionary ids once; the row walk is then pure
        // uint32 compares. An accepted cause's values always occur in
        // the table, so idOf never comes back empty here.
        std::vector<const driftlog::Column::Id *> cols;
        std::vector<driftlog::Column::Id> wanted;
        for (const auto &a : attrs.attributes()) {
            const driftlog::Column &col = table.column(a.column);
            cols.push_back(col.ids().data());
            auto id = col.idOf(a.value);
            NAZAR_CHECK(id.has_value(),
                        "accepted cause value missing from dictionary");
            wanted.push_back(*id);
        }
        for (size_t r = 0; r < table.rowCount(); ++r) {
            if (!flags[r])
                continue;
            bool match = true;
            for (size_t i = 0; i < cols.size(); ++i) {
                if (cols[i][r] != wanted[i]) {
                    match = false;
                    break;
                }
            }
            if (match)
                flags[r] = false;
        }
    };

    NAZAR_SPAN("rca.walk");
    for (const auto &assoc : result.associations) {
        CauseMetrics current =
            computeMetrics(table, flags, assoc.key.attrs);
        if (passesThresholds(current, config_)) {
            // Still significant after higher-ranked causes explained
            // their share: accept, then absorb its evidence.
            RankedCause accepted = assoc.key;
            accepted.metrics = current;
            result.rootCauses.push_back(std::move(accepted));
            mark_no_drift(assoc.key.attrs);
        } else {
            // The coarse key is explained away; its finer merged
            // causes may still carry independent signal.
            for (const auto &fine : assoc.merged) {
                CauseMetrics fm = computeMetrics(table, flags, fine.attrs);
                if (passesThresholds(fm, config_)) {
                    RankedCause accepted = fine;
                    accepted.metrics = fm;
                    result.rootCauses.push_back(std::move(accepted));
                    mark_no_drift(fine.attrs);
                }
            }
        }
    }
    accepted.add(result.rootCauses.size());
    return result;
}

} // namespace nazar::rca
