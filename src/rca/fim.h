/**
 * @file
 * Frequent itemset mining over the drift log (paper §3.3, apriori).
 *
 * The miner computes, for every candidate attribute set, the four
 * metrics of the paper's Table 3 — occurrence, support, confidence and
 * risk ratio — prunes candidates level-by-level (apriori downward
 * closure on occurrence), filters by the four thresholds, and ranks
 * survivors by risk ratio.
 *
 * All table scans (the level-1 value histograms, the level-k candidate
 * counting pass, and computeMetrics) are sharded over src/runtime/
 * with a fixed row grain and chunk-ordered merges, so results are
 * bit-identical at every NAZAR_THREADS setting and NAZAR_THREADS=1
 * runs the exact sequential path.
 *
 * The scans run over dictionary ids: a candidate's attribute values
 * resolve to per-column ids once, each row probe is a uint32 compare
 * against the column's id vector, and the level-1 histograms count
 * into dense per-id arrays emitted in id order (== sorted Value
 * order, the order the old Value-keyed maps produced). mineReference
 * keeps the pre-dictionary Value-comparing pass as the oracle.
 */
#ifndef NAZAR_RCA_FIM_H
#define NAZAR_RCA_FIM_H

#include <vector>

#include "rca/attribute_set.h"

namespace nazar::rca {

/** Root-cause analysis thresholds (paper defaults, §3.3). */
struct RcaConfig
{
    /** Metadata columns that may form causes (default: drift-log
     *  attribute columns). Must be set by the caller. */
    std::vector<std::string> attributeColumns;
    /** Name of the boolean detection column. */
    std::string driftColumn = "drift";

    size_t maxAttributes = 3;     ///< Max attrs per cause (prior work).
    double minOccurrence = 0.01;  ///< Paper default.
    double minSupport = 0.01;     ///< Paper default.
    double minConfidence = 0.51;  ///< Paper default.
    double minRiskRatio = 1.1;    ///< Paper default.
};

/** The four FIM metrics of one attribute set (paper Table 3). */
struct CauseMetrics
{
    double occurrence = 0.0; ///< P(set) over all entries.
    double support = 0.0;    ///< P(set | drift).
    double confidence = 0.0; ///< P(drift | set).
    double riskRatio = 0.0;  ///< P(drift | set) / P(drift | !set).

    size_t setCount = 0;      ///< Entries containing the set.
    size_t setDriftCount = 0; ///< Drifted entries containing the set.
};

/** A candidate root cause with its metrics. */
struct RankedCause
{
    AttributeSet attrs;
    CauseMetrics metrics;
};

/**
 * Compute the four metrics of one attribute set against the table,
 * using an externally supplied drift-flag vector (the counterfactual
 * pass re-evaluates causes after flipping flags, paper §3.3).
 */
CauseMetrics computeMetrics(const driftlog::Table &table,
                            const std::vector<bool> &drift_flags,
                            const AttributeSet &attrs);

/** True when the metrics pass all four thresholds. */
bool passesThresholds(const CauseMetrics &metrics, const RcaConfig &config);

/**
 * Frequent itemset miner. The mine() entry point runs the full apriori
 * pass and returns every candidate that passed the occurrence pruning,
 * ranked by risk ratio (descending; confidence, occurrence and set
 * size break ties), together with its metrics. Filtering by the
 * remaining thresholds is the caller's choice — the analyzer keeps
 * passing causes, while benchmarks can display the full table (as the
 * paper's Table 3 does).
 */
class Fim
{
  public:
    Fim(const driftlog::Table &table, const RcaConfig &config);

    /**
     * Run apriori with the given drift flags (normally the table's own
     * drift column; the counterfactual pass supplies modified flags).
     */
    std::vector<RankedCause>
    mine(const std::vector<bool> &drift_flags) const;

    /** Convenience: mine with the table's stored drift column. */
    std::vector<RankedCause> mine() const;

    /**
     * The retained pre-dictionary miner: identical apriori structure
     * and chunking, but every candidate probe decodes and compares
     * whole Values over materialized column vectors instead of uint32
     * dictionary ids. Semantic oracle for differential tests (must
     * match mine() bit-for-bit) and the dict-off baseline for the RCA
     * scaling benchmark. Materialization cost is the caller's to
     * exclude from timings (it happens up front, before the scans).
     */
    std::vector<RankedCause>
    mineReference(const std::vector<bool> &drift_flags) const;

    /** Convenience: mineReference with the stored drift column. */
    std::vector<RankedCause> mineReference() const;

    /** Extract the drift column as a flag vector. */
    static std::vector<bool> driftFlags(const driftlog::Table &table,
                                        const std::string &drift_column);

  private:
    const driftlog::Table &table_;
    const RcaConfig &config_;
};

/** Rank comparison: higher risk ratio first, then confidence, then
 *  occurrence, then smaller (coarser) sets. */
bool rankBefore(const RankedCause &a, const RankedCause &b);

} // namespace nazar::rca

#endif // NAZAR_RCA_FIM_H
