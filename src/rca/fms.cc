/**
 * @file
 * Implementation of the Fowlkes-Mallows score.
 */
#include "fms.h"

#include <cmath>
#include <map>

#include "common/error.h"

namespace nazar::rca {

double
fowlkesMallows(const std::vector<int> &truth,
               const std::vector<int> &predicted)
{
    NAZAR_CHECK(truth.size() == predicted.size(),
                "clusterings must cover the same items");
    if (truth.empty())
        return 1.0;

    auto pairs = [](size_t n) {
        return static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
    };

    std::map<std::pair<int, int>, size_t> contingency;
    std::map<int, size_t> truth_sizes;
    std::map<int, size_t> pred_sizes;
    for (size_t i = 0; i < truth.size(); ++i) {
        ++contingency[{truth[i], predicted[i]}];
        ++truth_sizes[truth[i]];
        ++pred_sizes[predicted[i]];
    }

    double tp = 0.0; // pairs together in both
    for (const auto &[key, n] : contingency)
        tp += pairs(n);
    double together_truth = 0.0; // TP + FN
    for (const auto &[key, n] : truth_sizes)
        together_truth += pairs(n);
    double together_pred = 0.0; // TP + FP
    for (const auto &[key, n] : pred_sizes)
        together_pred += pairs(n);

    if (together_truth == 0.0 && together_pred == 0.0)
        return 1.0; // both clusterings are all-singletons: identical
    if (together_truth == 0.0 || together_pred == 0.0)
        return 0.0;
    return std::sqrt((tp / together_pred) * (tp / together_truth));
}

} // namespace nazar::rca
