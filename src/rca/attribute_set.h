/**
 * @file
 * Attribute sets — candidate root causes of drift (paper §3.3).
 *
 * A root cause is a set of (column, value) pairs over the drift log's
 * metadata attributes, e.g. {weather=snow, location=new_york}. At most
 * one value per column is meaningful, and the paper caps causes at 3
 * attributes.
 */
#ifndef NAZAR_RCA_ATTRIBUTE_SET_H
#define NAZAR_RCA_ATTRIBUTE_SET_H

#include <string>
#include <vector>

#include "driftlog/table.h"

namespace nazar::rca {

/** One attribute constraint: column == value. */
struct Attribute
{
    std::string column;
    driftlog::Value value;

    bool operator==(const Attribute &other) const = default;
    auto operator<=>(const Attribute &other) const = default;
};

/**
 * A set of attribute constraints, kept sorted by (column, value) so
 * equality and subset tests are canonical.
 */
class AttributeSet
{
  public:
    AttributeSet() = default;
    explicit AttributeSet(std::vector<Attribute> attrs);

    size_t size() const { return attrs_.size(); }
    bool empty() const { return attrs_.empty(); }

    const std::vector<Attribute> &attributes() const { return attrs_; }

    /** True when this set already constrains the column. */
    bool hasColumn(const std::string &column) const;

    /**
     * Extend with one more attribute; the column must not already be
     * constrained.
     */
    AttributeSet extended(const Attribute &attr) const;

    /**
     * True when every attribute of this set also appears in @p other
     * (i.e. this is coarser / covers at least the rows other covers).
     */
    bool isSubsetOf(const AttributeSet &other) const;

    /** Proper subset: subset and strictly smaller. */
    bool isProperSubsetOf(const AttributeSet &other) const;

    /** True when a table row satisfies every constraint. */
    bool matchesRow(const driftlog::Table &table, size_t row) const;

    /** Canonical display, e.g. "{location=new_york, weather=snow}". */
    std::string toString() const;

    bool operator==(const AttributeSet &other) const = default;
    auto operator<=>(const AttributeSet &other) const = default;

  private:
    std::vector<Attribute> attrs_;
};

} // namespace nazar::rca

#endif // NAZAR_RCA_ATTRIBUTE_SET_H
