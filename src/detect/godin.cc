/**
 * @file
 * Implementation of the GOdin-style detector.
 */
#include "godin.h"

#include <cmath>

#include "common/error.h"
#include "nn/loss.h"

namespace nazar::detect {

GOdinDetector::GOdinDetector(nn::Classifier &model, double threshold,
                             double epsilon, double temperature)
    : model_(&model), threshold_(threshold), epsilon_(epsilon),
      temperature_(temperature)
{
    NAZAR_CHECK(threshold >= 0.0 && threshold <= 1.0,
                "threshold must be in [0, 1]");
    NAZAR_CHECK(epsilon >= 0.0, "epsilon must be non-negative");
    NAZAR_CHECK(temperature > 0.0, "temperature must be positive");
}

double
GOdinDetector::score(const std::vector<double> &features) const
{
    NAZAR_CHECK(features.size() == model_->inputDim(),
                "feature width mismatch");
    nn::Matrix x = nn::Matrix::rowVector(features);

    // Pass 1: forward, temperature-scaled confidence loss.
    nn::Matrix z = model_->net().forward(x, nn::Mode::kEval);
    nn::Matrix zt = z * (1.0 / temperature_);
    nn::Matrix p = nn::softmax(zt);
    size_t top = zt.argmaxRow(0);

    // Pass 2: backward of L = -log p_top w.r.t. the input. dL/dz_c =
    // (p_c - 1[c == top]) / T.
    nn::Matrix grad_logits(1, z.cols());
    for (size_t c = 0; c < z.cols(); ++c) {
        grad_logits(0, c) =
            (p(0, c) - (c == top ? 1.0 : 0.0)) / temperature_;
    }
    nn::Matrix grad_input =
        model_->net().backward(grad_logits, nn::Mode::kEval);

    // Perturb against the gradient: nudge the input toward higher
    // confidence. In-distribution inputs respond strongly; drifted
    // ones don't.
    nn::Matrix perturbed = x;
    for (size_t c = 0; c < perturbed.cols(); ++c) {
        double g = grad_input(0, c);
        double step = g > 0.0 ? -epsilon_ : (g < 0.0 ? epsilon_ : 0.0);
        perturbed(0, c) += step;
    }

    // Pass 3: forward on the perturbed input.
    nn::Matrix z2 = model_->net().forward(perturbed, nn::Mode::kEval);
    return nn::maxSoftmax(z2 * (1.0 / temperature_))[0];
}

bool
GOdinDetector::isDrift(const std::vector<double> &features) const
{
    return score(features) < threshold_;
}

std::string
GOdinDetector::name() const
{
    return "godin@" + std::to_string(threshold_);
}

} // namespace nazar::detect
