/**
 * @file
 * Implementation of the SSL auxiliary-task detector.
 */
#include "ssl.h"

#include <algorithm>

#include "common/error.h"
#include "nn/loss.h"

namespace nazar::detect {

std::vector<double>
sslTransform(const std::vector<double> &x, int k)
{
    NAZAR_CHECK(k >= 0 && k < kSslTransforms, "transform out of range");
    std::vector<double> y = x;
    switch (k) {
      case 0:
        break; // identity
      case 1:
        std::reverse(y.begin(), y.end());
        break;
      case 2:
        for (auto &e : y)
            e = -e;
        break;
      case 3: {
        // Cyclic shift by half the width.
        std::rotate(y.begin(),
                    y.begin() + static_cast<long>(y.size() / 2),
                    y.end());
        break;
      }
      default:
        break;
    }
    return y;
}

SslDetector::SslDetector(const nn::Matrix &clean_x, double threshold,
                         uint64_t seed, int epochs)
    : threshold_(threshold)
{
    NAZAR_CHECK(clean_x.rows() >= 8, "need clean training data");
    NAZAR_CHECK(threshold >= 0.0 && threshold <= 1.0,
                "threshold must be in [0, 1]");

    // Build the auxiliary training set: every clean sample under every
    // transform, labeled by transform id.
    nn::Matrix aux_x(clean_x.rows() * kSslTransforms, clean_x.cols());
    std::vector<int> aux_y(clean_x.rows() * kSslTransforms);
    for (size_t r = 0; r < clean_x.rows(); ++r) {
        for (int k = 0; k < kSslTransforms; ++k) {
            aux_x.setRow(r * kSslTransforms + static_cast<size_t>(k),
                         sslTransform(clean_x.rowVec(r), k));
            aux_y[r * kSslTransforms + static_cast<size_t>(k)] = k;
        }
    }

    aux_ = std::make_unique<nn::Classifier>(
        nn::Architecture::kResNet18, clean_x.cols(),
        static_cast<size_t>(kSslTransforms), seed);
    nn::TrainConfig tc;
    tc.epochs = epochs;
    tc.seed = seed;
    aux_->trainSupervised(aux_x, aux_y, tc);
}

double
SslDetector::score(const std::vector<double> &features) const
{
    double total = 0.0;
    for (int k = 0; k < kSslTransforms; ++k) {
        nn::Matrix z = aux_->logits(
            nn::Matrix::rowVector(sslTransform(features, k)));
        nn::Matrix p = nn::softmax(z);
        total += p(0, static_cast<size_t>(k));
    }
    return total / kSslTransforms;
}

bool
SslDetector::isDrift(const std::vector<double> &features) const
{
    return score(features) < threshold_;
}

double
SslDetector::auxiliaryAccuracy(const nn::Matrix &clean_x) const
{
    size_t correct = 0, total = 0;
    for (size_t r = 0; r < clean_x.rows(); ++r) {
        for (int k = 0; k < kSslTransforms; ++k) {
            int pred =
                aux_->predictOne(sslTransform(clean_x.rowVec(r), k));
            correct += pred == k ? 1 : 0;
            ++total;
        }
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

std::string
SslDetector::name() const
{
    return "ssl@" + std::to_string(threshold_);
}

} // namespace nazar::detect
