/**
 * @file
 * Implementation of the SSL auxiliary-task detector.
 */
#include "ssl.h"

#include <algorithm>

#include "common/error.h"
#include "nn/loss.h"

namespace nazar::detect {

std::vector<double>
sslTransform(const std::vector<double> &x, int k)
{
    NAZAR_CHECK(k >= 0 && k < kSslTransforms, "transform out of range");
    std::vector<double> y = x;
    switch (k) {
      case 0:
        break; // identity
      case 1:
        std::reverse(y.begin(), y.end());
        break;
      case 2:
        for (auto &e : y)
            e = -e;
        break;
      case 3: {
        // Cyclic shift by half the width.
        std::rotate(y.begin(),
                    y.begin() + static_cast<long>(y.size() / 2),
                    y.end());
        break;
      }
      default:
        break;
    }
    return y;
}

SslDetector::SslDetector(const nn::Matrix &clean_x, double threshold,
                         uint64_t seed, int epochs)
    : threshold_(threshold)
{
    NAZAR_CHECK(clean_x.rows() >= 8, "need clean training data");
    NAZAR_CHECK(threshold >= 0.0 && threshold <= 1.0,
                "threshold must be in [0, 1]");

    // Build the auxiliary training set: every clean sample under every
    // transform, labeled by transform id.
    nn::Matrix aux_x(clean_x.rows() * kSslTransforms, clean_x.cols());
    std::vector<int> aux_y(clean_x.rows() * kSslTransforms);
    for (size_t r = 0; r < clean_x.rows(); ++r) {
        for (int k = 0; k < kSslTransforms; ++k) {
            aux_x.setRow(r * kSslTransforms + static_cast<size_t>(k),
                         sslTransform(clean_x.rowVec(r), k));
            aux_y[r * kSslTransforms + static_cast<size_t>(k)] = k;
        }
    }

    aux_ = std::make_unique<nn::Classifier>(
        nn::Architecture::kResNet18, clean_x.cols(),
        static_cast<size_t>(kSslTransforms), seed);
    nn::TrainConfig tc;
    tc.epochs = epochs;
    tc.seed = seed;
    aux_->trainSupervised(aux_x, aux_y, tc);
}

double
SslDetector::score(const std::vector<double> &features) const
{
    // One batched forward over all transforms instead of one call per
    // transform; row k of the batch is bit-identical to the single-row
    // forward for transform k.
    nn::Matrix batch(kSslTransforms, features.size());
    for (int k = 0; k < kSslTransforms; ++k)
        batch.setRow(static_cast<size_t>(k), sslTransform(features, k));
    nn::Matrix p = nn::softmax(aux_->logits(batch));
    double total = 0.0;
    for (int k = 0; k < kSslTransforms; ++k)
        total += p(static_cast<size_t>(k), static_cast<size_t>(k));
    return total / kSslTransforms;
}

bool
SslDetector::isDrift(const std::vector<double> &features) const
{
    return score(features) < threshold_;
}

double
SslDetector::auxiliaryAccuracy(const nn::Matrix &clean_x) const
{
    if (clean_x.rows() == 0)
        return 0.0;
    // Batched inference over every (sample, transform) pair; the big
    // matmuls inside the forward pass parallelize over the runtime.
    nn::Matrix batch(clean_x.rows() * kSslTransforms, clean_x.cols());
    for (size_t r = 0; r < clean_x.rows(); ++r)
        for (int k = 0; k < kSslTransforms; ++k)
            batch.setRow(r * kSslTransforms + static_cast<size_t>(k),
                         sslTransform(clean_x.rowVec(r), k));
    std::vector<int> pred = aux_->predict(batch);
    size_t correct = 0;
    for (size_t i = 0; i < pred.size(); ++i)
        correct += pred[i] == static_cast<int>(i % kSslTransforms) ? 1 : 0;
    return static_cast<double>(correct) / static_cast<double>(pred.size());
}

std::string
SslDetector::name() const
{
    return "ssl@" + std::to_string(threshold_);
}

} // namespace nazar::detect
