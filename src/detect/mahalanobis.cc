/**
 * @file
 * Implementation of the Mahalanobis detector.
 */
#include "mahalanobis.h"

#include <limits>
#include <map>

#include "common/error.h"

namespace nazar::detect {

MahalanobisDetector::MahalanobisDetector(const nn::Matrix &x,
                                         const std::vector<int> &labels,
                                         double max_distance2,
                                         double ridge)
    : maxDistance2_(max_distance2)
{
    NAZAR_CHECK(x.rows() == labels.size(), "label count mismatch");
    NAZAR_CHECK(x.rows() >= 2, "need at least two training samples");
    NAZAR_CHECK(max_distance2 > 0.0, "threshold must be positive");

    const size_t d = x.cols();

    // Per-class means.
    std::map<int, std::pair<std::vector<double>, size_t>> sums;
    for (size_t r = 0; r < x.rows(); ++r) {
        auto &entry = sums[labels[r]];
        if (entry.first.empty())
            entry.first.assign(d, 0.0);
        for (size_t c = 0; c < d; ++c)
            entry.first[c] += x(r, c);
        ++entry.second;
    }
    std::map<int, size_t> class_index;
    for (auto &[cls, entry] : sums) {
        for (auto &v : entry.first)
            v /= static_cast<double>(entry.second);
        class_index[cls] = means_.size();
        means_.push_back(entry.first);
    }

    // Shared covariance of the centered data, ridge-regularized.
    nn::Matrix cov(d, d);
    for (size_t r = 0; r < x.rows(); ++r) {
        const auto &mean = means_[class_index[labels[r]]];
        for (size_t i = 0; i < d; ++i) {
            double di = x(r, i) - mean[i];
            for (size_t j = 0; j <= i; ++j) {
                double dj = x(r, j) - mean[j];
                cov(i, j) += di * dj;
            }
        }
    }
    double inv_n = 1.0 / static_cast<double>(x.rows());
    for (size_t i = 0; i < d; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            cov(i, j) *= inv_n;
            cov(j, i) = cov(i, j);
        }
        cov(i, i) += ridge;
    }
    choleskyL_ = cov.choleskyFactor();
}

double
MahalanobisDetector::minDistance2(const std::vector<double> &features)
    const
{
    NAZAR_CHECK(features.size() == choleskyL_.rows(),
                "feature width mismatch");
    double best = std::numeric_limits<double>::infinity();
    std::vector<double> delta(features.size());
    for (const auto &mean : means_) {
        for (size_t c = 0; c < features.size(); ++c)
            delta[c] = features[c] - mean[c];
        // d2 = delta^T Sigma^-1 delta = delta . solve(Sigma, delta).
        std::vector<double> solved = choleskyL_.choleskySolve(delta);
        double d2 = 0.0;
        for (size_t c = 0; c < delta.size(); ++c)
            d2 += delta[c] * solved[c];
        best = std::min(best, d2);
    }
    return best;
}

double
MahalanobisDetector::score(const std::vector<double> &features) const
{
    return -minDistance2(features);
}

bool
MahalanobisDetector::isDrift(const std::vector<double> &features) const
{
    return minDistance2(features) > maxDistance2_;
}

std::string
MahalanobisDetector::name() const
{
    return "mahalanobis@" + std::to_string(maxDistance2_);
}

} // namespace nazar::detect
