/**
 * @file
 * Two-sample Kolmogorov-Smirnov drift detection on batches of MSP
 * scores (paper §3.2.1, "Statistical test on a batch of outputs").
 *
 * Following Rabanser et al. ("Failing Loudly"), the KS test compares
 * the empirical CDF of a batch of softmax scores from inference
 * against a reference sample collected on clean (training-time)
 * data; the whole batch is flagged as drifted when the KS statistic
 * exceeds the significance threshold.
 */
#ifndef NAZAR_DETECT_KS_TEST_H
#define NAZAR_DETECT_KS_TEST_H

#include <string>
#include <vector>

namespace nazar::detect {

/**
 * Two-sample KS statistic: sup_x |F1(x) - F2(x)| of the empirical
 * CDFs. Both samples must be non-empty.
 */
double ksStatistic(std::vector<double> a, std::vector<double> b);

/**
 * Asymptotic p-value of a two-sample KS statistic via the Kolmogorov
 * distribution.
 */
double ksPValue(double statistic, size_t n, size_t m);

/** Batched drift detector based on the two-sample KS test. */
class KsTestDetector
{
  public:
    /**
     * @param reference Clean-data score sample (e.g. MSP scores of the
     *                  validation set under the deployed model).
     * @param alpha     Significance level; the batch is drifted when
     *                  p-value < alpha.
     */
    KsTestDetector(std::vector<double> reference, double alpha = 0.05);

    /** True when the batch's score distribution diverges from clean. */
    bool isDriftBatch(const std::vector<double> &batch_scores) const;

    /** KS statistic of a batch vs. the reference. */
    double statistic(const std::vector<double> &batch_scores) const;

    /** p-value of a batch vs. the reference. */
    double pValue(const std::vector<double> &batch_scores) const;

    double alpha() const { return alpha_; }
    size_t referenceSize() const { return reference_.size(); }

    std::string name() const;

  private:
    std::vector<double> reference_; ///< Sorted clean scores.
    double alpha_;
};

} // namespace nazar::detect

#endif // NAZAR_DETECT_KS_TEST_H
