/**
 * @file
 * Generalized-ODIN-style detector (Hsu et al. 2020) — implemented to
 * reproduce the paper's §3.2.1 cost argument: the method needs "an
 * extra step of backpropagation after the softmax values are read ...
 * followed by another step of inference on the perturbed input", which
 * "triples the inference time" and is why Nazar rejects it for
 * on-device use.
 *
 * Unlike the score-threshold detectors, GOdin is *not* a pure function
 * of the logits: it needs the model itself (for the input-gradient
 * perturbation), which is exactly the deployment problem.
 */
#ifndef NAZAR_DETECT_GODIN_H
#define NAZAR_DETECT_GODIN_H

#include <string>
#include <vector>

#include "nn/classifier.h"

namespace nazar::detect {

/** Input-perturbation confidence detector (ODIN / Generalized ODIN). */
class GOdinDetector
{
  public:
    /**
     * @param model       The deployed classifier (held by reference;
     *                    the detector never modifies it).
     * @param threshold   Flag drift when the perturbed, temperature-
     *                    scaled confidence falls below this.
     * @param epsilon     Input-perturbation magnitude.
     * @param temperature Softmax temperature (> 1 flattens).
     */
    GOdinDetector(nn::Classifier &model, double threshold,
                  double epsilon = 0.02, double temperature = 2.0);

    /** Drift verdict for one input feature vector. */
    bool isDrift(const std::vector<double> &features) const;

    /**
     * The detector's confidence score: max softmax(z'/T) of the
     * *perturbed* input (three model passes: forward, backward,
     * forward).
     */
    double score(const std::vector<double> &features) const;

    /** Model passes per detection (the paper's 3x cost claim). */
    static constexpr int kPassesPerInference = 3;

    std::string name() const;

    double threshold() const { return threshold_; }

  private:
    nn::Classifier *model_;
    double threshold_;
    double epsilon_;
    double temperature_;
};

} // namespace nazar::detect

#endif // NAZAR_DETECT_GODIN_H
