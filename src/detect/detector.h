/**
 * @file
 * On-device drift-detection interface (paper §3.2).
 *
 * Detectors are pure functions of the model's logit output: they never
 * see labels, raw inputs, or any auxiliary dataset/model — the design
 * constraint that ruled out OE/Odin/MD/SSL/CSI/GOdin (paper Table 1).
 */
#ifndef NAZAR_DETECT_DETECTOR_H
#define NAZAR_DETECT_DETECTOR_H

#include <string>
#include <vector>

#include "nn/matrix.h"

namespace nazar::detect {

/**
 * Single-sample drift detector operating on one logit vector.
 */
class Detector
{
  public:
    virtual ~Detector() = default;

    /** True when the sample is flagged as drifted. */
    virtual bool isDrift(const std::vector<double> &logit_row) const = 0;

    /**
     * The underlying confidence/uncertainty score (higher = more
     * in-distribution for score-threshold detectors).
     */
    virtual double score(const std::vector<double> &logit_row) const = 0;

    /** Diagnostic name. */
    virtual std::string name() const = 0;

    /** Flag every row of a logit batch. */
    std::vector<bool> detectBatch(const nn::Matrix &logits) const;
};

} // namespace nazar::detect

#endif // NAZAR_DETECT_DETECTOR_H
