/**
 * @file
 * Mahalanobis-distance drift detector (Lee et al. 2018) — one of the
 * families the paper rules out for on-device use because it requires
 * training-time access to the data distribution ("No secondary
 * dataset: ✗" in Table 1). Implemented here so the Table 1 comparison
 * can be *measured*, not just tabulated.
 *
 * Fit: class-conditional Gaussians with a shared (ridge-regularized)
 * covariance estimated from the training set. Score: negative minimum
 * squared Mahalanobis distance to any class mean; drift when the
 * nearest class is farther than a threshold.
 */
#ifndef NAZAR_DETECT_MAHALANOBIS_H
#define NAZAR_DETECT_MAHALANOBIS_H

#include <vector>

#include "detect/detector.h"

namespace nazar::detect {

/** Class-conditional Gaussian detector over input features. */
class MahalanobisDetector
{
  public:
    /**
     * Fit from labeled training data.
     *
     * @param x             Training features (the "secondary dataset"
     *                      requirement).
     * @param labels        Class index per row.
     * @param max_distance2 Squared-distance threshold: drift when the
     *                      nearest class mean is farther than this.
     * @param ridge         Covariance regularizer added to the
     *                      diagonal.
     */
    MahalanobisDetector(const nn::Matrix &x,
                        const std::vector<int> &labels,
                        double max_distance2, double ridge = 1e-3);

    /** Drift verdict for one feature vector. */
    bool isDrift(const std::vector<double> &features) const;

    /** Negative min squared distance (higher = more in-distribution). */
    double score(const std::vector<double> &features) const;

    /** Squared Mahalanobis distance to the nearest class mean. */
    double minDistance2(const std::vector<double> &features) const;

    size_t classCount() const { return means_.size(); }

    std::string name() const;

  private:
    std::vector<std::vector<double>> means_; ///< Per-class means.
    nn::Matrix choleskyL_; ///< Factor of the shared covariance.
    double maxDistance2_;
};

} // namespace nazar::detect

#endif // NAZAR_DETECT_MAHALANOBIS_H
