/**
 * @file
 * Implementation of detector evaluation.
 */
#include "metrics.h"

#include "common/error.h"

namespace nazar::detect {

ConfusionCounts
evaluateDetector(const Detector &detector, const nn::Matrix &logits,
                 const std::vector<bool> &true_drift)
{
    NAZAR_CHECK(logits.rows() == true_drift.size(),
                "ground-truth size mismatch");
    ConfusionCounts counts;
    for (size_t r = 0; r < logits.rows(); ++r)
        counts.add(detector.isDrift(logits.rowVec(r)), true_drift[r]);
    return counts;
}

ConfusionCounts
evaluateKsDetector(const KsTestDetector &detector,
                   const std::vector<double> &scores,
                   const std::vector<bool> &true_drift, size_t batch_size)
{
    NAZAR_CHECK(scores.size() == true_drift.size(),
                "ground-truth size mismatch");
    NAZAR_CHECK(batch_size >= 1, "batch size must be >= 1");
    ConfusionCounts counts;
    for (size_t start = 0; start < scores.size(); start += batch_size) {
        size_t end = std::min(scores.size(), start + batch_size);
        std::vector<double> batch(scores.begin() + start,
                                  scores.begin() + end);
        bool flagged = detector.isDriftBatch(batch);
        for (size_t i = start; i < end; ++i)
            counts.add(flagged, true_drift[i]);
    }
    return counts;
}

double
detectionRate(const Detector &detector, const nn::Matrix &logits)
{
    if (logits.rows() == 0)
        return 0.0;
    size_t flagged = 0;
    for (size_t r = 0; r < logits.rows(); ++r)
        if (detector.isDrift(logits.rowVec(r)))
            ++flagged;
    return static_cast<double>(flagged) /
           static_cast<double>(logits.rows());
}

} // namespace nazar::detect
