/**
 * @file
 * Implementation of the KS-test batch detector.
 */
#include "ks_test.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace nazar::detect {

double
ksStatistic(std::vector<double> a, std::vector<double> b)
{
    NAZAR_CHECK(!a.empty() && !b.empty(),
                "KS statistic needs non-empty samples");
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    size_t i = 0, j = 0;
    double d = 0.0;
    double na = static_cast<double>(a.size());
    double nb = static_cast<double>(b.size());
    while (i < a.size() && j < b.size()) {
        double va = a[i], vb = b[j];
        // Consume all duplicates of the smaller value from both sides
        // so ties advance the two CDFs together.
        if (va <= vb)
            while (i < a.size() && a[i] == va)
                ++i;
        if (vb <= va)
            while (j < b.size() && b[j] == vb)
                ++j;
        double fa = static_cast<double>(i) / na;
        double fb = static_cast<double>(j) / nb;
        d = std::max(d, std::fabs(fa - fb));
    }
    return d;
}

double
ksPValue(double statistic, size_t n, size_t m)
{
    NAZAR_CHECK(n > 0 && m > 0, "KS p-value needs sample sizes");
    double en = std::sqrt(static_cast<double>(n) *
                          static_cast<double>(m) /
                          static_cast<double>(n + m));
    // Stephens' approximation improves small-sample accuracy.
    double lambda = (en + 0.12 + 0.11 / en) * statistic;
    if (lambda < 1e-12)
        return 1.0;
    // Kolmogorov tail sum Q(lambda) = 2 sum_{k>=1} (-1)^{k-1}
    // exp(-2 k^2 lambda^2).
    double sum = 0.0;
    double sign = 1.0;
    for (int k = 1; k <= 100; ++k) {
        double term = std::exp(-2.0 * k * k * lambda * lambda);
        sum += sign * term;
        if (term < 1e-12)
            break;
        sign = -sign;
    }
    return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsTestDetector::KsTestDetector(std::vector<double> reference, double alpha)
    : reference_(std::move(reference)), alpha_(alpha)
{
    NAZAR_CHECK(!reference_.empty(), "KS detector needs a reference");
    NAZAR_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    std::sort(reference_.begin(), reference_.end());
}

double
KsTestDetector::statistic(const std::vector<double> &batch_scores) const
{
    return ksStatistic(reference_, batch_scores);
}

double
KsTestDetector::pValue(const std::vector<double> &batch_scores) const
{
    return ksPValue(statistic(batch_scores), reference_.size(),
                    batch_scores.size());
}

bool
KsTestDetector::isDriftBatch(const std::vector<double> &batch_scores) const
{
    return pValue(batch_scores) < alpha_;
}

std::string
KsTestDetector::name() const
{
    return "ks-test@" + std::to_string(alpha_);
}

} // namespace nazar::detect
