/**
 * @file
 * Score-threshold detectors: MSP (Nazar's default), entropy and energy
 * variants (which the paper found "almost identical" to MSP, §3.2.1).
 */
#ifndef NAZAR_DETECT_SCORES_H
#define NAZAR_DETECT_SCORES_H

#include "detect/detector.h"

namespace nazar::detect {

/** Nazar's default MSP threshold used on devices (paper §3.2.2). */
inline constexpr double kDefaultMspThreshold = 0.9;

/**
 * Maximum-softmax-probability threshold detector (Hendrycks & Gimpel):
 * flag drift when max softmax < threshold. MSP is normalized to [0,1],
 * which is why the paper picks it as the default knob.
 */
class MspDetector : public Detector
{
  public:
    explicit MspDetector(double threshold = kDefaultMspThreshold);

    bool isDrift(const std::vector<double> &logit_row) const override;
    double score(const std::vector<double> &logit_row) const override;
    std::string name() const override;

    double threshold() const { return threshold_; }

  private:
    double threshold_;
};

/**
 * Softmax-entropy threshold detector: flag drift when the prediction
 * entropy exceeds a threshold (entropy in nats). score() returns the
 * negated entropy so that, like MSP, higher means more in-distribution.
 */
class EntropyDetector : public Detector
{
  public:
    /** @param max_entropy Flag drift when entropy > this (nats). */
    explicit EntropyDetector(double max_entropy);

    bool isDrift(const std::vector<double> &logit_row) const override;
    double score(const std::vector<double> &logit_row) const override;
    std::string name() const override;

    double maxEntropy() const { return maxEntropy_; }

  private:
    double maxEntropy_;
};

/**
 * Energy-score detector (Liu et al. 2020): flag drift when
 * -logsumexp(z) exceeds a threshold. score() returns logsumexp(z)
 * (higher = more in-distribution).
 */
class EnergyDetector : public Detector
{
  public:
    /** @param max_energy Flag drift when -logsumexp(z) > this. */
    explicit EnergyDetector(double max_energy);

    bool isDrift(const std::vector<double> &logit_row) const override;
    double score(const std::vector<double> &logit_row) const override;
    std::string name() const override;

    double maxEnergy() const { return maxEnergy_; }

  private:
    double maxEnergy_;
};

} // namespace nazar::detect

#endif // NAZAR_DETECT_SCORES_H
