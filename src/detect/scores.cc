/**
 * @file
 * Implementation of the score-threshold detectors.
 */
#include "scores.h"

#include "common/error.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::detect {

namespace {

nn::Matrix
asRow(const std::vector<double> &logit_row)
{
    return nn::Matrix::rowVector(logit_row);
}

/** Per-detector sample/flag counters (samples seen, drift flags raised). */
struct DriftCounters
{
    obs::Counter &samples;
    obs::Counter &flags;

    DriftCounters(const char *samples_name, const char *flags_name)
        : samples(obs::Registry::global().counter(samples_name)),
          flags(obs::Registry::global().counter(flags_name))
    {
    }

    bool
    record(bool drift)
    {
        samples.add(1);
        if (drift)
            flags.add(1);
        return drift;
    }
};

} // namespace

MspDetector::MspDetector(double threshold) : threshold_(threshold)
{
    NAZAR_CHECK(threshold >= 0.0 && threshold <= 1.0,
                "MSP threshold must be in [0, 1]");
}

bool
MspDetector::isDrift(const std::vector<double> &logit_row) const
{
    NAZAR_SPAN("detect.msp.is_drift");
    static DriftCounters counters("detect.msp.samples",
                                  "detect.msp.flags");
    return counters.record(score(logit_row) < threshold_);
}

double
MspDetector::score(const std::vector<double> &logit_row) const
{
    return nn::maxSoftmax(asRow(logit_row))[0];
}

std::string
MspDetector::name() const
{
    return "msp@" + std::to_string(threshold_);
}

EntropyDetector::EntropyDetector(double max_entropy)
    : maxEntropy_(max_entropy)
{
    NAZAR_CHECK(max_entropy >= 0.0, "entropy threshold must be >= 0");
}

bool
EntropyDetector::isDrift(const std::vector<double> &logit_row) const
{
    NAZAR_SPAN("detect.entropy.is_drift");
    static DriftCounters counters("detect.entropy.samples",
                                  "detect.entropy.flags");
    return counters.record(
        nn::softmaxEntropy(asRow(logit_row))[0] > maxEntropy_);
}

double
EntropyDetector::score(const std::vector<double> &logit_row) const
{
    return -nn::softmaxEntropy(asRow(logit_row))[0];
}

std::string
EntropyDetector::name() const
{
    return "entropy@" + std::to_string(maxEntropy_);
}

EnergyDetector::EnergyDetector(double max_energy) : maxEnergy_(max_energy)
{
}

bool
EnergyDetector::isDrift(const std::vector<double> &logit_row) const
{
    NAZAR_SPAN("detect.energy.is_drift");
    static DriftCounters counters("detect.energy.samples",
                                  "detect.energy.flags");
    return counters.record(
        nn::energyScore(asRow(logit_row))[0] > maxEnergy_);
}

double
EnergyDetector::score(const std::vector<double> &logit_row) const
{
    return -nn::energyScore(asRow(logit_row))[0];
}

std::string
EnergyDetector::name() const
{
    return "energy@" + std::to_string(maxEnergy_);
}

} // namespace nazar::detect
