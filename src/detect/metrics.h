/**
 * @file
 * Detector evaluation harness: F1 / precision / recall / detection
 * rate over labeled logit batches (paper Eq. 1 and Figs 2, 5a, 6).
 */
#ifndef NAZAR_DETECT_METRICS_H
#define NAZAR_DETECT_METRICS_H

#include <vector>

#include "common/stats.h"
#include "detect/detector.h"
#include "detect/ks_test.h"

namespace nazar::detect {

/**
 * Evaluate a single-sample detector against ground truth.
 *
 * @param detector   Detector under test.
 * @param logits     One row per sample.
 * @param true_drift Ground-truth drift flag per sample.
 */
ConfusionCounts evaluateDetector(const Detector &detector,
                                 const nn::Matrix &logits,
                                 const std::vector<bool> &true_drift);

/**
 * Evaluate a batched KS-test detector: scores are grouped into
 * consecutive batches of @p batch_size; each batch receives one
 * detection verdict, which is counted once per sample in the batch
 * against that sample's ground truth (the paper "assigns the detection
 * result on the whole batch"). A trailing partial batch is evaluated
 * as-is.
 */
ConfusionCounts evaluateKsDetector(const KsTestDetector &detector,
                                   const std::vector<double> &scores,
                                   const std::vector<bool> &true_drift,
                                   size_t batch_size);

/**
 * Fraction of samples flagged as drifted (the "detection rate" of
 * Figs 5c and 6; no ground truth involved).
 */
double detectionRate(const Detector &detector, const nn::Matrix &logits);

} // namespace nazar::detect

#endif // NAZAR_DETECT_METRICS_H
