/**
 * @file
 * Shared detector helpers.
 */
#include "detector.h"

namespace nazar::detect {

std::vector<bool>
Detector::detectBatch(const nn::Matrix &logits) const
{
    std::vector<bool> out(logits.rows());
    for (size_t r = 0; r < logits.rows(); ++r)
        out[r] = isDrift(logits.rowVec(r));
    return out;
}

} // namespace nazar::detect
