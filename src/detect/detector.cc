/**
 * @file
 * Shared detector helpers.
 */
#include "detector.h"

#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::detect {

std::vector<bool>
Detector::detectBatch(const nn::Matrix &logits) const
{
    // Batch-level latency + row/flag counters; the per-sample
    // detectors (msp/entropy/energy) additionally count their own
    // samples inside isDrift.
    NAZAR_SPAN("detect.batch");
    static obs::Counter &rows =
        obs::Registry::global().counter("detect.batch.rows");
    static obs::Counter &flags =
        obs::Registry::global().counter("detect.batch.flags");
    rows.add(logits.rows());
    std::vector<bool> out(logits.rows());
    for (size_t r = 0; r < logits.rows(); ++r) {
        out[r] = isDrift(logits.rowVec(r));
        if (out[r])
            flags.add(1);
    }
    return out;
}

} // namespace nazar::detect
