/**
 * @file
 * SSL-style drift detector (Hendrycks et al. 2019 / CSI) — the
 * "secondary model" family the paper rules out for resource-
 * constrained devices (Table 1), implemented so the comparison can be
 * measured.
 *
 * An auxiliary classifier is co-trained on a self-supervised task:
 * identify which of four fixed, label-free transforms was applied to a
 * clean sample (the feature-space analog of rotation prediction). On
 * drifted inputs the auxiliary task gets harder, so the mean
 * probability the auxiliary model assigns to the *correct* transform
 * drops — that probability is the detection score.
 */
#ifndef NAZAR_DETECT_SSL_H
#define NAZAR_DETECT_SSL_H

#include <memory>

#include "detect/detector.h"
#include "nn/classifier.h"

namespace nazar::detect {

/** Number of self-supervised transforms (aux classes). */
inline constexpr int kSslTransforms = 4;

/** Apply the k-th fixed transform (k in [0, kSslTransforms)). */
std::vector<double> sslTransform(const std::vector<double> &x, int k);

/** Auxiliary-model drift detector. */
class SslDetector
{
  public:
    /**
     * Co-train the auxiliary transform classifier on clean data.
     *
     * @param clean_x   Clean training features (unlabeled — the task
     *                  is self-supervised).
     * @param threshold Drift when the mean correct-transform
     *                  probability falls below this.
     * @param seed      Auxiliary-model training seed.
     * @param epochs    Auxiliary training epochs.
     */
    SslDetector(const nn::Matrix &clean_x, double threshold,
                uint64_t seed = 5, int epochs = 20);

    /** Drift verdict for one input (runs the secondary model
     *  kSslTransforms times — the cost the paper objects to). */
    bool isDrift(const std::vector<double> &features) const;

    /** Mean probability assigned to the correct transform. */
    double score(const std::vector<double> &features) const;

    /** Auxiliary task accuracy on a clean hold-out (diagnostic). */
    double auxiliaryAccuracy(const nn::Matrix &clean_x) const;

    std::string name() const;

  private:
    std::unique_ptr<nn::Classifier> aux_;
    double threshold_;
};

} // namespace nazar::detect

#endif // NAZAR_DETECT_SSL_H
