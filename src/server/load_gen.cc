#include "server/load_gen.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/sim_date.h"
#include "net/ingest_client.h"
#include "obs/span.h"

namespace nazar::server {

namespace {

using Clock = std::chrono::steady_clock;

const char *const kModels[] = {"pixel-4", "galaxy-s10", "xperia-5",
                               "mi-9"};
const char *const kLocations[] = {"park",   "street", "indoor",
                                  "harbor", "forest", "rooftop"};
const char *const kWeather[] = {"sunny", "rain", "fog", "snow"};

/** Deterministic synthetic event e for client c — no RNG, so the
 *  stream is identical run to run regardless of chaos draws. */
net::WireIngest
syntheticEvent(const LoadConfig &config, int client, int e)
{
    net::WireIngest m;
    m.device = 1000 + client;
    m.seq = static_cast<uint64_t>(e) + 1;
    m.entry.time = SimDate(e / 288, (e % 288) * 300);
    m.entry.deviceId = "load-device-" + std::to_string(client);
    m.entry.deviceModel = kModels[(client + e / 97) % 4];
    m.entry.location = kLocations[(e / 13) % 6];
    m.entry.weather = kWeather[(e / 29) % 4];
    m.entry.modelVersion = 1;
    m.entry.drift = (e % 7) == 0;
    if (config.uploadEvery > 0 && e % config.uploadEvery == 0) {
        persist::UploadRecord up;
        up.features.reserve(config.featureDim);
        for (int f = 0; f < config.featureDim; ++f)
            up.features.push_back(0.01 * ((client * 31 + e * 7 + f) %
                                          211));
        up.context = rca::AttributeSet(
            {{"location", driftlog::Value(m.entry.location)},
             {"weather", driftlog::Value(m.entry.weather)}});
        up.driftFlag = m.entry.drift;
        m.upload = std::move(up);
    }
    return m;
}

struct ClientOutcome
{
    net::ClientStats stats;
    std::vector<double> latenciesMs;
    uint64_t dictStrings = 0;
    uint64_t dictHits = 0;
    bool reconciled = false;
    std::string error;
};

void
driveClient(const LoadConfig &config, int index, ClientOutcome &out)
{
    obs::setThreadName("load.client." + std::to_string(index));
    try {
        net::FaultConfig chaos = config.chaos;
        chaos.seed = config.chaos.seed + static_cast<uint64_t>(index);
        net::IngestClient client(config.port, chaos,
                                 "load-" + std::to_string(index),
                                 config.reconnect);
        std::unordered_map<uint64_t, Clock::time_point> inFlight;
        client.setAckObserver([&](const net::WireAck &ack) {
            auto it = inFlight.find(ack.seq);
            if (it == inFlight.end())
                return; // the chaos duplicate's second ack
            out.latenciesMs.push_back(
                std::chrono::duration<double, std::milli>(
                    Clock::now() - it->second)
                    .count());
            inFlight.erase(it);
        });
        for (int e = 0; e < config.eventsPerClient; ++e) {
            net::WireIngest m = syntheticEvent(config, index, e);
            uint64_t seq = m.seq;
            auto t0 = Clock::now();
            if (client.sendIngest(m))
                inFlight.emplace(seq, t0);
        }
        net::WireByeAck bye = client.bye();
        (void)bye;
        out.stats = client.stats();
        out.dictStrings = client.dictStrings();
        out.dictHits = client.dictHits();
        out.reconciled =
            out.stats.acksAccepted == out.stats.sent &&
            out.stats.acksRejected == out.stats.duplicates;
    } catch (const NazarError &e) {
        out.error = e.what();
        out.reconciled = false;
    }
}

} // namespace

LoadStats
runLoad(const LoadConfig &config)
{
    NAZAR_CHECK(config.clients >= 1, "load gen: need >= 1 client");
    std::vector<ClientOutcome> outcomes(config.clients);
    auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    for (int c = 0; c < config.clients; ++c)
        threads.emplace_back(
            [&config, &outcomes, c] { driveClient(config, c, outcomes[c]); });
    for (auto &t : threads)
        t.join();
    auto t1 = Clock::now();

    LoadStats total;
    std::vector<double> latencies;
    total.reconciled = true;
    for (const auto &out : outcomes) {
        if (!out.error.empty())
            throw NazarError("load gen client failed: " + out.error);
        total.sent += out.stats.sent;
        total.gaveUp += out.stats.gaveUp;
        total.retries += out.stats.retries;
        total.duplicates += out.stats.duplicates;
        total.acksAccepted += out.stats.acksAccepted;
        total.acksRejected += out.stats.acksRejected;
        total.dictStrings += out.dictStrings;
        total.dictHits += out.dictHits;
        total.reconnects += out.stats.reconnects;
        total.resent += out.stats.resent;
        total.resumedLanded += out.stats.resumedLanded;
        total.busySeen += out.stats.busySeen;
        total.reconciled = total.reconciled && out.reconciled;
        latencies.insert(latencies.end(), out.latenciesMs.begin(),
                         out.latenciesMs.end());
    }
    total.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (total.seconds > 0.0)
        total.eventsPerSec =
            static_cast<double>(total.acksAccepted) / total.seconds;
    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        auto pct = [&](double p) {
            size_t i = static_cast<size_t>(p * (latencies.size() - 1));
            return latencies[i];
        };
        total.p50Ms = pct(0.50);
        total.p99Ms = pct(0.99);
    }
    // Per-stage breakdown from the obs histograms the server's reader
    // and committer recorded into. Empty when the server is in another
    // process (its histograms are not in our registry).
    obs::Snapshot snap = obs::Registry::global().snapshot();
    for (const std::string &name : ingestStageNames()) {
        auto it = snap.histograms.find(name);
        if (it == snap.histograms.end() || it->second.count == 0)
            continue;
        StageStat stage;
        stage.name = name;
        stage.count = it->second.count;
        stage.p50Ms = it->second.quantile(0.50) * 1e3;
        stage.p99Ms = it->second.quantile(0.99) * 1e3;
        stage.meanMs = it->second.mean() * 1e3;
        total.stages.push_back(std::move(stage));
    }
    return total;
}

const std::vector<std::string> &
ingestStageNames()
{
    static const std::vector<std::string> names = {
        "server.read.decode", "server.queue_wait", "server.encode",
        "persist.wal.sync",   "server.ack",
    };
    return names;
}

} // namespace nazar::server
