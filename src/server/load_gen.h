/**
 * @file
 * Multi-client load generator for the ingest server: N threads each
 * drive one IngestClient with a deterministic synthetic event stream
 * (unique device ids, monotone sequence numbers, repeating string
 * pools so the dictionary has something to intern), optionally
 * through the socket chaos layer, then reconcile counters via
 * kBye/kByeAck.
 *
 * Reconciliation invariant (unique (device, seq) pairs): every
 * message put on the wire is accepted exactly once and every chaos
 * duplicate is dedup-rejected, i.e. per client
 *
 *     acksAccepted == sent   and   acksRejected == duplicates.
 */
#ifndef NAZAR_SERVER_LOAD_GEN_H
#define NAZAR_SERVER_LOAD_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "net/fault.h"

namespace nazar::server {

struct LoadConfig
{
    uint16_t port = 0;
    int clients = 4;
    int eventsPerClient = 1000;
    /** Every Nth event carries a sampled-input upload. */
    int uploadEvery = 4;
    int featureDim = 8;
    /**
     * Socket chaos (dropProb / dupProb only — TCP is reliable, so the
     * other fault knobs have no wire analogue). Each client derives
     * its own seed from `chaos.seed + clientIndex`.
     */
    net::FaultConfig chaos;
    /**
     * Session-layer recovery: with `enabled`, each client rides
     * through server crash–restarts (reconnect, resume, retransmit)
     * and the reconciliation invariant must still hold at the end.
     */
    net::ReconnectPolicy reconnect;
};

/**
 * One server-side ingest stage's latency summary, read back from the
 * obs histograms the committer/reader record into (quantiles are
 * bucket-interpolated). Only populated when the server runs in the
 * same process as the load generator — a remote server's histograms
 * live in its process and appear in its own metrics snapshot instead.
 */
struct StageStat
{
    std::string name; ///< e.g. "server.queue_wait".
    uint64_t count = 0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
};

struct LoadStats
{
    uint64_t sent = 0;
    uint64_t gaveUp = 0;
    uint64_t retries = 0;
    uint64_t duplicates = 0;
    uint64_t acksAccepted = 0;
    uint64_t acksRejected = 0;
    uint64_t dictStrings = 0; ///< Summed over clients.
    uint64_t dictHits = 0;    ///< Interned (bytes-saving) occurrences.
    uint64_t reconnects = 0;  ///< Session-layer reconnect handshakes.
    uint64_t resent = 0;      ///< Frames retransmitted after resume.
    uint64_t resumedLanded = 0; ///< Credited landed via resume seqs.
    uint64_t busySeen = 0;      ///< kBusy advisories received.
    double seconds = 0.0;     ///< Wall clock, connect through bye.
    double eventsPerSec = 0.0;
    double p50Ms = 0.0; ///< Ack round-trip latency percentiles.
    double p99Ms = 0.0;
    /** Per-client invariant held for every client. */
    bool reconciled = false;
    /** Server-side per-stage latency breakdown (see StageStat). */
    std::vector<StageStat> stages;
};

/**
 * The ingest stage names runLoad() reports, in pipeline order
 * (matches the spans IngestServer records per item).
 */
const std::vector<std::string> &ingestStageNames();

/** Run the load; throws NazarError if the server misbehaves. */
LoadStats runLoad(const LoadConfig &config);

} // namespace nazar::server

#endif // NAZAR_SERVER_LOAD_GEN_H
