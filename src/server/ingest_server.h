/**
 * @file
 * The networked ingest front-end for sim::Cloud: a TCP server
 * speaking the wire protocol (net/wire.h) with server-side group
 * commit.
 *
 * Thread structure:
 *
 *   accept thread   one; hands each connection a reader thread.
 *   reader threads  one per connection. Owns the receive side: does
 *                   the kHello/kHelloAck handshake, decodes frames
 *                   with the connection's StringDict (reader-only
 *                   state), and enqueues WorkItems. Never touches the
 *                   Cloud.
 *   committer       one. Sole consumer of the queue and SOLE writer
 *                   into the Cloud — this is the single-writer
 *                   contract Cloud::ingestBatchFrom requires for its
 *                   out-of-lock WAL appends. Greedily batches
 *                   consecutive kIngest items (across connections) up
 *                   to maxBatch and group-commits them with one WAL
 *                   sync, then writes each item's kAck. Because the
 *                   queue is FIFO and the committer is alone, every
 *                   reply on one connection is sent in that
 *                   connection's request order (acks always precede
 *                   the kCycleDone that follows them).
 *
 * The committer writes every non-handshake reply frame; the reader
 * writes only kHelloAck (before it enqueues anything) and the kBusy
 * backpressure advisory. A per-connection write mutex keeps those two
 * writers' frames from interleaving on the socket.
 *
 * Protocol errors (corrupt frame, unknown type, version mismatch)
 * close that connection and count in stats().protocolErrors; they
 * never take the server down.
 *
 * Crash–restart: crash injection on the fronted cloud may be armed.
 * When a committer-side persist::CrashInjected fires, the server
 * treats it as its process death: the listener stops, every
 * connection is severed, and crashed()/crashSite() report the site.
 * A harness then rebuilds the Cloud from the same state dir (WAL
 * replay + snapshot re-arms the dedup windows) and starts a fresh
 * IngestServer over it; reconnecting clients handshake with
 * `wantResume` and receive the recovered per-device high-water seqs
 * (from a live Cloud::dedupSnapshot()) in kHelloAck, so retransmits
 * land exactly once. The single-writer contract holds across the
 * restart: the old committer died before the new Cloud was built, so
 * at every moment at most one committer writes the state dir.
 *
 * Disk faults: a persist::DiskFault firing in the committer means the
 * disk under the WAL failed and the durability layer's fsync gate is
 * latched — every further commit would throw the same fault. Unlike a
 * crash, the process stays up, in a DEGRADED mode: the committer
 * keeps draining the queue but never acks, sending one kBusy advisory
 * per connection instead, and counts the episode in
 * stats().diskFaults / `server.disk_faults`. Clients treat the
 * unacked ingests as lost and retransmit after the harness clears the
 * fault and restarts the server over the same state directory;
 * diskFaulted()/waitDiskFaulted() are the harness's signal.
 *
 * Backpressure: with ServerConfig::maxQueue set, a reader whose
 * enqueue would exceed the bound sends one kBusy advisory and then
 * blocks until the committer frees space — it stops draining its
 * socket, so TCP flow control pushes back to the senders. The queue
 * depth is exported as the `server.queue_depth` gauge.
 *
 * Latency attribution: every kIngest's path through the server is
 * decomposed into stage spans — `server.read.decode` (reader),
 * `server.queue_wait` (enqueue → committer dequeue), `server.encode`
 * (wire → sim message conversion), `persist.wal.sync` (the group
 * commit incl. the WAL sync), `server.ack` (reply write) — recorded
 * per item into obs histograms, parented to the trace context the
 * frame carried (net/wire.h kExtTraceContext) when present. Batch
 * stages (encode, commit) are observed once per item at the batch's
 * interval: every item in a group commit waits for the whole batch,
 * so per-item stage sums approximate that item's end-to-end latency.
 */
#ifndef NAZAR_SERVER_INGEST_SERVER_H
#define NAZAR_SERVER_INGEST_SERVER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.h"
#include "net/wire.h"
#include "persist/crash_point.h"
#include "persist/env.h"
#include "sim/cloud.h"

namespace nazar::server {

struct ServerConfig
{
    /** Listen port; 0 binds an ephemeral port (see port()). */
    uint16_t port = 0;
    /**
     * Batch consecutive kIngest items into Cloud::ingestBatchFrom
     * (one WAL sync per batch). Off = one ingestFrom + sync per
     * record, the configuration group commit is benchmarked against.
     */
    bool groupCommit = true;
    /** Largest group-commit batch the committer will assemble. */
    size_t maxBatch = 256;
    /**
     * Committer queue bound (0 = unbounded, the historical
     * behaviour). When full, readers advise kBusy once and stop
     * draining their sockets until space frees up.
     */
    size_t maxQueue = 0;
    /**
     * Per-connection receive deadline in ms (0 = none). A connection
     * that stays silent past the deadline is reaped (its reader
     * exits), so a wedged peer cannot pin a reader thread forever.
     */
    int readTimeoutMs = 0;
    /**
     * Test hook: sleep this long before each committer batch, making
     * the committer deliberately slow so backpressure tests can fill
     * the queue (0 = off).
     */
    int commitDelayUs = 0;
};

struct ServerStats
{
    uint64_t connections = 0;
    uint64_t ingestMessages = 0;
    uint64_t batches = 0;       ///< Committer batches (size >= 1).
    uint64_t acksSent = 0;
    uint64_t cycles = 0;
    uint64_t flushes = 0;
    uint64_t protocolErrors = 0;
    uint64_t busySent = 0;     ///< kBusy advisories written.
    uint64_t readTimeouts = 0; ///< Connections reaped by the deadline.
    uint64_t diskFaults = 0;   ///< Committer-side latched disk faults.
};

/**
 * TCP ingest server over one Cloud. start() spawns the threads;
 * stop() (or the destructor) shuts them down and closes every socket.
 */
class IngestServer
{
  public:
    /**
     * @param cloud The cloud this server fronts. Must outlive the
     *              server; the committer thread is its only writer
     *              while the server runs. Crash injection may be
     *              armed: a CrashInjected firing in the committer
     *              plays the part of the server process dying — see
     *              crashed()/waitCrashed() and the crash–restart
     *              notes above.
     */
    explicit IngestServer(sim::Cloud &cloud, ServerConfig config = {});
    ~IngestServer();

    IngestServer(const IngestServer &) = delete;
    IngestServer &operator=(const IngestServer &) = delete;

    /** Bind, listen and spawn the threads. Throws on bind failure. */
    void start();

    /** Stop accepting, wake every thread, join them, close sockets.
     *  Idempotent. Queued work is completed before shutdown. */
    void stop();

    /** The bound port (valid after start()). */
    uint16_t port() const { return listener_.port(); }

    bool running() const { return running_; }

    /** True once a committer-side CrashInjected killed the server. */
    bool crashed() const;

    /** Block up to @p timeout for a committer crash; true if it came. */
    bool waitCrashed(std::chrono::milliseconds timeout);

    /** The crash site that fired (empty when !crashed()). */
    std::string crashSite() const;

    /** True once a committer-side DiskFault latched degraded mode. */
    bool diskFaulted() const;

    /** Block up to @p timeout for a disk fault; true if one latched. */
    bool waitDiskFaulted(std::chrono::milliseconds timeout);

    /** The latched fault's Env site (empty when !diskFaulted()). */
    std::string diskFaultSite() const;

    ServerStats stats() const;

  private:
    /** One accepted connection, shared between its reader thread and
     *  WorkItems in flight (kept alive until the last reply is sent). */
    struct Conn
    {
        net::TcpStream stream;
        /** Decode-side interning table; reader thread only. */
        net::StringDict dict;
        uint64_t id = 0;
        std::thread reader;
        /** Serializes socket writes: committer replies vs the
         *  reader's kHelloAck/kBusy frames. */
        std::mutex writeMutex;
        /** kBusy already sent for the current full-queue episode;
         *  reader thread only. */
        bool busyAdvised = false;
        /** kBusy already sent for the degraded (disk-faulted) mode;
         *  committer thread only. */
        bool diskBusyAdvised = false;
    };

    struct WorkItem
    {
        enum class Kind : uint8_t { kIngest, kCycle, kFlush, kBye };
        Kind kind = Kind::kIngest;
        std::shared_ptr<Conn> conn;
        net::WireIngest ingest;     ///< kIngest only.
        std::string cleanPatchText; ///< kCycle only.
        /** When the reader enqueued it; the committer's dequeue time
         *  minus this is the item's `server.queue_wait` stage. */
        std::chrono::steady_clock::time_point enqueueTime;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    void committerLoop();

    /** Group-commit (or per-record) one batch and ack every item. */
    void commitBatch(std::vector<WorkItem> &batch);
    void handleCycle(const WorkItem &item);
    void handleFlush(const WorkItem &item);
    void handleBye(const WorkItem &item);

    /**
     * Bounded when maxQueue > 0: blocks until space or shutdown.
     * False means the server is shutting down (or crashed) and the
     * item was dropped — the reader should exit.
     */
    bool enqueue(WorkItem item);

    /** The committer's CrashInjected path: record the site, stop the
     *  listener, sever every connection, wake all waiters. */
    void onCommitterCrash(const persist::CrashInjected &e);

    /** The committer's DiskFault path: latch degraded mode (the
     *  process stays up, commits stop, acks stop). */
    void onDiskFault(const persist::DiskFault &e);

    /** Degraded-mode reply for an item: one kBusy per connection. */
    void adviseDiskBusy(const std::shared_ptr<Conn> &conn);

    sim::Cloud &cloud_;
    ServerConfig config_;
    net::TcpListener listener_;
    std::thread acceptThread_;
    std::thread committerThread_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    /** Signals queue space to readers blocked by maxQueue. */
    std::condition_variable queueSpaceCv_;
    std::deque<WorkItem> queue_;
    bool stopping_ = false;
    /** Set on stop() and on a committer crash: enqueue refuses new
     *  work and blocked readers bail out. Guarded by queueMutex_. */
    bool shuttingDown_ = false;

    mutable std::mutex crashMutex_;
    std::condition_variable crashCv_;
    bool crashed_ = false;
    std::string crashSite_;
    /** Degraded mode: a DiskFault latched (guarded by crashMutex_). */
    bool diskFaulted_ = false;
    std::string diskFaultSite_;

    mutable std::mutex connMutex_;
    std::vector<std::shared_ptr<Conn>> conns_;
    uint64_t nextConnId_ = 1;

    mutable std::mutex statsMutex_;
    ServerStats stats_;
    bool running_ = false;
};

} // namespace nazar::server

#endif // NAZAR_SERVER_INGEST_SERVER_H
