#include "server/ingest_server.h"

#include <sys/socket.h>

#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::server {

using net::Frame;
using net::MsgType;

namespace {

/** The trace context a kIngest frame carried (invalid when the
 *  client was untraced — stage spans then become standalone roots,
 *  recorded into the histograms either way). */
obs::TraceContext
ingestContext(const net::WireIngest &m)
{
    return {m.traceId, m.spanId};
}

} // namespace

IngestServer::IngestServer(sim::Cloud &cloud, ServerConfig config)
    : cloud_(cloud), config_(config)
{
    NAZAR_CHECK(config_.maxBatch >= 1,
                "ingest server: maxBatch must be >= 1");
}

IngestServer::~IngestServer() { stop(); }

void
IngestServer::start()
{
    NAZAR_CHECK(!running_, "ingest server: already started");
    listener_.listen(config_.port);
    running_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    committerThread_ = std::thread([this] { committerLoop(); });
    obs::Registry::global().counter("server.starts").add(1);
}

void
IngestServer::stop()
{
    if (!running_)
        return;
    // Order matters: stop accepting first (no new readers), then wake
    // and join the readers (no new work items), then let the
    // committer drain what is queued, then release the sockets.
    listener_.stop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::lock_guard<std::mutex> lk(connMutex_);
        for (auto &conn : conns_) {
            if (conn->stream.valid())
                ::shutdown(conn->stream.fd(), SHUT_RDWR);
        }
    }
    // A reader blocked in a bounded enqueue is not watching its
    // socket; wake it so the join below cannot deadlock with a dead
    // committer (post-crash stop) or a full queue.
    {
        std::lock_guard<std::mutex> lk(queueMutex_);
        shuttingDown_ = true;
    }
    queueSpaceCv_.notify_all();
    {
        std::lock_guard<std::mutex> lk(connMutex_);
        for (auto &conn : conns_) {
            if (conn->reader.joinable())
                conn->reader.join();
        }
    }
    {
        std::lock_guard<std::mutex> lk(queueMutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    if (committerThread_.joinable())
        committerThread_.join();
    {
        std::lock_guard<std::mutex> lk(connMutex_);
        conns_.clear(); // closes the fds
    }
    running_ = false;
}

ServerStats
IngestServer::stats() const
{
    std::lock_guard<std::mutex> lk(statsMutex_);
    return stats_;
}

bool
IngestServer::crashed() const
{
    std::lock_guard<std::mutex> lk(crashMutex_);
    return crashed_;
}

bool
IngestServer::waitCrashed(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lk(crashMutex_);
    return crashCv_.wait_for(lk, timeout,
                             [this] { return crashed_; });
}

std::string
IngestServer::crashSite() const
{
    std::lock_guard<std::mutex> lk(crashMutex_);
    return crashSite_;
}

bool
IngestServer::diskFaulted() const
{
    std::lock_guard<std::mutex> lk(crashMutex_);
    return diskFaulted_;
}

bool
IngestServer::waitDiskFaulted(std::chrono::milliseconds timeout)
{
    std::unique_lock<std::mutex> lk(crashMutex_);
    return crashCv_.wait_for(lk, timeout,
                             [this] { return diskFaulted_; });
}

std::string
IngestServer::diskFaultSite() const
{
    std::lock_guard<std::mutex> lk(crashMutex_);
    return diskFaultSite_;
}

void
IngestServer::onDiskFault(const persist::DiskFault &e)
{
    // The disk under the WAL failed. The durability layer's fsync
    // gate is latched, so every further commit would throw the same
    // fault — but unlike a crash the process is healthy: latch the
    // degraded mode and keep serving. The item being committed was
    // never acked, so its sender retransmits it to the restarted
    // incarnation (the harness clears the fault by rebuilding the
    // cloud from the state directory).
    {
        std::lock_guard<std::mutex> lk(crashMutex_);
        if (!diskFaulted_) {
            diskFaulted_ = true;
            diskFaultSite_ = e.site();
        }
    }
    crashCv_.notify_all();
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        ++stats_.diskFaults;
    }
    obs::Registry::global().counter("server.disk_faults").add(1);
}

void
IngestServer::adviseDiskBusy(const std::shared_ptr<Conn> &conn)
{
    if (conn->diskBusyAdvised)
        return;
    conn->diskBusyAdvised = true;
    net::WireBusy busy;
    busy.queueDepth = 0;
    {
        std::lock_guard<std::mutex> wl(conn->writeMutex);
        conn->stream.sendFrame(MsgType::kBusy, net::encodeBusy(busy));
    }
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        ++stats_.busySent;
    }
    obs::Registry::global().counter("server.busy_sent").add(1);
}

void
IngestServer::onCommitterCrash(const persist::CrashInjected &e)
{
    // The committer thread is dying: make the whole server look dead
    // to the outside, the way a SIGKILL would. No reply for the item
    // that crashed, no more accepts, every connection severed so
    // clients see a reset and enter their reconnect path.
    {
        std::lock_guard<std::mutex> lk(crashMutex_);
        crashed_ = true;
        crashSite_ = e.site();
    }
    crashCv_.notify_all();
    {
        std::lock_guard<std::mutex> lk(queueMutex_);
        shuttingDown_ = true;
    }
    queueSpaceCv_.notify_all();
    listener_.stop();
    {
        std::lock_guard<std::mutex> lk(connMutex_);
        for (auto &conn : conns_) {
            if (conn->stream.valid())
                ::shutdown(conn->stream.fd(), SHUT_RDWR);
        }
    }
    obs::Registry::global().counter("server.crashes").add(1);
}

void
IngestServer::acceptLoop()
{
    for (;;) {
        net::TcpStream stream = listener_.accept();
        if (!stream.valid())
            return; // listener stopped
        auto conn = std::make_shared<Conn>();
        conn->stream = std::move(stream);
        {
            std::lock_guard<std::mutex> lk(connMutex_);
            conn->id = nextConnId_++;
            conns_.push_back(conn);
        }
        {
            std::lock_guard<std::mutex> lk(statsMutex_);
            ++stats_.connections;
        }
        obs::Registry::global().counter("server.connections").add(1);
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
    }
}

void
IngestServer::readerLoop(std::shared_ptr<Conn> conn)
{
    obs::setThreadName("server.reader." + std::to_string(conn->id));
    if (config_.readTimeoutMs > 0)
        conn->stream.setRecvTimeout(config_.readTimeoutMs);
    try {
        // Handshake. The reader writes kHelloAck itself before
        // enqueuing anything; after that the committer writes the
        // replies and the reader only ever adds kBusy advisories
        // (both under the connection's write mutex).
        auto first = conn->stream.recvFrame();
        if (!first.has_value())
            return; // connected and left
        NAZAR_CHECK(first->type == MsgType::kHello,
                    "server: expected kHello, got type " +
                        std::to_string(static_cast<int>(first->type)));
        net::WireHello hello = net::decodeHello(first->payload);
        NAZAR_CHECK(hello.protoVersion == net::kProtocolVersion,
                    "server: protocol version mismatch (client " +
                        std::to_string(hello.protoVersion) + ")");
        net::WireHelloAck ack;
        if (cloud_.recoveredCleanPatch().has_value()) {
            std::ostringstream out;
            cloud_.recoveredCleanPatch()->save(out);
            ack.cleanPatchText = out.str();
            ack.cleanPatchTime = cloud_.recoveredCleanPatchTime();
        }
        if (hello.wantResume) {
            // A reconnecting client reconciles against the dedup
            // windows as they stand right now — recovered state plus
            // anything committed since — so retransmits of ingests
            // that landed are dedup-rejected, never double-applied.
            for (const auto &[device, window] : cloud_.dedupSnapshot())
                ack.resumeHighWater.emplace_back(device,
                                                 window.highWater());
        }
        {
            std::lock_guard<std::mutex> wl(conn->writeMutex);
            conn->stream.sendFrame(MsgType::kHelloAck,
                                   net::encodeHelloAck(ack));
        }

        for (;;) {
            auto frame = conn->stream.recvFrame();
            if (!frame.has_value())
                return; // orderly EOF
            WorkItem item;
            item.conn = conn;
            switch (frame->type) {
              case MsgType::kIngest: {
                item.kind = WorkItem::Kind::kIngest;
                static obs::SpanSite decodeSite("server.read.decode");
                auto t0 = std::chrono::steady_clock::now();
                item.ingest =
                    net::decodeIngest(frame->payload, conn->dict);
                obs::recordSpan(decodeSite, t0,
                                std::chrono::steady_clock::now(),
                                ingestContext(item.ingest));
                break;
              }
              case MsgType::kCycleRequest:
                item.kind = WorkItem::Kind::kCycle;
                item.cleanPatchText = std::move(frame->payload);
                break;
              case MsgType::kFlushRequest:
                item.kind = WorkItem::Kind::kFlush;
                break;
              case MsgType::kBye:
                item.kind = WorkItem::Kind::kBye;
                break;
              default:
                throw NazarError(
                    "server: unexpected message type " +
                    std::to_string(static_cast<int>(frame->type)));
            }
            item.enqueueTime = std::chrono::steady_clock::now();
            if (!enqueue(std::move(item)))
                return; // shutting down (or crashed)
        }
    } catch (const net::TcpTimeout &) {
        // Silent peer past the receive deadline: reap the connection.
        {
            std::lock_guard<std::mutex> lk(statsMutex_);
            ++stats_.readTimeouts;
        }
        obs::Registry::global().counter("server.read_timeouts").add(1);
        if (conn->stream.valid())
            ::shutdown(conn->stream.fd(), SHUT_RDWR);
    } catch (const NazarError &) {
        // Corrupt frame or protocol violation: this connection is
        // done, the server is not. Shut the socket both ways so the
        // peer notices; the committer's writes to it fail gracefully.
        // During shutdown/crash the server severed the socket itself —
        // the resulting recv error is not the peer's fault.
        bool expected;
        {
            std::lock_guard<std::mutex> lk(queueMutex_);
            expected = shuttingDown_;
        }
        if (!expected) {
            {
                std::lock_guard<std::mutex> lk(statsMutex_);
                ++stats_.protocolErrors;
            }
            obs::Registry::global()
                .counter("server.protocol_errors")
                .add(1);
        }
        if (conn->stream.valid())
            ::shutdown(conn->stream.fd(), SHUT_RDWR);
    }
}

bool
IngestServer::enqueue(WorkItem item)
{
    std::shared_ptr<Conn> conn = item.conn;
    std::unique_lock<std::mutex> lk(queueMutex_);
    if (config_.maxQueue > 0) {
        if (queue_.size() >= config_.maxQueue && !shuttingDown_ &&
            !conn->busyAdvised) {
            // Advise once per full-queue episode, then block — the
            // reader stops draining its socket and TCP flow control
            // pushes back to the senders. The advisory is written
            // outside the queue lock (the committer needs it to make
            // space) but under the connection's write mutex so it
            // cannot interleave with a committer reply frame.
            conn->busyAdvised = true;
            net::WireBusy busy;
            busy.queueDepth = static_cast<uint32_t>(queue_.size());
            lk.unlock();
            {
                std::lock_guard<std::mutex> wl(conn->writeMutex);
                conn->stream.sendFrame(MsgType::kBusy,
                                       net::encodeBusy(busy));
            }
            {
                std::lock_guard<std::mutex> sl(statsMutex_);
                ++stats_.busySent;
            }
            obs::Registry::global().counter("server.busy_sent").add(1);
            lk.lock();
        }
        queueSpaceCv_.wait(lk, [this] {
            return shuttingDown_ || queue_.size() < config_.maxQueue;
        });
        conn->busyAdvised = false;
    }
    if (shuttingDown_)
        return false;
    queue_.push_back(std::move(item));
    obs::Registry::global()
        .gauge("server.queue_depth")
        .set(static_cast<double>(queue_.size()));
    lk.unlock();
    queueCv_.notify_one();
    return true;
}

void
IngestServer::committerLoop()
{
    obs::setThreadName("server.committer");
    for (;;) {
        std::unique_lock<std::mutex> lk(queueMutex_);
        queueCv_.wait(lk,
                      [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return; // drained
            continue;
        }
        try {
            if (queue_.front().kind == WorkItem::Kind::kIngest) {
                // Greedy batch: take the consecutive ingests already
                // queued (across connections), up to maxBatch. Never
                // waits for more — latency under light load stays one
                // record, batches grow only when the queue is deep.
                std::vector<WorkItem> batch;
                while (!queue_.empty() &&
                       queue_.front().kind == WorkItem::Kind::kIngest &&
                       batch.size() < config_.maxBatch) {
                    batch.push_back(std::move(queue_.front()));
                    queue_.pop_front();
                }
                if (config_.maxQueue > 0)
                    obs::Registry::global()
                        .gauge("server.queue_depth")
                        .set(static_cast<double>(queue_.size()));
                lk.unlock();
                queueSpaceCv_.notify_all();
                commitBatch(batch);
            } else {
                WorkItem item = std::move(queue_.front());
                queue_.pop_front();
                if (config_.maxQueue > 0)
                    obs::Registry::global()
                        .gauge("server.queue_depth")
                        .set(static_cast<double>(queue_.size()));
                lk.unlock();
                queueSpaceCv_.notify_all();
                switch (item.kind) {
                  case WorkItem::Kind::kCycle:
                    handleCycle(item);
                    break;
                  case WorkItem::Kind::kFlush:
                    handleFlush(item);
                    break;
                  case WorkItem::Kind::kBye:
                    handleBye(item);
                    break;
                  case WorkItem::Kind::kIngest:
                    break; // unreachable
                }
            }
        } catch (const persist::CrashInjected &e) {
            onCommitterCrash(e);
            return; // the committer "process" is dead
        } catch (const persist::DiskFault &e) {
            onDiskFault(e);
            // Stay alive: the loop keeps draining the queue, but the
            // degraded checks in commitBatch/handleCycle/handleFlush
            // stop all cloud writes and all acks.
        }
    }
}

void
IngestServer::commitBatch(std::vector<WorkItem> &batch)
{
    // Stage sites for the per-item latency decomposition. Batch-level
    // intervals (encode, commit) are observed once per item: every
    // item in a group commit waits for the whole batch, so the batch
    // interval IS that item's stage latency.
    static obs::SpanSite queueWaitSite("server.queue_wait");
    static obs::SpanSite encodeSite("server.encode");
    static obs::SpanSite walSyncSite("persist.wal.sync");
    static obs::SpanSite ackSite("server.ack");

    if (diskFaulted()) {
        // Degraded mode: nothing is durable, so nothing is acked —
        // the senders retransmit after the restart. One advisory per
        // connection tells them to back off meanwhile.
        for (const auto &item : batch)
            adviseDiskBusy(item.conn);
        return;
    }

    if (config_.commitDelayUs > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.commitDelayUs));

    auto tDequeue = std::chrono::steady_clock::now();
    for (const auto &item : batch)
        obs::recordSpan(queueWaitSite, item.enqueueTime, tDequeue,
                        ingestContext(item.ingest));

    std::vector<bool> accepted;
    accepted.reserve(batch.size());
    if (config_.groupCommit) {
        std::vector<sim::IngestMessage> msgs;
        msgs.reserve(batch.size());
        for (auto &item : batch) {
            sim::IngestMessage m;
            m.device = static_cast<int>(item.ingest.device);
            m.seq = item.ingest.seq;
            m.entry = item.ingest.entry;
            if (item.ingest.upload.has_value()) {
                sim::Upload up;
                up.features = std::move(item.ingest.upload->features);
                up.context = std::move(item.ingest.upload->context);
                up.driftFlag = item.ingest.upload->driftFlag;
                m.upload = std::move(up);
            }
            msgs.push_back(std::move(m));
        }
        auto tEncoded = std::chrono::steady_clock::now();
        accepted = cloud_.ingestBatchFrom(std::move(msgs));
        auto tCommitted = std::chrono::steady_clock::now();
        for (const auto &item : batch) {
            obs::TraceContext ctx = ingestContext(item.ingest);
            obs::recordSpan(encodeSite, tDequeue, tEncoded, ctx);
            obs::recordSpan(walSyncSite, tEncoded, tCommitted, ctx);
        }
    } else {
        // Per-record mode interleaves conversion and commit, so the
        // whole loop is attributed to the commit stage (no separate
        // encode stage in this configuration).
        for (auto &item : batch) {
            std::optional<sim::Upload> up;
            if (item.ingest.upload.has_value()) {
                sim::Upload u;
                u.features = std::move(item.ingest.upload->features);
                u.context = std::move(item.ingest.upload->context);
                u.driftFlag = item.ingest.upload->driftFlag;
                up = std::move(u);
            }
            auto t0 = std::chrono::steady_clock::now();
            accepted.push_back(cloud_.ingestFrom(
                static_cast<int>(item.ingest.device), item.ingest.seq,
                item.ingest.entry, std::move(up)));
            obs::recordSpan(walSyncSite, t0,
                            std::chrono::steady_clock::now(),
                            ingestContext(item.ingest));
        }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
        net::WireAck ack;
        ack.device = batch[i].ingest.device;
        ack.seq = batch[i].ingest.seq;
        ack.accepted = accepted[i];
        auto t0 = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> wl(batch[i].conn->writeMutex);
            // A false return means the peer vanished; its loss.
            batch[i].conn->stream.sendFrame(MsgType::kAck,
                                            net::encodeAck(ack));
        }
        obs::recordSpan(ackSite, t0, std::chrono::steady_clock::now(),
                        ingestContext(batch[i].ingest));
    }
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        stats_.ingestMessages += batch.size();
        stats_.acksSent += batch.size();
        ++stats_.batches;
    }
    auto &reg = obs::Registry::global();
    reg.counter("server.ingest").add(batch.size());
    reg.counter("server.acks").add(batch.size());
    reg.counter("server.batches").add(1);
}

void
IngestServer::handleCycle(const WorkItem &item)
{
    if (diskFaulted()) {
        adviseDiskBusy(item.conn);
        return;
    }
    std::istringstream in(item.cleanPatchText);
    nn::BnPatch clean = nn::BnPatch::load(in);
    sim::CycleResult cycle = cloud_.runCycle(clean);
    net::WireCycleDone done;
    done.versionCount = static_cast<uint32_t>(cycle.newVersions.size());
    done.rootCauses =
        static_cast<uint32_t>(cycle.analysis.rootCauses.size());
    done.skippedCauses = static_cast<uint32_t>(cycle.skippedCauses);
    done.adaptedSampleCount = cycle.adaptedSampleCount;
    if (cycle.newCleanPatch.has_value()) {
        std::ostringstream out;
        cycle.newCleanPatch->save(out);
        done.cleanPatchText = out.str();
    }
    {
        std::lock_guard<std::mutex> wl(item.conn->writeMutex);
        item.conn->stream.sendFrame(MsgType::kCycleDone,
                                    net::encodeCycleDone(done));
        for (const auto &version : cycle.newVersions) {
            std::ostringstream out;
            version.save(out);
            item.conn->stream.sendFrame(MsgType::kVersionPush,
                                        out.str());
        }
    }
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        ++stats_.cycles;
    }
    obs::Registry::global().counter("server.cycles").add(1);
}

void
IngestServer::handleFlush(const WorkItem &item)
{
    if (diskFaulted()) {
        adviseDiskBusy(item.conn);
        return;
    }
    cloud_.flush();
    {
        std::lock_guard<std::mutex> wl(item.conn->writeMutex);
        item.conn->stream.sendFrame(MsgType::kFlushDone, std::string());
    }
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        ++stats_.flushes;
    }
    obs::Registry::global().counter("server.flushes").add(1);
}

void
IngestServer::handleBye(const WorkItem &item)
{
    net::WireByeAck ack;
    ack.totalIngested = cloud_.totalIngested();
    ack.dedupHits = cloud_.dedupHits();
    {
        std::lock_guard<std::mutex> wl(item.conn->writeMutex);
        item.conn->stream.sendFrame(MsgType::kByeAck,
                                    net::encodeByeAck(ack));
        // EOF for the client's final recv; its reader thread on our
        // side exits when the client closes its half.
        item.conn->stream.shutdownWrite();
    }
}

} // namespace nazar::server
