#include "server/ingest_server.h"

#include <sys/socket.h>

#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace nazar::server {

using net::Frame;
using net::MsgType;

namespace {

/** The trace context a kIngest frame carried (invalid when the
 *  client was untraced — stage spans then become standalone roots,
 *  recorded into the histograms either way). */
obs::TraceContext
ingestContext(const net::WireIngest &m)
{
    return {m.traceId, m.spanId};
}

} // namespace

IngestServer::IngestServer(sim::Cloud &cloud, ServerConfig config)
    : cloud_(cloud), config_(config)
{
    NAZAR_CHECK(config_.maxBatch >= 1,
                "ingest server: maxBatch must be >= 1");
    // A CrashInjected escaping the committer thread could not be
    // replayed deterministically from here; crash sweeps run against
    // the in-process cloud.
    NAZAR_CHECK(cloud_.config().persist.crashAtHit == 0,
                "ingest server: cloud crash injection must be disarmed");
}

IngestServer::~IngestServer() { stop(); }

void
IngestServer::start()
{
    NAZAR_CHECK(!running_, "ingest server: already started");
    listener_.listen(config_.port);
    running_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    committerThread_ = std::thread([this] { committerLoop(); });
    obs::Registry::global().counter("server.starts").add(1);
}

void
IngestServer::stop()
{
    if (!running_)
        return;
    // Order matters: stop accepting first (no new readers), then wake
    // and join the readers (no new work items), then let the
    // committer drain what is queued, then release the sockets.
    listener_.stop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::lock_guard<std::mutex> lk(connMutex_);
        for (auto &conn : conns_) {
            if (conn->stream.valid())
                ::shutdown(conn->stream.fd(), SHUT_RDWR);
        }
    }
    {
        std::lock_guard<std::mutex> lk(connMutex_);
        for (auto &conn : conns_) {
            if (conn->reader.joinable())
                conn->reader.join();
        }
    }
    {
        std::lock_guard<std::mutex> lk(queueMutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    if (committerThread_.joinable())
        committerThread_.join();
    {
        std::lock_guard<std::mutex> lk(connMutex_);
        conns_.clear(); // closes the fds
    }
    running_ = false;
}

ServerStats
IngestServer::stats() const
{
    std::lock_guard<std::mutex> lk(statsMutex_);
    return stats_;
}

void
IngestServer::acceptLoop()
{
    for (;;) {
        net::TcpStream stream = listener_.accept();
        if (!stream.valid())
            return; // listener stopped
        auto conn = std::make_shared<Conn>();
        conn->stream = std::move(stream);
        {
            std::lock_guard<std::mutex> lk(connMutex_);
            conn->id = nextConnId_++;
            conns_.push_back(conn);
        }
        {
            std::lock_guard<std::mutex> lk(statsMutex_);
            ++stats_.connections;
        }
        obs::Registry::global().counter("server.connections").add(1);
        conn->reader = std::thread([this, conn] { readerLoop(conn); });
    }
}

void
IngestServer::readerLoop(std::shared_ptr<Conn> conn)
{
    obs::setThreadName("server.reader." + std::to_string(conn->id));
    try {
        // Handshake. The reader writes kHelloAck itself — the only
        // frame it ever writes — before enqueuing anything, so the
        // committer is the sole writer from then on.
        auto first = conn->stream.recvFrame();
        if (!first.has_value())
            return; // connected and left
        NAZAR_CHECK(first->type == MsgType::kHello,
                    "server: expected kHello, got type " +
                        std::to_string(static_cast<int>(first->type)));
        net::WireHello hello = net::decodeHello(first->payload);
        NAZAR_CHECK(hello.protoVersion == net::kProtocolVersion,
                    "server: protocol version mismatch (client " +
                        std::to_string(hello.protoVersion) + ")");
        net::WireHelloAck ack;
        if (cloud_.recoveredCleanPatch().has_value()) {
            std::ostringstream out;
            cloud_.recoveredCleanPatch()->save(out);
            ack.cleanPatchText = out.str();
            ack.cleanPatchTime = cloud_.recoveredCleanPatchTime();
        }
        conn->stream.sendFrame(MsgType::kHelloAck,
                               net::encodeHelloAck(ack));

        for (;;) {
            auto frame = conn->stream.recvFrame();
            if (!frame.has_value())
                return; // orderly EOF
            WorkItem item;
            item.conn = conn;
            switch (frame->type) {
              case MsgType::kIngest: {
                item.kind = WorkItem::Kind::kIngest;
                static obs::SpanSite decodeSite("server.read.decode");
                auto t0 = std::chrono::steady_clock::now();
                item.ingest =
                    net::decodeIngest(frame->payload, conn->dict);
                obs::recordSpan(decodeSite, t0,
                                std::chrono::steady_clock::now(),
                                ingestContext(item.ingest));
                break;
              }
              case MsgType::kCycleRequest:
                item.kind = WorkItem::Kind::kCycle;
                item.cleanPatchText = std::move(frame->payload);
                break;
              case MsgType::kFlushRequest:
                item.kind = WorkItem::Kind::kFlush;
                break;
              case MsgType::kBye:
                item.kind = WorkItem::Kind::kBye;
                break;
              default:
                throw NazarError(
                    "server: unexpected message type " +
                    std::to_string(static_cast<int>(frame->type)));
            }
            item.enqueueTime = std::chrono::steady_clock::now();
            enqueue(std::move(item));
        }
    } catch (const NazarError &) {
        // Corrupt frame or protocol violation: this connection is
        // done, the server is not. Shut the socket both ways so the
        // peer notices; the committer's writes to it fail gracefully.
        {
            std::lock_guard<std::mutex> lk(statsMutex_);
            ++stats_.protocolErrors;
        }
        obs::Registry::global().counter("server.protocol_errors").add(1);
        if (conn->stream.valid())
            ::shutdown(conn->stream.fd(), SHUT_RDWR);
    }
}

void
IngestServer::enqueue(WorkItem item)
{
    {
        std::lock_guard<std::mutex> lk(queueMutex_);
        queue_.push_back(std::move(item));
    }
    queueCv_.notify_one();
}

void
IngestServer::committerLoop()
{
    obs::setThreadName("server.committer");
    for (;;) {
        std::unique_lock<std::mutex> lk(queueMutex_);
        queueCv_.wait(lk,
                      [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return; // drained
            continue;
        }
        if (queue_.front().kind == WorkItem::Kind::kIngest) {
            // Greedy batch: take the consecutive ingests already
            // queued (across connections), up to maxBatch. Never
            // waits for more — latency under light load stays one
            // record, batches grow only when the queue is deep.
            std::vector<WorkItem> batch;
            while (!queue_.empty() &&
                   queue_.front().kind == WorkItem::Kind::kIngest &&
                   batch.size() < config_.maxBatch) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            lk.unlock();
            commitBatch(batch);
        } else {
            WorkItem item = std::move(queue_.front());
            queue_.pop_front();
            lk.unlock();
            switch (item.kind) {
              case WorkItem::Kind::kCycle:
                handleCycle(item);
                break;
              case WorkItem::Kind::kFlush:
                handleFlush(item);
                break;
              case WorkItem::Kind::kBye:
                handleBye(item);
                break;
              case WorkItem::Kind::kIngest:
                break; // unreachable
            }
        }
    }
}

void
IngestServer::commitBatch(std::vector<WorkItem> &batch)
{
    // Stage sites for the per-item latency decomposition. Batch-level
    // intervals (encode, commit) are observed once per item: every
    // item in a group commit waits for the whole batch, so the batch
    // interval IS that item's stage latency.
    static obs::SpanSite queueWaitSite("server.queue_wait");
    static obs::SpanSite encodeSite("server.encode");
    static obs::SpanSite walSyncSite("persist.wal.sync");
    static obs::SpanSite ackSite("server.ack");

    auto tDequeue = std::chrono::steady_clock::now();
    for (const auto &item : batch)
        obs::recordSpan(queueWaitSite, item.enqueueTime, tDequeue,
                        ingestContext(item.ingest));

    std::vector<bool> accepted;
    accepted.reserve(batch.size());
    if (config_.groupCommit) {
        std::vector<sim::IngestMessage> msgs;
        msgs.reserve(batch.size());
        for (auto &item : batch) {
            sim::IngestMessage m;
            m.device = static_cast<int>(item.ingest.device);
            m.seq = item.ingest.seq;
            m.entry = item.ingest.entry;
            if (item.ingest.upload.has_value()) {
                sim::Upload up;
                up.features = std::move(item.ingest.upload->features);
                up.context = std::move(item.ingest.upload->context);
                up.driftFlag = item.ingest.upload->driftFlag;
                m.upload = std::move(up);
            }
            msgs.push_back(std::move(m));
        }
        auto tEncoded = std::chrono::steady_clock::now();
        accepted = cloud_.ingestBatchFrom(std::move(msgs));
        auto tCommitted = std::chrono::steady_clock::now();
        for (const auto &item : batch) {
            obs::TraceContext ctx = ingestContext(item.ingest);
            obs::recordSpan(encodeSite, tDequeue, tEncoded, ctx);
            obs::recordSpan(walSyncSite, tEncoded, tCommitted, ctx);
        }
    } else {
        // Per-record mode interleaves conversion and commit, so the
        // whole loop is attributed to the commit stage (no separate
        // encode stage in this configuration).
        for (auto &item : batch) {
            std::optional<sim::Upload> up;
            if (item.ingest.upload.has_value()) {
                sim::Upload u;
                u.features = std::move(item.ingest.upload->features);
                u.context = std::move(item.ingest.upload->context);
                u.driftFlag = item.ingest.upload->driftFlag;
                up = std::move(u);
            }
            auto t0 = std::chrono::steady_clock::now();
            accepted.push_back(cloud_.ingestFrom(
                static_cast<int>(item.ingest.device), item.ingest.seq,
                item.ingest.entry, std::move(up)));
            obs::recordSpan(walSyncSite, t0,
                            std::chrono::steady_clock::now(),
                            ingestContext(item.ingest));
        }
    }
    for (size_t i = 0; i < batch.size(); ++i) {
        net::WireAck ack;
        ack.device = batch[i].ingest.device;
        ack.seq = batch[i].ingest.seq;
        ack.accepted = accepted[i];
        auto t0 = std::chrono::steady_clock::now();
        // A false return means the peer vanished; its loss.
        batch[i].conn->stream.sendFrame(MsgType::kAck,
                                        net::encodeAck(ack));
        obs::recordSpan(ackSite, t0, std::chrono::steady_clock::now(),
                        ingestContext(batch[i].ingest));
    }
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        stats_.ingestMessages += batch.size();
        stats_.acksSent += batch.size();
        ++stats_.batches;
    }
    auto &reg = obs::Registry::global();
    reg.counter("server.ingest").add(batch.size());
    reg.counter("server.acks").add(batch.size());
    reg.counter("server.batches").add(1);
}

void
IngestServer::handleCycle(const WorkItem &item)
{
    std::istringstream in(item.cleanPatchText);
    nn::BnPatch clean = nn::BnPatch::load(in);
    sim::CycleResult cycle = cloud_.runCycle(clean);
    net::WireCycleDone done;
    done.versionCount = static_cast<uint32_t>(cycle.newVersions.size());
    done.rootCauses =
        static_cast<uint32_t>(cycle.analysis.rootCauses.size());
    done.skippedCauses = static_cast<uint32_t>(cycle.skippedCauses);
    done.adaptedSampleCount = cycle.adaptedSampleCount;
    if (cycle.newCleanPatch.has_value()) {
        std::ostringstream out;
        cycle.newCleanPatch->save(out);
        done.cleanPatchText = out.str();
    }
    item.conn->stream.sendFrame(MsgType::kCycleDone,
                                net::encodeCycleDone(done));
    for (const auto &version : cycle.newVersions) {
        std::ostringstream out;
        version.save(out);
        item.conn->stream.sendFrame(MsgType::kVersionPush, out.str());
    }
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        ++stats_.cycles;
    }
    obs::Registry::global().counter("server.cycles").add(1);
}

void
IngestServer::handleFlush(const WorkItem &item)
{
    cloud_.flush();
    item.conn->stream.sendFrame(MsgType::kFlushDone, std::string());
    {
        std::lock_guard<std::mutex> lk(statsMutex_);
        ++stats_.flushes;
    }
    obs::Registry::global().counter("server.flushes").add(1);
}

void
IngestServer::handleBye(const WorkItem &item)
{
    net::WireByeAck ack;
    ack.totalIngested = cloud_.totalIngested();
    ack.dedupHits = cloud_.dedupHits();
    item.conn->stream.sendFrame(MsgType::kByeAck,
                                net::encodeByeAck(ack));
    // EOF for the client's final recv; its reader thread on our side
    // exits when the client closes its half.
    item.conn->stream.shutdownWrite();
}

} // namespace nazar::server
