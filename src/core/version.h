/**
 * @file
 * Library version constants.
 */
#ifndef NAZAR_CORE_VERSION_H
#define NAZAR_CORE_VERSION_H

namespace nazar::core {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char *kVersionString = "1.0.0";

} // namespace nazar::core

#endif // NAZAR_CORE_VERSION_H
