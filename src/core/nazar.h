/**
 * @file
 * Nazar — the public facade of the system (paper §3.1).
 *
 * Bundles the full loop behind one object: on-device inference with
 * version selection and MSP drift detection, telemetry ingestion into
 * the cloud drift log, periodic (autopilot) or manual root-cause
 * analysis, by-cause adaptation, and deployment of the resulting model
 * versions back to every registered device.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   nn::Classifier base = ...train on clean data...;
 *   core::Nazar nazar(core::NazarConfig{}, std::move(base));
 *   nazar.registerDevice(0, "new_york");
 *   auto out = nazar.infer(0, event);       // detect + log, autopilot
 *   auto cycle = nazar.analyzeNow();        // or manual trigger
 */
#ifndef NAZAR_CORE_NAZAR_H
#define NAZAR_CORE_NAZAR_H

#include <functional>
#include <map>
#include <memory>

#include "sim/cloud.h"
#include "sim/device.h"

namespace nazar::core {

/** Operator-facing alert (paper §3.1: "optionally alerts the ML ops
 *  team"). */
struct Alert
{
    enum class Kind { kRootCauseFound, kModelAdapted, kCleanRecalibrated };

    Kind kind;
    std::string message;
    rca::AttributeSet cause; ///< Empty for clean-model alerts.
};

/** Alert callback type. */
using AlertHandler = std::function<void(const Alert &)>;

/** Top-level system configuration. */
struct NazarConfig
{
    sim::CloudConfig cloud;
    double mspThreshold = 0.9;      ///< On-device detector threshold.
    double uploadSampleRate = 0.25; ///< Fraction of inputs uploaded.
    size_t poolCapacity = 0;        ///< Device pool cap (0 = unbounded).

    /**
     * Autopilot: run an analysis cycle automatically after this many
     * ingested entries (0 disables; analysis is then manual via
     * analyzeNow()).
     */
    size_t autopilotEveryEntries = 0;

    uint64_t seed = 23;
};

/** The end-to-end monitoring-and-adaptation system. */
class Nazar
{
  public:
    /**
     * @param config Configuration.
     * @param base   The trained base (clean) model; Nazar takes
     *               ownership.
     */
    Nazar(NazarConfig config, nn::Classifier base);

    /** Register a device; returns it (idempotent per id). */
    sim::Device &registerDevice(int id, const std::string &location);

    /** Number of registered devices. */
    size_t deviceCount() const { return devices_.size(); }

    /** Access a registered device. */
    sim::Device &device(int id);

    /**
     * Run one on-device inference for a stream event: selects a model
     * version, predicts, detects drift, reports telemetry to the
     * cloud, and (when autopilot is enabled) may run an analysis
     * cycle.
     */
    sim::InferenceOutcome infer(int device_id,
                                const data::StreamEvent &event);

    /**
     * Manually trigger a full analysis + adaptation + deployment
     * cycle over everything ingested since the last cycle.
     */
    sim::CycleResult analyzeNow();

    /** Install an alert handler (invoked synchronously). */
    void onAlert(AlertHandler handler) { alertHandler_ = std::move(handler); }

    /** Current clean-model BN patch. */
    const nn::BnPatch &cleanPatch() const { return cleanPatch_; }

    /** The cloud component (drift log etc.). */
    const sim::Cloud &cloud() const { return *cloud_; }

    /** The base model. */
    const nn::Classifier &baseModel() const { return base_; }

    /** Total analysis cycles run so far. */
    size_t cycleCount() const { return cycleCount_; }

  private:
    void emitAlert(const Alert &alert);

    NazarConfig config_;
    nn::Classifier base_;
    nn::Classifier scratch_;
    nn::BnPatch cleanPatch_;
    std::unique_ptr<sim::Cloud> cloud_;
    std::map<int, sim::Device> devices_;
    detect::MspDetector detector_;
    Rng rng_;
    AlertHandler alertHandler_;
    size_t entriesSinceCycle_ = 0;
    size_t cycleCount_ = 0;
};

} // namespace nazar::core

#endif // NAZAR_CORE_NAZAR_H
