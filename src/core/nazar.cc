/**
 * @file
 * Implementation of the Nazar facade.
 */
#include "nazar.h"

#include "common/error.h"

namespace nazar::core {

Nazar::Nazar(NazarConfig config, nn::Classifier base)
    : config_(std::move(config)), base_(std::move(base)),
      scratch_(base_.clone()), cleanPatch_(base_.bnPatch()),
      detector_(config_.mspThreshold), rng_(config_.seed)
{
    cloud_ = std::make_unique<sim::Cloud>(config_.cloud, base_);
}

sim::Device &
Nazar::registerDevice(int id, const std::string &location)
{
    auto it = devices_.find(id);
    if (it != devices_.end())
        return it->second;
    auto [inserted, ok] = devices_.emplace(
        id, sim::Device(id, location, config_.poolCapacity));
    NAZAR_ASSERT(ok, "device insertion must succeed");
    return inserted->second;
}

sim::Device &
Nazar::device(int id)
{
    auto it = devices_.find(id);
    NAZAR_CHECK(it != devices_.end(),
                "device not registered: " + std::to_string(id));
    return it->second;
}

sim::InferenceOutcome
Nazar::infer(int device_id, const data::StreamEvent &event)
{
    sim::Device &dev = device(device_id);
    sim::InferenceOutcome out =
        dev.infer(event, scratch_, cleanPatch_, detector_);

    std::optional<sim::Upload> upload;
    if (rng_.bernoulli(config_.uploadSampleRate))
        upload = sim::Upload{event.features, dev.contextFor(event),
                             out.driftFlag};
    cloud_->ingest(dev.makeLogEntry(event, out), std::move(upload));
    ++entriesSinceCycle_;

    if (config_.autopilotEveryEntries > 0 &&
        entriesSinceCycle_ >= config_.autopilotEveryEntries) {
        analyzeNow();
    }
    return out;
}

sim::CycleResult
Nazar::analyzeNow()
{
    sim::CycleResult cycle = cloud_->runCycle(cleanPatch_);
    entriesSinceCycle_ = 0;
    ++cycleCount_;

    for (const auto &cause : cycle.analysis.rootCauses) {
        emitAlert(Alert{Alert::Kind::kRootCauseFound,
                        "root cause found: " + cause.attrs.toString(),
                        cause.attrs});
    }
    if (cycle.newCleanPatch.has_value()) {
        cleanPatch_ = *cycle.newCleanPatch;
        emitAlert(Alert{Alert::Kind::kCleanRecalibrated,
                        "clean model recalibrated", {}});
    }
    for (const auto &version : cycle.newVersions) {
        for (auto &[id, dev] : devices_)
            dev.pool().install(version);
        emitAlert(Alert{Alert::Kind::kModelAdapted,
                        "deployed " + version.toString(), version.cause});
    }
    return cycle;
}

void
Nazar::emitAlert(const Alert &alert)
{
    if (alertHandler_)
        alertHandler_(alert);
}

} // namespace nazar::core
