/**
 * @file
 * Federated by-cause adaptation — the extension the paper names as
 * future work ("Interesting avenues for future work are adapting Nazar
 * to distributed federated learning", §6).
 *
 * In the cloud design, devices upload sampled raw inputs and the cloud
 * runs TENT. The federated variant keeps raw data on the devices:
 * every device affected by a root cause adapts a *local copy* of the
 * current BN patch on its own private samples, and the server
 * aggregates the resulting patches with a sample-count-weighted
 * average (the BN-only analog of FedAvg — note that *only* BN state
 * moves over the network, the same deployment-size win as the cloud
 * path).
 */
#ifndef NAZAR_FED_FEDERATED_H
#define NAZAR_FED_FEDERATED_H

#include <vector>

#include "adapt/tent.h"
#include "data/dataset.h"
#include "nn/classifier.h"

namespace nazar::fed {

/**
 * Element-wise weighted average of BN patches. All patches must share
 * a layout; weights must be non-negative with a positive sum.
 */
nn::BnPatch aggregatePatches(const std::vector<nn::BnPatch> &patches,
                             const std::vector<double> &weights);

/** Federated-adaptation knobs. */
struct FederatedConfig
{
    adapt::AdaptConfig local; ///< Per-device TENT configuration.
    int rounds = 3;           ///< Server aggregation rounds.
    /** Devices with fewer private samples than this sit a round out
     *  (BN statistics need a minimal batch). */
    size_t minDeviceSamples = 8;
};

/** One participating device's private data. */
struct DeviceShard
{
    int deviceId = 0;
    data::Dataset samples; ///< Never leaves the device.
};

/** Outcome of a federated adaptation run. */
struct FederatedResult
{
    nn::BnPatch patch;          ///< The aggregated by-cause patch.
    size_t participatingDevices = 0;
    size_t totalSamples = 0;
    std::vector<double> roundObjectives; ///< Mean TENT loss per round.
};

/**
 * Run federated by-cause adaptation.
 *
 * @param config Configuration.
 * @param base   The (frozen) base model; devices clone it locally.
 * @param init   Starting BN patch (usually the current clean patch).
 * @param shards Per-device private datasets for the cause.
 */
FederatedResult federatedAdapt(const FederatedConfig &config,
                               const nn::Classifier &base,
                               const nn::BnPatch &init,
                               const std::vector<DeviceShard> &shards);

} // namespace nazar::fed

#endif // NAZAR_FED_FEDERATED_H
