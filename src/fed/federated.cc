/**
 * @file
 * Implementation of federated by-cause adaptation.
 */
#include "federated.h"

#include "common/error.h"

namespace nazar::fed {

nn::BnPatch
aggregatePatches(const std::vector<nn::BnPatch> &patches,
                 const std::vector<double> &weights)
{
    NAZAR_CHECK(!patches.empty(), "nothing to aggregate");
    NAZAR_CHECK(patches.size() == weights.size(),
                "one weight per patch required");
    double total = 0.0;
    for (double w : weights) {
        NAZAR_CHECK(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    NAZAR_CHECK(total > 0.0, "weights must not all be zero");

    const size_t layers = patches[0].layerCount();
    for (const auto &p : patches)
        NAZAR_CHECK(p.layerCount() == layers, "patch layout mismatch");

    std::vector<nn::BnState> states;
    states.reserve(layers);
    for (size_t layer = 0; layer < layers; ++layer) {
        const nn::BnState &proto = patches[0].state(layer);
        nn::BnState acc;
        acc.gamma = nn::Matrix(proto.gamma.rows(), proto.gamma.cols());
        acc.beta = nn::Matrix(proto.beta.rows(), proto.beta.cols());
        acc.runningMean = nn::Matrix(proto.runningMean.rows(),
                                     proto.runningMean.cols());
        acc.runningVar = nn::Matrix(proto.runningVar.rows(),
                                    proto.runningVar.cols());
        for (size_t p = 0; p < patches.size(); ++p) {
            const nn::BnState &s = patches[p].state(layer);
            double w = weights[p] / total;
            NAZAR_CHECK(s.gamma.cols() == acc.gamma.cols(),
                        "patch tensor shape mismatch");
            acc.gamma += s.gamma * w;
            acc.beta += s.beta * w;
            acc.runningMean += s.runningMean * w;
            acc.runningVar += s.runningVar * w;
        }
        states.push_back(std::move(acc));
    }
    return nn::BnPatch::fromStates(std::move(states));
}

FederatedResult
federatedAdapt(const FederatedConfig &config, const nn::Classifier &base,
               const nn::BnPatch &init,
               const std::vector<DeviceShard> &shards)
{
    NAZAR_CHECK(config.rounds >= 1, "need at least one round");
    FederatedResult result;
    result.patch = init;

    for (int round = 0; round < config.rounds; ++round) {
        std::vector<nn::BnPatch> local_patches;
        std::vector<double> weights;
        double objective_sum = 0.0;
        size_t participants = 0;
        size_t samples = 0;

        for (const auto &shard : shards) {
            if (shard.samples.size() < config.minDeviceSamples)
                continue;
            // Local adaptation: the device clones the base model,
            // installs the current global patch, and runs TENT on its
            // private samples.
            nn::Classifier local = base.clone();
            local.applyBnPatch(result.patch);
            adapt::AdaptConfig local_config = config.local;
            // Decorrelate device-local shuffles.
            local_config.seed =
                config.local.seed * 1000003ULL +
                static_cast<uint64_t>(shard.deviceId) + 17;
            adapt::TentAdapter tent(local_config);
            objective_sum += tent.adapt(local, shard.samples.x);

            local_patches.push_back(local.bnPatch());
            weights.push_back(
                static_cast<double>(shard.samples.size()));
            ++participants;
            samples += shard.samples.size();
        }
        if (local_patches.empty())
            break; // nobody can participate
        result.patch = aggregatePatches(local_patches, weights);
        result.roundObjectives.push_back(
            objective_sum / static_cast<double>(participants));
        result.participatingDevices = participants;
        result.totalSamples = samples;
    }
    return result;
}

} // namespace nazar::fed
