/**
 * @file
 * Implementation of the Zipf sampler.
 */
#include "zipf.h"

#include <algorithm>
#include <cmath>

#include "error.h"

namespace nazar {

ZipfSampler::ZipfSampler(size_t n, double alpha) : alpha_(alpha)
{
    NAZAR_CHECK(n > 0, "ZipfSampler requires at least one rank");
    NAZAR_CHECK(alpha >= 0.0, "Zipf alpha must be non-negative");
    cdf_.resize(n);
    double total = 0.0;
    for (size_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
        cdf_[k] = total;
    }
    for (auto &c : cdf_)
        c /= total;
    cdf_.back() = 1.0; // guard against accumulated rounding error
}

size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<size_t>(it - cdf_.begin());
}

double
ZipfSampler::probability(size_t rank) const
{
    NAZAR_CHECK(rank < cdf_.size(), "rank out of range");
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

} // namespace nazar
