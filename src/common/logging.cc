/**
 * @file
 * Implementation of the leveled logger.
 *
 * Emission is serialized behind a mutex so lines from pool workers
 * never interleave mid-line, and every line is prefixed with the
 * monotonic elapsed time since process start plus a compact thread id.
 * The initial level honors the NAZAR_LOG_LEVEL environment variable
 * (debug|info|warn|error|silent, mirroring NAZAR_THREADS's env-knob
 * style); setLogLevel() still overrides it at runtime.
 */
#include "logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace nazar {

namespace {

/** Initial level: NAZAR_LOG_LEVEL if set and recognized, else Info. */
LogLevel
initialLevel()
{
    const char *env = std::getenv("NAZAR_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::kInfo;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::kInfo;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::kWarn;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::kError;
    if (std::strcmp(env, "silent") == 0)
        return LogLevel::kSilent;
    return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{initialLevel()};

/** Serializes emission so worker-thread lines never interleave. */
std::mutex g_log_mutex;

/** Process start, for the monotonic elapsed-seconds prefix. */
const std::chrono::steady_clock::time_point g_start =
    std::chrono::steady_clock::now();

/**
 * Compact per-thread id for the log prefix (0 = first logging thread).
 * Local to the logger: common/ sits below obs/ in the layer stack, so
 * it cannot reuse obs::detail::threadId().
 */
size_t
logThreadId()
{
    static std::atomic<size_t> next{0};
    thread_local size_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo:  return "INFO ";
      case LogLevel::kWarn:  return "WARN ";
      case LogLevel::kError: return "ERROR";
      default:               return "?????";
    }
}

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < logLevel())
        return;
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - g_start)
                         .count();
    std::lock_guard<std::mutex> lk(g_log_mutex);
    std::fprintf(stderr, "[nazar %9.3f t%zu %s] %s\n", elapsed,
                 logThreadId(), levelName(level), msg.c_str());
}

} // namespace nazar
