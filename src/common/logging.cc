/**
 * @file
 * Implementation of the leveled logger.
 */
#include "logging.h"

#include <atomic>
#include <cstdio>

namespace nazar {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo:  return "INFO ";
      case LogLevel::kWarn:  return "WARN ";
      case LogLevel::kError: return "ERROR";
      default:               return "?????";
    }
}

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < logLevel())
        return;
    std::fprintf(stderr, "[nazar %s] %s\n", levelName(level), msg.c_str());
}

} // namespace nazar
