/**
 * @file
 * Simulated calendar time for Nazar experiments.
 *
 * The paper's evaluation emulates the period January 1, 2020 through
 * April 21, 2020 (112 days) and divides it into a configurable number
 * of analysis windows (8 by default). SimDate models a day within that
 * period plus a second-of-day timestamp; TimeWindows splits the period.
 */
#ifndef NAZAR_COMMON_SIM_DATE_H
#define NAZAR_COMMON_SIM_DATE_H

#include <cstdint>
#include <string>
#include <vector>

namespace nazar {

/** First day of the emulated period (day index 0). */
inline constexpr int kSimYear = 2020;

/** Number of days in the default evaluation period (Jan 1 - Apr 21). */
inline constexpr int kSimPeriodDays = 112;

/**
 * A calendar date inside the simulated deployment period, stored as a
 * day index from January 1, 2020, plus an optional second-of-day.
 */
class SimDate
{
  public:
    SimDate() = default;

    /** Construct from a day index (0 == Jan 1 2020) and second of day. */
    explicit SimDate(int day_index, int second_of_day = 0);

    /** Day index since January 1, 2020. */
    int dayIndex() const { return dayIndex_; }

    /** Seconds elapsed within the day, in [0, 86400). */
    int secondOfDay() const { return secondOfDay_; }

    /** Month in [1, 12] for 2020 (a leap year). */
    int month() const;

    /** Day of month in [1, 31]. */
    int dayOfMonth() const;

    /** ISO-style date string, e.g. "2020-01-18". */
    std::string toString() const;

    /** Date-time string, e.g. "2020-01-18 06:02:01". */
    std::string toDateTimeString() const;

    /** Total ordering by (day, second). */
    auto operator<=>(const SimDate &) const = default;

  private:
    int dayIndex_ = 0;
    int secondOfDay_ = 0;
};

/**
 * An analysis window: a half-open range of day indices [begin, end).
 * Nazar runs root-cause analysis and adaptation at the end of each
 * window.
 */
struct TimeWindow
{
    int index = 0;    ///< Window ordinal (0-based).
    int beginDay = 0; ///< First day (inclusive).
    int endDay = 0;   ///< One past the last day.

    bool
    contains(int day) const
    {
        return day >= beginDay && day < endDay;
    }
};

/**
 * Split @p total_days into @p count contiguous windows of near-equal
 * size (earlier windows take the remainder).
 */
std::vector<TimeWindow> makeTimeWindows(int total_days, int count);

} // namespace nazar

#endif // NAZAR_COMMON_SIM_DATE_H
