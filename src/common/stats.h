/**
 * @file
 * Small statistics helpers used throughout the evaluation harness:
 * running accumulators, summary statistics, and binary-classification
 * confusion counting (precision / recall / F1).
 */
#ifndef NAZAR_COMMON_STATS_H
#define NAZAR_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace nazar {

/** Welford-style running mean/variance accumulator. */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    size_t count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with fewer than two observations). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return min_; }
    double max() const { return max_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Mean of a vector (0 when empty). */
double mean(const std::vector<double> &xs);

/** Sample standard deviation of a vector (0 with < 2 elements). */
double stddev(const std::vector<double> &xs);

/**
 * Percentile with linear interpolation; p in [0, 100].
 * The input need not be sorted.
 */
double percentile(std::vector<double> xs, double p);

/**
 * Binary-classification confusion counts and the derived metrics the
 * paper reports for drift detection (Eq. 1).
 */
class ConfusionCounts
{
  public:
    /** Record one (predicted, actual) pair. */
    void add(bool predicted_positive, bool actually_positive);

    size_t tp() const { return tp_; }
    size_t fp() const { return fp_; }
    size_t tn() const { return tn_; }
    size_t fn() const { return fn_; }
    size_t total() const { return tp_ + fp_ + tn_ + fn_; }

    /** TP / (TP + FP); 0 when undefined. */
    double precision() const;

    /** TP / (TP + FN); 0 when undefined. */
    double recall() const;

    /** Harmonic mean of precision and recall (Eq. 1); 0 when undefined. */
    double f1() const;

    /** (TP + TN) / total; 0 when empty. */
    double accuracy() const;

    /** Fraction of all samples flagged positive (the "detection rate"). */
    double positiveRate() const;

  private:
    size_t tp_ = 0, fp_ = 0, tn_ = 0, fn_ = 0;
};

} // namespace nazar

#endif // NAZAR_COMMON_STATS_H
