/**
 * @file
 * Zipf-distributed sampling over a finite set of ranks.
 *
 * The Animals dataset uses a Zipf distribution to skew the class mix at
 * each location (paper §5.1, "Class skew"): P(rank k) ∝ 1 / k^alpha,
 * with alpha = 0 meaning uniform.
 */
#ifndef NAZAR_COMMON_ZIPF_H
#define NAZAR_COMMON_ZIPF_H

#include <cstddef>
#include <vector>

#include "rng.h"

namespace nazar {

/**
 * Precomputed Zipf sampler over n ranks with skew parameter alpha.
 * Rank 0 is the most likely outcome.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of ranks (must be > 0).
     * @param alpha Skew; 0 yields the uniform distribution.
     */
    ZipfSampler(size_t n, double alpha);

    /** Sample a rank in [0, n). */
    size_t sample(Rng &rng) const;

    /** Probability assigned to a rank. */
    double probability(size_t rank) const;

    size_t size() const { return cdf_.size(); }
    double alpha() const { return alpha_; }

  private:
    std::vector<double> cdf_; ///< Cumulative probabilities, cdf_.back()==1.
    double alpha_;
};

} // namespace nazar

#endif // NAZAR_COMMON_ZIPF_H
