/**
 * @file
 * Error-handling helpers shared across all Nazar modules.
 *
 * Following the gem5 fatal/panic convention:
 *  - NAZAR_CHECK / NazarError    -> user-facing error (bad config, bad
 *    arguments); recoverable by fixing the input.
 *  - NAZAR_ASSERT                -> internal invariant violation (a bug
 *    in Nazar itself).
 */
#ifndef NAZAR_COMMON_ERROR_H
#define NAZAR_COMMON_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace nazar {

/** Exception thrown for user-level errors (invalid configuration or input). */
class NazarError : public std::runtime_error
{
  public:
    explicit NazarError(const std::string &what) : std::runtime_error(what) {}
};

/** Exception thrown for internal invariant violations (Nazar bugs). */
class NazarInternalError : public std::logic_error
{
  public:
    explicit NazarInternalError(const std::string &what)
        : std::logic_error(what)
    {}
};

namespace detail {

inline std::string
formatCheckMessage(const char *kind, const char *cond, const char *file,
                   int line, const std::string &msg)
{
    std::ostringstream os;
    os << kind << " failed: (" << cond << ") at " << file << ":" << line;
    if (!msg.empty())
        os << " — " << msg;
    return os.str();
}

} // namespace detail

} // namespace nazar

/** Validate a user-facing precondition; throws nazar::NazarError. */
#define NAZAR_CHECK(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            throw ::nazar::NazarError(::nazar::detail::formatCheckMessage(   \
                "check", #cond, __FILE__, __LINE__, (msg)));                 \
        }                                                                    \
    } while (0)

/** Validate an internal invariant; throws nazar::NazarInternalError. */
#define NAZAR_ASSERT(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::nazar::NazarInternalError(                              \
                ::nazar::detail::formatCheckMessage("assert", #cond,        \
                                                    __FILE__, __LINE__,     \
                                                    (msg)));                \
        }                                                                   \
    } while (0)

#endif // NAZAR_COMMON_ERROR_H
