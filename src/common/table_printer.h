/**
 * @file
 * ASCII table rendering for benchmark output.
 *
 * Every bench binary regenerates a paper table/figure as rows of text;
 * TablePrinter renders them with aligned columns so output is directly
 * comparable with the paper.
 */
#ifndef NAZAR_COMMON_TABLE_PRINTER_H
#define NAZAR_COMMON_TABLE_PRINTER_H

#include <iosfwd>
#include <string>
#include <vector>

namespace nazar {

/** Column-aligned ASCII table builder. */
class TablePrinter
{
  public:
    /** Set the header row (column titles). */
    explicit TablePrinter(std::vector<std::string> header);

    /** Append one data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format a percentage, e.g. 0.153 -> "15.3%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render the full table. */
    std::string toString() const;

    /** Stream the rendered table. */
    void print(std::ostream &os) const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nazar

#endif // NAZAR_COMMON_TABLE_PRINTER_H
