/**
 * @file
 * Minimal leveled logger for Nazar.
 *
 * Benchmarks and the end-to-end simulator use this to narrate progress;
 * library code logs sparingly at Info and below. The level is a global
 * knob so bench binaries can silence the library; its initial value can
 * be set via NAZAR_LOG_LEVEL (debug|info|warn|error|silent). Lines are
 * emitted atomically (a mutex serializes pool-worker output) with an
 * elapsed-seconds + thread-id prefix.
 */
#ifndef NAZAR_COMMON_LOGGING_H
#define NAZAR_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace nazar {

/** Log severity levels, in increasing order of importance. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3,
                      kSilent = 4 };

/** Global minimum level that will be emitted (default: Info). */
LogLevel logLevel();

/** Set the global minimum level. */
void setLogLevel(LogLevel level);

/** Emit a message at the given level (no-op if below the threshold). */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

/** Builds a log line via operator<<, emits on destruction. */
class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level_(level) {}

    ~LogLine() { logMessage(level_, os_.str()); }

    LogLine(const LogLine &) = delete;
    LogLine &operator=(const LogLine &) = delete;

    template <typename T>
    LogLine &
    operator<<(const T &v)
    {
        os_ << v;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream os_;
};

} // namespace detail

/** Stream-style helpers: NAZAR_LOG_INFO() << "windows: " << n; */
inline detail::LogLine logDebug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine logInfo() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine logWarn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine logError() { return detail::LogLine(LogLevel::kError); }

} // namespace nazar

#endif // NAZAR_COMMON_LOGGING_H
