/**
 * @file
 * Implementation of statistics helpers.
 */
#include "stats.h"

#include <algorithm>
#include <cmath>

#include "error.h"

namespace nazar {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    size_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double new_mean =
        mean_ + delta * static_cast<double>(other.count_) /
                    static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) /
                           static_cast<double>(n);
    mean_ = new_mean;
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
percentile(std::vector<double> xs, double p)
{
    NAZAR_CHECK(!xs.empty(), "percentile of an empty vector");
    NAZAR_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void
ConfusionCounts::add(bool predicted_positive, bool actually_positive)
{
    if (predicted_positive && actually_positive)
        ++tp_;
    else if (predicted_positive && !actually_positive)
        ++fp_;
    else if (!predicted_positive && actually_positive)
        ++fn_;
    else
        ++tn_;
}

double
ConfusionCounts::precision() const
{
    size_t denom = tp_ + fp_;
    return denom ? static_cast<double>(tp_) / denom : 0.0;
}

double
ConfusionCounts::recall() const
{
    size_t denom = tp_ + fn_;
    return denom ? static_cast<double>(tp_) / denom : 0.0;
}

double
ConfusionCounts::f1() const
{
    size_t denom = 2 * tp_ + fp_ + fn_;
    return denom ? 2.0 * static_cast<double>(tp_) / denom : 0.0;
}

double
ConfusionCounts::accuracy() const
{
    size_t n = total();
    return n ? static_cast<double>(tp_ + tn_) / n : 0.0;
}

double
ConfusionCounts::positiveRate() const
{
    size_t n = total();
    return n ? static_cast<double>(tp_ + fp_) / n : 0.0;
}

} // namespace nazar
