/**
 * @file
 * Implementation of simulated calendar time.
 */
#include "sim_date.h"

#include <array>
#include <cstdio>

#include "error.h"

namespace nazar {

namespace {

// 2020 is a leap year.
constexpr std::array<int, 12> kDaysPerMonth = {31, 29, 31, 30, 31, 30,
                                               31, 31, 30, 31, 30, 31};

} // namespace

SimDate::SimDate(int day_index, int second_of_day)
    : dayIndex_(day_index), secondOfDay_(second_of_day)
{
    NAZAR_CHECK(day_index >= 0, "day index must be non-negative");
    NAZAR_CHECK(second_of_day >= 0 && second_of_day < 86400,
                "second of day must be in [0, 86400)");
}

int
SimDate::month() const
{
    int d = dayIndex_ % 366;
    for (int m = 0; m < 12; ++m) {
        if (d < kDaysPerMonth[m])
            return m + 1;
        d -= kDaysPerMonth[m];
    }
    return 12;
}

int
SimDate::dayOfMonth() const
{
    int d = dayIndex_ % 366;
    for (int m = 0; m < 12; ++m) {
        if (d < kDaysPerMonth[m])
            return d + 1;
        d -= kDaysPerMonth[m];
    }
    return kDaysPerMonth[11];
}

std::string
SimDate::toString() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", kSimYear, month(),
                  dayOfMonth());
    return buf;
}

std::string
SimDate::toDateTimeString() const
{
    char buf[48];
    int h = secondOfDay_ / 3600;
    int m = (secondOfDay_ / 60) % 60;
    int s = secondOfDay_ % 60;
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                  kSimYear, month(), dayOfMonth(), h, m, s);
    return buf;
}

std::vector<TimeWindow>
makeTimeWindows(int total_days, int count)
{
    NAZAR_CHECK(total_days > 0, "need at least one day");
    NAZAR_CHECK(count > 0 && count <= total_days,
                "window count must be in [1, total_days]");
    std::vector<TimeWindow> windows;
    windows.reserve(count);
    int base = total_days / count;
    int rem = total_days % count;
    int day = 0;
    for (int i = 0; i < count; ++i) {
        int len = base + (i < rem ? 1 : 0);
        windows.push_back(TimeWindow{i, day, day + len});
        day += len;
    }
    NAZAR_ASSERT(day == total_days, "window split must cover the period");
    return windows;
}

} // namespace nazar
