/**
 * @file
 * Implementation of the ASCII table renderer.
 */
#include "table_printer.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "error.h"

namespace nazar {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    NAZAR_CHECK(!header_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    NAZAR_CHECK(row.size() == header_.size(),
                "row width must match header width");
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
TablePrinter::toString() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row,
                          std::ostringstream &os) {
        os << "|";
        for (size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c];
            os << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    std::ostringstream os;
    std::string sep = "+";
    for (size_t w : widths)
        sep += std::string(w + 2, '-') + "+";
    sep += "\n";

    os << sep;
    render_row(header_, os);
    os << sep;
    for (const auto &row : rows_)
        render_row(row, os);
    os << sep;
    return os.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    os << toString();
}

} // namespace nazar
