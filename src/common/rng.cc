/**
 * @file
 * Implementation of the deterministic RNG (xoshiro256** + splitmix64).
 */
#include "rng.h"

#include <cmath>

#include "error.h"

namespace nazar {

namespace {

inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::operator()()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa => uniform in [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    NAZAR_CHECK(lo <= hi, "uniformInt requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>((*this)());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = (~0ULL / span) * span;
    uint64_t x;
    do {
        x = (*this)();
    } while (x >= limit);
    return lo + static_cast<int64_t>(x % span);
}

double
Rng::normal()
{
    if (haveCachedNormal_) {
        haveCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; u1 in (0,1] to keep log finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    haveCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

int
Rng::poisson(double mean)
{
    NAZAR_CHECK(mean >= 0.0, "poisson mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplication method.
        double limit = std::exp(-mean);
        double prod = uniform();
        int n = 0;
        while (prod > limit) {
            prod *= uniform();
            ++n;
        }
        return n;
    }
    // Normal approximation for large means (adequate for workload gen).
    double x = normal(mean, std::sqrt(mean));
    return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::index(size_t n)
{
    NAZAR_CHECK(n > 0, "index requires a non-empty range");
    return static_cast<size_t>(uniformInt(0, static_cast<int64_t>(n) - 1));
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        NAZAR_CHECK(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    NAZAR_CHECK(total > 0.0, "weightedIndex requires positive total weight");
    double target = uniform() * total;
    double cum = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        cum += weights[i];
        if (target < cum)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace nazar
