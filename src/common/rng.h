/**
 * @file
 * Deterministic random number generation for Nazar.
 *
 * Every stochastic component in the repository draws from an Rng seeded
 * explicitly, so all experiments are reproducible bit-for-bit. The core
 * generator is xoshiro256** (public domain, Blackman & Vigna), seeded
 * via splitmix64.
 */
#ifndef NAZAR_COMMON_RNG_H
#define NAZAR_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nazar {

/**
 * Deterministic pseudo-random generator with the distribution helpers
 * Nazar needs (uniform, normal, Poisson, Bernoulli, choice, shuffle).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * used with <random> distributions if desired.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value (xoshiro256**). */
    uint64_t operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached pair). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Poisson-distributed count with the given mean (Knuth / PTRS). */
    int poisson(double mean);

    /** True with probability p. */
    bool bernoulli(double p);

    /** Uniformly pick an index in [0, n). Requires n > 0. */
    size_t index(size_t n);

    /**
     * Sample an index from an unnormalized weight vector.
     * Requires at least one strictly positive weight.
     */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an arbitrary vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = index(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for per-entity streams). */
    Rng fork();

  private:
    uint64_t s_[4];
    bool haveCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace nazar

#endif // NAZAR_COMMON_RNG_H
