/**
 * @file
 * Self-supervised test-time adaptation interface (paper §3.4).
 *
 * Adapters modify a model *in place* using only unlabeled inputs.
 * Per the paper's efficiency rule, all adapters in Nazar update only
 * the BatchNorm layers (Mode::kAdapt exposes exactly those parameters),
 * so the delta an adaptation produces is a deployable BnPatch.
 */
#ifndef NAZAR_ADAPT_ADAPTER_H
#define NAZAR_ADAPT_ADAPTER_H

#include <string>

#include "common/rng.h"
#include "nn/classifier.h"

namespace nazar::adapt {

/** Hyperparameters shared by the adaptation methods. */
struct AdaptConfig
{
    int steps = 8;             ///< Passes over the adaptation set.
    size_t batchSize = 32;     ///< Mini-batch size (BN needs >= 2).
    double learningRate = 1e-3; ///< Adam step size on BN affines.
    uint64_t seed = 3;
    /** MEMO only: number of augmented copies per input (Eq. 3's B). */
    int numAugments = 8;
    /**
     * MEMO only: cap on how many inputs receive the per-input
     * adaptation treatment per call (MEMO is per-image and expensive;
     * the paper notes it "incurs too frequent adaptations").
     */
    size_t maxInputs = 256;
};

/** Base class of the self-supervised adaptation methods. */
class Adapter
{
  public:
    explicit Adapter(AdaptConfig config) : config_(config) {}
    virtual ~Adapter() = default;

    /**
     * Adapt @p model in place on unlabeled inputs @p x.
     * @return Final value of the method's self-supervised objective.
     */
    virtual double adapt(nn::Classifier &model, const nn::Matrix &x) const
        = 0;

    virtual std::string name() const = 0;

    const AdaptConfig &config() const { return config_; }

  protected:
    AdaptConfig config_;
};

} // namespace nazar::adapt

#endif // NAZAR_ADAPT_ADAPTER_H
