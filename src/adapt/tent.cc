/**
 * @file
 * Implementation of TENT.
 */
#include "tent.h"

#include <numeric>

#include "common/error.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace nazar::adapt {

double
TentAdapter::adapt(nn::Classifier &model, const nn::Matrix &x) const
{
    NAZAR_CHECK(x.rows() >= 2, "TENT needs a batch of at least 2 inputs");
    Rng rng(config_.seed);
    nn::Adam opt(model.net().params(nn::Mode::kAdapt),
                 config_.learningRate);

    std::vector<size_t> order(x.rows());
    std::iota(order.begin(), order.end(), 0);

    double last_loss = 0.0;
    for (int step = 0; step < config_.steps; ++step) {
        rng.shuffle(order);
        double step_loss = 0.0;
        size_t batches = 0;
        for (size_t start = 0; start < order.size();
             start += config_.batchSize) {
            size_t end = std::min(order.size(), start + config_.batchSize);
            if (end - start < 2)
                break; // BN batch statistics need >= 2 rows
            std::vector<size_t> idx(order.begin() + start,
                                    order.begin() + end);
            nn::Matrix xb = x.selectRows(idx);

            opt.zeroGrads();
            nn::Matrix z = model.net().forward(xb, nn::Mode::kAdapt);
            nn::LossResult res = nn::meanEntropy(z);
            model.net().backward(res.grad, nn::Mode::kAdapt);
            opt.step();

            step_loss += res.loss;
            ++batches;
        }
        last_loss = batches ? step_loss / batches : 0.0;
    }
    return last_loss;
}

} // namespace nazar::adapt
