/**
 * @file
 * TENT: fully test-time adaptation by entropy minimization (Wang et
 * al., ICLR 2021) — Nazar's default adaptation method (paper §3.4,
 * Eq. 2).
 *
 * TENT minimizes the mean prediction entropy of batched outputs while
 * updating only BatchNorm affine parameters; normalization statistics
 * are re-estimated from the adaptation batches as a side effect of
 * running forward passes in Mode::kAdapt.
 */
#ifndef NAZAR_ADAPT_TENT_H
#define NAZAR_ADAPT_TENT_H

#include "adapt/adapter.h"

namespace nazar::adapt {

/** Entropy-minimization adapter (TENT). */
class TentAdapter : public Adapter
{
  public:
    explicit TentAdapter(AdaptConfig config = {}) : Adapter(config) {}

    double adapt(nn::Classifier &model, const nn::Matrix &x) const override;

    std::string name() const override { return "tent"; }
};

} // namespace nazar::adapt

#endif // NAZAR_ADAPT_TENT_H
