/**
 * @file
 * Implementation of MEMO augmentations.
 */
#include "augment.h"

#include <cmath>

#include "common/error.h"

namespace nazar::adapt {

std::vector<double>
augmentOnce(const std::vector<double> &x, Rng &rng)
{
    std::vector<double> y = x;
    const size_t d = y.size();

    // Gain jitter (analog of brightness/contrast augmentation).
    double gain = rng.uniform(0.9, 1.1);
    for (auto &e : y)
        e *= gain;

    // Additive noise.
    for (auto &e : y)
        e += 0.08 * rng.normal();

    // With probability 1/2, light local smoothing (analog of small
    // geometric transforms).
    if (rng.bernoulli(0.5) && d >= 3) {
        std::vector<double> s(d);
        for (size_t i = 0; i < d; ++i) {
            size_t prev = (i + d - 1) % d;
            size_t next = (i + 1) % d;
            s[i] = 0.25 * y[prev] + 0.5 * y[i] + 0.25 * y[next];
        }
        y = std::move(s);
    }

    // With probability 1/3, mild quantization (analog of posterize).
    if (rng.bernoulli(1.0 / 3.0)) {
        double step = 0.2;
        for (auto &e : y)
            e = std::round(e / step) * step;
    }
    return y;
}

nn::Matrix
augmentBatch(const std::vector<double> &x, int count, Rng &rng)
{
    NAZAR_CHECK(count >= 2, "MEMO needs at least 2 augmented copies");
    nn::Matrix out(static_cast<size_t>(count), x.size());
    for (int i = 0; i < count; ++i)
        out.setRow(static_cast<size_t>(i), augmentOnce(x, rng));
    return out;
}

} // namespace nazar::adapt
