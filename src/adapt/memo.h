/**
 * @file
 * MEMO: test-time robustness via adaptation and augmentation (Zhang et
 * al., NeurIPS 2022) — the alternative objective Nazar supports (paper
 * §3.4, Eq. 3).
 *
 * For each input, MEMO minimizes the entropy of the prediction
 * averaged over B augmented copies. Per the paper, Nazar runs MEMO
 * "using setups similar to TENT": only BatchNorm layers adapt, and the
 * method is applied over a set of inputs rather than triggering on
 * every single image.
 */
#ifndef NAZAR_ADAPT_MEMO_H
#define NAZAR_ADAPT_MEMO_H

#include "adapt/adapter.h"

namespace nazar::adapt {

/** Marginal-entropy adapter (MEMO). */
class MemoAdapter : public Adapter
{
  public:
    explicit MemoAdapter(AdaptConfig config = {}) : Adapter(config) {}

    double adapt(nn::Classifier &model, const nn::Matrix &x) const override;

    std::string name() const override { return "memo"; }
};

} // namespace nazar::adapt

#endif // NAZAR_ADAPT_MEMO_H
