/**
 * @file
 * Implementation of MEMO.
 *
 * Per the paper (§3.4), Nazar runs MEMO "using the setups similar to
 * TENT": BN-only updates driven by small batches of inputs. Each
 * optimization step takes one mini-batch of images, expands every
 * image into B augmented copies, runs all copies through the network
 * in a single batch-statistics forward pass, and minimizes the *mean
 * marginal entropy* (Eq. 3) over the images — the per-image gradients
 * are assembled into one backward pass so the BN affines receive a
 * batch-averaged update (which also guards against the trivial
 * single-image solution).
 */
#include "memo.h"

#include <numeric>

#include "common/error.h"
#include "adapt/augment.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace nazar::adapt {

double
MemoAdapter::adapt(nn::Classifier &model, const nn::Matrix &x) const
{
    NAZAR_CHECK(x.rows() >= 1, "MEMO needs at least one input");
    Rng rng(config_.seed);
    nn::Adam opt(model.net().params(nn::Mode::kAdapt),
                 config_.learningRate);

    const size_t copies = static_cast<size_t>(config_.numAugments);
    const size_t images_per_batch = std::max<size_t>(
        2, config_.batchSize / std::max<size_t>(1, copies / 2));

    // Cap total optimization work (MEMO is augmentation-heavy).
    std::vector<size_t> order(x.rows());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    size_t limit = std::min(order.size(), config_.maxInputs);
    order.resize(limit);

    double last_loss = 0.0;
    for (int step = 0; step < config_.steps; ++step) {
        rng.shuffle(order);
        double step_loss = 0.0;
        size_t updates = 0;
        for (size_t start = 0; start < order.size();
             start += images_per_batch) {
            size_t end =
                std::min(order.size(), start + images_per_batch);
            size_t images = end - start;
            if (images < 1)
                break;

            // Expand every image of the mini-batch into B copies.
            nn::Matrix combined(images * copies, x.cols());
            for (size_t i = 0; i < images; ++i) {
                nn::Matrix group = augmentBatch(
                    x.rowVec(order[start + i]),
                    static_cast<int>(copies), rng);
                for (size_t c = 0; c < copies; ++c)
                    combined.setRow(i * copies + c, group.rowVec(c));
            }

            opt.zeroGrads();
            nn::Matrix z =
                model.net().forward(combined, nn::Mode::kAdapt);

            // Mean marginal entropy across images; per-image gradients
            // assembled into one backward matrix.
            nn::Matrix grad(z.rows(), z.cols());
            double loss = 0.0;
            for (size_t i = 0; i < images; ++i) {
                std::vector<size_t> rows(copies);
                std::iota(rows.begin(), rows.end(), i * copies);
                nn::LossResult res =
                    nn::marginalEntropy(z.selectRows(rows));
                loss += res.loss;
                for (size_t c = 0; c < copies; ++c)
                    for (size_t k = 0; k < z.cols(); ++k)
                        grad(i * copies + c, k) =
                            res.grad(c, k) /
                            static_cast<double>(images);
            }
            model.net().backward(grad, nn::Mode::kAdapt);
            opt.step();

            step_loss += loss / static_cast<double>(images);
            ++updates;
        }
        last_loss = updates ? step_loss / updates : 0.0;
    }
    return last_loss;
}

} // namespace nazar::adapt
