/**
 * @file
 * Input augmentations for MEMO (paper Eq. 3).
 *
 * MEMO averages predictions over randomly augmented copies of one
 * input (the paper mentions rotating and posterizing images). The
 * feature-space analogs here are label-preserving perturbations:
 * gain jitter, additive noise, local smoothing and value quantization.
 */
#ifndef NAZAR_ADAPT_AUGMENT_H
#define NAZAR_ADAPT_AUGMENT_H

#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"

namespace nazar::adapt {

/** Produce one randomly augmented copy of a feature vector. */
std::vector<double> augmentOnce(const std::vector<double> &x, Rng &rng);

/** Produce @p count augmented copies of one input as a matrix. */
nn::Matrix augmentBatch(const std::vector<double> &x, int count, Rng &rng);

} // namespace nazar::adapt

#endif // NAZAR_ADAPT_AUGMENT_H
