/**
 * @file
 * Parallel-execution runtime: a fixed-size thread pool with chunked
 * `parallelFor` / `parallelReduce` primitives that every hot layer of
 * Nazar (nn kernels, the fleet simulation, cloud adaptation) runs on.
 *
 * Design contract — determinism first:
 *
 *  - Chunk layout is a pure function of (begin, end, grain); it never
 *    depends on the thread count or on runtime scheduling. Chunks are
 *    claimed dynamically, but any per-chunk computation sees exactly
 *    the same index range no matter how many workers exist.
 *  - `parallelReduce` combines per-chunk partials in ascending chunk
 *    order on the calling thread, so floating-point reductions are
 *    bit-identical across thread counts.
 *  - With an effective thread count of 1 (NAZAR_THREADS=1) no worker
 *    threads are started at all: the chunks run inline on the caller
 *    in ascending order — the exact sequential path.
 *  - Nested calls (a `parallelFor` issued from inside a pool worker,
 *    e.g. a parallel matmul inside a parallel fleet shard) execute
 *    inline on the worker to keep the pool deadlock-free.
 *
 * The pool size defaults to std::thread::hardware_concurrency() and
 * can be overridden by the NAZAR_THREADS environment variable or
 * programmatically via setThreads() (tests use this to compare
 * 1-thread vs N-thread runs in one process).
 */
#ifndef NAZAR_RUNTIME_THREAD_POOL_H
#define NAZAR_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nazar::runtime {

/** Number of chunks a (begin, end, grain) range splits into. */
size_t chunkCount(size_t begin, size_t end, size_t grain);

/**
 * Fixed-size worker pool executing chunked index ranges.
 *
 * One top-level batch runs at a time (concurrent top-level calls from
 * different threads serialize on an internal mutex); calls made from
 * inside a worker run inline.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Total parallelism including the calling thread;
     *                clamped to >= 1. `threads == 1` starts no workers.
     */
    explicit ThreadPool(size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (worker threads + the calling thread). */
    size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Run `body(chunk_begin, chunk_end)` over [begin, end) split into
     * chunks of at most `grain` indices (grain is clamped to >= 1).
     * The caller participates in execution and the call returns after
     * every chunk has finished. The first exception thrown by any
     * chunk is rethrown on the caller after the batch drains.
     *
     * Batch lifecycle: each batch bumps `generation_`; every worker
     * must join that generation (increment `joinedWorkers_` under
     * `mu_`) and retire from it (decrement `activeWorkers_`) before
     * the call returns. The next publish therefore can never race a
     * worker that slept through the previous batch — by the time the
     * batch state is rewritten, every worker is parked in its
     * condition wait with `seen == generation_`.
     */
    void parallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t, size_t)> &body);

    /**
     * Drain any in-flight batch, stop and join the workers, and make
     * every subsequent parallelFor on this pool run inline on its
     * caller. Used by setThreads(): a retired pool stays alive (in a
     * process-lifetime retired list), so a thread still holding a
     * stale globalPool() reference degrades to sequential execution
     * instead of touching freed memory.
     */
    void retire();

    /**
     * Chunked map-reduce: `map(chunk_begin, chunk_end)` produces one
     * partial per chunk; partials are folded left-to-right in chunk
     * order with `combine(acc, partial)` starting from `identity`.
     * Deterministic across thread counts by construction.
     */
    template <typename T>
    T parallelReduce(size_t begin, size_t end, size_t grain, T identity,
                     const std::function<T(size_t, size_t)> &map,
                     const std::function<T(T, T)> &combine)
    {
        if (grain == 0)
            grain = 1;
        const size_t chunks = chunkCount(begin, end, grain);
        std::vector<T> partials(chunks, identity);
        parallelFor(begin, end, grain,
                    [&](size_t chunk_begin, size_t chunk_end) {
                        partials[(chunk_begin - begin) / grain] =
                            map(chunk_begin, chunk_end);
                    });
        T acc = std::move(identity);
        for (auto &p : partials)
            acc = combine(std::move(acc), std::move(p));
        return acc;
    }

  private:
    void workerLoop(size_t index);
    /** Claim and run chunks until drained; returns chunks executed. */
    size_t runChunks();
    void runInline(size_t begin, size_t end, size_t grain, size_t chunks,
                   const std::function<void(size_t, size_t)> &body);
    void stopWorkers();

    std::vector<std::thread> workers_;

    std::mutex batchMutex_; ///< Serializes top-level batches.
    std::atomic<bool> retired_{false}; ///< Set once by retire().

    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    bool stop_ = false;
    uint64_t generation_ = 0;  ///< Bumped per batch to wake workers.
    size_t joinedWorkers_ = 0; ///< Workers that joined this generation.
    size_t activeWorkers_ = 0; ///< Workers currently inside runChunks().

    // State of the in-flight batch (guarded by mu_ for publication;
    // chunk claiming itself is a lock-free fetch_add).
    const std::function<void(size_t, size_t)> *body_ = nullptr;
    size_t begin_ = 0;
    size_t end_ = 0;
    size_t grain_ = 1;
    std::atomic<size_t> nextChunk_{0};
    size_t chunkTotal_ = 0;
    std::atomic<size_t> chunksDone_{0};
    std::exception_ptr firstError_;
    std::mutex errorMutex_;
};

/**
 * Effective thread count from configuration: NAZAR_THREADS if set to
 * a positive integer, otherwise hardware_concurrency() (>= 1).
 */
size_t configuredThreads();

/** The process-wide pool, created on first use with configuredThreads(). */
ThreadPool &globalPool();

/**
 * Rebuild the global pool with an explicit thread count (0 = back to
 * configuredThreads()). The old pool is drained (an in-flight batch
 * finishes first), its workers are joined, and the husk is kept alive
 * so stale references degrade to inline execution; still, callers
 * should be quiescent so new work lands on the new pool.
 */
void setThreads(size_t threads);

/** Thread count of the global pool (creates the pool on first use). */
size_t threadCount();

/** `globalPool().parallelFor(...)` convenience wrapper. */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)> &body);

/** `globalPool().parallelReduce(...)` convenience wrapper. */
template <typename T>
T
parallelReduce(size_t begin, size_t end, size_t grain, T identity,
               const std::function<T(size_t, size_t)> &map,
               const std::function<T(T, T)> &combine)
{
    return globalPool().parallelReduce<T>(begin, end, grain,
                                          std::move(identity), map,
                                          combine);
}

} // namespace nazar::runtime

#endif // NAZAR_RUNTIME_THREAD_POOL_H
