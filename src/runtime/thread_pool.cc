/**
 * @file
 * Implementation of the parallel-execution runtime.
 */
#include "thread_pool.h"

#include <cstdlib>

#include "common/error.h"

namespace nazar::runtime {

namespace {

/**
 * True while the current thread is executing chunks of a batch
 * (worker or caller). Nested parallelFor calls from such a thread run
 * inline to keep the pool deadlock-free.
 */
thread_local bool tl_in_parallel_region = false;

/** RAII guard for tl_in_parallel_region. */
struct RegionGuard
{
    bool prev;
    RegionGuard() : prev(tl_in_parallel_region)
    {
        tl_in_parallel_region = true;
    }
    ~RegionGuard() { tl_in_parallel_region = prev; }
};

} // namespace

size_t
chunkCount(size_t begin, size_t end, size_t grain)
{
    if (begin >= end)
        return 0;
    if (grain == 0)
        grain = 1;
    return (end - begin + grain - 1) / grain;
}

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads - 1);
    for (size_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    // Drain any batch still in flight (parallelFor holds batchMutex_
    // for the whole batch) before tearing the workers down.
    std::lock_guard<std::mutex> batch(batchMutex_);
    stopWorkers();
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    // joinable() guards the retire()-then-destroy sequence, where the
    // workers were already joined once.
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
}

void
ThreadPool::retire()
{
    // Hold batchMutex_ throughout: an in-flight batch drains first,
    // and a stale caller blocked on batchMutex_ acquires it only
    // after retired_ is set, taking the inline path in parallelFor.
    std::lock_guard<std::mutex> batch(batchMutex_);
    retired_.store(true, std::memory_order_release);
    stopWorkers();
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            wake_.wait(lk,
                       [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            ++joinedWorkers_;
            ++activeWorkers_;
        }
        {
            RegionGuard guard;
            runChunks();
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--activeWorkers_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::runChunks()
{
    for (;;) {
        size_t i = nextChunk_.fetch_add(1, std::memory_order_acq_rel);
        if (i >= chunkTotal_)
            return;
        size_t chunk_begin = begin_ + i * grain_;
        size_t chunk_end = std::min(end_, chunk_begin + grain_);
        try {
            (*body_)(chunk_begin, chunk_end);
        } catch (...) {
            std::lock_guard<std::mutex> lk(errorMutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        if (chunksDone_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            chunkTotal_) {
            std::lock_guard<std::mutex> lk(mu_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::runInline(size_t begin, size_t end, size_t grain,
                      size_t chunks,
                      const std::function<void(size_t, size_t)> &body)
{
    // Chunk layout is identical to the pooled path, so every consumer
    // (including parallelReduce's per-chunk partials) sees the same
    // ranges regardless of which path executes them.
    RegionGuard guard;
    for (size_t i = 0; i < chunks; ++i) {
        size_t chunk_begin = begin + i * grain;
        size_t chunk_end = std::min(end, chunk_begin + grain);
        body(chunk_begin, chunk_end);
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)> &body)
{
    if (begin >= end)
        return;
    if (grain == 0)
        grain = 1;
    const size_t chunks = chunkCount(begin, end, grain);

    // Inline paths: sequential pool, retired pool, nested call, or a
    // single chunk.
    if (workers_.empty() || tl_in_parallel_region || chunks == 1 ||
        retired_.load(std::memory_order_acquire)) {
        runInline(begin, end, grain, chunks, body);
        return;
    }

    std::lock_guard<std::mutex> batch(batchMutex_);
    // retire() sets retired_ under batchMutex_, so a stale caller
    // that was blocked on the mutex reliably observes it here.
    if (retired_.load(std::memory_order_acquire)) {
        runInline(begin, end, grain, chunks, body);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        body_ = &body;
        begin_ = begin;
        end_ = end;
        grain_ = grain;
        chunkTotal_ = chunks;
        chunksDone_.store(0, std::memory_order_relaxed);
        nextChunk_.store(0, std::memory_order_relaxed);
        firstError_ = nullptr;
        joinedWorkers_ = 0;
        ++generation_;
    }
    wake_.notify_all();
    {
        RegionGuard guard;
        runChunks();
    }
    {
        std::unique_lock<std::mutex> lk(mu_);
        // Wait until every worker has both joined this generation and
        // retired from it. A worker that has not joined yet is parked
        // in wake_.wait and will still run; returning before it joins
        // would let it wake during the next batch's publish and read
        // the batch state unsynchronized (the stale-worker race).
        done_.wait(lk, [&] {
            return joinedWorkers_ == workers_.size() &&
                   activeWorkers_ == 0 &&
                   chunksDone_.load(std::memory_order_acquire) ==
                       chunkTotal_;
        });
        body_ = nullptr;
    }
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

namespace {

std::atomic<ThreadPool *> g_pool{nullptr};
std::mutex g_pool_mutex;

/**
 * Pools replaced by setThreads(), kept alive (intentionally leaked)
 * for the process lifetime. Their workers are joined in retire(), so
 * the only cost is the husk object; in exchange a thread that cached
 * a globalPool() reference across setThreads() runs inline instead of
 * dereferencing freed memory. Guarded by g_pool_mutex.
 */
std::vector<ThreadPool *> &
retiredPools()
{
    static std::vector<ThreadPool *> *pools =
        new std::vector<ThreadPool *>();
    return *pools;
}

} // namespace

size_t
configuredThreads()
{
    if (const char *env = std::getenv("NAZAR_THREADS")) {
        char *tail = nullptr;
        unsigned long v = std::strtoul(env, &tail, 10);
        if (tail != env && *tail == '\0' && v >= 1)
            return static_cast<size_t>(v);
    }
    size_t hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
globalPool()
{
    ThreadPool *pool = g_pool.load(std::memory_order_acquire);
    if (pool != nullptr)
        return *pool;
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    pool = g_pool.load(std::memory_order_relaxed);
    if (pool == nullptr) {
        pool = new ThreadPool(configuredThreads());
        g_pool.store(pool, std::memory_order_release);
    }
    return *pool;
}

void
setThreads(size_t threads)
{
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    ThreadPool *old = g_pool.exchange(nullptr, std::memory_order_acq_rel);
    if (old != nullptr) {
        // Drain + stop, then keep the husk alive: see retiredPools().
        old->retire();
        retiredPools().push_back(old);
    }
    g_pool.store(new ThreadPool(threads ? threads : configuredThreads()),
                 std::memory_order_release);
}

size_t
threadCount()
{
    return globalPool().threadCount();
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &body)
{
    globalPool().parallelFor(begin, end, grain, body);
}

} // namespace nazar::runtime
