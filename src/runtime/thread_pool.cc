/**
 * @file
 * Implementation of the parallel-execution runtime.
 */
#include "thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "obs/metrics.h"

namespace nazar::runtime {

namespace {

/**
 * Cached handles for the pool's self-monitoring. Recording is inert
 * (relaxed striped adds, no lock, no effect on chunk layout or
 * scheduling), so the determinism contract is untouched.
 */
struct PoolMetrics
{
    obs::Counter &batches;        ///< Pooled top-level batches.
    obs::Counter &batchesInline;  ///< Batches run entirely inline.
    obs::Counter &chunksWorker;   ///< Chunks executed by pool workers.
    obs::Counter &chunksCaller;   ///< Chunks executed by the caller.
    obs::Counter &chunksInline;   ///< Chunks on the inline path.
    obs::Histogram &batchSeconds; ///< Wall time per pooled batch.
    obs::Gauge &callerBusy;       ///< Cumulative caller chunk-run time.

    static PoolMetrics &
    get()
    {
        static PoolMetrics *m = new PoolMetrics{
            obs::Registry::global().counter("runtime.batches"),
            obs::Registry::global().counter("runtime.batches.inline"),
            obs::Registry::global().counter("runtime.chunks.worker"),
            obs::Registry::global().counter("runtime.chunks.caller"),
            obs::Registry::global().counter("runtime.chunks.inline"),
            obs::Registry::global().histogram("runtime.batch.seconds"),
            obs::Registry::global().gauge(
                "runtime.caller.busy_seconds"),
        };
        return *m;
    }
};

double
secondsBetween(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * True while the current thread is executing chunks of a batch
 * (worker or caller). Nested parallelFor calls from such a thread run
 * inline to keep the pool deadlock-free.
 */
thread_local bool tl_in_parallel_region = false;

/** RAII guard for tl_in_parallel_region. */
struct RegionGuard
{
    bool prev;
    RegionGuard() : prev(tl_in_parallel_region)
    {
        tl_in_parallel_region = true;
    }
    ~RegionGuard() { tl_in_parallel_region = prev; }
};

} // namespace

size_t
chunkCount(size_t begin, size_t end, size_t grain)
{
    if (begin >= end)
        return 0;
    if (grain == 0)
        grain = 1;
    return (end - begin + grain - 1) / grain;
}

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads - 1);
    for (size_t i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    // Drain any batch still in flight (parallelFor holds batchMutex_
    // for the whole batch) before tearing the workers down.
    std::lock_guard<std::mutex> batch(batchMutex_);
    stopWorkers();
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    // joinable() guards the retire()-then-destroy sequence, where the
    // workers were already joined once.
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
}

void
ThreadPool::retire()
{
    // Hold batchMutex_ throughout: an in-flight batch drains first,
    // and a stale caller blocked on batchMutex_ acquires it only
    // after retired_ is set, taking the inline path in parallelFor.
    std::lock_guard<std::mutex> batch(batchMutex_);
    retired_.store(true, std::memory_order_release);
    stopWorkers();
}

void
ThreadPool::workerLoop(size_t index)
{
    // Per-worker utilization meter: cumulative seconds this worker
    // spent running chunks. Compared against the process uptime in a
    // snapshot, it answers whether the one-batch-at-a-time design
    // starves the workers.
    obs::Gauge &busy = obs::Registry::global().gauge(
        "runtime.worker." + std::to_string(index) + ".busy_seconds");
    uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            wake_.wait(lk,
                       [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            ++joinedWorkers_;
            ++activeWorkers_;
        }
        {
            RegionGuard guard;
            auto t0 = std::chrono::steady_clock::now();
            size_t executed = runChunks();
            busy.add(secondsBetween(t0,
                                    std::chrono::steady_clock::now()));
            PoolMetrics::get().chunksWorker.add(executed);
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--activeWorkers_ == 0)
                done_.notify_all();
        }
    }
}

size_t
ThreadPool::runChunks()
{
    size_t executed = 0;
    for (;;) {
        size_t i = nextChunk_.fetch_add(1, std::memory_order_acq_rel);
        if (i >= chunkTotal_)
            return executed;
        ++executed;
        size_t chunk_begin = begin_ + i * grain_;
        size_t chunk_end = std::min(end_, chunk_begin + grain_);
        try {
            (*body_)(chunk_begin, chunk_end);
        } catch (...) {
            std::lock_guard<std::mutex> lk(errorMutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        if (chunksDone_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            chunkTotal_) {
            std::lock_guard<std::mutex> lk(mu_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::runInline(size_t begin, size_t end, size_t grain,
                      size_t chunks,
                      const std::function<void(size_t, size_t)> &body)
{
    // Chunk layout is identical to the pooled path, so every consumer
    // (including parallelReduce's per-chunk partials) sees the same
    // ranges regardless of which path executes them.
    RegionGuard guard;
    for (size_t i = 0; i < chunks; ++i) {
        size_t chunk_begin = begin + i * grain;
        size_t chunk_end = std::min(end, chunk_begin + grain);
        body(chunk_begin, chunk_end);
    }
    PoolMetrics &pm = PoolMetrics::get();
    pm.batchesInline.add(1);
    pm.chunksInline.add(chunks);
}

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)> &body)
{
    if (begin >= end)
        return;
    if (grain == 0)
        grain = 1;
    const size_t chunks = chunkCount(begin, end, grain);

    // Inline paths: sequential pool, retired pool, nested call, or a
    // single chunk.
    if (workers_.empty() || tl_in_parallel_region || chunks == 1 ||
        retired_.load(std::memory_order_acquire)) {
        runInline(begin, end, grain, chunks, body);
        return;
    }

    std::lock_guard<std::mutex> batch(batchMutex_);
    // retire() sets retired_ under batchMutex_, so a stale caller
    // that was blocked on the mutex reliably observes it here.
    if (retired_.load(std::memory_order_acquire)) {
        runInline(begin, end, grain, chunks, body);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        body_ = &body;
        begin_ = begin;
        end_ = end;
        grain_ = grain;
        chunkTotal_ = chunks;
        chunksDone_.store(0, std::memory_order_relaxed);
        nextChunk_.store(0, std::memory_order_relaxed);
        firstError_ = nullptr;
        joinedWorkers_ = 0;
        ++generation_;
    }
    wake_.notify_all();
    auto batch_t0 = std::chrono::steady_clock::now();
    {
        RegionGuard guard;
        auto t0 = batch_t0;
        size_t executed = runChunks();
        PoolMetrics &pm = PoolMetrics::get();
        pm.callerBusy.add(
            secondsBetween(t0, std::chrono::steady_clock::now()));
        pm.chunksCaller.add(executed);
    }
    {
        std::unique_lock<std::mutex> lk(mu_);
        // Wait until every worker has both joined this generation and
        // retired from it. A worker that has not joined yet is parked
        // in wake_.wait and will still run; returning before it joins
        // would let it wake during the next batch's publish and read
        // the batch state unsynchronized (the stale-worker race).
        done_.wait(lk, [&] {
            return joinedWorkers_ == workers_.size() &&
                   activeWorkers_ == 0 &&
                   chunksDone_.load(std::memory_order_acquire) ==
                       chunkTotal_;
        });
        body_ = nullptr;
    }
    {
        PoolMetrics &pm = PoolMetrics::get();
        pm.batches.add(1);
        pm.batchSeconds.observe(
            secondsBetween(batch_t0, std::chrono::steady_clock::now()));
    }
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

namespace {

std::atomic<ThreadPool *> g_pool{nullptr};
std::mutex g_pool_mutex;

/**
 * Pools replaced by setThreads(), kept alive (intentionally leaked)
 * for the process lifetime. Their workers are joined in retire(), so
 * the only cost is the husk object; in exchange a thread that cached
 * a globalPool() reference across setThreads() runs inline instead of
 * dereferencing freed memory. Guarded by g_pool_mutex.
 */
std::vector<ThreadPool *> &
retiredPools()
{
    static std::vector<ThreadPool *> *pools =
        new std::vector<ThreadPool *>();
    return *pools;
}

} // namespace

size_t
configuredThreads()
{
    if (const char *env = std::getenv("NAZAR_THREADS")) {
        char *tail = nullptr;
        unsigned long v = std::strtoul(env, &tail, 10);
        if (tail != env && *tail == '\0' && v >= 1)
            return static_cast<size_t>(v);
    }
    size_t hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
globalPool()
{
    ThreadPool *pool = g_pool.load(std::memory_order_acquire);
    if (pool != nullptr)
        return *pool;
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    pool = g_pool.load(std::memory_order_relaxed);
    if (pool == nullptr) {
        pool = new ThreadPool(configuredThreads());
        g_pool.store(pool, std::memory_order_release);
    }
    return *pool;
}

void
setThreads(size_t threads)
{
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    ThreadPool *old = g_pool.exchange(nullptr, std::memory_order_acq_rel);
    if (old != nullptr) {
        // Drain + stop, then keep the husk alive: see retiredPools().
        old->retire();
        retiredPools().push_back(old);
    }
    g_pool.store(new ThreadPool(threads ? threads : configuredThreads()),
                 std::memory_order_release);
}

size_t
threadCount()
{
    return globalPool().threadCount();
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &body)
{
    globalPool().parallelFor(begin, end, grain, body);
}

} // namespace nazar::runtime
