/**
 * @file
 * Implementation of the end-to-end runner.
 */
#include "runner.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/logging.h"
#include "common/stats.h"
#include "net/channel.h"
#include "net/ingest_client.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"

namespace nazar::sim {

namespace {

/** One device→cloud telemetry message (drift row + sampled input). */
struct UplinkPayload
{
    driftlog::DriftLogEntry entry;
    std::optional<Upload> upload;
};

/**
 * Shard-local accumulator for one chunk of devices: the per-window
 * counters plus the run-wide per-corruption tallies. Shards fill these
 * independently; the runner merges them in ascending device order.
 */
struct ShardMetrics
{
    WindowMetrics window;
    std::map<data::CorruptionType, TypeAccuracy> perCorruption;
};

/** Fold one inference outcome into an accumulator. */
void
accumulate(ShardMetrics &acc, const data::StreamEvent &ev,
           const InferenceOutcome &out)
{
    bool correct = out.predicted == ev.label;
    ++acc.window.events;
    acc.window.correctAll += correct ? 1 : 0;
    if (ev.trueDrift) {
        ++acc.window.driftedEvents;
        acc.window.correctDrifted += correct ? 1 : 0;
        auto &type = acc.perCorruption[ev.corruption];
        type.total += 1;
        type.correct += correct ? 1 : 0;
    } else {
        acc.window.correctClean += correct ? 1 : 0;
    }
    acc.window.flagged += out.driftFlag ? 1 : 0;
}

/** Merge a shard accumulator into the window/run totals. */
void
merge(WindowMetrics &wm,
      std::map<data::CorruptionType, TypeAccuracy> &per_corruption,
      const ShardMetrics &shard)
{
    wm.events += shard.window.events;
    wm.correctAll += shard.window.correctAll;
    wm.driftedEvents += shard.window.driftedEvents;
    wm.correctDrifted += shard.window.correctDrifted;
    wm.correctClean += shard.window.correctClean;
    wm.flagged += shard.window.flagged;
    for (const auto &[type, acc] : shard.perCorruption) {
        auto &total = per_corruption[type];
        total.correct += acc.correct;
        total.total += acc.total;
    }
}

} // namespace

std::string
toString(Strategy strategy)
{
    switch (strategy) {
      case Strategy::kNazar:    return "nazar";
      case Strategy::kAdaptAll: return "adapt-all";
      case Strategy::kNoAdapt:  return "no-adapt";
    }
    return "?";
}

double
WindowMetrics::accuracyAll() const
{
    return events ? static_cast<double>(correctAll) / events : 0.0;
}

double
WindowMetrics::accuracyDrifted() const
{
    return driftedEvents
               ? static_cast<double>(correctDrifted) / driftedEvents
               : 0.0;
}

double
WindowMetrics::accuracyClean() const
{
    size_t clean = events - driftedEvents;
    return clean ? static_cast<double>(correctClean) / clean : 0.0;
}

double
WindowMetrics::detectionRate() const
{
    return events ? static_cast<double>(flagged) / events : 0.0;
}

double
RunResult::avgAccuracyAll(int skip) const
{
    size_t correct = 0, total = 0;
    for (size_t i = static_cast<size_t>(skip); i < windows.size(); ++i) {
        correct += windows[i].correctAll;
        total += windows[i].events;
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

double
RunResult::avgAccuracyDrifted(int skip) const
{
    size_t correct = 0, total = 0;
    for (size_t i = static_cast<size_t>(skip); i < windows.size(); ++i) {
        correct += windows[i].correctDrifted;
        total += windows[i].driftedEvents;
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

double
RunResult::stddevAccuracyAll(int skip) const
{
    std::vector<double> xs;
    for (size_t i = static_cast<size_t>(skip); i < windows.size(); ++i)
        if (windows[i].events)
            xs.push_back(windows[i].accuracyAll());
    return stddev(xs);
}

std::vector<double>
RunResult::cumulativeAccuracyAll() const
{
    std::vector<double> out;
    size_t correct = 0, total = 0;
    for (const auto &w : windows) {
        correct += w.correctAll;
        total += w.events;
        out.push_back(total ? static_cast<double>(correct) / total : 0.0);
    }
    return out;
}

std::vector<double>
RunResult::cumulativeAccuracyDrifted() const
{
    std::vector<double> out;
    size_t correct = 0, total = 0;
    for (const auto &w : windows) {
        correct += w.correctDrifted;
        total += w.driftedEvents;
        out.push_back(total ? static_cast<double>(correct) / total : 0.0);
    }
    return out;
}

Runner::Runner(const data::AppSpec &app, const data::WeatherModel &weather,
               RunnerConfig config, const nn::Classifier *pretrained)
    : app_(app), weather_(weather), config_(std::move(config)),
      pretrained_(pretrained)
{
    NAZAR_CHECK(config_.windows >= 1, "need at least one window");
    if (pretrained_ != nullptr) {
        NAZAR_CHECK(pretrained_->architecture() == config_.arch,
                    "pretrained base architecture must match config");
    }
}

RunResult
Runner::run()
{
    RunResult result;
    Rng rng(config_.seed);

    // ---- Train (or adopt) the base model on clean data ----------------
    Rng data_rng = rng.fork();
    data::Dataset val =
        app_.domain.makeBalancedDataset(app_.valPerClass, data_rng);
    if (pretrained_ != nullptr) {
        base_ = std::make_unique<nn::Classifier>(pretrained_->clone());
    } else {
        base_ = std::make_unique<nn::Classifier>(
            config_.arch, app_.domain.featureDim(),
            app_.domain.numClasses(), config_.seed);
        data::Dataset train = app_.domain.makeBalancedDataset(
            app_.trainPerClass, data_rng);
        base_->trainSupervised(train.x, train.labels, config_.train);
    }
    result.baseCleanAccuracy = base_->accuracy(val.x, val.labels);
    logInfo() << "base " << nn::toString(config_.arch)
              << " clean accuracy: " << result.baseCleanAccuracy;

    // ---- Generate the workload ---------------------------------------
    data::WorkloadGenerator generator(app_, weather_, config_.workload);
    std::vector<data::StreamEvent> events = generator.generate();
    auto windows =
        makeTimeWindows(config_.workload.days, config_.windows);

    // ---- Fleet + cloud state ------------------------------------------
    std::vector<Device> devices;
    devices.reserve(static_cast<size_t>(generator.deviceCount()));
    for (int d = 0; d < generator.deviceCount(); ++d) {
        devices.emplace_back(
            d, app_.locations[static_cast<size_t>(
                   generator.locationOfDevice(d))].name,
            config_.poolCapacity);
    }

    CloudConfig cloud_config = config_.cloud;
    cloud_config.ingestDedupWindow = config_.faults.dedupWindow;
    cloud_config.persist = config_.persist;
    // Remote mode: the cloud lives behind an ingest server; this
    // process holds only a protocol client. The socket itself is
    // reliable — transport faults stay modeled in the uplink channel.
    std::unique_ptr<net::IngestClient> remote;
    std::unique_ptr<Cloud> cloud;
    if (config_.remotePort != 0) {
        NAZAR_CHECK(config_.strategy == Strategy::kNazar,
                    "remote ingest supports only the nazar strategy");
        NAZAR_CHECK(!config_.persist.enabled(),
                    "remote ingest: durability lives with the "
                    "server's cloud, not the runner");
        remote = std::make_unique<net::IngestClient>(
            config_.remotePort, net::FaultConfig{}, "runner",
            config_.remoteReconnect);
    } else {
        cloud = std::make_unique<Cloud>(cloud_config, *base_);
    }
    detect::MspDetector detector(config_.mspThreshold);

    // All device→cloud telemetry and cloud→device version pushes go
    // through one unreliable channel. With the default FaultConfig the
    // channel is a pass-through (no fault RNG, delivery order == send
    // order), keeping this loop bit-identical to the pre-net runner.
    net::Channel<UplinkPayload> uplink(config_.faults, devices.size());
    static obs::Gauge &stale_gauge =
        obs::Registry::global().gauge("fleet.stale_devices");
    int64_t latest_pushed = 0;

    nn::Classifier scratch = base_->clone();
    nn::BnPatch clean_patch = base_->bnPatch();
    // A restarted run resumes calibration from the recovered clean
    // patch instead of the base model's. In remote mode the server
    // hands the recovered patch over in its handshake reply.
    if (remote) {
        if (remote->helloAck().cleanPatchText.has_value()) {
            std::istringstream in(*remote->helloAck().cleanPatchText);
            clean_patch = nn::BnPatch::load(in);
        }
    } else if (cloud->recoveredCleanPatch().has_value()) {
        clean_patch = *cloud->recoveredCleanPatch();
    }
    // Adapt-all: the single continuously adapted model's BN state.
    nn::BnPatch global_patch = clean_patch;

    // Crash-restart: an injected crash "kills" the cloud process; the
    // runner rebuilds it from the state directory with the injector
    // disarmed (the armed site already fired). A latched disk fault
    // follows the same discipline — the environment's fsync gate
    // poisons the incarnation, and the rebuild (with the fault plan
    // cleared, standing in for the operator fixing the disk) recovers
    // from the last durable state. The clean patch is cloud-side
    // state, so it too comes back from disk — the last *committed*
    // cycle's patch, which is exactly what a re-run of an uncommitted
    // cycle must start from.
    static obs::Counter &crash_counter =
        obs::Registry::global().counter("sim.cloud.crashes");
    static obs::Counter &disk_fault_counter =
        obs::Registry::global().counter("sim.cloud.disk_fault_rebuilds");
    int64_t cycles_done = cloud ? cloud->logicalTime() : 0;
    auto rebuild_cloud = [&](bool disk_fault = false) {
        CloudConfig recover_config = cloud_config;
        recover_config.persist.crashAtHit = 0;
        recover_config.persist.fault = {};
        cloud.reset(); // release the WAL handle before reopening
        cloud = std::make_unique<Cloud>(recover_config, *base_);
        clean_patch = cloud->recoveredCleanPatch().has_value()
                          ? *cloud->recoveredCleanPatch()
                          : base_->bnPatch();
        if (disk_fault) {
            ++result.cloudDiskFaults;
            disk_fault_counter.add(1);
        } else {
            ++result.cloudCrashes;
            crash_counter.add(1);
        }
    };

    Rng sample_rng = rng.fork();
    size_t next_event = 0;
    for (const auto &window : windows) {
        NAZAR_SPAN("sim.window");
        WindowMetrics wm;
        wm.window = window.index;
        // Draw this epoch's per-device offline/crash state. Inference
        // is unaffected (it is local); only telemetry and pushes are.
        uplink.beginEpoch();

        // ---- Collect this window's slice of the event stream ---------
        const size_t window_begin = next_event;
        while (next_event < events.size() &&
               window.contains(events[next_event].when.dayIndex()))
            ++next_event;
        const size_t window_count = next_event - window_begin;

        // Upload-sampling decisions are drawn sequentially in event
        // order so the RNG stream is independent of sharding.
        std::vector<char> do_upload(window_count);
        for (size_t i = 0; i < window_count; ++i)
            do_upload[i] =
                sample_rng.bernoulli(config_.uploadSampleRate) ? 1 : 0;

        std::vector<InferenceOutcome> outcomes(window_count);
        switch (config_.strategy) {
          case Strategy::kNazar: {
            // Per-device shards: events of one device always run on
            // one shard, each shard on its own clone of the base
            // weights (BN state is overwritten per inference by the
            // selected version's patch, so a fresh clone is equivalent
            // to the shared scratch model of the sequential path).
            std::vector<std::vector<size_t>> by_device(devices.size());
            for (size_t i = 0; i < window_count; ++i)
                by_device[static_cast<size_t>(
                              events[window_begin + i].deviceId)]
                    .push_back(i);
            const size_t grain = std::max<size_t>(
                1, devices.size() / (4 * runtime::threadCount()));
            ShardMetrics totals = runtime::parallelReduce<ShardMetrics>(
                0, devices.size(), grain, ShardMetrics{},
                [&](size_t dev_begin, size_t dev_end) {
                    ShardMetrics shard;
                    nn::Classifier local = base_->clone();
                    for (size_t d = dev_begin; d < dev_end; ++d) {
                        for (size_t i : by_device[d]) {
                            const data::StreamEvent &ev =
                                events[window_begin + i];
                            outcomes[i] = devices[d].infer(
                                ev, local, clean_patch, detector);
                            accumulate(shard, ev, outcomes[i]);
                        }
                    }
                    return shard;
                },
                [](ShardMetrics acc, ShardMetrics shard) {
                    merge(acc.window, acc.perCorruption, shard);
                    return acc;
                });
            merge(wm, result.perCorruption, totals);
            break;
          }
          case Strategy::kAdaptAll:
          case Strategy::kNoAdapt: {
            // Baselines: one global model (adapted or frozen) — one
            // batched forward pass over the whole window; row r of the
            // batch is bit-identical to a single-row forward.
            if (window_count > 0) {
                scratch.applyBnPatch(global_patch);
                nn::Matrix batch(window_count, app_.domain.featureDim());
                for (size_t i = 0; i < window_count; ++i)
                    batch.setRow(i, events[window_begin + i].features);
                nn::Matrix logits = scratch.logits(batch);
                ShardMetrics totals;
                for (size_t i = 0; i < window_count; ++i) {
                    outcomes[i].predicted =
                        static_cast<int>(logits.argmaxRow(i));
                    outcomes[i].driftFlag =
                        detector.isDrift(logits.rowVec(i));
                    outcomes[i].versionId = 0;
                    accumulate(totals, events[window_begin + i],
                               outcomes[i]);
                }
                merge(wm, result.perCorruption, totals);
            }
            break;
          }
        }

        // ---- Telemetry to the cloud, in event order ------------------
        // Shards buffered their outcomes; emitting in the original
        // event order keeps the fault RNG stream (and, with faults
        // off, the drift log and therefore RCA) bit-identical to the
        // sequential path at any thread count. Every emission rides
        // the unreliable channel; what survives transport is ingested
        // idempotently via per-device sequence numbers.
        for (size_t i = 0; i < window_count; ++i) {
            const data::StreamEvent &ev = events[window_begin + i];
            const InferenceOutcome &out = outcomes[i];
            const Device &device =
                devices[static_cast<size_t>(ev.deviceId)];
            std::optional<Upload> upload;
            if (do_upload[i]) {
                upload = Upload{ev.features, device.contextFor(ev),
                                out.driftFlag};
            }
            uplink.send(static_cast<size_t>(ev.deviceId),
                        UplinkPayload{device.makeLogEntry(ev, out),
                                      std::move(upload)});
        }
        bool cloud_down = false;
        bool disk_down = false;
        uplink.deliver([&](size_t device, uint64_t seq,
                           UplinkPayload &&payload) {
            if (remote) {
                // Same idempotent (device, seq) contract, over the
                // wire; the server's dedup window does the rejecting
                // and the acks reconcile at the next barrier.
                net::WireIngest m;
                m.device = static_cast<int64_t>(device);
                m.seq = seq;
                m.entry = std::move(payload.entry);
                if (payload.upload.has_value()) {
                    persist::UploadRecord up;
                    up.features = std::move(payload.upload->features);
                    up.context = std::move(payload.upload->context);
                    up.driftFlag = payload.upload->driftFlag;
                    m.upload = std::move(up);
                }
                remote->sendIngest(m);
                return;
            }
            if (cloud_down)
                return; // cloud is down; telemetry in flight is lost
            try {
                cloud->ingestFrom(static_cast<int>(device), seq,
                                  payload.entry,
                                  std::move(payload.upload));
            } catch (const persist::CrashInjected &crash) {
                logInfo() << "cloud crash injected at "
                          << crash.site() << " (hit " << crash.hit()
                          << ") during ingest";
                cloud_down = true;
            } catch (const persist::DiskFault &fault) {
                logInfo() << "cloud disk fault latched at "
                          << fault.site() << " during ingest";
                cloud_down = true;
                disk_down = true;
            }
        });
        if (cloud_down)
            rebuild_cloud(disk_down);

        // ---- Window boundary: run the strategy's adaptation ----------
        switch (config_.strategy) {
          case Strategy::kNazar: {
            std::vector<deploy::ModelVersion> new_versions;
            if (remote) {
                // Cycle runs server-side: ship the clean patch, get
                // back the summary plus the published version blobs.
                // requestCycle first drains the window's ingest acks,
                // so the cycle sees every surviving row.
                std::ostringstream patch_text;
                clean_patch.save(patch_text);
                net::RemoteCycle cycle =
                    remote->requestCycle(patch_text.str());
                wm.rootCauses = cycle.done.rootCauses;
                wm.skippedCauses = cycle.done.skippedCauses;
                if (cycle.done.cleanPatchText.has_value()) {
                    std::istringstream in(*cycle.done.cleanPatchText);
                    clean_patch = nn::BnPatch::load(in);
                }
                new_versions.reserve(cycle.versionTexts.size());
                for (const auto &text : cycle.versionTexts) {
                    std::istringstream in(text);
                    new_versions.push_back(
                        deploy::ModelVersion::load(in));
                }
            } else {
            // Fold a completed cycle into the window/run metrics and
            // hand back its versions for pushing.
            auto apply_cycle = [&](CycleResult &&cycle) {
                result.totalRcaSeconds += cycle.rcaSeconds;
                result.totalAdaptSeconds += cycle.adaptSeconds;
                wm.rootCauses = cycle.analysis.rootCauses.size();
                wm.skippedCauses = cycle.skippedCauses;
                if (cycle.newCleanPatch.has_value())
                    clean_patch = *cycle.newCleanPatch;
                return std::move(cycle.newVersions);
            };
            const int64_t pre_cycle_next = cloud->nextVersionId();
            bool cycle_died = false;
            bool cycle_disk_fault = false;
            try {
                new_versions = apply_cycle(cloud->runCycle(clean_patch));
            } catch (const persist::CrashInjected &crash) {
                logInfo() << "cloud crash injected at "
                          << crash.site() << " (hit " << crash.hit()
                          << ") during cycle";
                cycle_died = true;
            } catch (const persist::DiskFault &fault) {
                logInfo() << "cloud disk fault latched at "
                          << fault.site() << " during cycle";
                cycle_died = true;
                cycle_disk_fault = true;
            }
            if (cycle_died) {
                rebuild_cloud(cycle_disk_fault);
                if (cloud->logicalTime() > cycles_done) {
                    // The commit record survived, so the cycle is
                    // durable. The in-memory analysis summary died
                    // with the process; the published versions are
                    // re-read from the recovered registry and pushed
                    // below — devices never acknowledged them.
                    new_versions =
                        cloud->versionsSince(pre_cycle_next - 1);
                } else {
                    // Uncommitted: WAL replay restored the claimed
                    // buffers, and the rebuilt cloud re-runs the cycle
                    // deterministically (the injector is disarmed),
                    // reassigning identical version ids.
                    new_versions =
                        apply_cycle(cloud->runCycle(clean_patch));
                }
            }
            cycles_done = cloud->logicalTime();
            }
            wm.newVersions = new_versions.size();
            // Push each new version over the downlink. A device whose
            // push is lost (offline epoch, downlink drop) keeps
            // serving its newest held patch; the matcher falls back to
            // the clean model when nothing held matches.
            for (const auto &version : new_versions) {
                for (size_t d = 0; d < devices.size(); ++d) {
                    if (!uplink.deliverPush(d))
                        continue;
                    devices[d].pool().install(version);
                    devices[d].noteVersionReceived(version.id);
                }
                latest_pushed = std::max(latest_pushed, version.id);
            }
            if (latest_pushed > 0) {
                for (const auto &device : devices)
                    if (device.staleAgainst(latest_pushed))
                        ++wm.staleDevices;
            }
            stale_gauge.set(static_cast<double>(wm.staleDevices));
            wm.poolSize = devices.empty() ? 0 : devices[0].pool().size();
            if (config_.registryGc && cloud && !devices.empty()) {
                // Safety invariant: every version below the fleet-wide
                // minimum last-seen id has been acknowledged by every
                // device, so no re-push or fetch for it can ever be
                // needed again. (A device that never received a push
                // holds lastSeenVersion 0, which blocks GC entirely.)
                int64_t min_seen = std::numeric_limits<int64_t>::max();
                for (const auto &device : devices)
                    min_seen =
                        std::min(min_seen, device.lastSeenVersion());
                if (min_seen > 0) {
                    try {
                        result.registryGcEvicted +=
                            cloud->gcRegistryBelow(min_seen);
                    } catch (const persist::CrashInjected &) {
                        rebuild_cloud();
                    } catch (const persist::DiskFault &) {
                        rebuild_cloud(/*disk_fault=*/true);
                    }
                }
            }
            break;
          }
          case Strategy::kAdaptAll: {
            // Adapt the single model on every upload of the window,
            // continuing from its current state.
            data::Dataset all = cloud->allUploads();
            try {
                cloud->flush();
            } catch (const persist::CrashInjected &) {
                rebuild_cloud();
                cloud->flush(); // idempotent: replay already cleared
                                // or restored, and this clears again
            } catch (const persist::DiskFault &) {
                rebuild_cloud(/*disk_fault=*/true);
                cloud->flush();
            }
            if (all.size() >= cloud_config.minAdaptSamples) {
                NAZAR_SPAN_BEGIN(adapt_span, "sim.adapt_all");
                adapt::TentAdapter tent(cloud_config.adapt);
                nn::Classifier model = base_->clone();
                model.applyBnPatch(global_patch);
                tent.adapt(model, all.x);
                global_patch = model.bnPatch();
                result.totalAdaptSeconds += adapt_span.stop();
            }
            break;
          }
          case Strategy::kNoAdapt:
            // Telemetry still arrives; nothing is done with it.
            try {
                cloud->flush();
            } catch (const persist::CrashInjected &) {
                rebuild_cloud();
                cloud->flush();
            } catch (const persist::DiskFault &) {
                rebuild_cloud(/*disk_fault=*/true);
                cloud->flush();
            }
            break;
        }

        result.windows.push_back(wm);
    }
    // Leave a clean state directory behind: one final snapshot, so a
    // later process (or `nazar_ops recover`) starts from the snapshot
    // instead of a long WAL replay.
    if (config_.persist.enabled()) {
        try {
            cloud->checkpoint();
        } catch (const persist::CrashInjected &) {
            rebuild_cloud();
            cloud->checkpoint();
        } catch (const persist::DiskFault &) {
            rebuild_cloud(/*disk_fault=*/true);
            cloud->checkpoint();
        }
    }
    if (remote) {
        // Orderly end of session; the ByeAck tallies reconcile what
        // the server accepted against what this client sent.
        net::WireByeAck bye = remote->bye();
        logInfo() << "remote cloud: ingested " << bye.totalIngested
                  << ", dedup hits " << bye.dedupHits;
    }
    // Anything still queued or delayed past the last window is lost;
    // account for it so `net.sent` always reconciles against
    // delivered + shed + gave-up + undelivered.
    uplink.shutdown();
    return result;
}

} // namespace nazar::sim
