/**
 * @file
 * Implementation of the end-to-end runner.
 */
#include "runner.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "common/logging.h"
#include "common/stats.h"

namespace nazar::sim {

std::string
toString(Strategy strategy)
{
    switch (strategy) {
      case Strategy::kNazar:    return "nazar";
      case Strategy::kAdaptAll: return "adapt-all";
      case Strategy::kNoAdapt:  return "no-adapt";
    }
    return "?";
}

double
WindowMetrics::accuracyAll() const
{
    return events ? static_cast<double>(correctAll) / events : 0.0;
}

double
WindowMetrics::accuracyDrifted() const
{
    return driftedEvents
               ? static_cast<double>(correctDrifted) / driftedEvents
               : 0.0;
}

double
WindowMetrics::accuracyClean() const
{
    size_t clean = events - driftedEvents;
    return clean ? static_cast<double>(correctClean) / clean : 0.0;
}

double
WindowMetrics::detectionRate() const
{
    return events ? static_cast<double>(flagged) / events : 0.0;
}

double
RunResult::avgAccuracyAll(int skip) const
{
    size_t correct = 0, total = 0;
    for (size_t i = static_cast<size_t>(skip); i < windows.size(); ++i) {
        correct += windows[i].correctAll;
        total += windows[i].events;
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

double
RunResult::avgAccuracyDrifted(int skip) const
{
    size_t correct = 0, total = 0;
    for (size_t i = static_cast<size_t>(skip); i < windows.size(); ++i) {
        correct += windows[i].correctDrifted;
        total += windows[i].driftedEvents;
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

double
RunResult::stddevAccuracyAll(int skip) const
{
    std::vector<double> xs;
    for (size_t i = static_cast<size_t>(skip); i < windows.size(); ++i)
        if (windows[i].events)
            xs.push_back(windows[i].accuracyAll());
    return stddev(xs);
}

std::vector<double>
RunResult::cumulativeAccuracyAll() const
{
    std::vector<double> out;
    size_t correct = 0, total = 0;
    for (const auto &w : windows) {
        correct += w.correctAll;
        total += w.events;
        out.push_back(total ? static_cast<double>(correct) / total : 0.0);
    }
    return out;
}

std::vector<double>
RunResult::cumulativeAccuracyDrifted() const
{
    std::vector<double> out;
    size_t correct = 0, total = 0;
    for (const auto &w : windows) {
        correct += w.correctDrifted;
        total += w.driftedEvents;
        out.push_back(total ? static_cast<double>(correct) / total : 0.0);
    }
    return out;
}

Runner::Runner(const data::AppSpec &app, const data::WeatherModel &weather,
               RunnerConfig config, const nn::Classifier *pretrained)
    : app_(app), weather_(weather), config_(std::move(config)),
      pretrained_(pretrained)
{
    NAZAR_CHECK(config_.windows >= 1, "need at least one window");
    if (pretrained_ != nullptr) {
        NAZAR_CHECK(pretrained_->architecture() == config_.arch,
                    "pretrained base architecture must match config");
    }
}

RunResult
Runner::run()
{
    RunResult result;
    Rng rng(config_.seed);

    // ---- Train (or adopt) the base model on clean data ----------------
    Rng data_rng = rng.fork();
    data::Dataset val =
        app_.domain.makeBalancedDataset(app_.valPerClass, data_rng);
    if (pretrained_ != nullptr) {
        base_ = std::make_unique<nn::Classifier>(pretrained_->clone());
    } else {
        base_ = std::make_unique<nn::Classifier>(
            config_.arch, app_.domain.featureDim(),
            app_.domain.numClasses(), config_.seed);
        data::Dataset train = app_.domain.makeBalancedDataset(
            app_.trainPerClass, data_rng);
        base_->trainSupervised(train.x, train.labels, config_.train);
    }
    result.baseCleanAccuracy = base_->accuracy(val.x, val.labels);
    logInfo() << "base " << nn::toString(config_.arch)
              << " clean accuracy: " << result.baseCleanAccuracy;

    // ---- Generate the workload ---------------------------------------
    data::WorkloadGenerator generator(app_, weather_, config_.workload);
    std::vector<data::StreamEvent> events = generator.generate();
    auto windows =
        makeTimeWindows(config_.workload.days, config_.windows);

    // ---- Fleet + cloud state ------------------------------------------
    std::vector<Device> devices;
    devices.reserve(static_cast<size_t>(generator.deviceCount()));
    for (int d = 0; d < generator.deviceCount(); ++d) {
        devices.emplace_back(
            d, app_.locations[static_cast<size_t>(
                   generator.locationOfDevice(d))].name,
            config_.poolCapacity);
    }

    CloudConfig cloud_config = config_.cloud;
    Cloud cloud(cloud_config, *base_);
    detect::MspDetector detector(config_.mspThreshold);

    nn::Classifier scratch = base_->clone();
    nn::BnPatch clean_patch = base_->bnPatch();
    // Adapt-all: the single continuously adapted model's BN state.
    nn::BnPatch global_patch = clean_patch;

    Rng sample_rng = rng.fork();
    size_t next_event = 0;
    for (const auto &window : windows) {
        WindowMetrics wm;
        wm.window = window.index;

        while (next_event < events.size() &&
               window.contains(events[next_event].when.dayIndex())) {
            const data::StreamEvent &ev = events[next_event];
            ++next_event;
            Device &device = devices[static_cast<size_t>(ev.deviceId)];

            InferenceOutcome out;
            switch (config_.strategy) {
              case Strategy::kNazar:
                out = device.infer(ev, scratch, clean_patch, detector);
                break;
              case Strategy::kAdaptAll:
              case Strategy::kNoAdapt: {
                // Baselines: one global model (adapted or frozen).
                scratch.applyBnPatch(global_patch);
                nn::Matrix logits = scratch.logits(
                    nn::Matrix::rowVector(ev.features));
                out.predicted = static_cast<int>(logits.argmaxRow(0));
                out.driftFlag = detector.isDrift(logits.rowVec(0));
                out.versionId = 0;
                break;
              }
            }

            // Metrics.
            bool correct = out.predicted == ev.label;
            ++wm.events;
            wm.correctAll += correct ? 1 : 0;
            if (ev.trueDrift) {
                ++wm.driftedEvents;
                wm.correctDrifted += correct ? 1 : 0;
                auto &acc = result.perCorruption[ev.corruption];
                acc.total += 1;
                acc.correct += correct ? 1 : 0;
            } else {
                wm.correctClean += correct ? 1 : 0;
            }
            wm.flagged += out.driftFlag ? 1 : 0;

            // Telemetry to the cloud.
            std::optional<Upload> upload;
            if (sample_rng.bernoulli(config_.uploadSampleRate)) {
                upload = Upload{ev.features, device.contextFor(ev),
                                out.driftFlag};
            }
            cloud.ingest(device.makeLogEntry(ev, out), std::move(upload));
        }

        // ---- Window boundary: run the strategy's adaptation ----------
        switch (config_.strategy) {
          case Strategy::kNazar: {
            CycleResult cycle = cloud.runCycle(clean_patch);
            result.totalRcaSeconds += cycle.rcaSeconds;
            result.totalAdaptSeconds += cycle.adaptSeconds;
            wm.rootCauses = cycle.analysis.rootCauses.size();
            wm.newVersions = cycle.newVersions.size();
            if (cycle.newCleanPatch.has_value())
                clean_patch = *cycle.newCleanPatch;
            for (const auto &version : cycle.newVersions)
                for (auto &device : devices)
                    device.pool().install(version);
            wm.poolSize = devices.empty() ? 0 : devices[0].pool().size();
            break;
          }
          case Strategy::kAdaptAll: {
            // Adapt the single model on every upload of the window,
            // continuing from its current state.
            data::Dataset all = cloud.allUploads();
            cloud.flush();
            if (all.size() >= cloud_config.minAdaptSamples) {
                auto t0 = std::chrono::steady_clock::now();
                adapt::TentAdapter tent(cloud_config.adapt);
                nn::Classifier model = base_->clone();
                model.applyBnPatch(global_patch);
                tent.adapt(model, all.x);
                global_patch = model.bnPatch();
                result.totalAdaptSeconds +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            }
            break;
          }
          case Strategy::kNoAdapt:
            cloud.flush(); // telemetry still arrives; nothing is done
            break;
        }

        result.windows.push_back(wm);
    }
    return result;
}

} // namespace nazar::sim
