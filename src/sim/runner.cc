/**
 * @file
 * Implementation of the end-to-end runner.
 */
#include "runner.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"
#include "common/stats.h"
#include "net/channel.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"

namespace nazar::sim {

namespace {

/** One device→cloud telemetry message (drift row + sampled input). */
struct UplinkPayload
{
    driftlog::DriftLogEntry entry;
    std::optional<Upload> upload;
};

/**
 * Shard-local accumulator for one chunk of devices: the per-window
 * counters plus the run-wide per-corruption tallies. Shards fill these
 * independently; the runner merges them in ascending device order.
 */
struct ShardMetrics
{
    WindowMetrics window;
    std::map<data::CorruptionType, TypeAccuracy> perCorruption;
};

/** Fold one inference outcome into an accumulator. */
void
accumulate(ShardMetrics &acc, const data::StreamEvent &ev,
           const InferenceOutcome &out)
{
    bool correct = out.predicted == ev.label;
    ++acc.window.events;
    acc.window.correctAll += correct ? 1 : 0;
    if (ev.trueDrift) {
        ++acc.window.driftedEvents;
        acc.window.correctDrifted += correct ? 1 : 0;
        auto &type = acc.perCorruption[ev.corruption];
        type.total += 1;
        type.correct += correct ? 1 : 0;
    } else {
        acc.window.correctClean += correct ? 1 : 0;
    }
    acc.window.flagged += out.driftFlag ? 1 : 0;
}

/** Merge a shard accumulator into the window/run totals. */
void
merge(WindowMetrics &wm,
      std::map<data::CorruptionType, TypeAccuracy> &per_corruption,
      const ShardMetrics &shard)
{
    wm.events += shard.window.events;
    wm.correctAll += shard.window.correctAll;
    wm.driftedEvents += shard.window.driftedEvents;
    wm.correctDrifted += shard.window.correctDrifted;
    wm.correctClean += shard.window.correctClean;
    wm.flagged += shard.window.flagged;
    for (const auto &[type, acc] : shard.perCorruption) {
        auto &total = per_corruption[type];
        total.correct += acc.correct;
        total.total += acc.total;
    }
}

} // namespace

std::string
toString(Strategy strategy)
{
    switch (strategy) {
      case Strategy::kNazar:    return "nazar";
      case Strategy::kAdaptAll: return "adapt-all";
      case Strategy::kNoAdapt:  return "no-adapt";
    }
    return "?";
}

double
WindowMetrics::accuracyAll() const
{
    return events ? static_cast<double>(correctAll) / events : 0.0;
}

double
WindowMetrics::accuracyDrifted() const
{
    return driftedEvents
               ? static_cast<double>(correctDrifted) / driftedEvents
               : 0.0;
}

double
WindowMetrics::accuracyClean() const
{
    size_t clean = events - driftedEvents;
    return clean ? static_cast<double>(correctClean) / clean : 0.0;
}

double
WindowMetrics::detectionRate() const
{
    return events ? static_cast<double>(flagged) / events : 0.0;
}

double
RunResult::avgAccuracyAll(int skip) const
{
    size_t correct = 0, total = 0;
    for (size_t i = static_cast<size_t>(skip); i < windows.size(); ++i) {
        correct += windows[i].correctAll;
        total += windows[i].events;
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

double
RunResult::avgAccuracyDrifted(int skip) const
{
    size_t correct = 0, total = 0;
    for (size_t i = static_cast<size_t>(skip); i < windows.size(); ++i) {
        correct += windows[i].correctDrifted;
        total += windows[i].driftedEvents;
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

double
RunResult::stddevAccuracyAll(int skip) const
{
    std::vector<double> xs;
    for (size_t i = static_cast<size_t>(skip); i < windows.size(); ++i)
        if (windows[i].events)
            xs.push_back(windows[i].accuracyAll());
    return stddev(xs);
}

std::vector<double>
RunResult::cumulativeAccuracyAll() const
{
    std::vector<double> out;
    size_t correct = 0, total = 0;
    for (const auto &w : windows) {
        correct += w.correctAll;
        total += w.events;
        out.push_back(total ? static_cast<double>(correct) / total : 0.0);
    }
    return out;
}

std::vector<double>
RunResult::cumulativeAccuracyDrifted() const
{
    std::vector<double> out;
    size_t correct = 0, total = 0;
    for (const auto &w : windows) {
        correct += w.correctDrifted;
        total += w.driftedEvents;
        out.push_back(total ? static_cast<double>(correct) / total : 0.0);
    }
    return out;
}

Runner::Runner(const data::AppSpec &app, const data::WeatherModel &weather,
               RunnerConfig config, const nn::Classifier *pretrained)
    : app_(app), weather_(weather), config_(std::move(config)),
      pretrained_(pretrained)
{
    NAZAR_CHECK(config_.windows >= 1, "need at least one window");
    if (pretrained_ != nullptr) {
        NAZAR_CHECK(pretrained_->architecture() == config_.arch,
                    "pretrained base architecture must match config");
    }
}

RunResult
Runner::run()
{
    RunResult result;
    Rng rng(config_.seed);

    // ---- Train (or adopt) the base model on clean data ----------------
    Rng data_rng = rng.fork();
    data::Dataset val =
        app_.domain.makeBalancedDataset(app_.valPerClass, data_rng);
    if (pretrained_ != nullptr) {
        base_ = std::make_unique<nn::Classifier>(pretrained_->clone());
    } else {
        base_ = std::make_unique<nn::Classifier>(
            config_.arch, app_.domain.featureDim(),
            app_.domain.numClasses(), config_.seed);
        data::Dataset train = app_.domain.makeBalancedDataset(
            app_.trainPerClass, data_rng);
        base_->trainSupervised(train.x, train.labels, config_.train);
    }
    result.baseCleanAccuracy = base_->accuracy(val.x, val.labels);
    logInfo() << "base " << nn::toString(config_.arch)
              << " clean accuracy: " << result.baseCleanAccuracy;

    // ---- Generate the workload ---------------------------------------
    data::WorkloadGenerator generator(app_, weather_, config_.workload);
    std::vector<data::StreamEvent> events = generator.generate();
    auto windows =
        makeTimeWindows(config_.workload.days, config_.windows);

    // ---- Fleet + cloud state ------------------------------------------
    std::vector<Device> devices;
    devices.reserve(static_cast<size_t>(generator.deviceCount()));
    for (int d = 0; d < generator.deviceCount(); ++d) {
        devices.emplace_back(
            d, app_.locations[static_cast<size_t>(
                   generator.locationOfDevice(d))].name,
            config_.poolCapacity);
    }

    CloudConfig cloud_config = config_.cloud;
    cloud_config.ingestDedupWindow = config_.faults.dedupWindow;
    Cloud cloud(cloud_config, *base_);
    detect::MspDetector detector(config_.mspThreshold);

    // All device→cloud telemetry and cloud→device version pushes go
    // through one unreliable channel. With the default FaultConfig the
    // channel is a pass-through (no fault RNG, delivery order == send
    // order), keeping this loop bit-identical to the pre-net runner.
    net::Channel<UplinkPayload> uplink(config_.faults, devices.size());
    static obs::Gauge &stale_gauge =
        obs::Registry::global().gauge("fleet.stale_devices");
    int64_t latest_pushed = 0;

    nn::Classifier scratch = base_->clone();
    nn::BnPatch clean_patch = base_->bnPatch();
    // Adapt-all: the single continuously adapted model's BN state.
    nn::BnPatch global_patch = clean_patch;

    Rng sample_rng = rng.fork();
    size_t next_event = 0;
    for (const auto &window : windows) {
        NAZAR_SPAN("sim.window");
        WindowMetrics wm;
        wm.window = window.index;
        // Draw this epoch's per-device offline/crash state. Inference
        // is unaffected (it is local); only telemetry and pushes are.
        uplink.beginEpoch();

        // ---- Collect this window's slice of the event stream ---------
        const size_t window_begin = next_event;
        while (next_event < events.size() &&
               window.contains(events[next_event].when.dayIndex()))
            ++next_event;
        const size_t window_count = next_event - window_begin;

        // Upload-sampling decisions are drawn sequentially in event
        // order so the RNG stream is independent of sharding.
        std::vector<char> do_upload(window_count);
        for (size_t i = 0; i < window_count; ++i)
            do_upload[i] =
                sample_rng.bernoulli(config_.uploadSampleRate) ? 1 : 0;

        std::vector<InferenceOutcome> outcomes(window_count);
        switch (config_.strategy) {
          case Strategy::kNazar: {
            // Per-device shards: events of one device always run on
            // one shard, each shard on its own clone of the base
            // weights (BN state is overwritten per inference by the
            // selected version's patch, so a fresh clone is equivalent
            // to the shared scratch model of the sequential path).
            std::vector<std::vector<size_t>> by_device(devices.size());
            for (size_t i = 0; i < window_count; ++i)
                by_device[static_cast<size_t>(
                              events[window_begin + i].deviceId)]
                    .push_back(i);
            const size_t grain = std::max<size_t>(
                1, devices.size() / (4 * runtime::threadCount()));
            ShardMetrics totals = runtime::parallelReduce<ShardMetrics>(
                0, devices.size(), grain, ShardMetrics{},
                [&](size_t dev_begin, size_t dev_end) {
                    ShardMetrics shard;
                    nn::Classifier local = base_->clone();
                    for (size_t d = dev_begin; d < dev_end; ++d) {
                        for (size_t i : by_device[d]) {
                            const data::StreamEvent &ev =
                                events[window_begin + i];
                            outcomes[i] = devices[d].infer(
                                ev, local, clean_patch, detector);
                            accumulate(shard, ev, outcomes[i]);
                        }
                    }
                    return shard;
                },
                [](ShardMetrics acc, ShardMetrics shard) {
                    merge(acc.window, acc.perCorruption, shard);
                    return acc;
                });
            merge(wm, result.perCorruption, totals);
            break;
          }
          case Strategy::kAdaptAll:
          case Strategy::kNoAdapt: {
            // Baselines: one global model (adapted or frozen) — one
            // batched forward pass over the whole window; row r of the
            // batch is bit-identical to a single-row forward.
            if (window_count > 0) {
                scratch.applyBnPatch(global_patch);
                nn::Matrix batch(window_count, app_.domain.featureDim());
                for (size_t i = 0; i < window_count; ++i)
                    batch.setRow(i, events[window_begin + i].features);
                nn::Matrix logits = scratch.logits(batch);
                ShardMetrics totals;
                for (size_t i = 0; i < window_count; ++i) {
                    outcomes[i].predicted =
                        static_cast<int>(logits.argmaxRow(i));
                    outcomes[i].driftFlag =
                        detector.isDrift(logits.rowVec(i));
                    outcomes[i].versionId = 0;
                    accumulate(totals, events[window_begin + i],
                               outcomes[i]);
                }
                merge(wm, result.perCorruption, totals);
            }
            break;
          }
        }

        // ---- Telemetry to the cloud, in event order ------------------
        // Shards buffered their outcomes; emitting in the original
        // event order keeps the fault RNG stream (and, with faults
        // off, the drift log and therefore RCA) bit-identical to the
        // sequential path at any thread count. Every emission rides
        // the unreliable channel; what survives transport is ingested
        // idempotently via per-device sequence numbers.
        for (size_t i = 0; i < window_count; ++i) {
            const data::StreamEvent &ev = events[window_begin + i];
            const InferenceOutcome &out = outcomes[i];
            const Device &device =
                devices[static_cast<size_t>(ev.deviceId)];
            std::optional<Upload> upload;
            if (do_upload[i]) {
                upload = Upload{ev.features, device.contextFor(ev),
                                out.driftFlag};
            }
            uplink.send(static_cast<size_t>(ev.deviceId),
                        UplinkPayload{device.makeLogEntry(ev, out),
                                      std::move(upload)});
        }
        uplink.deliver([&](size_t device, uint64_t seq,
                           UplinkPayload &&payload) {
            cloud.ingestFrom(static_cast<int>(device), seq,
                             payload.entry, std::move(payload.upload));
        });

        // ---- Window boundary: run the strategy's adaptation ----------
        switch (config_.strategy) {
          case Strategy::kNazar: {
            CycleResult cycle = cloud.runCycle(clean_patch);
            result.totalRcaSeconds += cycle.rcaSeconds;
            result.totalAdaptSeconds += cycle.adaptSeconds;
            wm.rootCauses = cycle.analysis.rootCauses.size();
            wm.newVersions = cycle.newVersions.size();
            if (cycle.newCleanPatch.has_value())
                clean_patch = *cycle.newCleanPatch;
            // Push each new version over the downlink. A device whose
            // push is lost (offline epoch, downlink drop) keeps
            // serving its newest held patch; the matcher falls back to
            // the clean model when nothing held matches.
            for (const auto &version : cycle.newVersions) {
                for (size_t d = 0; d < devices.size(); ++d) {
                    if (!uplink.deliverPush(d))
                        continue;
                    devices[d].pool().install(version);
                    devices[d].noteVersionReceived(version.id);
                }
                latest_pushed = std::max(latest_pushed, version.id);
            }
            if (latest_pushed > 0) {
                for (const auto &device : devices)
                    if (device.staleAgainst(latest_pushed))
                        ++wm.staleDevices;
            }
            stale_gauge.set(static_cast<double>(wm.staleDevices));
            wm.poolSize = devices.empty() ? 0 : devices[0].pool().size();
            break;
          }
          case Strategy::kAdaptAll: {
            // Adapt the single model on every upload of the window,
            // continuing from its current state.
            data::Dataset all = cloud.allUploads();
            cloud.flush();
            if (all.size() >= cloud_config.minAdaptSamples) {
                NAZAR_SPAN_BEGIN(adapt_span, "sim.adapt_all");
                adapt::TentAdapter tent(cloud_config.adapt);
                nn::Classifier model = base_->clone();
                model.applyBnPatch(global_patch);
                tent.adapt(model, all.x);
                global_patch = model.bnPatch();
                result.totalAdaptSeconds += adapt_span.stop();
            }
            break;
          }
          case Strategy::kNoAdapt:
            cloud.flush(); // telemetry still arrives; nothing is done
            break;
        }

        result.windows.push_back(wm);
    }
    // Anything still queued or delayed past the last window is lost;
    // account for it so `net.sent` always reconciles against
    // delivered + shed + gave-up + undelivered.
    uplink.shutdown();
    return result;
}

} // namespace nazar::sim
