/**
 * @file
 * End-to-end deployment simulation (paper §5.7): streams the workload
 * through a device fleet, runs the Nazar loop (or a baseline strategy)
 * at analysis-window boundaries, and collects the metrics the paper's
 * Figures 8 and 9 report.
 */
#ifndef NAZAR_SIM_RUNNER_H
#define NAZAR_SIM_RUNNER_H

#include <map>

#include "data/stream.h"
#include "net/fault.h"
#include "sim/cloud.h"
#include "sim/device.h"

namespace nazar::sim {

/** Deployment strategies compared throughout the evaluation (§5.2). */
enum class Strategy {
    kNazar,    ///< Full loop: detect -> RCA -> by-cause adaptation.
    kAdaptAll, ///< One model continuously adapted on all inputs.
    kNoAdapt,  ///< The pretrained model, never adapted.
};

/** Printable strategy name. */
std::string toString(Strategy strategy);

/** End-to-end run configuration. */
struct RunnerConfig
{
    nn::Architecture arch = nn::Architecture::kResNet50;
    Strategy strategy = Strategy::kNazar;
    int windows = 8;               ///< Analysis windows (paper default).
    double uploadSampleRate = 0.25; ///< Fraction of inputs uploaded.
    double mspThreshold = 0.9;     ///< On-device detector threshold.
    size_t poolCapacity = 0;       ///< Device pool cap (0 = unbounded).
    /**
     * Device↔cloud transport faults. The default (all zeros) selects
     * the pass-through channel and is bit-identical to a run without
     * the net layer; with faults on, the run is reproducible from
     * (seed, faults.seed) at any NAZAR_THREADS setting.
     */
    net::FaultConfig faults;
    /**
     * Cloud-state durability. Off by default (empty dir); when on, the
     * cloud WALs every ingest and cycle commit into persist.dir and
     * the runner survives injected cloud crashes by rebuilding the
     * cloud from disk (see RunResult::cloudCrashes).
     */
    persist::PersistConfig persist;
    /**
     * After each window's version pushes, garbage-collect registry
     * versions below every device's last-seen version (they can never
     * be re-pushed or fetched again). Off by default: runs with GC
     * off are bit-identical to runs before GC existed.
     */
    bool registryGc = false;
    /**
     * When nonzero, telemetry is ingested by a networked cloud — an
     * ingest server (server/ingest_server.h) on 127.0.0.1:remotePort —
     * instead of an in-process Cloud, and analysis cycles run
     * server-side (kCycleRequest/kCycleDone). Only the kNazar strategy
     * supports this mode, and `persist` must stay off here: durability
     * and dedup configuration live with the server's cloud. 0 (the
     * default) keeps everything in-process and bit-identical to
     * before the net layer existed.
     */
    uint16_t remotePort = 0;
    /**
     * Session-layer recovery for remote mode: with `enabled`, the
     * runner's IngestClient rides through a server crash–restart
     * (reconnect, resume, retransmit) instead of aborting the run.
     * Ignored when remotePort == 0.
     */
    net::ReconnectPolicy remoteReconnect;
    CloudConfig cloud;
    nn::TrainConfig train;         ///< Base-model training.
    data::WorkloadConfig workload;
    uint64_t seed = 17;
};

/** Per-window metrics. */
struct WindowMetrics
{
    int window = 0;
    size_t events = 0;
    size_t driftedEvents = 0;
    size_t correctAll = 0;
    size_t correctDrifted = 0;
    size_t correctClean = 0;
    size_t flagged = 0;      ///< Drift-flagged inferences.
    size_t rootCauses = 0;   ///< Causes found at the window boundary.
    size_t newVersions = 0;  ///< Versions produced at the boundary.
    size_t poolSize = 0;     ///< Device 0's pool size after the boundary.
    size_t staleDevices = 0; ///< Devices that missed ≥1 version push.
    /** Causes RCA found but adaptation skipped (uploads sampled out or
     *  lost below the adapt floor) at this window's boundary. */
    size_t skippedCauses = 0;

    double accuracyAll() const;
    double accuracyDrifted() const;
    double accuracyClean() const;
    double detectionRate() const;
};

/** Per-corruption-type accuracy accumulator. */
struct TypeAccuracy
{
    size_t correct = 0;
    size_t total = 0;

    double
    accuracy() const
    {
        return total ? static_cast<double>(correct) / total : 0.0;
    }
};

/** Full-run results. */
struct RunResult
{
    std::vector<WindowMetrics> windows;
    std::map<data::CorruptionType, TypeAccuracy> perCorruption;
    double baseCleanAccuracy = 0.0; ///< Validation accuracy pre-deploy.
    double totalRcaSeconds = 0.0;
    double totalAdaptSeconds = 0.0;
    /** Injected cloud crashes survived by rebuilding from disk. */
    size_t cloudCrashes = 0;
    /** Latched disk faults survived by rebuilding from disk. */
    size_t cloudDiskFaults = 0;
    /** Registry versions evicted by per-window GC. */
    size_t registryGcEvicted = 0;

    /** Mean accuracy over all events, skipping @p skip lead windows
     *  (the paper averages over the last 7 of 8 windows). */
    double avgAccuracyAll(int skip = 1) const;
    double avgAccuracyDrifted(int skip = 1) const;

    /** Std-dev of the per-window all-data accuracy (skipping lead). */
    double stddevAccuracyAll(int skip = 1) const;

    /** Cumulative accuracy trace after each window (Fig 8d). */
    std::vector<double> cumulativeAccuracyAll() const;
    std::vector<double> cumulativeAccuracyDrifted() const;
};

/** Runs one strategy over one workload. */
class Runner
{
  public:
    /**
     * @param app        Application spec (domain + geography).
     * @param weather    Weather model covering the workload period.
     * @param config     Run configuration.
     * @param pretrained Optional pre-trained base model to clone
     *                   instead of training one (the architecture must
     *                   match config.arch). Benchmarks use this to
     *                   share one base across strategy comparisons.
     */
    Runner(const data::AppSpec &app, const data::WeatherModel &weather,
           RunnerConfig config,
           const nn::Classifier *pretrained = nullptr);

    /** Execute the full deployment period. */
    RunResult run();

    /** The trained base model (valid after run()). */
    const nn::Classifier *baseModel() const { return base_.get(); }

  private:
    const data::AppSpec &app_;
    const data::WeatherModel &weather_;
    RunnerConfig config_;
    const nn::Classifier *pretrained_;
    std::unique_ptr<nn::Classifier> base_;
};

} // namespace nazar::sim

#endif // NAZAR_SIM_RUNNER_H
