/**
 * @file
 * Simulated mobile device (paper §3.1-§3.2, §3.4 device side).
 *
 * A device holds a pool of deployed BN-patch model versions, runs
 * inference with on-device version selection, applies the lightweight
 * MSP drift detector to every inference, and emits drift-log entries
 * (plus sampled raw inputs) to the cloud.
 */
#ifndef NAZAR_SIM_DEVICE_H
#define NAZAR_SIM_DEVICE_H

#include <string>

#include "data/stream.h"
#include "deploy/matcher.h"
#include "deploy/model_pool.h"
#include "detect/scores.h"
#include "driftlog/drift_log.h"
#include "nn/classifier.h"

namespace nazar::sim {

/** Outcome of one on-device inference. */
struct InferenceOutcome
{
    int predicted = -1;      ///< Predicted class.
    double msp = 0.0;        ///< Confidence score of the prediction.
    bool driftFlag = false;  ///< On-device detector verdict.
    int64_t versionId = 0;   ///< Model version used (0 == clean).
};

/** One simulated device. */
class Device
{
  public:
    /**
     * @param id            Global device id.
     * @param location_name Name of the device's location.
     * @param pool_capacity Model-pool capacity (0 = unbounded).
     */
    Device(int id, std::string location_name, size_t pool_capacity);

    int id() const { return id_; }
    const std::string &locationName() const { return locationName_; }

    /** The device's model pool (receives pushed versions). */
    deploy::ModelPool &pool() { return pool_; }
    const deploy::ModelPool &pool() const { return pool_; }

    /**
     * Record that a pushed version reached this device. A device that
     * misses a push (offline epoch, downlink drop) keeps serving its
     * newest held patch — the matcher falls back to the clean model
     * when nothing held matches — and reports as stale until a later
     * push lands.
     */
    void noteVersionReceived(int64_t id);

    /** Newest version id ever pushed successfully to this device. */
    int64_t lastSeenVersion() const { return lastSeenVersion_; }

    /** True when this device missed at least one newer push. */
    bool
    staleAgainst(int64_t latest_published) const
    {
        return lastSeenVersion_ < latest_published;
    }

    /**
     * Current context attributes for an input (metadata the device
     * knows at inference time), matching drift-log column names.
     */
    rca::AttributeSet contextFor(const data::StreamEvent &event) const;

    /**
     * Run one inference: select a version, apply its patch to the
     * scratch model, predict, and run drift detection.
     *
     * @param event       The arriving input.
     * @param scratch     A model holding the base weights; its BN state
     *                    is overwritten by the selected version's patch.
     * @param clean_patch BN patch of the current clean model.
     * @param detector    The on-device MSP detector.
     */
    InferenceOutcome infer(const data::StreamEvent &event,
                           nn::Classifier &scratch,
                           const nn::BnPatch &clean_patch,
                           const detect::MspDetector &detector) const;

    /** Build the drift-log entry for an inference. */
    driftlog::DriftLogEntry makeLogEntry(const data::StreamEvent &event,
                                         const InferenceOutcome &out) const;

  private:
    int id_;
    std::string locationName_;
    deploy::ModelPool pool_;
    int64_t lastSeenVersion_ = 0;
};

} // namespace nazar::sim

#endif // NAZAR_SIM_DEVICE_H
