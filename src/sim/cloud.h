/**
 * @file
 * The Nazar cloud side (paper §3.3-§3.4, §4): drift-log ingestion,
 * periodic root-cause analysis, and by-cause adaptation producing
 * deployable model versions.
 */
#ifndef NAZAR_SIM_CLOUD_H
#define NAZAR_SIM_CLOUD_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "adapt/tent.h"
#include "data/dataset.h"
#include "deploy/model_version.h"
#include "deploy/registry.h"
#include "driftlog/drift_log.h"
#include "persist/cloud_persist.h"
#include "rca/analyzer.h"

namespace nazar::sim {

/** A sampled raw-input upload accompanying a drift-log entry. */
struct Upload
{
    std::vector<double> features;
    rca::AttributeSet context; ///< Device context at inference time.
    bool driftFlag = false;    ///< The on-device detector's verdict.
};

/** One sequenced ingest attempt, as batched by the ingest server. */
struct IngestMessage
{
    int device = 0;
    uint64_t seq = 0;
    driftlog::DriftLogEntry entry;
    std::optional<Upload> upload;
};

/** Cloud-side configuration. */
struct CloudConfig
{
    rca::RcaConfig rca;
    adapt::AdaptConfig adapt;
    rca::AnalysisMode analysisMode = rca::AnalysisMode::kFull;
    /** Minimum matching uploads required to adapt to a cause. */
    size_t minAdaptSamples = 24;
    /** Also keep the clean model calibrated on non-drifted uploads. */
    bool adaptCleanModel = true;
    /** Cap on causes adapted per cycle (0 = no cap). */
    size_t maxCausesPerCycle = 0;
    /**
     * Per-device sequence numbers remembered by the idempotent ingest
     * path (ingestFrom). Retransmissions whose sequence number is
     * still inside the window — or older than anything retained — are
     * rejected as duplicates, so at-least-once delivery counts each
     * drift row effectively once.
     */
    size_t ingestDedupWindow = 4096;
    /**
     * Crash-safe durability for the cloud's state (drift log, upload
     * buffer, dedup windows, registry, counters). Off by default
     * (empty dir): no file is touched and the run is bit-identical to
     * a cloud without the persist layer.
     */
    persist::PersistConfig persist;
};

/** Result of one analysis/adaptation cycle. */
struct CycleResult
{
    std::vector<deploy::ModelVersion> newVersions;
    std::optional<nn::BnPatch> newCleanPatch;
    rca::AnalysisResult analysis;
    size_t adaptedSampleCount = 0;
    /** Causes found by RCA but skipped for lack of matching uploads. */
    size_t skippedCauses = 0;
    double rcaSeconds = 0.0;   ///< Wall-clock of the RCA stage.
    double adaptSeconds = 0.0; ///< Wall-clock of the adaptation stage.
};

/**
 * Cloud orchestrator. Owns the drift log and the upload buffer;
 * produces model versions at analysis-window boundaries.
 */
class Cloud
{
  public:
    /**
     * @param config Cloud configuration (RCA + adaptation).
     * @param base   The base (clean-trained) model; cycles adapt
     *               clones of it.
     */
    Cloud(CloudConfig config, const nn::Classifier &base);

    /**
     * Ingest one drift-log entry and optionally its sampled input.
     * Thread-safe: concurrent emitters (fleet shards) serialize on an
     * internal mutex. Callers needing a deterministic log order must
     * order their calls themselves (sim::Runner buffers per shard and
     * emits in event order).
     */
    void ingest(const driftlog::DriftLogEntry &entry,
                std::optional<Upload> upload);

    /**
     * Idempotent ingest for messages arriving over an unreliable
     * channel: @p seq is the sender's per-device monotone sequence
     * number. Duplicate (retried or duplicated-in-flight) messages
     * are dropped against a bounded per-device dedup window and
     * counted in `net.dedup_hits`. Returns true when the entry was
     * accepted, false on a dedup hit. Thread-safe like ingest().
     */
    bool ingestFrom(int device, uint64_t seq,
                    const driftlog::DriftLogEntry &entry,
                    std::optional<Upload> upload);

    /**
     * Group-committed batch of ingestFrom() calls: every attempt is
     * appended to the WAL first with ONE sync for the whole batch
     * (vs one per record), and the WAL work happens before the ingest
     * lock is taken, so readers never stall behind an fsync. Dedup
     * semantics per message are identical to ingestFrom(). Returns
     * per-message acceptance (false = dedup hit).
     *
     * Single-writer: callers must not overlap this with other
     * ingest/cycle/flush calls — the ingest server's committer thread
     * is the sole writer, which is what makes the out-of-lock WAL
     * appends safe.
     */
    std::vector<bool> ingestBatchFrom(std::vector<IngestMessage> batch);

    /**
     * Run one analysis + by-cause adaptation cycle over the entries
     * ingested since the last cycle, then archive them.
     *
     * @param clean_patch Current clean-model BN patch (starting point
     *                    for adaptations and detector calibration).
     */
    CycleResult runCycle(const nn::BnPatch &clean_patch);

    /**
     * All currently buffered uploads as one dataset (labels are -1;
     * adaptation is unsupervised). Used by the adapt-all baseline.
     * Thread-safe against concurrent ingest.
     */
    data::Dataset allUploads() const;

    /**
     * Archive buffered entries and uploads without running analysis.
     * The archived counts are recorded in obs
     * (`sim.cloud.flushed.rows` / `sim.cloud.flushed.uploads`) so
     * flushed rows stay distinguishable from rows lost in transit.
     * Thread-safe against concurrent ingest.
     */
    void flush();

    /**
     * Snapshot of the entries currently awaiting analysis (copied
     * under the ingest lock, so safe against concurrent ingest).
     */
    driftlog::DriftLog driftLog() const;

    /** Entries currently awaiting analysis. Thread-safe. */
    size_t driftLogSize() const;

    /** Uploads currently buffered. Thread-safe. */
    size_t uploadCount() const;

    /** Dedup rejections by the idempotent ingest path. Thread-safe. */
    size_t dedupHits() const;

    /** Total entries ingested over the lifetime of the cloud. */
    size_t totalIngested() const;

    /** Next version id that will be assigned. */
    int64_t nextVersionId() const { return nextVersionId_; }

    /** Completed analysis cycles (advances once per runCycle). */
    int64_t logicalTime() const { return logicalTime_; }

    /**
     * All published versions with id > @p after_id, ascending. Used
     * after a crash-restart to re-push versions that devices never
     * acknowledged.
     */
    std::vector<deploy::ModelVersion> versionsSince(int64_t after_id) const;

    /**
     * The clean BN patch recovered from the state directory, when one
     * was persisted by an earlier incarnation's cycle. The owner (the
     * runner) adopts it so adaptation resumes from the recovered
     * calibration instead of the base model's.
     */
    const std::optional<nn::BnPatch> &recoveredCleanPatch() const
    {
        return recoveredCleanPatch_;
    }

    /** logicalTime of the cycle that produced the recovered patch. */
    int64_t recoveredCleanPatchTime() const
    {
        return recoveredCleanPatchTime_;
    }

    /** Copy of the per-device dedup windows (for tests). Thread-safe. */
    std::map<int64_t, persist::DedupWindow> dedupSnapshot() const;

    /**
     * Garbage-collect registry versions with id < @p min_version_id
     * from the blob store. The caller owns the safety invariant:
     * @p min_version_id must be at or below every device's last-seen
     * version, so no re-push or fetch for an evicted id can ever be
     * needed. WAL-first when persistence is on, so recovery replays
     * the eviction. Returns the number of versions evicted.
     * Thread-safe against concurrent ingest.
     */
    size_t gcRegistryBelow(int64_t min_version_id);

    /**
     * Force a snapshot now (rename-on-commit + WAL truncation). No-op
     * without persistence. Thread-safe against concurrent ingest.
     */
    void checkpoint();

    /** The durability engine, or null when persistence is off. */
    persist::CloudPersistence *persistence() { return persist_.get(); }

    /**
     * The version registry (every adapted version is published to the
     * blob store before deployment — the §5.8 "written in S3" step).
     */
    const deploy::ModelRegistry &registry() const { return registry_; }

    /** The blob store backing the registry. */
    const deploy::BlobStore &blobStore() const { return blobStore_; }

    const CloudConfig &config() const { return config_; }

  private:
    /** Per-device dedup window for the idempotent ingest path. */
    struct DedupState
    {
        /** Sequence numbers still retained for duplicate detection. */
        std::set<uint64_t> seen;
        /** Everything below this was pruned from the window and is
         *  assumed already ingested (conservative: rejected). */
        uint64_t floor = 0;
    };

    /** Shared tail of ingest()/ingestFrom(); ingestMutex_ held. */
    void ingestLocked(const driftlog::DriftLogEntry &entry,
                      std::optional<Upload> upload);

    /**
     * Run one (device, seq) through the dedup window (ingestMutex_
     * held). Returns false on a duplicate; true admits the seq into
     * the window.
     */
    bool dedupAcceptLocked(int device, uint64_t seq);

    /** Adopt the state a CloudPersistence recovered at open. */
    void adoptRecovered(persist::RecoveredState &st);

    /** Snapshot when due (ingestMutex_ held by the caller). */
    void maybeSnapshotLocked();

    /** Build + write a snapshot of the full state (ingestMutex_ held;
     *  blobStore_/registry_ are safe to read because cycles never run
     *  concurrently with ingest in the runner). */
    void writeSnapshotLocked();

    /** Collect uploads whose context matches a cause. */
    static data::Dataset uploadsMatching(
        const std::vector<Upload> &uploads,
        const rca::AttributeSet &cause);

    /** Uploads not matching any accepted cause and not drift-flagged. */
    static data::Dataset cleanUploads(
        const std::vector<Upload> &uploads,
        const std::vector<rca::RankedCause> &causes);

    CloudConfig config_;
    const nn::Classifier &base_;
    /** Guards driftLog_, uploads_, dedup_, dedupHits_, totalIngested_. */
    mutable std::mutex ingestMutex_;
    driftlog::DriftLog driftLog_;
    std::vector<Upload> uploads_;
    std::map<int, DedupState> dedup_;
    size_t dedupHits_ = 0;
    deploy::BlobStore blobStore_;
    deploy::ModelRegistry registry_{blobStore_};
    int64_t nextVersionId_ = 1;
    int64_t logicalTime_ = 0;
    size_t totalIngested_ = 0;
    /** Durability engine (null when CloudConfig::persist is off). */
    std::unique_ptr<persist::CloudPersistence> persist_;
    std::optional<nn::BnPatch> recoveredCleanPatch_;
    int64_t recoveredCleanPatchTime_ = 0;
    /** Last clean patch published by a cycle, as BnPatch::save text —
     *  carried into snapshots so recovery can resume calibration. */
    std::optional<std::string> lastCleanPatchText_;
    int64_t lastCleanPatchTime_ = 0;
};

} // namespace nazar::sim

#endif // NAZAR_SIM_CLOUD_H
