/**
 * @file
 * Implementation of the simulated device.
 */
#include "device.h"

#include "data/apps.h"
#include "nn/loss.h"
#include "obs/metrics.h"

namespace nazar::sim {

Device::Device(int id, std::string location_name, size_t pool_capacity)
    : id_(id), locationName_(std::move(location_name)),
      pool_(pool_capacity)
{
}

void
Device::noteVersionReceived(int64_t id)
{
    if (id > lastSeenVersion_)
        lastSeenVersion_ = id;
}

rca::AttributeSet
Device::contextFor(const data::StreamEvent &event) const
{
    using driftlog::columns::kDeviceId;
    using driftlog::columns::kDeviceModel;
    using driftlog::columns::kLocation;
    using driftlog::columns::kWeather;
    return rca::AttributeSet({
        {kWeather, driftlog::Value(data::toString(event.weather))},
        {kLocation, driftlog::Value(locationName_)},
        {kDeviceId, driftlog::Value(data::deviceName(id_))},
        {kDeviceModel, driftlog::Value(data::deviceModel(id_))},
    });
}

InferenceOutcome
Device::infer(const data::StreamEvent &event, nn::Classifier &scratch,
              const nn::BnPatch &clean_patch,
              const detect::MspDetector &detector) const
{
    static obs::Counter &inferences =
        obs::Registry::global().counter("sim.inferences");
    inferences.add(1);
    const deploy::ModelVersion *version =
        deploy::selectVersion(pool_, contextFor(event));
    if (version != nullptr)
        scratch.applyBnPatch(version->patch);
    else
        scratch.applyBnPatch(clean_patch);

    nn::Matrix logits =
        scratch.logits(nn::Matrix::rowVector(event.features));
    InferenceOutcome out;
    out.predicted = static_cast<int>(logits.argmaxRow(0));
    out.msp = nn::maxSoftmax(logits)[0];
    out.driftFlag = detector.isDrift(logits.rowVec(0));
    out.versionId = version ? version->id : 0;
    return out;
}

driftlog::DriftLogEntry
Device::makeLogEntry(const data::StreamEvent &event,
                     const InferenceOutcome &out) const
{
    driftlog::DriftLogEntry entry;
    entry.time = event.when;
    entry.deviceId = data::deviceName(id_);
    entry.deviceModel = data::deviceModel(id_);
    entry.location = locationName_;
    entry.weather = data::toString(event.weather);
    entry.modelVersion = out.versionId;
    entry.drift = out.driftFlag;
    return entry;
}

} // namespace nazar::sim
