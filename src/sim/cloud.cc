/**
 * @file
 * Implementation of the cloud orchestrator.
 */
#include "cloud.h"

#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"

namespace nazar::sim {

Cloud::Cloud(CloudConfig config, const nn::Classifier &base)
    : config_(std::move(config)), base_(base)
{
    if (config_.rca.attributeColumns.empty())
        config_.rca.attributeColumns =
            driftlog::DriftLog::defaultAttributeColumns();
}

void
Cloud::ingest(const driftlog::DriftLogEntry &entry,
              std::optional<Upload> upload)
{
    static obs::Counter &rows =
        obs::Registry::global().counter("sim.ingest.rows");
    static obs::Counter &uploads =
        obs::Registry::global().counter("sim.uploads");
    rows.add(1);
    if (upload.has_value())
        uploads.add(1);
    std::lock_guard<std::mutex> lk(ingestMutex_);
    driftLog_.add(entry);
    ++totalIngested_;
    if (upload.has_value())
        uploads_.push_back(std::move(*upload));
}

data::Dataset
Cloud::uploadsMatching(const rca::AttributeSet &cause) const
{
    data::DatasetBuilder builder;
    for (const auto &up : uploads_)
        if (cause.isSubsetOf(up.context))
            builder.add(up.features, /*label=*/-1);
    return builder.build();
}

data::Dataset
Cloud::cleanUploads(const std::vector<rca::RankedCause> &causes) const
{
    data::DatasetBuilder builder;
    for (const auto &up : uploads_) {
        if (up.driftFlag)
            continue;
        bool matched = false;
        for (const auto &cause : causes) {
            if (cause.attrs.isSubsetOf(up.context)) {
                matched = true;
                break;
            }
        }
        if (!matched)
            builder.add(up.features, /*label=*/-1);
    }
    return builder.build();
}

data::Dataset
Cloud::allUploads() const
{
    data::DatasetBuilder builder;
    for (const auto &up : uploads_)
        builder.add(up.features, /*label=*/-1);
    return builder.build();
}

void
Cloud::flush()
{
    driftLog_.clear();
    uploads_.clear();
}

CycleResult
Cloud::runCycle(const nn::BnPatch &clean_patch)
{
    NAZAR_SPAN("sim.cloud.cycle");
    CycleResult result;
    ++logicalTime_;

    // ---- Root-cause analysis stage ----------------------------------
    // The span both feeds the sim.cloud.rca histogram and reports the
    // stage's wall time for CycleResult (so benches keep their numbers
    // even with metrics disabled).
    NAZAR_SPAN_BEGIN(rca_span, "sim.cloud.rca");
    rca::Analyzer analyzer(config_.rca);
    result.analysis =
        analyzer.analyze(driftLog_.table(), config_.analysisMode);
    result.rcaSeconds = rca_span.stop();

    const auto &causes = result.analysis.rootCauses;
    logInfo() << "cloud cycle " << logicalTime_ << ": "
              << driftLog_.size() << " entries, " << uploads_.size()
              << " uploads, " << causes.size() << " root causes";

    // ---- By-cause adaptation stage -----------------------------------
    NAZAR_SPAN_BEGIN(adapt_span, "sim.cloud.adapt");
    adapt::TentAdapter tent(config_.adapt);

    // Select the causes to adapt sequentially (cheap, and keeps the
    // per-cycle cap and version-id assignment deterministic), then fan
    // the TENT adaptations — the expensive part — out across the pool.
    // One BN-patch job per accepted cause, plus one for the clean
    // model's recalibration; every job adapts its own clone of the
    // base model, so jobs share no mutable state.
    struct AdaptJob
    {
        const rca::RankedCause *cause = nullptr; ///< null == clean job.
        data::Dataset samples;
    };
    std::vector<AdaptJob> jobs;
    for (const auto &cause : causes) {
        if (config_.maxCausesPerCycle > 0 &&
            jobs.size() >= config_.maxCausesPerCycle)
            break;
        data::Dataset samples = uploadsMatching(cause.attrs);
        if (samples.size() < config_.minAdaptSamples) {
            logDebug() << "skipping cause " << cause.attrs.toString()
                       << ": only " << samples.size() << " samples";
            continue;
        }
        jobs.push_back({&cause, std::move(samples)});
    }
    const size_t cause_jobs = jobs.size();
    if (config_.adaptCleanModel) {
        data::Dataset clean = cleanUploads(causes);
        if (clean.size() >= config_.minAdaptSamples)
            jobs.push_back({nullptr, std::move(clean)});
    }

    std::vector<nn::BnPatch> patches(jobs.size());
    runtime::parallelFor(
        0, jobs.size(), /*grain=*/1, [&](size_t begin, size_t end) {
            for (size_t j = begin; j < end; ++j) {
                // Adapt a clone of the base model, starting from the
                // current clean BN state, on the job's sampled inputs.
                nn::Classifier model = base_.clone();
                model.applyBnPatch(clean_patch);
                tent.adapt(model, jobs[j].samples.x);
                patches[j] = model.bnPatch();
            }
        });

    // Publish in cause-rank order so version ids match the sequential
    // path no matter how the jobs were scheduled.
    for (size_t j = 0; j < cause_jobs; ++j) {
        deploy::ModelVersion version;
        version.id = nextVersionId_++;
        version.cause = jobs[j].cause->attrs;
        version.riskRatio = jobs[j].cause->metrics.riskRatio;
        version.patch = std::move(patches[j]);
        version.updatedAt = logicalTime_;
        registry_.publish(version); // durably stored before deployment
        result.newVersions.push_back(std::move(version));
        result.adaptedSampleCount += jobs[j].samples.size();
    }
    if (jobs.size() > cause_jobs)
        result.newCleanPatch = std::move(patches.back());
    result.adaptSeconds = adapt_span.stop();

    // Archive this cycle's evidence.
    driftLog_.clear();
    uploads_.clear();
    return result;
}

} // namespace nazar::sim
