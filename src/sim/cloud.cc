/**
 * @file
 * Implementation of the cloud orchestrator.
 */
#include "cloud.h"

#include <chrono>

#include "common/error.h"
#include "common/logging.h"

namespace nazar::sim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

Cloud::Cloud(CloudConfig config, const nn::Classifier &base)
    : config_(std::move(config)), base_(base)
{
    if (config_.rca.attributeColumns.empty())
        config_.rca.attributeColumns =
            driftlog::DriftLog::defaultAttributeColumns();
}

void
Cloud::ingest(const driftlog::DriftLogEntry &entry,
              std::optional<Upload> upload)
{
    driftLog_.add(entry);
    ++totalIngested_;
    if (upload.has_value())
        uploads_.push_back(std::move(*upload));
}

data::Dataset
Cloud::uploadsMatching(const rca::AttributeSet &cause) const
{
    data::DatasetBuilder builder;
    for (const auto &up : uploads_)
        if (cause.isSubsetOf(up.context))
            builder.add(up.features, /*label=*/-1);
    return builder.build();
}

data::Dataset
Cloud::cleanUploads(const std::vector<rca::RankedCause> &causes) const
{
    data::DatasetBuilder builder;
    for (const auto &up : uploads_) {
        if (up.driftFlag)
            continue;
        bool matched = false;
        for (const auto &cause : causes) {
            if (cause.attrs.isSubsetOf(up.context)) {
                matched = true;
                break;
            }
        }
        if (!matched)
            builder.add(up.features, /*label=*/-1);
    }
    return builder.build();
}

data::Dataset
Cloud::allUploads() const
{
    data::DatasetBuilder builder;
    for (const auto &up : uploads_)
        builder.add(up.features, /*label=*/-1);
    return builder.build();
}

void
Cloud::flush()
{
    driftLog_.clear();
    uploads_.clear();
}

CycleResult
Cloud::runCycle(const nn::BnPatch &clean_patch)
{
    CycleResult result;
    ++logicalTime_;

    // ---- Root-cause analysis stage ----------------------------------
    auto rca_start = std::chrono::steady_clock::now();
    rca::Analyzer analyzer(config_.rca);
    result.analysis =
        analyzer.analyze(driftLog_.table(), config_.analysisMode);
    result.rcaSeconds = secondsSince(rca_start);

    const auto &causes = result.analysis.rootCauses;
    logInfo() << "cloud cycle " << logicalTime_ << ": "
              << driftLog_.size() << " entries, " << uploads_.size()
              << " uploads, " << causes.size() << " root causes";

    // ---- By-cause adaptation stage -----------------------------------
    auto adapt_start = std::chrono::steady_clock::now();
    adapt::TentAdapter tent(config_.adapt);

    size_t adapted = 0;
    for (const auto &cause : causes) {
        if (config_.maxCausesPerCycle > 0 &&
            adapted >= config_.maxCausesPerCycle)
            break;
        data::Dataset samples = uploadsMatching(cause.attrs);
        if (samples.size() < config_.minAdaptSamples) {
            logDebug() << "skipping cause " << cause.attrs.toString()
                       << ": only " << samples.size() << " samples";
            continue;
        }
        // Adapt a clone of the base model, starting from the current
        // clean BN state, on the cause's sampled inputs.
        nn::Classifier model = base_.clone();
        model.applyBnPatch(clean_patch);
        tent.adapt(model, samples.x);

        deploy::ModelVersion version;
        version.id = nextVersionId_++;
        version.cause = cause.attrs;
        version.riskRatio = cause.metrics.riskRatio;
        version.patch = model.bnPatch();
        version.updatedAt = logicalTime_;
        registry_.publish(version); // durably stored before deployment
        result.newVersions.push_back(std::move(version));
        result.adaptedSampleCount += samples.size();
        ++adapted;
    }

    // ---- Clean-model calibration -------------------------------------
    if (config_.adaptCleanModel) {
        data::Dataset clean = cleanUploads(causes);
        if (clean.size() >= config_.minAdaptSamples) {
            nn::Classifier model = base_.clone();
            model.applyBnPatch(clean_patch);
            tent.adapt(model, clean.x);
            result.newCleanPatch = model.bnPatch();
        }
    }
    result.adaptSeconds = secondsSince(adapt_start);

    // Archive this cycle's evidence.
    driftLog_.clear();
    uploads_.clear();
    return result;
}

} // namespace nazar::sim
