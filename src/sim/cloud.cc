/**
 * @file
 * Implementation of the cloud orchestrator.
 */
#include "cloud.h"

#include <sstream>

#include "common/error.h"
#include "common/logging.h"
#include "driftlog/csv.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"

namespace nazar::sim {

Cloud::Cloud(CloudConfig config, const nn::Classifier &base)
    : config_(std::move(config)), base_(base)
{
    if (config_.rca.attributeColumns.empty())
        config_.rca.attributeColumns =
            driftlog::DriftLog::defaultAttributeColumns();
    if (config_.persist.enabled()) {
        persist_ = std::make_unique<persist::CloudPersistence>(
            config_.persist, config_.ingestDedupWindow);
        adoptRecovered(persist_->recovered());
        persist_->dropRecovered();
    }
}

void
Cloud::adoptRecovered(persist::RecoveredState &st)
{
    driftLog_ = std::move(st.log);
    uploads_.clear();
    uploads_.reserve(st.uploads.size());
    for (auto &up : st.uploads)
        uploads_.push_back(Upload{std::move(up.features),
                                  std::move(up.context), up.driftFlag});
    dedup_.clear();
    for (auto &[device, window] : st.dedup) {
        DedupState state;
        state.floor = window.floor;
        state.seen.insert(window.seen.begin(), window.seen.end());
        dedup_[static_cast<int>(device)] = std::move(state);
    }
    dedupHits_ = st.dedupHits;
    totalIngested_ = st.totalIngested;
    nextVersionId_ = st.nextVersionId;
    logicalTime_ = st.logicalTime;
    for (auto &[key, bytes] : st.blobs)
        blobStore_.put(key, std::move(bytes));
    if (st.cleanPatchText.has_value()) {
        std::istringstream is(*st.cleanPatchText);
        recoveredCleanPatch_ = nn::BnPatch::load(is);
        recoveredCleanPatchTime_ = st.cleanPatchTime;
        lastCleanPatchText_ = std::move(st.cleanPatchText);
        lastCleanPatchTime_ = st.cleanPatchTime;
    }
    if (st.snapshotLoaded || st.replayedRecords > 0) {
        logInfo() << "cloud recovered: " << driftLog_.size()
                  << " pending rows, " << uploads_.size()
                  << " uploads, logical time " << logicalTime_ << ", "
                  << st.replayedRecords << " WAL records replayed";
    }
}

void
Cloud::ingestLocked(const driftlog::DriftLogEntry &entry,
                    std::optional<Upload> upload)
{
    driftLog_.add(entry);
    ++totalIngested_;
    if (upload.has_value())
        uploads_.push_back(std::move(*upload));
}

void
Cloud::ingest(const driftlog::DriftLogEntry &entry,
              std::optional<Upload> upload)
{
    static obs::Counter &rows =
        obs::Registry::global().counter("sim.ingest.rows");
    static obs::Counter &uploads =
        obs::Registry::global().counter("sim.uploads");
    rows.add(1);
    if (upload.has_value())
        uploads.add(1);
    std::lock_guard<std::mutex> lk(ingestMutex_);
    if (persist_) {
        // WAL-first: the attempt is durable before the apply, so a
        // crash between the two replays the row instead of losing it.
        persist_->logIngest(
            /*device=*/-1, /*seq=*/0, entry,
            upload ? &upload->features : nullptr,
            upload ? &upload->context : nullptr,
            upload ? upload->driftFlag : false);
    }
    ingestLocked(entry, std::move(upload));
    maybeSnapshotLocked();
}

bool
Cloud::dedupAcceptLocked(int device, uint64_t seq)
{
    static obs::Counter &dedup_hits =
        obs::Registry::global().counter("net.dedup_hits");
    DedupState &state = dedup_[device];
    if (seq < state.floor || state.seen.count(seq) > 0) {
        ++dedupHits_;
        dedup_hits.add(1);
        return false;
    }
    state.seen.insert(seq);
    while (state.seen.size() > config_.ingestDedupWindow) {
        state.floor = *state.seen.begin() + 1;
        state.seen.erase(state.seen.begin());
    }
    return true;
}

bool
Cloud::ingestFrom(int device, uint64_t seq,
                  const driftlog::DriftLogEntry &entry,
                  std::optional<Upload> upload)
{
    static obs::Counter &rows =
        obs::Registry::global().counter("sim.ingest.rows");
    static obs::Counter &uploads =
        obs::Registry::global().counter("sim.uploads");

    std::lock_guard<std::mutex> lk(ingestMutex_);
    if (persist_) {
        // Log the *attempt* before the dedup check: replay re-runs the
        // dedup logic, so accepted rows, rejected duplicates, and the
        // per-device windows are all reproduced exactly.
        persist_->logIngest(
            device, seq, entry, upload ? &upload->features : nullptr,
            upload ? &upload->context : nullptr,
            upload ? upload->driftFlag : false);
    }
    if (!dedupAcceptLocked(device, seq)) {
        maybeSnapshotLocked();
        return false;
    }
    rows.add(1);
    if (upload.has_value())
        uploads.add(1);
    ingestLocked(entry, std::move(upload));
    maybeSnapshotLocked();
    return true;
}

std::vector<bool>
Cloud::ingestBatchFrom(std::vector<IngestMessage> batch)
{
    static obs::Counter &rows =
        obs::Registry::global().counter("sim.ingest.rows");
    static obs::Counter &uploads =
        obs::Registry::global().counter("sim.uploads");
    static obs::Counter &batches =
        obs::Registry::global().counter("sim.ingest.batches");

    std::vector<bool> accepted(batch.size(), false);
    if (batch.empty())
        return accepted;
    batches.add(1);
    if (persist_) {
        // Group commit: every attempt of the batch becomes durable
        // with a single sync, before the ingest lock is touched
        // (WAL-first still holds — durability precedes the apply).
        std::vector<std::string> payloads;
        payloads.reserve(batch.size());
        for (const auto &m : batch) {
            const auto *up = m.upload ? &*m.upload : nullptr;
            payloads.push_back(persist::CloudPersistence::encodeIngest(
                m.device, m.seq, m.entry,
                up ? &up->features : nullptr,
                up ? &up->context : nullptr,
                up ? up->driftFlag : false));
        }
        persist_->logIngestBatch(payloads);
    }
    std::lock_guard<std::mutex> lk(ingestMutex_);
    for (size_t i = 0; i < batch.size(); ++i) {
        auto &m = batch[i];
        if (!dedupAcceptLocked(m.device, m.seq))
            continue;
        rows.add(1);
        if (m.upload.has_value())
            uploads.add(1);
        ingestLocked(m.entry, std::move(m.upload));
        accepted[i] = true;
    }
    maybeSnapshotLocked();
    return accepted;
}

data::Dataset
Cloud::uploadsMatching(const std::vector<Upload> &uploads,
                       const rca::AttributeSet &cause)
{
    data::DatasetBuilder builder;
    for (const auto &up : uploads)
        if (cause.isSubsetOf(up.context))
            builder.add(up.features, /*label=*/-1);
    return builder.build();
}

data::Dataset
Cloud::cleanUploads(const std::vector<Upload> &uploads,
                    const std::vector<rca::RankedCause> &causes)
{
    data::DatasetBuilder builder;
    for (const auto &up : uploads) {
        if (up.driftFlag)
            continue;
        bool matched = false;
        for (const auto &cause : causes) {
            if (cause.attrs.isSubsetOf(up.context)) {
                matched = true;
                break;
            }
        }
        if (!matched)
            builder.add(up.features, /*label=*/-1);
    }
    return builder.build();
}

data::Dataset
Cloud::allUploads() const
{
    std::lock_guard<std::mutex> lk(ingestMutex_);
    data::DatasetBuilder builder;
    for (const auto &up : uploads_)
        builder.add(up.features, /*label=*/-1);
    return builder.build();
}

driftlog::DriftLog
Cloud::driftLog() const
{
    std::lock_guard<std::mutex> lk(ingestMutex_);
    return driftLog_;
}

size_t
Cloud::driftLogSize() const
{
    std::lock_guard<std::mutex> lk(ingestMutex_);
    return driftLog_.size();
}

size_t
Cloud::uploadCount() const
{
    std::lock_guard<std::mutex> lk(ingestMutex_);
    return uploads_.size();
}

size_t
Cloud::dedupHits() const
{
    std::lock_guard<std::mutex> lk(ingestMutex_);
    return dedupHits_;
}

size_t
Cloud::totalIngested() const
{
    std::lock_guard<std::mutex> lk(ingestMutex_);
    return totalIngested_;
}

void
Cloud::flush()
{
    static obs::Counter &flushed_rows =
        obs::Registry::global().counter("sim.cloud.flushed.rows");
    static obs::Counter &flushed_uploads =
        obs::Registry::global().counter("sim.cloud.flushed.uploads");
    std::lock_guard<std::mutex> lk(ingestMutex_);
    if (persist_)
        persist_->logFlush();
    flushed_rows.add(driftLog_.size());
    flushed_uploads.add(uploads_.size());
    driftLog_.clear();
    uploads_.clear();
    maybeSnapshotLocked();
}

CycleResult
Cloud::runCycle(const nn::BnPatch &clean_patch)
{
    NAZAR_SPAN("sim.cloud.cycle");
    static obs::Counter &archived_rows =
        obs::Registry::global().counter("sim.cloud.archived.rows");
    static obs::Counter &archived_uploads =
        obs::Registry::global().counter("sim.cloud.archived.uploads");
    static obs::Counter &skipped_causes =
        obs::Registry::global().counter("sim.cloud.adapt.skipped_causes");

    CycleResult result;
    ++logicalTime_;

    // Claim this cycle's evidence under the ingest lock, then analyze
    // lock-free: concurrent ingest lands in the next cycle's buffers.
    // Claiming is also the archival step, so record the counts now —
    // analysis never loses rows, only transport can.
    driftlog::DriftLog log;
    std::vector<Upload> uploads;
    {
        std::lock_guard<std::mutex> lk(ingestMutex_);
        log = std::move(driftLog_);
        driftLog_ = driftlog::DriftLog();
        uploads = std::move(uploads_);
        uploads_.clear();
    }
    archived_rows.add(log.size());
    archived_uploads.add(uploads.size());

    // ---- Root-cause analysis stage ----------------------------------
    // Run on whatever actually arrived this window — a partial fleet
    // (lost, shed or delayed telemetry) degrades the evidence, never
    // the cycle itself. The span both feeds the sim.cloud.rca
    // histogram and reports the stage's wall time for CycleResult (so
    // benches keep their numbers even with metrics disabled).
    NAZAR_SPAN_BEGIN(rca_span, "sim.cloud.rca");
    rca::Analyzer analyzer(config_.rca);
    result.analysis = analyzer.analyze(log.table(), config_.analysisMode);
    result.rcaSeconds = rca_span.stop();

    const auto &causes = result.analysis.rootCauses;
    logInfo() << "cloud cycle " << logicalTime_ << ": " << log.size()
              << " entries, " << uploads.size() << " uploads, "
              << causes.size() << " root causes";

    // ---- By-cause adaptation stage -----------------------------------
    NAZAR_SPAN_BEGIN(adapt_span, "sim.cloud.adapt");
    adapt::TentAdapter tent(config_.adapt);

    // Select the causes to adapt sequentially (cheap, and keeps the
    // per-cycle cap and version-id assignment deterministic), then fan
    // the TENT adaptations — the expensive part — out across the pool.
    // One BN-patch job per accepted cause, plus one for the clean
    // model's recalibration; every job adapts its own clone of the
    // base model, so jobs share no mutable state.
    struct AdaptJob
    {
        const rca::RankedCause *cause = nullptr; ///< null == clean job.
        data::Dataset samples;
    };
    std::vector<AdaptJob> jobs;
    for (const auto &cause : causes) {
        if (config_.maxCausesPerCycle > 0 &&
            jobs.size() >= config_.maxCausesPerCycle)
            break;
        data::Dataset samples = uploadsMatching(uploads, cause.attrs);
        if (samples.size() < config_.minAdaptSamples) {
            // Graceful degradation: uploads matching this cause were
            // sampled out — or lost/shed in transit — below the adapt
            // floor. Skip the cause, don't fail the cycle.
            skipped_causes.add(1);
            ++result.skippedCauses;
            logDebug() << "skipping cause " << cause.attrs.toString()
                       << ": only " << samples.size() << " samples";
            continue;
        }
        jobs.push_back({&cause, std::move(samples)});
    }
    const size_t cause_jobs = jobs.size();
    if (config_.adaptCleanModel) {
        data::Dataset clean = cleanUploads(uploads, causes);
        if (clean.size() >= config_.minAdaptSamples)
            jobs.push_back({nullptr, std::move(clean)});
    }

    std::vector<nn::BnPatch> patches(jobs.size());
    runtime::parallelFor(
        0, jobs.size(), /*grain=*/1, [&](size_t begin, size_t end) {
            for (size_t j = begin; j < end; ++j) {
                // Adapt a clone of the base model, starting from the
                // current clean BN state, on the job's sampled inputs.
                nn::Classifier model = base_.clone();
                model.applyBnPatch(clean_patch);
                tent.adapt(model, jobs[j].samples.x);
                patches[j] = model.bnPatch();
            }
        });

    // Publish in cause-rank order so version ids match the sequential
    // path no matter how the jobs were scheduled.
    for (size_t j = 0; j < cause_jobs; ++j) {
        deploy::ModelVersion version;
        version.id = nextVersionId_++;
        version.cause = jobs[j].cause->attrs;
        version.riskRatio = jobs[j].cause->metrics.riskRatio;
        version.patch = std::move(patches[j]);
        version.updatedAt = logicalTime_;
        registry_.publish(version); // durably stored before deployment
        result.newVersions.push_back(std::move(version));
        result.adaptedSampleCount += jobs[j].samples.size();
    }
    if (jobs.size() > cause_jobs)
        result.newCleanPatch = std::move(patches.back());
    result.adaptSeconds = adapt_span.stop();

    if (persist_) {
        // One atomic commit record for the whole cycle, carrying the
        // exact blob bytes the registry published. Appended after the
        // in-memory publishes: the only observer that could see the
        // gap is disk recovery, which rolls the uncommitted cycle back
        // (ingest replay restores the claimed buffers) and re-runs it
        // deterministically, reassigning identical version ids.
        std::vector<persist::VersionBlobs> blobs;
        blobs.reserve(result.newVersions.size());
        for (const auto &version : result.newVersions) {
            blobs.push_back(
                {version.id,
                 blobStore_.get(deploy::ModelRegistry::metaKey(version.id)),
                 blobStore_.get(
                     deploy::ModelRegistry::patchKey(version.id))});
        }
        if (result.newCleanPatch.has_value()) {
            std::ostringstream patch_text;
            result.newCleanPatch->save(patch_text);
            lastCleanPatchText_ = patch_text.str();
            lastCleanPatchTime_ = logicalTime_;
        }
        persist_->logCycleCommit(logicalTime_, nextVersionId_, blobs,
                                 result.newCleanPatch.has_value()
                                     ? lastCleanPatchText_
                                     : std::optional<std::string>(),
                                 lastCleanPatchTime_);
        std::lock_guard<std::mutex> lk(ingestMutex_);
        maybeSnapshotLocked();
    }
    return result;
}

std::vector<deploy::ModelVersion>
Cloud::versionsSince(int64_t after_id) const
{
    std::vector<deploy::ModelVersion> versions;
    for (int64_t id : registry_.versionIds())
        if (id > after_id)
            versions.push_back(registry_.fetch(id));
    return versions;
}

std::map<int64_t, persist::DedupWindow>
Cloud::dedupSnapshot() const
{
    std::lock_guard<std::mutex> lk(ingestMutex_);
    std::map<int64_t, persist::DedupWindow> out;
    for (const auto &[device, state] : dedup_) {
        persist::DedupWindow window;
        window.floor = state.floor;
        window.seen.assign(state.seen.begin(), state.seen.end());
        out[device] = std::move(window);
    }
    return out;
}

void
Cloud::checkpoint()
{
    if (!persist_)
        return;
    std::lock_guard<std::mutex> lk(ingestMutex_);
    writeSnapshotLocked();
}

void
Cloud::maybeSnapshotLocked()
{
    if (persist_ && persist_->snapshotDue())
        writeSnapshotLocked();
}

size_t
Cloud::gcRegistryBelow(int64_t min_version_id)
{
    static obs::Counter &gc_evicted =
        obs::Registry::global().counter("cloud.registry.gc_evicted");
    std::lock_guard<std::mutex> lk(ingestMutex_);
    if (persist_) {
        // WAL-first, like every other mutation: the floor is durable
        // before the blobs disappear, so a crash between the two
        // replays the eviction instead of resurrecting dead versions.
        persist_->logRegistryGc(min_version_id);
    }
    size_t evicted = registry_.evictBelow(min_version_id);
    if (evicted > 0)
        gc_evicted.add(evicted);
    if (persist_)
        maybeSnapshotLocked();
    return evicted;
}

void
Cloud::writeSnapshotLocked()
{
    if (!persist_->nextSnapshotIsFull()) {
        // Delta snapshot: archive the live WAL's records under a
        // chained header — no state dump, O(appends since last
        // snapshot) instead of O(total state).
        persist_->writeDeltaSnapshot();
        return;
    }
    persist::SnapshotData data;
    data.logicalTime = logicalTime_;
    data.nextVersionId = nextVersionId_;
    data.totalIngested = totalIngested_;
    data.dedupHits = dedupHits_;
    std::ostringstream csv;
    driftlog::writeCsv(driftLog_.table(), csv);
    data.driftLogCsv = csv.str();
    data.uploads.reserve(uploads_.size());
    for (const auto &up : uploads_)
        data.uploads.push_back(
            persist::UploadRecord{up.features, up.context, up.driftFlag});
    for (const auto &[device, state] : dedup_) {
        persist::DedupWindow window;
        window.floor = state.floor;
        window.seen.assign(state.seen.begin(), state.seen.end());
        data.dedup[device] = std::move(window);
    }
    for (const auto &key : blobStore_.list())
        data.blobs.emplace_back(key, blobStore_.get(key));
    data.cleanPatchText = lastCleanPatchText_;
    data.cleanPatchTime = lastCleanPatchTime_;
    persist_->writeSnapshot(std::move(data));
}

} // namespace nazar::sim
