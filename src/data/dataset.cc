/**
 * @file
 * Implementation of the dataset container.
 */
#include "dataset.h"

#include "common/error.h"

namespace nazar::data {

void
Dataset::append(const std::vector<double> &features, int label)
{
    if (x.empty()) {
        x = nn::Matrix(1, features.size());
        x.setRow(0, features);
    } else {
        NAZAR_CHECK(features.size() == x.cols(), "feature width mismatch");
        nn::Matrix grown(x.rows() + 1, x.cols());
        for (size_t r = 0; r < x.rows(); ++r)
            for (size_t c = 0; c < x.cols(); ++c)
                grown(r, c) = x(r, c);
        grown.setRow(x.rows(), features);
        x = std::move(grown);
    }
    labels.push_back(label);
}

void
Dataset::append(const Dataset &other)
{
    if (other.empty())
        return;
    if (x.empty()) {
        *this = other;
        return;
    }
    NAZAR_CHECK(other.x.cols() == x.cols(), "feature width mismatch");
    nn::Matrix grown(x.rows() + other.x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r)
        for (size_t c = 0; c < x.cols(); ++c)
            grown(r, c) = x(r, c);
    for (size_t r = 0; r < other.x.rows(); ++r)
        for (size_t c = 0; c < x.cols(); ++c)
            grown(x.rows() + r, c) = other.x(r, c);
    x = std::move(grown);
    labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

Dataset
Dataset::subset(const std::vector<size_t> &indices) const
{
    Dataset out;
    if (indices.empty())
        return out;
    out.x = x.selectRows(indices);
    out.labels.reserve(indices.size());
    for (size_t i : indices) {
        NAZAR_CHECK(i < labels.size(), "subset index out of range");
        out.labels.push_back(labels[i]);
    }
    return out;
}

std::vector<size_t>
Dataset::indicesOfClass(int label) const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == label)
            out.push_back(i);
    return out;
}

std::pair<Dataset, Dataset>
splitDataset(const Dataset &d, double first_fraction)
{
    NAZAR_CHECK(first_fraction >= 0.0 && first_fraction <= 1.0,
                "fraction must be in [0, 1]");
    size_t cut = static_cast<size_t>(first_fraction *
                                     static_cast<double>(d.size()));
    std::vector<size_t> a(cut), b(d.size() - cut);
    for (size_t i = 0; i < cut; ++i)
        a[i] = i;
    for (size_t i = cut; i < d.size(); ++i)
        b[i - cut] = i;
    return {d.subset(a), d.subset(b)};
}

void
DatasetBuilder::add(const std::vector<double> &features, int label)
{
    if (labels_.empty())
        width_ = features.size();
    NAZAR_CHECK(features.size() == width_, "feature width mismatch");
    flat_.insert(flat_.end(), features.begin(), features.end());
    labels_.push_back(label);
}

Dataset
DatasetBuilder::build()
{
    Dataset out;
    if (!labels_.empty()) {
        out.x = nn::Matrix(labels_.size(), width_);
        std::copy(flat_.begin(), flat_.end(), out.x.data());
        out.labels = std::move(labels_);
    }
    flat_.clear();
    labels_.clear();
    width_ = 0;
    return out;
}

} // namespace nazar::data
