/**
 * @file
 * Implementation of the 16 feature-space corruptions.
 *
 * Each corruption composes up to three primitives, chosen so the
 * transform is damaging but (partially) recoverable by BatchNorm
 * re-estimation + affine tuning, mirroring how image corruptions
 * interact with TENT:
 *
 *  - a *diagonal shrink* with a fixed per-type mask (signal attenuation
 *    that per-feature normalization can rescale),
 *  - a *structured shift* along a fixed per-type vector (a consistent
 *    distribution shift BN statistics absorb),
 *  - *post noise* added after the shrink (the genuinely lossy part —
 *    rescaling amplifies it, so recovery is partial, as in the paper).
 *
 * Magnitudes scale with severity via u = severity / 3 (severity 3 is
 * the paper's default).
 */
#include "corruption.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace nazar::data {

const std::vector<CorruptionType> &
allCorruptionTypes()
{
    static const std::vector<CorruptionType> kAll = {
        CorruptionType::kGaussianNoise,
        CorruptionType::kShotNoise,
        CorruptionType::kImpulseNoise,
        CorruptionType::kDefocusBlur,
        CorruptionType::kGlassBlur,
        CorruptionType::kMotionBlur,
        CorruptionType::kZoomBlur,
        CorruptionType::kSnow,
        CorruptionType::kFrost,
        CorruptionType::kFog,
        CorruptionType::kRain,
        CorruptionType::kBrightness,
        CorruptionType::kContrast,
        CorruptionType::kElasticTransform,
        CorruptionType::kPixelate,
        CorruptionType::kJpegCompression,
    };
    return kAll;
}

std::string
toString(CorruptionType type)
{
    switch (type) {
      case CorruptionType::kNone:             return "none";
      case CorruptionType::kGaussianNoise:    return "gaussian_noise";
      case CorruptionType::kShotNoise:        return "shot_noise";
      case CorruptionType::kImpulseNoise:     return "impulse_noise";
      case CorruptionType::kDefocusBlur:      return "defocus_blur";
      case CorruptionType::kGlassBlur:        return "glass_blur";
      case CorruptionType::kMotionBlur:       return "motion_blur";
      case CorruptionType::kZoomBlur:         return "zoom_blur";
      case CorruptionType::kSnow:             return "snow";
      case CorruptionType::kFrost:            return "frost";
      case CorruptionType::kFog:              return "fog";
      case CorruptionType::kRain:             return "rain";
      case CorruptionType::kBrightness:       return "brightness";
      case CorruptionType::kContrast:         return "contrast";
      case CorruptionType::kElasticTransform: return "elastic_transform";
      case CorruptionType::kPixelate:         return "pixelate";
      case CorruptionType::kJpegCompression:  return "jpeg_compression";
    }
    return "?";
}

CorruptionType
corruptionFromString(const std::string &name)
{
    if (name == "none")
        return CorruptionType::kNone;
    for (CorruptionType t : allCorruptionTypes())
        if (toString(t) == name)
            return t;
    throw NazarError("unknown corruption type: " + name);
}

bool
isWeatherCorruption(CorruptionType type)
{
    return type == CorruptionType::kSnow || type == CorruptionType::kFrost ||
           type == CorruptionType::kFog || type == CorruptionType::kRain;
}

Corruptor::Corruptor(size_t feature_dim, uint64_t seed)
    : featureDim_(feature_dim)
{
    NAZAR_CHECK(feature_dim >= 8, "corruptor needs at least 8 features");
    // Fixed per-type structure: a shift vector with N(0,1) entries and
    // an attenuation mask with U(0.1, 1) entries, deterministic in
    // (seed, type). directions_ stores shift and mask interleaved:
    // index 2t is the shift vector, 2t+1 the mask.
    directions_.resize(2 * (kNumCorruptionTypes + 1));
    for (int t = 1; t <= kNumCorruptionTypes; ++t) {
        Rng rng(seed * 1000003ULL + static_cast<uint64_t>(t));
        std::vector<double> shift(feature_dim);
        std::vector<double> mask(feature_dim);
        for (auto &e : shift)
            e = rng.normal();
        for (auto &e : mask)
            e = rng.uniform(0.1, 1.0);
        directions_[2 * static_cast<size_t>(t)] = std::move(shift);
        directions_[2 * static_cast<size_t>(t) + 1] = std::move(mask);
    }
    Rng perm_rng(seed ^ 0xABCDEF12345ULL);
    pairPermutation_.resize(feature_dim);
    std::iota(pairPermutation_.begin(), pairPermutation_.end(), 0);
    perm_rng.shuffle(pairPermutation_);
}

const std::vector<double> &
Corruptor::direction(CorruptionType type) const
{
    return directions_[2 * static_cast<size_t>(type)];
}

std::vector<double>
Corruptor::apply(const std::vector<double> &x, CorruptionType type,
                 int severity, Rng &rng) const
{
    NAZAR_CHECK(x.size() == featureDim_, "feature width mismatch");
    NAZAR_CHECK(severity >= 0 && severity <= 5,
                "severity must be in [0, 5]");
    if (type == CorruptionType::kNone || severity == 0)
        return x;

    const size_t d = featureDim_;
    const double u = static_cast<double>(severity) / 3.0;
    std::vector<double> y = x;

    const auto &shift = directions_[2 * static_cast<size_t>(type)];
    const auto &mask = directions_[2 * static_cast<size_t>(type) + 1];

    auto vec_mean = [&](const std::vector<double> &v) {
        double m = 0.0;
        for (double e : v)
            m += e;
        return m / static_cast<double>(v.size());
    };
    /** Circular moving average with half-width w. */
    auto smooth = [&](const std::vector<double> &v, int w) {
        std::vector<double> out(d);
        for (size_t i = 0; i < d; ++i) {
            double acc = 0.0;
            for (int k = -w; k <= w; ++k) {
                size_t j =
                    (i + d + static_cast<size_t>(k + static_cast<int>(d))) %
                    d;
                acc += v[j];
            }
            out[i] = acc / static_cast<double>(2 * w + 1);
        }
        return out;
    };
    /** Attenuate with the per-type mask: y_i *= 1 - a*(1 - m_i). */
    auto mask_shrink = [&](double a) {
        for (size_t i = 0; i < d; ++i)
            y[i] *= 1.0 - std::min(0.95, a) * (1.0 - mask[i]);
    };
    /** Shift along the per-type direction: y_i += c * shift_i. */
    auto dir_shift = [&](double c) {
        for (size_t i = 0; i < d; ++i)
            y[i] += c * shift[i];
    };
    /** Post-shrink additive noise (the lossy component). */
    auto post_noise = [&](double sigma) {
        for (auto &e : y)
            e += sigma * rng.normal();
    };

    switch (type) {
      case CorruptionType::kGaussianNoise:
        post_noise(1.15 * u);
        break;

      case CorruptionType::kShotNoise:
        for (auto &e : y)
            e *= 1.0 + 0.85 * u * rng.normal();
        break;

      case CorruptionType::kImpulseNoise: {
        double p = std::min(0.5, 0.09 * static_cast<double>(severity));
        for (auto &e : y)
            if (rng.bernoulli(p))
                e = rng.bernoulli(0.5) ? 2.2 : -2.2;
        break;
      }

      case CorruptionType::kDefocusBlur: {
        double b = std::min(1.0, 0.65 * u);
        auto s = smooth(y, 2);
        for (size_t i = 0; i < d; ++i)
            y[i] = (1.0 - b) * y[i] + b * s[i];
        post_noise(0.3 * u);
        break;
      }

      case CorruptionType::kGlassBlur: {
        int swaps = severity * static_cast<int>(d) / 8;
        for (int k = 0; k < swaps; ++k) {
            size_t i = rng.index(d);
            size_t j = (i + 1 + rng.index(2)) % d;
            std::swap(y[i], y[j]);
        }
        post_noise(0.15 * u);
        break;
      }

      case CorruptionType::kMotionBlur: {
        // Directional (one-sided) moving average, blended in.
        double b = std::min(1.0, 0.7 * u);
        int w = 2;
        std::vector<double> s(d);
        for (size_t i = 0; i < d; ++i) {
            double acc = 0.0;
            for (int k = 0; k <= w; ++k) {
                size_t back = static_cast<size_t>(k) % d;
                acc += y[(i + d - back) % d];
            }
            s[i] = acc / static_cast<double>(w + 1);
        }
        for (size_t i = 0; i < d; ++i)
            y[i] = (1.0 - b) * y[i] + b * s[i];
        break;
      }

      case CorruptionType::kZoomBlur: {
        double a = std::min(0.9, 0.5 * u);
        double m = vec_mean(y);
        for (auto &e : y)
            e = (1.0 - a) * e + a * m;
        post_noise(0.25 * u);
        break;
      }

      case CorruptionType::kSnow:
        mask_shrink(0.6 * u);
        dir_shift(0.45 * u);
        post_noise(0.5 * u);
        break;

      case CorruptionType::kFrost:
        mask_shrink(0.55 * u);
        dir_shift(-0.4 * u);
        for (auto &e : y)
            e = std::clamp(e, -2.0, 2.0);
        post_noise(0.45 * u);
        break;

      case CorruptionType::kFog: {
        // Uniform haze: contract toward a constant plateau, then noise.
        double a = std::min(0.9, 0.55 * u);
        for (auto &e : y)
            e = (1.0 - a) * e + a * 1.5;
        post_noise(0.45 * u);
        break;
      }

      case CorruptionType::kRain: {
        mask_shrink(0.5 * u);
        dir_shift(0.35 * u);
        // Sparse "streaks": strong spikes on a few coordinates.
        double p = std::min(0.5, 0.06 * static_cast<double>(severity));
        for (size_t i = 0; i < d; ++i)
            if (rng.bernoulli(p))
                y[i] += 1.8 * (shift[(i + 1) % d] > 0 ? 1.0 : -1.0);
        post_noise(0.4 * u);
        break;
      }

      case CorruptionType::kBrightness:
        for (auto &e : y)
            e += 1.0 * u;
        post_noise(0.25 * u);
        break;

      case CorruptionType::kContrast: {
        double gain = std::max(0.1, 1.0 - 0.6 * u);
        double m = vec_mean(y);
        for (auto &e : y)
            e = m + (e - m) * gain;
        post_noise(0.35 * u);
        break;
      }

      case CorruptionType::kElasticTransform: {
        // Rotate fixed coordinate pairs by a severity-scaled angle.
        double theta = 0.6 * u;
        double c = std::cos(theta), sn = std::sin(theta);
        for (size_t k = 0; k + 1 < d; k += 2) {
            size_t i = pairPermutation_[k];
            size_t j = pairPermutation_[k + 1];
            double a = y[i], b = y[j];
            y[i] = c * a - sn * b;
            y[j] = sn * a + c * b;
        }
        post_noise(0.2 * u);
        break;
      }

      case CorruptionType::kPixelate: {
        double b = std::min(1.0, 0.75 * u);
        size_t block = std::min(d, static_cast<size_t>(2 + severity / 2));
        for (size_t start = 0; start < d; start += block) {
            size_t end = std::min(d, start + block);
            double m = 0.0;
            for (size_t i = start; i < end; ++i)
                m += y[i];
            m /= static_cast<double>(end - start);
            for (size_t i = start; i < end; ++i)
                y[i] = (1.0 - b) * y[i] + b * m;
        }
        break;
      }

      case CorruptionType::kJpegCompression: {
        double step = 0.75 * u + 0.1;
        for (auto &e : y)
            e = std::round(e / step) * step;
        post_noise(0.2 * u);
        break;
      }

      case CorruptionType::kNone:
        break;
    }

    // Universal severity-scaled contraction ("feature fade"): corrupted
    // images yield weaker deep-feature responses in real CNNs, which is
    // what makes the softmax flatten and MSP drop under drift. The fade
    // strength varies per type (derived from the type's fixed mask).
    double fade = (0.22 + 0.18 * mask[0]) * std::min(u, 5.0 / 3.0);
    for (auto &e : y)
        e *= 1.0 - fade;
    return y;
}

} // namespace nazar::data
