/**
 * @file
 * Location tables for the two emulated applications.
 */
#include "locations.h"

namespace nazar::data {

std::vector<Location>
animalsLocations()
{
    // Climate priors chosen so that over Jan-Apr roughly a third of
    // days carry weather drift fleet-wide (paper §5.2 reports 36% for
    // the animal dataset), with geographic diversity: snow concentrates
    // in northern/alpine locations, rain in temperate ones.
    std::vector<Location> locs = {
        {0, "new_york",        {0.14, 0.16, 0.04, 0.7}},
        {1, "tibet",           {0.05, 0.22, 0.06, 0.5}},
        {2, "beijing",         {0.08, 0.10, 0.10, 0.6}},
        {3, "new_south_wales", {0.18, 0.00, 0.03, 0.2}},
        {4, "united_kingdom",  {0.24, 0.05, 0.12, 0.4}},
        {5, "quebec",          {0.10, 0.25, 0.05, 0.8}},
        {6, "sao_paulo",       {0.22, 0.00, 0.05, 0.1}},
    };
    return locs;
}

std::vector<Location>
cityscapesLocations()
{
    // Cities from the Cityscapes collection (train + val splits). All
    // are European with broadly similar winter climates; small
    // variations keep the drift log's location attribute informative.
    const char *names[] = {
        "aachen",   "bochum",    "bremen",   "cologne", "darmstadt",
        "dusseldorf", "erfurt",  "hamburg",  "hanover", "jena",
        "krefeld",  "monchengladbach", "strasbourg", "stuttgart",
        "tubingen", "ulm",       "weimar",   "zurich",  "frankfurt",
        "lindau",   "munster",
    };
    std::vector<Location> locs;
    int id = 0;
    for (const char *name : names) {
        ClimateProfile climate;
        climate.rain = 0.10 + 0.03 * ((id * 7) % 3);  // 0.10..0.16
        climate.snow = 0.05 + 0.02 * ((id * 5) % 3);  // 0.05..0.09
        climate.fog = 0.04 + 0.02 * ((id * 3) % 2);   // 0.04..0.06
        climate.seasonality = 0.6;
        locs.push_back({id, name, climate});
        ++id;
    }
    return locs;
}

} // namespace nazar::data
