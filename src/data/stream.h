/**
 * @file
 * Streaming-workload generation: the inference traffic that user
 * devices produce over the simulated deployment period.
 *
 * Each event is one on-device inference request: a (possibly
 * weather-corrupted) feature vector with full ground-truth annotations
 * that the evaluation harness uses but Nazar itself never sees.
 */
#ifndef NAZAR_DATA_STREAM_H
#define NAZAR_DATA_STREAM_H

#include <vector>

#include "common/sim_date.h"
#include "data/apps.h"
#include "data/corruption.h"
#include "data/weather.h"

namespace nazar::data {

/** How corruption severity is assigned to drifted events. */
enum class SeverityPolicy {
    kFixed,  ///< Every drifted event uses the configured severity.
    kNormal, ///< Severity ~ round(clip(N(mean, std), 0, 5)), paper §5.5(b).
};

/** Workload-generation knobs. */
struct WorkloadConfig
{
    int days = kSimPeriodDays;
    /** Overrides AppSpec defaults when >= 0. */
    int devicesPerLocation = -1;
    double imagesPerDevicePerDay = -1.0;

    int severity = 3;                ///< Paper default severity level.
    SeverityPolicy severityPolicy = SeverityPolicy::kFixed;
    double severityStd = 1.0;        ///< Std for kNormal policy.

    /** Zipf skew of the class mix per location (0 = uniform). */
    double zipfAlpha = 0.0;

    /**
     * Probability that an image taken on a non-clear day actually
     * carries the weather corruption (1.0 = the paper's "apply a drift
     * function for rain on that image").
     */
    double weatherDriftProb = 1.0;

    uint64_t seed = 99;
};

/** One on-device inference request with ground-truth annotations. */
struct StreamEvent
{
    SimDate when;
    int deviceId = 0;
    int locationId = 0;
    Weather weather = Weather::kClear;
    CorruptionType corruption = CorruptionType::kNone; ///< Ground truth.
    int severity = 0;
    int label = 0;                 ///< Ground-truth class.
    std::vector<double> features;  ///< Possibly corrupted input.
    bool trueDrift = false;        ///< corruption != kNone.
};

/**
 * Generates the chronological event stream for an application over the
 * deployment period, combining per-device Poisson arrivals, a
 * per-location (optionally Zipf-skewed) class mix, and weather-driven
 * corruptions.
 */
class WorkloadGenerator
{
  public:
    WorkloadGenerator(const AppSpec &app, const WeatherModel &weather,
                      const WorkloadConfig &config);

    /** Generate the full chronological stream. */
    std::vector<StreamEvent> generate() const;

    /** Total number of devices in the fleet. */
    int deviceCount() const;

    /** Location of a device. */
    int locationOfDevice(int device_id) const;

    const WorkloadConfig &config() const { return config_; }

  private:
    const AppSpec &app_;
    const WeatherModel &weather_;
    WorkloadConfig config_;
    int devicesPerLocation_;
    double imagesPerDevicePerDay_;
};

} // namespace nazar::data

#endif // NAZAR_DATA_STREAM_H
