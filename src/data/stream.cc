/**
 * @file
 * Implementation of streaming-workload generation.
 */
#include "stream.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/zipf.h"

namespace nazar::data {

WorkloadGenerator::WorkloadGenerator(const AppSpec &app,
                                     const WeatherModel &weather,
                                     const WorkloadConfig &config)
    : app_(app), weather_(weather), config_(config)
{
    NAZAR_CHECK(config.days > 0 && config.days <= weather.days(),
                "workload days must fit the weather model");
    devicesPerLocation_ = config.devicesPerLocation >= 0
                              ? config.devicesPerLocation
                              : app.devicesPerLocation;
    imagesPerDevicePerDay_ = config.imagesPerDevicePerDay >= 0.0
                                 ? config.imagesPerDevicePerDay
                                 : app.imagesPerDevicePerDay;
    NAZAR_CHECK(devicesPerLocation_ > 0, "need at least one device");
    NAZAR_CHECK(imagesPerDevicePerDay_ > 0.0, "need a positive rate");
}

int
WorkloadGenerator::deviceCount() const
{
    return devicesPerLocation_ * static_cast<int>(app_.locations.size());
}

int
WorkloadGenerator::locationOfDevice(int device_id) const
{
    NAZAR_CHECK(device_id >= 0 && device_id < deviceCount(),
                "device id out of range");
    return device_id / devicesPerLocation_;
}

std::vector<StreamEvent>
WorkloadGenerator::generate() const
{
    const size_t num_classes = app_.domain.numClasses();
    Corruptor corruptor(app_.domain.featureDim());

    // Per-location class mix: a Zipf distribution over a
    // location-specific permutation of the classes, so different
    // locations favour different species (paper §5.1).
    ZipfSampler zipf(num_classes, config_.zipfAlpha);
    std::vector<std::vector<size_t>> class_perm(app_.locations.size());
    for (size_t li = 0; li < app_.locations.size(); ++li) {
        Rng perm_rng(config_.seed * 31 + li * 977 + 5);
        class_perm[li].resize(num_classes);
        std::iota(class_perm[li].begin(), class_perm[li].end(), 0);
        perm_rng.shuffle(class_perm[li]);
    }

    std::vector<StreamEvent> events;
    Rng rng(config_.seed);
    for (int day = 0; day < config_.days; ++day) {
        for (size_t li = 0; li < app_.locations.size(); ++li) {
            Weather weather =
                weather_.weatherAt(static_cast<int>(li), day);
            CorruptionType weather_corruption = weatherCorruption(weather);
            for (int di = 0; di < devicesPerLocation_; ++di) {
                int device_id =
                    static_cast<int>(li) * devicesPerLocation_ + di;
                int arrivals = rng.poisson(imagesPerDevicePerDay_);
                for (int a = 0; a < arrivals; ++a) {
                    StreamEvent ev;
                    ev.when = SimDate(
                        day, static_cast<int>(rng.uniformInt(6 * 3600,
                                                             22 * 3600)));
                    ev.deviceId = device_id;
                    ev.locationId = static_cast<int>(li);
                    ev.weather = weather;
                    ev.label = static_cast<int>(
                        class_perm[li][zipf.sample(rng)]);

                    std::vector<double> x =
                        app_.domain.sample(ev.label, rng);

                    bool drifted =
                        weather_corruption != CorruptionType::kNone &&
                        rng.bernoulli(config_.weatherDriftProb);
                    if (drifted) {
                        int severity = config_.severity;
                        if (config_.severityPolicy ==
                            SeverityPolicy::kNormal) {
                            double raw = rng.normal(
                                static_cast<double>(config_.severity),
                                config_.severityStd);
                            severity = static_cast<int>(std::lround(
                                std::clamp(raw, 0.0, 5.0)));
                        }
                        ev.severity = severity;
                        if (severity > 0) {
                            ev.corruption = weather_corruption;
                            ev.trueDrift = true;
                            x = corruptor.apply(x, weather_corruption,
                                                severity, rng);
                        }
                    }
                    ev.features = std::move(x);
                    events.push_back(std::move(ev));
                }
            }
        }
    }
    // Chronological order within each day is randomized by second.
    std::stable_sort(events.begin(), events.end(),
                     [](const StreamEvent &a, const StreamEvent &b) {
                         return a.when < b.when;
                     });
    return events;
}

} // namespace nazar::data
