/**
 * @file
 * Deployment locations and their climate profiles.
 *
 * The Animals app emulates 7 locations on different continents (paper
 * §5.1); the Cityscapes app emulates European cities from the
 * Cityscapes collection. Each location carries a climate profile that
 * parameterizes the WeatherModel (e.g. Helsinki is snowier than New
 * South Wales in the January-April window).
 */
#ifndef NAZAR_DATA_LOCATIONS_H
#define NAZAR_DATA_LOCATIONS_H

#include <string>
#include <vector>

namespace nazar::data {

/**
 * Climate profile: relative propensity of each non-clear weather kind
 * during the simulated period. Probabilities are per-day priors before
 * the Markov persistence dynamics are applied.
 */
struct ClimateProfile
{
    double rain = 0.12; ///< Daily prior of a rainy day.
    double snow = 0.05; ///< Daily prior of a snowy day.
    double fog = 0.05;  ///< Daily prior of a foggy day.
    /**
     * Seasonal modulation: how strongly snow decays (and rain grows)
     * from January toward April; 0 = constant climate.
     */
    double seasonality = 0.5;
};

/** A deployment location. */
struct Location
{
    int id = 0;
    std::string name;
    ClimateProfile climate;
};

/** The 7 Animals-app locations (paper §5.1). */
std::vector<Location> animalsLocations();

/**
 * Cityscapes collection cities (the paper uses the Cityscapes dataset,
 * photos from cities across Europe, mostly Germany).
 */
std::vector<Location> cityscapesLocations();

} // namespace nazar::data

#endif // NAZAR_DATA_LOCATIONS_H
