/**
 * @file
 * Construction of the two emulated applications.
 */
#include "apps.h"

namespace nazar::data {

AppSpec
makeCityscapesApp(uint64_t seed)
{
    DomainConfig config;
    config.numClasses = 10;
    config.featureDim = 32;
    // Fewer, better-separated classes: clean accuracy lands in the
    // low-to-mid 80s like the paper's Cityscapes models (83.6-83.9%).
    config.prototypeScale = 0.56;
    config.noiseMin = 0.8;
    config.noiseMax = 1.6;
    config.seed = seed;

    AppSpec app{
        "cityscapes",
        Domain(config),
        cityscapesLocations(),
        {"person", "rider", "car", "truck", "bus", "train", "motorcycle",
         "bicycle", "traffic_light", "traffic_sign"},
    };
    // Cityscapes streams from driving cars: a couple of vehicles per
    // city, submitting images at regular intervals (paper: 27,604
    // images, 80% streamed over the 112-day period).
    app.devicesPerLocation = 2;
    app.imagesPerDevicePerDay = 5.0;
    app.trainPerClass = 380;  // ~14% of 27.6k for initial training
    app.valPerClass = 160;    // ~6% for validation
    return app;
}

AppSpec
makeAnimalsApp(uint64_t seed, size_t num_classes)
{
    DomainConfig config;
    config.numClasses = num_classes;
    config.featureDim = 32;
    // More classes with wider noise spread: clean accuracy in the
    // mid 70s (paper: 72.1-76.1%) and a broad per-class accuracy
    // range (Fig 5b: ~39%-98%).
    config.prototypeScale = 0.65;
    config.noiseMin = 0.55;
    config.noiseMax = 1.6;
    config.seed = seed;

    AppSpec app{
        "animals",
        Domain(config),
        animalsLocations(),
        {},
    };
    app.classNames.reserve(num_classes);
    // A few recognizable species up front, synthetic ids beyond.
    const char *named[] = {"red_fox",  "snow_leopard", "koala",
                           "wombat",   "panda",        "moose",
                           "hedgehog", "lynx",         "puffin",
                           "capercaillie"};
    for (size_t c = 0; c < num_classes; ++c) {
        if (c < std::size(named))
            app.classNames.push_back(named[c]);
        else
            app.classNames.push_back("species_" + std::to_string(c));
    }
    app.devicesPerLocation = 16;
    app.imagesPerDevicePerDay = 2.0;
    app.trainPerClass = 120;
    app.valPerClass = 30;
    return app;
}

std::string
deviceName(int device_id)
{
    return "android_" + std::to_string(device_id);
}

std::string
deviceModel(int device_id)
{
    static const char *kModels[] = {"pixel_6", "galaxy_s22", "oneplus_9",
                                    "xperia_5"};
    return kModels[static_cast<size_t>(device_id) % std::size(kModels)];
}

} // namespace nazar::data
