/**
 * @file
 * Synthetic data domain — the substitute for real image datasets.
 *
 * A domain defines the data-generating process of one application:
 * each class c has a fixed Gaussian prototype mu_c in feature space,
 * and samples are mu_c plus per-class isotropic noise. Per-class noise
 * levels vary across a range, which reproduces the paper's observation
 * (Fig 5b) that per-class accuracy of a trained model spans roughly
 * 39%-98% even with balanced training data.
 */
#ifndef NAZAR_DATA_DOMAIN_H
#define NAZAR_DATA_DOMAIN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace nazar::data {

/** Data-generating parameters of a synthetic domain. */
struct DomainConfig
{
    size_t numClasses = 40;
    size_t featureDim = 32;
    /** Scale of the class prototypes (inter-class separation). */
    double prototypeScale = 2.0;
    /** Per-class noise levels are drawn uniformly from this range. */
    double noiseMin = 0.55;
    double noiseMax = 1.25;
    uint64_t seed = 7;
};

/** The data-generating process of one application. */
class Domain
{
  public:
    explicit Domain(const DomainConfig &config);

    size_t numClasses() const { return config_.numClasses; }
    size_t featureDim() const { return config_.featureDim; }
    const DomainConfig &config() const { return config_; }

    /** Per-class within-class noise stddev. */
    double classNoise(int cls) const;

    /** The prototype vector of a class. */
    const std::vector<double> &prototype(int cls) const;

    /** Draw one clean sample of a class. */
    std::vector<double> sample(int cls, Rng &rng) const;

    /** Draw a balanced dataset with @p per_class samples per class. */
    Dataset makeBalancedDataset(size_t per_class, Rng &rng) const;

    /**
     * Draw a dataset with a caller-provided class mix.
     * @param counts Number of samples to draw per class.
     */
    Dataset makeDataset(const std::vector<size_t> &counts, Rng &rng) const;

  private:
    DomainConfig config_;
    std::vector<std::vector<double>> prototypes_;
    std::vector<double> noise_;
};

} // namespace nazar::data

#endif // NAZAR_DATA_DOMAIN_H
