/**
 * @file
 * Real-world rain drift emulation (paper §5.1 "Real Rainy Images").
 *
 * The paper mixes clean Cityscapes images with images from the RID
 * (Rain in Driving) dataset — a different camera domain *and* real
 * rain — restricted to the five classes both datasets share. Offline,
 * we emulate the RID half as a second sensing domain (a fixed global
 * sensor transform: gain change, color-cast-like directional shift,
 * extra sensor noise) combined with the rain corruption at mixed
 * severities. This reproduces the paper's qualitative finding: real
 * drift is detectable but noisier than synthetic drift (F1 ~0.67 vs
 * ~0.73).
 */
#ifndef NAZAR_DATA_REAL_RAIN_H
#define NAZAR_DATA_REAL_RAIN_H

#include "data/apps.h"
#include "data/corruption.h"
#include "data/dataset.h"

namespace nazar::data {

/** A mixed clean/RID evaluation set with drift ground truth. */
struct RealRainSet
{
    Dataset data;
    std::vector<bool> isRid; ///< True for the RID-domain half.
};

/**
 * Build the mixed set: @p per_half clean samples and @p per_half
 * RID-domain rainy samples, drawn from the five shared classes
 * (class ids 0..4 of the Cityscapes app).
 */
RealRainSet makeRealRainSet(const AppSpec &cityscapes, size_t per_half,
                            uint64_t seed = 41);

/**
 * Apply the RID sensing-domain transform (without rain): gain change,
 * directional color-cast shift, and extra sensor noise.
 */
std::vector<double> ridDomainTransform(const std::vector<double> &x,
                                       Rng &rng);

} // namespace nazar::data

#endif // NAZAR_DATA_REAL_RAIN_H
