/**
 * @file
 * Implementation of the real-rain domain emulation.
 */
#include "real_rain.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace nazar::data {

namespace {

/** Fixed unit direction of the RID camera's color cast. */
std::vector<double>
ridCastDirection(size_t dim)
{
    Rng rng(0x51D0CA57ULL);
    std::vector<double> v(dim);
    double norm = 0.0;
    for (auto &e : v) {
        e = rng.normal();
        norm += e * e;
    }
    norm = std::sqrt(norm);
    for (auto &e : v)
        e /= norm;
    return v;
}

} // namespace

std::vector<double>
ridDomainTransform(const std::vector<double> &x, Rng &rng)
{
    static const std::vector<double> cast = ridCastDirection(32);
    NAZAR_CHECK(x.size() == cast.size(),
                "RID transform is defined for 32-dim features");
    std::vector<double> y(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
        // Mild gain change, fixed color-cast shift, sensor noise —
        // a different camera, not a destroyed image.
        y[i] = 0.93 * x[i] + 0.45 * cast[i] + 0.18 * rng.normal();
    }
    return y;
}

RealRainSet
makeRealRainSet(const AppSpec &cityscapes, size_t per_half, uint64_t seed)
{
    constexpr size_t kSharedClasses = 5;
    NAZAR_CHECK(cityscapes.domain.numClasses() >= kSharedClasses,
                "cityscapes app must have at least 5 classes");
    Rng rng(seed);
    Corruptor corruptor(cityscapes.domain.featureDim());

    // The five classes both datasets share are the abundant,
    // well-recognized ones (car, person, ...): model them as the five
    // lowest-noise (easiest) classes of the domain.
    std::vector<std::pair<double, int>> by_noise;
    for (size_t c = 0; c < cityscapes.domain.numClasses(); ++c)
        by_noise.push_back({cityscapes.domain.classNoise(
                                static_cast<int>(c)),
                            static_cast<int>(c)});
    std::sort(by_noise.begin(), by_noise.end());
    std::vector<int> shared;
    for (size_t i = 0; i < kSharedClasses; ++i)
        shared.push_back(by_noise[i].second);

    DatasetBuilder builder;
    std::vector<bool> is_rid;
    // Clean half: Cityscapes domain, shared classes only.
    for (size_t i = 0; i < per_half; ++i) {
        int cls = shared[rng.index(kSharedClasses)];
        builder.add(cityscapes.domain.sample(cls, rng), cls);
        is_rid.push_back(false);
    }
    // RID half: sensing-domain transform + real rain at mixed severity.
    for (size_t i = 0; i < per_half; ++i) {
        int cls = shared[rng.index(kSharedClasses)];
        std::vector<double> x = cityscapes.domain.sample(cls, rng);
        x = ridDomainTransform(x, rng);
        int severity = static_cast<int>(rng.uniformInt(1, 3));
        x = corruptor.apply(x, CorruptionType::kRain, severity, rng);
        builder.add(x, cls);
        is_rid.push_back(true);
    }
    return RealRainSet{builder.build(), std::move(is_rid)};
}

} // namespace nazar::data
