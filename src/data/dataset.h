/**
 * @file
 * Labeled dataset container used across training, adaptation and
 * evaluation.
 */
#ifndef NAZAR_DATA_DATASET_H
#define NAZAR_DATA_DATASET_H

#include <vector>

#include "nn/matrix.h"

namespace nazar::data {

/** A batch of feature vectors with integer class labels. */
struct Dataset
{
    nn::Matrix x;            ///< samples x features.
    std::vector<int> labels; ///< One class index per row.

    size_t size() const { return labels.size(); }
    bool empty() const { return labels.empty(); }

    /** Append one sample. x must be empty or have matching width. */
    void append(const std::vector<double> &features, int label);

    /** Append all samples of another dataset. */
    void append(const Dataset &other);

    /** Extract the subset at the given row indices. */
    Dataset subset(const std::vector<size_t> &indices) const;

    /** Rows whose label equals @p label. */
    std::vector<size_t> indicesOfClass(int label) const;
};

/**
 * Split a dataset into two parts, the first taking @p first_fraction of
 * the rows in order (callers shuffle beforehand if needed).
 */
std::pair<Dataset, Dataset> splitDataset(const Dataset &d,
                                         double first_fraction);

/**
 * Amortized O(1)-per-row dataset accumulator. Dataset::append reshapes
 * the underlying matrix on every call, which is quadratic; bulk
 * generation paths use this builder instead.
 */
class DatasetBuilder
{
  public:
    /** Append one sample (all rows must share a width). */
    void add(const std::vector<double> &features, int label);

    size_t size() const { return labels_.size(); }

    /** Produce the dataset and reset the builder. */
    Dataset build();

  private:
    std::vector<double> flat_;
    std::vector<int> labels_;
    size_t width_ = 0;
};

} // namespace nazar::data

#endif // NAZAR_DATA_DATASET_H
