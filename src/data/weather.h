/**
 * @file
 * Historical-weather emulation.
 *
 * The paper drives its weather drifts from 2020 historical records
 * (Kaggle daily weather + Weather Underground). Offline, we substitute
 * a seeded per-location Markov chain whose stationary behaviour matches
 * each location's climate profile and whose day-to-day persistence
 * produces realistic multi-day weather spells (see DESIGN.md §1).
 */
#ifndef NAZAR_DATA_WEATHER_H
#define NAZAR_DATA_WEATHER_H

#include <cstdint>
#include <string>
#include <vector>

#include "data/corruption.h"
#include "data/locations.h"

namespace nazar::data {

/** Daily weather condition at a location. */
enum class Weather { kClear = 0, kRain, kSnow, kFog };

/** Printable name, e.g. "clear-day" / "rain" / "snow" / "fog". */
std::string toString(Weather w);

/** Parse a name produced by toString. */
Weather weatherFromString(const std::string &name);

/** The drift corruption a weather condition induces (kNone for clear). */
CorruptionType weatherCorruption(Weather w);

/**
 * Deterministic per-location daily weather over the simulated period.
 *
 * Generation: for each location an independent Markov chain over the
 * four conditions. Transition probabilities combine the location's
 * climate priors (seasonally modulated: snow decays toward April, rain
 * grows) with a persistence bonus for remaining in yesterday's
 * condition.
 */
class WeatherModel
{
  public:
    /**
     * @param locations Locations to generate weather for.
     * @param days      Length of the simulated period.
     * @param seed      Generation seed (per-location streams derive
     *                  from it).
     */
    WeatherModel(std::vector<Location> locations, int days,
                 uint64_t seed = 2020);

    /** Weather at a location on a day (0-based day index). */
    Weather weatherAt(int location_id, int day) const;

    /** Fraction of (location, day) cells with non-clear weather. */
    double driftDayFraction() const;

    /** Fraction of days on which at least one location has drift. */
    double anyDriftDayFraction() const;

    int days() const { return days_; }
    const std::vector<Location> &locations() const { return locations_; }

  private:
    std::vector<Location> locations_;
    int days_;
    /** weather_[loc][day]. */
    std::vector<std::vector<Weather>> table_;
};

} // namespace nazar::data

#endif // NAZAR_DATA_WEATHER_H
