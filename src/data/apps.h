/**
 * @file
 * The two emulated applications of the paper's evaluation (§5.1):
 * Cityscapes (self-driving object classification) and Animals
 * (geo-distributed species identification).
 */
#ifndef NAZAR_DATA_APPS_H
#define NAZAR_DATA_APPS_H

#include <string>
#include <vector>

#include "data/domain.h"
#include "data/locations.h"

namespace nazar::data {

/** A full application specification: domain + deployment geography. */
struct AppSpec
{
    std::string name;
    Domain domain;
    std::vector<Location> locations;
    std::vector<std::string> classNames;

    /** Fleet defaults used by the end-to-end workloads. */
    int devicesPerLocation = 16;
    double imagesPerDevicePerDay = 2.0;

    /** Training-set size per class (paper: Animals averages 793). */
    size_t trainPerClass = 120;
    /** Validation-set size per class. */
    size_t valPerClass = 30;
};

/**
 * Cityscapes-analog app: 10 traffic-object classes, European cities,
 * a few vehicles (devices) per city, temporally ordered stream.
 */
AppSpec makeCityscapesApp(uint64_t seed = 11);

/**
 * Animals-analog app: a configurable number of species classes across
 * 7 world locations with 16 devices each (paper default).
 */
AppSpec makeAnimalsApp(uint64_t seed = 13, size_t num_classes = 40);

/** Human-readable device identifier, e.g. "android_42". */
std::string deviceName(int device_id);

/**
 * Hardware model of a device (an extra drift-log attribute; a few
 * brands across the fleet, derived deterministically from the id).
 */
std::string deviceModel(int device_id);

} // namespace nazar::data

#endif // NAZAR_DATA_APPS_H
