/**
 * @file
 * Implementation of the weather emulation.
 */
#include "weather.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace nazar::data {

std::string
toString(Weather w)
{
    switch (w) {
      case Weather::kClear: return "clear-day";
      case Weather::kRain:  return "rain";
      case Weather::kSnow:  return "snow";
      case Weather::kFog:   return "fog";
    }
    return "?";
}

Weather
weatherFromString(const std::string &name)
{
    if (name == "clear-day")
        return Weather::kClear;
    if (name == "rain")
        return Weather::kRain;
    if (name == "snow")
        return Weather::kSnow;
    if (name == "fog")
        return Weather::kFog;
    throw NazarError("unknown weather: " + name);
}

CorruptionType
weatherCorruption(Weather w)
{
    switch (w) {
      case Weather::kClear: return CorruptionType::kNone;
      case Weather::kRain:  return CorruptionType::kRain;
      case Weather::kSnow:  return CorruptionType::kSnow;
      case Weather::kFog:   return CorruptionType::kFog;
    }
    return CorruptionType::kNone;
}

WeatherModel::WeatherModel(std::vector<Location> locations, int days,
                           uint64_t seed)
    : locations_(std::move(locations)), days_(days)
{
    NAZAR_CHECK(!locations_.empty(), "need at least one location");
    NAZAR_CHECK(days > 0, "need at least one day");

    table_.resize(locations_.size());
    for (size_t li = 0; li < locations_.size(); ++li) {
        const ClimateProfile &climate = locations_[li].climate;
        Rng rng(seed * 7919ULL + static_cast<uint64_t>(li) + 1);
        auto &row = table_[li];
        row.resize(days_);
        Weather prev = Weather::kClear;
        for (int day = 0; day < days_; ++day) {
            // Seasonal modulation over Jan 1 .. end of period:
            // progress in [0,1]; snow decays, rain grows with spring.
            double progress =
                static_cast<double>(day) / static_cast<double>(days_);
            double season = climate.seasonality;
            double p_snow =
                climate.snow * (1.0 - season * progress);
            double p_rain =
                climate.rain * (1.0 + 0.5 * season * progress);
            double p_fog = climate.fog;

            // Persistence: weather spells last multiple days.
            constexpr double kPersistBonus = 0.35;
            double b_rain = prev == Weather::kRain ? kPersistBonus : 0.0;
            double b_snow = prev == Weather::kSnow ? kPersistBonus : 0.0;
            double b_fog = prev == Weather::kFog ? kPersistBonus : 0.0;

            p_rain = std::min(0.9, p_rain + b_rain);
            p_snow = std::min(0.9, p_snow + b_snow);
            p_fog = std::min(0.9, p_fog + b_fog);
            double p_clear = std::max(0.0, 1.0 - p_rain - p_snow - p_fog);

            size_t pick = rng.weightedIndex(
                {p_clear, p_rain, p_snow, p_fog});
            prev = static_cast<Weather>(pick);
            row[day] = prev;
        }
    }
}

Weather
WeatherModel::weatherAt(int location_id, int day) const
{
    NAZAR_CHECK(location_id >= 0 &&
                    static_cast<size_t>(location_id) < table_.size(),
                "location id out of range");
    NAZAR_CHECK(day >= 0 && day < days_, "day out of range");
    return table_[static_cast<size_t>(location_id)]
                 [static_cast<size_t>(day)];
}

double
WeatherModel::driftDayFraction() const
{
    size_t drift = 0, total = 0;
    for (const auto &row : table_) {
        for (Weather w : row) {
            total += 1;
            if (w != Weather::kClear)
                drift += 1;
        }
    }
    return total ? static_cast<double>(drift) / total : 0.0;
}

double
WeatherModel::anyDriftDayFraction() const
{
    int drift_days = 0;
    for (int day = 0; day < days_; ++day) {
        for (size_t li = 0; li < table_.size(); ++li) {
            if (table_[li][static_cast<size_t>(day)] != Weather::kClear) {
                ++drift_days;
                break;
            }
        }
    }
    return static_cast<double>(drift_days) / static_cast<double>(days_);
}

} // namespace nazar::data
