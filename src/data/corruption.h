/**
 * @file
 * Parametric data-drift corruptions — the feature-space analog of the
 * 16 ImageNet-C-style corruptions the paper applies (Hendrycks &
 * Dietterich 2019 plus rain; paper §5.1-§5.2).
 *
 * Each corruption is a distinct parametric transform of a feature
 * vector with a severity knob in [0, 5] (0 = identity, 3 = the paper's
 * default). The transforms are built so that:
 *   - each corruption is a *consistent* distribution shift (it mixes a
 *     fixed per-type direction / kernel with the input), so a model can
 *     adapt to it;
 *   - applying one lowers the model's softmax confidence, making it
 *     detectable by the MSP threshold;
 *   - the shift is largely correctable by re-estimating BatchNorm
 *     statistics plus entropy-minimizing the BN affines (TENT), the
 *     same structural property the image corruptions have.
 */
#ifndef NAZAR_DATA_CORRUPTION_H
#define NAZAR_DATA_CORRUPTION_H

#include <string>
#include <vector>

#include "common/rng.h"

namespace nazar::data {

/** The 16 corruption families (plus kNone for clean data). */
enum class CorruptionType {
    kNone = 0,
    // Noise family.
    kGaussianNoise,
    kShotNoise,
    kImpulseNoise,
    // Blur family.
    kDefocusBlur,
    kGlassBlur,
    kMotionBlur,
    kZoomBlur,
    // Weather family (the subset driven by historical weather).
    kSnow,
    kFrost,
    kFog,
    kRain,
    // Digital family.
    kBrightness,
    kContrast,
    kElasticTransform,
    kPixelate,
    kJpegCompression,
};

/** Number of real corruption types (excluding kNone). */
inline constexpr int kNumCorruptionTypes = 16;

/** All 16 real corruption types, in enum order. */
const std::vector<CorruptionType> &allCorruptionTypes();

/** Printable name, e.g. "gaussian_noise". */
std::string toString(CorruptionType type);

/** Parse a name produced by toString; throws NazarError on unknown. */
CorruptionType corruptionFromString(const std::string &name);

/** True for the weather-driven corruptions (snow, frost, fog, rain). */
bool isWeatherCorruption(CorruptionType type);

/**
 * Applies corruptions to feature vectors. One Corruptor instance fixes
 * the per-type structured directions for a given feature width (seeded
 * deterministically), so a corruption type is the *same* distribution
 * shift everywhere in an experiment.
 */
class Corruptor
{
  public:
    /**
     * @param feature_dim Width of the vectors this corruptor serves.
     * @param seed        Seed for the per-type fixed structure.
     */
    explicit Corruptor(size_t feature_dim, uint64_t seed = 0xC0FFEE);

    /**
     * Corrupt one feature vector.
     *
     * @param x        Clean features (size feature_dim).
     * @param type     Which corruption; kNone returns x unchanged.
     * @param severity In [0, 5]; 0 returns x unchanged.
     * @param rng      Source for the stochastic noise component.
     */
    std::vector<double> apply(const std::vector<double> &x,
                              CorruptionType type, int severity,
                              Rng &rng) const;

    size_t featureDim() const { return featureDim_; }

  private:
    /** Fixed unit direction associated with a structured corruption. */
    const std::vector<double> &direction(CorruptionType type) const;

    size_t featureDim_;
    /** One fixed direction per corruption type (indexed by enum). */
    std::vector<std::vector<double>> directions_;
    /** Fixed coordinate pairing used by elastic/glass transforms. */
    std::vector<size_t> pairPermutation_;
};

} // namespace nazar::data

#endif // NAZAR_DATA_CORRUPTION_H
