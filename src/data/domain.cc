/**
 * @file
 * Implementation of the synthetic data domain.
 */
#include "domain.h"

#include "common/error.h"

namespace nazar::data {

Domain::Domain(const DomainConfig &config) : config_(config)
{
    NAZAR_CHECK(config.numClasses >= 2, "need at least two classes");
    NAZAR_CHECK(config.featureDim >= 8, "need at least 8 features");
    NAZAR_CHECK(config.noiseMin > 0.0 && config.noiseMax >= config.noiseMin,
                "invalid noise range");

    Rng rng(config.seed);
    prototypes_.resize(config.numClasses);
    noise_.resize(config.numClasses);
    for (size_t c = 0; c < config.numClasses; ++c) {
        prototypes_[c].resize(config.featureDim);
        for (auto &e : prototypes_[c])
            e = rng.normal(0.0, config.prototypeScale);
        noise_[c] = rng.uniform(config.noiseMin, config.noiseMax);
    }
}

double
Domain::classNoise(int cls) const
{
    NAZAR_CHECK(cls >= 0 && static_cast<size_t>(cls) < noise_.size(),
                "class out of range");
    return noise_[static_cast<size_t>(cls)];
}

const std::vector<double> &
Domain::prototype(int cls) const
{
    NAZAR_CHECK(cls >= 0 && static_cast<size_t>(cls) < prototypes_.size(),
                "class out of range");
    return prototypes_[static_cast<size_t>(cls)];
}

std::vector<double>
Domain::sample(int cls, Rng &rng) const
{
    const auto &proto = prototype(cls);
    double sigma = classNoise(cls);
    std::vector<double> x(proto.size());
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = proto[i] + rng.normal(0.0, sigma);
    return x;
}

Dataset
Domain::makeBalancedDataset(size_t per_class, Rng &rng) const
{
    std::vector<size_t> counts(config_.numClasses, per_class);
    return makeDataset(counts, rng);
}

Dataset
Domain::makeDataset(const std::vector<size_t> &counts, Rng &rng) const
{
    NAZAR_CHECK(counts.size() == config_.numClasses,
                "counts must cover every class");
    DatasetBuilder builder;
    for (size_t c = 0; c < counts.size(); ++c)
        for (size_t i = 0; i < counts[c]; ++i)
            builder.add(sample(static_cast<int>(c), rng),
                        static_cast<int>(c));
    Dataset d = builder.build();
    // Shuffle rows so batches are class-mixed.
    std::vector<size_t> order(d.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    rng.shuffle(order);
    return d.subset(order);
}

} // namespace nazar::data
