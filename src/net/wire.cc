#include "net/wire.h"

#include <cstring>

#include "common/error.h"

namespace nazar::net {

using persist::Reader;
using persist::Writer;

namespace {

bool
knownType(uint8_t t)
{
    return t >= static_cast<uint8_t>(MsgType::kHello) &&
           t <= static_cast<uint8_t>(MsgType::kBusy);
}

/** Tagged driftlog::Value with dict-encoded strings. */
void
putValueInterned(Writer &w, const driftlog::Value &v, StringDict &dict)
{
    w.putU8(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case driftlog::ValueType::kNull:
        break;
      case driftlog::ValueType::kInt:
        w.putI64(v.asInt());
        break;
      case driftlog::ValueType::kDouble:
        w.putF64(v.asDouble());
        break;
      case driftlog::ValueType::kBool:
        w.putBool(v.asBool());
        break;
      case driftlog::ValueType::kString:
        dict.encode(w, v.asString());
        break;
    }
}

driftlog::Value
getValueInterned(Reader &r, StringDict &dict)
{
    auto type = static_cast<driftlog::ValueType>(r.getU8());
    switch (type) {
      case driftlog::ValueType::kNull:
        return driftlog::Value();
      case driftlog::ValueType::kInt:
        return driftlog::Value(r.getI64());
      case driftlog::ValueType::kDouble:
        return driftlog::Value(r.getF64());
      case driftlog::ValueType::kBool:
        return driftlog::Value(r.getBool());
      case driftlog::ValueType::kString:
        return driftlog::Value(dict.decode(r));
    }
    throw NazarError("wire: unknown Value type tag " +
                     std::to_string(static_cast<int>(type)));
}

void
putAttributeSetInterned(Writer &w, const rca::AttributeSet &attrs,
                        StringDict &dict)
{
    w.putU32(static_cast<uint32_t>(attrs.size()));
    for (const auto &attr : attrs.attributes()) {
        dict.encode(w, attr.column);
        putValueInterned(w, attr.value, dict);
    }
}

rca::AttributeSet
getAttributeSetInterned(Reader &r, StringDict &dict)
{
    uint32_t n = r.getU32();
    // Each attribute needs at least a dict id (4 bytes) plus a value
    // tag; bound the count before reserving so a corrupt frame with a
    // recomputed CRC can't trigger a huge allocation.
    NAZAR_CHECK(static_cast<uint64_t>(n) * 5 <= r.remaining(),
                "wire: attribute count exceeds frame");
    std::vector<rca::Attribute> attrs;
    attrs.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        rca::Attribute attr;
        attr.column = dict.decode(r);
        attr.value = getValueInterned(r, dict);
        attrs.push_back(std::move(attr));
    }
    return rca::AttributeSet(std::move(attrs));
}

} // namespace

std::string
encodeFrame(MsgType type, const std::string &payload)
{
    Writer body;
    body.putU8(static_cast<uint8_t>(type));
    body.putBytes(payload.data(), payload.size());

    Writer frame;
    frame.putU32(static_cast<uint32_t>(body.size()));
    frame.putU32(persist::crc32(body.bytes().data(), body.size()));
    frame.putBytes(body.bytes().data(), body.size());
    return frame.take();
}

void
FrameParser::feed(const char *data, size_t len)
{
    // Compact once the consumed prefix dominates, so a long-lived
    // connection doesn't grow the buffer without bound.
    if (pos_ > 0 && pos_ >= buf_.size() / 2) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, len);
}

std::optional<Frame>
FrameParser::next()
{
    if (buf_.size() - pos_ < 8)
        return std::nullopt;
    Reader head(buf_.data() + pos_, 8);
    uint32_t len = head.getU32();
    uint32_t crc = head.getU32();
    NAZAR_CHECK(len >= 1 && len <= kMaxFrameBytes,
                "wire: frame length " + std::to_string(len) +
                    " out of range");
    if (buf_.size() - pos_ - 8 < len)
        return std::nullopt;
    const char *body = buf_.data() + pos_ + 8;
    NAZAR_CHECK(persist::crc32(body, len) == crc,
                "wire: frame CRC mismatch");
    uint8_t type = static_cast<uint8_t>(body[0]);
    NAZAR_CHECK(knownType(type),
                "wire: unknown message type " + std::to_string(type));
    Frame frame;
    frame.type = static_cast<MsgType>(type);
    frame.payload.assign(body + 1, len - 1);
    pos_ += 8 + len;
    return frame;
}

void
StringDict::encode(Writer &w, const std::string &s)
{
    auto it = ids_.find(s);
    if (it != ids_.end()) {
        w.putU32(it->second);
        ++hits_;
        return;
    }
    uint32_t id = static_cast<uint32_t>(strings_.size());
    NAZAR_CHECK(id != kNewString, "wire: string dictionary full");
    ids_.emplace(s, id);
    strings_.push_back(s);
    w.putU32(kNewString);
    w.putString(s);
}

std::string
StringDict::decode(Reader &r)
{
    uint32_t id = r.getU32();
    if (id == kNewString) {
        std::string s = r.getString();
        // Idempotent define: a retransmitted (duplicated) frame
        // replays its definition bytes, and re-adding would desync
        // the decoder's ids from the encoder's.
        if (ids_.find(s) == ids_.end()) {
            ids_.emplace(s, static_cast<uint32_t>(strings_.size()));
            strings_.push_back(s);
        }
        return s;
    }
    NAZAR_CHECK(id < strings_.size(),
                "wire: string id " + std::to_string(id) +
                    " out of range");
    return strings_[id];
}

std::string
encodeIngest(const WireIngest &m, StringDict &dict)
{
    Writer w;
    w.putI64(m.device);
    w.putU64(m.seq);
    w.putU32(static_cast<uint32_t>(m.entry.time.dayIndex()));
    w.putU32(static_cast<uint32_t>(m.entry.time.secondOfDay()));
    dict.encode(w, m.entry.deviceId);
    dict.encode(w, m.entry.deviceModel);
    dict.encode(w, m.entry.location);
    dict.encode(w, m.entry.weather);
    w.putI64(m.entry.modelVersion);
    w.putBool(m.entry.drift);
    w.putBool(m.upload.has_value());
    if (m.upload.has_value()) {
        w.putU64(m.upload->features.size());
        for (double f : m.upload->features)
            w.putF64(f);
        putAttributeSetInterned(w, m.upload->context, dict);
        w.putBool(m.upload->driftFlag);
    }
    if (m.traceId != 0) {
        w.putU8(1); // Extension count.
        w.putU8(kExtTraceContext);
        w.putU32(16);
        w.putU64(m.traceId);
        w.putU64(m.spanId);
    }
    return w.take();
}

WireIngest
decodeIngest(const std::string &payload, StringDict &dict)
{
    Reader r(payload);
    WireIngest m;
    m.device = r.getI64();
    m.seq = r.getU64();
    int day = static_cast<int>(r.getU32());
    int second = static_cast<int>(r.getU32());
    m.entry.time = SimDate(day, second);
    m.entry.deviceId = dict.decode(r);
    m.entry.deviceModel = dict.decode(r);
    m.entry.location = dict.decode(r);
    m.entry.weather = dict.decode(r);
    m.entry.modelVersion = r.getI64();
    m.entry.drift = r.getBool();
    if (r.getBool()) {
        persist::UploadRecord up;
        uint64_t n = r.getU64();
        NAZAR_CHECK(n * 8 <= r.remaining(),
                    "wire: upload feature count exceeds frame");
        up.features.reserve(static_cast<size_t>(n));
        for (uint64_t i = 0; i < n; ++i)
            up.features.push_back(r.getF64());
        up.context = getAttributeSetInterned(r, dict);
        up.driftFlag = r.getBool();
        m.upload = std::move(up);
    }
    if (!r.atEnd()) {
        uint8_t extCount = r.getU8();
        for (uint8_t i = 0; i < extCount; ++i) {
            uint8_t tag = r.getU8();
            uint32_t len = r.getU32();
            NAZAR_CHECK(len <= r.remaining(),
                        "wire: extension length exceeds frame");
            if (tag == kExtTraceContext && len == 16) {
                m.traceId = r.getU64();
                m.spanId = r.getU64();
            } else {
                r.skip(len); // Unknown tag: forward compatible.
            }
        }
    }
    NAZAR_CHECK(r.atEnd(), "wire: trailing bytes in kIngest payload");
    return m;
}

std::string
encodeAck(const WireAck &a)
{
    Writer w;
    w.putI64(a.device);
    w.putU64(a.seq);
    w.putBool(a.accepted);
    return w.take();
}

WireAck
decodeAck(const std::string &payload)
{
    Reader r(payload);
    WireAck a;
    a.device = r.getI64();
    a.seq = r.getU64();
    a.accepted = r.getBool();
    NAZAR_CHECK(r.atEnd(), "wire: trailing bytes in kAck payload");
    return a;
}

std::string
encodeHello(const WireHello &h)
{
    Writer w;
    w.putU32(h.protoVersion);
    w.putString(h.clientName);
    // Trailing optional: only reconnect handshakes carry the flag, so
    // a fresh session's kHello stays byte-identical to the pre-resume
    // protocol.
    if (h.wantResume)
        w.putBool(true);
    return w.take();
}

WireHello
decodeHello(const std::string &payload)
{
    Reader r(payload);
    WireHello h;
    h.protoVersion = r.getU32();
    h.clientName = r.getString();
    if (!r.atEnd())
        h.wantResume = r.getBool();
    return h;
}

std::string
encodeHelloAck(const WireHelloAck &h)
{
    Writer w;
    w.putU32(h.protoVersion);
    w.putBool(h.cleanPatchText.has_value());
    if (h.cleanPatchText.has_value()) {
        w.putString(*h.cleanPatchText);
        w.putI64(h.cleanPatchTime);
    }
    // Trailing optional resume block (answers kHello.wantResume).
    if (!h.resumeHighWater.empty()) {
        w.putU32(static_cast<uint32_t>(h.resumeHighWater.size()));
        for (const auto &[device, highWater] : h.resumeHighWater) {
            w.putI64(device);
            w.putU64(highWater);
        }
    }
    return w.take();
}

WireHelloAck
decodeHelloAck(const std::string &payload)
{
    Reader r(payload);
    WireHelloAck h;
    h.protoVersion = r.getU32();
    if (r.getBool()) {
        h.cleanPatchText = r.getString();
        h.cleanPatchTime = r.getI64();
    }
    if (!r.atEnd()) {
        uint32_t n = r.getU32();
        NAZAR_CHECK(static_cast<uint64_t>(n) * 16 <= r.remaining(),
                    "wire: resume block count exceeds frame");
        h.resumeHighWater.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
            int64_t device = r.getI64();
            uint64_t highWater = r.getU64();
            h.resumeHighWater.emplace_back(device, highWater);
        }
    }
    return h;
}

std::string
encodeCycleDone(const WireCycleDone &c)
{
    Writer w;
    w.putU32(c.versionCount);
    w.putU32(c.rootCauses);
    w.putU32(c.skippedCauses);
    w.putU64(c.adaptedSampleCount);
    w.putBool(c.cleanPatchText.has_value());
    if (c.cleanPatchText.has_value())
        w.putString(*c.cleanPatchText);
    return w.take();
}

WireCycleDone
decodeCycleDone(const std::string &payload)
{
    Reader r(payload);
    WireCycleDone c;
    c.versionCount = r.getU32();
    c.rootCauses = r.getU32();
    c.skippedCauses = r.getU32();
    c.adaptedSampleCount = r.getU64();
    if (r.getBool())
        c.cleanPatchText = r.getString();
    return c;
}

std::string
encodeByeAck(const WireByeAck &b)
{
    Writer w;
    w.putU64(b.totalIngested);
    w.putU64(b.dedupHits);
    return w.take();
}

WireByeAck
decodeByeAck(const std::string &payload)
{
    Reader r(payload);
    WireByeAck b;
    b.totalIngested = r.getU64();
    b.dedupHits = r.getU64();
    return b;
}

std::string
encodeBusy(const WireBusy &b)
{
    Writer w;
    w.putU32(b.queueDepth);
    return w.take();
}

WireBusy
decodeBusy(const std::string &payload)
{
    Reader r(payload);
    WireBusy b;
    b.queueDepth = r.getU32();
    NAZAR_CHECK(r.atEnd(), "wire: trailing bytes in kBusy payload");
    return b;
}

} // namespace nazar::net
