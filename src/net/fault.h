/**
 * @file
 * Fault model for the device↔cloud channel.
 *
 * The paper's prototype (§5.8) rides a reliable AWS pipeline, so the
 * simulation historically assumed every drift-log upload arrives
 * exactly once and every version push lands instantly. Real mobile
 * fleets violate all of that: packets drop, retries duplicate,
 * delivery reorders, devices crash or spend whole epochs offline, and
 * pushes miss devices. `FaultConfig` describes those failure modes as
 * seed-driven probabilities; `net::Channel` (channel.h) applies them
 * deterministically.
 *
 * Determinism contract:
 *  - A default-constructed `FaultConfig` (all probabilities zero) puts
 *    the channel in pass-through mode: no fault RNG is ever consumed
 *    and delivery order equals send order, so runs are bit-identical
 *    to a build without the net layer at any `NAZAR_THREADS`.
 *  - With faults on, every draw comes from a channel-owned Rng seeded
 *    by `seed` and consumed in a fixed order (devices ascending, then
 *    messages in send order), so a faulted run is reproducible from
 *    (workload seed, fault seed) alone and is independent of the
 *    runtime thread count — the channel runs on the emitting thread.
 */
#ifndef NAZAR_NET_FAULT_H
#define NAZAR_NET_FAULT_H

#include <cstddef>
#include <cstdint>

namespace nazar::net {

/** Seed-driven unreliable-transport knobs for one device↔cloud link. */
struct FaultConfig
{
    // ---- Per-message uplink faults (device → cloud) -----------------
    double dropProb = 0.0;    ///< Each delivery attempt is lost.
    double dupProb = 0.0;     ///< A delivered message arrives twice.
    double delayProb = 0.0;   ///< Held until the next delivery round.
    double reorderProb = 0.0; ///< Arrival jitters later in the round.

    // ---- Per-device-per-epoch fleet faults --------------------------
    double offlineProb = 0.0; ///< Device spends the whole epoch offline.
    double crashProb = 0.0;   ///< Crash-restart: the send queue is lost.

    // ---- Downlink faults (cloud → device version push) --------------
    double pushDropProb = 0.0; ///< A version push misses the device.

    // ---- Recovery policy --------------------------------------------
    /** Delivery attempts per message (1 initial try + retries). */
    int maxAttempts = 4;
    /** Backoff before the first retry, in abstract latency ticks. */
    double backoffBase = 1.0;
    /** Cap on the exponential backoff between attempts. */
    double backoffCap = 8.0;
    /** Give up once a message's cumulative backoff exceeds this. */
    double timeoutTicks = 32.0;
    /** Per-device send-queue bound; oldest entries are shed when full
     *  (0 = unbounded). */
    size_t queueCapacity = 0;
    /** Per-device sequence numbers the cloud remembers for dedup. */
    size_t dedupWindow = 4096;

    /** Fault RNG seed — an independent stream from the workload RNG. */
    uint64_t seed = 0x5eedf00dULL;

    /**
     * True when any fault can actually fire (a nonzero probability or
     * a bounded queue, whose shedding is itself a fault source).
     * False selects the pass-through channel (no RNG draws, delivery
     * order == send order) — the bit-identity mode.
     */
    bool anyFaults() const;

    /** Capped exponential backoff before retry @p attempt (1-based). */
    double backoffBeforeRetry(int attempt) const;
};

/**
 * Session-layer recovery policy for IngestClient: when the server
 * vanishes mid-session (crash, restart, receive deadline), the client
 * reconnects with the same capped exponential backoff shape as
 * FaultConfig — in real milliseconds rather than abstract ticks —
 * re-handshakes, and retransmits its unacked frames (see
 * ingest_client.h for the exactly-once reconciliation contract).
 * Disabled by default: a default-constructed policy leaves the client
 * byte-identical to the pre-session protocol.
 */
struct ReconnectPolicy
{
    bool enabled = false;
    /** Connect attempts per outage before the error propagates. */
    int maxAttempts = 40;
    /** Backoff before the first reconnect attempt, in milliseconds. */
    double backoffBaseMs = 5.0;
    /** Cap on the exponential backoff between attempts. */
    double backoffCapMs = 250.0;
    /**
     * Optional SO_RCVTIMEO receive deadline on the client socket so a
     * blocking drain cannot wedge forever on a silently dead peer
     * (0 = no deadline). A timeout surfaces as net::TcpTimeout and,
     * with `enabled`, triggers the reconnect path. Leave at 0 when the
     * server can legitimately go quiet for long stretches (e.g. the
     * remote runner waiting on an analysis cycle).
     */
    int recvTimeoutMs = 0;

    /** Capped exponential delay before reconnect @p attempt (1-based). */
    double backoffBeforeAttemptMs(int attempt) const;
};

} // namespace nazar::net

#endif // NAZAR_NET_FAULT_H
