/**
 * @file
 * Implementation of the fault-model helpers.
 */
#include "fault.h"

#include <algorithm>
#include <cmath>

namespace nazar::net {

bool
FaultConfig::anyFaults() const
{
    return dropProb > 0.0 || dupProb > 0.0 || delayProb > 0.0 ||
           reorderProb > 0.0 || offlineProb > 0.0 || crashProb > 0.0 ||
           pushDropProb > 0.0 || queueCapacity > 0;
}

double
FaultConfig::backoffBeforeRetry(int attempt) const
{
    double raw = backoffBase * std::pow(2.0, attempt - 1);
    return std::min(backoffCap, raw);
}

double
ReconnectPolicy::backoffBeforeAttemptMs(int attempt) const
{
    double raw = backoffBaseMs * std::pow(2.0, attempt - 1);
    return std::min(backoffCapMs, raw);
}

} // namespace nazar::net
