#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"

namespace nazar::net {

namespace {

sockaddr_in
loopbackAddr(uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

} // namespace

TcpStream::TcpStream(TcpStream &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      eof_(std::exchange(other.eof_, false)),
      parser_(std::move(other.parser_))
{
}

TcpStream &
TcpStream::operator=(TcpStream &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        eof_ = std::exchange(other.eof_, false);
        parser_ = std::move(other.parser_);
    }
    return *this;
}

TcpStream
TcpStream::connect(uint16_t port)
{
    for (;;) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        NAZAR_CHECK(fd >= 0, "tcp: socket() failed: " +
                                 std::string(std::strerror(errno)));
        sockaddr_in addr = loopbackAddr(port);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            int err = errno;
            ::close(fd);
            // An interrupted connect leaves the socket in an
            // unspecified state; restart with a fresh fd rather than
            // surfacing the signal as a connection failure.
            if (err == EINTR)
                continue;
            throw NazarError("tcp: connect to 127.0.0.1:" +
                             std::to_string(port) +
                             " failed: " + std::strerror(err));
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return TcpStream(fd);
    }
}

bool
TcpStream::sendBytes(const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd_, bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // peer gone (EPIPE/ECONNRESET) or error
        }
        sent += static_cast<size_t>(n);
    }
    return true;
}

bool
TcpStream::sendFrame(MsgType type, const std::string &payload)
{
    return sendBytes(encodeFrame(type, payload));
}

std::optional<Frame>
TcpStream::recvFrame()
{
    for (;;) {
        if (auto frame = parser_.next())
            return frame;
        if (eof_) {
            NAZAR_CHECK(parser_.buffered() == 0,
                        "tcp: connection closed mid-frame");
            return std::nullopt; // orderly EOF
        }
        char buf[1 << 16];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // With SO_RCVTIMEO armed, a blocking recv that exceeds
            // the deadline fails with EAGAIN/EWOULDBLOCK.
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                throw TcpTimeout("tcp: receive deadline exceeded");
            throw NazarError("tcp: recv failed: " +
                             std::string(std::strerror(errno)));
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        parser_.feed(buf, static_cast<size_t>(n));
    }
}

std::optional<Frame>
TcpStream::tryRecvFrame()
{
    for (;;) {
        if (auto frame = parser_.next())
            return frame;
        if (eof_)
            return std::nullopt;
        char buf[1 << 16];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return std::nullopt;
            throw NazarError("tcp: recv failed: " +
                             std::string(std::strerror(errno)));
        }
        if (n == 0) {
            eof_ = true;
            return std::nullopt;
        }
        parser_.feed(buf, static_cast<size_t>(n));
    }
}

void
TcpStream::setRecvTimeout(int ms)
{
    if (fd_ < 0)
        return;
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void
TcpStream::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
TcpStream::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
TcpListener::listen(uint16_t port, int backlog)
{
    NAZAR_CHECK(fd_ < 0, "tcp: listener already listening");
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    NAZAR_CHECK(fd >= 0, "tcp: socket() failed: " +
                             std::string(std::strerror(errno)));
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopbackAddr(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        int err = errno;
        ::close(fd);
        throw NazarError("tcp: bind 127.0.0.1:" + std::to_string(port) +
                         " failed: " + std::strerror(err));
    }
    if (::listen(fd, backlog) != 0) {
        int err = errno;
        ::close(fd);
        throw NazarError("tcp: listen failed: " +
                         std::string(std::strerror(err)));
    }
    socklen_t len = sizeof(addr);
    NAZAR_CHECK(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                              &len) == 0,
                "tcp: getsockname failed");
    fd_ = fd;
    port_ = ntohs(addr.sin_port);
}

TcpStream
TcpListener::accept()
{
    for (;;) {
        int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return TcpStream(fd);
        }
        if (errno == EINTR)
            continue;
        return TcpStream(); // listener shut down or fatal error
    }
}

void
TcpListener::stop()
{
    // shutdown() first: it wakes a blocked accept() without the
    // close()-from-another-thread fd-reuse race.
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace nazar::net
