/**
 * @file
 * Client side of the ingest wire protocol (wire.h) with an optional
 * socket-level chaos layer.
 *
 * The chaos layer reuses net::FaultConfig to stress the server's
 * retry/dedup semantics over a real socket: `dropProb` simulates a
 * send lost before reaching the wire (retried up to maxAttempts, then
 * given up — the message is never sent), and `dupProb` simulates a
 * retransmission whose original ack was lost (the frame is sent
 * twice, byte-identical, and the server's dedup window must reject
 * the copy). TCP itself is reliable, so these are the only two
 * transport faults that are observable end-to-end; the reconciliation
 * invariant a load test asserts is
 *
 *     acksAccepted == sent - (dedup losses)      and
 *     acksRejected == duplicates (+ upstream channel dups)
 *
 * which for unique (device, seq) pairs reduces to
 * acksAccepted == sent, acksRejected == duplicates.
 *
 * Acks are drained opportunistically (non-blocking) after every send
 * so neither side can wedge with both peers blocked in send(), and
 * drained fully at the protocol barriers (cycle/flush/bye).
 *
 * Session layer (ReconnectPolicy::enabled): the client survives a
 * server crash–restart. Every in-flight ingest is remembered (decoded
 * form, keyed by (device, seq)) until its acks settle; on any
 * connection failure the client reconnects with capped exponential
 * backoff, re-handshakes with `wantResume`, and reconciles against
 * the server's recovered per-device high-water seqs: entries at or
 * below the high water landed (credited as accepted without a resend
 * — `resumedLanded`), the rest are re-encoded against the fresh
 * string dictionary and retransmitted (`resent`); the server's dedup
 * window guarantees exactly-once application, and the accounting
 * keeps the reconciliation invariant above intact across any number
 * of crashes (acksAccepted == sent − gaveUp, acksRejected ==
 * duplicates). With the policy disabled (the default) none of this
 * machinery runs and the wire bytes are identical to the pre-session
 * protocol.
 *
 * Cycle/flush/bye caveat: ingest retransmission is exactly-once, but
 * a crash after the server committed a cycle and before its reply
 * reached the client makes the retried request run a second cycle —
 * those barriers are at-least-once (see DESIGN.md §14).
 */
#ifndef NAZAR_NET_INGEST_CLIENT_H
#define NAZAR_NET_INGEST_CLIENT_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/fault.h"
#include "net/tcp.h"
#include "net/wire.h"

namespace nazar::net {

/** Everything the client did, for reconciliation and benches. */
struct ClientStats
{
    uint64_t sent = 0;         ///< Ingest messages put on the wire.
    uint64_t gaveUp = 0;       ///< Dropped by chaos before the wire.
    uint64_t retries = 0;      ///< Chaos re-attempts after a drop.
    uint64_t duplicates = 0;   ///< Extra byte-identical frame copies.
    uint64_t framesSent = 0;   ///< sent + duplicates.
    uint64_t acksAccepted = 0; ///< Server accepted (first arrival).
    uint64_t acksRejected = 0; ///< Server dedup-rejected (dup/replay).

    // ---- Session-layer tallies (ReconnectPolicy enabled) ------------
    uint64_t reconnects = 0;     ///< Successful reconnect handshakes.
    uint64_t resent = 0;         ///< Frames retransmitted after resume.
    uint64_t resumedLanded = 0;  ///< Credited landed via resume seqs.
    uint64_t resentRejected = 0; ///< Surplus rejected acks absorbed.
    uint64_t busySeen = 0;       ///< kBusy advisories received.
};

/** One cycle run remotely: the summary + published version blobs. */
struct RemoteCycle
{
    WireCycleDone done;
    /** deploy::ModelVersion::save text, one per published version. */
    std::vector<std::string> versionTexts;
};

/**
 * A connected ingest-protocol client. Not thread-safe; one owner
 * drives the connection (mirrors a device's uplink being serial).
 */
class IngestClient
{
  public:
    /**
     * Connect to 127.0.0.1:@p port and complete the kHello handshake.
     * Throws NazarError on connect/handshake failure or a protocol
     * version mismatch. With @p reconnect enabled, the initial
     * connect is itself retried with backoff, and every later
     * connection failure triggers the session resume protocol.
     */
    IngestClient(uint16_t port, const FaultConfig &chaos = {},
                 const std::string &client_name = "client",
                 const ReconnectPolicy &reconnect = {});

    /** The server's handshake reply (recovered clean patch, if any). */
    const WireHelloAck &helloAck() const { return helloAck_; }

    /**
     * Send one ingest attempt through the chaos layer. Returns false
     * when chaos gave the message up (it never reached the wire and
     * no ack will come). Throws NazarError if the server vanished.
     */
    bool sendIngest(const WireIngest &m);

    /**
     * Run one analysis cycle remotely: drains outstanding acks, then
     * returns the cycle summary plus the published version blobs.
     */
    RemoteCycle requestCycle(const std::string &clean_patch_text);

    /** Archive the server's buffers without analysis (kFlush edge). */
    void requestFlush();

    /**
     * End the session: drain acks, exchange kBye/kByeAck, observe
     * EOF. Returns the server's final tallies.
     */
    WireByeAck bye();

    const ClientStats &stats() const { return stats_; }

    /** Frames sent whose ack has not arrived yet. */
    uint64_t outstandingAcks() const { return outstanding_; }

    /** Distinct strings interned on the send side. */
    size_t dictStrings() const { return dict_.size(); }

    /** String occurrences sent as a bare u32 id. */
    uint64_t dictHits() const { return dict_.hits(); }

    /**
     * Observer invoked for every ack as it is absorbed (load gen uses
     * it to clock ack round-trip latency per (device, seq)).
     */
    void setAckObserver(std::function<void(const WireAck &)> fn)
    {
        ackObserver_ = std::move(fn);
    }

  private:
    /** Count one ack (kBusy advisories are tallied and absorbed). */
    void onAck(const Frame &frame);

    /** Non-blocking: absorb whatever acks are already readable. */
    void pumpAcks();

    /** Block until every outstanding ack has arrived (resumes). */
    void drainAcks();

    /** Blocking receive that treats EOF as a protocol error and
     *  absorbs kBusy advisories. */
    Frame expectFrame();

    /** kHello/kHelloAck exchange on the current stream. */
    void handshake(bool want_resume);

    /**
     * The session recovery path: reconnect with capped backoff,
     * re-handshake with wantResume, settle pending entries against
     * the server's high-water seqs, retransmit the rest. Throws
     * (a .cc-local ReconnectFailed, itself a NazarError) once
     * ReconnectPolicy::maxAttempts is exhausted.
     */
    void reconnectAndResume();

    /** Resume step: credit landed entries, retransmit the rest. */
    void settleAndRetransmit();

    /**
     * A traced in-flight ingest: the root context minted at send time
     * (its ids rode the wire) and the send timestamp. Closed into the
     * `net.client.ingest` root span when the ack arrives, so the root
     * covers send → ack and every server-side child links under it.
     * Present only while obs tracing is on; otherwise no entries are
     * ever created and the send path is untouched.
     */
    struct PendingTrace
    {
        uint64_t traceId = 0;
        uint64_t spanId = 0;
        std::chrono::steady_clock::time_point start;
    };

    /**
     * One session-tracked ingest, alive until its acks settle. The
     * accounting is idempotent across any number of crashes: the
     * unique accepted credit is guarded by `acceptedCredited`, and
     * rejected credits only accrue up to `targetRejects` (one per
     * duplicate copy owed a dedup rejection) — surplus rejected acks
     * from crash retransmits are absorbed as `resentRejected`.
     */
    struct Pending
    {
        WireIngest msg;
        /** Registration index: retransmits go out in original send
         *  order, so the restarted committer sees the same global
         *  arrival order the uncrashed run produced (drift-log rows
         *  and upload-buffer order are reproduced exactly). */
        uint64_t order = 0;
        int copies = 0;          ///< Frames on the wire awaiting acks.
        int targetRejects = 0;   ///< Duplicate copies owed a rejection.
        int rejectsCredited = 0; ///< Rejections credited so far.
        bool acceptedCredited = false; ///< Accepted credit spent.
    };

    TcpStream stream_;
    StringDict dict_;
    FaultConfig chaos_;
    bool chaosOn_ = false;
    Rng rng_;
    uint16_t port_ = 0;
    std::string clientName_;
    ReconnectPolicy policy_;
    bool sessionOn_ = false;
    ClientStats stats_;
    uint64_t outstanding_ = 0;
    WireHelloAck helloAck_;
    std::function<void(const WireAck &)> ackObserver_;
    std::map<std::pair<int64_t, uint64_t>, PendingTrace> pendingTraces_;
    /** Unsettled ingests by (device, seq); ascending seq per device. */
    std::map<std::pair<int64_t, uint64_t>, Pending> pending_;
    /** Next Pending::order value (counts registrations, not frames). */
    uint64_t nextPendingOrder_ = 0;
};

} // namespace nazar::net

#endif // NAZAR_NET_INGEST_CLIENT_H
