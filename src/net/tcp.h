/**
 * @file
 * Minimal blocking TCP wrappers for the ingest server and its
 * clients: a loopback-bound listener with ephemeral-port support and
 * a stream handle with whole-frame send/receive built on
 * net::FrameParser.
 *
 * Scope is deliberately narrow — IPv4 loopback, blocking I/O, one
 * reader per stream — because the concurrency lives in the server's
 * thread structure, not in the socket layer. SIGPIPE is suppressed
 * per-send (MSG_NOSIGNAL) so a vanished peer surfaces as an error
 * return, not a process kill.
 *
 * EINTR contract: every blocking syscall here (connect, accept, send,
 * recv) retries on EINTR instead of surfacing it as peer-gone — a
 * stray signal (e.g. SIGCHLD in the supervise harness) must never be
 * mistaken for a dead connection.
 */
#ifndef NAZAR_NET_TCP_H
#define NAZAR_NET_TCP_H

#include <cstdint>
#include <optional>
#include <string>

#include "common/error.h"
#include "net/wire.h"

namespace nazar::net {

/**
 * A blocking receive exceeded the SO_RCVTIMEO deadline set via
 * TcpStream::setRecvTimeout. Distinct from NazarError so callers can
 * tell "peer is slow/silent" (reap or reconnect) from "peer sent
 * garbage" (protocol error) — but still a NazarError so existing
 * catch sites treat it as a connection failure.
 */
class TcpTimeout : public NazarError
{
  public:
    explicit TcpTimeout(const std::string &what) : NazarError(what) {}
};

/** One connected TCP stream (client or accepted) with frame I/O. */
class TcpStream
{
  public:
    TcpStream() = default;
    explicit TcpStream(int fd) : fd_(fd) {}
    ~TcpStream() { close(); }

    TcpStream(TcpStream &&other) noexcept;
    TcpStream &operator=(TcpStream &&other) noexcept;
    TcpStream(const TcpStream &) = delete;
    TcpStream &operator=(const TcpStream &) = delete;

    /** Connect to 127.0.0.1:@p port; throws NazarError on failure. */
    static TcpStream connect(uint16_t port);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Send one whole frame; returns false when the peer is gone
     * (EPIPE/ECONNRESET). Short writes are retried internally.
     */
    bool sendFrame(MsgType type, const std::string &payload);

    /** Raw byte send (used by the chaos layer to duplicate frames). */
    bool sendBytes(const std::string &bytes);

    /**
     * Receive the next frame, blocking. nullopt on orderly EOF;
     * throws NazarError on a corrupt frame or socket error.
     */
    std::optional<Frame> recvFrame();

    /**
     * Non-blocking variant: drain whatever bytes are readable right
     * now and return a complete frame when one is buffered. nullopt
     * means "nothing complete yet" (or EOF already seen — check
     * eofSeen()). Lets a sender pump acks without stalling, avoiding
     * the both-sides-blocked-in-send() deadlock on full buffers.
     */
    std::optional<Frame> tryRecvFrame();

    /** True once the peer's EOF has been observed by a recv. */
    bool eofSeen() const { return eof_; }

    /**
     * Arm a receive deadline (SO_RCVTIMEO): a recvFrame() that blocks
     * longer than @p ms without receiving any bytes throws TcpTimeout.
     * 0 disarms. Guards blocking drains against a silently dead peer.
     */
    void setRecvTimeout(int ms);

    /** Shut down the write side (signals EOF to the peer's reader). */
    void shutdownWrite();

    void close();

  private:
    int fd_ = -1;
    bool eof_ = false;
    FrameParser parser_;
};

/** Loopback listener; port 0 binds an ephemeral port. */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener() { close(); }

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** Bind + listen on 127.0.0.1:@p port; throws on failure. */
    void listen(uint16_t port, int backlog = 64);

    /** The bound port (resolves an ephemeral bind). */
    uint16_t port() const { return port_; }

    bool listening() const { return fd_ >= 0; }

    /**
     * Accept one connection; an invalid stream means the listener was
     * shut down (the accept loop should exit).
     */
    TcpStream accept();

    /**
     * Unblock any accept() in progress and stop listening. Safe to
     * call from another thread: shutdown(2) on the listening fd wakes
     * the blocked accept before the fd is closed.
     */
    void stop();

    void close();

  private:
    int fd_ = -1;
    uint16_t port_ = 0;
};

} // namespace nazar::net

#endif // NAZAR_NET_TCP_H
