/**
 * @file
 * The Nazar ingest wire protocol: length-prefixed, CRC-checked binary
 * frames over a byte stream (TCP), reusing the persist::serial codec
 * the WAL records are built from.
 *
 * Frame layout (mirrors a WAL record, so a torn or corrupt frame is
 * detected the same way a torn WAL tail is):
 *
 *     [u32 bodyLen][u32 crc32(body)][body]
 *     body = [u8 msgType][payload...]
 *
 * Message set:
 *
 *     kHello        client→server  protoVersion, client name
 *     kHelloAck     server→client  protoVersion, recovered clean
 *                                  patch (optional) + its logical time
 *     kIngest       client→server  one sequenced ingest attempt
 *                                  (interned strings, see StringDict)
 *     kAck          server→client  (device, seq, accepted) — false
 *                                  means the dedup window rejected it
 *     kCycleRequest client→server  clean BN patch (BnPatch::save text)
 *     kCycleDone    server→client  cycle summary + clean patch, the
 *                                  published versions follow as
 *                                  kVersionPush frames
 *     kVersionPush  server→client  one ModelVersion::save text blob
 *     kFlushRequest client→server  archive buffers without analysis
 *     kFlushDone    server→client
 *     kBye          client→server  end of session
 *     kByeAck       server→client  final server tallies
 *     kBusy         server→client  advisory: committer queue full, the
 *                                  reader has stopped draining; sent
 *                                  at most once per blocking episode
 *
 * Extensions: a kIngest payload may end with an optional extension
 * block — [u8 extCount] then per extension [u8 tag][u32 len][bytes].
 * Decoders skip unknown tags (forward compatible: an old peer built
 * before a tag existed ignores it), and an absent block encodes
 * byte-identically to the pre-extension protocol, so extension-free
 * peers interoperate unchanged. Tag 1 (kExtTraceContext) carries the
 * obs trace context (u64 traceId + u64 spanId) so a device upload's
 * causal trace continues across the process boundary into the
 * server's reader and committer threads.
 *
 * kHello/kHelloAck use the same trailing-optional pattern for session
 * resume: a reconnecting client appends a `wantResume` bool to its
 * kHello, and the server answers with a resume block of recovered
 * per-device high-water seqs on the kHelloAck. Both are encoded only
 * when present (fresh sessions never carry them), so fault-free runs
 * stay byte-identical to the pre-resume protocol; decoders built
 * before the fields existed never read past their known prefix, so
 * old/new peers interoperate.
 *
 * String interning: device ids, locations, weather strings and
 * attribute columns repeat in almost every kIngest payload, so each
 * connection direction carries a StringDict. The first occurrence of
 * a string is sent as [u32 kNewString][string] and assigned the next
 * id; later occurrences are just [u32 id]. Encoder and decoder stay
 * in lockstep because both assign ids in arrival order; a duplicated
 * (retransmitted) frame replays its definition bytes, so defines are
 * idempotent on the decode side.
 *
 * This header lives in net (not server) so the client side — used by
 * sim::Runner's remote mode — stays free of a dependency on sim.
 */
#ifndef NAZAR_NET_WIRE_H
#define NAZAR_NET_WIRE_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "driftlog/drift_log.h"
#include "persist/serial.h"

namespace nazar::net {

/** Protocol revision carried in kHello/kHelloAck. */
inline constexpr uint32_t kProtocolVersion = 1;

/** Upper bound on one frame's body; larger lengths are corruption. */
inline constexpr uint32_t kMaxFrameBytes = 1u << 26;

enum class MsgType : uint8_t {
    kHello = 1,
    kHelloAck = 2,
    kIngest = 3,
    kAck = 4,
    kCycleRequest = 5,
    kCycleDone = 6,
    kVersionPush = 7,
    kFlushRequest = 8,
    kFlushDone = 9,
    kBye = 10,
    kByeAck = 11,
    kBusy = 12,
};

/** One decoded frame. */
struct Frame
{
    MsgType type;
    std::string payload;
};

/** Serialize one frame (header + CRC + body). */
std::string encodeFrame(MsgType type, const std::string &payload);

/**
 * Incremental frame decoder over an arbitrary chunking of the byte
 * stream. feed() appends bytes; next() yields complete frames and
 * throws NazarError on a corrupt one (CRC mismatch, oversized length,
 * unknown message type) — a wire peer, unlike the WAL scan, cannot
 * "truncate the tail" and must drop the connection instead.
 */
class FrameParser
{
  public:
    void feed(const char *data, size_t len);

    /** Next complete frame, or nullopt when more bytes are needed. */
    std::optional<Frame> next();

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::string buf_;
    size_t pos_ = 0;
};

/**
 * Per-direction string interning table. Symmetric: the encoder and
 * the decoder each hold one and assign ids in the same order.
 */
class StringDict
{
  public:
    /** Sentinel id introducing a not-yet-interned string. */
    static constexpr uint32_t kNewString = 0xFFFFFFFFu;

    /** Encode @p s as an id, defining it first when unknown. */
    void encode(persist::Writer &w, const std::string &s);

    /** Decode one dict-encoded string, learning new definitions. */
    std::string decode(persist::Reader &r);

    /** Distinct strings interned so far. */
    size_t size() const { return strings_.size(); }

    /** Occurrences encoded as a bare id (the bytes-saving case). */
    uint64_t hits() const { return hits_; }

  private:
    std::unordered_map<std::string, uint32_t> ids_;
    std::vector<std::string> strings_;
    uint64_t hits_ = 0;
};

/** kIngest extension tags (see the extension-block format above). */
inline constexpr uint8_t kExtTraceContext = 1;

/** One kIngest payload: what ingestFrom() takes, in persist types. */
struct WireIngest
{
    int64_t device = 0;
    uint64_t seq = 0;
    driftlog::DriftLogEntry entry;
    std::optional<persist::UploadRecord> upload;
    /** Causal trace context (obs::TraceContext ids; 0 = untraced).
     *  Only encoded when traceId != 0 — untraced payloads are
     *  byte-identical to the extension-free protocol. */
    uint64_t traceId = 0;
    uint64_t spanId = 0;
};

std::string encodeIngest(const WireIngest &m, StringDict &dict);
WireIngest decodeIngest(const std::string &payload, StringDict &dict);

/** One kAck payload. */
struct WireAck
{
    int64_t device = 0;
    uint64_t seq = 0;
    bool accepted = false;
};

std::string encodeAck(const WireAck &a);
WireAck decodeAck(const std::string &payload);

/** kHello payload. */
struct WireHello
{
    uint32_t protoVersion = kProtocolVersion;
    std::string clientName;
    /** Set on a reconnect handshake: asks the server for its dedup
     *  high-water seqs so the client can reconcile what landed.
     *  Encoded only when true (trailing optional — see above). */
    bool wantResume = false;
};

std::string encodeHello(const WireHello &h);
WireHello decodeHello(const std::string &payload);

/** kHelloAck payload. */
struct WireHelloAck
{
    uint32_t protoVersion = kProtocolVersion;
    /** Clean patch recovered from the server's state dir, when any. */
    std::optional<std::string> cleanPatchText;
    int64_t cleanPatchTime = 0;
    /**
     * Resume block: (device, highest seq the dedup window accounts
     * for) per device the server knows about, from a live
     * dedupSnapshot(). With per-device monotone send order on an
     * ordered connection, seq <= highWater means that ingest landed.
     * Encoded only when non-empty — answers to kHello.wantResume.
     */
    std::vector<std::pair<int64_t, uint64_t>> resumeHighWater;
};

std::string encodeHelloAck(const WireHelloAck &h);
WireHelloAck decodeHelloAck(const std::string &payload);

/** kCycleDone payload (kVersionPush frames follow, one per version). */
struct WireCycleDone
{
    uint32_t versionCount = 0;
    uint32_t rootCauses = 0;
    uint32_t skippedCauses = 0;
    uint64_t adaptedSampleCount = 0;
    std::optional<std::string> cleanPatchText;
};

std::string encodeCycleDone(const WireCycleDone &c);
WireCycleDone decodeCycleDone(const std::string &payload);

/** kByeAck payload: the server's final tallies for reconciliation. */
struct WireByeAck
{
    uint64_t totalIngested = 0;
    uint64_t dedupHits = 0;
};

std::string encodeByeAck(const WireByeAck &b);
WireByeAck decodeByeAck(const std::string &payload);

/** kBusy payload: committer queue depth when the advisory fired. */
struct WireBusy
{
    uint32_t queueDepth = 0;
};

std::string encodeBusy(const WireBusy &b);
WireBusy decodeBusy(const std::string &payload);

} // namespace nazar::net

#endif // NAZAR_NET_WIRE_H
