/**
 * @file
 * Deterministic unreliable transport between a device fleet and the
 * cloud.
 *
 * A `Channel<Payload>` models one uplink (device → cloud) plus the
 * matching downlink (cloud → device version pushes) under the fault
 * model of fault.h:
 *
 *  - `send` enqueues a message into the sending device's bounded
 *    queue, shedding the oldest entry when the bound is hit.
 *  - `deliver` drains every online device's queue through the fault
 *    machinery — capped exponential-backoff retry per message,
 *    timeout-based give-up, duplication, delay (carry-over to the
 *    next round) and reorder jitter — and hands the survivors to a
 *    sink in arrival order.
 *  - `beginEpoch` draws the per-device offline/crash state for one
 *    analysis window; `deliverPush` draws one downlink push.
 *
 * Every message carries a per-device monotone sequence number, which
 * is how the cloud's idempotent ingest (sim::Cloud::ingestFrom)
 * de-duplicates retransmissions — at-least-once delivery plus a
 * bounded dedup window gives effectively-once counting.
 *
 * Pass-through mode (FaultConfig::anyFaults() == false) never touches
 * the fault RNG and delivers in exact send order: bit-identical to
 * not having a channel at all. All per-channel tallies are mirrored
 * into nazar::obs counters (`net.*`) and exposed as a plain `Stats`
 * struct for tests.
 *
 * The channel is intentionally single-threaded: the simulation emits
 * telemetry from one thread in event order (sim::Runner), so faulted
 * runs stay independent of NAZAR_THREADS.
 */
#ifndef NAZAR_NET_CHANNEL_H
#define NAZAR_NET_CHANNEL_H

#include <algorithm>
#include <deque>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/fault.h"
#include "obs/metrics.h"

namespace nazar::net {

/** Plain tallies of everything the channel did (test-visible). */
struct ChannelStats
{
    uint64_t sent = 0;          ///< Messages accepted by send().
    uint64_t delivered = 0;     ///< Sink invocations (dups included).
    uint64_t dropped = 0;       ///< Failed delivery attempts.
    uint64_t retries = 0;       ///< Re-attempts after a drop.
    uint64_t gaveUp = 0;        ///< Messages lost after retry/timeout.
    uint64_t shed = 0;          ///< Oldest-dropped by the queue bound.
    uint64_t crashLost = 0;     ///< Queued messages wiped by a crash.
    uint64_t duplicates = 0;    ///< Extra copies delivered.
    uint64_t delayed = 0;       ///< Held over to the next round.
    uint64_t pushDropped = 0;   ///< Version pushes that missed a device.
    uint64_t offlineEpochs = 0; ///< Device-epochs spent offline.
    uint64_t crashRestarts = 0; ///< Crash-restarts (queue wiped).
    uint64_t undelivered = 0;   ///< Still queued/in-flight at shutdown.
};

template <typename Payload>
class Channel
{
  public:
    Channel(const FaultConfig &config, size_t device_count)
        : config_(config), faultsOn_(config.anyFaults()),
          rng_(config.seed), queues_(device_count),
          nextSeq_(device_count, 0), offline_(device_count, 0),
          sent_(obs::Registry::global().counter("net.sent")),
          delivered_(obs::Registry::global().counter("net.delivered")),
          dropped_(obs::Registry::global().counter("net.dropped")),
          retries_(obs::Registry::global().counter("net.retries")),
          gaveUp_(obs::Registry::global().counter("net.gave_up")),
          shedCounter_(obs::Registry::global().counter("net.shed")),
          crashLost_(obs::Registry::global().counter("net.crash_lost")),
          duplicates_(obs::Registry::global().counter("net.duplicates")),
          delayedCounter_(obs::Registry::global().counter("net.delayed")),
          pushDropped_(
              obs::Registry::global().counter("net.push_dropped")),
          offlineEpochs_(
              obs::Registry::global().counter("net.offline_epochs")),
          crashRestarts_(
              obs::Registry::global().counter("net.crash_restarts")),
          undelivered_(
              obs::Registry::global().counter("net.undelivered")),
          queueDepth_(obs::Registry::global().gauge("net.queue.depth")),
          inflightDelayed_(
              obs::Registry::global().gauge("net.inflight.delayed"))
    {
    }

    const FaultConfig &config() const { return config_; }
    const ChannelStats &stats() const { return stats_; }
    size_t deviceCount() const { return queues_.size(); }

    /** True when @p device is offline for the current epoch. */
    bool
    offline(size_t device) const
    {
        return offline_[device] != 0;
    }

    /**
     * Start one analysis-window epoch: draw each device's offline and
     * crash-restart state (fixed order: devices ascending). A crashed
     * device loses its queued-but-unsent messages; those are counted
     * as `crashLost` (`net.crash_lost`), distinct from the
     * queue-bound shedding tallied in `shed`.
     */
    void
    beginEpoch()
    {
        if (!faultsOn_)
            return;
        for (size_t d = 0; d < queues_.size(); ++d) {
            offline_[d] = rng_.bernoulli(config_.offlineProb) ? 1 : 0;
            if (offline_[d]) {
                ++stats_.offlineEpochs;
                offlineEpochs_.add(1);
            }
            if (rng_.bernoulli(config_.crashProb)) {
                ++stats_.crashRestarts;
                crashRestarts_.add(1);
                stats_.crashLost += queues_[d].size();
                crashLost_.add(queues_[d].size());
                queues_[d].clear();
            }
        }
    }

    /**
     * Enqueue one uplink message from @p device. Returns the assigned
     * per-device sequence number. When the bounded queue is full the
     * oldest queued message is shed first.
     */
    uint64_t
    send(size_t device, Payload payload)
    {
        uint64_t seq = nextSeq_[device]++;
        ++stats_.sent;
        sent_.add(1);
        if (!faultsOn_) {
            ready_.push_back(
                Arrival{0.0, sendIndex_++, device, seq,
                        std::move(payload)});
            return seq;
        }
        auto &queue = queues_[device];
        if (config_.queueCapacity > 0 &&
            queue.size() >= config_.queueCapacity) {
            queue.pop_front(); // oldest-drop shedding
            ++stats_.shed;
            shedCounter_.add(1);
        }
        queue.push_back(Queued{seq, sendIndex_++, std::move(payload)});
        return seq;
    }

    /**
     * Transmit everything transmittable this round and hand arrivals
     * to @p sink as `sink(device, seq, Payload&&)` in arrival order.
     * A sink may also accept a fourth `bool isDup` argument to learn
     * whether an arrival is a duplicated copy rather than the
     * original transmission. Offline devices keep their queues;
     * delayed messages surface at the next deliver() call.
     */
    template <typename Sink>
    void
    deliver(Sink &&sink)
    {
        if (!faultsOn_) {
            std::vector<Arrival> batch = std::move(ready_);
            ready_.clear();
            for (auto &a : batch) {
                ++stats_.delivered;
                delivered_.add(1);
                invokeSink(sink, a);
            }
            return;
        }

        size_t max_depth = 0;
        for (const auto &q : queues_)
            max_depth = std::max(max_depth, q.size());
        queueDepth_.set(static_cast<double>(max_depth));

        // Last round's delayed messages arrive first (their sendIndex
        // is older, which the stable sort below preserves for ties).
        std::vector<Arrival> arrivals = std::move(delayed_);
        delayed_.clear();

        for (size_t d = 0; d < queues_.size(); ++d) {
            if (offline_[d])
                continue;
            auto &queue = queues_[d];
            while (!queue.empty()) {
                Queued msg = std::move(queue.front());
                queue.pop_front();
                double latency = 0.0;
                if (!transmit(latency))
                    continue; // gave up; message lost
                if (rng_.bernoulli(config_.reorderProb))
                    latency += rng_.uniform(0.0, config_.timeoutTicks);
                bool hold = rng_.bernoulli(config_.delayProb);
                bool dup = rng_.bernoulli(config_.dupProb);
                Arrival arrival{latency, msg.sendIndex, d, msg.seq,
                                std::move(msg.payload)};
                std::optional<Arrival> copy;
                if (dup) {
                    ++stats_.duplicates;
                    duplicates_.add(1);
                    copy = arrival;
                    copy->dupRank = 1;
                }
                // The original goes in before its copy: with an
                // identical (latency, sendIndex) key the dedup window
                // must reject the duplicate, not the original.
                if (hold) {
                    ++stats_.delayed;
                    delayedCounter_.add(1);
                    delayed_.push_back(std::move(arrival));
                } else {
                    arrivals.push_back(std::move(arrival));
                }
                if (copy)
                    (hold ? delayed_ : arrivals)
                        .push_back(std::move(*copy));
            }
        }
        inflightDelayed_.set(static_cast<double>(delayed_.size()));

        // Arrival order: by accumulated latency, send order breaking
        // ties — so a zero-latency round degenerates to send order.
        // Duplicated copies rank after their original on a full tie.
        std::stable_sort(arrivals.begin(), arrivals.end(),
                         [](const Arrival &a, const Arrival &b) {
                             if (a.latency != b.latency)
                                 return a.latency < b.latency;
                             if (a.sendIndex != b.sendIndex)
                                 return a.sendIndex < b.sendIndex;
                             return a.dupRank < b.dupRank;
                         });
        for (auto &a : arrivals) {
            ++stats_.delivered;
            delivered_.add(1);
            invokeSink(sink, a);
        }
    }

    /**
     * One cloud→device version push. Returns false when the push
     * misses the device (offline epoch or downlink drop) — the device
     * then keeps serving its newest held patch.
     */
    bool
    deliverPush(size_t device)
    {
        if (!faultsOn_)
            return true;
        if (offline_[device] || rng_.bernoulli(config_.pushDropProb)) {
            ++stats_.pushDropped;
            pushDropped_.add(1);
            return false;
        }
        return true;
    }

    /** Messages still queued or held as delayed. */
    size_t
    pendingCount() const
    {
        size_t pending = delayed_.size() + ready_.size();
        for (const auto &q : queues_)
            pending += q.size();
        return pending;
    }

    /** End of run: everything still in flight counts as undelivered. */
    void
    shutdown()
    {
        size_t pending = pendingCount();
        stats_.undelivered += pending;
        undelivered_.add(pending);
        for (auto &q : queues_)
            q.clear();
        delayed_.clear();
        ready_.clear();
    }

  private:
    struct Queued
    {
        uint64_t seq = 0;
        uint64_t sendIndex = 0;
        Payload payload;
    };

    struct Arrival
    {
        double latency = 0.0;
        uint64_t sendIndex = 0;
        size_t device = 0;
        uint64_t seq = 0;
        Payload payload;
        uint8_t dupRank = 0; ///< 0 = original, 1 = duplicated copy.
    };

    /** Call @p sink with or without the trailing isDup flag. */
    template <typename Sink>
    void
    invokeSink(Sink &sink, Arrival &a)
    {
        if constexpr (std::is_invocable_v<Sink &, size_t, uint64_t,
                                          Payload &&, bool>)
            sink(a.device, a.seq, std::move(a.payload),
                 a.dupRank != 0);
        else
            sink(a.device, a.seq, std::move(a.payload));
    }

    /**
     * Run one message through the retry loop. Accumulates backoff
     * into @p latency; returns false on give-up (attempt cap or
     * timeout exceeded).
     */
    bool
    transmit(double &latency)
    {
        for (int attempt = 1;; ++attempt) {
            if (!rng_.bernoulli(config_.dropProb))
                return true;
            ++stats_.dropped;
            dropped_.add(1);
            if (attempt >= config_.maxAttempts) {
                ++stats_.gaveUp;
                gaveUp_.add(1);
                return false;
            }
            latency += config_.backoffBeforeRetry(attempt);
            if (latency > config_.timeoutTicks) {
                ++stats_.gaveUp;
                gaveUp_.add(1);
                return false;
            }
            ++stats_.retries;
            retries_.add(1);
        }
    }

    FaultConfig config_;
    bool faultsOn_;
    Rng rng_;
    ChannelStats stats_;
    uint64_t sendIndex_ = 0;

    std::vector<std::deque<Queued>> queues_; ///< Per-device, faulted.
    std::vector<Arrival> ready_;             ///< Pass-through mode.
    std::vector<Arrival> delayed_;           ///< Held to next round.
    std::vector<uint64_t> nextSeq_;
    std::vector<char> offline_;

    obs::Counter &sent_;
    obs::Counter &delivered_;
    obs::Counter &dropped_;
    obs::Counter &retries_;
    obs::Counter &gaveUp_;
    obs::Counter &shedCounter_;
    obs::Counter &crashLost_;
    obs::Counter &duplicates_;
    obs::Counter &delayedCounter_;
    obs::Counter &pushDropped_;
    obs::Counter &offlineEpochs_;
    obs::Counter &crashRestarts_;
    obs::Counter &undelivered_;
    obs::Gauge &queueDepth_;
    obs::Gauge &inflightDelayed_;
};

} // namespace nazar::net

#endif // NAZAR_NET_CHANNEL_H
